package bond_test

import (
	"io"
	"testing"

	"bond/internal/hotpath"
)

// BenchmarkHotPath measures the query hot path end to end — sequential
// Query latency and allocations, QueryBatch throughput at two batch
// sizes, the kernel-vs-scalar micro speedups on the three benchmark
// shapes, and the durable rows (steady-state mmap-vs-heap per shape plus
// the cold-open comparison) — and writes the measurements to
// BENCH_hotpath.json (the CI perf artifact). Run with:
//
//	go test -run xxx -bench BenchmarkHotPath -benchmem -benchtime 1x .
func BenchmarkHotPath(b *testing.B) {
	var records []hotpath.Record
	for i := 0; i < b.N; i++ {
		var err error
		records, err = hotpath.Run(hotpath.DefaultConfig(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		durable, err := hotpath.RunMmap(hotpath.DefaultConfig(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		records = append(records, durable...)
	}
	for _, r := range records {
		switch {
		case r.Mode == "query" && r.Backing == "":
			b.ReportMetric(r.QPS, r.Shape+"_qps")
		case r.Shape == "kernel":
			b.ReportMetric(r.Speedup, r.Mode+"_speedup")
		case r.Mode == "mmap_vs_heap":
			b.ReportMetric(r.Speedup, r.Shape+"_mmap_vs_heap")
		}
	}
	if err := hotpath.WriteJSON("BENCH_hotpath.json", records); err != nil {
		b.Fatal(err)
	}
}

package bond_test

import (
	"io"
	"testing"

	"bond/internal/hotpath"
)

// BenchmarkHotPath measures the query hot path end to end — sequential
// Query latency and allocations, QueryBatch throughput at two batch
// sizes, and the kernel-vs-scalar micro speedups — on the three benchmark
// shapes, and writes the measurements to BENCH_hotpath.json (the CI perf
// artifact). Run with:
//
//	go test -run xxx -bench BenchmarkHotPath -benchmem -benchtime 1x .
func BenchmarkHotPath(b *testing.B) {
	var records []hotpath.Record
	for i := 0; i < b.N; i++ {
		var err error
		records, err = hotpath.Run(hotpath.DefaultConfig(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range records {
		switch {
		case r.Mode == "query":
			b.ReportMetric(r.QPS, r.Shape+"_qps")
		case r.Shape == "kernel":
			b.ReportMetric(r.Speedup, r.Mode+"_speedup")
		}
	}
	if err := hotpath.WriteJSON("BENCH_hotpath.json", records); err != nil {
		b.Fatal(err)
	}
}

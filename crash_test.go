package bond

import (
	"math/rand"
	"testing"

	"bond/internal/crashfs"
	"bond/internal/iofs"
)

// The crash-injection matrix: a fixed mutation history is executed
// against a durable collection on the fault-injecting filesystem, which
// kills the "process" after an exactly chosen number of durability
// events — every byte written to the WAL, every byte of every segment
// file, active checkpoint and manifest, and every metadata operation
// (create, rename, remove, fsync) in between. For every possible crash
// point the surviving disk state is recovered and compared against the
// oracle: the sequence of logical states a plain in-memory collection
// passes through under the same history.
//
// The contract verified at every single crash point:
//
//   - recovery succeeds — no panic, no error, no unopenable store;
//   - the recovered state equals some prefix of the mutation history —
//     a torn WAL record or half-written checkpoint never surfaces as
//     data;
//   - under fsync=always with power-loss semantics, the prefix includes
//     every acknowledged mutation: an op whose call returned cannot be
//     rolled back by the crash (the op in flight at the crash may land
//     either way — it was never acknowledged).

const (
	crashDims    = 3
	crashSegSize = 5
)

type crashOp struct {
	kind  string // add | batch | delete | compact | seal | recluster | checkpoint
	vec   []float64
	batch [][]float64
	id    int
	ratio float64
	k     int
	seed  int64
}

// crashHistory builds a deterministic mutation history that exercises
// every record type, segment seals by overflow, compaction rewrites,
// re-clustering rewrites (one replayed straight from the WAL, one
// captured by a checkpoint, one left in the final log tail), and
// checkpoints at three different log positions.
func crashHistory() []crashOp {
	rng := rand.New(rand.NewSource(42))
	vec := func() []float64 {
		v := make([]float64, crashDims)
		for d := range v {
			v[d] = float64(rng.Intn(1000)) / 1000
		}
		return v
	}
	var ops []crashOp
	for i := 0; i < 7; i++ {
		ops = append(ops, crashOp{kind: "add", vec: vec()})
	}
	ops = append(ops,
		crashOp{kind: "delete", id: 2},
		crashOp{kind: "checkpoint"},
		crashOp{kind: "batch", batch: [][]float64{vec(), vec(), vec()}},
		crashOp{kind: "recluster", k: 0, seed: 7}, // auto-k; drops the id-2 tombstone
		crashOp{kind: "delete", id: 8},
		crashOp{kind: "delete", id: 3},
		crashOp{kind: "compact", ratio: 0.2},
		crashOp{kind: "add", vec: vec()},
		crashOp{kind: "seal"},
		crashOp{kind: "recluster", k: 2, seed: -3}, // explicit k, then checkpointed
		crashOp{kind: "checkpoint"},
		crashOp{kind: "add", vec: vec()},
		crashOp{kind: "batch", batch: [][]float64{vec(), vec()}},
		crashOp{kind: "delete", id: 0},
		crashOp{kind: "compact", ratio: 0},
		crashOp{kind: "recluster", k: 0, seed: 99}, // left in the WAL tail
		crashOp{kind: "checkpoint"},
		crashOp{kind: "add", vec: vec()},
	)
	return ops
}

// applyCrashOp runs one op against a durable collection, returning the
// durability error (the crash surfacing mid-op).
func applyCrashOp(c *Collection, op crashOp) error {
	switch op.kind {
	case "add":
		_, err := c.AddDurable(op.vec)
		return err
	case "batch":
		_, err := c.AddBatchDurable(op.batch)
		return err
	case "delete":
		if op.id < c.Len() {
			_, err := c.TryDeleteDurable(op.id)
			return err
		}
		return nil
	case "compact":
		_, err := c.CompactRatioDurable(op.ratio)
		return err
	case "seal":
		return c.SealActiveDurable()
	case "recluster":
		_, err := c.ReclusterDurable(op.k, op.seed)
		return err
	case "checkpoint":
		return c.Checkpoint()
	}
	panic("unknown op " + op.kind)
}

// oracleDumps runs the history on a plain in-memory collection and
// returns the logical state after every prefix: dumps[i] is the state
// once ops[:i] have applied.
func oracleDumps(t *testing.T, ops []crashOp) []collectionDump {
	t.Helper()
	mirror := NewSegmented(crashDims, crashSegSize)
	dumps := []collectionDump{dumpCollection(mirror)}
	for _, op := range ops {
		switch op.kind {
		case "add":
			mirror.Add(op.vec)
		case "batch":
			mirror.AddBatch(op.batch)
		case "delete":
			if op.id < mirror.Len() {
				mirror.TryDelete(op.id)
			}
		case "compact":
			mirror.CompactRatio(op.ratio)
		case "seal":
			mirror.SealActive()
		case "recluster":
			// Deterministic: the mirror converges on the exact layout the
			// durable collection (and its WAL replay) produces.
			mirror.Recluster(op.k, op.seed)
		case "checkpoint":
			// No logical state change.
		}
		dumps = append(dumps, dumpCollection(mirror))
	}
	return dumps
}

// runCrashWorkload executes the history on the fault-injecting
// filesystem until the crash trips (or the history completes). It
// returns how many ops were acknowledged and whether the crash surfaced
// mid-op (that op may or may not have reached the disk).
func runCrashWorkload(fs *crashfs.FS, ops []crashOp, policy FsyncPolicy) (acked int, inFlight bool) {
	c, err := OpenDurable("col", DurableOptions{
		FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: policy,
	})
	if err != nil {
		return 0, false // crash during creation: nothing acknowledged
	}
	for _, op := range ops {
		if err := applyCrashOp(c, op); err != nil {
			return acked, true
		}
		acked++
	}
	return acked, false
}

// recoverSurvivor reopens the post-crash disk image; recovery must never
// fail, whatever the crash point.
func recoverSurvivor(t *testing.T, budget int64, survivor iofs.FS, policy FsyncPolicy) *Collection {
	t.Helper()
	c, err := OpenDurable("col", DurableOptions{
		FS: survivor, Dims: crashDims, SegmentSize: crashSegSize, Fsync: policy,
	})
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	return c
}

func runCrashMatrix(t *testing.T, policy FsyncPolicy, mode crashfs.Mode) {
	ops := crashHistory()
	dumps := oracleDumps(t, ops)

	// Dry run with an unlimited budget measures the sweep range and
	// sanity-checks the workload end state.
	dry := crashfs.New(-1)
	acked, inFlight := runCrashWorkload(dry, ops, policy)
	if acked != len(ops) || inFlight {
		t.Fatalf("dry run crashed: acked %d/%d", acked, len(ops))
	}
	clean := recoverSurvivor(t, -1, dry.Survivor(mode), policy)
	cleanGot := dumpCollection(clean)
	clean.Close()
	if policy == FsyncAlways || mode == crashfs.ProcessCrash {
		// Every record was durable (synced, or safe in the page cache):
		// the full history must come back.
		if !sameDump(cleanGot, dumps[len(ops)]) {
			t.Fatalf("clean run final state diverged from oracle")
		}
	} else {
		// fsync=never against power loss: the unsynced WAL tail since the
		// last sync point is legitimately gone, but what remains must be
		// a consistent prefix.
		prefix := false
		for j := len(ops); j >= 0; j-- {
			if sameDump(cleanGot, dumps[j]) {
				prefix = true
				break
			}
		}
		if !prefix {
			t.Fatalf("clean run power-loss state is not a history prefix")
		}
	}
	total := dry.Steps()
	t.Logf("sweeping %d crash points (%s, %v)", total, policy, mode)

	for budget := int64(0); budget < total; budget++ {
		fs := crashfs.New(budget)
		acked, inFlight := runCrashWorkload(fs, ops, policy)
		if !fs.Crashed() {
			t.Fatalf("budget %d: crash did not trip (acked %d)", budget, acked)
		}
		rec := recoverSurvivor(t, budget, fs.Survivor(mode), policy)
		got := dumpCollection(rec)
		rec.Close()

		hi := acked
		if inFlight {
			hi++ // the unacknowledged in-flight op may have committed
		}
		matched := -1
		for j := hi; j >= 0; j-- {
			if sameDump(got, dumps[j]) {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Fatalf("budget %d (%s, %v): recovered state is not a prefix of the history (acked %d, inFlight %v): got %+v",
				budget, policy, mode, acked, inFlight, got)
		}
		// The no-acknowledged-loss half of the contract: every completed
		// mutation survived. This holds under fsync=always even against
		// power loss, and under any policy against a plain process crash
		// (completed writes live in the page cache).
		if policy == FsyncAlways || mode == crashfs.ProcessCrash {
			if !sameDump(got, dumps[acked]) && !(inFlight && sameDump(got, dumps[acked+1])) {
				t.Fatalf("budget %d (%s, %v): acknowledged write lost: recovered prefix %d, acked %d",
					budget, policy, mode, matched, acked)
			}
		}
	}
}

// TestCrashMatrixFsyncAlwaysPowerLoss is the strongest contract: with
// fsync=always, even a power failure at any byte boundary loses no
// acknowledged write.
func TestCrashMatrixFsyncAlwaysPowerLoss(t *testing.T) {
	runCrashMatrix(t, FsyncAlways, crashfs.PowerLoss)
}

// TestCrashMatrixFsyncAlwaysProcessCrash covers SIGKILL semantics under
// fsync=always.
func TestCrashMatrixFsyncAlwaysProcessCrash(t *testing.T) {
	runCrashMatrix(t, FsyncAlways, crashfs.ProcessCrash)
}

// TestCrashMatrixFsyncNeverProcessCrash: without fsync, a process crash
// still loses nothing (the page cache survives), and recovery is still a
// consistent prefix.
func TestCrashMatrixFsyncNeverProcessCrash(t *testing.T) {
	runCrashMatrix(t, FsyncNever, crashfs.ProcessCrash)
}

// TestCrashMatrixFsyncNeverPowerLoss: without fsync a power loss may
// roll back acknowledged writes — the documented trade-off — but
// recovery must still yield a consistent prefix, never a torn state.
func TestCrashMatrixFsyncNeverPowerLoss(t *testing.T) {
	runCrashMatrix(t, FsyncNever, crashfs.PowerLoss)
}

// TestCrashDuringRecoveryTruncation: a crash can also land while a
// *recovery* truncates a torn WAL tail; the double-crash must still
// recover. This sweeps crash points across a recovery that has work to
// do (torn tail from a first crash).
func TestCrashDuringRecoveryTruncation(t *testing.T) {
	ops := crashHistory()
	dumps := oracleDumps(t, ops)

	// First crash: mid-workload, leaving a torn WAL tail.
	first := crashfs.New(-1)
	runCrashWorkload(first, ops[:6], FsyncNever)
	// Manually tear the live WAL tail by dropping the last 3 bytes.
	base := first.Survivor(crashfs.ProcessCrash)
	names, err := base.ReadDir("col")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range names {
		if len(name) > 4 && name[:4] == "wal-" {
			info, _ := base.Stat("col/" + name)
			if info.Size > 3 {
				if err := base.Truncate("col/"+name, info.Size-3); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// Measure recovery's own step count, then sweep crash points inside
	// recovery itself.
	dry := crashfs.NewFrom(base.Clone(false), -1)
	c := recoverSurvivor(t, -1, dry, FsyncNever)
	c.Close()
	total := dry.Steps()
	for budget := int64(0); budget < total; budget++ {
		fs := crashfs.NewFrom(base.Clone(false), budget)
		// Recovery may crash; the crash surfaces as an error.
		if c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncNever}); err == nil {
			c.Close()
		}
		rec := recoverSurvivor(t, budget, fs.Survivor(crashfs.ProcessCrash), FsyncNever)
		got := dumpCollection(rec)
		rec.Close()
		matched := false
		for j := 0; j <= 6; j++ {
			if sameDump(got, dumps[j]) {
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("recovery-crash budget %d: state not a history prefix: %+v", budget, got)
		}
	}
}

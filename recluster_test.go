package bond

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"bond/internal/dataset"
	"bond/internal/iofs"
	"bond/internal/seqscan"
)

// clusteredShuffled builds an in-memory collection from planted-cluster
// data: because Clustered assigns each vector a random centre, the
// ingest order interleaves every cluster — the worst case for synopsis
// skipping and the layout a recluster must fix.
func clusteredShuffled(t *testing.T, n, dims, segSize int, seed int64) *Collection {
	t.Helper()
	cfg := dataset.DefaultClustered(n, dims, 0, seed)
	cfg.Clusters = 4
	cfg.NoiseFrac = 0
	c := NewSegmented(dims, segSize)
	c.AddBatch(dataset.Clustered(cfg))
	c.SealActive()
	return c
}

func TestReclusterTightensLayoutAndRemapsIDs(t *testing.T) {
	const (
		n       = 200
		dims    = 4
		segSize = 25
	)
	c := clusteredShuffled(t, n, dims, segSize, 9)
	for _, id := range []int{3, 17, 44, 101, 199} {
		c.Delete(id)
	}
	rows := make([][]float64, c.Len())
	deleted := make([]bool, c.Len())
	for id := range rows {
		rows[id] = c.store.Row(id)
		deleted[id] = c.store.IsDeleted(id)
	}
	liveBefore := c.Live()

	preSpread, ok := c.SealedSpread()
	if !ok || preSpread < 0.5 {
		t.Fatalf("shuffled pre-recluster spread = %v ok=%v, want loose", preSpread, ok)
	}
	q := rows[10]
	before, err := c.Query(QuerySpec{Query: q, K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}

	mapping := c.Recluster(0, 7)
	if len(mapping) != len(rows) {
		t.Fatalf("mapping len = %d, want %d", len(mapping), len(rows))
	}
	for id, nid := range mapping {
		switch {
		case deleted[id]:
			if nid != -1 {
				t.Fatalf("tombstone %d mapped to %d, want -1", id, nid)
			}
		case nid < 0:
			t.Fatalf("live id %d dropped", id)
		default:
			if got := c.store.Row(nid); !reflect.DeepEqual(got, rows[id]) {
				t.Fatalf("id %d→%d row changed: %v vs %v", id, nid, got, rows[id])
			}
		}
	}
	if c.Live() != liveBefore {
		t.Fatalf("live count changed: %d vs %d", c.Live(), liveBefore)
	}

	postSpread, ok := c.SealedSpread()
	if !ok || postSpread >= preSpread {
		t.Fatalf("spread did not tighten: %v → %v (ok=%v)", preSpread, postSpread, ok)
	}
	if got := c.Reclusters(); got != 1 {
		t.Fatalf("Reclusters() = %d, want 1", got)
	}
	st := c.StatsSnapshot()
	if st.Reclusters != 1 || !st.SpreadMeasured || st.SealedSpread != postSpread {
		t.Fatalf("stats gauges = %+v, want reclusters 1 spread %v", st, postSpread)
	}

	// The same query must return byte-identical scores in the same rank
	// order, with every id translated through the mapping — and the BOND
	// path must still agree exactly with the sequential-scan strategy.
	after, err := c.Query(QuerySpec{Query: q, K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Results) != len(before.Results) {
		t.Fatalf("result count changed: %d vs %d", len(after.Results), len(before.Results))
	}
	for i := range before.Results {
		wantID := mapping[before.Results[i].ID]
		if after.Results[i].ID != wantID || after.Results[i].Score != before.Results[i].Score {
			t.Fatalf("rank %d: got (%d,%g), want (%d,%g)",
				i, after.Results[i].ID, after.Results[i].Score, wantID, before.Results[i].Score)
		}
	}
	exact, err := c.Query(QuerySpec{Query: q, K: 5, Criterion: Hq, Strategy: StrategyExact})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Results, exact.Results) {
		t.Fatalf("post-recluster BOND vs exact diverged:\n %+v\n %+v", after.Results, exact.Results)
	}
}

func TestReclusterNoopCases(t *testing.T) {
	empty := NewSegmented(3, 8)
	if m, err := empty.ReclusterDurable(0, 1); m != nil || err != nil {
		t.Fatalf("empty: %v %v", m, err)
	}
	onlyActive := NewSegmented(3, 8)
	onlyActive.Add([]float64{1, 2, 3})
	if m, err := onlyActive.ReclusterDurable(0, 1); m != nil || err != nil {
		t.Fatalf("unsealed: %v %v", m, err)
	}
	deadSealed := NewSegmented(3, 2)
	deadSealed.AddBatch([][]float64{{1, 0, 0}, {0, 1, 0}})
	deadSealed.SealActive()
	deadSealed.Delete(0)
	deadSealed.Delete(1)
	if m, err := deadSealed.ReclusterDurable(0, 1); m != nil || err != nil {
		t.Fatalf("all-dead sealed: %v %v", m, err)
	}

	// A durable no-op must append nothing to the WAL.
	fs := iofs.NewMemFS()
	c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: 3, SegmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.AddDurable([]float64{float64(i), 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	dsBefore, _ := c.WALStats()
	if m, err := c.ReclusterDurable(0, 1); m != nil || err != nil {
		t.Fatalf("durable no-op: %v %v", m, err)
	}
	dsAfter, _ := c.WALStats()
	if dsAfter.WALRecords != dsBefore.WALRecords {
		t.Fatalf("no-op recluster logged a record: %d → %d", dsBefore.WALRecords, dsAfter.WALRecords)
	}
}

func TestReclusterAdviceHeuristic(t *testing.T) {
	c := clusteredShuffled(t, 100, 3, 20, 4)
	spread, advise := c.ReclusterAdvice(0.6)
	if !advise || spread < 0.6 {
		t.Fatalf("shuffled layout: advice (%v,%v), want advised", spread, advise)
	}
	c.Recluster(0, 2)
	if spread, advise = c.ReclusterAdvice(0); advise {
		t.Fatalf("unchanged layout re-advised at spread %v", spread)
	}
	// New sealed data moves the mark; with threshold 0 advice fires again.
	c.AddBatch(dataset.Uniform(40, 3, 8))
	c.SealActive()
	if _, advise = c.ReclusterAdvice(0); !advise {
		t.Fatal("grown sealed prefix not re-advised at threshold 0")
	}

	// Fewer than two sealed segments: nothing to skip, never advised.
	single := NewSegmented(3, 100)
	single.AddBatch(dataset.Uniform(50, 3, 1))
	single.SealActive()
	if _, advise := single.ReclusterAdvice(0); advise {
		t.Fatal("single sealed segment advised")
	}
}

// TestReclusterDurableReplay proves the replay contract: a TypeRecluster
// record carries only (k, seed), and reopening re-runs the same
// deterministic clustering to reproduce the layout bit-for-bit — both
// straight from the WAL and across a checkpoint.
func TestReclusterDurableReplay(t *testing.T) {
	fs := iofs.NewMemFS()
	c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: 4, SegmentSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	vectors := dataset.Clustered(dataset.ClusteredConfig{
		N: 60, Dims: 4, Clusters: 3, Sigma: 0.02, Seed: 21,
	})
	if _, err := c.AddBatchDurable(vectors); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 9, 33} {
		if _, err := c.TryDeleteDurable(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReclusterDurable(0, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddBatchDurable(vectors[:20]); err != nil {
		t.Fatal(err)
	}
	if err := c.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReclusterDurable(3, -11); err != nil {
		t.Fatal(err)
	}
	want := dumpCollection(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	c2 := reopenDurable(t, fs, "col", FsyncAlways)
	if got := dumpCollection(c2); !sameDump(got, want) {
		t.Fatalf("WAL replay of recluster diverged:\n got %+v\nwant %+v", got, want)
	}

	// Checkpoint the reclustered layout, mutate and recluster into the
	// fresh WAL, reopen once more.
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AddBatchDurable(vectors[20:40]); err != nil {
		t.Fatal(err)
	}
	if err := c2.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ReclusterDurable(0, 99); err != nil {
		t.Fatal(err)
	}
	want2 := dumpCollection(c2)
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := reopenDurable(t, fs, "col", FsyncAlways)
	defer c3.Close()
	if got := dumpCollection(c3); !sameDump(got, want2) {
		t.Fatalf("checkpoint+recluster reopen diverged")
	}
}

// TestReclusterDurableLifecycleProperty is the randomized recluster
// lifecycle property: a random interleaving of Add/AddBatch/Delete/
// Compact/Seal/Recluster/Checkpoint/Close+Reopen runs against an
// in-memory mirror receiving the same mutations (recluster is
// deterministic, so the mirror reproduces the exact layout), while
// concurrent Query and QueryBatch calls — exact results pinned to the
// seqscan oracle at the end — race every mutation. Run under -race in
// CI.
func TestReclusterDurableLifecycleProperty(t *testing.T) {
	const (
		dims    = 5
		segSize = 16
		ops     = 300
	)
	for _, seed := range []int64{11, 12, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := iofs.NewMemFS()
			c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: dims, SegmentSize: segSize, Fsync: FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			mirror := NewSegmented(dims, segSize)

			var wg sync.WaitGroup
			stopQueries := func() {}
			startQueries := func() {
				stop := make(chan struct{})
				q1 := randVector(rng, dims) // drawn before the goroutine: rng is not shared
				q2 := randVector(rng, dims)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, qerr := c.Query(QuerySpec{Query: q1, K: 3, Criterion: Hq, Strategy: StrategyExact}); qerr != nil {
							t.Errorf("concurrent query: %v", qerr)
							return
						}
						if _, qerr := c.QueryBatch([]QuerySpec{
							{Query: q1, K: 2, Criterion: Hq},
							{Query: q2, K: 3, Criterion: Hq},
						}); qerr != nil {
							t.Errorf("concurrent query batch: %v", qerr)
							return
						}
					}
				}()
				stopQueries = func() { close(stop); wg.Wait() }
			}
			startQueries()

			apply := func(op func(col *Collection) error) {
				if err := op(c); err != nil {
					t.Fatalf("durable op: %v", err)
				}
				if err := op(mirror); err != nil {
					t.Fatalf("mirror op: %v", err)
				}
			}
			for i := 0; i < ops; i++ {
				switch r := rng.Float64(); {
				case r < 0.40:
					v := randVector(rng, dims)
					apply(func(col *Collection) error { _, e := col.AddDurable(v); return e })
				case r < 0.55:
					batch := make([][]float64, 1+rng.Intn(6))
					for j := range batch {
						batch[j] = randVector(rng, dims)
					}
					apply(func(col *Collection) error { _, e := col.AddBatchDurable(batch); return e })
				case r < 0.68:
					if n := c.Len(); n > 0 {
						id := rng.Intn(n)
						apply(func(col *Collection) error { _, e := col.TryDeleteDurable(id); return e })
					}
				case r < 0.76:
					ratio := rng.Float64() * 0.5
					apply(func(col *Collection) error { _, e := col.CompactRatioDurable(ratio); return e })
				case r < 0.82:
					apply(func(col *Collection) error { return col.SealActiveDurable() })
				case r < 0.90:
					// The tentpole op: k auto or explicit, random seed — both
					// sides must converge on the identical layout.
					k := 0
					if rng.Float64() < 0.3 {
						k = 1 + rng.Intn(4)
					}
					s := rng.Int63()
					apply(func(col *Collection) error { _, e := col.ReclusterDurable(k, s); return e })
					if got, want := dumpCollection(c), dumpCollection(mirror); !sameDump(got, want) {
						t.Fatalf("op %d: recluster diverged from mirror", i)
					}
				case r < 0.95:
					if err := c.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				default:
					stopQueries()
					want := dumpCollection(c)
					if err := c.Close(); err != nil {
						t.Fatal(err)
					}
					c = reopenDurable(t, fs, "col", FsyncNever)
					if got := dumpCollection(c); !sameDump(got, want) {
						t.Fatalf("op %d: reopen diverged from pre-close state", i)
					}
					startQueries()
				}
			}
			stopQueries()

			got, want := dumpCollection(c), dumpCollection(mirror)
			if !sameDump(got, want) {
				t.Fatalf("final state diverged from in-memory mirror:\n got %+v\nwant %+v", got, want)
			}
			// Pin a final query on the reclustered layout to the
			// sequential-scan oracle, rank for rank, byte for byte.
			var live [][]float64
			var liveIDs []int
			for id, row := range got.rows {
				if !got.deleted[id] {
					live = append(live, row)
					liveIDs = append(liveIDs, id)
				}
			}
			if len(live) > 0 {
				q := randVector(rng, dims)
				oracle, _ := seqscan.SearchHistogram(live, q, 3)
				res, err := c.Query(QuerySpec{Query: q, K: 3, Criterion: Hq})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Results) != len(oracle) {
					t.Fatalf("query k: %d vs oracle %d", len(res.Results), len(oracle))
				}
				for j := range oracle {
					if res.Results[j].Score != oracle[j].Score || res.Results[j].ID != liveIDs[oracle[j].ID] {
						t.Fatalf("rank %d: got (%d,%g) oracle (%d,%g)",
							j, res.Results[j].ID, res.Results[j].Score, liveIDs[oracle[j].ID], oracle[j].Score)
					}
				}
			}
			c.Close()
		})
	}
}

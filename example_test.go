package bond_test

import (
	"fmt"

	"bond"
)

// fourHistograms is a tiny normalized collection used by the examples:
// the paper's Table 2 vectors h3, h5, h7 and h2 (in that order).
func fourHistograms() [][]float64 {
	return [][]float64{
		{0.8, 0.1, 0.05, 0.05},
		{0.7, 0.15, 0.15, 0},
		{0.55, 0.2, 0.15, 0.1},
		{0.05, 0.05, 0.9, 0},
	}
}

// The basic flow: decompose a collection, search by example.
func ExampleCollection_Search() {
	col := bond.NewCollection(fourHistograms())
	query := []float64{0.7, 0.15, 0.1, 0.05}
	res, err := col.Search(query, bond.Options{K: 2, Criterion: bond.Hq})
	if err != nil {
		panic(err)
	}
	for _, r := range res.Results {
		fmt.Printf("id=%d score=%.2f\n", r.ID, r.Score)
	}
	// Output:
	// id=1 score=0.95
	// id=0 score=0.90
}

// Euclidean search on the same single data representation.
func ExampleCollection_Search_euclidean() {
	col := bond.NewCollection(fourHistograms())
	query := []float64{0.8, 0.1, 0.05, 0.05} // h3 itself
	res, err := col.Search(query, bond.Options{K: 1, Criterion: bond.Ev})
	if err != nil {
		panic(err)
	}
	fmt.Printf("nearest: id=%d distance=%.1f\n", res.Results[0].ID, res.Results[0].Score)
	// Output:
	// nearest: id=0 distance=0.0
}

// A weighted query emphasizes chosen dimensions (Definition 3); zero
// weights exclude dimensions entirely (subspace search, Section 8.1).
func ExampleCollection_Search_weighted() {
	col := bond.NewCollection(fourHistograms())
	query := []float64{0.0, 0.2, 0.9, 0.0}
	weights := []float64{0, 1, 4, 0} // only dims 1–2 matter, dim 2 most
	res, err := col.Search(query, bond.Options{K: 1, Criterion: bond.Ev, Weights: weights})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best: id=%d\n", res.Results[0].ID)
	// Output:
	// best: id=3
}

// QueryUsefulness predicts pruning power: skewed queries are useful,
// uniform ones are hostile (Sections 7.5 and 9).
func ExampleQueryUsefulness() {
	skewed := []float64{0.9, 0.05, 0.03, 0.02}
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	fmt.Printf("skewed > uniform: %v\n",
		bond.QueryUsefulness(skewed, nil, bond.Hq) > bond.QueryUsefulness(uniform, nil, bond.Hq))
	// Output:
	// skewed > uniform: true
}

// Progressive search exposes the shrinking candidate set between steps.
func ExampleCollection_SearchProgressive() {
	col := bond.NewCollection(fourHistograms())
	p, err := col.SearchProgressive([]float64{0.7, 0.15, 0.1, 0.05},
		bond.Options{K: 1, Criterion: bond.Hq, Step: 2})
	if err != nil {
		panic(err)
	}
	res := p.Finish()
	fmt.Printf("best: id=%d of %d candidates\n", res.Results[0].ID, col.Len())
	// Output:
	// best: id=1 of 4 candidates
}

// Command bondgen generates a synthetic feature collection and writes it
// as a decomposed store file that cmd/bondquery (or the library's Open)
// can load.
//
// Usage:
//
//	bondgen -kind corel -n 10000 -dims 166 -out corel.bond
//	bondgen -kind clustered -n 100000 -dims 128 -theta 1.0 -out skew1.bond
//	bondgen -kind uniform -n 50000 -dims 64 -out uniform.bond
//	bondgen -kind corel -n 10000 -dims 166 -segsize 2048 -out corel.bond
//
// -segsize aligns segment boundaries with a known data layout; -normalize
// scales every vector to sum 1 (enables the stricter Eq bound).
package main

import (
	"flag"
	"fmt"
	"os"

	"bond"
	"bond/internal/dataset"
)

func main() {
	kind := flag.String("kind", "corel", "data kind: corel, clustered, uniform")
	n := flag.Int("n", 10000, "number of vectors")
	dims := flag.Int("dims", 166, "dimensionality")
	theta := flag.Float64("theta", 1.0, "cluster-centre Zipf skew (clustered only)")
	clusters := flag.Int("clusters", 1000, "number of clusters (clustered only)")
	noise := flag.Float64("noise", 0.05, "noise fraction (clustered only)")
	sigma := flag.Float64("sigma", 0.025, "cluster spread (clustered only)")
	normalize := flag.Bool("normalize", false, "normalize every vector to sum 1")
	seed := flag.Int64("seed", 42, "generator seed")
	segsize := flag.Int("segsize", 0, "segment seal threshold (0 = default)")
	out := flag.String("out", "", "output path (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "bondgen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var vectors [][]float64
	switch *kind {
	case "corel":
		vectors = dataset.CorelLike(*n, *dims, *seed)
	case "clustered":
		cfg := dataset.ClusteredConfig{
			N: *n, Dims: *dims, Clusters: *clusters, Theta: *theta,
			NoiseFrac: *noise, Sigma: *sigma, Seed: *seed,
		}
		vectors = dataset.Clustered(cfg)
	case "uniform":
		vectors = dataset.Uniform(*n, *dims, *seed)
	default:
		fmt.Fprintf(os.Stderr, "bondgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if *normalize {
		dataset.NormalizeAll(vectors)
	}

	col := bond.NewCollectionSegmented(vectors, *segsize)
	if err := col.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "bondgen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d × %d %s collection (%d segments) to %s\n",
		*n, *dims, *kind, col.NumSegments(), *out)
}

// Command bondquery runs k-NN queries against a stored collection through
// the cost-based query planner.
//
// Usage:
//
//	bondquery -store corel.bond -id 17 -k 10 -criterion Hq
//	bondquery -store skew1.bond -id 0 -k 5 -criterion Ev -stats
//	bondquery -store corel.bond -id 17 -explain
//	bondquery -store corel.bond -id 17 -strategy vafile
//
// The query vector is taken from the collection by id (the common
// query-by-example pattern of image retrieval). Every query goes through
// the planner: -strategy=auto (the default) picks an access path per
// segment from the collection's cost model, and the forced strategies
// (bond, compressed, vafile, exact, mil) pin one path everywhere.
// -explain prints the plan with per-segment predicted and actual costs.
// Stores written in either the segmented layout or the legacy flat layout
// are accepted. For profiling, -repeat N heats the query loop and
// -cpuprofile/-memprofile write pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"bond"
)

func main() {
	storePath := flag.String("store", "", "path to a store written by bondgen or Collection.Save (required)")
	id := flag.Int("id", 0, "query-by-example: id of the query vector inside the collection")
	k := flag.Int("k", 10, "number of neighbors")
	criterion := flag.String("criterion", "Hq", "pruning criterion: Hq, Hh, Eq, Ev")
	step := flag.Int("step", 0, "pruning step m (0 = default)")
	order := flag.String("order", "desc", "dimension order: desc, asc, random, natural")
	strategy := flag.String("strategy", "auto", "access path: auto, bond, compressed, vafile, exact, mil")
	explain := flag.Bool("explain", false, "print the plan: per-segment path, predicted and actual cost")
	showStats := flag.Bool("stats", false, "print per-step pruning statistics")
	repeat := flag.Int("repeat", 1, "run the query this many times (profiling hot loops)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "bondquery: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}
	col, err := bond.Open(*storePath)
	if err != nil {
		fatal(err)
	}
	if *id < 0 || *id >= col.Len() {
		fatal(fmt.Errorf("id %d outside collection [0,%d)", *id, col.Len()))
	}

	crit, err := bond.ParseCriterion(*criterion)
	if err != nil {
		fatal(err)
	}
	ord, err := bond.ParseOrder(*order)
	if err != nil {
		fatal(err)
	}
	strat, err := bond.ParseStrategy(*strategy)
	if err != nil {
		fatal(err)
	}

	q := col.Vector(*id)
	spec := bond.QuerySpec{
		Query:     q,
		K:         *k,
		Criterion: crit,
		Step:      *step,
		Order:     ord,
		Strategy:  strat,
	}
	// Extra repetitions (profiling mode) run through the plain pooled
	// Query path — the one production traffic takes.
	for i := 1; i < *repeat; i++ {
		if _, err := col.Query(spec); err != nil {
			fatal(err)
		}
	}
	res, p, err := col.QueryExplain(spec)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("collection %s: %d × %d in %d segments, query id %d, criterion %s, strategy %s\n",
		*storePath, col.Len(), col.Dims(), col.NumSegments(), *id, crit, strat)
	for rank, r := range res.Results {
		fmt.Printf("%3d. id=%-8d score=%.6f\n", rank+1, r.ID, r.Score)
	}
	full := int64(col.Live() * col.Dims())
	fmt.Printf("values scanned: %d of %d (%.1f%% of a full scan); segments searched %d, skipped %d\n",
		res.Stats.ValuesScanned, full, 100*float64(res.Stats.ValuesScanned)/float64(full),
		res.Stats.SegmentsSearched, res.Stats.SegmentsSkipped)
	if *explain {
		fmt.Print(p.Explain())
	}
	if *showStats {
		fmt.Println("pruning steps:")
		for _, st := range res.Stats.Steps {
			suffix := ""
			if st.Skipped {
				suffix = " (skipped: futile)"
			}
			fmt.Printf("  seg %2d, after %3d dims: %d candidates%s\n",
				st.Segment, st.DimsProcessed, st.Candidates, suffix)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bondquery:", err)
	os.Exit(1)
}

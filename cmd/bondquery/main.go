// Command bondquery runs k-NN queries against a stored collection.
//
// Usage:
//
//	bondquery -store corel.bond -id 17 -k 10 -criterion Hq
//	bondquery -store skew1.bond -id 0 -k 5 -criterion Ev -stats
//
// The query vector is taken from the collection by id (the common
// query-by-example pattern of image retrieval).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bond/internal/core"
	"bond/internal/vstore"
)

func main() {
	storePath := flag.String("store", "", "path to a store written by bondgen or Collection.Save (required)")
	id := flag.Int("id", 0, "query-by-example: id of the query vector inside the collection")
	k := flag.Int("k", 10, "number of neighbors")
	criterion := flag.String("criterion", "Hq", "pruning criterion: Hq, Hh, Eq, Ev")
	step := flag.Int("step", core.DefaultStep, "pruning step m")
	order := flag.String("order", "desc", "dimension order: desc, asc, random, natural")
	showStats := flag.Bool("stats", false, "print per-step pruning statistics")
	flag.Parse()

	if *storePath == "" {
		fmt.Fprintln(os.Stderr, "bondquery: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	store, err := vstore.LoadFile(*storePath)
	if err != nil {
		fatal(err)
	}
	if *id < 0 || *id >= store.Len() {
		fatal(fmt.Errorf("id %d outside collection [0,%d)", *id, store.Len()))
	}

	var crit core.Criterion
	switch strings.ToLower(*criterion) {
	case "hq":
		crit = core.Hq
	case "hh":
		crit = core.Hh
	case "eq":
		crit = core.Eq
	case "ev":
		crit = core.Ev
	default:
		fatal(fmt.Errorf("unknown criterion %q", *criterion))
	}
	var ord core.Order
	switch strings.ToLower(*order) {
	case "desc":
		ord = core.OrderQueryDesc
	case "asc":
		ord = core.OrderQueryAsc
	case "random":
		ord = core.OrderRandom
	case "natural":
		ord = core.OrderNatural
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}

	q := store.Row(*id)
	res, err := core.Search(store, q, core.Options{K: *k, Criterion: crit, Step: *step, Order: ord})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("collection %s: %d × %d, query id %d, criterion %s\n",
		*storePath, store.Len(), store.Dims(), *id, crit)
	for rank, r := range res.Results {
		fmt.Printf("%3d. id=%-8d score=%.6f\n", rank+1, r.ID, r.Score)
	}
	full := int64(store.Live() * store.Dims())
	fmt.Printf("values scanned: %d of %d (%.1f%% of a full scan)\n",
		res.Stats.ValuesScanned, full, 100*float64(res.Stats.ValuesScanned)/float64(full))
	if *showStats {
		fmt.Println("pruning steps:")
		for _, st := range res.Stats.Steps {
			suffix := ""
			if st.Skipped {
				suffix = " (skipped: futile)"
			}
			fmt.Printf("  after %3d dims: %d candidates%s\n", st.DimsProcessed, st.Candidates, suffix)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bondquery:", err)
	os.Exit(1)
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

func newReader(b []byte) io.Reader { return bytes.NewReader(b) }

// The end-to-end durability test: a real bondd process (exec'd child) is
// SIGKILLed mid-ingest and restarted on the same data directory, and
// every write it acknowledged with a 2xx before dying must be readable
// afterwards — the -fsync=always contract, demonstrated at the process
// boundary rather than through in-process fault injection. The kill
// lands at a random point in the ingest stream, with an aggressive
// maintenance interval and a tiny -wal-max-bytes so some runs die
// mid-checkpoint too.

// buildBondd compiles the daemon once per test binary.
func buildBondd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "bondd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Skipf("cannot build bondd (no toolchain?): %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves an ephemeral port and releases it for the child.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startBondd launches the daemon and waits until /healthz answers.
func startBondd(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data", dataDir,
		"-fsync", "always",
		"-segment-size", "32",
		// Aggressive checkpointing so some kills land mid-checkpoint;
		// compaction off so ids stay stable for readback-by-id.
		"-maintenance-interval", "150ms",
		"-wal-max-bytes", "1",
		"-compact-ratio", "-1",
		"-quiet",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatal("bondd did not become healthy")
	return nil
}

func postJSON(addr, path string, body any, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post("http://"+addr+path, "application/json", newReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func TestSIGKILLLosesNoAcknowledgedWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("exec'd-child durability test skipped in -short mode")
	}
	bin := buildBondd(t)
	dataDir := t.TempDir()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))

	addr := freeAddr(t)
	child := startBondd(t, bin, addr, dataDir)
	defer func() {
		if child.Process != nil {
			child.Process.Kill()
			child.Wait()
		}
	}()

	req, _ := http.NewRequest(http.MethodPut, "http://"+addr+"/collections/c", newReader([]byte(`{"dims":6}`)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Ingest one vector at a time, recording (id, vector) for every 2xx.
	// The child is killed after a random number of acknowledgments —
	// possibly with a request in flight, which is then legitimately lost.
	type acked struct {
		id  int
		vec []float64
	}
	var log []acked
	deleted := map[int]bool{} // ids whose tombstone got a 204
	killAfter := 40 + rng.Intn(120)
	for i := 0; ; i++ {
		v := make([]float64, 6)
		for d := range v {
			v[d] = rng.Float64()
		}
		var ir struct {
			FirstID int `json:"first_id"`
		}
		code, err := postJSON(addr, "/collections/c/vectors", map[string]any{"vector": v}, &ir)
		if err != nil || code != http.StatusOK {
			t.Fatalf("ingest %d failed before the kill: code %d err %v", i, code, err)
		}
		log = append(log, acked{id: ir.FirstID, vec: v})
		if len(log) >= killAfter {
			break
		}
		if i%10 == 3 { // sprinkle acknowledged deletes through the stream
			id := log[rng.Intn(len(log))].id
			url := fmt.Sprintf("http://%s/collections/c/vectors/%d", addr, id)
			dreq, _ := http.NewRequest(http.MethodDelete, url, nil)
			dresp, derr := http.DefaultClient.Do(dreq)
			if derr == nil {
				if dresp.StatusCode == http.StatusNoContent {
					deleted[id] = true
				}
				dresp.Body.Close()
			}
		}
	}

	if err := child.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	child.Wait()

	// Restart on the same directory; recovery replays the WAL.
	addr2 := freeAddr(t)
	child2 := startBondd(t, bin, addr2, dataDir)
	defer func() {
		child2.Process.Kill()
		child2.Wait()
	}()

	// Every acknowledged ingest AND delete must have survived: the slot
	// count covers the ingests, the live count the tombstones (ids are
	// stable because compaction is off), and the per-id readback below
	// the bytes. Tombstoned vectors stay readable by id (tombstones hide
	// them from search, not from positional access).
	resp2, err := http.Get("http://" + addr2 + "/collections/c")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		Len  int `json:"len"`
		Live int `json:"live"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if st.Len < len(log) {
		t.Fatalf("restart lost acknowledged writes: len %d < %d acked", st.Len, len(log))
	}
	if want := st.Len - len(deleted); st.Live != want {
		t.Fatalf("restart lost acknowledged deletes: live %d, want %d (%d tombstones)",
			st.Live, want, len(deleted))
	}
	for _, a := range log {
		resp, err := http.Get(fmt.Sprintf("http://%s/collections/c/vectors/%d", addr2, a.id))
		if err != nil {
			t.Fatal(err)
		}
		var vr struct {
			Vector []float64 `json:"vector"`
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("acked id %d unreadable after SIGKILL restart: status %d", a.id, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !reflect.DeepEqual(vr.Vector, a.vec) {
			t.Fatalf("acked id %d corrupted after SIGKILL restart", a.id)
		}
	}
}

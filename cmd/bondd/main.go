// Command bondd is the BOND server daemon: it holds many named
// collections in one process and serves concurrent clients over an HTTP
// JSON API.
//
// Usage:
//
//	bondd -addr :8666 -data ./bondd-data
//	bondd -data ./bondd-data -maintenance-interval 10s -compact-ratio 0.25
//
// Endpoints (see docs/ARCHITECTURE.md for the full API walkthrough):
//
//	PUT    /collections/{name}               create ({"dims": D, "segment_size": S?})
//	GET    /collections                      list
//	GET    /collections/{name}               per-collection stats + segment synopses
//	DELETE /collections/{name}               drop
//	POST   /collections/{name}/vectors       ingest one {"vector": […]} or a batch {"vectors": [[…],…]}
//	GET    /collections/{name}/vectors/{id}  read one vector back
//	DELETE /collections/{name}/vectors/{id}  tombstone one vector
//	POST   /collections/{name}/recluster     rewrite sealed segments cluster-contiguously ({"k": K?, "seed": S?})
//	POST   /collections/{name}/query         one QuerySpec in, top-k out
//	POST   /collections/{name}/query/batch   {"queries": […]} through Collection.QueryBatch
//	GET    /collections/{name}/explain       EXPLAIN by example (?id=17&k=10&strategy=auto); POST takes a spec
//	GET    /healthz                          liveness
//	GET    /readyz                           readiness (data dir writable, WALs appendable)
//	GET    /stats                            server + per-collection + cost-model statistics
//
// # Coordinator mode
//
// With -coordinator, bondd serves the same HTTP API over a static
// topology of shard bondd processes instead of local collections:
//
//	bondd -coordinator -topology topology.json -degrade partial
//
// The topology file maps shard ids to base URLs ({"shards": [{"id": 0,
// "url": "http://host:8666"}, …]}). Ingest and deletes hash-route by
// vector id to the owning shard; queries fan out to every shard and
// exact-merge, so healthy-cluster answers are byte-identical to a
// single node holding all the data. Every shard call runs inside a
// robustness envelope (deadline carving, retries with backoff, hedged
// requests, per-shard circuit breakers fed by a background prober);
// -degrade picks what a missed shard costs: strict = clean error,
// partial = top-k over the survivors marked "partial": true.
//
// # Replication
//
// With -follow, bondd runs as a read-only replica of another bondd:
//
//	bondd -addr :8667 -data ./replica-data -follow http://leader:8666
//
// The replica bootstraps each collection from a leader checkpoint
// snapshot, then tails the leader's write-ahead log (GET /wal),
// appending the same frames to its own log and applying them — so its
// on-disk state is byte-identical to the leader at every applied
// offset. Mutations against a replica answer 409 until POST /promote
// turns it into an ordinary leader; promotion refuses (409) if the
// replica ever diverged. GET /replstatus reports lag, and a coordinator
// whose topology lists the replica promotes it automatically when the
// primary's breaker opens (-promote-replicas); -read-replicas also
// steers idempotent reads to caught-up replicas.
//
// # Durability
//
// Collections live under -data as <name>.bond durable directories: an
// incremental checkpoint (manifest + write-once sealed-segment files +
// active-segment checkpoint) plus a write-ahead log of every mutation
// since. Every ingest and delete is WAL-logged before its 2xx goes out;
// with the default -fsync=always the record is also fsynced first, so a
// crash — SIGKILL, power loss — never loses an acknowledged write.
// -fsync=interval trades the per-write fsync for a periodic one (bounded
// loss on power failure, none on process crash); -fsync=never leaves
// flushing to the OS. Recovery replays the WAL tail on top of the last
// checkpoint and always yields a consistent prefix of the acknowledged
// history.
//
// The maintenance loop compacts collections whose tombstone ratio
// crosses -compact-ratio, re-clusters collections whose sealed synopsis
// spread crosses -recluster-spread (rewriting sealed segments so each
// holds one k-means cluster — tight synopses restore segment skipping
// however shuffled the ingest order was), and checkpoints any collection
// whose WAL has outgrown -wal-max-bytes, truncating the log —
// checkpoints bound restart replay time, not durability. Pre-durability
// <name>.bond snapshot files are migrated in place on first touch.
// SIGINT/SIGTERM drain in-flight requests, checkpoint, and close every
// log.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bond"
	"bond/internal/server"
	"bond/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8666", "HTTP listen address")
	dataDir := flag.String("data", "bondd-data", "data directory holding <name>.bond collection files")
	segSize := flag.Int("segment-size", 0, "seal threshold for new collections (0 = library default)")
	maxInFlight := flag.Int("max-inflight", 0, "bound on concurrently executing queries (0 = 4×GOMAXPROCS)")
	maintEvery := flag.Duration("maintenance-interval", 30*time.Second, "background compaction/snapshot period (0 disables)")
	compactRatio := flag.Float64("compact-ratio", 0.25, "tombstone ratio that triggers compaction (0 selects the default 0.25; negative disables)")
	reclusterSpread := flag.Float64("recluster-spread", 0.6, "sealed synopsis spread that triggers background re-clustering (0 selects the default 0.6; negative disables)")
	maxBody := flag.Int64("max-body-bytes", 0, "request body size cap in bytes (0 = 64 MiB)")
	fsync := flag.String("fsync", "always", "WAL flush policy: always (no acknowledged write ever lost), interval, or never")
	walMax := flag.Int64("wal-max-bytes", 0, "per-collection WAL size that triggers a maintenance checkpoint (0 = 16 MiB)")
	shutdownWait := flag.Duration("shutdown-timeout", 10*time.Second, "grace period for in-flight requests on shutdown")
	useMmap := flag.Bool("mmap", true, "memory-map sealed segment files instead of loading them onto the heap (BOND_NO_MMAP=1 also disables)")
	quiet := flag.Bool("quiet", false, "suppress per-request and maintenance logging")
	follow := flag.String("follow", "", "run as a replica tailing the leader bondd at this base URL (read-only until promoted via POST /promote)")
	followInterval := flag.Duration("follow-interval", 500*time.Millisecond, "replica: leader sync period")
	coordinator := flag.Bool("coordinator", false, "serve as a sharding coordinator over -topology instead of local collections")
	topologyPath := flag.String("topology", "", "coordinator: JSON topology file mapping shard ids to base URLs")
	degrade := flag.String("degrade", "strict", "coordinator: degradation policy when a shard stays missing: strict or partial")
	shardRetries := flag.Int("shard-retries", 3, "coordinator: attempts per shard call, first try included")
	retryBackoff := flag.Duration("retry-backoff", 20*time.Millisecond, "coordinator: base backoff between shard retries (exponential, jittered)")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinator: hedge a second shard request after this much silence (0 disables)")
	breakerThreshold := flag.Int("breaker-threshold", 5, "coordinator: consecutive failures that open a shard's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 2*time.Second, "coordinator: how long an open breaker fast-fails before a trial call")
	probeInterval := flag.Duration("probe-interval", time.Second, "coordinator: background shard health-probe period (0 disables)")
	queryTimeout := flag.Duration("query-timeout", 5*time.Second, "coordinator: fan-out budget for requests without timeout_ms")
	promoteReplicas := flag.Bool("promote-replicas", true, "coordinator: fail a dead shard over to a caught-up replica from the topology's replicas list")
	readReplicas := flag.Bool("read-replicas", false, "coordinator: steer idempotent reads to caught-up replicas")
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	if *coordinator {
		runCoordinator(coordinatorFlags{
			addr:             *addr,
			topologyPath:     *topologyPath,
			degrade:          *degrade,
			shardRetries:     *shardRetries,
			retryBackoff:     *retryBackoff,
			hedgeAfter:       *hedgeAfter,
			breakerThreshold: *breakerThreshold,
			breakerCooldown:  *breakerCooldown,
			probeInterval:    *probeInterval,
			queryTimeout:     *queryTimeout,
			promoteReplicas:  *promoteReplicas,
			readReplicas:     *readReplicas,
			shutdownWait:     *shutdownWait,
			logf:             logf,
		})
		return
	}
	fsyncPolicy, err := bond.ParseFsync(*fsync)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{
		Dir:                 *dataDir,
		SegmentSize:         *segSize,
		MaxInFlight:         *maxInFlight,
		CompactRatio:        *compactRatio,
		ReclusterSpread:     *reclusterSpread,
		MaxBodyBytes:        *maxBody,
		Fsync:               fsyncPolicy,
		WALMaxBytes:         *walMax,
		MaintenanceInterval: *maintEvery,
		DisableMmap:         !*useMmap,
		FollowURL:           *follow,
		FollowInterval:      *followInterval,
		Logf:                logf,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		logf("bondd: serving on %s from %s", *addr, *dataDir)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		// Listen failed before any signal; nothing to drain.
		fatal(err)
	case <-ctx.Done():
	}

	logf("bondd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logf("bondd: drain: %v", err)
	}
	if err := srv.Close(); err != nil {
		fatal(fmt.Errorf("flush on shutdown: %w", err))
	}
	logf("bondd: flushed, bye")
}

type coordinatorFlags struct {
	addr             string
	topologyPath     string
	degrade          string
	shardRetries     int
	retryBackoff     time.Duration
	hedgeAfter       time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	probeInterval    time.Duration
	queryTimeout     time.Duration
	promoteReplicas  bool
	readReplicas     bool
	shutdownWait     time.Duration
	logf             func(string, ...any)
}

// runCoordinator serves coordinator mode: same HTTP surface, but every
// request is fanned out to / routed across the shards in -topology.
func runCoordinator(f coordinatorFlags) {
	if f.topologyPath == "" {
		fatal(errors.New("-coordinator requires -topology"))
	}
	topo, err := shard.LoadTopology(f.topologyPath)
	if err != nil {
		fatal(err)
	}
	policy, err := shard.ParsePolicy(f.degrade)
	if err != nil {
		fatal(err)
	}
	co, err := shard.NewCoordinator(shard.Config{
		Topology: topo,
		Envelope: shard.Envelope{
			MaxAttempts: f.shardRetries,
			BackoffBase: f.retryBackoff,
			HedgeAfter:  f.hedgeAfter,
		},
		BreakerThreshold: f.breakerThreshold,
		BreakerCooldown:  f.breakerCooldown,
		ProbeInterval:    f.probeInterval,
		DefaultTimeout:   f.queryTimeout,
		DegradePolicy:    policy,
		PromoteReplicas:  f.promoteReplicas,
		ReadReplicas:     f.readReplicas,
		Logf:             f.logf,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              f.addr,
		Handler:           co.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		f.logf("bondd: coordinating %d shards on %s (policy %s)", topo.N(), f.addr, policy)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	f.logf("bondd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), f.shutdownWait)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		f.logf("bondd: drain: %v", err)
	}
	_ = co.Close()
	f.logf("bondd: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bondd:", err)
	os.Exit(1)
}

// Command bondbench regenerates the tables and figures of the paper's
// evaluation (Sections 7 and 8) at a configurable scale.
//
// Usage:
//
//	bondbench -all                 # every figure, table, and ablation
//	bondbench -fig 4 -fig 7        # selected figures
//	bondbench -table 3             # selected tables
//	bondbench -exp multifeature    # the Section 8.2 experiment
//	bondbench -exp usefulness      # the Section 9 query-usefulness check
//	bondbench -exp clustering      # BOND-assignment k-means vs Lloyd's
//	bondbench -ablations           # design-choice ablations
//	bondbench -full -all           # paper scale (59,619 × 166, 100 queries)
//
// Scale flags (-n, -dims, -queries, -k, -step, -seed) override both the
// default and -full configurations.
//
// -qps runs the hot-path throughput suite instead (sequential Query vs
// QueryBatch plus the kernel micro-speedups, per data shape) and writes
// the measurements to the file named by -hotpath-out. -cpuprofile and
// -memprofile capture pprof profiles of whatever was selected, so a
// hot-path regression can be diagnosed without editing code.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"bond/internal/bench"
	"bond/internal/hotpath"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }

func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var figs, tables intList
	var exps []string
	flag.Var(&figs, "fig", "figure number to regenerate (repeatable): 2, 4–11")
	flag.Var(&tables, "table", "table number to regenerate (repeatable): 3, 4")
	flag.Func("exp", "named experiment (repeatable): multifeature, usefulness, clustering", func(s string) error {
		exps = append(exps, s)
		return nil
	})
	all := flag.Bool("all", false, "run every figure, table, and experiment")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	full := flag.Bool("full", false, "use the paper-scale configuration")
	n := flag.Int("n", 0, "collection size (0 = configuration default)")
	dims := flag.Int("dims", 0, "dimensionality (0 = configuration default)")
	queries := flag.Int("queries", 0, "query workload size (0 = configuration default)")
	k := flag.Int("k", 0, "neighbors per query (0 = configuration default)")
	step := flag.Int("step", 0, "pruning step m (0 = configuration default)")
	seed := flag.Int64("seed", 0, "workload seed (0 = configuration default)")
	qps := flag.Bool("qps", false, "run the hot-path QPS/throughput suite (Query vs QueryBatch, kernel micros, mmap-vs-heap durable rows)")
	mmapMode := flag.String("mmap", "on", "durable-suite segment backing: on (measure mmap and heap legs) or off (heap only)")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "where -qps writes its JSON measurements")
	recluster := flag.Bool("recluster", false, "run the re-clustering suite (QPS before/after one background recluster, plus the cluster-contiguous ceiling)")
	reclusterOut := flag.String("recluster-out", "BENCH_recluster.json", "where -recluster writes its JSON measurements")
	batch := flag.Int("batch", 8, "QueryBatch size for the -qps suite")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	if *qps || *recluster {
		hcfg := hotpath.DefaultConfig()
		if *n > 0 {
			hcfg.N = *n
		}
		if *dims > 0 {
			hcfg.Dims = *dims
		}
		if *queries > 0 {
			hcfg.Queries = *queries
		}
		if *k > 0 {
			hcfg.K = *k
		}
		if *batch > 0 {
			hcfg.Batch = *batch
		}
		switch *mmapMode {
		case "on", "off":
		default:
			fatal(fmt.Errorf("-mmap must be on or off, got %q", *mmapMode))
		}
		hcfg.DisableMmap = *mmapMode == "off"
		if *qps {
			records, err := hotpath.Run(hcfg, os.Stdout)
			if err != nil {
				fatal(err)
			}
			durRecords, err := hotpath.RunMmap(hcfg, os.Stdout)
			if err != nil {
				fatal(err)
			}
			records = append(records, durRecords...)
			if err := hotpath.WriteJSON(*hotpathOut, records); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %d records to %s\n", len(records), *hotpathOut)
		}
		if *recluster {
			records, err := hotpath.RunRecluster(hcfg, os.Stdout)
			if err != nil {
				fatal(err)
			}
			if err := hotpath.WriteJSON(*reclusterOut, records); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %d records to %s\n", len(records), *reclusterOut)
		}
		return
	}

	cfg := bench.Default()
	if *full {
		cfg = bench.Paper()
	}
	if *n > 0 {
		cfg.N = *n
	}
	if *dims > 0 {
		cfg.Dims = *dims
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *step > 0 {
		cfg.Step = *step
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	if *all {
		figs = []int{2, 4, 5, 6, 7, 8, 9, 10, 11}
		tables = []int{3, 4}
		exps = []string{"multifeature", "usefulness", "clustering"}
		*ablations = true
	}
	if len(figs) == 0 && len(tables) == 0 && len(exps) == 0 && !*ablations {
		fmt.Fprintln(os.Stderr, "nothing selected; use -all, -fig N, -table N, -exp NAME, or -ablations")
		flag.Usage()
		os.Exit(2)
	}

	fmt.Printf("configuration: n=%d dims=%d queries=%d k=%d step=%d seed=%d\n\n",
		cfg.N, cfg.Dims, cfg.Queries, cfg.K, cfg.Step, cfg.Seed)

	figRunners := map[int]func(bench.Config) bench.Figure{
		2:  bench.Fig2DatasetStats,
		4:  bench.Fig4PruningHqHh,
		5:  bench.Fig5PruningEqEv,
		6:  bench.Fig6EffectOfK,
		7:  bench.Fig7Orderings,
		8:  bench.Fig8Dimensionality,
		9:  bench.Fig9Compression,
		10: bench.Fig10DataSkew,
		11: bench.Fig11WeightSkew,
	}
	tableRunners := map[int]func(bench.Config) bench.Table{
		3: bench.Table3ResponseTimes,
		4: bench.Table4Approximations,
	}

	for _, id := range figs {
		run, ok := figRunners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown figure %d\n", id)
			os.Exit(2)
		}
		fig := run(cfg)
		if err := fig.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, id := range tables {
		run, ok := tableRunners[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown table %d\n", id)
			os.Exit(2)
		}
		tab := run(cfg)
		if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	for _, name := range exps {
		var tab bench.Table
		switch strings.ToLower(name) {
		case "multifeature":
			tab = bench.MultiFeatureComparison(cfg)
		case "usefulness":
			tab = bench.UsefulnessValidation(cfg)
		case "clustering":
			tab = bench.ClusteringComparison(cfg)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
	if *ablations {
		for _, tab := range []bench.Table{
			bench.AblationStepM(cfg),
			bench.AblationBitmapSwitch(cfg),
			bench.AblationAbandonScan(cfg),
			bench.AblationAdaptiveStep(cfg),
		} {
			if err := tab.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bondbench:", err)
	os.Exit(1)
}

package bond

import (
	"math/rand"
	"sync"
	"testing"

	"bond/internal/seqscan"
)

// The concurrency stress test runs searchers of every flavor against one
// Collection while a mutator appends, deletes, and compacts — and asserts
// that every single result set is exact.
//
// Exactness under concurrent mutation is made checkable by construction:
// a "stable" prefix of vectors lives near the query (high similarity, low
// distance) in its own sealed segments and is never touched, while all
// churn happens to "far" vectors whose best possible score can never
// reach the stable top-k. Whatever interleaving a search observes, its
// exact answer is therefore the stable top-k, which a sequential scan
// computes up front.

const (
	stressDims   = 12
	stressStable = 320
	stressK      = 5
	stressSeg    = 64
)

// stressQuery concentrates its mass on dimensions 0–5.
func stressQuery() []float64 {
	q := make([]float64, stressDims)
	for d := 0; d < 6; d++ {
		q[d] = 0.5
	}
	return q
}

// stableVectors sit within ±0.05 of the query: histogram similarity well
// above 2, squared distance below 0.02.
func stableVectors(rng *rand.Rand) [][]float64 {
	q := stressQuery()
	out := make([][]float64, stressStable)
	for i := range out {
		v := make([]float64, stressDims)
		for d := 0; d < 6; d++ {
			v[d] = q[d] - 0.05 + 0.1*rng.Float64()
		}
		out[i] = v
	}
	return out
}

// churnVector has disjoint support (dimensions 6–11): histogram
// intersection with the query is exactly 0, squared distance at least
// 6·0.5² + 6·0.7² — hopeless against every stable vector.
func churnVector(rng *rand.Rand) []float64 {
	v := make([]float64, stressDims)
	for d := 6; d < stressDims; d++ {
		v[d] = 0.7 + 0.2*rng.Float64()
	}
	return v
}

func TestConcurrentSearchExactAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	stable := stableVectors(rng)
	col := NewSegmented(stressDims, stressSeg)
	col.AddBatch(stable)
	col.SealActive() // churn never shares a segment with stable vectors
	q := stressQuery()

	// Oracles, computed sequentially before any concurrency starts. The
	// compressed path accumulates refine scores in a different dimension
	// order, so it gets its own oracle.
	oracleHq, _ := seqscan.SearchHistogram(stable, q, stressK)
	oracleEv, _ := seqscan.SearchEuclidean(stable, q, stressK)
	searchHq, err := col.Search(q, Options{K: stressK, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	searchEv, err := col.Search(q, Options{K: stressK, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	compressedHq, err := col.SearchCompressed(q, Options{K: stressK, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	// The engine oracles must agree with the sequential scan (tolerating
	// summation-order ulps in the scores, not in the ids).
	for i := range oracleHq {
		if searchHq.Results[i].ID != oracleHq[i].ID {
			t.Fatalf("Hq oracle rank %d: engine id %d, scan id %d", i, searchHq.Results[i].ID, oracleHq[i].ID)
		}
		if searchEv.Results[i].ID != oracleEv[i].ID {
			t.Fatalf("Ev oracle rank %d: engine id %d, scan id %d", i, searchEv.Results[i].ID, oracleEv[i].ID)
		}
	}

	check := func(t *testing.T, label string, got []Neighbor, want []Neighbor) {
		if len(got) != len(want) {
			t.Errorf("%s: %d results, want %d", label, len(got), len(want))
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s rank %d: {%d %v}, want {%d %v}", label, i,
					got[i].ID, got[i].Score, want[i].ID, want[i].Score)
				return
			}
		}
	}

	const (
		readerIters  = 120
		mutatorIters = 400
	)
	var wg sync.WaitGroup
	run := func(fn func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readerIters; i++ {
				fn(i)
			}
		}()
	}

	// Searchers: plain, parallel, compressed, progressive.
	run(func(i int) {
		res, err := col.Search(q, Options{K: stressK, Criterion: Hq})
		if err != nil {
			t.Error(err)
			return
		}
		check(t, "Search/Hq", res.Results, searchHq.Results)
	})
	run(func(i int) {
		res, err := col.Search(q, Options{K: stressK, Criterion: Ev})
		if err != nil {
			t.Error(err)
			return
		}
		check(t, "Search/Ev", res.Results, searchEv.Results)
	})
	run(func(i int) {
		res, err := col.SearchParallel(q, Options{K: stressK, Criterion: Hq}, 4)
		if err != nil {
			t.Error(err)
			return
		}
		check(t, "SearchParallel/Hq", res.Results, searchHq.Results)
	})
	run(func(i int) {
		res, err := col.SearchCompressed(q, Options{K: stressK, Criterion: Hq})
		if err != nil {
			t.Error(err)
			return
		}
		check(t, "SearchCompressed/Hq", res.Results, compressedHq.Results)
	})
	run(func(i int) {
		p, err := col.SearchProgressive(q, Options{K: stressK, Criterion: Ev, Step: 3})
		if err != nil {
			t.Error(err)
			return
		}
		res := p.Finish()
		check(t, "SearchProgressive/Ev", res.Results, searchEv.Results)
	})

	// Mutator: appends churn, deletes some of it, compacts periodically.
	// A single goroutine owns all writes so the ids it deletes are always
	// current (Compact remaps churn ids, never stable ones).
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(7))
		for i := 0; i < mutatorIters; i++ {
			id := col.Add(churnVector(mrng))
			if i%3 != 0 {
				col.Delete(id)
			}
			if i%61 == 60 {
				col.Compact()
			}
			if i%97 == 96 {
				col.CompactRatio(0.4)
			}
		}
	}()

	wg.Wait()

	// After the dust settles the stable answer is unchanged, and the
	// stable prefix was never remapped.
	res, err := col.Search(q, Options{K: stressK, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	check(t, "post-stress Search/Hq", res.Results, searchHq.Results)
	for i, v := range stable[:5] {
		got := col.Vector(i)
		for d := range v {
			if got[d] != v[d] {
				t.Fatalf("stable vector %d changed", i)
			}
		}
	}
}

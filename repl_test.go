package bond

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"bond/internal/crashfs"
	"bond/internal/iofs"
	"bond/internal/vstore"
	"bond/internal/wal"
)

// The replication suite reuses the crash-matrix machinery: the same
// deterministic mutation history, the same oracle dumps, the same
// byte-budget crash filesystem — but now the subject is a follower
// tailing a leader's WAL stream. The contract under test:
//
//   - a follower in lockstep with the leader is byte-identical to it —
//     same segment files, same manifest (modulo the opaque planner
//     stats), same WAL bytes, same stream position;
//   - a follower crashed at ANY byte boundary of its apply or bootstrap
//     path recovers to a prefix of the leader's history and converges
//     back to identical state when tailing resumes;
//   - a promoted follower is a full leader: writes applied after
//     promotion survive crashes under the same matrix contract.

// mustOpenDurable opens (or creates) a durable collection or fails the
// test.
func mustOpenDurable(t *testing.T, fs iofs.FS, dir string, policy FsyncPolicy) *Collection {
	t.Helper()
	c, err := OpenDurable(dir, DurableOptions{
		FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: policy,
	})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return c
}

// tailReplica pumps replication chunks from leader to follower until
// the follower is caught up with the leader's live position. It mirrors
// the serving layer's sync loop: apply, checkpoint on rotation, double
// the chunk size when a full chunk carries no complete frame.
func tailReplica(leader, follower *Collection) error {
	max := 0
	for {
		pos, err := follower.ReplPosition()
		if err != nil {
			return err
		}
		ch, err := leader.ReplChunk(pos.Seq, pos.Off, max)
		if err != nil {
			return err
		}
		if err := follower.ApplyReplChunk(ch); err != nil {
			return err
		}
		after, err := follower.ReplPosition()
		if err != nil {
			return err
		}
		switch {
		case ch.Rotated && after == ch.End():
			// Generation fully applied: mirror the leader's rotation.
			if err := follower.Checkpoint(); err != nil {
				return err
			}
			max = 0
		case len(ch.Data) == 0 && !ch.Rotated:
			return nil // caught up with the live position
		case len(ch.Data) > 0 && after == pos:
			// A full chunk with no complete frame: need a bigger window.
			if max == 0 {
				max = 2 * replChunkDefault
			} else {
				max *= 2
			}
			if max > replChunkMax {
				return errors.New("tailReplica: no progress at max chunk size")
			}
		default:
			max = 0
		}
	}
}

// tailOrBootstrap tails the leader, re-bootstrapping the follower from
// a fresh snapshot when its position was checkpoint-deleted on the
// leader. Returns the (possibly replaced) follower.
func tailOrBootstrap(t *testing.T, fs iofs.FS, dir string, leader, follower *Collection, policy FsyncPolicy) *Collection {
	t.Helper()
	for {
		err := tailReplica(leader, follower)
		if err == nil {
			return follower
		}
		if !errors.Is(err, ErrReplGone) {
			t.Fatalf("tail: %v", err)
		}
		snap, serr := leader.ReplSnapshot()
		if serr != nil {
			t.Fatalf("snapshot: %v", serr)
		}
		follower.Close()
		follower, err = BootstrapReplica(dir, snap, DurableOptions{
			FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: policy,
		})
		if err != nil {
			t.Fatalf("bootstrap: %v", err)
		}
	}
}

// assertReplicaIdentical compares two durable directories byte for
// byte: identical file sets, identical contents — except MANIFEST,
// which is compared field-by-field modulo the opaque planner-stats
// block (heuristic cost-model state, explicitly outside the replication
// contract).
func assertReplicaIdentical(t *testing.T, lfs iofs.FS, ldir string, ffs iofs.FS, fdir string) {
	t.Helper()
	lnames, err := lfs.ReadDir(ldir)
	if err != nil {
		t.Fatalf("readdir %s: %v", ldir, err)
	}
	fnames, err := ffs.ReadDir(fdir)
	if err != nil {
		t.Fatalf("readdir %s: %v", fdir, err)
	}
	sort.Strings(lnames)
	sort.Strings(fnames)
	if !reflect.DeepEqual(lnames, fnames) {
		t.Fatalf("file sets differ:\n  leader   %v\n  follower %v", lnames, fnames)
	}
	for _, name := range lnames {
		ldata, err := lfs.ReadFile(ldir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		fdata, err := ffs.ReadFile(fdir + "/" + name)
		if err != nil {
			t.Fatal(err)
		}
		if name == vstore.ManifestName {
			lm, lerr := vstore.DecodeManifest(ldata)
			fm, ferr := vstore.DecodeManifest(fdata)
			if lerr != nil || ferr != nil {
				t.Fatalf("manifest decode: leader %v, follower %v", lerr, ferr)
			}
			lm.PlannerStats, fm.PlannerStats = nil, nil
			if !reflect.DeepEqual(lm, fm) {
				t.Fatalf("manifests differ (modulo planner stats):\n  leader   %+v\n  follower %+v", lm, fm)
			}
			continue
		}
		if !bytes.Equal(ldata, fdata) {
			t.Fatalf("file %s differs between leader and follower (%d vs %d bytes)", name, len(ldata), len(fdata))
		}
	}
}

// --- Unit tests -----------------------------------------------------------

// TestReplTailLockstep drives the full crash history on a leader with a
// follower tailing after every op: the follower must track every state
// and end byte-identical.
func TestReplTailLockstep(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	follower := mustOpenDurable(t, fs, "replica.bond", FsyncNever)
	defer leader.Close()
	defer follower.Close()

	ops := crashHistory()
	dumps := oracleDumps(t, ops)
	for i, op := range ops {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := tailReplica(leader, follower); err != nil {
			t.Fatalf("tail after op %d: %v", i, err)
		}
		if got := dumpCollection(follower); !sameDump(got, dumps[i+1]) {
			t.Fatalf("follower diverged after op %d (%s)", i, op.kind)
		}
		lp, _ := leader.ReplPosition()
		fp, _ := follower.ReplPosition()
		if lp != fp {
			t.Fatalf("positions diverged after op %d: leader %v, follower %v", i, lp, fp)
		}
	}
	assertReplicaIdentical(t, fs, "leader.bond", fs, "replica.bond")
}

// TestReplSnapshotBootstrap joins a follower late — after the leader
// already checkpointed its early history away — via snapshot bootstrap,
// then tails the rest.
func TestReplSnapshotBootstrap(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	defer leader.Close()

	ops := crashHistory()
	dumps := oracleDumps(t, ops)
	half := len(ops) / 2
	for _, op := range ops[:half] {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := leader.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	follower, err := BootstrapReplica("replica.bond", snap, DurableOptions{
		FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncNever,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer follower.Close()
	if got := dumpCollection(follower); !sameDump(got, dumps[half]) {
		t.Fatalf("bootstrapped follower state diverged from oracle at op %d", half)
	}
	for i, op := range ops[half:] {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatalf("op %d: %v", half+i, err)
		}
		if err := tailReplica(leader, follower); err != nil {
			t.Fatalf("tail after op %d: %v", half+i, err)
		}
	}
	if got := dumpCollection(follower); !sameDump(got, dumps[len(ops)]) {
		t.Fatal("follower final state diverged from oracle")
	}
	assertReplicaIdentical(t, fs, "leader.bond", fs, "replica.bond")
}

// TestReplStaleFollowerGone: a follower parked before a leader
// checkpoint finds its position garbage-collected (ErrReplGone) and
// recovers by re-bootstrapping.
func TestReplStaleFollowerGone(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	follower := mustOpenDurable(t, fs, "replica.bond", FsyncNever)
	defer leader.Close()

	if _, err := leader.AddDurable([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The follower does NOT tail; the leader checkpoints the record away.
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pos, _ := follower.ReplPosition()
	if _, err := leader.ReplChunk(pos.Seq, pos.Off, 0); !errors.Is(err, ErrReplGone) {
		t.Fatalf("stale position: got %v, want ErrReplGone", err)
	}
	follower = tailOrBootstrap(t, fs, "replica.bond", leader, follower, FsyncNever)
	defer follower.Close()
	if got, want := dumpCollection(follower), dumpCollection(leader); !sameDump(got, want) {
		t.Fatal("re-bootstrapped follower diverged")
	}
	assertReplicaIdentical(t, fs, "leader.bond", fs, "replica.bond")
}

// TestReplChunkFencing pins the stream's failure modes: positions the
// leader never produced are diverged, deleted generations are gone, and
// a drained follower at a rotation boundary is told to rotate, not to
// re-bootstrap.
func TestReplChunkFencing(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	defer leader.Close()
	if _, err := leader.AddDurable([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pos, _ := leader.ReplPosition()

	if _, err := leader.ReplChunk(pos.Seq, 3, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("offset inside header: got %v, want ErrReplDiverged", err)
	}
	if _, err := leader.ReplChunk(pos.Seq+1, wal.HeaderLen, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("future generation: got %v, want ErrReplDiverged", err)
	}
	if _, err := leader.ReplChunk(pos.Seq, pos.Off+1, 0); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("offset past leader: got %v, want ErrReplDiverged", err)
	}
	ch, err := leader.ReplChunk(pos.Seq, pos.Off, 0)
	if err != nil || len(ch.Data) != 0 || ch.Rotated {
		t.Fatalf("live position: got %+v, %v; want empty unrotated chunk", ch, err)
	}

	// Rotate and drain: the old generation must answer Rotated at its
	// end even after its file is checkpoint-deleted.
	if err := leader.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ch, err = leader.ReplChunk(pos.Seq, pos.Off, 0)
	if err != nil || !ch.Rotated || len(ch.Data) != 0 {
		t.Fatalf("drained rotated generation: got %+v, %v; want Rotated", ch, err)
	}
	if _, err := leader.ReplChunk(pos.Seq, wal.HeaderLen, 0); !errors.Is(err, ErrReplGone) {
		t.Fatalf("undrained deleted generation: got %v, want ErrReplGone", err)
	}
}

// TestReplApplyIdempotentAndGap: overlapping chunks re-apply cleanly
// (at-least-once delivery), gapped chunks fence.
func TestReplApplyIdempotentAndGap(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	follower := mustOpenDurable(t, fs, "replica.bond", FsyncNever)
	defer leader.Close()
	defer follower.Close()

	for i := 0; i < 3; i++ {
		if _, err := leader.AddDurable([]float64{float64(i), 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	start, _ := follower.ReplPosition()
	ch, err := leader.ReplChunk(start.Seq, start.Off, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyReplChunk(ch); err != nil {
		t.Fatal(err)
	}
	// Re-applying the same chunk is a no-op, not a duplicate.
	if err := follower.ApplyReplChunk(ch); err != nil {
		t.Fatalf("idempotent re-apply: %v", err)
	}
	if follower.Len() != 3 {
		t.Fatalf("duplicate application: len %d, want 3", follower.Len())
	}
	// A chunk that skips bytes is a gap — fenced, not patched.
	gap := ch
	gap.From = ch.End().Off + 8
	gap.Data = []byte{1, 2, 3}
	if err := follower.ApplyReplChunk(gap); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("gap: got %v, want ErrReplDiverged", err)
	}
	// A chunk for the wrong generation is fenced too.
	wrong := ch
	wrong.Seq = ch.Seq + 4
	if err := follower.ApplyReplChunk(wrong); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("wrong generation: got %v, want ErrReplDiverged", err)
	}
}

// TestReplApplyCorruptFrame: corrupted stream bytes fence the replica
// (fail closed) instead of applying garbage.
func TestReplApplyCorruptFrame(t *testing.T) {
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	follower := mustOpenDurable(t, fs, "replica.bond", FsyncNever)
	defer leader.Close()
	defer follower.Close()

	if _, err := leader.AddDurable([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pos, _ := follower.ReplPosition()
	ch, err := leader.ReplChunk(pos.Seq, pos.Off, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch.Data[len(ch.Data)-1] ^= 0xFF // flip a payload byte: CRC mismatch
	if err := follower.ApplyReplChunk(ch); !errors.Is(err, ErrReplDiverged) {
		t.Fatalf("corrupt frame: got %v, want ErrReplDiverged", err)
	}
	if follower.Len() != 0 {
		t.Fatalf("corrupt frame applied: len %d", follower.Len())
	}
}

// --- Crash sweeps ---------------------------------------------------------

// runReplFollowerCrashSweep is the follower half of the crash matrix:
// the leader executes the history on a plain MemFS while a follower
// tails in lockstep on the fault-injecting filesystem. Every byte the
// follower writes — WAL mirror appends, checkpoint files, bootstrap
// staging — is a potential crash point; at each one the follower must
// recover to a prefix of the leader's history and then converge back to
// the leader's exact final state.
func runReplFollowerCrashSweep(t *testing.T, policy FsyncPolicy, mode crashfs.Mode) {
	ops := crashHistory()
	dumps := oracleDumps(t, ops)

	run := func(ffs *crashfs.FS) (leaderFS *iofs.MemFS, leaderOps int, crashed bool) {
		lfs := iofs.NewMemFS()
		leader := mustOpenDurable(t, lfs, "leader.bond", FsyncNever)
		defer leader.Close()
		follower, err := OpenDurable("col", DurableOptions{
			FS: ffs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: policy,
		})
		if err != nil {
			return lfs, 0, true // crashed during creation
		}
		for i, op := range ops {
			if err := applyCrashOp(leader, op); err != nil {
				t.Fatalf("leader op %d failed: %v", i, err)
			}
			leaderOps = i + 1
			if err := tailReplica(leader, follower); err != nil {
				return lfs, leaderOps, true
			}
		}
		return lfs, leaderOps, false
	}

	dry := crashfs.New(-1)
	_, leaderOps, crashed := run(dry)
	if crashed || leaderOps != len(ops) {
		t.Fatalf("dry run crashed at leader op %d", leaderOps)
	}
	total := dry.Steps()
	t.Logf("sweeping %d follower crash points (%s, %v)", total, policy, mode)

	for budget := int64(0); budget < total; budget++ {
		ffs := crashfs.New(budget)
		_, leaderOps, _ := run(ffs)
		if !ffs.Crashed() {
			t.Fatalf("budget %d: crash did not trip", budget)
		}
		survivor := ffs.Survivor(mode)
		rec := recoverSurvivor(t, budget, survivor, policy)
		got := dumpCollection(rec)
		matched := -1
		for j := leaderOps; j >= 0; j-- {
			if sameDump(got, dumps[j]) {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Fatalf("budget %d (%s, %v): recovered follower is not a prefix of the leader history (leader at op %d)",
				budget, policy, mode, leaderOps)
		}
		rec.Close()
	}
}

func TestCrashMatrixReplFollowerFsyncAlwaysPowerLoss(t *testing.T) {
	runReplFollowerCrashSweep(t, FsyncAlways, crashfs.PowerLoss)
}

func TestCrashMatrixReplFollowerFsyncNeverProcessCrash(t *testing.T) {
	runReplFollowerCrashSweep(t, FsyncNever, crashfs.ProcessCrash)
}

// TestCrashMatrixReplFollowerResume: crash the follower at a sampled
// set of points, recover, and resume tailing (re-bootstrapping when the
// leader checkpointed past the follower) — every resume must converge
// to the leader's exact final state, byte for byte.
func TestCrashMatrixReplFollowerResume(t *testing.T) {
	ops := crashHistory()
	dumps := oracleDumps(t, ops)

	// Measure the sweep range once.
	dryL := iofs.NewMemFS()
	leader := mustOpenDurable(t, dryL, "leader.bond", FsyncNever)
	dry := crashfs.New(-1)
	follower, err := OpenDurable("col", DurableOptions{
		FS: dry, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatal(err)
		}
		if err := tailReplica(leader, follower); err != nil {
			t.Fatal(err)
		}
	}
	follower.Close()
	leader.Close()
	total := dry.Steps()

	// Resuming replays the full leader history per crash point; sample
	// every 7th point to keep the sweep affordable (the full-density
	// prefix contract is covered by the sweeps above).
	for budget := int64(0); budget < total; budget += 7 {
		lfs := iofs.NewMemFS()
		leader := mustOpenDurable(t, lfs, "leader.bond", FsyncNever)
		ffs := crashfs.New(budget)
		fol, err := OpenDurable("col", DurableOptions{
			FS: ffs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
		})
		crashed := err != nil
		leaderOps := 0
		if !crashed {
			for i, op := range ops {
				if err := applyCrashOp(leader, op); err != nil {
					t.Fatal(err)
				}
				leaderOps = i + 1
				if err := tailReplica(leader, fol); err != nil {
					crashed = true
					break
				}
			}
		}
		if !crashed {
			t.Fatalf("budget %d: crash did not trip", budget)
		}
		// Recover on the survivor and finish the history.
		survivor := ffs.Survivor(crashfs.PowerLoss)
		rec := recoverSurvivor(t, budget, survivor, FsyncAlways)
		for i := leaderOps; i < len(ops); i++ {
			if err := applyCrashOp(leader, ops[i]); err != nil {
				t.Fatal(err)
			}
		}
		rec = tailOrBootstrap(t, survivor, "col", leader, rec, FsyncAlways)
		if got := dumpCollection(rec); !sameDump(got, dumps[len(ops)]) {
			t.Fatalf("budget %d: resumed follower did not converge to the leader's final state", budget)
		}
		lp, _ := leader.ReplPosition()
		fp, _ := rec.ReplPosition()
		if lp != fp {
			t.Fatalf("budget %d: resumed positions diverged: leader %v, follower %v", budget, lp, fp)
		}
		// A crash-resumed follower may trail the leader by one checkpoint
		// generation in its local files (same logical state, same stream
		// position, older manifest). One more rotation re-aligns the
		// checkpoint histories; after it the directories must be
		// byte-identical.
		if err := leader.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		rec = tailOrBootstrap(t, survivor, "col", leader, rec, FsyncAlways)
		assertReplicaIdentical(t, lfs, "leader.bond", survivor, "col")
		rec.Close()
		leader.Close()
	}
}

// TestCrashMatrixReplBootstrap sweeps every byte of a snapshot install
// over a stale follower: at any crash point the follower must hold its
// old state, nothing, or the complete new state — never a torn install
// — and re-running the bootstrap must converge.
func TestCrashMatrixReplBootstrap(t *testing.T) {
	lfs := iofs.NewMemFS()
	leader := mustOpenDurable(t, lfs, "leader.bond", FsyncNever)
	defer leader.Close()
	ops := crashHistory()
	for _, op := range ops {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := leader.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	leaderDump := dumpCollection(leader)

	// The stale follower: an unrelated short history of its own.
	staleFS := iofs.NewMemFS()
	stale := mustOpenDurable(t, staleFS, "col", FsyncNever)
	for i := 0; i < 4; i++ {
		if _, err := stale.AddDurable([]float64{float64(i), 0, 1}); err != nil {
			t.Fatal(err)
		}
	}
	staleDump := dumpCollection(stale)
	stale.Close()
	emptyDump := dumpCollection(NewSegmented(crashDims, crashSegSize))

	opts := func(fs iofs.FS) DurableOptions {
		return DurableOptions{FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways}
	}
	dry := crashfs.NewFrom(staleFS.Clone(false), -1)
	c, err := BootstrapReplica("col", snap, opts(dry))
	if err != nil {
		t.Fatalf("dry bootstrap: %v", err)
	}
	if got := dumpCollection(c); !sameDump(got, leaderDump) {
		t.Fatal("dry bootstrap diverged from leader")
	}
	c.Close()
	total := dry.Steps()
	t.Logf("sweeping %d bootstrap crash points", total)

	for budget := int64(0); budget < total; budget++ {
		ffs := crashfs.NewFrom(staleFS.Clone(false), budget)
		if c, err := BootstrapReplica("col", snap, opts(ffs)); err == nil {
			c.Close()
		}
		if !ffs.Crashed() {
			t.Fatalf("budget %d: crash did not trip", budget)
		}
		survivor := ffs.Survivor(crashfs.PowerLoss)
		rec := recoverSurvivor(t, budget, survivor, FsyncAlways)
		got := dumpCollection(rec)
		rec.Close()
		if !sameDump(got, staleDump) && !sameDump(got, emptyDump) && !sameDump(got, leaderDump) {
			t.Fatalf("budget %d: torn bootstrap surfaced as data: %+v", budget, got)
		}
		// Re-running the install on the survivor must converge.
		redo, err := BootstrapReplica("col", snap, opts(survivor))
		if err != nil {
			t.Fatalf("budget %d: re-bootstrap failed: %v", budget, err)
		}
		if got := dumpCollection(redo); !sameDump(got, leaderDump) {
			t.Fatalf("budget %d: re-bootstrap diverged from leader", budget)
		}
		redo.Close()
	}
}

// TestCrashMatrixReplPromote: a caught-up follower is promoted and
// starts taking writes of its own; the crash matrix must hold across
// the post-promotion writes — promotion hands over the full durability
// contract, not a weakened one.
func TestCrashMatrixReplPromote(t *testing.T) {
	ops := crashHistory()
	promoOps := []crashOp{
		{kind: "add", vec: []float64{0.9, 0.1, 0.5}},
		{kind: "batch", batch: [][]float64{{0.2, 0.3, 0.4}, {0.5, 0.6, 0.7}}},
		{kind: "delete", id: 1},
		{kind: "checkpoint"},
		{kind: "add", vec: []float64{0.11, 0.22, 0.33}},
	}
	dumps := oracleDumps(t, append(append([]crashOp{}, ops...), promoOps...))

	// Build the caught-up follower state once on a MemFS.
	fs := iofs.NewMemFS()
	leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
	follower := mustOpenDurable(t, fs, "col", FsyncAlways)
	for _, op := range ops {
		if err := applyCrashOp(leader, op); err != nil {
			t.Fatal(err)
		}
		if err := tailReplica(leader, follower); err != nil {
			t.Fatal(err)
		}
	}
	follower.Close()
	leader.Close()

	// Promotion is a serving-layer decision; at the storage layer the
	// promoted follower simply starts writing. Sweep crash points across
	// those first writes.
	dry := crashfs.NewFrom(fs.Clone(false), -1)
	promoted := recoverSurvivor(t, -1, dry, FsyncAlways)
	for _, op := range promoOps {
		if err := applyCrashOp(promoted, op); err != nil {
			t.Fatalf("dry promoted op: %v", err)
		}
	}
	if got := dumpCollection(promoted); !sameDump(got, dumps[len(ops)+len(promoOps)]) {
		t.Fatal("dry promoted run diverged from oracle")
	}
	// Steps() before Close: the sweep does not close, so the budget range
	// must cover exactly open + mutations.
	total := dry.Steps()
	promoted.Close()
	t.Logf("sweeping %d post-promotion crash points", total)

	for budget := int64(0); budget < total; budget++ {
		ffs := crashfs.NewFrom(fs.Clone(false), budget)
		acked := len(ops)
		inFlight := false
		if c, err := OpenDurable("col", DurableOptions{
			FS: ffs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
		}); err == nil {
			for _, op := range promoOps {
				if err := applyCrashOp(c, op); err != nil {
					inFlight = true
					break
				}
				acked++
			}
		}
		if !ffs.Crashed() {
			t.Fatalf("budget %d: crash did not trip", budget)
		}
		rec := recoverSurvivor(t, budget, ffs.Survivor(crashfs.PowerLoss), FsyncAlways)
		got := dumpCollection(rec)
		rec.Close()
		hi := acked
		if inFlight {
			hi++
		}
		matched := -1
		for j := hi; j >= len(ops); j-- {
			if sameDump(got, dumps[j]) {
				matched = j
				break
			}
		}
		if matched < 0 {
			t.Fatalf("budget %d: promoted follower state not a history prefix (acked %d)", budget, acked)
		}
		// No acknowledged write lost: fsync=always + power loss.
		if !sameDump(got, dumps[acked]) && !(inFlight && sameDump(got, dumps[acked+1])) {
			t.Fatalf("budget %d: acknowledged post-promotion write lost (matched %d, acked %d)", budget, matched, acked)
		}
	}
}

// --- Randomized concurrent property test ----------------------------------

// randomReplOps builds a seeded random mutation history over every op
// kind. All kinds are closed under no-op semantics (recluster and
// compact no-op when there is nothing to do; deletes are guarded), so
// any interleaving is valid on both the durable leader and the
// in-memory oracle.
func randomReplOps(rng *rand.Rand, n int) []crashOp {
	vec := func() []float64 {
		v := make([]float64, crashDims)
		for d := range v {
			v[d] = float64(rng.Intn(1000)) / 1000
		}
		return v
	}
	var ops []crashOp
	for i := 0; i < n; i++ {
		switch p := rng.Intn(100); {
		case p < 40:
			ops = append(ops, crashOp{kind: "add", vec: vec()})
		case p < 55:
			batch := make([][]float64, 1+rng.Intn(4))
			for b := range batch {
				batch[b] = vec()
			}
			ops = append(ops, crashOp{kind: "batch", batch: batch})
		case p < 75:
			ops = append(ops, crashOp{kind: "delete", id: rng.Intn(64)})
		case p < 80:
			ops = append(ops, crashOp{kind: "compact", ratio: float64(rng.Intn(4)) / 10})
		case p < 85:
			ops = append(ops, crashOp{kind: "seal"})
		case p < 92:
			ops = append(ops, crashOp{kind: "recluster", k: rng.Intn(3), seed: rng.Int63n(1000)})
		default:
			ops = append(ops, crashOp{kind: "checkpoint"})
		}
	}
	return ops
}

// TestReplPropertyConcurrent is the randomized replication property
// test: the leader executes random histories while a follower tails
// CONCURRENTLY on the same (concurrency-safe) MemFS, re-bootstrapping
// whenever a leader checkpoint garbage-collects its position. After the
// dust settles the follower must be byte-identical to the leader and
// both must match the in-memory oracle. Run with -race.
func TestReplPropertyConcurrent(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			ops := randomReplOps(rng, 120)
			dumps := oracleDumps(t, ops)
			final := dumps[len(dumps)-1]

			fs := iofs.NewMemFS()
			leader := mustOpenDurable(t, fs, "leader.bond", FsyncNever)
			defer leader.Close()
			follower := mustOpenDurable(t, fs, "replica.bond", FsyncNever)

			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-done:
						return
					default:
					}
					err := tailReplica(leader, follower)
					if err == nil {
						continue
					}
					if !errors.Is(err, ErrReplGone) {
						t.Errorf("concurrent tail: %v", err)
						return
					}
					snap, serr := leader.ReplSnapshot()
					if serr != nil {
						t.Errorf("concurrent snapshot: %v", serr)
						return
					}
					follower.Close()
					follower, err = BootstrapReplica("replica.bond", snap, DurableOptions{
						FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncNever,
					})
					if err != nil {
						t.Errorf("concurrent bootstrap: %v", err)
						return
					}
				}
			}()

			for i, op := range ops {
				if err := applyCrashOp(leader, op); err != nil {
					t.Fatalf("seed %d op %d: %v", seed, i, err)
				}
			}
			close(done)
			wg.Wait()
			if t.Failed() {
				return
			}

			// Final drain, single-threaded.
			follower = tailOrBootstrap(t, fs, "replica.bond", leader, follower, FsyncNever)
			defer follower.Close()

			if got := dumpCollection(leader); !sameDump(got, final) {
				t.Fatalf("seed %d: leader diverged from oracle", seed)
			}
			if got := dumpCollection(follower); !sameDump(got, final) {
				t.Fatalf("seed %d: follower diverged from oracle", seed)
			}
			lp, _ := leader.ReplPosition()
			fp, _ := follower.ReplPosition()
			if lp != fp {
				t.Fatalf("seed %d: final positions diverged: %v vs %v", seed, lp, fp)
			}
			assertReplicaIdentical(t, fs, "leader.bond", fs, "replica.bond")
		})
	}
}

package bond

import (
	"bytes"
	"path/filepath"
	"testing"

	"bond/internal/crashfs"
	"bond/internal/iofs"
	"bond/internal/vstore"
)

// buildV1LayoutDir checkpoints a small collection, then rewrites its
// sealed segment files into the v1 flat-store encoding and patches the
// manifest's per-segment formats to match — reproducing, byte for byte,
// the directory layout the pre-mmap version of this package wrote. The
// returned dump is the collection's logical state.
func buildV1LayoutDir(t *testing.T) (*iofs.MemFS, collectionDump) {
	t.Helper()
	fs := iofs.NewMemFS()
	col, err := OpenDurable("col", DurableOptions{
		FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	vecs := make([][]float64, 23)
	for i := range vecs {
		vecs[i] = []float64{float64(i) / 23, float64(i%7) / 7, float64(i%3) / 3}
	}
	if _, err := col.AddBatchDurable(vecs); err != nil {
		t.Fatal(err)
	}
	if _, err := col.TryDeleteDurable(4); err != nil {
		t.Fatal(err)
	}
	if err := col.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if err := col.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dumpCollection(col)
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	manPath := filepath.Join("col", vstore.ManifestName)
	raw, err := fs.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vstore.DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Segments) == 0 {
		t.Fatal("fixture produced no sealed segments")
	}
	rewrite := func(name string, b []byte) {
		f, err := fs.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		// Sync: the rewritten file is the fixture's starting state, which
		// the power-loss survivor otherwise truncates to its synced length.
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	for i := range m.Segments {
		segPath := filepath.Join("col", vstore.SegFileName(m.Segments[i].ID))
		img, err := fs.ReadFile(segPath)
		if err != nil {
			t.Fatal(err)
		}
		st, err := vstore.DecodeSegmentV2(img)
		if err != nil {
			t.Fatal(err)
		}
		var v1 bytes.Buffer
		if err := st.Save(&v1); err != nil {
			t.Fatal(err)
		}
		rewrite(segPath, v1.Bytes())
		m.Segments[i].Format = vstore.SegFormatV1
	}
	rewrite(manPath, vstore.EncodeManifest(m))
	return fs, want
}

// migrationSegFormats reads back which encodings the directory's sealed
// segment files are in.
func migrationSegFormats(t *testing.T, fs iofs.FS) (v1, v2 int) {
	t.Helper()
	raw, err := fs.ReadFile(filepath.Join("col", vstore.ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	m, err := vstore.DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	for _, sg := range m.Segments {
		img, err := fs.ReadFile(filepath.Join("col", vstore.SegFileName(sg.ID)))
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case sg.Format == vstore.SegFormatV2 && vstore.IsSegmentV2(img):
			v2++
		case sg.Format == vstore.SegFormatV1 && !vstore.IsSegmentV2(img):
			v1++
		default:
			t.Fatalf("segment %d: manifest format %d disagrees with file bytes", sg.ID, sg.Format)
		}
	}
	return v1, v2
}

// TestV1MigrationCheckpointCrashMatrix sweeps crash injection across the
// checkpoint that migrates a pre-mmap directory — v1 flat-store sealed
// segment files — to write-once v2 column files. At every crash point,
// on both power-loss and process-crash semantics, recovery must succeed
// and yield exactly the original data: the migration is purely
// representational, so not a single vector or tombstone may move. After
// the clean run the directory must be fully v2 and open memory-mapped.
func TestV1MigrationCheckpointCrashMatrix(t *testing.T) {
	base, want := buildV1LayoutDir(t)

	if v1, v2 := migrationSegFormats(t, base); v1 == 0 || v2 != 0 {
		t.Fatalf("fixture not v1-only: %d v1, %d v2 segments", v1, v2)
	}

	migrate := func(fs *crashfs.FS) error {
		c, err := OpenDurable("col", DurableOptions{
			FS: fs, Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
		})
		if err != nil {
			return err
		}
		if err := c.Checkpoint(); err != nil {
			c.Close()
			return err
		}
		return c.Close()
	}

	// Dry run: unlimited budget measures the sweep range and proves the
	// checkpoint actually migrates.
	dry := crashfs.NewFrom(base.Clone(false), -1)
	if err := migrate(dry); err != nil {
		t.Fatalf("dry migration: %v", err)
	}
	if v1, v2 := migrationSegFormats(t, dry.Mem()); v1 != 0 || v2 == 0 {
		t.Fatalf("checkpoint left %d v1 segments (%d v2)", v1, v2)
	}
	total := dry.Steps()
	t.Logf("sweeping %d crash points across the migration checkpoint", total)

	for budget := int64(0); budget < total; budget++ {
		fs := crashfs.NewFrom(base.Clone(false), budget)
		if err := migrate(fs); err == nil {
			t.Fatalf("budget %d: crash did not surface", budget)
		}
		if !fs.Crashed() {
			t.Fatalf("budget %d: crash did not trip", budget)
		}
		for _, mode := range []crashfs.Mode{crashfs.PowerLoss, crashfs.ProcessCrash} {
			rec, err := OpenDurable("col", DurableOptions{
				FS: fs.Survivor(mode), Dims: crashDims, SegmentSize: crashSegSize, Fsync: FsyncAlways,
			})
			if err != nil {
				t.Fatalf("budget %d (%v): recovery failed: %v", budget, mode, err)
			}
			got := dumpCollection(rec)
			rec.Close()
			if !sameDump(got, want) {
				t.Fatalf("budget %d (%v): migration crash changed the data", budget, mode)
			}
		}
	}

	// The migrated directory serves the mmap fast path: reopen on the
	// real filesystem image and confirm segments map. (MemFS cannot map;
	// round-trip the bytes through a real directory.)
	real := t.TempDir()
	dirFiles, err := dry.Mem().ReadDir("col")
	if err != nil {
		t.Fatal(err)
	}
	osfs := iofs.OS{}
	target := filepath.Join(real, "col.bond")
	if err := osfs.MkdirAll(target); err != nil {
		t.Fatal(err)
	}
	for _, name := range dirFiles {
		b, err := dry.Mem().ReadFile(filepath.Join("col", name))
		if err != nil {
			t.Fatal(err)
		}
		f, err := osfs.Create(filepath.Join(target, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	col, err := OpenDurable(target, DurableOptions{})
	if err != nil {
		t.Fatalf("migrated directory fails to open from disk: %v", err)
	}
	defer col.Close()
	if st := col.StatsSnapshot(); st.MappedBytes == 0 {
		t.Skip("platform cannot memory-map segment files")
	}
	if got := dumpCollection(col); !sameDump(got, want) {
		t.Fatal("mapped reopen of migrated directory diverged")
	}
}

package bond

import (
	"encoding/json"
	"math/rand"
	"os"
	"testing"
)

// plannerBenchRecord is one row of BENCH_planner.json.
type plannerBenchRecord struct {
	Shape         string  `json:"shape"`
	Strategy      string  `json:"strategy"`
	Criterion     string  `json:"criterion"`
	NsPerQuery    float64 `json:"ns_per_query"`
	CellsPerQuery float64 `json:"cells_scanned_per_query"`
}

type plannerBenchShape struct {
	name      string
	criterion Criterion
	build     func() ([][]float64, *Collection)
}

func plannerBenchShapes() []plannerBenchShape {
	const (
		n       = 4000
		dims    = 32
		segSize = 500
	)
	// The uniform shape is larger: ~8 MB of exact columns versus ~1 MB of
	// codes, so the filter paths' byte advantage is visible rather than
	// hidden inside the cache.
	uniform := func() ([][]float64, *Collection) {
		rng := rand.New(rand.NewSource(21))
		vs := make([][]float64, 4*n)
		for i := range vs {
			v := make([]float64, 2*dims)
			for d := range v {
				v[d] = rng.Float64()
			}
			vs[i] = v
		}
		return vs, NewCollectionSegmented(vs, 2*segSize)
	}
	clustered := func() ([][]float64, *Collection) {
		rng := rand.New(rand.NewSource(22))
		vs := make([][]float64, 0, n)
		center := make([]float64, dims)
		for i := 0; i < n; i++ {
			if i%segSize == 0 {
				for d := range center {
					center[d] = rng.Float64()
				}
			}
			v := make([]float64, dims)
			for d := range v {
				x := center[d] + 0.03*(rng.Float64()-0.5)
				if x < 0 {
					x = 0
				}
				if x > 1 {
					x = 1
				}
				v[d] = x
			}
			vs = append(vs, v)
		}
		return vs, NewCollectionSegmented(vs, segSize)
	}
	skewed := func() ([][]float64, *Collection) {
		rng := rand.New(rand.NewSource(23))
		vs := make([][]float64, n)
		for i := range vs {
			v := make([]float64, dims)
			for d := range v {
				v[d] = rng.Float64() / float64(1+d)
			}
			vs[i] = v
		}
		return vs, NewCollectionSegmented(vs, segSize)
	}
	return []plannerBenchShape{
		{"uniform", Eq, uniform},
		{"cluster_contiguous", Eq, clustered},
		{"skewed", Hq, skewed},
	}
}

// BenchmarkPlannerVsFixed compares auto-planned queries against each
// fixed strategy on three data shapes, and writes the measurements to
// BENCH_planner.json. Run with:
//
//	go test -run xxx -bench BenchmarkPlannerVsFixed -benchtime 50x .
func BenchmarkPlannerVsFixed(b *testing.B) {
	// b.Run executes each sub-benchmark more than once while calibrating
	// b.N; keyed records keep only the final (longest) run.
	records := map[string]plannerBenchRecord{}
	var order []string
	for _, shape := range plannerBenchShapes() {
		vectors, col := shape.build()
		queries := vectors[:16]

		// Warm the collection so lazily built codes and a few feedback
		// rounds for the adaptive model are outside the timed region.
		for _, strat := range []Strategy{StrategyCompressed, StrategyVAFile} {
			if _, err := col.Query(QuerySpec{Query: queries[0], K: 10, Criterion: shape.criterion, Strategy: strat}); err != nil {
				b.Fatal(err)
			}
		}
		for i := 0; i < 8; i++ {
			if _, err := col.Query(QuerySpec{Query: queries[i], K: 10, Criterion: shape.criterion}); err != nil {
				b.Fatal(err)
			}
		}

		for _, strat := range []Strategy{StrategyAuto, StrategyBOND, StrategyCompressed, StrategyVAFile} {
			strat := strat
			key := shape.name + "/" + strat.String()
			order = append(order, key)
			b.Run(key, func(b *testing.B) {
				var cells int64
				for i := 0; i < b.N; i++ {
					res, err := col.Query(QuerySpec{
						Query:     queries[i%len(queries)],
						K:         10,
						Criterion: shape.criterion,
						Strategy:  strat,
					})
					if err != nil {
						b.Fatal(err)
					}
					cells += res.Stats.ValuesScanned
				}
				nsPer := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(float64(cells)/float64(b.N), "cells/query")
				records[key] = plannerBenchRecord{
					Shape:         shape.name,
					Strategy:      strat.String(),
					Criterion:     shape.criterion.String(),
					NsPerQuery:    nsPer,
					CellsPerQuery: float64(cells) / float64(b.N),
				}
			})
		}
	}
	ordered := make([]plannerBenchRecord, 0, len(order))
	for _, key := range order {
		if r, ok := records[key]; ok {
			ordered = append(ordered, r)
		}
	}
	out, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_planner.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

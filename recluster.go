package bond

// This file implements online re-clustering: a maintenance operation
// that runs k-means over the sealed prefix and rewrites it so every
// segment holds exactly one cluster. The point is the synopses — BOND's
// segment skipping only fires when per-dimension min/max bounds are
// tight, which a shuffled ingest order never produces. Re-clustering
// makes skipping independent of arrival order: BENCH_recluster.json
// shows the uniform-ingest shape converging to the cluster-contiguous
// ceiling after one pass.
//
// Durability rides entirely on the PR-5 machinery, because a recluster
// is just a Compact variant: one WAL record carrying only the k-means
// inputs (k, seed), an in-memory segment-list swap under the write lock,
// and write-once segment files at the next checkpoint. The record can be
// that small because the resulting layout is a deterministic function of
// (collection state, k, seed): replay re-runs the same clustering over
// the same state prefix and reproduces the layout bit-for-bit. That
// determinism is a contract — the k-means parameters below are pinned
// and must never change for existing logs to stay replayable — and it is
// what makes recovery land on exactly the pre- or post-recluster segment
// set, never a mix (the crash matrix in crash_test.go proves it).

import (
	"fmt"

	"bond/internal/cluster"
	"bond/internal/core"
	"bond/internal/vstore"
	"bond/internal/wal"
)

// Pinned k-means parameters of the recluster operation. They are part of
// the WAL replay contract: a TypeRecluster record logs only (k, seed),
// so replay must run k-means with exactly the same iteration cap, batch
// step, and tolerance to reproduce the logged layout. Changing any of
// them would silently corrupt recovery of existing logs.
const (
	reclusterMaxIters = 25
	reclusterStep     = 8
	reclusterTol      = 1e-4
)

// reclusterGroups computes the cluster partition of a flattened sealed
// prefix for the pinned parameters — the deterministic core shared by
// the live operation and WAL replay.
func reclusterGroups(flat *vstore.Store, k uint64, seed int64) ([][]int, error) {
	kk := int(k)
	if live := flat.Live(); k > uint64(live) {
		kk = live // KMeans clamps too; this also keeps huge k out of int
	}
	res, err := cluster.KMeans(flat, cluster.Options{
		K:        kk,
		MaxIters: reclusterMaxIters,
		Step:     reclusterStep,
		Seed:     seed,
		Tol:      reclusterTol,
	})
	if err != nil {
		return nil, err
	}
	return res.Groups(), nil
}

// applyRecluster replays one TypeRecluster record onto a store: same
// deterministic clustering, same repartition. A record that does not fit
// the state (no sealed live vectors, k 0) means the log does not belong
// to this checkpoint.
func applyRecluster(s *vstore.SegStore, k uint64, seed int64) error {
	if k < 1 {
		return fmt.Errorf("recluster record with k=0")
	}
	flat := s.FlattenSealed()
	if flat == nil || flat.Live() == 0 {
		return fmt.Errorf("recluster record on a store with no sealed live vectors")
	}
	groups, err := reclusterGroups(flat, k, seed)
	if err != nil {
		return err
	}
	s.Repartition(groups)
	return nil
}

// Recluster re-partitions the sealed prefix into cluster-contiguous
// segments (see ReclusterDurable) and panics if the operation cannot be
// logged; use ReclusterDurable to handle that error.
func (c *Collection) Recluster(k int, seed int64) []int {
	mapping, err := c.ReclusterDurable(k, seed)
	if err != nil {
		panic(fmt.Sprintf("bond: Recluster: %v", err))
	}
	return mapping
}

// ReclusterDurable runs k-means over the sealed prefix and rewrites it
// so each new sealed segment holds one cluster, giving every segment the
// tightest per-dimension synopsis its members admit — which is what lets
// queries skip it. Tombstones in the sealed prefix are dropped (a
// recluster is also a compaction of that prefix); the active segment is
// untouched except that its ids shift. k ≤ 0 selects one cluster per
// segment-size worth of live sealed vectors; seed fixes the k-means
// initialization.
//
// It returns the old-id → new-id mapping (−1 for dropped tombstones), or
// (nil, nil) when there is nothing to recluster — no sealed segment, or
// none with live vectors — in which case nothing is logged. On a durable
// collection the operation is logged (and under FsyncAlways fsynced)
// before any state changes; on error the collection is unchanged.
//
// The k-means pass and the swap run under the write lock, so concurrent
// queries see either the old layout or the new one, never a mix, and
// results stay byte-identical to the seqscan oracle throughout (modulo
// the id remapping, which the returned mapping describes).
func (c *Collection) ReclusterDurable(k int, seed int64) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	flat := c.store.FlattenSealed()
	if flat == nil || flat.Live() == 0 {
		return nil, nil
	}
	kk := k
	if kk <= 0 {
		kk = (flat.Live() + c.store.SegmentSize() - 1) / c.store.SegmentSize()
	}
	// Compute the partition before logging: a record is only appended for
	// an operation that is certain to apply.
	groups, err := reclusterGroups(flat, uint64(kk), seed)
	if err != nil {
		return nil, err
	}
	if err := c.logMutation(wal.Record{Type: wal.TypeRecluster, K: uint64(kk), Seed: seed}); err != nil {
		return nil, err
	}
	c.invalidatePlanCache()
	mapping := c.store.Repartition(groups)
	// Cost-model hygiene: the rewrite destroyed the segments the EWMA
	// feedback was learned on, so blend the model toward its priors in
	// proportion to the fraction of live vectors that moved. Live-path
	// only — the model is heuristic state, not part of the replay
	// contract, and recovery reloads it from the last checkpoint anyway.
	if live := c.store.Live(); live > 0 {
		c.model.DecayForRewrite(float64(flat.Live()) / float64(live))
	}
	c.reclusters++
	c.reclusterMark = c.sealedLenLocked()
	return mapping, nil
}

// sealedLenLocked returns the slot count of the sealed prefix; callers
// hold at least the read lock.
func (c *Collection) sealedLenLocked() int {
	bases := c.store.Bases()
	return bases[len(bases)-1]
}

// SealedSpread measures how loose the sealed segments' synopses are: the
// size-weighted mean per-dimension width of each sealed segment's
// synopsis relative to the collection's global extent (see
// core.SynopsisSpread). ≈1 on a shuffled ingest order (every segment
// spans everything — skipping cannot fire, a recluster would help), ≈0
// on a cluster-contiguous layout. ok is false when it cannot be measured
// (fewer than one sealed segment with a synopsis).
func (c *Collection) SealedSpread() (float64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sealedSpreadLocked()
}

func (c *Collection) sealedSpreadLocked() (float64, bool) {
	segs, bases := c.store.Segments(), c.store.Bases()
	last := len(segs) - 1
	views := make([]core.SegmentView, 0, last)
	for i := 0; i < last; i++ {
		views = append(views, core.SegmentView{Src: segs[i], Base: bases[i], DimRange: segs[i].DimRange})
	}
	return core.SynopsisSpread(views)
}

// ReclusterAdvice is the skip-efficiency heuristic a maintenance loop
// triggers on: it reports the current sealed synopsis spread and whether
// a recluster is advised — at least two sealed segments (with one there
// is nothing to skip), a measurable spread of at least minSpread, and a
// sealed prefix that grew or shrank since the last recluster (so a
// layout the operation cannot improve is not rewritten on every tick).
func (c *Collection) ReclusterAdvice(minSpread float64) (spread float64, advise bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	segs := c.store.NumSegments()
	if segs-1 < 2 {
		return 0, false
	}
	spread, ok := c.sealedSpreadLocked()
	if !ok {
		return 0, false
	}
	if c.sealedLenLocked() == c.reclusterMark {
		return spread, false
	}
	return spread, spread >= minSpread
}

// Reclusters returns how many re-clustering passes completed on this
// collection since it was opened.
func (c *Collection) Reclusters() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.reclusters
}

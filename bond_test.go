package bond

import (
	"math"
	"path/filepath"
	"testing"

	"bond/internal/dataset"
	"bond/internal/seqscan"
)

func testCollection(t *testing.T) ([][]float64, *Collection) {
	t.Helper()
	vs := dataset.CorelLike(600, 32, 2024)
	return vs, NewCollection(vs)
}

func TestFacadeSearchMatchesScan(t *testing.T) {
	vs, col := testCollection(t)
	q := vs[10]
	res, err := col.Search(q, Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seqscan.SearchHistogram(vs, q, 5)
	for i := range want {
		if res.Results[i].ID != want[i].ID &&
			math.Abs(res.Results[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("rank %d: id %d, want %d", i, res.Results[i].ID, want[i].ID)
		}
	}
}

func TestFacadeLifecycle(t *testing.T) {
	vs, col := testCollection(t)
	if col.Dims() != 32 || col.Len() != 600 || col.Live() != 600 {
		t.Fatalf("shape: %d×%d live %d", col.Len(), col.Dims(), col.Live())
	}
	id := col.Add(vs[0])
	if id != 600 || col.Live() != 601 {
		t.Fatalf("Add: id=%d live=%d", id, col.Live())
	}
	col.Delete(id)
	if col.Live() != 600 {
		t.Fatalf("Delete: live=%d", col.Live())
	}
	mapping := col.Compact()
	if col.Len() != 600 || mapping[600] != -1 {
		t.Fatalf("Compact: len=%d mapping=%v", col.Len(), mapping[600])
	}
	v := col.Vector(3)
	for d := range v {
		if v[d] != vs[3][d] {
			t.Fatal("Vector mismatch after compact")
		}
	}
}

func TestFacadeSaveOpenRoundTrip(t *testing.T) {
	vs, col := testCollection(t)
	path := filepath.Join(t.TempDir(), "col.bond")
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	q := vs[5]
	a, err := col.Search(q, Options{K: 3, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Search(q, Options{K: 3, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Errorf("result %d differs after round trip", i)
		}
	}
}

func TestFacadeCompressedLazyBuildAndInvalidation(t *testing.T) {
	vs, col := testCollection(t)
	q := vs[7]
	a, err := col.SearchCompressed(q, Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	// Adding a vector invalidates the codes; a repeat search must see it.
	col.Add(q)
	b, err := col.SearchCompressed(q, Options{K: 1, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if b.Results[0].ID != 600 && b.Results[0].Score < a.Results[0].Score {
		t.Error("appended exact duplicate not found by compressed search")
	}
}

func TestFacadeMILAndExclusion(t *testing.T) {
	vs, col := testCollection(t)
	q := vs[0]
	excl := col.NewExclusion()
	excl.Set(0)
	res, err := col.Search(q, Options{K: 1, Criterion: Hq, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID == 0 {
		t.Error("excluded id returned")
	}
	mil, err := col.SearchMIL(q, MILOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mil.Results[0].ID != 0 {
		t.Errorf("MIL best = %d, want the query itself", mil.Results[0].ID)
	}
}

func TestFacadeMultiSearch(t *testing.T) {
	v1 := dataset.CorelLike(200, 16, 1)
	v2 := dataset.CorelLike(200, 24, 2)
	c1, c2 := NewCollection(v1), NewCollection(v2)
	features := []Feature{
		c1.AsFeature(v1[0], 0.5),
		c2.AsFeature(v2[0], 0.5),
	}
	res, err := MultiSearch(features, MultiOptions{K: 3, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID != 0 {
		t.Errorf("best = %d, want 0 (self query)", res.Results[0].ID)
	}
}

func TestFacadeWeightedAndSubspace(t *testing.T) {
	vs, col := testCollection(t)
	q := vs[9]
	w := dataset.WeightsZipf(32, 2, 7)
	res, err := col.Search(q, Options{K: 4, Criterion: Ev, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seqscan.SearchWeightedEuclidean(vs, q, w, 4)
	for i := range want {
		if res.Results[i].ID != want[i].ID &&
			math.Abs(res.Results[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("weighted rank %d: id %d, want %d", i, res.Results[i].ID, want[i].ID)
		}
	}
	sub, err := col.Search(q, Options{K: 4, Criterion: Ev, Dims: []int{0, 5, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Results) != 4 {
		t.Errorf("subspace returned %d results", len(sub.Results))
	}
}

package bond_test

import (
	"io"
	"testing"

	"bond/internal/hotpath"
)

// BenchmarkRecluster measures what one background re-clustering pass
// buys on a shuffled ingest order — QPS and cells scanned per query
// before the pass, after it, and on the cluster-contiguous ceiling the
// rewrite should reach — and writes the measurements to
// BENCH_recluster.json (the CI perf artifact). Run with:
//
//	go test -run xxx -bench BenchmarkRecluster -benchtime 1x .
func BenchmarkRecluster(b *testing.B) {
	var records []hotpath.Record
	for i := 0; i < b.N; i++ {
		var err error
		records, err = hotpath.RunRecluster(hotpath.DefaultConfig(), io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range records {
		switch r.Mode {
		case "pre_recluster", "post_recluster", "ceiling":
			b.ReportMetric(r.QPS, r.Mode+"_qps")
			b.ReportMetric(r.CellsPerQuery, r.Mode+"_cells")
		case "summary":
			b.ReportMetric(r.Speedup, "post_pre_qps_ratio")
			b.ReportMetric(r.ReclusterMs, "recluster_ms")
		}
	}
	if err := hotpath.WriteJSON("BENCH_recluster.json", records); err != nil {
		b.Fatal(err)
	}
}

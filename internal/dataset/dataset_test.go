package dataset

import (
	"math"
	"math/rand"
	"testing"

	"bond/internal/stats"
)

func TestZipfUniformAtThetaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 10, 0)
	counts := make([]int, 10)
	const draws = 50000
	for i := 0; i < draws; i++ {
		counts[z.Draw()]++
	}
	for r, c := range counts {
		frac := float64(c) / draws
		if math.Abs(frac-0.1) > 0.02 {
			t.Errorf("rank %d frequency %v, want ~0.1", r, frac)
		}
	}
}

func TestZipfSkewConcentratesOnLowRanks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 100, 1.5)
	const draws = 20000
	low := 0
	for i := 0; i < draws; i++ {
		if z.Draw() < 10 {
			low++
		}
	}
	if frac := float64(low) / draws; frac < 0.7 {
		t.Errorf("top-10 ranks got %v of mass, want > 0.7 at theta=1.5", frac)
	}
}

func TestZipfPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewZipf(rng, 0, 1) },
		func() { NewZipf(rng, 5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{2, 6}
	Normalize(v)
	if v[0] != 0.25 || v[1] != 0.75 {
		t.Errorf("Normalize = %v", v)
	}
	z := []float64{0, 0}
	Normalize(z)
	if z[0] != 0.5 || z[1] != 0.5 {
		t.Errorf("Normalize(zero) = %v, want uniform", z)
	}
}

func TestCorelLikeNormalizedAndDeterministic(t *testing.T) {
	a := CorelLike(50, 166, 42)
	b := CorelLike(50, 166, 42)
	for i, h := range a {
		sum := 0.0
		for _, x := range h {
			if x < 0 {
				t.Fatalf("negative bin value %v", x)
			}
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("histogram %d sums to %v", i, sum)
		}
		for d := range h {
			if h[d] != b[i][d] {
				t.Fatal("generator not deterministic for equal seeds")
			}
		}
	}
	c := CorelLike(50, 166, 43)
	same := true
	for d := range a[0] {
		if a[0][d] != c[0][d] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

// TestCorelLikeShape verifies the two Figure 2 shape properties the
// generator must reproduce: (1) a skewed mean-per-bin profile, (2) a
// Zipfian (fast-decaying) per-histogram sorted profile where the top few
// bins dominate and most bins are empty.
func TestCorelLikeShape(t *testing.T) {
	hs := CorelLike(500, 166, 7)

	means := stats.MeanPerDimension(hs)
	if g := stats.GiniCoefficient(means); g < 0.3 {
		t.Errorf("mean-per-bin Gini = %v, want skewed (> 0.3)", g)
	}

	profile := stats.MeanSortedProfile(hs)
	// Top bin carries a large share; by rank ~20 the mass is near zero.
	if profile[0] < 0.2 {
		t.Errorf("mean top-bin mass = %v, want > 0.2", profile[0])
	}
	if profile[40] > 0.01 {
		t.Errorf("rank-40 mean mass = %v, want ~0 (most bins empty)", profile[40])
	}
	// Decay must be monotone (it is a mean of sorted rows).
	for i := 1; i < len(profile); i++ {
		if profile[i] > profile[i-1]+1e-12 {
			t.Fatalf("sorted profile not monotone at %d", i)
		}
	}
	// Zipf check: profile[0]/profile[3] should be roughly 4^z with z near 1.
	ratio := profile[0] / math.Max(profile[3], 1e-12)
	if ratio < 2 {
		t.Errorf("decay ratio rank1/rank4 = %v, want >= 2 (Zipfian)", ratio)
	}
}

func TestClusteredInUnitBoxAndSized(t *testing.T) {
	cfg := DefaultClustered(300, 16, 1.0, 11)
	vs := Clustered(cfg)
	if len(vs) != 300 {
		t.Fatalf("got %d vectors", len(vs))
	}
	for _, v := range vs {
		if len(v) != 16 {
			t.Fatalf("vector has %d dims", len(v))
		}
		for _, x := range v {
			if x < 0 || x > 1 {
				t.Fatalf("coordinate %v outside unit box", x)
			}
		}
	}
}

// TestClusteredHasClusterStructure verifies that most vectors have a very
// close neighbor (their cluster siblings) compared to random pairs — the
// property that makes k-NN "meaningful" per the paper's discussion of [3].
func TestClusteredHasClusterStructure(t *testing.T) {
	cfg := DefaultClustered(400, 8, 0, 5)
	cfg.Clusters = 20 // few clusters so siblings are plentiful
	vs := Clustered(cfg)

	nnDist := func(i int) float64 {
		best := math.Inf(1)
		for j := range vs {
			if j == i {
				continue
			}
			d := sq(vs[i], vs[j])
			if d < best {
				best = d
			}
		}
		return best
	}
	var sumNN float64
	for i := 0; i < 50; i++ {
		sumNN += nnDist(i)
	}
	meanNN := sumNN / 50

	rng := rand.New(rand.NewSource(1))
	var sumRand float64
	for i := 0; i < 50; i++ {
		a, b := rng.Intn(len(vs)), rng.Intn(len(vs))
		sumRand += sq(vs[a], vs[b])
	}
	meanRand := sumRand / 50
	if meanNN > meanRand/4 {
		t.Errorf("mean NN distance %v not ≪ mean random distance %v", meanNN, meanRand)
	}
}

// TestClusteredSkewMovesCenters verifies that θ concentrates centre
// coordinates near 0 (higher skew → lower coordinate mean).
func TestClusteredSkewMovesCenters(t *testing.T) {
	mean := func(theta float64) float64 {
		vs := Clustered(DefaultClustered(500, 8, theta, 3))
		s := 0.0
		for _, v := range vs {
			for _, x := range v {
				s += x
			}
		}
		return s / float64(len(vs)*8)
	}
	m0, m2 := mean(0), mean(2)
	if m2 >= m0-0.05 {
		t.Errorf("theta=2 coordinate mean %v not well below theta=0 mean %v", m2, m0)
	}
}

func TestUniform(t *testing.T) {
	vs := Uniform(100, 4, 9)
	m := stats.MeanPerDimension(vs)
	for d, x := range m {
		if math.Abs(x-0.5) > 0.12 {
			t.Errorf("dim %d mean %v, want ~0.5", d, x)
		}
	}
}

func TestWeightsZipfNormalization(t *testing.T) {
	for _, theta := range []float64{0, 1, 3} {
		w := WeightsZipf(64, theta, 2)
		sum := 0.0
		for _, x := range w {
			if x < 0 {
				t.Fatalf("negative weight %v", x)
			}
			sum += x
		}
		if math.Abs(sum-64) > 1e-9 {
			t.Errorf("theta=%v: Σw = %v, want 64", theta, sum)
		}
	}
	// θ = 0 must give uniform weights (Definition 3 ≡ Definition 2).
	w := WeightsZipf(10, 0, 2)
	for _, x := range w {
		if math.Abs(x-1) > 1e-12 {
			t.Errorf("theta=0 weight %v, want 1", x)
		}
	}
	// High skew: top 10 % of dims must carry > 90 % of the weight
	// (the regime Figure 11 identifies as profitable).
	w = WeightsZipf(100, 3, 2)
	sorted := append([]float64(nil), w...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	top := 0.0
	for _, x := range sorted[:10] {
		top += x
	}
	if top/100 < 0.9 {
		t.Errorf("theta=3: top-10%% weight share = %v, want > 0.9", top/100)
	}
}

func TestSampleQueries(t *testing.T) {
	vs := Uniform(20, 3, 1)
	qs, idx := SampleQueries(vs, 5, 2)
	if len(qs) != 5 || len(idx) != 5 {
		t.Fatalf("got %d queries", len(qs))
	}
	seen := map[int]bool{}
	for i, j := range idx {
		if seen[j] {
			t.Error("duplicate query index (sampling must be without replacement)")
		}
		seen[j] = true
		for d := range qs[i] {
			if qs[i][d] != vs[j][d] {
				t.Error("query does not match source vector")
			}
		}
	}
	// Copies, not aliases.
	qs[0][0] = -1
	if vs[idx[0]][0] == -1 {
		t.Error("SampleQueries must copy vectors")
	}
	// Oversampling clamps.
	qs, _ = SampleQueries(vs, 100, 2)
	if len(qs) != 20 {
		t.Errorf("oversample returned %d", len(qs))
	}
}

func sq(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

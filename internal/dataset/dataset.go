// Package dataset generates the synthetic data collections used by the
// experiment harness.
//
// The paper evaluates BOND on two families of data:
//
//   - A real collection of 59,619 166-dimensional HSV color histograms from
//     the Corel image database (Sections 7.1–7.4). That collection is
//     proprietary, so CorelLike generates a statistical stand-in that
//     reproduces the two shape properties the paper reports in Figure 2 and
//     that BOND's pruning behaviour depends on: a strongly non-uniform mean
//     value per bin, and a Zipfian per-histogram sorted-value profile with
//     most bins (near-)empty, under exact normalization T(h) = 1.
//
//   - Synthetic clustered data (Section 7.5): 100,000 128-dimensional
//     vectors in the unit hypercube; 1000 cluster centres whose coordinates
//     follow a Zipfian distribution with skew parameter θ (θ = 0 means
//     uniform); 95 % of the vectors Gaussian around a random centre and 5 %
//     uniform noise. Clustered implements that construction directly from
//     the paper's description.
//
// All generators are deterministic for a given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Zipf draws ranks in {0, …, n−1} with probability proportional to
// 1/(rank+1)^theta. theta = 0 degenerates to the uniform distribution.
type Zipf struct {
	cum []float64 // cumulative probabilities
	rng *rand.Rand
}

// NewZipf builds a Zipf sampler over n ranks with skew theta ≥ 0.
// It panics if n < 1 or theta < 0.
func NewZipf(rng *rand.Rand, n int, theta float64) *Zipf {
	if n < 1 {
		panic(fmt.Sprintf("dataset: Zipf needs n >= 1, got %d", n))
	}
	if theta < 0 {
		panic(fmt.Sprintf("dataset: Zipf skew must be >= 0, got %v", theta))
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), theta)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, rng: rng}
}

// Draw samples a rank.
func (z *Zipf) Draw() int {
	u := z.rng.Float64()
	// Binary search for the first cumulative value >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] >= u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Normalize scales v in place so its elements sum to 1. Zero vectors get a
// uniform distribution.
func Normalize(v []float64) {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s == 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// CorelLike generates n normalized dims-dimensional histograms whose shape
// statistics mimic the paper's Corel HSV collection (Figure 2).
//
// Construction: a global Zipfian bin-popularity profile fixes which bins
// tend to carry mass across the collection (Figure 2, top panel); each
// histogram activates a small popularity-biased subset of bins and assigns
// them Zipfian masses (Figure 2, bottom panel), then normalizes.
func CorelLike(n, dims int, seed int64) [][]float64 {
	if n < 1 || dims < 2 {
		panic(fmt.Sprintf("dataset: CorelLike needs n >= 1, dims >= 2; got %d, %d", n, dims))
	}
	rng := rand.New(rand.NewSource(seed))

	// Global bin popularity: Zipfian over a random permutation of the bins,
	// so popular bins are scattered across the index range as in Fig. 2.
	perm := rng.Perm(dims)
	popularity := NewZipf(rng, dims, 1.0)

	out := make([][]float64, n)
	for im := 0; im < n; im++ {
		h := make([]float64, dims)
		// Number of active bins: small relative to dims, varying per image.
		active := 4 + rng.Intn(max(2, dims/6))
		if active > dims {
			active = dims
		}
		// Per-image Zipf exponent in [0.9, 1.5): how peaked this image is.
		z := 0.9 + 0.6*rng.Float64()
		seen := make(map[int]bool, active)
		rank := 0
		for rank < active {
			bin := perm[popularity.Draw()]
			if seen[bin] {
				continue
			}
			seen[bin] = true
			// Mass of the (rank+1)-th strongest bin, with ±20 % jitter.
			mass := 1 / math.Pow(float64(rank+1), z)
			mass *= 0.8 + 0.4*rng.Float64()
			h[bin] = mass
			rank++
		}
		Normalize(h)
		out[im] = h
	}
	return out
}

// ClusteredConfig parameterizes the Section 7.5 generator.
type ClusteredConfig struct {
	N         int     // number of vectors (paper: 100,000)
	Dims      int     // dimensionality (paper: 128)
	Clusters  int     // number of cluster centres (paper: 1000)
	Theta     float64 // Zipf skew of centre coordinates (paper: 0 … 2)
	NoiseFrac float64 // fraction of uniform-noise vectors (paper: 0.05)
	Sigma     float64 // Gaussian spread around the centre (paper-style: small)
	Seed      int64
}

// DefaultClustered returns the paper's Section 7.5 parameters at the given
// size, skew, and seed.
func DefaultClustered(n, dims int, theta float64, seed int64) ClusteredConfig {
	return ClusteredConfig{
		N: n, Dims: dims, Clusters: 1000, Theta: theta,
		NoiseFrac: 0.05, Sigma: 0.025, Seed: seed,
	}
}

// Clustered generates the Section 7.5 synthetic data: cluster centres with
// Zipf(θ)-distributed coordinates in the unit hypercube, 1−NoiseFrac of the
// vectors Gaussian around a random centre (clamped to [0,1]), and NoiseFrac
// uniform noise.
func Clustered(cfg ClusteredConfig) [][]float64 {
	if cfg.N < 1 || cfg.Dims < 1 || cfg.Clusters < 1 {
		panic(fmt.Sprintf("dataset: invalid clustered config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Centre coordinates: Zipf(θ) over a discrete grid of levels mapped to
	// [0,1] (θ = 0 gives the uniform grid, as in the paper).
	const levels = 100
	zipf := NewZipf(rng, levels, cfg.Theta)
	centers := make([][]float64, cfg.Clusters)
	for c := range centers {
		ctr := make([]float64, cfg.Dims)
		for d := range ctr {
			ctr[d] = (float64(zipf.Draw()) + rng.Float64()) / levels
		}
		centers[c] = ctr
	}

	out := make([][]float64, cfg.N)
	for i := 0; i < cfg.N; i++ {
		v := make([]float64, cfg.Dims)
		if rng.Float64() < cfg.NoiseFrac {
			for d := range v {
				v[d] = rng.Float64()
			}
		} else {
			ctr := centers[rng.Intn(cfg.Clusters)]
			for d := range v {
				v[d] = clamp01(ctr[d] + rng.NormFloat64()*cfg.Sigma)
			}
		}
		out[i] = v
	}
	return out
}

// Uniform generates n dims-dimensional vectors uniform in the unit
// hypercube.
func Uniform(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64()
		}
		out[i] = v
	}
	return out
}

// NormalizeAll normalizes every vector in place so each sums to 1, turning
// an arbitrary non-negative collection into histograms.
func NormalizeAll(vectors [][]float64) {
	for _, v := range vectors {
		Normalize(v)
	}
}

// WeightsZipf generates a weight vector for weighted k-NN search
// (Section 8.1): weights proportional to a Zipf(θ) profile over a random
// permutation of the dimensions, normalized so that Σw = dims (the
// convention under which Definition 3 reduces to Definition 2 at θ = 0).
func WeightsZipf(dims int, theta float64, seed int64) []float64 {
	if dims < 1 {
		panic(fmt.Sprintf("dataset: WeightsZipf needs dims >= 1, got %d", dims))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(dims)
	w := make([]float64, dims)
	total := 0.0
	for rank := 0; rank < dims; rank++ {
		x := 1 / math.Pow(float64(rank+1), theta)
		w[perm[rank]] = x
		total += x
	}
	scale := float64(dims) / total
	for i := range w {
		w[i] *= scale
	}
	return w
}

// SampleQueries picks nq query vectors from the collection without
// replacement (the paper draws its query workload from the data set).
// It returns copies, along with the source indexes.
func SampleQueries(vectors [][]float64, nq int, seed int64) ([][]float64, []int) {
	if nq > len(vectors) {
		nq = len(vectors)
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(vectors))[:nq]
	out := make([][]float64, nq)
	for i, j := range idx {
		out[i] = append([]float64(nil), vectors[j]...)
	}
	return out, idx
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

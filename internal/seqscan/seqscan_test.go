package seqscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bond/internal/dataset"
	"bond/internal/metric"
	"bond/internal/topk"
)

func bruteHistogram(vectors [][]float64, q []float64, k int) []topk.Result {
	h := topk.NewLargest(k)
	for id, v := range vectors {
		h.Push(id, metric.HistIntersect(v, q))
	}
	return h.Results()
}

func TestSearchHistogramSmall(t *testing.T) {
	vs := [][]float64{
		{0.9, 0.1},
		{0.5, 0.5},
		{0.1, 0.9},
	}
	q := []float64{0.8, 0.2}
	got, st := SearchHistogram(vs, q, 2)
	if got[0].ID != 0 {
		t.Errorf("best = %d, want 0", got[0].ID)
	}
	if got[1].ID != 1 {
		t.Errorf("second = %d, want 1", got[1].ID)
	}
	if st.ValuesScanned != 6 {
		t.Errorf("ValuesScanned = %d, want 6", st.ValuesScanned)
	}
}

func TestSearchEuclideanSmall(t *testing.T) {
	vs := [][]float64{
		{0.0, 0.0},
		{0.5, 0.5},
		{1.0, 1.0},
	}
	q := []float64{0.45, 0.45}
	got, _ := SearchEuclidean(vs, q, 1)
	if got[0].ID != 1 {
		t.Errorf("nearest = %d, want 1", got[0].ID)
	}
}

func TestSearchWeightedEuclidean(t *testing.T) {
	vs := [][]float64{
		{0.0, 0.5}, // far in dim 0, exact in dim 1
		{0.5, 0.0}, // exact in dim 0, far in dim 1
	}
	q := []float64{0.5, 0.5}
	// Heavy weight on dim 0 makes vector 1 the better match.
	got, _ := SearchWeightedEuclidean(vs, q, []float64{10, 0.1}, 1)
	if got[0].ID != 1 {
		t.Errorf("weighted nearest = %d, want 1", got[0].ID)
	}
	// Flip the weights.
	got, _ = SearchWeightedEuclidean(vs, q, []float64{0.1, 10}, 1)
	if got[0].ID != 0 {
		t.Errorf("weighted nearest = %d, want 0", got[0].ID)
	}
}

func TestKLargerThanCollection(t *testing.T) {
	vs := [][]float64{{0.5}, {0.2}}
	got, _ := SearchHistogram(vs, []float64{1}, 10)
	if len(got) != 2 {
		t.Errorf("got %d results, want all 2", len(got))
	}
}

func TestAbandonVariantsMatchExact(t *testing.T) {
	vs := dataset.CorelLike(300, 32, 5)
	qs, _ := dataset.SampleQueries(vs, 5, 6)
	for _, q := range qs {
		exact, _ := SearchHistogram(vs, q, 10)
		ab, st := SearchHistogramAbandon(vs, q, 10, 8)
		if len(exact) != len(ab) {
			t.Fatalf("length mismatch %d vs %d", len(exact), len(ab))
		}
		for i := range exact {
			if exact[i].ID != ab[i].ID {
				t.Errorf("histogram abandon mismatch at %d: %d vs %d", i, exact[i].ID, ab[i].ID)
			}
		}
		if st.VectorsAbandoned == 0 {
			t.Error("abandon variant never abandoned a vector on skewed data")
		}

		exactE, _ := SearchEuclidean(vs, q, 10)
		abE, _ := SearchEuclideanAbandon(vs, q, 10, 8)
		for i := range exactE {
			if exactE[i].ID != abE[i].ID {
				t.Errorf("euclidean abandon mismatch at %d: %d vs %d", i, exactE[i].ID, abE[i].ID)
			}
		}
	}
}

func TestAbandonScansFewerValues(t *testing.T) {
	vs := dataset.CorelLike(500, 64, 9)
	q := vs[0]
	_, full := SearchHistogram(vs, q, 5)
	_, ab := SearchHistogramAbandon(vs, q, 5, 8)
	if ab.ValuesScanned >= full.ValuesScanned {
		t.Errorf("abandon scanned %d ≥ full scan %d", ab.ValuesScanned, full.ValuesScanned)
	}
}

// Property: SSH matches a brute-force reference on random histogram data.
func TestSearchHistogramMatchesBrute(t *testing.T) {
	f := func(seed int64, nRaw, kRaw uint8) bool {
		n := int(nRaw)%60 + 2
		k := int(kRaw)%5 + 1
		vs := dataset.CorelLike(n, 12, seed)
		q := vs[int(seed&0x7)%n]
		got, _ := SearchHistogram(vs, q, k)
		want := bruteHistogram(vs, q, min(k, n))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: for queries taken from the collection, the query itself is the
// 1-NN under both metrics.
func TestSelfIsNearest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vs := dataset.Uniform(40, 6, seed)
		qi := rng.Intn(len(vs))
		q := vs[qi]
		he, _ := SearchEuclidean(vs, q, 1)
		return he[0].ID == qi && he[0].Score == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

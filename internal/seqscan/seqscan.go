// Package seqscan implements the sequential-scan baselines of Section 7.4.
//
// SSH (histogram intersection) and SSE (Euclidean distance) scan a single
// row-major table of feature vectors, compute each vector's exact
// similarity to the query, and maintain a heap of the k best matches — the
// "optimized implementation of sequentially scanning a single table with
// all vectors" that BOND's response times are compared against (Table 3).
//
// The package also implements the more sophisticated variant of the
// paper's footnote 6, which regularly compares a vector's partial score to
// the k-th best found so far and abandons the vector once it can no longer
// qualify. The paper found this variant slower on average; the ablation
// benchmark reproduces that comparison.
package seqscan

import (
	"fmt"
	"math"

	"bond/internal/topk"
)

// Stats reports the work done by a scan.
type Stats struct {
	// ValuesScanned counts vector coefficients read.
	ValuesScanned int64
	// VectorsAbandoned counts vectors dropped early (abandon variant only).
	VectorsAbandoned int
}

// SearchHistogram is SSH: the k vectors with the largest histogram
// intersection with q. It panics on a dimensionality mismatch.
func SearchHistogram(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	var st Stats
	h := topk.NewLargest(clampK(k, len(vectors)))
	for id, v := range vectors {
		checkDims(v, q)
		s := 0.0
		for d, x := range v {
			s += math.Min(x, q[d])
		}
		st.ValuesScanned += int64(len(v))
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchEuclidean is SSE: the k vectors with the smallest squared Euclidean
// distance to q.
func SearchEuclidean(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	var st Stats
	h := topk.NewSmallest(clampK(k, len(vectors)))
	for id, v := range vectors {
		checkDims(v, q)
		s := 0.0
		for d, x := range v {
			diff := x - q[d]
			s += diff * diff
		}
		st.ValuesScanned += int64(len(v))
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchWeightedEuclidean scans with the weighted distance of Definition 3.
func SearchWeightedEuclidean(vectors [][]float64, q, w []float64, k int) ([]topk.Result, Stats) {
	if len(q) != len(w) {
		panic(fmt.Sprintf("seqscan: weight length %d != query length %d", len(w), len(q)))
	}
	var st Stats
	h := topk.NewSmallest(clampK(k, len(vectors)))
	for id, v := range vectors {
		checkDims(v, q)
		s := 0.0
		for d, x := range v {
			diff := x - q[d]
			s += w[d] * diff * diff
		}
		st.ValuesScanned += int64(len(v))
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchHistogramAbandon is the footnote-6 variant of SSH: every
// checkEvery dimensions the partial score plus the maximum achievable
// remainder is compared to the current k-th best, and the vector is
// abandoned if it cannot qualify. checkEvery < 1 defaults to 16.
func SearchHistogramAbandon(vectors [][]float64, q []float64, k, checkEvery int) ([]topk.Result, Stats) {
	if checkEvery < 1 {
		checkEvery = 16
	}
	var st Stats
	// Suffix query mass: remaining[d] = Σ_{j≥d} q_j bounds the best possible
	// remaining contribution.
	remaining := make([]float64, len(q)+1)
	for d := len(q) - 1; d >= 0; d-- {
		remaining[d] = remaining[d+1] + q[d]
	}
	h := topk.NewLargest(clampK(k, len(vectors)))
	for id, v := range vectors {
		checkDims(v, q)
		s := 0.0
		abandoned := false
		for d, x := range v {
			s += math.Min(x, q[d])
			st.ValuesScanned++
			if (d+1)%checkEvery == 0 {
				if kth, ok := h.Threshold(); ok && s+remaining[d+1] < kth {
					abandoned = true
					break
				}
			}
		}
		if abandoned {
			st.VectorsAbandoned++
			continue
		}
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchEuclideanAbandon is the footnote-6 variant of SSE: a vector is
// abandoned once its partial distance alone exceeds the k-th smallest
// distance found so far (distance only grows).
func SearchEuclideanAbandon(vectors [][]float64, q []float64, k, checkEvery int) ([]topk.Result, Stats) {
	if checkEvery < 1 {
		checkEvery = 16
	}
	var st Stats
	h := topk.NewSmallest(clampK(k, len(vectors)))
	for id, v := range vectors {
		checkDims(v, q)
		s := 0.0
		abandoned := false
		for d, x := range v {
			diff := x - q[d]
			s += diff * diff
			st.ValuesScanned++
			if (d+1)%checkEvery == 0 {
				if kth, ok := h.Threshold(); ok && s > kth {
					abandoned = true
					break
				}
			}
		}
		if abandoned {
			st.VectorsAbandoned++
			continue
		}
		h.Push(id, s)
	}
	return h.Results(), st
}

func clampK(k, n int) int {
	if k < 1 {
		panic(fmt.Sprintf("seqscan: k must be >= 1, got %d", k))
	}
	if k > n && n > 0 {
		return n
	}
	return k
}

func checkDims(v, q []float64) {
	if len(v) != len(q) {
		panic(fmt.Sprintf("seqscan: vector dims %d != query dims %d", len(v), len(q)))
	}
}

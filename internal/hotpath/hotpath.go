// Package hotpath measures the query hot path end to end: per-query
// latency and allocations for planned queries, sequential-vs-batched
// throughput (QueryBatch's reason to exist), and the micro-level speedup
// of the package kernel loops over the scalar loops they replaced. The
// measurements are shared by cmd/bondbench's -qps mode and by the root
// BenchmarkHotPath smoke benchmark, both of which write them to
// BENCH_hotpath.json so the performance trajectory is tracked per PR.
package hotpath

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"bond"
	"bond/internal/kernel"
)

// Config scales the measurement.
type Config struct {
	// N is the per-shape collection size (the uniform shape uses 4N·2Dims
	// like the planner benchmark, so the filter paths' byte advantage is
	// visible outside the cache).
	N int
	// Dims is the dimensionality.
	Dims int
	// SegSize is the segment size.
	SegSize int
	// Queries is the measured workload size per shape.
	Queries int
	// K is the number of neighbors.
	K int
	// Batch is the QueryBatch size compared against sequential Query (the
	// full workload is always measured too).
	Batch int
	// DisableMmap skips the memory-mapped legs of the durable suite
	// (RunMmap then measures heap-backed rows only).
	DisableMmap bool
}

// DefaultConfig is sized for a seconds-scale smoke run.
func DefaultConfig() Config {
	return Config{N: 4000, Dims: 32, SegSize: 500, Queries: 64, K: 10, Batch: 8}
}

// Record is one BENCH_hotpath.json row: a query-path measurement on one
// data shape, or (with Shape "kernel") one kernel-vs-scalar micro ratio.
type Record struct {
	Shape string `json:"shape"`
	// Mode: "query" (sequential Collection.Query), "batchN"
	// (Collection.QueryBatch with N specs per call), or the kernel name
	// for micro records.
	Mode          string  `json:"mode"`
	Criterion     string  `json:"criterion,omitempty"`
	NsPerQuery    float64 `json:"ns_per_query,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_query,omitempty"`
	QPS           float64 `json:"qps,omitempty"`
	CellsPerQuery float64 `json:"cells_scanned_per_query,omitempty"`
	// Kernel micro fields: ns per call for the kernel and for the scalar
	// reference loop, and their ratio (scalar / kernel; > 1 is a speedup).
	// RunRecluster's summary row reuses Speedup for its post/pre QPS ratio.
	KernelNs float64 `json:"kernel_ns,omitempty"`
	ScalarNs float64 `json:"scalar_ns,omitempty"`
	Speedup  float64 `json:"speedup,omitempty"`
	// Recluster suite fields (see RunRecluster): the one-off cost of the
	// maintenance pass and the sealed synopsis-spread gauge around it.
	ReclusterMs  float64 `json:"recluster_ms,omitempty"`
	SpreadBefore float64 `json:"spread_before,omitempty"`
	SpreadAfter  float64 `json:"spread_after,omitempty"`
	// Mmap suite fields (see RunMmap): which backing a durable query row
	// ran on ("mmap" or "heap"); SIMD names the kernel dispatch the row
	// was measured with (on kernel micro rows and mmap rows).
	Backing string `json:"backing,omitempty"`
	SIMD    string `json:"simd,omitempty"`
	// ColdOpenMs is the wall time of one cold OpenDurable on the cold-open
	// row (mmap and heap legs each get a row; their ratio lands in a
	// summary row's Speedup).
	ColdOpenMs float64 `json:"cold_open_ms,omitempty"`
}

// shape builds one benchmark collection plus its query workload.
type shape struct {
	name      string
	criterion bond.Criterion
	col       *bond.Collection
	queries   [][]float64
}

func buildShapes(cfg Config) []shape {
	uniform := func() shape {
		rng := rand.New(rand.NewSource(21))
		vs := make([][]float64, 4*cfg.N)
		for i := range vs {
			v := make([]float64, 2*cfg.Dims)
			for d := range v {
				v[d] = rng.Float64()
			}
			vs[i] = v
		}
		return shape{"uniform", bond.Eq, bond.NewCollectionSegmented(vs, 2*cfg.SegSize), vs}
	}
	clustered := func() shape {
		rng := rand.New(rand.NewSource(22))
		vs := make([][]float64, 0, cfg.N)
		center := make([]float64, cfg.Dims)
		for i := 0; i < cfg.N; i++ {
			if i%cfg.SegSize == 0 {
				for d := range center {
					center[d] = rng.Float64()
				}
			}
			v := make([]float64, cfg.Dims)
			for d := range v {
				x := center[d] + 0.03*(rng.Float64()-0.5)
				if x < 0 {
					x = 0
				}
				if x > 1 {
					x = 1
				}
				v[d] = x
			}
			vs = append(vs, v)
		}
		return shape{"cluster_contiguous", bond.Eq, bond.NewCollectionSegmented(vs, cfg.SegSize), vs}
	}
	skewed := func() shape {
		rng := rand.New(rand.NewSource(23))
		vs := make([][]float64, cfg.N)
		for i := range vs {
			v := make([]float64, cfg.Dims)
			for d := range v {
				v[d] = rng.Float64() / float64(1+d)
			}
			vs[i] = v
		}
		return shape{"skewed", bond.Hq, bond.NewCollectionSegmented(vs, cfg.SegSize), vs}
	}
	return []shape{uniform(), clustered(), skewed()}
}

// Run measures every shape and the kernel micros, streaming a
// human-readable table to w (nil discards it).
func Run(cfg Config, w io.Writer) ([]Record, error) {
	if w == nil {
		w = io.Discard
	}
	var records []Record
	for _, sh := range buildShapes(cfg) {
		specs := make([]bond.QuerySpec, cfg.Queries)
		for i := range specs {
			specs[i] = bond.QuerySpec{
				Query:     sh.queries[i%len(sh.queries)],
				K:         cfg.K,
				Criterion: sh.criterion,
			}
		}
		// Warm the lazy codes, the adaptive model, and the scratch pools.
		warm := specs
		if len(warm) > 8 {
			warm = warm[:8]
		}
		if _, err := sh.col.QueryBatch(warm); err != nil {
			return nil, err
		}
		for _, spec := range warm {
			if _, err := sh.col.Query(spec); err != nil {
				return nil, err
			}
		}

		seq, err := measureSequential(sh, specs)
		if err != nil {
			return nil, err
		}
		records = append(records, seq)
		fmt.Fprintf(w, "%-20s %-8s %10.0f ns/query  %6.2f allocs/query  %9.0f qps  %10.0f cells/query\n",
			sh.name, seq.Mode, seq.NsPerQuery, seq.AllocsPerOp, seq.QPS, seq.CellsPerQuery)

		for _, batch := range []int{cfg.Batch, cfg.Queries} {
			if batch < 2 || batch > len(specs) {
				continue
			}
			rec, err := measureBatch(sh, specs, batch)
			if err != nil {
				return nil, err
			}
			records = append(records, rec)
			fmt.Fprintf(w, "%-20s %-8s %10.0f ns/query  %6.2f allocs/query  %9.0f qps\n",
				sh.name, rec.Mode, rec.NsPerQuery, rec.AllocsPerOp, rec.QPS)
		}
	}

	for _, rec := range kernelMicros() {
		records = append(records, rec)
		fmt.Fprintf(w, "%-20s %-16s kernel %7.1f ns  scalar %7.1f ns  speedup %.2fx\n",
			rec.Shape, rec.Mode, rec.KernelNs, rec.ScalarNs, rec.Speedup)
	}
	return records, nil
}

// measure runs fn over `queries` queries and reports wall time and
// allocation deltas per query.
func measure(queries int, fn func() (int64, error)) (Record, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	cells, err := fn()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return Record{}, err
	}
	q := float64(queries)
	return Record{
		NsPerQuery:    float64(elapsed.Nanoseconds()) / q,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / q,
		QPS:           q / elapsed.Seconds(),
		CellsPerQuery: float64(cells) / q,
	}, nil
}

func measureSequential(sh shape, specs []bond.QuerySpec) (Record, error) {
	rec, err := measure(len(specs), func() (int64, error) {
		var cells int64
		for _, spec := range specs {
			res, err := sh.col.Query(spec)
			if err != nil {
				return 0, err
			}
			cells += res.Stats.ValuesScanned
		}
		return cells, nil
	})
	if err != nil {
		return rec, err
	}
	rec.Shape, rec.Mode, rec.Criterion = sh.name, "query", sh.criterion.String()
	return rec, nil
}

func measureBatch(sh shape, specs []bond.QuerySpec, batch int) (Record, error) {
	rec, err := measure(len(specs), func() (int64, error) {
		var cells int64
		for i := 0; i < len(specs); i += batch {
			end := i + batch
			if end > len(specs) {
				end = len(specs)
			}
			rs, err := sh.col.QueryBatch(specs[i:end])
			if err != nil {
				return 0, err
			}
			for _, r := range rs {
				cells += r.Stats.ValuesScanned
			}
		}
		return cells, nil
	})
	if err != nil {
		return rec, err
	}
	rec.Shape, rec.Mode, rec.Criterion = sh.name, fmt.Sprintf("batch%d", batch), sh.criterion.String()
	rec.CellsPerQuery = 0 // identical to sequential; omit from the row
	return rec, nil
}

// kernelMicros times each headline kernel against the scalar loop it
// replaced, on the same data. The scalar references are verbatim copies of
// the pre-kernel inner loops.
func kernelMicros() []Record {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	col := make([]float64, n)
	score := make([]float64, n)
	cands := make([]int, n)
	for i := range col {
		col[i] = rng.Float64()
		cands[i] = i
	}
	qd := 0.5

	// Interleaved min-of-rounds timing: the two loops alternate inside one
	// process and each keeps its best round, so frequency drift and noisy
	// neighbors (this often runs on small shared VMs) cancel out instead
	// of biasing one side.
	time1 := func(fn func()) float64 {
		const reps = 400
		start := time.Now()
		for i := 0; i < reps; i++ {
			fn()
		}
		return float64(time.Since(start).Nanoseconds()) / reps
	}
	micro := func(name string, kernelFn, scalarFn func()) Record {
		kernelFn()
		scalarFn() // warm both
		k, s := math.Inf(1), math.Inf(1)
		for round := 0; round < 6; round++ {
			k = math.Min(k, time1(kernelFn))
			s = math.Min(s, time1(scalarFn))
		}
		return Record{Shape: "kernel", Mode: name, KernelNs: k, ScalarNs: s, Speedup: s / k, SIMD: kernel.SIMD()}
	}

	recs := []Record{
		micro("AccSqDist",
			func() { kernel.AccSqDist(score, col, cands, qd) },
			func() {
				for ci, id := range cands {
					d := col[id] - qd
					score[ci] += d * d
				}
			}),
		micro("AccMinQ",
			func() { kernel.AccMinQ(score, col, cands, qd) },
			func() {
				for ci, id := range cands {
					v := col[id]
					if v < qd {
						score[ci] += v
					} else {
						score[ci] += qd
					}
				}
			}),
	}

	const denseRows, denseDims = 512, 166
	dense := make([][]float64, denseRows)
	for i := range dense {
		v := make([]float64, denseDims)
		for d := range v {
			v[d] = rng.Float64()
		}
		dense[i] = v
	}
	dq := dense[0]
	var sink float64
	recs = append(recs, micro("SqDistDense",
		func() {
			for _, v := range dense {
				sink += kernel.SqDist(v, dq)
			}
		},
		func() {
			for _, v := range dense {
				s := 0.0
				for d, x := range v {
					diff := x - dq[d]
					s += diff * diff
				}
				sink += s
			}
		}))

	const dims = 64
	tbl := make([]float64, dims*256)
	for i := range tbl {
		tbl[i] = rng.Float64()
	}
	row := make([]uint8, dims)
	for d := range row {
		row[d] = uint8(rng.Intn(256))
	}
	recs = append(recs, micro("VARowSum",
		func() {
			for r := 0; r+dims <= n; r += dims {
				sink += kernel.VARowSum(tbl, row)
			}
		},
		func() {
			for r := 0; r+dims <= n; r += dims {
				var l0, l1 float64
				d := 0
				for ; d+1 < dims; d += 2 {
					l0 += tbl[d*256+int(row[d])]
					l1 += tbl[(d+1)*256+int(row[d+1])]
				}
				if d < dims {
					l0 += tbl[d*256+int(row[d])]
				}
				sink += l0 + l1
			}
		}))
	_ = sink
	return recs
}

// WriteJSON writes the records to path as indented JSON.
func WriteJSON(path string, records []Record) error {
	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

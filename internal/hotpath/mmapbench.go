package hotpath

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"bond"
	"bond/internal/kernel"
)

// RunMmap measures the durable, on-disk side of the hot path: steady-state
// query latency over memory-mapped v2 segments versus the same segments
// decoded onto the heap, and the cold-open cost of each backing. Every
// collection lives in its own temp directory on the real filesystem —
// mappings need real files — and is removed afterwards.
//
// The steady-state comparison reuses the three Run shapes. Each (shape,
// backing) pair gets a "query" row tagged with Backing, plus one
// "mmap_vs_heap" summary row per shape whose Speedup is heap-ns over
// mmap-ns (≈1 is the goal: a mapped column behind the same kernels should
// cost heap speed once the pages are resident).
//
// The cold-open comparison builds one checkpointed 24000×64 collection
// and times OpenDurable against it with and without mappings: the mmap
// path faults pages in lazily, so open time is manifest-bound, while the
// heap path decodes and CRC-checks every column up front.
func RunMmap(cfg Config, w io.Writer) ([]Record, error) {
	if w == nil {
		w = io.Discard
	}
	var records []Record

	backings := []struct {
		name    string
		disable bool
	}{{"mmap", false}, {"heap", true}}
	if cfg.DisableMmap {
		backings = backings[1:]
	}

	type shapeSpec struct {
		name      string
		criterion bond.Criterion
		build     func() [][]float64
	}
	shapes := []shapeSpec{
		{"uniform", bond.Eq, func() [][]float64 {
			rng := rand.New(rand.NewSource(21))
			vs := make([][]float64, cfg.N)
			for i := range vs {
				v := make([]float64, cfg.Dims)
				for d := range v {
					v[d] = rng.Float64()
				}
				vs[i] = v
			}
			return vs
		}},
		{"cluster_contiguous", bond.Eq, func() [][]float64 {
			rng := rand.New(rand.NewSource(22))
			vs := make([][]float64, 0, cfg.N)
			center := make([]float64, cfg.Dims)
			for i := 0; i < cfg.N; i++ {
				if i%cfg.SegSize == 0 {
					for d := range center {
						center[d] = rng.Float64()
					}
				}
				v := make([]float64, cfg.Dims)
				for d := range v {
					x := center[d] + 0.03*(rng.Float64()-0.5)
					if x < 0 {
						x = 0
					}
					if x > 1 {
						x = 1
					}
					v[d] = x
				}
				vs = append(vs, v)
			}
			return vs
		}},
		{"skewed", bond.Hq, func() [][]float64 {
			rng := rand.New(rand.NewSource(23))
			vs := make([][]float64, cfg.N)
			for i := range vs {
				v := make([]float64, cfg.Dims)
				for d := range v {
					v[d] = rng.Float64() / float64(1+d)
				}
				vs[i] = v
			}
			return vs
		}},
	}

	for _, sp := range shapes {
		vs := sp.build()
		dir, err := buildDurable(sp.name, vs, cfg.SegSize)
		if err != nil {
			return nil, err
		}
		perBacking, err := measureBackings(dir, backings, vs, sp.criterion, cfg)
		os.RemoveAll(filepath.Dir(dir))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sp.name, err)
		}
		for _, bk := range backings {
			rec := perBacking[bk.name]
			rec.Shape, rec.Mode, rec.Criterion = sp.name, "query", sp.criterion.String()
			rec.Backing, rec.SIMD = bk.name, kernel.SIMD()
			records = append(records, rec)
			fmt.Fprintf(w, "%-20s %-8s %-5s %10.0f ns/query  %6.2f allocs/query  %9.0f qps\n",
				sp.name, rec.Mode, bk.name, rec.NsPerQuery, rec.AllocsPerOp, rec.QPS)
		}
		if h, m := perBacking["heap"].NsPerQuery, perBacking["mmap"].NsPerQuery; h > 0 && m > 0 {
			sum := Record{Shape: sp.name, Mode: "mmap_vs_heap", KernelNs: m, ScalarNs: h, Speedup: h / m}
			records = append(records, sum)
			fmt.Fprintf(w, "%-20s %-14s heap/mmap = %.3f\n", sp.name, sum.Mode, sum.Speedup)
		}
	}

	cold, err := coldOpenRecords(cfg, w)
	if err != nil {
		return nil, err
	}
	return append(records, cold...), nil
}

// buildDurable creates a checkpointed durable collection holding vs under
// a fresh temp directory and returns its path (<tmp>/col.bond). The
// checkpoint seals the ingest into v2 segment files, so a reopen recovers
// from segment files rather than replaying the WAL.
func buildDurable(name string, vs [][]float64, segSize int) (string, error) {
	tmp, err := os.MkdirTemp("", "bond-hotpath-"+name+"-")
	if err != nil {
		return "", err
	}
	dir := filepath.Join(tmp, "col.bond")
	col, err := bond.OpenDurable(dir, bond.DurableOptions{
		Dims:        len(vs[0]),
		SegmentSize: segSize,
		Fsync:       bond.FsyncNever,
	})
	if err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	if _, err := col.AddBatchDurable(vs); err != nil {
		col.Close()
		os.RemoveAll(tmp)
		return "", err
	}
	if err := col.SealActiveDurable(); err != nil {
		col.Close()
		os.RemoveAll(tmp)
		return "", err
	}
	if err := col.Checkpoint(); err != nil {
		col.Close()
		os.RemoveAll(tmp)
		return "", err
	}
	if err := col.Close(); err != nil {
		os.RemoveAll(tmp)
		return "", err
	}
	return dir, nil
}

// steadyRounds is how many interleaved measurement passes each backing
// gets; the best pass per backing is reported.
const steadyRounds = 3

// measureBackings opens the collection once per backing, warms each, then
// alternates measurement rounds across the backings, keeping each
// backing's fastest pass. Interleaving plus best-of-N makes the
// heap/mmap ratio robust against drift (CPU frequency, background load,
// GC debt from the build) that would otherwise bias whichever leg ran
// first. The warm pass faults the mapped pages in, builds lazy codes,
// and warms the scratch pools, so the measured passes compare steady
// states. The strategy is pinned to BOND so both backings execute the
// identical scan — under StrategyAuto the adaptive models of the two
// independently opened collections can settle on different access paths,
// which would measure planner trajectory noise instead of the backing.
func measureBackings(dir string, backings []struct {
	name    string
	disable bool
}, vs [][]float64, crit bond.Criterion, cfg Config) (map[string]Record, error) {
	specs := make([]bond.QuerySpec, cfg.Queries)
	for i := range specs {
		specs[i] = bond.QuerySpec{Query: vs[i%len(vs)], K: cfg.K, Criterion: crit, Strategy: bond.StrategyBOND}
	}
	runOn := func(col *bond.Collection) func() (int64, error) {
		return func() (int64, error) {
			var cells int64
			for _, spec := range specs {
				res, err := col.Query(spec)
				if err != nil {
					return 0, err
				}
				cells += res.Stats.ValuesScanned
			}
			return cells, nil
		}
	}

	cols := make(map[string]*bond.Collection, len(backings))
	closeAll := func() {
		for _, col := range cols {
			col.Close()
		}
	}
	for _, bk := range backings {
		col, err := bond.OpenDurable(dir, bond.DurableOptions{DisableMmap: bk.disable})
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("%s open: %w", bk.name, err)
		}
		cols[bk.name] = col
		if _, err := runOn(col)(); err != nil {
			closeAll()
			return nil, fmt.Errorf("%s warm: %w", bk.name, err)
		}
	}

	best := make(map[string]Record, len(backings))
	for round := 0; round < steadyRounds; round++ {
		for _, bk := range backings {
			rec, err := measure(cfg.Queries, runOn(cols[bk.name]))
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("%s: %w", bk.name, err)
			}
			if prev, ok := best[bk.name]; !ok || rec.NsPerQuery < prev.NsPerQuery {
				best[bk.name] = rec
			}
		}
	}
	for name, col := range cols {
		if err := col.Close(); err != nil {
			return nil, fmt.Errorf("%s close: %w", name, err)
		}
		delete(cols, name)
	}
	return best, nil
}

// Cold-open shape: fixed 24000×64 regardless of cfg, so the row is
// comparable across runs and large enough (≈12 MiB of columns) that the
// decode cost is not noise.
const (
	coldOpenRows = 24000
	coldOpenDims = 64
)

func coldOpenRecords(cfg Config, w io.Writer) ([]Record, error) {
	rng := rand.New(rand.NewSource(31))
	vs := make([][]float64, coldOpenRows)
	for i := range vs {
		v := make([]float64, coldOpenDims)
		for d := range v {
			v[d] = rng.Float64()
		}
		vs[i] = v
	}
	dir, err := buildDurable("coldopen", vs, 2000)
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(filepath.Dir(dir))

	mode := fmt.Sprintf("cold_open_%dx%d", coldOpenRows, coldOpenDims)
	timeOpen := func(disable bool) (float64, error) {
		best := -1.0
		for round := 0; round < 3; round++ {
			start := time.Now()
			col, err := bond.OpenDurable(dir, bond.DurableOptions{DisableMmap: disable})
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if err != nil {
				return 0, err
			}
			if err := col.Close(); err != nil {
				return 0, err
			}
			if best < 0 || ms < best {
				best = ms
			}
		}
		return best, nil
	}

	var records []Record
	times := map[string]float64{}
	backings := []struct {
		name    string
		disable bool
	}{{"mmap", false}, {"heap", true}}
	if cfg.DisableMmap {
		backings = backings[1:]
	}
	for _, bk := range backings {
		ms, err := timeOpen(bk.disable)
		if err != nil {
			return nil, fmt.Errorf("cold open %s: %w", bk.name, err)
		}
		times[bk.name] = ms
		records = append(records, Record{Shape: "durable", Mode: mode, Backing: bk.name, ColdOpenMs: ms})
		fmt.Fprintf(w, "%-20s %-20s %-5s %10.2f ms\n", "durable", mode, bk.name, ms)
	}
	if h, m := times["heap"], times["mmap"]; h > 0 && m > 0 {
		sum := Record{Shape: "durable", Mode: mode + "_mmap_vs_heap", KernelNs: m * 1e6, ScalarNs: h * 1e6, Speedup: h / m}
		records = append(records, sum)
		fmt.Fprintf(w, "%-20s %-26s heap/mmap = %.1fx\n", "durable", sum.Mode, sum.Speedup)
	}
	return records, nil
}

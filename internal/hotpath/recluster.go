package hotpath

// RunRecluster measures what background re-clustering buys: the same
// clusterable collection is queried three times — ingested in shuffled
// order (every segment spans the whole extent, synopsis skipping cannot
// fire), after one Recluster pass rewrote it cluster-contiguously, and
// as a cluster-contiguous ingest that never needed maintenance (the
// ceiling). The interesting numbers are the post/pre QPS ratio and the
// drop in cells scanned per query; the records land in
// BENCH_recluster.json next to BENCH_hotpath.json.

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"bond"
)

// reclusterShape derives the recluster suite's sizing from cfg: more
// vectors, wider, and smaller segments than the hot-path shapes, because
// the benefit of skipping scales with segments-per-collection — at the
// hot-path sizing a recluster "only" wins ~3×, which would understate
// the effect the maintenance pass has on a serving-sized collection.
// (At the defaults this is 24000×64 in 96 segments: the rewrite takes
// ~2.5 s and queries come back >10× faster, near the contiguous
// ceiling.)
func reclusterShape(cfg Config) (n, dims, segSize int) {
	n, dims, segSize = 6*cfg.N, 2*cfg.Dims, cfg.SegSize/2
	if segSize < 16 {
		segSize = 16
	}
	if n < 2*segSize {
		n = 2 * segSize
	}
	n -= n % segSize // whole segments: the entire collection seals on ingest
	return n, dims, segSize
}

// RunRecluster runs the re-clustering benchmark, streaming a
// human-readable table to w (nil discards it).
func RunRecluster(cfg Config, w io.Writer) ([]Record, error) {
	if w == nil {
		w = io.Discard
	}
	n, dims, segSize := reclusterShape(cfg)

	// Planted clusters, one segment's worth of members each, generated
	// cluster-major (the ceiling layout) and then shuffled (the ingest
	// order a live system actually sees).
	rng := rand.New(rand.NewSource(41))
	contiguous := make([][]float64, 0, n)
	center := make([]float64, dims)
	for i := 0; i < n; i++ {
		if i%segSize == 0 {
			for d := range center {
				center[d] = rng.Float64()
			}
		}
		v := make([]float64, dims)
		for d := range v {
			x := center[d] + 0.03*(rng.Float64()-0.5)
			if x < 0 {
				x = 0
			}
			if x > 1 {
				x = 1
			}
			v[d] = x
		}
		contiguous = append(contiguous, v)
	}
	shuffled := make([][]float64, n)
	for i, j := range rng.Perm(n) {
		shuffled[j] = contiguous[i]
	}
	queries := make([][]float64, cfg.Queries)
	for i := range queries {
		queries[i] = contiguous[(i*segSize+i)%n] // one per cluster, round-robin
	}

	col := bond.NewCollectionSegmented(shuffled, segSize)
	sh := shape{"shuffled_ingest", bond.Eq, col, queries}
	specs := make([]bond.QuerySpec, cfg.Queries)
	for i := range specs {
		specs[i] = bond.QuerySpec{Query: queries[i], K: cfg.K, Criterion: sh.criterion}
	}

	spreadBefore, _ := col.SealedSpread()
	pre, err := measureShape(sh, specs, "pre_recluster")
	if err != nil {
		return nil, err
	}

	start := time.Now()
	col.Recluster(0, 1)
	reclusterMs := float64(time.Since(start).Nanoseconds()) / 1e6
	spreadAfter, _ := col.SealedSpread()

	post, err := measureShape(sh, specs, "post_recluster")
	if err != nil {
		return nil, err
	}

	ceilCol := bond.NewCollectionSegmented(contiguous, segSize)
	ceil, err := measureShape(shape{sh.name, sh.criterion, ceilCol, queries}, specs, "ceiling")
	if err != nil {
		return nil, err
	}

	summary := Record{
		Shape:        sh.name,
		Mode:         "summary",
		Speedup:      post.QPS / pre.QPS,
		ReclusterMs:  reclusterMs,
		SpreadBefore: spreadBefore,
		SpreadAfter:  spreadAfter,
	}
	records := []Record{pre, post, ceil, summary}
	for _, r := range records[:3] {
		fmt.Fprintf(w, "%-16s %-14s %10.0f ns/query  %9.0f qps  %10.0f cells/query\n",
			r.Shape, r.Mode, r.NsPerQuery, r.QPS, r.CellsPerQuery)
	}
	fmt.Fprintf(w, "%-16s %-14s recluster %.0f ms  spread %.3f → %.3f  post/pre qps %.1fx\n",
		summary.Shape, summary.Mode, reclusterMs, spreadBefore, spreadAfter, summary.Speedup)
	return records, nil
}

// measureShape warms the shape like Run does and measures the sequential
// query path under the given mode label.
func measureShape(sh shape, specs []bond.QuerySpec, mode string) (Record, error) {
	warm := specs
	if len(warm) > 8 {
		warm = warm[:8]
	}
	for _, spec := range warm {
		if _, err := sh.col.Query(spec); err != nil {
			return Record{}, err
		}
	}
	rec, err := measureSequential(sh, specs)
	if err != nil {
		return Record{}, err
	}
	rec.Mode = mode
	return rec, nil
}

//go:build linux || darwin

package mmap

import (
	"fmt"
	"os"
	"syscall"
)

const supported = true

func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmap: %s is %d bytes, larger than the address space", path, size)
	}
	// MAP_PRIVATE read-only: the segment file is write-once and never
	// modified in place, so a private mapping reads the same bytes as a
	// shared one without ever being able to dirty the page cache.
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("mmap: map %s: %w", path, err)
	}
	return b, nil
}

func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}

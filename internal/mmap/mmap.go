// Package mmap is the thin platform seam behind memory-mapped sealed
// segments: map a file read-only into the address space, unmap it again,
// and report whether the platform supports doing so at all.
//
// The storage layer never calls this package directly — it goes through
// the iofs filesystem seam (iofs.OS implements MapFile with it), so the
// in-memory and crash-injecting test filesystems transparently fall back
// to read-into-heap and the recovery protocol is exercised identically
// on both backings.
package mmap

import "errors"

// ErrUnsupported reports a platform without a usable mmap; callers fall
// back to reading the file into the heap.
var ErrUnsupported = errors.New("mmap: not supported on this platform")

// Supported reports whether Map works on this platform.
func Supported() bool { return supported }

// Map maps the file at path read-only and returns the mapping. An empty
// file returns a nil slice (nothing to map) with no error. The mapping
// stays valid after the file is unlinked (POSIX keeps the pages) and
// must be released with Unmap.
func Map(path string) ([]byte, error) { return mapFile(path) }

// Unmap releases a mapping returned by Map. Unmapping nil is a no-op.
// After Unmap returns, any slice aliasing the mapping is invalid.
func Unmap(b []byte) error { return unmapFile(b) }

//go:build !linux && !darwin

package mmap

const supported = false

func mapFile(path string) ([]byte, error) { return nil, ErrUnsupported }

func unmapFile(b []byte) error { return nil }

package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapKeepsKLargest(t *testing.T) {
	h := NewLargest(3)
	scores := []float64{0.1, 0.9, 0.4, 0.7, 0.2, 0.8}
	for i, s := range scores {
		h.Push(i, s)
	}
	got := h.Results()
	want := []Result{{1, 0.9}, {5, 0.8}, {3, 0.7}}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHeapKeepsKSmallest(t *testing.T) {
	h := NewSmallest(2)
	scores := []float64{5, 1, 4, 2, 3}
	for i, s := range scores {
		h.Push(i, s)
	}
	got := h.Results()
	want := []Result{{1, 1}, {3, 2}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("result[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHeapThresholdUnavailableUntilFull(t *testing.T) {
	h := NewLargest(3)
	h.Push(0, 1.0)
	if _, ok := h.Threshold(); ok {
		t.Error("Threshold should be unavailable before heap is full")
	}
	h.Push(1, 2.0)
	h.Push(2, 3.0)
	v, ok := h.Threshold()
	if !ok || v != 1.0 {
		t.Errorf("Threshold = %v, %v; want 1.0, true", v, ok)
	}
}

func TestHeapWouldAccept(t *testing.T) {
	h := NewLargest(2)
	if !h.WouldAccept(0.0) {
		t.Error("non-full heap must accept anything")
	}
	h.Push(0, 0.5)
	h.Push(1, 0.7)
	if h.WouldAccept(0.4) {
		t.Error("0.4 must not displace threshold 0.5")
	}
	if !h.WouldAccept(0.5) {
		t.Error("equal score could displace via a smaller id, must answer true")
	}
	if !h.WouldAccept(0.6) {
		t.Error("0.6 must displace threshold 0.5")
	}
}

func TestHeapSmallestWouldAccept(t *testing.T) {
	h := NewSmallest(2)
	h.Push(0, 0.5)
	h.Push(1, 0.7)
	if h.WouldAccept(0.8) {
		t.Error("0.8 must not displace threshold 0.7 in smallest mode")
	}
	if !h.WouldAccept(0.6) {
		t.Error("0.6 must displace threshold 0.7 in smallest mode")
	}
}

func TestHeapFewerThanK(t *testing.T) {
	h := NewLargest(10)
	h.Push(3, 0.3)
	h.Push(1, 0.9)
	got := h.Results()
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	if got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("unexpected order: %+v", got)
	}
}

func TestKthLargestSmallCases(t *testing.T) {
	xs := []float64{0.3, 0.1, 0.5, 0.2, 0.4}
	cases := []struct {
		k    int
		want float64
	}{{1, 0.5}, {2, 0.4}, {3, 0.3}, {5, 0.1}, {10, 0.1}}
	for _, c := range cases {
		if got := KthLargest(xs, c.k); got != c.want {
			t.Errorf("KthLargest(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKthSmallestSmallCases(t *testing.T) {
	xs := []float64{0.3, 0.1, 0.5, 0.2, 0.4}
	cases := []struct {
		k    int
		want float64
	}{{1, 0.1}, {2, 0.2}, {4, 0.4}, {5, 0.5}, {99, 0.5}}
	for _, c := range cases {
		if got := KthSmallest(xs, c.k); got != c.want {
			t.Errorf("KthSmallest(k=%d) = %v, want %v", c.k, got, c.want)
		}
	}
}

func TestKthLargestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty slice")
		}
	}()
	KthLargest(nil, 1)
}

func TestNewLargestPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on k=0")
		}
	}()
	NewLargest(0)
}

// Property: KthLargest matches sorting for random inputs.
func TestKthLargestMatchesSort(t *testing.T) {
	f := func(seed int64, n uint8, kraw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%50 + 1
		k := int(kraw)%size + 1
		xs := make([]float64, size)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		got := KthLargest(xs, k)
		sorted := append([]float64(nil), xs...)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		return got == sorted[k-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: heap of k largest equals the first k of the descending sort.
func TestHeapMatchesSort(t *testing.T) {
	f := func(seed int64, n uint8, kraw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n)%60 + 1
		k := int(kraw)%10 + 1
		h := NewLargest(k)
		all := make([]Result, size)
		for i := 0; i < size; i++ {
			// Use a discrete grid so ties occur with high probability.
			s := float64(rng.Intn(10)) / 10
			all[i] = Result{ID: i, Score: s}
			h.Push(i, s)
		}
		sort.Sort(ByScoreDesc(all))
		want := all
		if k < len(want) {
			want = want[:k]
		}
		got := h.Results()
		if len(got) != len(want) {
			return false
		}
		// Scores must match exactly; IDs may differ under ties.
		for i := range want {
			if got[i].Score != want[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMergeLargest(t *testing.T) {
	a := []Result{{1, 0.9}, {2, 0.5}}
	b := []Result{{3, 0.8}, {1, 0.7}} // duplicate ID 1 with worse score
	got := Merge(3, true, a, b)
	want := []Result{{1, 0.9}, {3, 0.8}, {2, 0.5}}
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestMergeSmallest(t *testing.T) {
	a := []Result{{1, 0.9}, {2, 0.5}}
	b := []Result{{2, 0.3}, {4, 0.4}}
	got := Merge(2, false, a, b)
	want := []Result{{2, 0.3}, {4, 0.4}}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func BenchmarkHeapPush(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 10000)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewLargest(10)
		for id, s := range scores {
			h.Push(id, s)
		}
	}
}

func BenchmarkKthLargest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KthLargest(xs, 10)
	}
}

// TestHeapDeterministicTieBreak pins the order-independence property the
// segmented merge relies on: among equal scores at the k-boundary the
// smaller ids win, no matter in which order results are offered.
func TestHeapDeterministicTieBreak(t *testing.T) {
	offers := []Result{{ID: 9, Score: 0.5}, {ID: 2, Score: 0.5}, {ID: 7, Score: 0.9},
		{ID: 4, Score: 0.5}, {ID: 1, Score: 0.2}}
	perms := [][]int{{0, 1, 2, 3, 4}, {4, 3, 2, 1, 0}, {2, 0, 4, 1, 3}, {3, 4, 0, 2, 1}}
	for _, p := range perms {
		h := NewLargest(3)
		for _, i := range p {
			h.Push(offers[i].ID, offers[i].Score)
		}
		got := h.Results()
		want := []Result{{ID: 7, Score: 0.9}, {ID: 2, Score: 0.5}, {ID: 4, Score: 0.5}}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %v: rank %d = %+v, want %+v", p, i, got[i], want[i])
			}
		}
	}
	for _, p := range perms {
		h := NewSmallest(2)
		for _, i := range p {
			h.Push(offers[i].ID, offers[i].Score)
		}
		got := h.Results()
		want := []Result{{ID: 1, Score: 0.2}, {ID: 2, Score: 0.5}}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("smallest perm %v: rank %d = %+v, want %+v", p, i, got[i], want[i])
			}
		}
	}
}

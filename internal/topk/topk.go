// Package topk provides bounded-size heap utilities for k-best selection.
//
// These are the kernels behind the paper's kfetch operator (Section 6.1),
// which selects the k-th largest element of a score column using a priority
// queue implemented as a heap, with worst-case cost O(n log k), and behind
// the k-best result heaps of the sequential-scan baselines.
package topk

import (
	"fmt"
	"slices"
	"sort"
)

// Result is a scored item: an object identifier paired with its score.
type Result struct {
	ID    int
	Score float64
}

// ByScoreDesc sorts results by decreasing score, breaking ties by
// increasing ID so orderings are deterministic.
type ByScoreDesc []Result

func (r ByScoreDesc) Len() int      { return len(r) }
func (r ByScoreDesc) Swap(i, j int) { r[i], r[j] = r[j], r[i] }
func (r ByScoreDesc) Less(i, j int) bool {
	if r[i].Score != r[j].Score {
		return r[i].Score > r[j].Score
	}
	return r[i].ID < r[j].ID
}

// ByScoreAsc sorts results by increasing score, breaking ties by
// increasing ID.
type ByScoreAsc []Result

func (r ByScoreAsc) Len() int      { return len(r) }
func (r ByScoreAsc) Swap(i, j int) { r[i], r[j] = r[j], r[i] }
func (r ByScoreAsc) Less(i, j int) bool {
	if r[i].Score != r[j].Score {
		return r[i].Score < r[j].Score
	}
	return r[i].ID < r[j].ID
}

// Heap is a bounded-size heap that retains the k best results seen so far.
// Depending on the mode it keeps the k largest scores (a min-heap on score,
// used for similarity search) or the k smallest scores (a max-heap on score,
// used for distance search).
type Heap struct {
	k        int
	largest  bool // true: keep k largest; false: keep k smallest
	items    []Result
	overflow bool // true once more than k items have been offered
}

// NewLargest returns a heap retaining the k results with the largest scores.
// It panics if k < 1.
func NewLargest(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("topk: k must be >= 1, got %d", k))
	}
	return &Heap{k: k, largest: true, items: make([]Result, 0, k)}
}

// NewSmallest returns a heap retaining the k results with the smallest
// scores. It panics if k < 1.
func NewSmallest(k int) *Heap {
	if k < 1 {
		panic(fmt.Sprintf("topk: k must be >= 1, got %d", k))
	}
	return &Heap{k: k, largest: false, items: make([]Result, 0, k)}
}

// Reset reinitializes the heap in place for a new selection of the k best
// under the given mode, reusing the retained-items buffer — the pooled
// counterpart of NewLargest/NewSmallest. It panics if k < 1.
func (h *Heap) Reset(k int, largest bool) {
	if k < 1 {
		panic(fmt.Sprintf("topk: k must be >= 1, got %d", k))
	}
	h.k = k
	h.largest = largest
	h.items = h.items[:0]
	h.overflow = false
}

// K returns the heap's configured capacity.
func (h *Heap) K() int { return h.k }

// Len returns the number of results currently retained (at most k).
func (h *Heap) Len() int { return len(h.items) }

// Full reports whether the heap holds k results.
func (h *Heap) Full() bool { return len(h.items) == h.k }

// worse reports whether result a ranks strictly behind result b under the
// heap's mode: by score first (for a "largest" heap smaller scores are
// worse, for a "smallest" heap larger scores are worse), then by id —
// among equal scores the larger id is worse. The id tie-break makes the
// retained set a unique function of the offered results, independent of
// push order, which is what lets a per-segment search merge to exactly
// the same answer as a flat scan.
func (h *Heap) worse(a, b Result) bool {
	if a.Score != b.Score {
		if h.largest {
			return a.Score < b.Score
		}
		return a.Score > b.Score
	}
	return a.ID > b.ID
}

// Push offers a result to the heap. It returns true if the result was
// retained (it is currently among the k best).
func (h *Heap) Push(id int, score float64) bool {
	it := Result{ID: id, Score: score}
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		h.siftUp(len(h.items) - 1)
		return true
	}
	h.overflow = true
	// Root is the current worst of the k best.
	if !h.worse(h.items[0], it) {
		return false
	}
	h.items[0] = it
	h.siftDown(0)
	return true
}

// Threshold returns the score of the current k-th best result (the worst
// retained score). The boolean is false until the heap is full, in which
// case no pruning threshold is available yet.
func (h *Heap) Threshold() (float64, bool) {
	if len(h.items) < h.k {
		return 0, false
	}
	return h.items[0].Score, true
}

// WouldAccept reports whether a result with the given score could displace
// the current k-th best (or whether the heap still has room). A score
// equal to the threshold answers true, since an id smaller than the
// root's would be retained.
func (h *Heap) WouldAccept(score float64) bool {
	if len(h.items) < h.k {
		return true
	}
	if score == h.items[0].Score {
		return true
	}
	if h.largest {
		return score > h.items[0].Score
	}
	return score < h.items[0].Score
}

// Results returns the retained results sorted best-first: decreasing score
// for a "largest" heap, increasing score for a "smallest" heap. The heap is
// not modified.
func (h *Heap) Results() []Result {
	return h.AppendResults(make([]Result, 0, len(h.items)))
}

// AppendResults appends the retained results, sorted best-first, to dst and
// returns the extended slice — the allocation-free counterpart of Results
// for callers bringing their own buffer. The heap is not modified.
func (h *Heap) AppendResults(dst []Result) []Result {
	start := len(dst)
	dst = append(dst, h.items...)
	out := dst[start:]
	if h.largest {
		slices.SortFunc(out, func(a, b Result) int {
			if a.Score != b.Score {
				if a.Score > b.Score {
					return -1
				}
				return 1
			}
			return a.ID - b.ID
		})
	} else {
		slices.SortFunc(out, func(a, b Result) int {
			if a.Score != b.Score {
				if a.Score < b.Score {
					return -1
				}
				return 1
			}
			return a.ID - b.ID
		})
	}
	return dst
}

// siftUp restores the heap property after appending at index i.
func (h *Heap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.worse(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (h *Heap) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		worst := i
		if left < n && h.worse(h.items[left], h.items[worst]) {
			worst = left
		}
		if right < n && h.worse(h.items[right], h.items[worst]) {
			worst = right
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// KthLargest returns the k-th largest value in xs using a size-k min-heap,
// the paper's kfetch kernel (O(n log k)). If k exceeds len(xs) it returns
// the minimum of xs. It panics if xs is empty or k < 1.
func KthLargest(xs []float64, k int) float64 {
	return KthLargestWith(NewLargest(max(k, 1)), xs, k)
}

// KthLargestWith is KthLargest reusing a caller-provided heap (pooled
// kfetch); the heap's previous contents and mode are discarded.
func KthLargestWith(h *Heap, xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("topk: KthLargest on empty slice")
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: k must be >= 1, got %d", k))
	}
	if k > len(xs) {
		k = len(xs)
	}
	h.Reset(k, true)
	for i, x := range xs {
		h.Push(i, x)
	}
	v, _ := h.Threshold()
	return v
}

// KthSmallest returns the k-th smallest value in xs using a size-k max-heap.
// If k exceeds len(xs) it returns the maximum of xs. It panics if xs is
// empty or k < 1.
func KthSmallest(xs []float64, k int) float64 {
	return KthSmallestWith(NewSmallest(max(k, 1)), xs, k)
}

// KthSmallestWith is KthSmallest reusing a caller-provided heap (pooled
// kfetch); the heap's previous contents and mode are discarded.
func KthSmallestWith(h *Heap, xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("topk: KthSmallest on empty slice")
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: k must be >= 1, got %d", k))
	}
	if k > len(xs) {
		k = len(xs)
	}
	h.Reset(k, false)
	for i, x := range xs {
		h.Push(i, x)
	}
	v, _ := h.Threshold()
	return v
}

// Merge combines several best-first result lists into the overall k best.
// If largest is true the highest scores win, otherwise the lowest. Ties are
// broken by ID. Duplicate IDs across lists are collapsed, keeping the best
// score for each ID.
func Merge(k int, largest bool, lists ...[]Result) []Result {
	best := make(map[int]float64)
	for _, list := range lists {
		for _, r := range list {
			cur, ok := best[r.ID]
			if !ok || (largest && r.Score > cur) || (!largest && r.Score < cur) {
				best[r.ID] = r.Score
			}
		}
	}
	var h *Heap
	if largest {
		h = NewLargest(k)
	} else {
		h = NewSmallest(k)
	}
	// Iterate in ID order for deterministic tie-breaks.
	ids := make([]int, 0, len(best))
	for id := range best {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		h.Push(id, best[id])
	}
	return h.Results()
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"bond"
	"bond/internal/api"
)

// Config configures a Server. The zero value serves from "./data" with
// library defaults.
type Config struct {
	// Dir is the catalog's data directory (default "data").
	Dir string
	// SegmentSize is the default seal threshold for new collections
	// (0 = the library default).
	SegmentSize int
	// MaxInFlight bounds concurrently executing query requests (single
	// queries, batches, and explains each hold one slot). Requests beyond
	// the bound wait; a request whose context ends while waiting is
	// rejected with 503. 0 defaults to 4×GOMAXPROCS — enough to keep the
	// worker pools busy without letting a flood of slow queries pile onto
	// every scratch pool at once.
	MaxInFlight int
	// CompactRatio is the tombstone ratio at which the maintenance loop
	// compacts a collection (0 = 0.25; negative disables compaction).
	CompactRatio float64
	// ReclusterSpread is the sealed synopsis-spread at which the
	// maintenance loop re-clusters a collection into cluster-contiguous
	// segments (0 = 0.6; negative disables re-clustering). Spread ≈1 means
	// segments span the whole data extent — synopsis skipping cannot fire
	// — so a recluster restores the cluster-contiguous layout queries are
	// fast on, whatever order the data arrived in.
	ReclusterSpread float64
	// MaxBodyBytes caps a request body; larger requests fail with 400
	// before anything is buffered (0 = 64 MiB). Admission control only
	// bounds executing queries, so this is what keeps one oversized
	// ingest from ballooning memory.
	MaxBodyBytes int64
	// Fsync is the WAL flush policy every collection opens with. The zero
	// value is bond.FsyncAlways: a 2xx on an ingest or delete means the
	// mutation is on stable storage.
	Fsync bond.FsyncPolicy
	// WALMaxBytes is the per-collection WAL size at which the maintenance
	// loop writes an incremental checkpoint and truncates the log
	// (0 = 16 MiB; it bounds recovery replay time, not durability).
	WALMaxBytes int64
	// MaintenanceInterval is the period of the background maintenance
	// loop. 0 disables the loop; RunMaintenance can still be driven
	// manually (bondd always sets it).
	MaintenanceInterval time.Duration
	// DisableMmap opens every collection with heap-decoded segments
	// instead of memory-mapping sealed v2 segment files (the BOND_NO_MMAP
	// environment variable forces the same).
	DisableMmap bool
	// Logf receives one line per maintenance action and per served error
	// (nil = silent).
	Logf func(format string, args ...any)
	// FollowURL, when set, starts the server as a read-only replica of
	// the leader at that base URL: every leader collection is
	// bootstrapped from a snapshot and tailed through the WAL stream,
	// client mutations are fenced with 409 read_only_replica, and
	// POST /promote flips the node into a writable leader.
	FollowURL string
	// FollowInterval is the tail poll period (0 = 500ms; negative
	// disables the background loop — tests drive SyncReplicaOnce).
	FollowInterval time.Duration
	// FollowClient overrides the HTTP client the follower tails the
	// leader with (nil = a 30s-timeout client).
	FollowClient *http.Client
}

// Server is the bondd serving layer: catalog + HTTP handlers + the
// background maintenance loop. Create one with New, mount Handler, and
// Close on the way out to flush unpersisted writes.
type Server struct {
	cfg Config
	cat *Catalog
	mux *http.ServeMux

	sem      chan struct{} // in-flight query admission; one slot per query/batch/explain
	inflight atomic.Int64
	start    time.Time

	// repl is the follower-mode tailer; nil unless Config.FollowURL was
	// set. It outlives promotion (the promoted flag and gauges keep
	// serving /replstatus).
	repl *replicator

	// Maintenance counters, exposed on /stats.
	maintRuns   atomic.Int64
	compactions atomic.Int64
	reclusters  atomic.Int64
	checkpoints atomic.Int64

	stop chan struct{}
	done chan struct{}
}

// New opens the catalog and, when the config asks for it, starts the
// maintenance loop.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		cfg.Dir = "data"
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.CompactRatio == 0 {
		cfg.CompactRatio = 0.25
	}
	if cfg.ReclusterSpread == 0 {
		cfg.ReclusterSpread = 0.6
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 64 << 20
	}
	if cfg.WALMaxBytes <= 0 {
		cfg.WALMaxBytes = 16 << 20
	}
	cat, err := NewCatalog(cfg.Dir, cfg.SegmentSize, cfg.Fsync, cfg.DisableMmap)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		cat:   cat,
		sem:   make(chan struct{}, cfg.MaxInFlight),
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.mux = http.NewServeMux()
	s.routes()
	if cfg.FollowURL != "" {
		s.repl = newReplicator(s, cfg)
	}
	if cfg.MaintenanceInterval > 0 {
		go s.maintainLoop()
	} else {
		close(s.done)
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Catalog exposes the underlying catalog (tests and bondd's shutdown
// path).
func (s *Server) Catalog() *Catalog { return s.cat }

// Close stops the maintenance loop, checkpoints every collection with a
// non-empty WAL (so the next start replays nothing), and closes every
// WAL with a final fsync. It is safe to call once; in-flight HTTP
// requests should be drained first (http.Server.Shutdown), since Close
// does not wait for them. Durability does not depend on Close — a
// SIGKILL instead of a clean shutdown loses nothing acknowledged under
// fsync=always — it only makes the next start cheap.
func (s *Server) Close() error {
	if s.repl != nil {
		s.repl.stopLoop()
	}
	close(s.stop)
	<-s.done
	_, err := s.cat.CheckpointLoaded(0)
	if cerr := s.cat.CloseAll(); err == nil {
		err = cerr
	}
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- Maintenance ----------------------------------------------------------

// reclusterSeed is the k-means seed maintenance re-clusters run with. A
// fixed seed keeps maintenance deterministic and reproducible; callers
// wanting a different initialization use the manual recluster endpoint.
const reclusterSeed = 1

func (s *Server) maintainLoop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.MaintenanceInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			if compacted, reclustered, checkpointed, err := s.RunMaintenance(); err != nil {
				s.logf("bondd: maintenance: %v", err)
			} else if compacted+reclustered+checkpointed > 0 {
				s.logf("bondd: maintenance: compacted %d, reclustered %d, checkpointed %d",
					compacted, reclustered, checkpointed)
			}
		}
	}
}

// RunMaintenance performs one maintenance cycle over the loaded
// collections: collections whose tombstone ratio is at or above the
// compaction threshold are compacted (a WAL-logged mutation that remaps
// surviving ids — the API's documented id contract); collections whose
// sealed synopsis spread is at or above the recluster threshold are
// re-clustered into cluster-contiguous segments (also a WAL-logged,
// id-remapping mutation) and immediately checkpointed, so recovery never
// has to re-run the clustering; then every collection whose WAL has
// outgrown WALMaxBytes is checkpointed, which truncates its log.
// Durability never waits for this loop — writes are WAL-logged at
// acknowledgment time — the loop only bounds tombstone load, scan load,
// and recovery replay time. Safe to call concurrently with serving
// traffic; compaction and re-clustering serialize against queries on the
// collection's own write lock, and checkpoint I/O runs outside it.
func (s *Server) RunMaintenance() (compacted, reclustered, checkpointed int, err error) {
	s.maintRuns.Add(1)
	// A follower performs no maintenance of its own: compactions and
	// re-clusters are WAL-logged mutations that arrive through the
	// stream, and a local checkpoint would rotate the WAL out of
	// lockstep with the leader's sequence numbering. Rotation happens
	// exactly when the stream says the leader rotated.
	if s.readOnlyReplica() {
		return 0, 0, 0, nil
	}
	if s.cfg.CompactRatio >= 0 {
		for name, col := range s.cat.Loaded() {
			ratio := col.TombstoneRatio()
			if ratio < s.cfg.CompactRatio || ratio == 0 {
				continue
			}
			if _, cerr := col.CompactRatioDurable(s.cfg.CompactRatio); cerr != nil {
				if err == nil {
					err = fmt.Errorf("server: compact %q: %w", name, cerr)
				}
				continue
			}
			compacted++
			s.compactions.Add(1)
		}
	}
	if s.cfg.ReclusterSpread >= 0 {
		for name, col := range s.cat.Loaded() {
			if _, advise := col.ReclusterAdvice(s.cfg.ReclusterSpread); !advise {
				continue
			}
			mapping, rerr := col.ReclusterDurable(0, reclusterSeed)
			if rerr != nil {
				if err == nil {
					err = fmt.Errorf("server: recluster %q: %w", name, rerr)
				}
				continue
			}
			if mapping == nil {
				continue
			}
			reclustered++
			s.reclusters.Add(1)
			// Checkpoint right away: replaying a recluster record re-runs
			// k-means over the pre-recluster state, so leaving one in the
			// WAL makes the next open pay for the clustering twice.
			if cerr := col.Checkpoint(); cerr != nil && err == nil {
				err = fmt.Errorf("server: checkpoint after recluster %q: %w", name, cerr)
			}
		}
	}
	checkpointed, ckErr := s.cat.CheckpointLoaded(s.cfg.WALMaxBytes)
	if err == nil {
		err = ckErr
	}
	s.checkpoints.Add(int64(checkpointed))
	return compacted, reclustered, checkpointed, err
}

// --- Routing --------------------------------------------------------------

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /collections", s.handleList)
	s.mux.HandleFunc("PUT /collections/{name}", s.handleCreate)
	s.mux.HandleFunc("DELETE /collections/{name}", s.handleDrop)
	s.mux.HandleFunc("GET /collections/{name}", s.handleCollectionStats)
	s.mux.HandleFunc("POST /collections/{name}/vectors", s.handleIngest)
	s.mux.HandleFunc("GET /collections/{name}/vectors/{id}", s.handleGetVector)
	s.mux.HandleFunc("DELETE /collections/{name}/vectors/{id}", s.handleDeleteVector)
	s.mux.HandleFunc("POST /collections/{name}/recluster", s.handleRecluster)
	s.mux.HandleFunc("POST /collections/{name}/query", s.handleQuery)
	s.mux.HandleFunc("POST /collections/{name}/query/batch", s.handleQueryBatch)
	s.mux.HandleFunc("GET /collections/{name}/explain", s.handleExplain)
	s.mux.HandleFunc("POST /collections/{name}/explain", s.handleExplain)
	// Replication: any node serves its WAL and snapshots (leader side);
	// promote/replstatus are meaningful on followers.
	s.mux.HandleFunc("GET /collections/{name}/wal", s.handleWALChunk)
	s.mux.HandleFunc("POST /collections/{name}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /promote", s.handlePromote)
	s.mux.HandleFunc("GET /replstatus", s.handleReplStatus)
}

// --- Wire types -----------------------------------------------------------
//
// The JSON shapes live in package api, shared with the sharded
// coordinator (internal/shard) so both layers speak the same protocol;
// the local names below keep this package (and its tests) reading as
// before. A single node ignores the coordinator-only fields (QuerySpec.
// Policy) and never sets the degradation fields (QueryResponse.Partial,
// MissedShards).

type (
	errorWire      = api.Error
	createRequest  = api.CreateRequest
	createResponse = api.CreateResponse
	ingestRequest  = api.IngestRequest
	ingestResponse = api.IngestResponse
	querySpecWire  = api.QuerySpec
	neighborWire   = api.Neighbor
	statsWire      = api.QueryStats
	queryResponse  = api.QueryResponse
	batchRequest   = api.BatchRequest
	batchResponse  = api.BatchResponse
	vectorResponse = api.VectorResponse
)

type explainResponse struct {
	queryResponse
	// Plan is Plan.Explain's rendering: per-segment access path with
	// predicted and actual cost.
	Plan string `json:"plan"`
}

// reclusterRequest parameterizes a manual recluster; the body may be
// empty. K ≤ 0 selects one cluster per segment-size of live sealed
// vectors; Seed fixes the k-means initialization (default 1).
type reclusterRequest struct {
	K    int    `json:"k,omitempty"`
	Seed *int64 `json:"seed,omitempty"`
}

type reclusterResponse struct {
	// Reclustered is false when there was nothing to rewrite (no sealed
	// segment with live vectors), in which case nothing was logged.
	Reclustered bool `json:"reclustered"`
	// SpreadBefore/SpreadAfter are the sealed synopsis-spread gauge around
	// the rewrite (0 when unmeasurable); Segments the segment count after.
	SpreadBefore float64 `json:"spread_before"`
	SpreadAfter  float64 `json:"spread_after"`
	Segments     int     `json:"segments"`
}

type serverStats struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	InFlight        int64   `json:"in_flight"`
	MaxInFlight     int     `json:"max_in_flight"`
	MaintenanceRuns int64   `json:"maintenance_runs"`
	Compactions     int64   `json:"compactions"`
	// Reclusters counts server-performed re-clustering passes (maintenance
	// plus the manual endpoint); each collection's own recluster gauges
	// (reclusters, sealed_spread) are nested under its CollectionStats.
	Reclusters int64 `json:"reclusters"`
	// Checkpoints counts maintenance-triggered WAL checkpoints; each
	// collection's own durability block (wal_bytes, wal_records, wal_seq,
	// checkpoints) is nested under its CollectionStats.
	Checkpoints int64                           `json:"checkpoints"`
	Fsync       string                          `json:"fsync"`
	WALMaxBytes int64                           `json:"wal_max_bytes"`
	Collections map[string]bond.CollectionStats `json:"collections"`
	// Role is "single" on a standalone node, "follower" on an unpromoted
	// replica, "promoted" after POST /promote; Replication carries the
	// follower's lag gauges (nil unless the node was started with
	// -follow).
	Role        string          `json:"role"`
	Replication *api.ReplStatus `json:"replication,omitempty"`
}

// --- Helpers --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	if status >= 500 {
		s.logf("bondd: %v", err)
	}
	writeJSON(w, status, errorWire{Error: err.Error()})
}

// catalogStatus maps catalog errors onto HTTP statuses.
func catalogStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrBadName), errors.Is(err, ErrBadShape):
		return http.StatusBadRequest
	case errors.Is(err, ErrExists):
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

// decodeBody decodes a JSON request body, rejecting unknown fields and
// bodies over the configured size cap (http.MaxBytesReader also hints
// the connection closed so the client stops streaming).
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// acquire admits one query execution, waiting for a slot while the
// request is still alive. It reports false — after writing 503 — when the
// request's context ends first (client gone, or server shutting down the
// connection), which is what bounds the query backlog.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) bool {
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return true
	default:
	}
	select {
	case s.sem <- struct{}{}:
		s.inflight.Add(1)
		return true
	case <-r.Context().Done():
		// A structured rejection: the Retry-After header and the
		// machine-readable body tell well-behaved clients (the
		// coordinator's retry envelope among them) to back off instead of
		// hammering a saturated node.
		err := fmt.Errorf("server overloaded: %d queries in flight", s.cfg.MaxInFlight)
		s.logf("bondd: %v", err)
		w.Header().Set("Retry-After", strconv.Itoa(overloadedRetryAfterMs/1000))
		writeJSON(w, http.StatusServiceUnavailable, errorWire{
			Error:        err.Error(),
			Code:         "overloaded",
			RetryAfterMs: overloadedRetryAfterMs,
		})
		return false
	}
}

// overloadedRetryAfterMs is the back-off hint a saturated node serves
// with its 503: long enough to drain a slow query, short enough that a
// retrying coordinator still lands well inside a typical request
// deadline.
const overloadedRetryAfterMs = 1000

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.sem
}

// toSpec lowers the wire spec onto a bond.QuerySpec, resolving
// query-by-example ids against the collection.
func toSpec(col *bond.Collection, wq querySpecWire) (bond.QuerySpec, error) {
	spec := bond.QuerySpec{
		K:         wq.K,
		Step:      wq.Step,
		Weights:   wq.Weights,
		Dims:      wq.Dims,
		Parallel:  wq.Parallel,
		Tolerance: wq.Tolerance,
	}
	switch {
	case len(wq.Query) > 0 && wq.ID != nil:
		return spec, fmt.Errorf("set either query or id, not both")
	case len(wq.Query) > 0:
		spec.Query = wq.Query
	case wq.ID != nil:
		q, ok := col.TryVector(*wq.ID)
		if !ok {
			return spec, fmt.Errorf("id %d outside collection [0,%d)", *wq.ID, col.Len())
		}
		spec.Query = q
	default:
		return spec, fmt.Errorf("query vector (or id) is required")
	}
	var err error
	if spec.Criterion, err = bond.ParseCriterion(wq.Criterion); err != nil {
		return spec, err
	}
	if spec.Order, err = bond.ParseOrder(wq.Order); err != nil {
		return spec, err
	}
	if spec.Strategy, err = bond.ParseStrategy(wq.Strategy); err != nil {
		return spec, err
	}
	if wq.TimeoutMs > 0 {
		spec.Deadline = time.Now().Add(time.Duration(wq.TimeoutMs) * time.Millisecond)
	}
	return spec, nil
}

func toResponse(res bond.QueryResult) queryResponse {
	out := queryResponse{
		Results: make([]neighborWire, len(res.Results)),
		Stats: statsWire{
			ValuesScanned:    res.Stats.ValuesScanned,
			FinalCandidates:  res.Stats.FinalCandidates,
			SegmentsSearched: res.Stats.SegmentsSearched,
			SegmentsSkipped:  res.Stats.SegmentsSkipped,
		},
		Truncated: res.Truncated,
	}
	for i, n := range res.Results {
		out.Results[i] = neighborWire{ID: n.ID, Score: n.Score}
	}
	return out
}

// --- Handlers -------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe, distinct from liveness: a node is
// ready only when it can actually acknowledge writes — the catalog
// directory is writable and every loaded collection's WAL is appendable.
// A node that accepts TCP but sits on a full or failing disk answers 503
// here, so the coordinator's prober and load balancers stop routing
// writes to it while /healthz still reports the process alive.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if err := s.cat.Ready(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, errorWire{
			Error: fmt.Sprintf("not ready: %v", err),
			Code:  "not_ready",
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := serverStats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		InFlight:        s.inflight.Load(),
		MaxInFlight:     s.cfg.MaxInFlight,
		MaintenanceRuns: s.maintRuns.Load(),
		Compactions:     s.compactions.Load(),
		Reclusters:      s.reclusters.Load(),
		Checkpoints:     s.checkpoints.Load(),
		Fsync:           s.cfg.Fsync.String(),
		WALMaxBytes:     s.cfg.WALMaxBytes,
		Collections:     map[string]bond.CollectionStats{},
	}
	for name, col := range s.cat.Loaded() {
		st.Collections[name] = col.StatsSnapshot()
	}
	st.Role = "single"
	if s.repl != nil {
		rs := s.ReplStatus()
		st.Replication = &rs
		if rs.Promoted {
			st.Role = "promoted"
		} else {
			st.Role = "follower"
		}
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	names, err := s.cat.Names()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string][]string{"collections": names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	var req createRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("name")
	col, created, err := s.cat.Create(name, req.Dims, req.SegmentSize)
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, createResponse{Name: name, Dims: col.Dims(), Created: created})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	if err := s.cat.Drop(r.PathValue("name")); err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleCollectionStats(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, col.StatsSnapshot())
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	name := r.PathValue("name")
	col, err := s.cat.Get(name)
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	var req ingestRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	var vectors [][]float64
	switch {
	case len(req.Vector) > 0 && len(req.Vectors) > 0:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("set either vector or vectors, not both"))
		return
	case len(req.Vector) > 0:
		vectors = [][]float64{req.Vector}
	case len(req.Vectors) > 0:
		vectors = req.Vectors
	default:
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("vector or vectors is required"))
		return
	}
	dims := col.Dims() // hoisted: Dims takes the collection's read lock
	for i, v := range vectors {
		if len(v) != dims {
			s.writeError(w, http.StatusBadRequest,
				fmt.Errorf("vector %d has %d dims, collection %q has %d", i, len(v), name, dims))
			return
		}
	}
	// The batch is WAL-logged (and, under fsync=always, fsynced) as one
	// atomic record before AddBatchDurable returns: the 2xx below IS the
	// durability acknowledgment.
	first, err := col.AddBatchDurable(vectors)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("ingest not durable: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{FirstID: first, Count: len(vectors)})
}

// handleGetVector reads one vector back by id — the readback clients use
// to audit durability (and the SIGKILL end-to-end test relies on).
func (s *Server) handleGetVector(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad vector id: %w", err))
		return
	}
	v, ok := col.TryVector(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("id %d outside collection [0,%d)", id, col.Len()))
		return
	}
	writeJSON(w, http.StatusOK, vectorResponse{ID: id, Vector: v})
}

func (s *Server) handleDeleteVector(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	name := r.PathValue("name")
	col, err := s.cat.Get(name)
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad vector id: %w", err))
		return
	}
	ok, err := col.TryDeleteDurable(id)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("delete not durable: %w", err))
		return
	}
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("id %d outside collection [0,%d)", id, col.Len()))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleRecluster triggers one re-clustering pass on demand — the manual
// override of the maintenance heuristic (no spread threshold, no
// minimum segment count). The rewrite is WAL-logged before it applies
// and the collection is checkpointed before the response, so a 2xx means
// the new layout is on stable storage and the next open replays no
// k-means.
func (s *Server) handleRecluster(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	name := r.PathValue("name")
	col, err := s.cat.Get(name)
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	req := reclusterRequest{}
	if err := s.decodeBody(w, r, &req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	seed := int64(reclusterSeed)
	if req.Seed != nil {
		seed = *req.Seed
	}
	out := reclusterResponse{}
	out.SpreadBefore, _ = col.SealedSpread()
	mapping, err := col.ReclusterDurable(req.K, seed)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, fmt.Errorf("recluster not durable: %w", err))
		return
	}
	if mapping != nil {
		out.Reclustered = true
		s.reclusters.Add(1)
		if err := col.Checkpoint(); err != nil {
			s.writeError(w, http.StatusInternalServerError,
				fmt.Errorf("checkpoint after recluster %q: %w", name, err))
			return
		}
	}
	out.SpreadAfter, _ = col.SealedSpread()
	out.Segments = col.NumSegments()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	var wq querySpecWire
	if err := s.decodeBody(w, r, &wq); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := toSpec(col, wq)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquire(w, r) {
		return
	}
	defer s.release()
	res, err := col.Query(spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, toResponse(res))
}

// handleQueryBatch maps the batch endpoint straight onto
// Collection.QueryBatch: one read-lock acquisition, one shared planner
// segment list, and a GOMAXPROCS-wide worker pool under the hood. The
// whole batch holds a single admission slot — QueryBatch self-limits its
// internal parallelism.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	var req batchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("queries is required"))
		return
	}
	specs := make([]bond.QuerySpec, len(req.Queries))
	for i, wq := range req.Queries {
		if specs[i], err = toSpec(col, wq); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("query %d: %w", i, err))
			return
		}
	}
	if !s.acquire(w, r) {
		return
	}
	defer s.release()
	results, err := col.QueryBatch(specs)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	out := batchResponse{Results: make([]queryResponse, len(results))}
	for i, res := range results {
		out.Results[i] = toResponse(res)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleExplain serves the PR-2 EXPLAIN plan over HTTP. POST takes the
// same JSON spec as the query endpoint; GET takes query-by-example
// parameters (?id=17&k=10&criterion=Hq&strategy=auto&order=desc&step=8)
// for curl-friendly inspection. Both execute the query and return the
// results plus the rendered per-segment plan with predicted and actual
// costs.
func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	var wq querySpecWire
	if r.Method == http.MethodPost {
		if err := s.decodeBody(w, r, &wq); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	} else {
		if wq, err = explainParams(r); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	spec, err := toSpec(col, wq)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.acquire(w, r) {
		return
	}
	defer s.release()
	res, p, err := col.QueryExplain(spec)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{queryResponse: toResponse(res), Plan: p.Explain()})
}

// explainParams lifts GET query parameters into the wire spec.
func explainParams(r *http.Request) (querySpecWire, error) {
	q := r.URL.Query()
	wq := querySpecWire{
		Criterion: q.Get("criterion"),
		Order:     q.Get("order"),
		Strategy:  q.Get("strategy"),
		K:         10,
	}
	if v := q.Get("id"); v != "" {
		id, err := strconv.Atoi(v)
		if err != nil {
			return wq, fmt.Errorf("bad id: %w", err)
		}
		wq.ID = &id
	} else {
		return wq, fmt.Errorf("id is required (query-by-example; POST a JSON spec for arbitrary vectors)")
	}
	for _, p := range []struct {
		name string
		dst  *int
	}{{"k", &wq.K}, {"step", &wq.Step}, {"parallel", &wq.Parallel}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				return wq, fmt.Errorf("bad %s: %w", p.name, err)
			}
			*p.dst = n
		}
	}
	return wq, nil
}

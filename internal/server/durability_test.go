package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bond"
	"bond/internal/dataset"
)

// TestRestartWithoutCleanShutdown is the server-level WAL contract: a
// server that is abandoned without Close (no checkpoint, no flush — the
// in-process approximation of a crash) must come back with every
// acknowledged write, because each 2xx ingest was WAL-logged and fsynced
// before it was answered.
func TestRestartWithoutCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	vectors := dataset.CorelLike(120, 8, 17)

	s1, err := New(Config{Dir: dir}) // fsync defaults to always
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	doJSON(t, http.MethodPut, ts1.URL+"/collections/c", createRequest{Dims: 8, SegmentSize: 32}, nil)
	ingestBatch(t, ts1.URL, "c", vectors)
	if code := doJSON(t, http.MethodDelete, ts1.URL+"/collections/c/vectors/7", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: %d", code)
	}
	ts1.Close()
	// Deliberately no s1.Close(): the maintenance loop never ran, nothing
	// was checkpointed or snapshotted — recovery has only the initial
	// checkpoint plus the WAL.

	_, ts2 := newTestServer(t, Config{Dir: dir}) // newTestServer closes s2 in cleanup
	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts2.URL+"/collections/c", nil, &st)
	if st.Len != 120 || st.Live != 119 {
		t.Fatalf("restart lost acknowledged writes: %+v", st)
	}
	if st.Durability == nil || st.Durability.Fsync != "always" {
		t.Fatalf("collection not durable after restart: %+v", st.Durability)
	}
	var vr vectorResponse
	doJSON(t, http.MethodGet, ts2.URL+"/collections/c/vectors/42", nil, &vr)
	if !reflect.DeepEqual(vr.Vector, vectors[42]) {
		t.Fatalf("vector 42 corrupted across crash restart")
	}
}

// TestCatalogMigratesLegacyFile drops a pre-durability snapshot *file*
// into the data directory and checks the catalog migrates it in place to
// the WAL + checkpoint layout on first touch, with contents intact and
// subsequent writes durable.
func TestCatalogMigratesLegacyFile(t *testing.T) {
	dir := t.TempDir()
	vectors := dataset.CorelLike(80, 6, 23)
	legacy := bond.NewCollectionSegmented(vectors, 32)
	legacy.Delete(3)
	if err := legacy.Save(filepath.Join(dir, "old.bond")); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{Dir: dir})
	var names map[string][]string
	doJSON(t, http.MethodGet, ts.URL+"/collections", nil, &names)
	if len(names["collections"]) != 1 || names["collections"][0] != "old" {
		t.Fatalf("legacy file not listed: %+v", names)
	}
	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/old", nil, &st)
	if st.Len != 80 || st.Live != 79 {
		t.Fatalf("legacy contents lost in migration: %+v", st)
	}
	info, err := os.Stat(filepath.Join(dir, "old.bond"))
	if err != nil || !info.IsDir() {
		t.Fatalf("legacy file not migrated to a durable directory: %v", err)
	}
	ingestBatch(t, ts.URL, "old", vectors[:5])
	var vr vectorResponse
	doJSON(t, http.MethodGet, ts.URL+"/collections/old/vectors/80", nil, &vr)
	if !reflect.DeepEqual(vr.Vector, vectors[0]) {
		t.Fatalf("post-migration ingest lost")
	}
	_ = s
}

// TestDropRemovesDurableDirectory checks Drop closes the WAL and removes
// the whole directory, and that a re-created name starts empty.
func TestDropRemovesDurableDirectory(t *testing.T) {
	dirRoot := t.TempDir()
	_, ts := newTestServer(t, Config{Dir: dirRoot})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 3}, nil)
	ingestBatch(t, ts.URL, "c", [][]float64{{1, 2, 3}, {4, 5, 6}})
	if code := doJSON(t, http.MethodDelete, ts.URL+"/collections/c", nil, nil); code != http.StatusNoContent {
		t.Fatalf("drop: %d", code)
	}
	if _, err := os.Stat(filepath.Join(dirRoot, "c.bond")); !os.IsNotExist(err) {
		t.Fatalf("durable directory survives drop: %v", err)
	}
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 3}, nil)
	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.Len != 0 {
		t.Fatalf("re-created collection not empty: %+v", st)
	}
}

package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"bond/internal/dataset"
)

// TestConcurrentIngestQueryHammer is the acceptance-criteria stress run:
// writers batch-ingesting and tombstoning, readers querying (single,
// batch, and explain) and polling stats, and maintenance cycles
// compacting and snapshotting — all at once against one httptest server,
// meaningful under -race. Responses are only required to be well-formed
// and well-statused; exactness under a quiescent collection is pinned by
// TestEndToEndByteIdentical.
func TestConcurrentIngestQueryHammer(t *testing.T) {
	const (
		dims    = 12
		writers = 3
		readers = 4
		rounds  = 25
	)
	s, ts := newTestServer(t, Config{SegmentSize: 64, CompactRatio: 0.1})
	seed := dataset.CorelLike(200, dims, 31)
	doJSON(t, http.MethodPut, ts.URL+"/collections/h", createRequest{Dims: dims, SegmentSize: 64}, nil)
	ingestBatch(t, ts.URL, "h", seed)

	var (
		wg       sync.WaitGroup
		failures atomic.Int64
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := dataset.CorelLike(20, dims, int64(100+w))
			for i := 0; i < rounds; i++ {
				var ing ingestResponse
				if code := doJSON(t, http.MethodPost, ts.URL+"/collections/h/vectors",
					ingestRequest{Vectors: batch}, &ing); code != http.StatusOK {
					fail("writer %d round %d: ingest status %d", w, i, code)
					return
				}
				// Tombstone a vector we just wrote; compaction may remap ids
				// concurrently, so 404 (already compacted away) is legal too.
				url := fmt.Sprintf("%s/collections/h/vectors/%d", ts.URL, ing.FirstID)
				if code := doJSON(t, http.MethodDelete, url, nil, nil); code != http.StatusNoContent && code != http.StatusNotFound {
					fail("writer %d round %d: delete status %d", w, i, code)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			q := seed[r*7]
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					var resp queryResponse
					if code := doJSON(t, http.MethodPost, ts.URL+"/collections/h/query",
						querySpecWire{Query: q, K: 5}, &resp); code != http.StatusOK {
						fail("reader %d round %d: query status %d", r, i, code)
						return
					}
					if len(resp.Results) != 5 {
						fail("reader %d round %d: %d results", r, i, len(resp.Results))
						return
					}
				case 1:
					var resp batchResponse
					if code := doJSON(t, http.MethodPost, ts.URL+"/collections/h/query/batch",
						batchRequest{Queries: []querySpecWire{
							{Query: q, K: 3, Criterion: "Eq"},
							{Query: q, K: 8, Strategy: "bond"},
						}}, &resp); code != http.StatusOK {
						fail("reader %d round %d: batch status %d", r, i, code)
						return
					}
				case 2:
					var resp explainResponse
					if code := doJSON(t, http.MethodPost, ts.URL+"/collections/h/explain",
						querySpecWire{Query: q, K: 5}, &resp); code != http.StatusOK {
						fail("reader %d round %d: explain status %d", r, i, code)
						return
					}
					if resp.Plan == "" {
						fail("reader %d round %d: empty plan", r, i)
						return
					}
				case 3:
					var st serverStats
					if code := doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &st); code != http.StatusOK {
						fail("reader %d round %d: stats status %d", r, i, code)
						return
					}
				}
			}
		}(r)
	}

	// Maintenance races the traffic: compactions remap ids mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/2; i++ {
			if _, _, _, err := s.RunMaintenance(); err != nil {
				fail("maintenance %d: %v", i, err)
				return
			}
		}
	}()

	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d hammer failures", failures.Load())
	}

	// The dust settled: the collection still answers exactly and flushes.
	var resp queryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/h/query",
		querySpecWire{Query: seed[0], K: 10}, &resp); code != http.StatusOK || len(resp.Results) != 10 {
		t.Fatalf("post-hammer query: status %d, %d results", code, len(resp.Results))
	}
	if _, _, _, err := s.RunMaintenance(); err != nil {
		t.Fatalf("post-hammer maintenance: %v", err)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bond"
	"bond/internal/dataset"
)

// newTestServer returns a server over a fresh temp directory plus an
// httptest front end. The maintenance loop is off; tests drive
// RunMaintenance directly so cycles are deterministic.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

// doJSON issues one request with an optional JSON body and decodes the
// JSON response into out (when non-nil), returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// ingestBatch pushes vectors through the batch ingest endpoint.
func ingestBatch(t *testing.T, base, name string, vectors [][]float64) ingestResponse {
	t.Helper()
	var out ingestResponse
	if code := doJSON(t, http.MethodPost, base+"/collections/"+name+"/vectors",
		ingestRequest{Vectors: vectors}, &out); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	return out
}

// TestEndToEndByteIdentical is the acceptance-criteria test: create a
// collection over HTTP, batch-ingest, and check that every served query
// — across criteria and strategies — returns ids and scores byte-equal
// to an in-process Collection.Query over the same data and layout
// (JSON round-trips float64 exactly, so the wire adds no error).
//
// The one caveat is StrategyAuto: its per-segment path choice depends on
// wall-clock-fed cost coefficients, so the served and local plans can
// legitimately pick different (equally exact) paths, whose scores agree
// to 1e-9 rather than to the bit — the same tolerance the repo's planner
// property test grants across access paths. Forced strategies are
// deterministic and compared bitwise.
func TestEndToEndByteIdentical(t *testing.T) {
	const (
		n, dims, segSize = 600, 24, 128
		k                = 10
	)
	vectors := dataset.CorelLike(n, dims, 7)

	_, ts := newTestServer(t, Config{})
	var cr createResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/imgs",
		createRequest{Dims: dims, SegmentSize: segSize}, &cr); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	got := ingestBatch(t, ts.URL, "imgs", vectors)
	if got.FirstID != 0 || got.Count != n {
		t.Fatalf("ingest: got first=%d count=%d", got.FirstID, got.Count)
	}

	// The in-process oracle: same segment layout, same ingest sequence.
	local := bond.NewSegmented(dims, segSize)
	local.AddBatch(vectors)

	for _, tc := range []struct {
		criterion string
		strategy  string
	}{
		{"Hq", "auto"}, {"Hq", "bond"}, {"Hq", "vafile"}, {"Hq", "exact"}, {"Hq", "mil"},
		{"Eq", "auto"}, {"Eq", "compressed"}, {"Ev", "bond"}, {"Hh", "bond"},
	} {
		t.Run(tc.criterion+"/"+tc.strategy, func(t *testing.T) {
			for _, qid := range []int{0, 17, 401} {
				var resp queryResponse
				code := doJSON(t, http.MethodPost, ts.URL+"/collections/imgs/query", querySpecWire{
					Query: vectors[qid], K: k, Criterion: tc.criterion, Strategy: tc.strategy,
				}, &resp)
				if code != http.StatusOK {
					t.Fatalf("query: status %d", code)
				}

				crit, err := bond.ParseCriterion(tc.criterion)
				if err != nil {
					t.Fatal(err)
				}
				strat, err := bond.ParseStrategy(tc.strategy)
				if err != nil {
					t.Fatal(err)
				}
				want, err := local.Query(bond.QuerySpec{
					Query: vectors[qid], K: k, Criterion: crit, Strategy: strat,
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(resp.Results) != len(want.Results) {
					t.Fatalf("qid %d: got %d results, want %d", qid, len(resp.Results), len(want.Results))
				}
				for i, r := range resp.Results {
					w := want.Results[i]
					exact := r.ID == w.ID && r.Score == w.Score
					if tc.strategy == "auto" {
						diff := r.Score - w.Score
						exact = r.ID == w.ID && diff < 1e-9 && diff > -1e-9
					}
					if !exact {
						t.Fatalf("qid %d rank %d: got (%d, %v), want (%d, %v)",
							qid, i, r.ID, r.Score, w.ID, w.Score)
					}
				}
			}
		})
	}
}

// TestQueryByExample checks the {"id": N} spec form against the stored
// vector it names.
func TestQueryByExample(t *testing.T) {
	vectors := dataset.CorelLike(200, 16, 3)
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 16}, nil)
	ingestBatch(t, ts.URL, "c", vectors)

	id := 42
	var byID, byVec queryResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/query",
		querySpecWire{ID: &id, K: 5}, &byID); code != http.StatusOK {
		t.Fatalf("by-id query: status %d", code)
	}
	doJSON(t, http.MethodPost, ts.URL+"/collections/c/query",
		querySpecWire{Query: vectors[id], K: 5}, &byVec)
	if len(byID.Results) == 0 || byID.Results[0].ID != id {
		t.Fatalf("by-id query should rank the example first, got %+v", byID.Results)
	}
	for i := range byID.Results {
		if byID.Results[i] != byVec.Results[i] {
			t.Fatalf("rank %d: by-id %+v != by-vector %+v", i, byID.Results[i], byVec.Results[i])
		}
	}
}

// TestQueryBatchMatchesSequential pins the batch endpoint against the
// one-at-a-time endpoint, mixed criteria included.
func TestQueryBatchMatchesSequential(t *testing.T) {
	vectors := dataset.CorelLike(400, 16, 11)
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 16, SegmentSize: 100}, nil)
	ingestBatch(t, ts.URL, "c", vectors)

	specs := []querySpecWire{
		{Query: vectors[3], K: 7, Criterion: "Hq"},
		{Query: vectors[250], K: 3, Criterion: "Eq", Strategy: "vafile"},
		{Query: vectors[99], K: 12, Criterion: "Hq", Strategy: "exact"},
	}
	var batch batchResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/query/batch",
		batchRequest{Queries: specs}, &batch); code != http.StatusOK {
		t.Fatalf("batch: status %d", code)
	}
	if len(batch.Results) != len(specs) {
		t.Fatalf("batch returned %d results, want %d", len(batch.Results), len(specs))
	}
	for i, spec := range specs {
		var single queryResponse
		doJSON(t, http.MethodPost, ts.URL+"/collections/c/query", spec, &single)
		if len(single.Results) != len(batch.Results[i].Results) {
			t.Fatalf("query %d: batch %d results, single %d", i,
				len(batch.Results[i].Results), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j] != batch.Results[i].Results[j] {
				t.Fatalf("query %d rank %d: batch %+v != single %+v",
					i, j, batch.Results[i].Results[j], single.Results[j])
			}
		}
	}
}

// TestExplainEndpoint checks that both explain forms return the rendered
// per-segment plan alongside the results.
func TestExplainEndpoint(t *testing.T) {
	vectors := dataset.CorelLike(500, 16, 5)
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 16, SegmentSize: 100}, nil)
	ingestBatch(t, ts.URL, "c", vectors)

	var exp explainResponse
	if code := doJSON(t, http.MethodGet,
		ts.URL+"/collections/c/explain?id=17&k=5&strategy=auto", nil, &exp); code != http.StatusOK {
		t.Fatalf("GET explain: status %d", code)
	}
	if len(exp.Results) != 5 {
		t.Fatalf("explain returned %d results, want 5", len(exp.Results))
	}
	for _, want := range []string{"Query: k=5", "Model:", "seg", "path", "Total:"} {
		if !strings.Contains(exp.Plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, exp.Plan)
		}
	}
	// One rendered line per planned segment (5 segments of 100 + header rows).
	if lines := strings.Count(exp.Plan, "\n"); lines < 9 {
		t.Fatalf("plan suspiciously short (%d lines):\n%s", lines, exp.Plan)
	}

	var post explainResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/explain",
		querySpecWire{Query: vectors[17], K: 5}, &post); code != http.StatusOK {
		t.Fatalf("POST explain: status %d", code)
	}
	for i := range exp.Results {
		if exp.Results[i] != post.Results[i] {
			t.Fatalf("rank %d: GET %+v != POST %+v", i, exp.Results[i], post.Results[i])
		}
	}
}

// TestCatalogLifecycle exercises create/list/stats/drop with their error
// statuses.
func TestCatalogLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/bad..name",
		createRequest{Dims: 4}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad name: status %d", code)
	}
	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/a",
		createRequest{Dims: 0}, nil); code != http.StatusBadRequest {
		t.Fatalf("zero dims: status %d", code)
	}
	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/a",
		createRequest{Dims: 8}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var cr createResponse
	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/a",
		createRequest{Dims: 8}, &cr); code != http.StatusOK || cr.Created {
		t.Fatalf("idempotent create: status %d created=%v", code, cr.Created)
	}
	if code := doJSON(t, http.MethodPut, ts.URL+"/collections/a",
		createRequest{Dims: 9}, nil); code != http.StatusConflict {
		t.Fatalf("dims mismatch: status %d", code)
	}

	var list map[string][]string
	doJSON(t, http.MethodGet, ts.URL+"/collections", nil, &list)
	if len(list["collections"]) != 1 || list["collections"][0] != "a" {
		t.Fatalf("list: %v", list)
	}

	var st bond.CollectionStats
	if code := doJSON(t, http.MethodGet, ts.URL+"/collections/a", nil, &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Dims != 8 || st.Segments != 1 {
		t.Fatalf("stats: %+v", st)
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/collections/a", nil, nil); code != http.StatusNoContent {
		t.Fatalf("drop: status %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/collections/a", nil, nil); code != http.StatusNotFound {
		t.Fatalf("drop again: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/a/query",
		querySpecWire{Query: []float64{1}, K: 1}, nil); code != http.StatusNotFound {
		t.Fatalf("query dropped: status %d", code)
	}
}

// TestIngestValidation checks the 400 paths of the ingest endpoint.
func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 3}, nil)

	for name, body := range map[string]ingestRequest{
		"empty":       {},
		"wrong dims":  {Vector: []float64{1, 2}},
		"mixed batch": {Vectors: [][]float64{{1, 2, 3}, {1}}},
		"both forms":  {Vector: []float64{1, 2, 3}, Vectors: [][]float64{{1, 2, 3}}},
	} {
		if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/vectors", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/vectors",
		map[string]any{"vektor": []float64{1, 2, 3}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
}

// TestBodySizeCap checks that an oversized request body is rejected
// before it is buffered rather than ballooning memory.
func TestBodySizeCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 256})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 3}, nil)

	big := make([][]float64, 64)
	for i := range big {
		big[i] = []float64{0.1, 0.2, 0.3}
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/vectors",
		ingestRequest{Vectors: big}, nil); code != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/vectors",
		ingestRequest{Vector: []float64{0.1, 0.2, 0.3}}, nil); code != http.StatusOK {
		t.Fatalf("small body after cap rejection: status %d, want 200", code)
	}
}

// TestPersistenceAcrossRestart checks that a shut-down server's data —
// vectors, tombstones, and the planner's learned coefficients — comes
// back when a new server opens the same directory.
func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	vectors := dataset.CorelLike(300, 12, 9)

	s1, err := New(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	doJSON(t, http.MethodPut, ts1.URL+"/collections/c", createRequest{Dims: 12, SegmentSize: 64}, nil)
	ingestBatch(t, ts1.URL, "c", vectors)
	doJSON(t, http.MethodDelete, ts1.URL+"/collections/c/vectors/5", nil, nil)
	var before queryResponse
	doJSON(t, http.MethodPost, ts1.URL+"/collections/c/query",
		querySpecWire{Query: vectors[10], K: 8}, &before)
	ts1.Close()
	if err := s1.Close(); err != nil { // flushes the dirty collection
		t.Fatal(err)
	}

	s2, ts2 := newTestServer(t, Config{Dir: dir})
	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts2.URL+"/collections/c", nil, &st)
	if st.Len != 300 || st.Live != 299 {
		t.Fatalf("restart lost data: %+v", st)
	}
	if st.Planner.Queries == 0 {
		t.Fatalf("restart lost planner coefficients: %+v", st.Planner)
	}
	var after queryResponse
	doJSON(t, http.MethodPost, ts2.URL+"/collections/c/query",
		querySpecWire{Query: vectors[10], K: 8}, &after)
	for i := range before.Results {
		if before.Results[i] != after.Results[i] {
			t.Fatalf("rank %d: before %+v != after %+v", i, before.Results[i], after.Results[i])
		}
	}
	_ = s2
}

// TestMaintenanceCompacts drives one maintenance cycle over a heavily
// tombstoned collection and checks compaction, persistence, and the
// stats counters.
func TestMaintenanceCompacts(t *testing.T) {
	// WALMaxBytes: 1 makes any non-empty WAL eligible, so the cycle also
	// demonstrates checkpoint-and-truncate instead of whole-store
	// snapshotting.
	// ReclusterSpread: -1 keeps the recluster phase out of this cycle so
	// the compaction/checkpoint counts stay exact (reclustering has its
	// own test below).
	s, ts := newTestServer(t, Config{CompactRatio: 0.2, WALMaxBytes: 1, ReclusterSpread: -1})
	vectors := dataset.CorelLike(200, 8, 13)
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 8, SegmentSize: 50}, nil)
	ingestBatch(t, ts.URL, "c", vectors)
	for id := 0; id < 100; id++ {
		if code := doJSON(t, http.MethodDelete,
			fmt.Sprintf("%s/collections/c/vectors/%d", ts.URL, id), nil, nil); code != http.StatusNoContent {
			t.Fatalf("delete %d: status %d", id, code)
		}
	}

	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.TombstoneRatio != 0.5 {
		t.Fatalf("tombstone ratio %v, want 0.5", st.TombstoneRatio)
	}

	compacted, reclustered, checkpointed, err := s.RunMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if compacted != 1 || reclustered != 0 || checkpointed != 1 {
		t.Fatalf("maintenance: compacted %d reclustered %d checkpointed %d", compacted, reclustered, checkpointed)
	}
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.Len != 100 || st.TombstoneRatio != 0 {
		t.Fatalf("after compaction: %+v", st)
	}
	if st.Durability == nil || st.Durability.WALRecords != 0 || st.Durability.Checkpoints != 1 {
		t.Fatalf("checkpoint did not truncate the WAL: %+v", st.Durability)
	}

	var sst serverStats
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &sst)
	if sst.Compactions != 1 || sst.Checkpoints != 1 || sst.MaintenanceRuns != 1 {
		t.Fatalf("server stats: %+v", sst)
	}
	if _, ok := sst.Collections["c"]; !ok {
		t.Fatalf("server stats missing collection: %+v", sst.Collections)
	}
}

// shuffledClustered generates planted-cluster vectors whose ingest order
// interleaves every cluster — the layout the recluster maintenance
// phase exists to fix.
func shuffledClustered(n, dims int, seed int64) [][]float64 {
	return dataset.Clustered(dataset.ClusteredConfig{
		N: n, Dims: dims, Clusters: 4, Sigma: 0.02, Seed: seed,
	})
}

// TestMaintenanceReclusters drives the recluster phase: a shuffled
// ingest order trips the spread heuristic, one cycle rewrites the
// collection into cluster-contiguous segments and checkpoints it, and
// the next cycle correctly leaves the tight layout alone.
func TestMaintenanceReclusters(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 4, SegmentSize: 25}, nil)
	ingestBatch(t, ts.URL, "c", shuffledClustered(120, 4, 31))

	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if !st.SpreadMeasured || st.SealedSpread < 0.6 {
		t.Fatalf("shuffled ingest spread %v (measured %v), want loose", st.SealedSpread, st.SpreadMeasured)
	}
	var before queryResponse
	q := querySpecWire{Query: shuffledClustered(1, 4, 99)[0], K: 5}
	doJSON(t, http.MethodPost, ts.URL+"/collections/c/query", q, &before)

	_, reclustered, _, err := s.RunMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if reclustered != 1 {
		t.Fatalf("reclustered %d, want 1", reclustered)
	}
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.Reclusters != 1 || !st.SpreadMeasured || st.SealedSpread >= 0.6 {
		t.Fatalf("post-recluster gauges: reclusters %d spread %v", st.Reclusters, st.SealedSpread)
	}
	// The rewrite was checkpointed in the same cycle: recovery replays no
	// k-means.
	if st.Durability == nil || st.Durability.WALRecords != 0 {
		t.Fatalf("recluster not checkpointed: %+v", st.Durability)
	}
	// Ids were remapped but the served ranking is the same data: scores
	// must match rank for rank, byte for byte.
	var after queryResponse
	doJSON(t, http.MethodPost, ts.URL+"/collections/c/query", q, &after)
	if len(after.Results) != len(before.Results) {
		t.Fatalf("result count changed: %d vs %d", len(after.Results), len(before.Results))
	}
	for i := range before.Results {
		if after.Results[i].Score != before.Results[i].Score {
			t.Fatalf("rank %d score changed: %v vs %v", i, after.Results[i].Score, before.Results[i].Score)
		}
	}

	// A second cycle sees a tight, unchanged layout and does nothing.
	if _, again, _, err := s.RunMaintenance(); err != nil || again != 0 {
		t.Fatalf("second cycle reclustered %d err %v, want idle", again, err)
	}
	var sst serverStats
	doJSON(t, http.MethodGet, ts.URL+"/stats", nil, &sst)
	if sst.Reclusters != 1 {
		t.Fatalf("server recluster counter %d, want 1", sst.Reclusters)
	}
}

// TestReclusterEndpoint exercises the manual trigger: unconditional,
// parameterized by optional k/seed, checkpointed before the 2xx.
func TestReclusterEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{ReclusterSpread: -1}) // maintenance off; manual only
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 4, SegmentSize: 25}, nil)
	ingestBatch(t, ts.URL, "c", shuffledClustered(120, 4, 57))

	var out reclusterResponse
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/recluster", nil, &out); code != http.StatusOK {
		t.Fatalf("recluster: status %d", code)
	}
	if !out.Reclustered || out.SpreadAfter >= out.SpreadBefore {
		t.Fatalf("manual recluster: %+v", out)
	}
	// Manual triggers are unconditional: a second call rewrites again (and
	// succeeds) even though the layout is already tight.
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/c/recluster",
		reclusterRequest{K: 3, Seed: ptrInt64(42)}, &out); code != http.StatusOK || !out.Reclustered {
		t.Fatalf("second recluster: status %d %+v", code, out)
	}
	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.Reclusters != 2 || st.Durability == nil || st.Durability.WALRecords != 0 {
		t.Fatalf("endpoint bookkeeping: %+v", st)
	}
	// An empty collection has nothing to rewrite; the endpoint reports so.
	doJSON(t, http.MethodPut, ts.URL+"/collections/empty", createRequest{Dims: 4}, nil)
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/empty/recluster", nil, &out); code != http.StatusOK || out.Reclustered {
		t.Fatalf("empty recluster: status %d %+v", code, out)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/collections/missing/recluster", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing collection: status %d", code)
	}
}

func ptrInt64(v int64) *int64 { return &v }

// TestStatsExposeSynopses checks the per-segment synopsis summaries the
// stats endpoint serves.
func TestStatsExposeSynopses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	vectors := dataset.CorelLike(120, 6, 21)
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 6, SegmentSize: 50}, nil)
	ingestBatch(t, ts.URL, "c", vectors)

	var st bond.CollectionStats
	doJSON(t, http.MethodGet, ts.URL+"/collections/c", nil, &st)
	if st.Segments != 3 { // 50 + 50 + active 20
		t.Fatalf("segments %d, want 3: %+v", st.Segments, st.SegmentStats)
	}
	for i, seg := range st.SegmentStats {
		wantSealed := i < 2
		if seg.Sealed != wantSealed {
			t.Fatalf("segment %d sealed=%v, want %v", i, seg.Sealed, wantSealed)
		}
		if seg.Synopsis == nil {
			t.Fatalf("segment %d missing synopsis", i)
		}
		if seg.Synopsis.MassLo > seg.Synopsis.MassHi || seg.Synopsis.MinVal > seg.Synopsis.MaxVal {
			t.Fatalf("segment %d inconsistent synopsis: %+v", i, seg.Synopsis)
		}
	}
}

// TestAdmissionRejectsWhenSaturated pins the bounded in-flight contract:
// with every slot held and the client already gone, a query is turned
// away with 503 instead of queueing forever.
func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxInFlight: 1})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 2}, nil)
	ingestBatch(t, ts.URL, "c", [][]float64{{0.1, 0.2}, {0.3, 0.4}})

	s.sem <- struct{}{} // hold the only slot
	defer func() { <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the waiting client has already given up
	body, _ := json.Marshal(querySpecWire{Query: []float64{0.1, 0.2}, K: 1})
	req := httptest.NewRequest(http.MethodPost, "/collections/c/query",
		bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated query: status %d, want 503", rec.Code)
	}
	// The rejection must tell clients (and the coordinator's retry
	// envelope) how to behave: a Retry-After header plus the structured
	// error body with a stable code and a millisecond backoff hint.
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var e errorWire
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("503 body %q is not structured JSON: %v", rec.Body.Bytes(), err)
	}
	if e.Code != "overloaded" || e.RetryAfterMs != 1000 || e.Error == "" {
		t.Fatalf("503 body = %+v, want code overloaded with retry_after_ms 1000", e)
	}
}

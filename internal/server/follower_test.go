package server

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"bond/internal/api"
	"bond/internal/dataset"
)

// newFollower starts a follower of leaderURL with the background tail
// loop disabled; tests drive SyncReplicaOnce for deterministic passes.
func newFollower(t *testing.T, leaderURL string) (*Server, *httptest.Server) {
	t.Helper()
	return newTestServer(t, Config{
		FollowURL:      leaderURL,
		FollowInterval: -1,
	})
}

// queryIdentical asserts a query served by both bases returns the same
// neighbors, byte for byte.
func queryIdentical(t *testing.T, leaderBase, followerBase, name string, spec api.QuerySpec) {
	t.Helper()
	var lr, fr queryResponse
	if code := doJSON(t, http.MethodPost, leaderBase+"/collections/"+name+"/query", spec, &lr); code != http.StatusOK {
		t.Fatalf("leader query: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, followerBase+"/collections/"+name+"/query", spec, &fr); code != http.StatusOK {
		t.Fatalf("follower query: status %d", code)
	}
	if !reflect.DeepEqual(lr.Results, fr.Results) {
		t.Fatalf("follower answer diverged:\n leader   %+v\n follower %+v", lr.Results, fr.Results)
	}
}

// TestFollowerBootstrapAndTail: a follower joining an already-populated
// leader bootstraps from a snapshot, then tails incremental mutations,
// answering queries byte-identically at each synced point.
func TestFollowerBootstrapAndTail(t *testing.T) {
	const dims = 8
	vectors := dataset.CorelLike(40, dims, 3)

	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 10}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", vectors[:25])

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatalf("bootstrap sync: %v", err)
	}
	spec := api.QuerySpec{Query: vectors[0], K: 5}
	queryIdentical(t, lts.URL, fts.URL, "c", spec)

	// Incremental tail: more ingest, a delete, a recluster on the leader.
	ingestBatch(t, lts.URL, "c", vectors[25:])
	if code := doJSON(t, http.MethodDelete, lts.URL+"/collections/c/vectors/3", nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, http.MethodPost, lts.URL+"/collections/c/recluster",
		reclusterRequest{K: 2}, nil); code != http.StatusOK {
		t.Fatalf("recluster: status %d", code)
	}
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatalf("tail sync: %v", err)
	}
	queryIdentical(t, lts.URL, fts.URL, "c", spec)

	st := fs.ReplStatus()
	if !st.CaughtUp || st.Diverged || st.LagBytes != 0 {
		t.Fatalf("status after catch-up: %+v", st)
	}
	cs, ok := st.Collections["c"]
	if !ok || !cs.CaughtUp || cs.Seq != cs.LeaderSeq || cs.Off != cs.LeaderOff {
		t.Fatalf("collection status: %+v", cs)
	}

	// A collection dropped on the leader disappears from the follower —
	// but only after the absence persists across replDropAfterMisses
	// passes, so a transiently wrong leader listing cannot wipe a
	// replica.
	if code := doJSON(t, http.MethodDelete, lts.URL+"/collections/c", nil, nil); code != http.StatusNoContent {
		t.Fatalf("drop: status %d", code)
	}
	for pass := 1; pass < replDropAfterMisses; pass++ {
		if err := fs.SyncReplicaOnce(); err != nil {
			t.Fatalf("drop sync pass %d: %v", pass, err)
		}
		if code := doJSON(t, http.MethodGet, fts.URL+"/collections/c", nil, nil); code != http.StatusOK {
			t.Fatalf("replica dropped %q after only %d leader listings without it: status %d", "c", pass, code)
		}
	}
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatalf("drop sync: %v", err)
	}
	if code := doJSON(t, http.MethodGet, fts.URL+"/collections/c", nil, nil); code != http.StatusNotFound {
		t.Fatalf("dropped collection still served: status %d", code)
	}
}

// TestFollowerRefusesMassWipe: a leader that suddenly lists zero
// collections while the follower replicates several (the signature of a
// leader restarted against a wrong or empty -data dir) must never cause
// the follower to drop its replica data, no matter how many passes the
// empty listing persists. A deliberate drop of individual collections
// still converges.
func TestFollowerRefusesMassWipe(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	for _, name := range []string{"a", "b"} {
		if code := doJSON(t, http.MethodPut, lts.URL+"/collections/"+name,
			createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", name, code)
		}
		ingestBatch(t, lts.URL, name, dataset.CorelLike(6, dims, 1))
	}

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}

	// The leader loses everything at once.
	for _, name := range []string{"a", "b"} {
		if code := doJSON(t, http.MethodDelete, lts.URL+"/collections/"+name, nil, nil); code != http.StatusNoContent {
			t.Fatalf("leader drop %s: status %d", name, code)
		}
	}
	for pass := 0; pass < 3*replDropAfterMisses; pass++ {
		if err := fs.SyncReplicaOnce(); err != nil {
			t.Fatalf("sync pass %d: %v", pass, err)
		}
	}
	for _, name := range []string{"a", "b"} {
		if code := doJSON(t, http.MethodGet, fts.URL+"/collections/"+name, nil, nil); code != http.StatusOK {
			t.Fatalf("mass wipe went through: collection %q gone (status %d)", name, code)
		}
	}
}

// TestFollowerWriteFencing: every client mutation on an unpromoted
// follower is refused with 409 read_only_replica; reads keep working.
func TestFollowerWriteFencing(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(8, dims, 1))

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}

	fenced := []struct {
		method, path string
		body         any
	}{
		{http.MethodPut, "/collections/other", createRequest{Dims: dims}},
		{http.MethodPost, "/collections/c/vectors", ingestRequest{Vector: []float64{1, 2, 3, 4}}},
		{http.MethodDelete, "/collections/c/vectors/0", nil},
		{http.MethodPost, "/collections/c/recluster", reclusterRequest{K: 1}},
		{http.MethodDelete, "/collections/c", nil},
		{http.MethodPost, "/collections/c/snapshot", nil},
	}
	for _, f := range fenced {
		var e errorWire
		if code := doJSON(t, f.method, fts.URL+f.path, f.body, &e); code != http.StatusConflict {
			t.Errorf("%s %s: status %d, want 409", f.method, f.path, code)
		} else if e.Code != "read_only_replica" {
			t.Errorf("%s %s: code %q, want read_only_replica", f.method, f.path, e.Code)
		}
	}

	// Reads are not fenced.
	var qr queryResponse
	if code := doJSON(t, http.MethodPost, fts.URL+"/collections/c/query",
		api.QuerySpec{Query: []float64{1, 0, 0, 0}, K: 3}, &qr); code != http.StatusOK {
		t.Fatalf("follower query: status %d", code)
	}
	if code := doJSON(t, http.MethodGet, fts.URL+"/collections/c/vectors/0", nil, nil); code != http.StatusOK {
		t.Fatalf("follower readback: status %d", code)
	}
}

// TestFollowerPromote: POST /promote flips a caught-up follower into a
// writable leader, idempotently; a node never started with -follow is
// refused with not_replica.
func TestFollowerPromote(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(12, dims, 2))

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}

	var st api.ReplStatus
	if code := doJSON(t, http.MethodPost, fts.URL+"/promote", nil, &st); code != http.StatusOK {
		t.Fatalf("promote: status %d", code)
	}
	if !st.Promoted {
		t.Fatalf("promote response: %+v", st)
	}
	// Idempotent.
	if code := doJSON(t, http.MethodPost, fts.URL+"/promote", nil, nil); code != http.StatusOK {
		t.Fatal("second promote not idempotent")
	}
	// Writable now.
	ingestBatch(t, fts.URL, "c", [][]float64{{9, 9, 9, 9}})
	var stats serverStats
	if code := doJSON(t, http.MethodGet, fts.URL+"/stats", nil, &stats); code != http.StatusOK {
		t.Fatal("stats")
	}
	if stats.Role != "promoted" {
		t.Fatalf("role %q after promote", stats.Role)
	}

	// A plain leader refuses promotion.
	var e errorWire
	if code := doJSON(t, http.MethodPost, lts.URL+"/promote", nil, &e); code != http.StatusConflict || e.Code != "not_replica" {
		t.Fatalf("promote on non-replica: status %d code %q", code, e.Code)
	}
}

// TestFollowerDivergedFenced is the replica-path fencing regression: a
// follower whose local history is not a prefix of the leader's is fenced
// on sync with 409 from the leader, refuses promotion with 409
// replica_diverged, and stays fenced on later syncs — it is never
// silently promoted or silently re-synced.
func TestFollowerDivergedFenced(t *testing.T) {
	const dims = 4
	ls, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(6, dims, 4))

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}

	// Diverge the follower behind the protocol's back: append records the
	// leader never produced, straight into its local collection.
	col, err := fs.cat.Get("c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddBatchDurable([][]float64{{5, 5, 5, 5}}); err != nil {
		t.Fatal(err)
	}
	_ = ls

	if err := fs.SyncReplicaOnce(); err == nil {
		t.Fatal("sync with diverged local state succeeded")
	}
	st := fs.ReplStatus()
	if !st.Diverged || st.CaughtUp {
		t.Fatalf("status after divergence: %+v", st)
	}

	var e errorWire
	if code := doJSON(t, http.MethodPost, fts.URL+"/promote", nil, &e); code != http.StatusConflict || e.Code != "replica_diverged" {
		t.Fatalf("promote on diverged replica: status %d code %q", code, e.Code)
	}
	// Still fenced, still refusing — never silently recovered.
	if err := fs.SyncReplicaOnce(); err == nil {
		t.Fatal("later sync silently recovered a diverged replica")
	}
	if code := doJSON(t, http.MethodPost, fts.URL+"/promote", nil, &e); code != http.StatusConflict {
		t.Fatalf("second promote on diverged replica: status %d", code)
	}
	// And it keeps refusing writes too.
	if code := doJSON(t, http.MethodPost, fts.URL+"/collections/c/vectors",
		ingestRequest{Vector: []float64{1, 1, 1, 1}}, &e); code != http.StatusConflict || e.Code != "read_only_replica" {
		t.Fatalf("diverged replica accepted a write: status %d code %q", code, e.Code)
	}
}

// TestFollowerRefollowAfterGone: a follower parked at a WAL generation
// the leader has since deleted gets 410 wal_gone and transparently
// re-bootstraps from a fresh snapshot, converging again.
func TestFollowerRefollowAfterGone(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(10, dims, 5))

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}

	// Rotate the leader's WAL past the retention window (the leader keeps
	// the last 8 generation boundaries) while the follower is parked, so
	// its position falls off the end of recorded history.
	for i := 0; i < 10; i++ {
		ingestBatch(t, lts.URL, "c", [][]float64{{float64(i), 1, 2, 3}})
		if code := doJSON(t, http.MethodPost, lts.URL+"/collections/c/snapshot", nil, nil); code != http.StatusOK {
			t.Fatalf("rotation %d: status %d", i, code)
		}
	}

	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatalf("re-follow sync: %v", err)
	}
	st := fs.ReplStatus()
	if !st.CaughtUp || st.Diverged {
		t.Fatalf("status after re-follow: %+v", st)
	}
	queryIdentical(t, lts.URL, fts.URL, "c", api.QuerySpec{Query: []float64{1, 1, 1, 1}, K: 5})
}

// TestFollowerStatsRole: the stats role gauge tracks the follower
// lifecycle, and /replstatus is well-formed on every node kind.
func TestFollowerStatsRole(t *testing.T) {
	_, lts := newTestServer(t, Config{})
	var stats serverStats
	if doJSON(t, http.MethodGet, lts.URL+"/stats", nil, &stats); stats.Role != "single" {
		t.Fatalf("leader role %q", stats.Role)
	}
	var st api.ReplStatus
	if code := doJSON(t, http.MethodGet, lts.URL+"/replstatus", nil, &st); code != http.StatusOK {
		t.Fatal("replstatus on leader")
	}
	if st.Following != "" || st.Promoted {
		t.Fatalf("leader replstatus: %+v", st)
	}

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}
	if doJSON(t, http.MethodGet, fts.URL+"/stats", nil, &stats); stats.Role != "follower" {
		t.Fatalf("follower role %q", stats.Role)
	}
	if stats.Replication == nil || stats.Replication.Following != lts.URL {
		t.Fatalf("follower stats replication block: %+v", stats.Replication)
	}
	if code := doJSON(t, http.MethodGet, fts.URL+"/replstatus", nil, &st); code != http.StatusOK || st.Following != lts.URL {
		t.Fatalf("follower replstatus: %d %+v", code, st)
	}
	if st.Syncs < 1 {
		t.Fatalf("syncs gauge %d", st.Syncs)
	}
}

// TestFollowerMaintenanceNoop: maintenance on an unpromoted follower
// must not compact, recluster, or checkpoint — any of those would fork
// its WAL history from the leader's.
func TestFollowerMaintenanceNoop(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims, SegmentSize: 5}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(20, dims, 6))

	fs, _ := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}
	compacted, reclustered, checkpointed, err := fs.RunMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if compacted != 0 || reclustered != 0 || checkpointed != 0 {
		t.Fatalf("follower maintenance acted: compact=%d recluster=%d checkpoint=%d",
			compacted, reclustered, checkpointed)
	}
}

// TestFollowerCaughtUpSurvivesLeaderDeath: caught_up is an
// as-of-last-successful-leader-contact assessment. A follower that
// drained the stream and then lost its leader — the exact node failover
// exists to promote — must keep reporting caught_up (with the transport
// error surfaced in last_error), not flip to "lagging" because its sync
// loop can no longer reach a dead process. Regression: the aggregation
// used to clear caught_up on any sync error, so a real deployment's
// background loop made every drained follower unpromotable the moment
// the leader died.
func TestFollowerCaughtUpSurvivesLeaderDeath(t *testing.T) {
	const dims = 4
	_, lts := newTestServer(t, Config{})
	if code := doJSON(t, http.MethodPut, lts.URL+"/collections/c",
		createRequest{Dims: dims}, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	ingestBatch(t, lts.URL, "c", dataset.CorelLike(12, dims, 2))

	fs, fts := newFollower(t, lts.URL)
	if err := fs.SyncReplicaOnce(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if st := fs.ReplStatus(); !st.CaughtUp {
		t.Fatalf("drained follower not caught up: %+v", st)
	}

	lts.Close() // the leader is gone

	// Sync passes now fail with a transport error…
	if err := fs.SyncReplicaOnce(); err == nil {
		t.Fatal("sync against a dead leader succeeded")
	}
	// …which must be reported but must not clear the assessment.
	st := fs.ReplStatus()
	if st.LastError == "" {
		t.Fatal("dead leader not surfaced in last_error")
	}
	if !st.CaughtUp {
		t.Fatalf("drained follower lost caught_up after leader death: %+v", st)
	}
	if cs := st.Collections["c"]; !cs.CaughtUp || cs.LagBytes != 0 {
		t.Fatalf("collection assessment regressed: %+v", cs)
	}
	// Repeated failing passes (the background loop keeps trying) change
	// nothing.
	_ = fs.SyncReplicaOnce()
	if st := fs.ReplStatus(); !st.CaughtUp {
		t.Fatalf("caught_up decayed across failing passes: %+v", st)
	}
	// And the follower is still promotable.
	if code := doJSON(t, http.MethodPost, fts.URL+"/promote", nil, nil); code != http.StatusOK {
		t.Fatalf("promote after leader death: status %d", code)
	}
}

// TestFollowerNeverSyncedNotCaughtUp: the flip side of
// as-of-last-contact — a follower that has never completed one clean
// sync pass has no assessment to preserve and must never report
// caught_up, even though its (empty) collection map contains nothing
// lagging.
func TestFollowerNeverSyncedNotCaughtUp(t *testing.T) {
	_, lts := newTestServer(t, Config{})
	leaderURL := lts.URL
	lts.Close() // dead before the follower's first contact

	fs, _ := newFollower(t, leaderURL)
	if err := fs.SyncReplicaOnce(); err == nil {
		t.Fatal("sync against a dead leader succeeded")
	}
	if st := fs.ReplStatus(); st.CaughtUp {
		t.Fatalf("never-synced follower claims caught_up: %+v", st)
	}
}

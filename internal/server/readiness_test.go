package server

import (
	"errors"
	"net/http"
	"testing"
	"time"

	"bond/internal/iofs"
)

// failingCreateFS delegates to a real filesystem but refuses to create
// files — a full or read-only data disk, as the readiness probe sees it.
type failingCreateFS struct {
	iofs.FS
	err error
}

func (f failingCreateFS) Create(string) (iofs.File, error) { return nil, f.err }

// TestReadyzDistinguishesLiveness pins the /healthz vs /readyz split: a
// process can be alive (healthz 200) while unable to acknowledge writes
// (readyz 503 with a structured cause), and readiness exercises both the
// data-dir probe and every loaded collection's WAL.
func TestReadyzDistinguishesLiveness(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 2}, nil)
	ingestBatch(t, ts.URL, "c", [][]float64{{0.1, 0.2}, {0.3, 0.4}})

	// Healthy: both endpoints answer 200, and readiness really did probe
	// (a loaded collection with a live WAL is part of the check).
	if status := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	var ready struct {
		Status string `json:"status"`
	}
	if status := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &ready); status != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("readyz: status %d body %+v", status, ready)
	}

	// Break the data dir through the probe seam: readiness must flip to
	// 503 while liveness stays 200.
	diskFull := errors.New("no space left on device")
	s.cat.probeFS = failingCreateFS{FS: iofs.OS{}, err: diskFull}
	var e errorWire
	if status := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &e); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a broken data dir: status %d, want 503", status)
	}
	if e.Code != "not_ready" || !contains(e.Error, "not writable") {
		t.Fatalf("readyz error = %+v", e)
	}
	if status := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); status != http.StatusOK {
		t.Fatal("healthz must stay 200 while readiness fails")
	}

	// And back: readiness recovers with the disk.
	s.cat.probeFS = iofs.OS{}
	if status := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, nil); status != http.StatusOK {
		t.Fatal("readyz did not recover")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestQueryDeadlineReturnsPromptly is the single-node half of the
// deadline-propagation e2e: a query whose timeout_ms expires mid-scan
// must come back promptly — degraded to the candidates scanned so far
// (truncated), never hung. The coordinator half lives in internal/shard.
func TestQueryDeadlineReturnsPromptly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, http.MethodPut, ts.URL+"/collections/c", createRequest{Dims: 16}, nil)
	vectors := make([][]float64, 4000)
	for i := range vectors {
		v := make([]float64, 16)
		for d := range v {
			v[d] = float64((i*31+d*7)%100) / 100
		}
		vectors[i] = v
	}
	ingestBatch(t, ts.URL, "c", vectors)

	q := make([]float64, 16)
	for d := range q {
		q[d] = 0.5
	}
	start := time.Now()
	var resp queryResponse
	status := doJSON(t, http.MethodPost, ts.URL+"/collections/c/query",
		querySpecWire{Query: q, K: 5, Strategy: "exact", TimeoutMs: 1}, &resp)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("deadline query: status %d", status)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("1ms-deadline query took %v", elapsed)
	}
	if len(resp.Results) > 5 {
		t.Fatalf("k=5 query returned %d results", len(resp.Results))
	}
	// Whether the scan finished under the wire or was cut short is
	// machine-dependent; what must hold is promptness plus a marked
	// truncation whenever the answer is short.
	if len(resp.Results) < 5 && !resp.Truncated {
		t.Fatalf("short answer (%d of 5) without truncated flag", len(resp.Results))
	}
	t.Logf("deadline query: elapsed=%v truncated=%v results=%d", elapsed, resp.Truncated, len(resp.Results))
}

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"bond"
	"bond/internal/api"
	"bond/internal/repl"
)

// Replication over HTTP. A leader is any bondd node: it serves its WAL
// as acknowledged byte chunks (GET /collections/{name}/wal) and
// checkpoint snapshots for bootstrap (POST /collections/{name}/
// snapshot). A follower is a bondd started with Config.FollowURL: it
// tails every leader collection through bond.ApplyReplChunk — the same
// validate → log → apply path recovery uses — so its on-disk state is
// byte-identical to the leader at every applied offset, rejects client
// mutations with 409 read_only_replica, and reports its lag on
// GET /replstatus. POST /promote turns a caught-up follower into a
// leader (idempotent; 409 replica_diverged fences a follower whose
// state cannot be a prefix of the leader's history).

// errReadOnlyReplica is served (409, code read_only_replica) for every
// client mutation on an unpromoted follower. 4xx is deliberate: the
// coordinator's envelope treats it as non-transient and does not burn
// retries on a node that will keep refusing.
var errReadOnlyReplica = errors.New("server: read-only replica (following a leader; POST /promote to accept writes)")

// errLeaderUnreachable tags transport-level sync failures (dial refused,
// timeout, connection torn mid-body). caught_up is an as-of-last-
// successful-leader-contact assessment — a follower that drained the
// stream and then lost the leader is exactly the one failover exists to
// promote — so unreachable errors are reported in last_error but never
// clear the caught-up assessment. Every other error (rejected position,
// failed apply, bad payload) is a statement about the stream itself and
// does clear it.
var errLeaderUnreachable = errors.New("leader unreachable")

// replicator tails a leader and owns the follower-mode state.
type replicator struct {
	s        *Server
	leader   string
	hc       *http.Client
	interval time.Duration

	// syncMu serializes sync passes (the background loop and
	// SyncReplicaOnce) and the promotion handshake against each other.
	syncMu sync.Mutex

	// missing counts, per local collection, how many consecutive sync
	// passes the leader's listing has omitted it. Dropping replica data
	// is irreversible, so one surprising listing is never enough — see
	// replDropAfterMisses. Touched only under syncMu.
	missing map[string]int

	mu         sync.Mutex
	promoted   bool
	cols       map[string]*replColState
	syncs      int64
	lastSyncMs int64
	lastErr    string
	down       bool // lastErr is a leader-unreachable transport error

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// replColState is one collection's tailing state, refreshed by every
// sync pass.
type replColState struct {
	pos      repl.Position
	leader   repl.Position
	caughtUp bool
	diverged bool
	lastErr  string
}

func newReplicator(s *Server, cfg Config) *replicator {
	hc := cfg.FollowClient
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	r := &replicator{
		s:        s,
		leader:   cfg.FollowURL,
		hc:       hc,
		interval: cfg.FollowInterval,
		cols:     map[string]*replColState{},
		missing:  map[string]int{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	if r.interval == 0 {
		r.interval = 500 * time.Millisecond
	}
	if r.interval > 0 {
		go r.loop()
	} else {
		close(r.done)
	}
	return r
}

func (r *replicator) loop() {
	defer close(r.done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			if err := r.syncOnce(); err != nil {
				r.s.logf("bondd: replica sync: %v", err)
			}
		}
	}
}

func (r *replicator) stopLoop() {
	r.stopOnce.Do(func() { close(r.stop) })
	<-r.done
}

func (r *replicator) isPromoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// promote stops tailing and flips the node writable. It fails with
// errReplicaDiverged if any collection's stream state is fenced —
// promoting it would serve a history that is not a prefix of the
// leader's. Idempotent: promoting a promoted node succeeds.
func (r *replicator) promote() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	r.mu.Lock()
	if r.promoted {
		r.mu.Unlock()
		return nil
	}
	for name, cs := range r.cols {
		if cs.diverged {
			r.mu.Unlock()
			return fmt.Errorf("%w: collection %q: %s", errReplicaDiverged, name, cs.lastErr)
		}
	}
	r.promoted = true
	r.mu.Unlock()
	r.stopLoop()
	return nil
}

var errReplicaDiverged = errors.New("server: replica diverged from leader")

// replDropAfterMisses is how many consecutive sync passes a local
// collection must be absent from the leader's listing before the
// follower deletes its replica of it. Dropping is irreversible, so a
// single surprising listing — a leader restarted against the wrong or
// an empty -data dir, a follower pointed at the wrong URL — must not
// wipe the replica; a real drop converges after this many passes.
const replDropAfterMisses = 3

// syncOnce runs one full tail pass: list the leader's collections, drop
// local ones the leader has persistently stopped listing (see
// replDropAfterMisses), then for each collection bootstrap if needed
// and stream until caught up. Deterministic and re-entrant — tests
// drive it directly via Server.SyncReplicaOnce.
func (r *replicator) syncOnce() error {
	r.syncMu.Lock()
	defer r.syncMu.Unlock()
	if r.isPromoted() {
		return nil
	}
	var names struct {
		Collections []string `json:"collections"`
	}
	if err := r.getJSON("/collections", &names); err != nil {
		r.noteSync(err)
		return err
	}
	leaderHas := make(map[string]bool, len(names.Collections))
	for _, name := range names.Collections {
		leaderHas[name] = true
	}
	local, err := r.s.cat.Names()
	if err != nil {
		r.noteSync(err)
		return err
	}
	for _, name := range local {
		if leaderHas[name] {
			delete(r.missing, name)
			continue
		}
		r.missing[name]++
		switch {
		case r.missing[name] < replDropAfterMisses:
			r.s.logf("bondd: replica: leader no longer lists collection %q (pass %d/%d), deferring drop",
				name, r.missing[name], replDropAfterMisses)
			continue
		case len(names.Collections) == 0 && len(local) > 1:
			// An empty listing against a multi-collection replica is far
			// more likely a leader restarted on the wrong/empty -data dir
			// than a deliberate drop of everything at once. Refuse the
			// mass wipe; an operator can drop or re-bootstrap explicitly.
			r.s.logf("bondd: replica: refusing to drop %q — leader lists no collections while this replica holds %d; check the leader's -data dir",
				name, len(local))
			continue
		}
		delete(r.missing, name)
		r.s.logf("bondd: replica: dropping collection %q, absent from %d consecutive leader listings", name, replDropAfterMisses)
		if derr := r.s.cat.Drop(name); derr != nil && !errors.Is(derr, ErrNotFound) {
			r.noteSync(derr)
			return derr
		}
		r.mu.Lock()
		delete(r.cols, name)
		r.mu.Unlock()
	}
	var firstErr error
	for _, name := range names.Collections {
		if err := r.syncCollection(name); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("collection %q: %w", name, err)
		}
	}
	r.noteSync(firstErr)
	return firstErr
}

// noteSync records the pass outcome for /replstatus.
func (r *replicator) noteSync(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.syncs++
	if err != nil {
		r.lastErr = err.Error()
		r.down = errors.Is(err, errLeaderUnreachable)
		return
	}
	r.lastErr = ""
	r.down = false
	r.lastSyncMs = time.Now().UnixMilli()
}

// colState returns (creating if needed) the tail state for name.
func (r *replicator) colState(name string) *replColState {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := r.cols[name]
	if cs == nil {
		cs = &replColState{}
		r.cols[name] = cs
	}
	return cs
}

// syncCollection tails one collection until it is caught up with the
// leader position reported by the last chunk.
func (r *replicator) syncCollection(name string) error {
	cs := r.colState(name)
	r.mu.Lock()
	if cs.diverged {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", errReplicaDiverged, cs.lastErr)
	}
	r.mu.Unlock()

	col, err := r.s.cat.Get(name)
	if errors.Is(err, ErrNotFound) {
		if col, err = r.bootstrap(name); err != nil {
			return r.noteCol(cs, err)
		}
	} else if err != nil {
		return r.noteCol(cs, err)
	}

	max := 0 // leader default; doubled when a chunk holds no complete frame
	for {
		pos, err := col.ReplPosition()
		if err != nil {
			return r.noteCol(cs, err)
		}
		chunk, status, err := r.fetchChunk(name, pos, max)
		if err != nil {
			return r.noteCol(cs, err)
		}
		switch {
		case status == http.StatusOK:
		case status == http.StatusGone:
			// The leader checkpointed past our position: the bytes between
			// us and its snapshot are unreachable, so re-bootstrap whole.
			if col, err = r.bootstrap(name); err != nil {
				return r.noteCol(cs, err)
			}
			continue
		case status == http.StatusConflict:
			// Our position does not exist in the leader's history — this
			// replica has state the leader never produced. Fence it.
			r.mu.Lock()
			cs.diverged = true
			cs.lastErr = fmt.Sprintf("leader rejected position %s", pos)
			r.mu.Unlock()
			return fmt.Errorf("%w: leader rejected position %s", errReplicaDiverged, pos)
		default:
			return r.noteCol(cs, fmt.Errorf("leader wal fetch: status %d", status))
		}
		if err := col.ApplyReplChunk(chunk); err != nil {
			if errors.Is(err, bond.ErrReplDiverged) {
				r.mu.Lock()
				cs.diverged = true
				cs.lastErr = err.Error()
				r.mu.Unlock()
			}
			return r.noteCol(cs, err)
		}
		after, err := col.ReplPosition()
		if err != nil {
			return r.noteCol(cs, err)
		}
		r.mu.Lock()
		cs.pos, cs.leader = after, chunk.Leader
		cs.caughtUp = after == chunk.Leader
		cs.lastErr = ""
		r.mu.Unlock()
		switch {
		case chunk.Rotated && after == chunk.End():
			// The chunk completed the leader's old generation and every
			// frame applied: mirror the rotation. The follower's own
			// checkpoint assigns the same sequence the leader's did, so the
			// two stay in lockstep.
			if err := col.Checkpoint(); err != nil {
				return r.noteCol(cs, err)
			}
			max = 0
		case len(chunk.Data) > 0 && after == pos:
			// A full chunk with no complete frame: one record is larger
			// than the chunk size. Ask for more.
			if max == 0 {
				max = 2 << 20
			} else {
				max *= 2
			}
			if max > 1<<28 {
				return r.noteCol(cs, fmt.Errorf("replication frame larger than %d bytes at %s", max/2, pos))
			}
		case len(chunk.Data) == 0 && !chunk.Rotated:
			// Caught up (or the leader has nothing newer).
			return nil
		default:
			max = 0
		}
	}
}

// noteCol records a collection-level error for /replstatus and returns
// it.
func (r *replicator) noteCol(cs *replColState, err error) error {
	r.mu.Lock()
	cs.lastErr = err.Error()
	if !errors.Is(err, errLeaderUnreachable) {
		cs.caughtUp = false
	}
	r.mu.Unlock()
	return err
}

// bootstrap fetches a fresh snapshot from the leader and installs it,
// replacing any local state for the collection.
func (r *replicator) bootstrap(name string) (*bond.Collection, error) {
	resp, err := r.hc.Post(r.leader+"/collections/"+name+"/snapshot", "application/json", nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("leader snapshot: status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var snap repl.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return nil, fmt.Errorf("leader snapshot: %w", err)
	}
	col, err := r.s.cat.BootstrapReplica(name, &snap)
	if err != nil {
		return nil, err
	}
	cs := r.colState(name)
	r.mu.Lock()
	cs.pos, cs.leader = snap.Position, snap.Position
	cs.caughtUp, cs.diverged, cs.lastErr = false, false, ""
	r.mu.Unlock()
	return col, nil
}

// fetchChunk GETs one WAL chunk from the leader. Non-2xx statuses the
// protocol assigns meaning to (409, 410) are returned as statuses, not
// errors, for the caller to dispatch on.
func (r *replicator) fetchChunk(name string, pos repl.Position, max int) (repl.Chunk, int, error) {
	url := fmt.Sprintf("%s/collections/%s/wal?seq=%d&from=%d", r.leader, name, pos.Seq, pos.Off)
	if max > 0 {
		url += "&max=" + strconv.Itoa(max)
	}
	resp, err := r.hc.Get(url)
	if err != nil {
		return repl.Chunk{}, 0, fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return repl.Chunk{}, 0, fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	if resp.StatusCode != http.StatusOK {
		return repl.Chunk{}, resp.StatusCode, nil
	}
	var chunk repl.Chunk
	if err := json.Unmarshal(body, &chunk); err != nil {
		return repl.Chunk{}, 0, fmt.Errorf("leader wal chunk: %w", err)
	}
	return chunk, resp.StatusCode, nil
}

// getJSON GETs a leader endpoint and decodes its 200 body.
func (r *replicator) getJSON(path string, out any) error {
	resp, err := r.hc.Get(r.leader + path)
	if err != nil {
		return fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("%w: %v", errLeaderUnreachable, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("leader %s: status %d", path, resp.StatusCode)
	}
	return json.Unmarshal(body, out)
}

// status assembles the /replstatus report.
func (r *replicator) status() api.ReplStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := api.ReplStatus{
		Following:      r.leader,
		Promoted:       r.promoted,
		Syncs:          r.syncs,
		LastSyncUnixMs: r.lastSyncMs,
		LastError:      r.lastErr,
		Collections:    make(map[string]api.ReplCollection, len(r.cols)),
	}
	// caught_up is as-of-last-successful-leader-contact: it requires at
	// least one fully clean sync pass (lastSyncMs != 0 — a follower that
	// never reached its leader has nothing to be caught up *to*), and a
	// later leader-unreachable failure preserves the assessment rather
	// than clearing it — a drained follower whose leader just died is
	// exactly the one failover promotes. Stream-level errors (r.down
	// false) still clear it, as do lag and divergence below.
	st.CaughtUp = r.lastSyncMs != 0 && (r.lastErr == "" || r.down)
	for name, cs := range r.cols {
		lag := cs.leader.Off - cs.pos.Off
		if cs.leader.Seq != cs.pos.Seq || lag < 0 {
			lag = cs.leader.Off // rough: bytes into a generation we have none of
		}
		st.Collections[name] = api.ReplCollection{
			Seq:       cs.pos.Seq,
			Off:       cs.pos.Off,
			LeaderSeq: cs.leader.Seq,
			LeaderOff: cs.leader.Off,
			LagBytes:  lag,
			CaughtUp:  cs.caughtUp,
			Diverged:  cs.diverged,
			LastError: cs.lastErr,
		}
		st.LagBytes += lag
		if cs.diverged {
			st.Diverged = true
		}
		if !cs.caughtUp {
			st.CaughtUp = false
		}
	}
	if st.Diverged {
		st.CaughtUp = false
	}
	return st
}

// --- Server integration ----------------------------------------------------

// readOnlyReplica reports whether the node is an unpromoted follower.
func (s *Server) readOnlyReplica() bool {
	return s.repl != nil && !s.repl.isPromoted()
}

// fenceReplica writes the read-only rejection when the node is an
// unpromoted follower, reporting whether the request was fenced.
func (s *Server) fenceReplica(w http.ResponseWriter) bool {
	if !s.readOnlyReplica() {
		return false
	}
	writeJSON(w, http.StatusConflict, errorWire{
		Error: errReadOnlyReplica.Error(),
		Code:  "read_only_replica",
	})
	return true
}

// SyncReplicaOnce runs one synchronous tail pass against the leader —
// the deterministic test hook behind the background follow loop.
func (s *Server) SyncReplicaOnce() error {
	if s.repl == nil {
		return fmt.Errorf("server: not a replica")
	}
	return s.repl.syncOnce()
}

// ReplStatus returns the follower gauges (zero value on a node that was
// never a follower).
func (s *Server) ReplStatus() api.ReplStatus {
	if s.repl == nil {
		return api.ReplStatus{}
	}
	return s.repl.status()
}

// replErrStatus maps bond replication errors onto HTTP statuses.
func replErrStatus(err error) (int, string) {
	switch {
	case errors.Is(err, bond.ErrReplGone):
		return http.StatusGone, "wal_gone"
	case errors.Is(err, bond.ErrReplDiverged):
		return http.StatusConflict, "repl_diverged"
	case errors.Is(err, bond.ErrClosed):
		return http.StatusServiceUnavailable, "closed"
	}
	return http.StatusInternalServerError, ""
}

// handleWALChunk serves GET /collections/{name}/wal?seq=&from=&max= —
// one slice of the collection's replication stream (acknowledged bytes
// only; it may end mid-frame when a frame straddles max).
func (s *Server) handleWALChunk(w http.ResponseWriter, r *http.Request) {
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	q := r.URL.Query()
	seq, err := strconv.ParseUint(q.Get("seq"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad seq: %w", err))
		return
	}
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad from: %w", err))
		return
	}
	max := 0
	if v := q.Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil {
			s.writeError(w, http.StatusBadRequest, fmt.Errorf("bad max: %w", err))
			return
		}
	}
	chunk, err := col.ReplChunk(seq, from, max)
	if err != nil {
		status, code := replErrStatus(err)
		writeJSON(w, status, errorWire{Error: err.Error(), Code: code})
		return
	}
	writeJSON(w, http.StatusOK, chunk)
}

// handleSnapshot serves POST /collections/{name}/snapshot: checkpoint
// the collection and return the packaged durable files a follower
// bootstraps from. Fenced on an unpromoted follower — a snapshot
// rotates the WAL, which only the leader's stream may do here.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.fenceReplica(w) {
		return
	}
	col, err := s.cat.Get(r.PathValue("name"))
	if err != nil {
		s.writeError(w, catalogStatus(err), err)
		return
	}
	snap, err := col.ReplSnapshot()
	if err != nil {
		status, code := replErrStatus(err)
		writeJSON(w, status, errorWire{Error: err.Error(), Code: code})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handlePromote serves POST /promote: flip a caught-up follower into a
// writable leader. Idempotent; 409 replica_diverged fences a follower
// whose state is not a prefix of the leader's history, and 409
// not_replica rejects a node that was never following.
func (s *Server) handlePromote(w http.ResponseWriter, _ *http.Request) {
	if s.repl == nil {
		writeJSON(w, http.StatusConflict, errorWire{
			Error: "not a replica (started without -follow)",
			Code:  "not_replica",
		})
		return
	}
	if err := s.repl.promote(); err != nil {
		writeJSON(w, http.StatusConflict, errorWire{Error: err.Error(), Code: "replica_diverged"})
		return
	}
	s.logf("bondd: promoted to leader (was following %s)", s.repl.leader)
	writeJSON(w, http.StatusOK, s.repl.status())
}

// handleReplStatus serves GET /replstatus — the follower's self-report
// the coordinator's prober reads before promoting.
func (s *Server) handleReplStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.ReplStatus())
}

// --- Catalog integration ---------------------------------------------------

// BootstrapReplica replaces name's on-disk state with a leader snapshot
// and (re)loads it. It holds the per-name single-flight slot and the
// checkpoint mutex for the whole install, so no lookup ever sees a
// half-written tree and no checkpoint sweep races the wipe.
func (c *Catalog) BootstrapReplica(name string, snap *repl.Snapshot) (*bond.Collection, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	c.claimSlot(name, false)
	defer c.releaseName(name)
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	c.mu.Lock()
	old := c.cols[name]
	delete(c.cols, name)
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	col, err := bond.BootstrapReplica(c.path(name), snap, bond.DurableOptions{
		Fsync:       c.fsync,
		DisableMmap: c.disableMmap,
	})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.cols[name] = col
	c.mu.Unlock()
	return col, nil
}

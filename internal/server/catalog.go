// Package server implements bondd's serving layer: a concurrent
// multi-collection catalog over durable bond.Collection instances, an
// HTTP JSON API that maps onto QuerySpec/QueryBatch, a background
// maintenance loop (threshold-triggered compaction plus WAL-bounding
// checkpoints), and bounded in-flight query admission.
//
// The package owns no search logic and no durability logic: every
// request lowers onto the public bond API (Query, QueryBatch,
// QueryExplain, AddBatchDurable, TryDeleteDurable, Checkpoint), so
// answers served over HTTP are byte-identical to in-process calls, every
// acknowledged write is WAL-logged before its 2xx goes out, and the
// collection's RWMutex contract is the only synchronization the data
// path needs. The catalog adds one more lock above it — a map-level
// RWMutex serializing create/open/drop against lookups, with per-name
// single-flight on cold loads so two requests can never race a WAL open
// — and the maintenance loop runs entirely through exported Collection
// methods, so it is just another writer.
package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"bond"
	"bond/internal/iofs"
)

// collectionExt is the on-disk suffix of a catalog collection: a durable
// directory in the incremental checkpoint + WAL layout. A legacy
// snapshot *file* with the same name (the pre-durability format) is
// migrated into the directory layout on first touch.
const collectionExt = ".bond"

// nameRE constrains collection names to one safe path segment: no
// separators, no dot-prefixes, nothing the filesystem or URL router could
// reinterpret.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// Errors the catalog returns; the HTTP layer maps them onto status codes.
var (
	ErrNotFound = fmt.Errorf("server: collection not found")
	ErrBadName  = fmt.Errorf("server: invalid collection name (want [a-zA-Z0-9][a-zA-Z0-9_-]{0,63})")
	ErrBadShape = fmt.Errorf("server: invalid collection shape")
	ErrExists   = fmt.Errorf("server: collection exists with different shape")
)

// Catalog is a concurrent, lazily loaded set of named durable
// collections backed by one data directory. Lookups take a read lock on
// the name map; create, first-touch load, and drop serialize per name.
// The collections themselves carry their own RWMutex and WAL, so catalog
// lock hold times stay off the query path: a Get is one map read in
// steady state.
type Catalog struct {
	dir         string
	segSize     int              // default seal threshold for new collections (0 = library default)
	fsync       bond.FsyncPolicy // WAL policy every collection opens with
	disableMmap bool             // open with heap-decoded segments instead of mappings

	// probeFS is the filesystem the readiness probe writes through —
	// iofs.OS in production, injectable so tests can fail it without
	// needing an actually broken disk.
	probeFS iofs.FS

	mu      sync.RWMutex
	cols    map[string]*bond.Collection
	loading map[string]chan struct{} // per-name single-flight for cold opens

	// ckptMu serializes checkpoint sweeps (CheckpointLoaded) against each
	// other and against Drop: a checkpoint finishing after a Drop would
	// recreate files inside the removed directory, resurrecting the
	// dropped collection on disk.
	ckptMu sync.Mutex
}

// NewCatalog opens a catalog over dir, creating the directory if needed.
// Collections already on disk are not loaded eagerly; the first Get or
// Create that names one loads it (replaying its WAL tail, and migrating
// legacy snapshot files in place).
func NewCatalog(dir string, segSize int, fsync bond.FsyncPolicy, disableMmap bool) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Catalog{
		dir:         dir,
		segSize:     segSize,
		fsync:       fsync,
		disableMmap: disableMmap,
		probeFS:     iofs.OS{},
		cols:        map[string]*bond.Collection{},
		loading:     map[string]chan struct{}{},
	}, nil
}

// Ready reports whether the catalog can acknowledge writes: the data
// directory accepts a freshly written file (through the iofs seam, so a
// full or read-only disk fails here rather than on the next ingest) and
// every loaded collection's WAL is appendable. It is the substance
// behind GET /readyz.
func (c *Catalog) Ready() error {
	probe := filepath.Join(c.dir, ".readyz-probe")
	f, err := c.probeFS.Create(probe)
	if err != nil {
		return fmt.Errorf("server: data dir not writable: %w", err)
	}
	_, werr := f.Write([]byte("ok"))
	cerr := f.Close()
	_ = c.probeFS.Remove(probe)
	if werr != nil {
		return fmt.Errorf("server: data dir not writable: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("server: data dir not writable: %w", cerr)
	}
	for name, col := range c.Loaded() {
		if err := col.ProbeWAL(); err != nil {
			return fmt.Errorf("server: collection %q cannot append to its WAL: %w", name, err)
		}
	}
	return nil
}

func (c *Catalog) path(name string) string {
	return filepath.Join(c.dir, name+collectionExt)
}

// claimSlot claims the per-name single-flight slot unconditionally,
// waiting out any in-progress load. When stopIfLoaded is set and the
// collection materializes first, it is returned instead and the slot is
// NOT held. Callers holding the slot must call releaseName.
func (c *Catalog) claimSlot(name string, stopIfLoaded bool) (*bond.Collection, bool) {
	for {
		c.mu.Lock()
		if stopIfLoaded {
			if col := c.cols[name]; col != nil {
				c.mu.Unlock()
				return col, false
			}
		}
		ch, busy := c.loading[name]
		if !busy {
			c.loading[name] = make(chan struct{})
			c.mu.Unlock()
			return nil, true
		}
		c.mu.Unlock()
		<-ch
	}
}

// acquireName claims the single-flight slot for name unless the
// collection is already loaded, in which case it is returned directly.
func (c *Catalog) acquireName(name string) (*bond.Collection, bool) {
	return c.claimSlot(name, true)
}

func (c *Catalog) releaseName(name string) {
	c.mu.Lock()
	ch := c.loading[name]
	delete(c.loading, name)
	c.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// open opens or creates the durable collection for name; dims > 0
// permits creation.
func (c *Catalog) open(name string, dims, segSize int) (*bond.Collection, error) {
	if segSize <= 0 {
		segSize = c.segSize
	}
	return bond.OpenDurable(c.path(name), bond.DurableOptions{
		Dims:        dims,
		SegmentSize: segSize,
		Fsync:       c.fsync,
		DisableMmap: c.disableMmap,
	})
}

// Get returns the named collection, loading it from disk on first touch
// (WAL replay included). It returns ErrNotFound when the name is neither
// loaded nor on disk. The disk load runs outside the catalog's map lock
// — one slow cold open does not stall requests to already-loaded
// collections — but under a per-name single-flight slot, because two
// concurrent opens of one WAL would corrupt it.
func (c *Catalog) Get(name string) (*bond.Collection, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	c.mu.RLock()
	col := c.cols[name]
	c.mu.RUnlock()
	if col != nil {
		return col, nil
	}
	col, mine := c.acquireName(name)
	if !mine {
		return col, nil
	}
	defer c.releaseName(name)
	col, err := c.open(name, 0, 0)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// Re-stat under the lock: a Drop while we were loading removed the
	// tree (Drop waits for the loading slot only on entry, but it cannot
	// start while we hold the slot — this guards the inverse order,
	// where the drop finished before we acquired). If the files are
	// gone, inserting our copy would resurrect the dropped collection.
	if _, statErr := os.Stat(c.path(name)); statErr != nil {
		col.Close()
		return nil, ErrNotFound
	}
	c.cols[name] = col
	return col, nil
}

// Create creates the named durable collection with the given
// dimensionality (and optional segment size; 0 uses the catalog default)
// — the initial checkpoint and empty WAL hit disk before the call
// returns, so the name survives a crash. Creating a name that already
// exists is idempotent when the dimensionality matches — the existing
// collection is returned with created=false — and ErrExists when it does
// not.
func (c *Catalog) Create(name string, dims, segSize int) (col *bond.Collection, created bool, err error) {
	if !nameRE.MatchString(name) {
		return nil, false, ErrBadName
	}
	if dims < 1 {
		return nil, false, fmt.Errorf("%w: dims must be >= 1, got %d", ErrBadShape, dims)
	}
	existing, mine := c.acquireName(name)
	if !mine {
		if existing.Dims() != dims {
			return nil, false, fmt.Errorf("%w: %q has %d dims, requested %d", ErrExists, name, existing.Dims(), dims)
		}
		return existing, false, nil
	}
	defer c.releaseName(name)
	_, statErr := os.Stat(c.path(name))
	preexisting := statErr == nil
	col, err = c.open(name, dims, segSize)
	if err != nil {
		return nil, false, err
	}
	if col.Dims() != dims {
		col.Close()
		return nil, false, fmt.Errorf("%w: %q has %d dims, requested %d", ErrExists, name, col.Dims(), dims)
	}
	c.mu.Lock()
	c.cols[name] = col
	c.mu.Unlock()
	return col, !preexisting, nil
}

// Drop removes the named collection from memory, closes its WAL, and
// deletes its durable directory (or legacy file). It returns ErrNotFound
// when the name is neither loaded nor on disk. Drop holds the per-name
// slot and the checkpoint mutex, so neither a cold load nor a checkpoint
// sweep can resurrect the files afterwards.
func (c *Catalog) Drop(name string) error {
	if !nameRE.MatchString(name) {
		return ErrBadName
	}
	c.claimSlot(name, false) // loaded or not, Drop needs the slot
	defer c.releaseName(name)
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()

	c.mu.Lock()
	col, loaded := c.cols[name]
	delete(c.cols, name)
	c.mu.Unlock()
	if col != nil {
		col.Close()
	}
	path := c.path(name)
	_, statErr := os.Stat(path)
	if statErr != nil && !loaded {
		return ErrNotFound
	}
	_ = os.RemoveAll(path + ".migrating") // interrupted-migration staging, if any
	return os.RemoveAll(path)
}

// Names lists every collection the catalog knows — loaded or still on
// disk — in sorted order.
func (c *Catalog) Names() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	seen := make(map[string]bool, len(c.cols))
	for name := range c.cols {
		seen[name] = true
	}
	c.mu.RUnlock()
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), collectionExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), collectionExt)
		if nameRE.MatchString(name) {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Loaded returns the collections currently resident in memory, keyed by
// name — the set the maintenance loop sweeps (unloaded collections have
// no tombstones to compact and an already-quiet WAL).
func (c *Catalog) Loaded() map[string]*bond.Collection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*bond.Collection, len(c.cols))
	for name, col := range c.cols {
		out[name] = col
	}
	return out
}

// CheckpointLoaded checkpoints every loaded collection whose current WAL
// holds at least minWALBytes (minWALBytes <= 0 checkpoints every
// collection with any logged record — the shutdown sweep), truncating
// their logs. It returns how many checkpoints were written; the first
// error is returned after attempting the rest. Durability does not
// depend on it — acknowledged writes are already in the WAL — it only
// bounds recovery replay time.
func (c *Catalog) CheckpointLoaded(minWALBytes int64) (int, error) {
	c.ckptMu.Lock()
	defer c.ckptMu.Unlock()
	loaded := c.Loaded()
	names := make([]string, 0, len(loaded))
	for name := range loaded {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic sweep order for logs and tests

	var firstErr error
	written := 0
	for _, name := range names {
		col := loaded[name]
		ws, ok := col.WALStats()
		if !ok || ws.WALRecords == 0 || (minWALBytes > 0 && ws.WALBytes < minWALBytes) {
			continue
		}
		if err := col.Checkpoint(); err != nil {
			if errors.Is(err, bond.ErrClosed) {
				continue // dropped concurrently
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("server: checkpoint %q: %w", name, err)
			}
			continue
		}
		written++
	}
	return written, firstErr
}

// CloseAll checkpoints nothing but closes every loaded collection's WAL
// (fsyncing it), releasing the catalog for process exit.
func (c *Catalog) CloseAll() error {
	c.mu.Lock()
	cols := c.cols
	c.cols = map[string]*bond.Collection{}
	c.mu.Unlock()
	var firstErr error
	for name, col := range cols {
		if err := col.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("server: close %q: %w", name, err)
		}
	}
	return firstErr
}

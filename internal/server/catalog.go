// Package server implements bondd's serving layer: a concurrent
// multi-collection catalog over bond.Collection, an HTTP JSON API that
// maps onto QuerySpec/QueryBatch, a background maintenance loop
// (threshold-triggered compaction plus snapshot persistence), and bounded
// in-flight query admission.
//
// The package owns no search logic: every request lowers onto the public
// bond API (Query, QueryBatch, QueryExplain, Add/AddBatch/Delete,
// Save/Open), so answers served over HTTP are byte-identical to
// in-process calls and the collection's RWMutex contract is the only
// synchronization the data path needs. The catalog adds one more lock
// above it — a map-level RWMutex serializing create/open/drop against
// lookups — and the maintenance loop runs entirely through exported
// Collection methods, so it is just another writer.
package server

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"bond"
)

// collectionExt is the on-disk suffix of a catalog collection; the file
// body is the checksummed segmented format Collection.Save writes.
const collectionExt = ".bond"

// nameRE constrains collection names to one safe path segment: no
// separators, no dot-prefixes, nothing the filesystem or URL router could
// reinterpret.
var nameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// Errors the catalog returns; the HTTP layer maps them onto status codes.
var (
	ErrNotFound = fmt.Errorf("server: collection not found")
	ErrBadName  = fmt.Errorf("server: invalid collection name (want [a-zA-Z0-9][a-zA-Z0-9_-]{0,63})")
	ErrBadShape = fmt.Errorf("server: invalid collection shape")
	ErrExists   = fmt.Errorf("server: collection exists with different shape")
)

// Catalog is a concurrent, lazily loaded set of named collections backed
// by one data directory. Lookups take a read lock on the name map;
// create, first-touch load, and drop serialize on the write lock. The
// collections themselves carry their own RWMutex, so catalog lock hold
// times stay off the query path: a Get is one map read in steady state.
type Catalog struct {
	dir     string
	segSize int // default seal threshold for new collections (0 = library default)

	mu    sync.RWMutex
	cols  map[string]*bond.Collection
	dirty map[string]bool // collections with unpersisted writes

	// saveMu serializes snapshot writes (FlushDirty) against each other
	// and against Drop. Two concurrent saves of one collection would
	// interleave in the same <name>.bond.tmp file, and a save finishing
	// after a Drop would rename the dropped collection back into
	// existence; saveMu makes both impossible. It is never held together
	// with mu writes from the same goroutine except in the saveMu → mu
	// order.
	saveMu sync.Mutex
}

// NewCatalog opens a catalog over dir, creating the directory if needed.
// Collections already on disk are not loaded eagerly; the first Get or
// Create that names one loads it.
func NewCatalog(dir string, segSize int) (*Catalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Catalog{
		dir:     dir,
		segSize: segSize,
		cols:    map[string]*bond.Collection{},
		dirty:   map[string]bool{},
	}, nil
}

func (c *Catalog) path(name string) string {
	return filepath.Join(c.dir, name+collectionExt)
}

// Get returns the named collection, loading it from disk on first touch.
// It returns ErrNotFound when the name is neither loaded nor on disk.
// The disk load runs outside the catalog lock, so one slow cold open
// does not stall requests to already-loaded collections; concurrent
// first touches of the same name may both read the file, and the first
// to insert wins.
func (c *Catalog) Get(name string) (*bond.Collection, error) {
	if !nameRE.MatchString(name) {
		return nil, ErrBadName
	}
	c.mu.RLock()
	col := c.cols[name]
	c.mu.RUnlock()
	if col != nil {
		return col, nil
	}
	col, err := bond.Open(c.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if winner := c.cols[name]; winner != nil { // lost the load race: reuse the winner's
		return winner, nil
	}
	// Re-stat under the lock: a Drop while we were loading removed the
	// file (Drop holds the lock for its os.Remove), and inserting our
	// stale copy would resurrect the dropped collection in memory.
	if _, statErr := os.Stat(c.path(name)); statErr != nil {
		return nil, ErrNotFound
	}
	c.cols[name] = col
	return col, nil
}

// Create creates the named collection with the given dimensionality (and
// optional segment size; 0 uses the catalog default) and persists an
// empty snapshot so the name survives a restart. Creating a name that
// already exists is idempotent when the dimensionality matches — the
// existing collection is returned with created=false — and ErrExists when
// it does not.
func (c *Catalog) Create(name string, dims, segSize int) (col *bond.Collection, created bool, err error) {
	if !nameRE.MatchString(name) {
		return nil, false, ErrBadName
	}
	if dims < 1 {
		return nil, false, fmt.Errorf("%w: dims must be >= 1, got %d", ErrBadShape, dims)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	existing := c.cols[name]
	if existing == nil {
		if _, statErr := os.Stat(c.path(name)); statErr == nil {
			existing, err = bond.Open(c.path(name))
			if err != nil {
				return nil, false, err
			}
			c.cols[name] = existing
		}
	}
	if existing != nil {
		if existing.Dims() != dims {
			return nil, false, fmt.Errorf("%w: %q has %d dims, requested %d",
				ErrExists, name, existing.Dims(), dims)
		}
		return existing, false, nil
	}
	if segSize <= 0 {
		segSize = c.segSize
	}
	col = bond.NewSegmented(dims, segSize)
	if err := col.Save(c.path(name)); err != nil {
		return nil, false, err
	}
	c.cols[name] = col
	return col, true, nil
}

// Drop removes the named collection from memory and deletes its file. It
// returns ErrNotFound when the name is neither loaded nor on disk. Drop
// waits for any in-flight snapshot flush, so a save racing the drop
// cannot rename the collection's file back into existence afterwards.
func (c *Catalog) Drop(name string) error {
	if !nameRE.MatchString(name) {
		return ErrBadName
	}
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	_, loaded := c.cols[name]
	delete(c.cols, name)
	delete(c.dirty, name)
	err := os.Remove(c.path(name))
	if os.IsNotExist(err) {
		if !loaded {
			return ErrNotFound
		}
		return nil
	}
	return err
}

// Names lists every collection the catalog knows — loaded or still on
// disk — in sorted order.
func (c *Catalog) Names() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	seen := make(map[string]bool, len(c.cols))
	for name := range c.cols {
		seen[name] = true
	}
	c.mu.RUnlock()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), collectionExt) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), collectionExt)
		if nameRE.MatchString(name) {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Loaded returns the collections currently resident in memory, keyed by
// name — the set the maintenance loop sweeps (unloaded collections have
// no tombstones to compact and nothing unpersisted).
func (c *Catalog) Loaded() map[string]*bond.Collection {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*bond.Collection, len(c.cols))
	for name, col := range c.cols {
		out[name] = col
	}
	return out
}

// MarkDirty records that the named collection has writes its on-disk
// snapshot does not reflect; the next FlushDirty persists it.
func (c *Catalog) MarkDirty(name string) {
	c.mu.Lock()
	c.dirty[name] = true
	c.mu.Unlock()
}

// FlushDirty persists every dirty collection (Collection.Save takes the
// collection's read lock, so searches proceed while snapshots write) and
// returns how many were written. A collection whose save fails stays
// dirty; the first error is returned after attempting the rest.
// Concurrent FlushDirty calls serialize on saveMu — two writers in the
// same <name>.bond.tmp would interleave into a corrupt snapshot.
func (c *Catalog) FlushDirty() (int, error) {
	c.saveMu.Lock()
	defer c.saveMu.Unlock()
	c.mu.Lock()
	pending := make([]string, 0, len(c.dirty))
	for name := range c.dirty {
		if c.cols[name] != nil {
			pending = append(pending, name)
		}
		delete(c.dirty, name)
	}
	c.mu.Unlock()
	sort.Strings(pending) // deterministic flush order for logs and tests

	var firstErr error
	written := 0
	for _, name := range pending {
		c.mu.RLock()
		col := c.cols[name]
		c.mu.RUnlock()
		if col == nil { // dropped between collect and save
			continue
		}
		if err := col.Save(c.path(name)); err != nil {
			c.MarkDirty(name)
			if firstErr == nil {
				firstErr = fmt.Errorf("server: snapshot %q: %w", name, err)
			}
			continue
		}
		written++
	}
	return written, firstErr
}

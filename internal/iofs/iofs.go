// Package iofs is the storage layer's injectable I/O seam: the small
// filesystem surface the durability code (write-ahead log, incremental
// checkpoints) performs all its I/O through. Production code uses OS,
// which maps one-to-one onto the os package; tests substitute in-memory
// and fault-injecting implementations (package crashfs) to drive the
// recovery protocol across every possible crash point without touching a
// real disk.
//
// The interface is deliberately minimal — sequential writes, whole-file
// reads, atomic rename — because those are the only primitives the
// recovery protocol's correctness argument relies on. Rename is assumed
// atomic (it is on every POSIX filesystem bondd targets); a write is
// assumed durable only after Sync returns.
package iofs

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"bond/internal/mmap"
)

// File is a sequentially writable file handle. Data written is durable
// against power loss only after Sync returns; a process crash (without
// power loss) preserves completed writes regardless.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage.
	Sync() error
	// Close releases the handle without an implied Sync.
	Close() error
}

// FS is the filesystem surface the durability layer writes through.
// Paths are opaque slash-joined strings; implementations must return
// errors satisfying errors.Is(err, os.ErrNotExist) for missing paths so
// callers can distinguish absence from corruption.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it when absent.
	Append(name string) (File, error)
	// ReadFile returns the full content of name.
	ReadFile(name string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file (or empty directory).
	Remove(name string) error
	// RemoveAll deletes name and everything below it; absent is not an
	// error.
	RemoveAll(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// ReadDir lists the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// Stat describes name.
	Stat(name string) (FileInfo, error)
	// SyncDir makes dir's entries (file creations, renames, removals)
	// durable. On POSIX, fsyncing a file makes its *data* durable but not
	// its directory entry; without this, a freshly created WAL or a
	// renamed manifest can vanish wholesale in a power loss even though
	// its bytes were fsynced.
	SyncDir(dir string) error
}

// FileInfo is the subset of os.FileInfo the durability layer consults.
type FileInfo struct {
	Size  int64
	IsDir bool
}

// RangeFS is the optional windowed-read extension of FS: filesystems
// that can serve a byte range without materializing the whole file
// implement it (OS via pread, MemFS by slicing under its lock), and
// ReadFileRange type-asserts for it. The replication stream reads
// bounded windows of potentially large WAL files on every follower
// poll; without this seam each poll would be O(file size) in I/O and
// allocation.
type RangeFS interface {
	// ReadFileRange returns up to n bytes of name starting at byte
	// offset off. A result shorter than n (possibly empty) means the
	// file ends before off+n; an offset at or past the end is not an
	// error. n must be non-negative.
	ReadFileRange(name string, off, n int64) ([]byte, error)
}

// ReadFileRange reads the window [off, off+n) of name through fs,
// using the RangeFS fast path when available and falling back to a
// whole-file read otherwise (the fault-injecting test filesystems wrap
// FS without the extension and take the fallback, so both paths keep
// identical semantics).
func ReadFileRange(fs FS, name string, off, n int64) ([]byte, error) {
	if n <= 0 {
		return nil, nil
	}
	if rfs, ok := fs.(RangeFS); ok {
		return rfs.ReadFileRange(name, off, n)
	}
	data, err := fs.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if off >= int64(len(data)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(data)) {
		end = int64(len(data))
	}
	return append([]byte(nil), data[off:end]...), nil
}

// MapFS is the optional mapping extension of FS: filesystems that can
// memory-map a file implement it (the real OS filesystem, on platforms
// package mmap supports), and the segment loader type-asserts for it.
// Filesystems that cannot — MemFS, the crash-injecting wrappers, or OS
// on an unsupported platform — simply don't, and the loader falls back
// to ReadFile-into-heap, so every recovery path is exercised identically
// on both backings.
type MapFS interface {
	// MapFile maps name read-only and returns the mapping, which aliases
	// the file's pages until UnmapFile releases it. An empty file maps to
	// a nil slice.
	MapFile(name string) ([]byte, error)
	// UnmapFile releases a mapping returned by MapFile.
	UnmapFile(b []byte) error
}

// OS is the production FS: a direct mapping onto the os package.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// Create implements FS.
func (OS) Create(name string) (File, error) { return os.Create(name) }

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// ReadFile implements FS.
func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// ReadFileRange implements RangeFS with one pread-sized allocation.
func (OS) ReadFileRange(name string, off, n int64) ([]byte, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	m, err := f.ReadAt(buf, off)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return buf[:m], nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// RemoveAll implements FS.
func (OS) RemoveAll(name string) error { return os.RemoveAll(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names, nil
}

// Stat implements FS.
func (OS) Stat(name string) (FileInfo, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Size: fi.Size(), IsDir: fi.IsDir()}, nil
}

// MapFile implements MapFS via package mmap. On platforms without mmap
// support it returns mmap.ErrUnsupported and callers fall back to
// ReadFile.
func (OS) MapFile(name string) ([]byte, error) {
	if !mmap.Supported() {
		return nil, mmap.ErrUnsupported
	}
	return mmap.Map(name)
}

// UnmapFile implements MapFS.
func (OS) UnmapFile(b []byte) error { return mmap.Unmap(b) }

// SyncDir implements FS: open the directory and fsync it.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteFileAtomic writes name through a temporary sibling: create
// name.tmp, stream the content, fsync, close, rename over name. After a
// crash at any point the old content of name is either fully intact or
// fully replaced — never a torn mixture — which is the commit primitive
// the manifest protocol builds on. The fsync before the rename is what
// makes the guarantee hold under power loss, not just process death.
func WriteFileAtomic(fs FS, name string, write func(io.Writer) error) error {
	tmp := name + ".tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	fail := func(err error) error {
		f.Close()
		_ = fs.Remove(tmp)
		return fmt.Errorf("iofs: write %s: %w", name, err)
	}
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("iofs: write %s: %w", name, err)
	}
	if err := fs.Rename(tmp, name); err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("iofs: write %s: %w", name, err)
	}
	// Make the rename itself durable: the file's bytes are synced, but
	// its directory entry is not until the directory is.
	if err := fs.SyncDir(filepath.Dir(name)); err != nil {
		return fmt.Errorf("iofs: write %s: %w", name, err)
	}
	return nil
}

package iofs

import (
	"fmt"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS for tests: fast, hermetic, and instrumented.
// Beyond file content it tracks, per file, how many bytes have been
// "fsynced" (everything up to the last Sync on a handle) and how many
// times the file has been created — the counters the durability tests
// use to prove sealed-segment files are written exactly once and that
// the manifest protocol syncs before it renames.
//
// Paths are cleaned with path.Clean; a parent directory is implied by
// the files under it (MkdirAll also registers explicit directories, so
// Stat on a fresh empty directory works).
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	creates map[string]int
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed durable across a power loss
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   map[string]*memFile{},
		dirs:    map[string]bool{"/": true, ".": true},
		creates: map[string]int{},
	}
}

func clean(name string) string { return path.Clean(name) }

func notExist(op, name string) error {
	return fmt.Errorf("%s %s: %w", op, name, os.ErrNotExist)
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.mkdirAllLocked(clean(dir))
	return nil
}

func (m *MemFS) mkdirAllLocked(dir string) {
	for d := dir; d != "/" && d != "." && d != ""; d = path.Dir(d) {
		m.dirs[d] = true
	}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	m.mkdirAllLocked(path.Dir(name))
	m.files[name] = &memFile{}
	m.creates[name]++
	return &memHandle{fs: m, name: name}, nil
}

// Append implements FS.
func (m *MemFS) Append(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if m.files[name] == nil {
		m.mkdirAllLocked(path.Dir(name))
		m.files[name] = &memFile{}
		m.creates[name]++
	}
	return &memHandle{fs: m, name: name}, nil
}

// ReadFile implements FS.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[clean(name)]
	if f == nil {
		return nil, notExist("read", name)
	}
	return append([]byte(nil), f.data...), nil
}

// ReadFileRange implements RangeFS.
func (m *MemFS) ReadFileRange(name string, off, n int64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[clean(name)]
	if f == nil {
		return nil, notExist("read", name)
	}
	if off >= int64(len(f.data)) {
		return nil, nil
	}
	end := off + n
	if end > int64(len(f.data)) {
		end = int64(len(f.data))
	}
	return append([]byte(nil), f.data[off:end]...), nil
}

// Rename implements FS. Renaming a directory moves everything below it.
func (m *MemFS) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldpath, newpath = clean(oldpath), clean(newpath)
	if f := m.files[oldpath]; f != nil {
		delete(m.files, oldpath)
		m.mkdirAllLocked(path.Dir(newpath))
		m.files[newpath] = f
		// A rename materializes content at the target path: count it as a
		// creation there, so atomic tmp+rename writes show up in
		// CreateCount under the name callers actually read.
		m.creates[newpath]++
		return nil
	}
	if !m.dirs[oldpath] {
		return notExist("rename", oldpath)
	}
	prefix := oldpath + "/"
	for name, f := range m.files {
		if strings.HasPrefix(name, prefix) {
			delete(m.files, name)
			m.files[newpath+"/"+name[len(prefix):]] = f
		}
	}
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
			m.dirs[newpath+"/"+d[len(prefix):]] = true
		}
	}
	delete(m.dirs, oldpath)
	m.mkdirAllLocked(newpath)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if m.files[name] != nil {
		delete(m.files, name)
		return nil
	}
	if m.dirs[name] {
		delete(m.dirs, name)
		return nil
	}
	return notExist("remove", name)
}

// RemoveAll implements FS.
func (m *MemFS) RemoveAll(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	delete(m.files, name)
	delete(m.dirs, name)
	prefix := name + "/"
	for n := range m.files {
		if strings.HasPrefix(n, prefix) {
			delete(m.files, n)
		}
	}
	for d := range m.dirs {
		if strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[clean(name)]
	if f == nil {
		return notExist("truncate", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("truncate %s: bad size %d", name, size)
	}
	f.data = f.data[:size]
	if f.synced > int(size) {
		f.synced = int(size)
	}
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dir = clean(dir)
	seen := map[string]bool{}
	prefix := dir + "/"
	if dir == "." || dir == "/" {
		prefix = ""
	}
	found := m.dirs[dir]
	for name := range m.files {
		if !strings.HasPrefix(name, prefix) {
			continue
		}
		rest := name[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
		found = true
	}
	for d := range m.dirs {
		if !strings.HasPrefix(d, prefix) || d == dir {
			continue
		}
		rest := d[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			rest = rest[:i]
		}
		seen[rest] = true
	}
	if !found {
		return nil, notExist("readdir", dir)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Stat implements FS.
func (m *MemFS) Stat(name string) (FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	name = clean(name)
	if f := m.files[name]; f != nil {
		return FileInfo{Size: int64(len(f.data))}, nil
	}
	if m.dirs[name] {
		return FileInfo{IsDir: true}, nil
	}
	// A directory implied by files under it.
	prefix := name + "/"
	for n := range m.files {
		if strings.HasPrefix(n, prefix) {
			return FileInfo{IsDir: true}, nil
		}
	}
	return FileInfo{}, notExist("stat", name)
}

// SyncDir implements FS. MemFS models metadata operations as durable
// the moment they execute (the crash-injection layer charges them
// against its budget instead), so this is a no-op.
func (m *MemFS) SyncDir(string) error { return nil }

// CreateCount reports how many times name has been created (Create, or
// Append on a missing file) over the filesystem's lifetime — the
// write-once instrumentation for sealed segment files.
func (m *MemFS) CreateCount(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.creates[clean(name)]
}

// Clone returns an independent deep copy of the filesystem. When
// powerLoss is set, every file is truncated to its last fsynced length,
// modeling the page cache dying with the machine; without it the copy
// models a process crash, where completed writes survive in the page
// cache.
func (m *MemFS) Clone(powerLoss bool) *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, f := range m.files {
		data := f.data
		if powerLoss {
			data = data[:f.synced]
		}
		c.files[name] = &memFile{data: append([]byte(nil), data...), synced: f.synced}
		if powerLoss && c.files[name].synced > len(c.files[name].data) {
			c.files[name].synced = len(c.files[name].data)
		}
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// syncFile marks every currently written byte of name durable.
func (m *MemFS) syncFile(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f := m.files[name]; f != nil {
		f.synced = len(f.data)
	}
}

// writeFile appends p to name, returning the new length.
func (m *MemFS) writeFile(name string, p []byte) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return 0, notExist("write", name)
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

type memHandle struct {
	fs   *MemFS
	name string
}

func (h *memHandle) Write(p []byte) (int, error) { return h.fs.writeFile(h.name, p) }
func (h *memHandle) Sync() error                 { h.fs.syncFile(h.name); return nil }
func (h *memHandle) Close() error                { return nil }

package repl

import (
	"errors"
	"reflect"
	"testing"

	"bond/internal/vstore"
	"bond/internal/wal"
)

// frames builds a valid stream of encoded records.
func frames(recs ...wal.Record) []byte {
	var out []byte
	for _, rec := range recs {
		out = append(out, wal.EncodeFrame(nil, rec)...)
	}
	return out
}

func testRecords() []wal.Record {
	return []wal.Record{
		{Type: wal.TypeAdd, Vectors: [][]float64{{1, 2, 3}}},
		{Type: wal.TypeAddBatch, Vectors: [][]float64{{4, 5, 6}, {7, 8, 9}}},
		{Type: wal.TypeDelete, ID: 1},
		{Type: wal.TypeCompact, Ratio: 0.25},
		{Type: wal.TypeSeal},
		{Type: wal.TypeRecluster, K: 2, Seed: -7},
	}
}

func TestDecodeFramesRoundTrip(t *testing.T) {
	want := testRecords()
	data := frames(want...)
	recs, consumed, err := DecodeFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if consumed != int64(len(data)) {
		t.Fatalf("consumed %d of %d", consumed, len(data))
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("round trip diverged:\n got %+v\nwant %+v", recs, want)
	}
}

// TestDecodeFramesTorn: every truncation of a valid stream decodes the
// complete frames and reports the torn tail as un-consumed, never as an
// error — the next chunk completes it.
func TestDecodeFramesTorn(t *testing.T) {
	want := testRecords()
	data := frames(want...)
	for cut := 0; cut <= len(data); cut++ {
		recs, consumed, err := DecodeFrames(data[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if consumed > int64(cut) {
			t.Fatalf("cut %d: consumed %d past the cut", cut, consumed)
		}
		if len(recs) > 0 && !reflect.DeepEqual(recs, want[:len(recs)]) {
			t.Fatalf("cut %d: prefix records diverged", cut)
		}
		// Whatever was consumed must re-decode identically and cleanly.
		again, c2, err := DecodeFrames(data[:consumed])
		if err != nil || c2 != consumed || !reflect.DeepEqual(again, recs) {
			t.Fatalf("cut %d: consumed prefix is not clean (%v)", cut, err)
		}
	}
}

// TestDecodeFramesCorrupt: every single-bit-flipped byte either still
// torn-waits (flips inside a length field can make a frame look
// incomplete) or fails closed with wal.ErrCorrupt — and never yields a
// record beyond the corruption point.
func TestDecodeFramesCorrupt(t *testing.T) {
	want := testRecords()
	data := frames(want...)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		recs, consumed, err := DecodeFrames(mut)
		if consumed > int64(len(mut)) {
			t.Fatalf("flip %d: consumed %d of %d", i, consumed, len(mut))
		}
		if err != nil && !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("flip %d: non-corrupt error %v", i, err)
		}
		if err == nil && consumed == int64(len(mut)) && len(recs) != len(want) {
			t.Fatalf("flip %d: full consume with %d records", i, len(recs))
		}
		// The consumed prefix must always re-decode cleanly.
		_, c2, err2 := DecodeFrames(mut[:consumed])
		if err2 != nil || c2 != consumed {
			t.Fatalf("flip %d: consumed prefix not clean: %v", i, err2)
		}
	}
}

func TestPositionBefore(t *testing.T) {
	cases := []struct {
		p, q Position
		want bool
	}{
		{Position{0, 16}, Position{0, 17}, true},
		{Position{0, 17}, Position{0, 16}, false},
		{Position{0, 99}, Position{1, 16}, true},
		{Position{1, 16}, Position{0, 99}, false},
		{Position{2, 40}, Position{2, 40}, false},
	}
	for _, c := range cases {
		if got := c.p.Before(c.q); got != c.want {
			t.Errorf("%v Before %v = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestChunkEnd(t *testing.T) {
	ch := Chunk{Seq: 3, From: 100, Data: make([]byte, 40)}
	if got := ch.End(); got != (Position{Seq: 3, Off: 140}) {
		t.Fatalf("End = %v", got)
	}
}

// validSnapshot builds a minimal structurally valid snapshot.
func validSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	m := &vstore.Manifest{Dims: 3, SegSize: 5, NextSegID: 2, WALSeq: 4, ActiveLen: 1,
		Segments: []vstore.ManifestSegment{{ID: 1, Len: 5, Format: 2}}}
	return &Snapshot{
		Position: Position{Seq: 4, Off: wal.HeaderLen},
		Files: map[string][]byte{
			vstore.ManifestName:      vstore.EncodeManifest(m),
			vstore.SegFileName(1):    {1, 2, 3},
			vstore.ActiveFileName(4): {4, 5, 6},
		},
	}
}

func TestSnapshotValidate(t *testing.T) {
	if err := validSnapshot(t).Validate(); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	s := validSnapshot(t)
	delete(s.Files, vstore.ManifestName)
	if err := s.Validate(); err == nil {
		t.Fatal("missing manifest accepted")
	}

	s = validSnapshot(t)
	s.Files[vstore.ManifestName] = []byte("garbage")
	if err := s.Validate(); err == nil {
		t.Fatal("corrupt manifest accepted")
	}

	// A stale snapshot position paired with a newer manifest generation
	// must be rejected whole — the follower would tail the wrong log.
	s = validSnapshot(t)
	s.Position.Seq = 3
	if err := s.Validate(); err == nil {
		t.Fatal("stale position accepted")
	}
	s = validSnapshot(t)
	s.Position.Off = wal.HeaderLen + 8
	if err := s.Validate(); err == nil {
		t.Fatal("mid-log position accepted")
	}

	s = validSnapshot(t)
	delete(s.Files, vstore.SegFileName(1))
	if err := s.Validate(); err == nil {
		t.Fatal("missing segment accepted")
	}

	s = validSnapshot(t)
	delete(s.Files, vstore.ActiveFileName(4))
	if err := s.Validate(); err == nil {
		t.Fatal("missing active checkpoint accepted")
	}

	s = validSnapshot(t)
	s.Files["stray.bin"] = []byte{9}
	if err := s.Validate(); err == nil {
		t.Fatal("unexpected file accepted")
	}

	s = validSnapshot(t)
	s.Files[vstore.SegFileName(1)] = nil
	if err := s.Validate(); err == nil {
		t.Fatal("empty file accepted")
	}
}

// Package repl defines the replication wire protocol: the types and
// validation for shipping a collection's CRC-framed WAL from a leader
// to followers, plus checkpoint snapshots for follower bootstrap.
//
// The protocol is deliberately dumb — a follower mirrors the leader's
// log bytes verbatim into its own wal-<seq>.log files and applies each
// record through the same replay path recovery uses, so follower state
// is byte-identical to the leader at every applied offset. A stream
// position is therefore just (WAL file sequence, byte offset), and
// catch-up after any interruption resumes from whatever position the
// follower's own recovery reports.
//
// Everything here fails closed: a frame that does not validate is never
// returned as applicable, a snapshot that does not validate is rejected
// whole before a byte of it is written.
package repl

import (
	"fmt"

	"bond/internal/vstore"
	"bond/internal/wal"
)

// Position identifies a point in a collection's replicated WAL stream:
// the WAL file sequence number and the byte offset within that file.
// Offset wal.HeaderLen is the start of an empty log.
type Position struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// Before reports whether p is strictly earlier in the stream than q.
func (p Position) Before(q Position) bool {
	if p.Seq != q.Seq {
		return p.Seq < q.Seq
	}
	return p.Off < q.Off
}

func (p Position) String() string {
	return fmt.Sprintf("wal-%d@%d", p.Seq, p.Off)
}

// Chunk is one streamed slice of a leader's WAL, as served by
// GET /collections/{name}/wal.
type Chunk struct {
	// Seq and From echo the requested position; Data holds the raw
	// CRC-framed record bytes starting there. The leader serves only
	// acknowledged bytes, but a chunk may end mid-frame when a frame
	// straddles the size cap: the consumer keeps the torn tail pending
	// (DecodeFrames treats it as incomplete, not corrupt) and the next
	// chunk, requested from the last complete frame, re-serves it.
	Seq  uint64 `json:"seq"`
	From int64  `json:"from"`
	Data []byte `json:"data,omitempty"`
	// Rotated reports that wal-<Seq> is complete: once Data is consumed
	// the follower has the whole file and should checkpoint-rotate to
	// Seq+1, mirroring the rotation the leader performed.
	Rotated bool `json:"rotated,omitempty"`
	// Leader is the leader's current live position — the follower's lag
	// gauge is the stream distance from its own position to this.
	Leader Position `json:"leader"`
}

// End returns the stream position just past this chunk's data.
func (c Chunk) End() Position {
	return Position{Seq: c.Seq, Off: c.From + int64(len(c.Data))}
}

// DecodeFrames parses a chunk's raw data into records. consumed is the
// byte count of complete, valid frames from the front of data; recs are
// their decoded records, frame-aligned with data[:consumed].
//
// A torn tail — data ending mid-frame — is not an error: err is nil and
// the next chunk completes the frame. Corruption (a frame that fails
// CRC or structural validation) returns the records before it together
// with a non-nil error wrapping wal.ErrCorrupt: the decoder fails
// closed, and a corrupt record is never returned as applicable.
func DecodeFrames(data []byte) (recs []wal.Record, consumed int64, err error) {
	for consumed < int64(len(data)) {
		rec, n, perr := wal.ParseFrame(data[consumed:])
		if perr != nil {
			if wal.IsTorn(perr) {
				return recs, consumed, nil
			}
			return recs, consumed, perr
		}
		recs = append(recs, rec)
		consumed += n
	}
	return recs, consumed, nil
}

// Snapshot is a leader checkpoint packaged for follower bootstrap: the
// exact bytes of the durable directory's files at a checkpoint
// boundary, plus the stream position that boundary corresponds to (the
// start of the fresh WAL the checkpoint rotated to). A follower
// materializes the files verbatim and tails the stream from Position.
type Snapshot struct {
	Position Position          `json:"position"`
	Files    map[string][]byte `json:"files"`
}

// Validate structurally checks a snapshot before any byte of it is
// written to a follower's disk: the manifest must decode, the file set
// must be exactly what the manifest names, and the position must be the
// start of the manifest's WAL generation. A snapshot that does not
// validate is rejected whole — a stale or truncated snapshot must never
// leave a follower with a directory recovery would misread.
func (s *Snapshot) Validate() error {
	raw, ok := s.Files[vstore.ManifestName]
	if !ok {
		return fmt.Errorf("repl: snapshot missing %s", vstore.ManifestName)
	}
	m, err := vstore.DecodeManifest(raw)
	if err != nil {
		return fmt.Errorf("repl: snapshot manifest: %w", err)
	}
	if s.Position.Seq != m.WALSeq || s.Position.Off != wal.HeaderLen {
		return fmt.Errorf("repl: snapshot position %s does not start manifest generation wal-%d", s.Position, m.WALSeq)
	}
	want := map[string]bool{vstore.ManifestName: true}
	for _, seg := range m.Segments {
		name := vstore.SegFileName(seg.ID)
		if _, ok := s.Files[name]; !ok {
			return fmt.Errorf("repl: snapshot missing segment %s", name)
		}
		want[name] = true
	}
	active := vstore.ActiveFileName(m.WALSeq)
	if _, ok := s.Files[active]; !ok {
		return fmt.Errorf("repl: snapshot missing %s", active)
	}
	want[active] = true
	for name := range s.Files {
		if !want[name] {
			return fmt.Errorf("repl: snapshot carries unexpected file %q", name)
		}
		if len(s.Files[name]) == 0 {
			return fmt.Errorf("repl: snapshot file %q is empty", name)
		}
	}
	return nil
}

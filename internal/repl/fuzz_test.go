package repl

import (
	"errors"
	"reflect"
	"testing"

	"bond/internal/wal"
)

// FuzzReplStream fuzzes the replication stream decoder with arbitrary
// byte soup — torn frames, duplicated frames, CRC flips, garbage — and
// asserts the decoder's safety contract:
//
//   - never panics,
//   - consumed stays within [0, len(data)] and is frame-aligned: the
//     consumed prefix re-decodes cleanly to the same records,
//   - any non-nil error is wal.ErrCorrupt (fail closed, never a torn
//     tail misreported as corruption),
//   - decoding is prefix-stable: feeding the stream one torn cut at a
//     time never yields records a whole-buffer decode would not.
func FuzzReplStream(f *testing.F) {
	valid := func(recs ...wal.Record) []byte {
		var out []byte
		for _, rec := range recs {
			out = append(out, wal.EncodeFrame(nil, rec)...)
		}
		return out
	}
	stream := valid(
		wal.Record{Type: wal.TypeAdd, Vectors: [][]float64{{1, 2, 3}}},
		wal.Record{Type: wal.TypeAddBatch, Vectors: [][]float64{{4, 5, 6}, {7, 8, 9}}},
		wal.Record{Type: wal.TypeDelete, ID: 1},
		wal.Record{Type: wal.TypeCompact, Ratio: 0.5},
		wal.Record{Type: wal.TypeSeal},
		wal.Record{Type: wal.TypeRecluster, K: 2, Seed: 42},
	)
	f.Add([]byte(nil))
	f.Add(stream)
	f.Add(stream[:len(stream)-3]) // torn tail
	f.Add(stream[:7])             // torn header
	// Duplicated frames: replayed chunk overlap must decode, dedup is
	// the applier's job.
	f.Add(append(append([]byte(nil), stream...), stream...))
	// CRC flip in the first frame's payload.
	flipped := append([]byte(nil), stream...)
	flipped[10] ^= 0xff
	f.Add(flipped)
	// Length field smashed to a huge value: looks torn, must not allocate
	// or loop badly.
	huge := append([]byte(nil), stream...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0x7f
	f.Add(huge)
	f.Add([]byte("not a frame at all, just prose"))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, consumed, err := DecodeFrames(data)
		if consumed < 0 || consumed > int64(len(data)) {
			t.Fatalf("consumed %d outside [0,%d]", consumed, len(data))
		}
		if err != nil && !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("non-corrupt error: %v", err)
		}
		again, c2, err2 := DecodeFrames(data[:consumed])
		if err2 != nil {
			t.Fatalf("consumed prefix dirty: %v", err2)
		}
		if c2 != consumed || !reflect.DeepEqual(again, recs) {
			t.Fatalf("consumed prefix unstable: %d vs %d records %d vs %d",
				c2, consumed, len(again), len(recs))
		}
		// Incremental decode of every prefix must agree with the whole-
		// buffer decode on the records it can see.
		for cut := 0; cut <= len(data); cut += 1 + len(data)/16 {
			pr, pc, perr := DecodeFrames(data[:cut])
			if pc > int64(cut) {
				t.Fatalf("cut %d: consumed %d past cut", cut, pc)
			}
			if perr == nil && pc <= consumed && len(pr) > 0 && !reflect.DeepEqual(pr, recs[:len(pr)]) {
				t.Fatalf("cut %d: prefix records diverge from full decode", cut)
			}
		}
	})
}

package core

import (
	"math/rand"
	"testing"

	"bond/internal/bitmap"
	"bond/internal/dataset"
	"bond/internal/quant"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// viewsOf exposes a segmented store to the search layer, synopses included.
func viewsOf(s *vstore.SegStore) []SegmentView {
	segs, bases := s.Segments(), s.Bases()
	views := make([]SegmentView, len(segs))
	for i := range segs {
		views[i] = SegmentView{Src: segs[i], Base: bases[i], DimRange: segs[i].DimRange}
	}
	return views
}

// identicalResults demands byte-identical neighbor sets: same ids, same
// float64 scores, same order. The segmented engine accumulates each
// candidate's score over the same dimension sequence as the flat engine,
// so not even last-ulp drift is tolerated.
func identicalResults(t *testing.T, label string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d = {%d %v}, want {%d %v}",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

// segFixture builds the same collection twice: flat and segmented (with a
// few deletes sprinkled in so delete handling is part of every oracle).
func segFixture(n, dims, segSize int, seed int64) (*vstore.Store, *vstore.SegStore) {
	vs := dataset.CorelLike(n, dims, seed)
	flat := vstore.FromVectors(vs)
	seg := vstore.SegmentedFromVectors(vs, segSize)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n/20; i++ {
		id := rng.Intn(n)
		flat.Delete(id)
		seg.Delete(id)
	}
	return flat, seg
}

func TestSearchSegmentsMatchesFlatAllCriteria(t *testing.T) {
	flat, seg := segFixture(700, 32, 150, 11)
	views := viewsOf(seg)
	queries := dataset.CorelLike(6, 32, 77)
	for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
		for qi, q := range queries {
			opts := Options{K: 9, Criterion: crit}
			want, err := Search(flat, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := SearchSegments(views, q, opts)
			if err != nil {
				t.Fatal(err)
			}
			identicalResults(t, crit.String(), got.Results, want.Results)
			if got.Stats.SegmentsSearched+got.Stats.SegmentsSkipped == 0 {
				t.Fatalf("%s q%d: no segment accounting", crit, qi)
			}
		}
	}
}

func TestSearchSegmentsWeightedSubspaceExclude(t *testing.T) {
	flat, seg := segFixture(500, 24, 128, 5)
	views := viewsOf(seg)
	q := dataset.CorelLike(1, 24, 123)[0]
	w := dataset.WeightsZipf(24, 1.5, 9)
	excl := bitmap.New(flat.Len())
	for id := 0; id < flat.Len(); id += 7 {
		excl.Set(id)
	}
	cases := []struct {
		label string
		opts  Options
	}{
		{"weighted-Ev", Options{K: 7, Criterion: Ev, Weights: w}},
		{"weighted-Hq", Options{K: 7, Criterion: Hq, Weights: w}},
		{"subspace-Ev", Options{K: 7, Criterion: Ev, Dims: []int{1, 4, 9, 16}}},
		{"subspace-Hq", Options{K: 7, Criterion: Hq, Dims: []int{0, 2, 3, 11, 20}}},
		{"excluded-Hq", Options{K: 7, Criterion: Hq, Exclude: excl}},
		{"excluded-Ev", Options{K: 7, Criterion: Ev, Exclude: excl}},
		{"adaptive", Options{K: 7, Criterion: Hq, AdaptiveStep: true}},
		{"step1", Options{K: 7, Criterion: Ev, Step: 1}},
	}
	for _, c := range cases {
		want, err := Search(flat, q, c.opts)
		if err != nil {
			t.Fatal(c.label, err)
		}
		got, err := SearchSegments(views, q, c.opts)
		if err != nil {
			t.Fatal(c.label, err)
		}
		identicalResults(t, c.label, got.Results, want.Results)
	}
}

func TestSearchSegmentsParallelMatchesFlat(t *testing.T) {
	flat, seg := segFixture(640, 16, 100, 21)
	views := viewsOf(seg)
	q := dataset.CorelLike(1, 16, 3)[0]
	for _, crit := range []Criterion{Hq, Ev} {
		opts := Options{K: 10, Criterion: crit}
		want, err := Search(flat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchSegmentsParallel(views, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		nonEmpty := 0
		for _, g := range seg.Segments() {
			if g.Len() > 0 {
				nonEmpty++
			}
		}
		identicalResults(t, "parallel-"+crit.String(), got.Results, want.Results)
		if got.Stats.SegmentsSearched != nonEmpty {
			t.Fatalf("searched %d segments, want %d", got.Stats.SegmentsSearched, nonEmpty)
		}
	}
}

func TestSearchParallelRangeShardsMatchSearch(t *testing.T) {
	flat, _ := segFixture(530, 16, 100, 31)
	q := dataset.CorelLike(1, 16, 8)[0]
	excl := bitmap.New(flat.Len())
	excl.Set(2)
	excl.Set(333)
	for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
		opts := Options{K: 8, Criterion: crit, Exclude: excl}
		want, err := Search(flat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchParallel(flat, q, opts, 4)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, "shards-"+crit.String(), got.Results, want.Results)
	}
}

func TestProgressiveSegmentsMatchesFlat(t *testing.T) {
	flat, seg := segFixture(420, 24, 90, 41)
	views := viewsOf(seg)
	q := dataset.CorelLike(1, 24, 12)[0]
	for _, crit := range []Criterion{Hq, Ev} {
		opts := Options{K: 6, Criterion: crit, Step: 5}
		want, err := Search(flat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProgressiveSegments(views, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for p.Step() {
			steps++
			if p.NumCandidates() < opts.K {
				t.Fatalf("candidate set fell below k mid-search")
			}
		}
		res := p.Finish()
		identicalResults(t, "progressive-"+crit.String(), res.Results, want.Results)
		if steps == 0 {
			t.Fatal("progressive finished without stepping")
		}
	}
}

func TestCompressedSegmentsMatchesFlat(t *testing.T) {
	flat, seg := segFixture(560, 24, 128, 51)
	q := dataset.CorelLike(1, 24, 4)[0]
	qs := flat.Quantize(quant.NewUnit())
	segs, bases := seg.Segments(), seg.Bases()
	views := make([]CompressedSegmentView, len(segs))
	for i, g := range segs {
		views[i] = CompressedSegmentView{
			SegmentView: SegmentView{Src: g, Base: bases[i], DimRange: g.DimRange},
		}
		if g.Sealed() {
			g := g
			views[i].Codes = func() *vstore.QuantStore { return g.Codes(quant.NewUnit()) }
		}
	}
	for _, crit := range []Criterion{Hq, Eq} {
		opts := Options{K: 10, Criterion: crit}
		want, err := SearchCompressed(flat, qs, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchCompressedSegments(views, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, "compressed-"+crit.String(), got.Results, want.Results)
	}
}

func TestMILSegmentsMatchesFlat(t *testing.T) {
	flat, seg := segFixture(450, 16, 120, 61)
	views := viewsOf(seg)
	q := dataset.CorelLike(1, 16, 14)[0]
	want, err := SearchMIL(flat, q, MILOptions{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchMILSegments(views, q, MILOptions{K: 7})
	if err != nil {
		t.Fatal(err)
	}
	identicalResults(t, "mil", got.Results, want.Results)
}

// clusterContiguous builds data where each segment-sized block of vectors
// sits around its own cluster centre — the locality pattern (ingest by
// time or by class) that makes segment synopses selective.
func clusterContiguous(blocks, perBlock, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, 0, blocks*perBlock)
	for b := 0; b < blocks; b++ {
		ctr := make([]float64, dims)
		for d := range ctr {
			ctr[d] = rng.Float64()
		}
		for i := 0; i < perBlock; i++ {
			v := make([]float64, dims)
			for d := range v {
				x := ctr[d] + rng.NormFloat64()*0.01
				if x < 0 {
					x = 0
				}
				if x > 1 {
					x = 1
				}
				v[d] = x
			}
			out = append(out, v)
		}
	}
	return out
}

func TestSearchSegmentsSkipsColdSegments(t *testing.T) {
	const blocks, perBlock, dims = 8, 100, 16
	vs := clusterContiguous(blocks, perBlock, dims, 17)
	flat := vstore.FromVectors(vs)
	seg := vstore.SegmentedFromVectors(vs, perBlock)
	views := viewsOf(seg)
	q := vs[3] // deep inside block 0
	for _, crit := range []Criterion{Ev, Eq, Hq} {
		opts := Options{K: 5, Criterion: crit}
		want, err := Search(flat, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SearchSegments(views, q, opts)
		if err != nil {
			t.Fatal(err)
		}
		identicalResults(t, "skip-"+crit.String(), got.Results, want.Results)
		if got.Stats.SegmentsSkipped == 0 {
			t.Errorf("%s: no segments skipped on cluster-contiguous data", crit)
		}
		if got.Stats.SegmentsSearched+got.Stats.SegmentsSkipped < blocks {
			t.Errorf("%s: accounting: searched %d + skipped %d < %d segments",
				crit, got.Stats.SegmentsSearched, got.Stats.SegmentsSkipped, blocks)
		}
		if got.Stats.ValuesScanned >= want.Stats.ValuesScanned {
			t.Errorf("%s: segmented scanned %d values, flat scanned %d — skipping saved nothing",
				crit, got.Stats.ValuesScanned, want.Stats.ValuesScanned)
		}
	}
}

func TestSearchSegmentsEmptyAndErrorCases(t *testing.T) {
	seg := vstore.NewSegmented(4, 8)
	if _, err := SearchSegments(viewsOf(seg), []float64{1, 0, 0, 0}, Options{K: 3, Criterion: Hq}); err != ErrNoCandidates {
		t.Fatalf("empty store: err = %v, want ErrNoCandidates", err)
	}
	seg.Append([]float64{0.1, 0.2, 0.3, 0.4})
	if _, err := SearchSegments(viewsOf(seg), []float64{1, 0, 0}, Options{K: 3, Criterion: Hq}); err == nil {
		t.Fatal("dimension mismatch not rejected")
	}
	res, err := SearchSegments(viewsOf(seg), []float64{1, 0, 0, 0}, Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 1 {
		t.Fatalf("k beyond size: %d results, want 1", len(res.Results))
	}
}

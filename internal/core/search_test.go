package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bond/internal/bitmap"
	"bond/internal/dataset"
	"bond/internal/seqscan"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// corelFixture caches a Corel-like collection shared across tests.
var corelFixture = struct {
	vectors [][]float64
	store   *vstore.Store
}{}

func corel(t *testing.T) ([][]float64, *vstore.Store) {
	t.Helper()
	if corelFixture.store == nil {
		corelFixture.vectors = dataset.CorelLike(2000, 64, 1234)
		corelFixture.store = vstore.FromVectors(corelFixture.vectors)
	}
	return corelFixture.vectors, corelFixture.store
}

// sameResults checks rank-by-rank equality of two result lists. Scores must
// agree within tolerance at every rank. IDs must agree except at ranks whose
// score is tied with another rank in the reference: BOND accumulates in a
// different dimension order than the scan, so last-ulp rounding may break
// exact ties differently — any tie-equivalent id is acceptable there.
func sameResults(t *testing.T, label string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	const eps = 1e-9
	tied := func(i int) bool {
		return (i > 0 && math.Abs(want[i].Score-want[i-1].Score) <= eps) ||
			(i+1 < len(want) && math.Abs(want[i].Score-want[i+1].Score) <= eps)
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i].Score) > eps {
			t.Errorf("%s: rank %d score %v, want %v", label, i, got[i].Score, want[i].Score)
		}
		if got[i].ID != want[i].ID && !tied(i) {
			t.Errorf("%s: rank %d = id %d, want id %d (scores %v vs %v)",
				label, i, got[i].ID, want[i].ID, got[i].Score, want[i].Score)
		}
	}
}

// TestSearchMatchesSequentialScan is the central correctness property:
// every criterion must return exactly the sequential scan's answer.
func TestSearchMatchesSequentialScan(t *testing.T) {
	vs, store := corel(t)
	queries, _ := dataset.SampleQueries(vs, 8, 99)
	for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
		for _, q := range queries {
			res, err := Search(store, q, Options{K: 10, Criterion: crit, NormalizedData: true})
			if err != nil {
				t.Fatalf("%v: %v", crit, err)
			}
			var want []topk.Result
			if crit.Distance() {
				want, _ = seqscan.SearchEuclidean(vs, q, 10)
			} else {
				want, _ = seqscan.SearchHistogram(vs, q, 10)
			}
			sameResults(t, crit.String(), res.Results, want)
		}
	}
}

// TestSearchAllOrderings: correctness must hold for any processing order
// (the aggregates are commutative — Section 5.1).
func TestSearchAllOrderings(t *testing.T) {
	vs, store := corel(t)
	q := vs[7]
	want, _ := seqscan.SearchHistogram(vs, q, 5)
	for _, ord := range []Order{OrderQueryDesc, OrderQueryAsc, OrderRandom, OrderNatural} {
		res, err := Search(store, q, Options{K: 5, Criterion: Hq, Order: ord, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", ord, err)
		}
		sameResults(t, ord.String(), res.Results, want)
	}
}

// TestSearchVariousStepSizes: the pruning granularity m must not change
// the answer (Section 5.2 tunes only speed).
func TestSearchVariousStepSizes(t *testing.T) {
	vs, store := corel(t)
	q := vs[42]
	want, _ := seqscan.SearchEuclidean(vs, q, 10)
	for _, step := range []int{1, 3, 8, 16, 64, 1000} {
		res, err := Search(store, q, Options{K: 10, Criterion: Ev, Step: step})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		sameResults(t, "step", res.Results, want)
	}
}

func TestSearchVariousK(t *testing.T) {
	vs, store := corel(t)
	q := vs[11]
	for _, k := range []int{1, 2, 10, 100, 1999, 2000, 5000} {
		res, err := Search(store, q, Options{K: k, Criterion: Hq})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		wantK := k
		if wantK > len(vs) {
			wantK = len(vs)
		}
		want, _ := seqscan.SearchHistogram(vs, q, wantK)
		sameResults(t, "k", res.Results, want)
	}
}

func TestSearchPrunesAggressivelyOnSkewedData(t *testing.T) {
	vs, store := corel(t)
	q := vs[5]
	res, err := Search(store, q, Options{K: 10, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports > 98 % of vectors discarded after ~1/5 of the
	// dimensions on Corel-like data. Check a conservative version: by half
	// the dimensions, at least 90 % must be gone.
	half := store.Dims() / 2
	for _, st := range res.Stats.Steps {
		if st.DimsProcessed >= half {
			frac := float64(st.Candidates) / float64(len(vs))
			if frac > 0.10 {
				t.Errorf("after %d dims still %d candidates (%.1f%%)",
					st.DimsProcessed, st.Candidates, frac*100)
			}
			break
		}
	}
	if res.Stats.ValuesScanned >= int64(len(vs)*store.Dims()) {
		t.Error("BOND scanned at least as much as a full scan on skewed data")
	}
}

func TestSearchStatsShape(t *testing.T) {
	vs, store := corel(t)
	res, err := Search(store, vs[0], Options{K: 10, Criterion: Hh, Step: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Steps) == 0 {
		t.Fatal("no step statistics recorded")
	}
	prev := len(vs)
	for i, st := range res.Stats.Steps {
		if st.DimsProcessed%8 != 0 {
			t.Errorf("step %d at dims %d, want multiple of 8", i, st.DimsProcessed)
		}
		if st.Candidates > prev {
			t.Errorf("candidate count grew at step %d: %d > %d", i, st.Candidates, prev)
		}
		if !st.Skipped && st.Pruned != prev-st.Candidates {
			t.Errorf("step %d pruned %d, want %d", i, st.Pruned, prev-st.Candidates)
		}
		prev = st.Candidates
	}
	if res.Stats.FinalCandidates < 10 {
		t.Errorf("final candidates %d < k", res.Stats.FinalCandidates)
	}
}

func TestHqFutileSkipBeforeHalfMass(t *testing.T) {
	_, store := corel(t)
	// A query with its mass spread over four dimensions: T(q⁻) exceeds 0.5
	// only from the third processed dimension on, so the first two step-1
	// pruning attempts are provably futile (Section 5.2).
	q := make([]float64, store.Dims())
	q[0], q[1], q[2], q[3] = 0.25, 0.25, 0.25, 0.25
	res, err := Search(store, q, Options{K: 10, Criterion: Hq, Step: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Steps) < 2 || !res.Stats.Steps[0].Skipped || !res.Stats.Steps[1].Skipped {
		t.Error("pruning attempts with T(q⁻) ≤ 0.5 should be futile-skipped")
	}
	// Once pruning starts, skips should stop occurring on this data.
	started := false
	for _, st := range res.Stats.Steps {
		if !st.Skipped {
			started = true
		} else if started && st.Skipped {
			t.Error("futile skip after pruning already started")
			break
		}
	}
}

func TestSearchWeighted(t *testing.T) {
	vs, store := corel(t)
	q := vs[21]
	w := dataset.WeightsZipf(store.Dims(), 2.0, 5)
	want, _ := seqscan.SearchWeightedEuclidean(vs, q, w, 10)
	for _, crit := range []Criterion{Eq, Ev} {
		res, err := Search(store, q, Options{K: 10, Criterion: crit, Weights: w})
		if err != nil {
			t.Fatalf("%v: %v", crit, err)
		}
		sameResults(t, "weighted "+crit.String(), res.Results, want)
	}
}

func TestSearchSubspaceEuclidean(t *testing.T) {
	vs, store := corel(t)
	q := vs[33]
	dims := []int{0, 3, 5, 17, 40, 63}
	w := make([]float64, store.Dims())
	for _, d := range dims {
		w[d] = 1
	}
	want, _ := seqscan.SearchWeightedEuclidean(vs, q, w, 5)
	res, err := Search(store, q, Options{K: 5, Criterion: Ev, Dims: dims})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "subspace", res.Results, want)
	// Only subspace columns may be read: at most |dims| × n values.
	if res.Stats.ValuesScanned > int64(len(dims)*len(vs)) {
		t.Errorf("scanned %d values, max %d for the subspace", res.Stats.ValuesScanned, len(dims)*len(vs))
	}
}

func TestSearchSubspaceHistogram(t *testing.T) {
	vs, store := corel(t)
	q := vs[8]
	dims := []int{1, 2, 10, 30, 50}
	// Reference: intersection over the subspace only.
	h := topk.NewLargest(5)
	for id, v := range vs {
		s := 0.0
		for _, d := range dims {
			s += math.Min(v[d], q[d])
		}
		h.Push(id, s)
	}
	want := h.Results()
	for _, crit := range []Criterion{Hq, Hh} {
		res, err := Search(store, q, Options{K: 5, Criterion: crit, Dims: dims})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "subspace "+crit.String(), res.Results, want)
	}
}

func TestSearchRespectsDeletes(t *testing.T) {
	vs := dataset.CorelLike(200, 32, 8)
	store := vstore.FromVectors(vs)
	q := vs[0]
	// Vector 0 is the query itself: it must win, then vanish when deleted.
	res, _ := Search(store, q, Options{K: 1, Criterion: Hq})
	if res.Results[0].ID != 0 {
		t.Fatalf("self not found: got %d", res.Results[0].ID)
	}
	store.Delete(0)
	res, _ = Search(store, q, Options{K: 1, Criterion: Hq})
	if res.Results[0].ID == 0 {
		t.Error("deleted vector returned")
	}
}

func TestSearchExcludeBitmapAsPredicate(t *testing.T) {
	vs := dataset.CorelLike(100, 16, 3)
	store := vstore.FromVectors(vs)
	q := vs[4]
	// Exclude the even ids ("photographs not taken in 1992").
	excl := bitmap.New(100)
	for i := 0; i < 100; i += 2 {
		excl.Set(i)
	}
	res, err := Search(store, q, Options{K: 5, Criterion: Hq, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.ID%2 == 0 {
			t.Errorf("excluded id %d returned", r.ID)
		}
	}
}

func TestSearchErrorCases(t *testing.T) {
	vs := dataset.CorelLike(10, 8, 1)
	store := vstore.FromVectors(vs)
	q := vs[0]

	if _, err := Search(store, q, Options{K: 0, Criterion: Hq}); !errors.Is(err, ErrBadK) {
		t.Errorf("K=0: err = %v", err)
	}
	if _, err := Search(store, q[:4], Options{K: 1, Criterion: Hq}); !errors.Is(err, ErrQueryMismatch) {
		t.Errorf("short query: err = %v", err)
	}
	if _, err := Search(store, q, Options{K: 1, Criterion: Hh, Weights: make([]float64, 8)}); !errors.Is(err, ErrWeightMetric) {
		t.Errorf("weights+Hh: err = %v", err)
	}
	if _, err := Search(store, q, Options{K: 1, Criterion: Hq, AdaptiveThreshold: 2}); err == nil {
		t.Error("AdaptiveThreshold=2 accepted")
	}
	if _, err := Search(store, q, Options{K: 1, Criterion: Ev, Weights: make([]float64, 3)}); !errors.Is(err, ErrWeightMismatch) {
		t.Errorf("short weights: err = %v", err)
	}
	w := make([]float64, 8)
	w[0] = -1
	if _, err := Search(store, q, Options{K: 1, Criterion: Ev, Weights: w}); !errors.Is(err, ErrWeightMismatch) {
		t.Errorf("negative weight: err = %v", err)
	}
	if _, err := Search(store, q, Options{K: 1, Criterion: Hq, Dims: []int{0, 0}}); !errors.Is(err, ErrBadDims) {
		t.Errorf("dup dims: err = %v", err)
	}
	if _, err := Search(store, q, Options{K: 1, Criterion: Hq, Dims: []int{99}}); !errors.Is(err, ErrBadDims) {
		t.Errorf("oob dims: err = %v", err)
	}
	excl := bitmap.NewFull(10)
	if _, err := Search(store, q, Options{K: 1, Criterion: Hq, Exclude: excl}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("all excluded: err = %v", err)
	}
}

// Property: on random clustered data, BOND with Ev matches the scan for
// random k and seeds.
func TestSearchMatchesScanProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		cfg := dataset.DefaultClustered(150, 12, 1.0, seed)
		cfg.Clusters = 10
		vs := dataset.Clustered(cfg)
		store := vstore.FromVectors(vs)
		k := int(kRaw)%8 + 1
		q := vs[int(uint64(seed)%uint64(len(vs)))]
		res, err := Search(store, q, Options{K: k, Criterion: Ev, Step: 4})
		if err != nil {
			return false
		}
		want, _ := seqscan.SearchEuclidean(vs, q, k)
		if len(res.Results) != len(want) {
			return false
		}
		for i := range want {
			if res.Results[i].ID != want[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: Hh never retains more candidates than Hq at the same step
// (its bounds are strictly tighter — Section 4.1).
func TestHhDominatesHq(t *testing.T) {
	vs, store := corel(t)
	for _, qi := range []int{2, 9, 77, 500} {
		q := vs[qi]
		rq, _ := Search(store, q, Options{K: 10, Criterion: Hq, DisableFutileSkip: true})
		rh, _ := Search(store, q, Options{K: 10, Criterion: Hh, DisableFutileSkip: true})
		n := len(rq.Stats.Steps)
		if len(rh.Stats.Steps) < n {
			n = len(rh.Stats.Steps)
		}
		for i := 0; i < n; i++ {
			if rh.Stats.Steps[i].Candidates > rq.Stats.Steps[i].Candidates {
				t.Errorf("q%d step %d: Hh kept %d > Hq %d", qi, i,
					rh.Stats.Steps[i].Candidates, rq.Stats.Steps[i].Candidates)
			}
		}
	}
}

// TestSearchWeightedHistogram covers the Section 8.2 weighted histogram
// intersection: Σ w_i·min(h_i, q_i), with zero weights excluding dims.
func TestSearchWeightedHistogram(t *testing.T) {
	vs, store := corel(t)
	q := vs[14]
	w := dataset.WeightsZipf(store.Dims(), 1.5, 9)
	w[3] = 0 // exclude one dimension entirely

	// Reference: brute force.
	h := topk.NewLargest(5)
	for id, v := range vs {
		s := 0.0
		for d := range v {
			s += w[d] * math.Min(v[d], q[d])
		}
		h.Push(id, s)
	}
	want := h.Results()

	res, err := Search(store, q, Options{K: 5, Criterion: Hq, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "weighted Hq", res.Results, want)
	// The zero-weight column must never be read.
	if res.Stats.ValuesScanned > int64((store.Dims()-1)*len(vs)) {
		t.Errorf("scanned %d values; zero-weight column should be skipped", res.Stats.ValuesScanned)
	}
}

// TestSearchAdaptiveStep verifies the Section 5.2 dynamic-m variant: the
// answer is unchanged and unproductive steps get coarser.
func TestSearchAdaptiveStep(t *testing.T) {
	vs, store := corel(t)
	q := vs[25]
	want, _ := seqscan.SearchEuclidean(vs, q, 10)
	res, err := Search(store, q, Options{K: 10, Criterion: Ev, AdaptiveStep: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "adaptive", res.Results, want)

	fixed, err := Search(store, q, Options{K: 10, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats.Steps) > len(fixed.Stats.Steps) {
		t.Errorf("adaptive made %d pruning attempts, fixed made %d",
			len(res.Stats.Steps), len(fixed.Stats.Steps))
	}
	// Adaptive steps must be non-uniform once pruning dries up: the gaps
	// between consecutive recorded steps should grow somewhere.
	grew := false
	for i := 2; i < len(res.Stats.Steps); i++ {
		a := res.Stats.Steps[i].DimsProcessed - res.Stats.Steps[i-1].DimsProcessed
		b := res.Stats.Steps[i-1].DimsProcessed - res.Stats.Steps[i-2].DimsProcessed
		if a > b {
			grew = true
		}
	}
	if len(res.Stats.Steps) >= 3 && !grew {
		t.Log("note: adaptive step never widened (pruning stayed productive); acceptable")
	}
}

// TestSearchRejectsOutOfRangeData guards the bound preconditions: Lemma 1
// and Eq. 10 assume the unit hyper-box, histogram bounds assume h ≥ 0.
func TestSearchRejectsOutOfRangeData(t *testing.T) {
	wide := vstore.FromVectors([][]float64{{2.5, 0.1}, {0.3, 0.4}})
	q := []float64{0.5, 0.5}
	if _, err := Search(wide, q, Options{K: 1, Criterion: Ev}); !errors.Is(err, ErrDataRange) {
		t.Errorf("Ev on >1 data: err = %v, want ErrDataRange", err)
	}
	// Histogram intersection tolerates values above 1 but not below 0.
	if _, err := Search(wide, q, Options{K: 1, Criterion: Hq}); err != nil {
		t.Errorf("Hq on >1 data: err = %v, want nil", err)
	}
	neg := vstore.FromVectors([][]float64{{-0.5, 0.1}, {0.3, 0.4}})
	if _, err := Search(neg, q, Options{K: 1, Criterion: Hq}); !errors.Is(err, ErrDataRange) {
		t.Errorf("Hq on negative data: err = %v, want ErrDataRange", err)
	}
	// Opt-out: SkipRangeCheck runs anyway (caller's responsibility).
	if _, err := Search(wide, q, Options{K: 1, Criterion: Ev, SkipRangeCheck: true}); err != nil {
		t.Errorf("SkipRangeCheck: err = %v", err)
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"bond/internal/bitmap"
	"bond/internal/kernel"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// SegmentView is one physical segment of a segmented collection as the
// search layer sees it: a Source holding the segment's columns (addressed
// by local ids 0…len−1), the global id of local id 0, and an optional
// per-dimension min/max synopsis.
//
// When DimRange is non-nil, SearchSegments uses it to bound the best score
// any member of the segment could reach and skips the segment wholesale
// whenever that bound cannot beat the running k-th best (κ). A nil
// DimRange only disables skipping; results stay exact either way.
type SegmentView struct {
	Src      Source
	Base     int
	DimRange func(d int) (lo, hi float64)
}

// viewsMeta aggregates segment views into the shape option validation
// needs.
type viewsMeta struct {
	dims, n int
	lo, hi  float64
}

func (m viewsMeta) Dims() int                      { return m.dims }
func (m viewsMeta) Len() int                       { return m.n }
func (m viewsMeta) ValueRange() (float64, float64) { return m.lo, m.hi }

func aggregateViews(views []SegmentView) (viewsMeta, error) {
	if len(views) == 0 {
		return viewsMeta{}, fmt.Errorf("core: no segment views")
	}
	m := viewsMeta{dims: views[0].Src.Dims(), lo: math.Inf(1), hi: math.Inf(-1)}
	for i, v := range views {
		if v.Src.Dims() != m.dims {
			return viewsMeta{}, fmt.Errorf("core: segment %d has %d dims, segment 0 has %d",
				i, v.Src.Dims(), m.dims)
		}
		if v.Base != m.n {
			return viewsMeta{}, fmt.Errorf("core: segment %d base %d, want %d (views must be dense and ordered)",
				i, v.Base, m.n)
		}
		m.n += v.Src.Len()
		lo, hi := v.Src.ValueRange()
		m.lo = math.Min(m.lo, lo)
		m.hi = math.Max(m.hi, hi)
	}
	return m, nil
}

// excludedID reports whether id is marked in the exclusion bitmap,
// treating ids beyond the bitmap's length as not excluded. An exclusion
// bitmap sized to an earlier Len therefore stays valid after appends —
// the documented concurrency contract lets a writer grow the collection
// between NewExclusion and Search — instead of crashing bitmap.Get.
func excludedID(bm *bitmap.Bitmap, id int) bool {
	return bm != nil && id < bm.Len() && bm.Get(id)
}

// localExclude projects the [base, base+n) window of a global exclusion
// bitmap onto segment-local ids. It returns nil when nothing is excluded.
func localExclude(global *bitmap.Bitmap, base, n int) *bitmap.Bitmap {
	if global == nil {
		return nil
	}
	var local *bitmap.Bitmap
	for i := 0; i < n; i++ {
		if excludedID(global, base+i) {
			if local == nil {
				local = bitmap.New(n)
			}
			local.Set(i)
		}
	}
	return local
}

// segmentBound returns the best score any vector inside the segment could
// possibly reach under the query and options, derived from the synopsis:
// an upper bound on similarity for the histogram criteria, a lower bound
// on distance for the Euclidean ones. ok is false when the view carries no
// usable synopsis (empty segment or nil DimRange), in which case the
// segment must be searched.
func segmentBound(v SegmentView, q []float64, opts Options) (bound float64, ok bool) {
	if v.DimRange == nil || v.Src.Len() == 0 {
		return 0, false
	}
	dist := opts.Criterion.Distance()
	// Effective dimensions mirror buildOrder: Dims restricts, zero weights
	// drop out (their best-case contribution is 0 for both metrics).
	// Iterating the two shapes separately keeps the full-space case — once
	// per segment on the query hot path — allocation-free.
	if len(opts.Dims) > 0 {
		for _, d := range opts.Dims {
			b, live := dimBound(v, q, opts, d, dist)
			if !live {
				return 0, false
			}
			bound += b
		}
		return bound, true
	}
	for d := range q {
		b, live := dimBound(v, q, opts, d, dist)
		if !live {
			return 0, false
		}
		bound += b
	}
	return bound, true
}

// dimBound is one dimension's best-case contribution to a segment bound;
// live is false when the synopsis has no data for the dimension.
func dimBound(v SegmentView, q []float64, opts Options, d int, dist bool) (b float64, live bool) {
	w := 1.0
	if len(opts.Weights) > 0 {
		w = opts.Weights[d]
		if w == 0 {
			return 0, true
		}
	}
	lo, hi := v.DimRange(d)
	if math.IsInf(lo, 1) { // no data observed for this dimension
		return 0, false
	}
	if dist {
		// Best case: the closest point of [lo, hi] to q_d.
		gap := 0.0
		if q[d] < lo {
			gap = lo - q[d]
		} else if q[d] > hi {
			gap = q[d] - hi
		}
		return w * gap * gap, true
	}
	// Best case of min(h, q): capped by the segment's largest value.
	return w * math.Min(q[d], hi), true
}

// cannotBeat reports whether a segment whose best possible score is bound
// has no chance against the current κ. The comparison is strict: a segment
// that could only tie κ is still searched, so id tie-breaks stay identical
// to a single flat search.
func cannotBeat(bound, kappa float64, distance bool) bool {
	if distance {
		return bound > kappa
	}
	return bound < kappa
}

// searchOne runs the engine over a single segment without re-validating.
// empty is true when the segment holds no eligible candidates. With a
// non-nil scratch the result list is scratch-backed.
func searchOne(src Source, q []float64, opts Options, sc *Scratch) (Result, bool, error) {
	e, err := newEngine(src, q, opts, sc)
	if err == ErrNoCandidates {
		return Result{}, true, nil
	}
	if err != nil {
		return Result{}, false, err
	}
	e.run()
	return e.finish(), false, nil
}

// shift rebases segment-local result ids to global ids.
func shift(rs []topk.Result, base int) []topk.Result {
	if base == 0 {
		return rs
	}
	out := make([]topk.Result, len(rs))
	for i, r := range rs {
		out[i] = topk.Result{ID: r.ID + base, Score: r.Score}
	}
	return out
}

// orderViews returns the processing order over the views: synopsis-bounded
// views best-first (so κ tightens as fast as possible and later segments
// can be skipped), with unbounded views first since they must be searched
// regardless.
func orderViews(views []SegmentView, q []float64, opts Options) (order []int, bounds []float64, hasBound []bool) {
	dist := opts.Criterion.Distance()
	bounds = make([]float64, len(views))
	hasBound = make([]bool, len(views))
	order = make([]int, 0, len(views))
	for i, v := range views {
		if v.Src.Len() == 0 {
			continue
		}
		bounds[i], hasBound[i] = segmentBound(v, q, opts)
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if hasBound[ia] != hasBound[ib] {
			return !hasBound[ia] // unbounded views go first
		}
		if !hasBound[ia] {
			return false
		}
		if dist {
			return bounds[ia] < bounds[ib] // smallest possible distance first
		}
		return bounds[ia] > bounds[ib] // largest possible similarity first
	})
	return order, bounds, hasBound
}

// ValidateSegments aggregates the views and validates the options against
// the combined collection, applying option defaults in place. Planners
// that execute segments through the per-segment primitives below must call
// this once before running them.
func ValidateSegments(views []SegmentView, q []float64, opts *Options) error {
	m, err := aggregateViews(views)
	if err != nil {
		return err
	}
	lo, hi := 0.0, 0.0
	if m.n > 0 {
		lo, hi = m.lo, m.hi
	}
	return opts.validateShape(m.dims, m.n, lo, hi, q)
}

// SegBound exposes the synopsis bound to the query planner: the best score
// any vector inside the segment could possibly reach under the query and
// options. ok is false when the view carries no usable synopsis.
func SegBound(v SegmentView, q []float64, opts Options) (bound float64, ok bool) {
	return segmentBound(v, q, opts)
}

// CannotBeat reports whether a segment whose best possible score is bound
// has no chance against the current κ (strict, so id tie-breaks stay
// identical to a single flat search).
func CannotBeat(bound, kappa float64, distance bool) bool {
	return cannotBeat(bound, kappa, distance)
}

// SearchOne runs the BOND engine over a single segment without
// re-validating (callers validate once via ValidateSegments). empty is
// true when the segment holds no eligible candidates.
func SearchOne(src Source, q []float64, opts Options) (Result, bool, error) {
	return searchOne(src, q, opts, nil)
}

// SearchOneScratch is SearchOne running on pooled scratch buffers (nil
// allocates privately). The result list and step log alias the scratch and
// are valid until its next search.
func SearchOneScratch(src Source, q []float64, opts Options, sc *Scratch) (Result, bool, error) {
	return searchOne(src, q, opts, sc)
}

// ExactScan ranks a segment's live candidates by their exact scores in
// natural dimension order (identical summation order to the compressed
// refine step). It returns nil when no candidate is eligible, plus the
// number of coefficients read.
func ExactScan(src Source, q []float64, opts Options) ([]topk.Result, int64) {
	return exactScanView(src, q, opts, nil)
}

// ExactScanScratch is ExactScan running on pooled scratch buffers (nil
// allocates privately); the result list aliases the scratch.
func ExactScanScratch(src Source, q []float64, opts Options, sc *Scratch) ([]topk.Result, int64) {
	return exactScanView(src, q, opts, sc)
}

// LocalExclude projects the [base, base+n) window of a global exclusion
// bitmap onto segment-local ids (nil when nothing is excluded).
func LocalExclude(global *bitmap.Bitmap, base, n int) *bitmap.Bitmap {
	return localExclude(global, base, n)
}

// MergeStats folds one segment's work statistics into an aggregate,
// tagging its steps with the physical segment index.
func MergeStats(dst *Stats, src Stats, segment int) {
	mergeStats(dst, src, segment)
}

// Rebase shifts segment-local result ids to global ids.
func Rebase(rs []topk.Result, base int) []topk.Result {
	return shift(rs, base)
}

// RebaseInPlace shifts segment-local result ids to global ids by mutating
// the list — the allocation-free Rebase for scratch-backed lists that are
// consumed before their scratch is reused.
func RebaseInPlace(rs []topk.Result, base int) []topk.Result {
	if base == 0 {
		return rs
	}
	for i := range rs {
		rs[i].ID += base
	}
	return rs
}

// SearchSegments runs BOND per segment and merges the per-segment top-k
// lists into the exact global top-k. Before searching a segment it bounds
// the best score any of the segment's members could reach from the
// per-dimension synopsis; once k results are in hand, segments whose bound
// cannot beat the current κ are skipped without reading a single column —
// the segmented store's answer to clustered data. The neighbor set is
// identical to a flat Search over the concatenated collection.
func SearchSegments(views []SegmentView, q []float64, opts Options) (Result, error) {
	m, err := aggregateViews(views)
	if err != nil {
		return Result{}, err
	}
	if err := opts.validate(m, q); err != nil {
		return Result{}, err
	}
	order, bounds, hasBound := orderViews(views, q, opts)

	dist := opts.Criterion.Distance()
	var kappaHeap *topk.Heap
	if dist {
		kappaHeap = topk.NewSmallest(opts.K)
	} else {
		kappaHeap = topk.NewLargest(opts.K)
	}

	var merged Result
	var lists [][]topk.Result
	for _, vi := range order {
		v := views[vi]
		if kappa, full := kappaHeap.Threshold(); full && hasBound[vi] &&
			cannotBeat(bounds[vi], kappa, dist) {
			merged.Stats.SegmentsSkipped++
			continue
		}
		vopts := opts
		vopts.Exclude = localExclude(opts.Exclude, v.Base, v.Src.Len())
		res, empty, err := searchOne(v.Src, q, vopts, nil)
		if err != nil {
			return Result{}, err
		}
		if empty {
			continue
		}
		merged.Stats.SegmentsSearched++
		mergeStats(&merged.Stats, res.Stats, vi)
		rs := shift(res.Results, v.Base)
		lists = append(lists, rs)
		for _, r := range rs {
			kappaHeap.Push(r.ID, r.Score)
		}
	}
	if len(lists) == 0 {
		return Result{}, ErrNoCandidates
	}
	merged.Results = topk.Merge(opts.K, !dist, lists...)
	return merged, nil
}

// SearchSegmentsParallel runs BOND over every segment concurrently — one
// goroutine per segment — and merges the per-segment top-k lists. Results
// are identical to SearchSegments; synopsis skipping is not applied since
// all segments start before any κ exists.
func SearchSegmentsParallel(views []SegmentView, q []float64, opts Options) (Result, error) {
	m, err := aggregateViews(views)
	if err != nil {
		return Result{}, err
	}
	if err := opts.validate(m, q); err != nil {
		return Result{}, err
	}
	type out struct {
		res   Result
		empty bool
		err   error
	}
	outs := make([]out, len(views))
	var wg sync.WaitGroup
	for i, v := range views {
		if v.Src.Len() == 0 {
			outs[i].empty = true
			continue
		}
		wg.Add(1)
		go func(i int, v SegmentView) {
			defer wg.Done()
			vopts := opts
			vopts.Exclude = localExclude(opts.Exclude, v.Base, v.Src.Len())
			res, empty, err := searchOne(v.Src, q, vopts, nil)
			if err == nil && !empty {
				res.Results = shift(res.Results, v.Base)
			}
			outs[i] = out{res: res, empty: empty, err: err}
		}(i, v)
	}
	wg.Wait()

	var merged Result
	var lists [][]topk.Result
	for i, o := range outs {
		if o.err != nil {
			return Result{}, fmt.Errorf("core: segment %d: %w", i, o.err)
		}
		if o.empty {
			continue
		}
		merged.Stats.SegmentsSearched++
		mergeStats(&merged.Stats, o.res.Stats, i)
		lists = append(lists, o.res.Results)
	}
	if len(lists) == 0 {
		return Result{}, ErrNoCandidates
	}
	merged.Results = topk.Merge(opts.K, !opts.Criterion.Distance(), lists...)
	return merged, nil
}

// CompressedSegmentView pairs a segment view with a provider for its
// 8-bit compressed fragments. Codes is invoked only when the segment is
// actually searched, so synopsis-skipped segments are never quantized. A
// nil Codes (the mutable active segment, whose columns still move under
// appends) makes the segment run through an exact scan instead of
// filter-and-refine; either way the merged result is exact.
type CompressedSegmentView struct {
	SegmentView
	Codes func() *vstore.QuantStore
}

// SearchCompressedSegments runs the filter-and-refine search per segment —
// compressed filter on encoded segments, exact BOND on unencoded ones —
// with the same synopsis-based segment skipping as SearchSegments, and
// merges the exact per-segment top-k lists.
func SearchCompressedSegments(views []CompressedSegmentView, q []float64, opts Options) (CompressedResult, error) {
	plain := make([]SegmentView, len(views))
	for i, v := range views {
		plain[i] = v.SegmentView
	}
	m, err := aggregateViews(plain)
	if err != nil {
		return CompressedResult{}, err
	}
	if err := opts.validate(m, q); err != nil {
		return CompressedResult{}, err
	}
	if err := validateCompressed(opts); err != nil {
		return CompressedResult{}, err
	}
	order, bounds, hasBound := orderViews(plain, q, opts)

	dist := opts.Criterion.Distance()
	var kappaHeap *topk.Heap
	if dist {
		kappaHeap = topk.NewSmallest(opts.K)
	} else {
		kappaHeap = topk.NewLargest(opts.K)
	}

	var merged CompressedResult
	var lists [][]topk.Result
	for _, vi := range order {
		v := views[vi]
		if kappa, full := kappaHeap.Threshold(); full && hasBound[vi] &&
			cannotBeat(bounds[vi], kappa, dist) {
			merged.FilterStats.SegmentsSkipped++
			continue
		}
		vopts := opts
		vopts.Exclude = localExclude(opts.Exclude, v.Base, v.Src.Len())
		var rs []topk.Result
		if v.Codes != nil {
			f := &compressedFilter{s: v.Src, qs: v.Codes(), q: q, opts: vopts}
			f.init()
			if len(f.cands) == 0 {
				continue
			}
			sub := f.refineRun()
			merged.FilterCandidates += sub.FilterCandidates
			mergeStats(&merged.FilterStats, sub.FilterStats, vi)
			merged.RefineValuesScanned += sub.RefineValuesScanned
			rs = sub.Results
		} else {
			exact, scanned := exactScanView(v.Src, q, vopts, nil)
			if exact == nil {
				continue
			}
			merged.ExactValuesScanned += scanned
			rs = exact
		}
		merged.FilterStats.SegmentsSearched++
		rs = shift(rs, v.Base)
		lists = append(lists, rs)
		for _, r := range rs {
			kappaHeap.Push(r.ID, r.Score)
		}
	}
	if len(lists) == 0 {
		return CompressedResult{}, ErrNoCandidates
	}
	merged.Results = topk.Merge(opts.K, !dist, lists...)
	return merged, nil
}

// refineRun drives an initialized compressed filter to its refined result.
func (f *compressedFilter) refineRun() CompressedResult {
	f.run()
	return f.refine()
}

// exactScanView ranks a segment's live candidates by their exact scores,
// accumulating dimensions in natural (storage) order — the same summation
// order the compressed refine step uses, so a segment answers identically
// whether it is encoded or not. Returns nil when no candidate is eligible.
// With a non-nil scratch the result list is scratch-backed.
func exactScanView(src Source, q []float64, opts Options, sc *Scratch) ([]topk.Result, int64) {
	if sc == nil {
		sc = &Scratch{}
	}
	deleted := deletedOf(src)
	cands := grow(sc.cands, src.Len())
	for id := 0; id < src.Len(); id++ {
		if deleted.Get(id) {
			continue
		}
		if excludedID(opts.Exclude, id) {
			continue
		}
		cands = append(cands, id)
	}
	sc.cands = cands
	if len(cands) == 0 {
		return nil, 0
	}
	dist := opts.Criterion.Distance()
	score := zeroed(sc.score, len(cands))
	sc.score = score
	for d := 0; d < src.Dims(); d++ {
		col := src.Column(d)
		qd := q[d]
		if dist {
			kernel.AccSqDist(score, col, cands, qd)
		} else {
			kernel.AccMinQ(score, col, cands, qd)
		}
	}
	k := opts.K
	if k > len(cands) {
		k = len(cands)
	}
	h := sc.outHeap(k, !dist)
	for ci, id := range cands {
		h.Push(id, score[ci])
	}
	sc.results = h.AppendResults(sc.results[:0])
	return sc.results, int64(len(cands)) * int64(src.Dims())
}

// SearchMILSegments runs the MIL reference engine per segment and merges
// the per-segment top-k lists (criterion Hq, largest wins). Results are
// identical to SearchMIL over the concatenated collection.
func SearchMILSegments(views []SegmentView, q []float64, opts MILOptions) (Result, error) {
	var merged Result
	var lists [][]topk.Result
	searched := false
	for vi, v := range views {
		if v.Src.Len() == 0 {
			continue
		}
		vopts := opts
		vopts.Exclude = localExclude(opts.Exclude, v.Base, v.Src.Len())
		res, err := SearchMIL(v.Src, q, vopts)
		if err == ErrNoCandidates {
			continue
		}
		if err != nil {
			return Result{}, err
		}
		searched = true
		merged.Stats.SegmentsSearched++
		mergeStats(&merged.Stats, res.Stats, vi)
		lists = append(lists, shift(res.Results, v.Base))
	}
	if !searched {
		return Result{}, ErrNoCandidates
	}
	merged.Results = topk.Merge(opts.K, true, lists...)
	return merged, nil
}

// mergeStats folds one segment's work statistics into the aggregate.
// Steps are concatenated in processing order, tagged with the segment
// index they ran in; DimsUntilK keeps the worst (largest) per-segment
// value.
func mergeStats(dst *Stats, src Stats, segment int) {
	dst.ValuesScanned += src.ValuesScanned
	dst.FinalCandidates += src.FinalCandidates
	for _, st := range src.Steps {
		st.Segment = segment
		dst.Steps = append(dst.Steps, st)
	}
	if src.DimsUntilK > dst.DimsUntilK {
		dst.DimsUntilK = src.DimsUntilK
	}
}

package core

import "sort"

// Usefulness quantifies how promising a query is for branch-and-bound
// pruning, realizing the paper's Section 9 proposal that "the search
// quality may not be simply a parameter of a dimensional subset, but
// depend on a distribution of weights on all dimensions": it is the Gini
// coefficient of the query's per-dimension maximal score contributions —
// 0 for a perfectly uniform query (hostile: the best partial solutions
// after half the dimensions may still turn out worst overall, Section 7.5)
// and approaching 1 when few dimensions dominate (the regime where BOND
// prunes almost everything early).
//
// The contribution of dimension d is w_d·q_d for histogram intersection
// (the most a vector can score there) and w_d·max(q_d, 1−q_d)² for
// Euclidean criteria (the most distance a vector can accumulate there).
// weights may be nil for unweighted queries. A subspace query contributes
// zeros outside its subspace, so narrow subspaces score as highly skewed —
// consistent with the paper's observation that subspace search is the
// degenerate case of weighted search.
func Usefulness(q, weights []float64, criterion Criterion) float64 {
	contrib := make([]float64, len(q))
	for d, qd := range q {
		w := 1.0
		if len(weights) > 0 {
			w = weights[d]
		}
		if criterion.Distance() {
			m := qd
			if 1-qd > m {
				m = 1 - qd
			}
			contrib[d] = w * m * m
		} else {
			contrib[d] = w * qd
		}
	}
	return gini(contrib)
}

// gini computes the Gini coefficient of a non-negative vector.
func gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	var lorenz float64
	for _, x := range sorted {
		cum += x
		lorenz += cum / total
	}
	n := float64(len(sorted))
	return 1 - (2*lorenz-1)/n
}

package core

import (
	"errors"
	"testing"

	"bond/internal/bitmap"
	"bond/internal/dataset"
	"bond/internal/seqscan"
	"bond/internal/vstore"
)

func TestSearchParallelMatchesSerial(t *testing.T) {
	vs, store := corel(t)
	queries, _ := dataset.SampleQueries(vs, 4, 71)
	for _, shards := range []int{1, 2, 3, 7} {
		for _, crit := range []Criterion{Hq, Ev} {
			for _, q := range queries {
				par, err := SearchParallel(store, q, Options{K: 10, Criterion: crit}, shards)
				if err != nil {
					t.Fatalf("shards=%d %v: %v", shards, crit, err)
				}
				ser, err := Search(store, q, Options{K: 10, Criterion: crit})
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, crit.String(), par.Results, ser.Results)
			}
		}
	}
}

func TestSearchParallelMoreShardsThanVectors(t *testing.T) {
	vs := dataset.CorelLike(5, 8, 1)
	store := vstore.FromVectors(vs)
	res, err := SearchParallel(store, vs[0], Options{K: 3, Criterion: Hq}, 64)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seqscan.SearchHistogram(vs, vs[0], 3)
	sameResults(t, "tiny", res.Results, want)
}

func TestSearchParallelRespectsExclude(t *testing.T) {
	vs := dataset.CorelLike(100, 16, 2)
	store := vstore.FromVectors(vs)
	excl := bitmap.New(100)
	excl.Set(0)
	res, err := SearchParallel(store, vs[0], Options{K: 1, Criterion: Hq, Exclude: excl}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID == 0 {
		t.Error("excluded id returned by parallel search")
	}
}

func TestSearchParallelAllExcluded(t *testing.T) {
	vs := dataset.CorelLike(10, 8, 3)
	store := vstore.FromVectors(vs)
	excl := bitmap.NewFull(10)
	if _, err := SearchParallel(store, vs[0], Options{K: 1, Criterion: Hq, Exclude: excl}, 4); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestSearchParallelBadOptions(t *testing.T) {
	vs := dataset.CorelLike(10, 8, 3)
	store := vstore.FromVectors(vs)
	if _, err := SearchParallel(store, vs[0], Options{K: 0, Criterion: Hq}, 4); !errors.Is(err, ErrBadK) {
		t.Errorf("err = %v, want ErrBadK", err)
	}
}

func TestProgressiveMatchesSearch(t *testing.T) {
	vs, store := corel(t)
	q := vs[13]
	for _, crit := range []Criterion{Hq, Hh, Ev} {
		p, err := NewProgressive(store, q, Options{K: 10, Criterion: crit})
		if err != nil {
			t.Fatal(err)
		}
		res := p.Finish()
		want, err := Search(store, q, Options{K: 10, Criterion: crit})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "progressive "+crit.String(), res.Results, want.Results)
		if res.Stats.ValuesScanned != want.Stats.ValuesScanned {
			t.Errorf("%v: progressive scanned %d, search %d",
				crit, res.Stats.ValuesScanned, want.Stats.ValuesScanned)
		}
	}
}

func TestProgressiveStepwiseInspection(t *testing.T) {
	vs, store := corel(t)
	p, err := NewProgressive(store, vs[2], Options{K: 5, Criterion: Hq, Step: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.DimsProcessed() != 0 || p.DimsTotal() != store.Dims() {
		t.Fatalf("initial state: %d/%d", p.DimsProcessed(), p.DimsTotal())
	}
	prevCands := store.Len() + 1
	steps := 0
	for p.Step() {
		steps++
		if p.DimsProcessed()%8 != 0 && p.DimsProcessed() != p.DimsTotal() {
			t.Fatalf("DimsProcessed = %d, want multiple of 8", p.DimsProcessed())
		}
		if p.NumCandidates() > prevCands {
			t.Fatal("candidates grew between steps")
		}
		prevCands = p.NumCandidates()
		if got := p.Candidates(); len(got) != p.NumCandidates() {
			t.Fatal("Candidates length mismatch")
		}
	}
	if steps == 0 {
		t.Fatal("no steps executed")
	}
	// After exhaustion Step stays false and Finish is idempotent.
	if p.Step() {
		t.Error("Step returned true after exhaustion")
	}
	res := p.Finish()
	if len(res.Results) != 5 {
		t.Errorf("final results = %d", len(res.Results))
	}
}

func TestProgressiveEarlyPreview(t *testing.T) {
	vs, store := corel(t)
	p, err := NewProgressive(store, vs[4], Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	p.Step() // one batch only
	preview := p.CurrentBest()
	if len(preview) != 5 {
		t.Fatalf("preview size %d", len(preview))
	}
	// The preview is approximate but must rank the query itself first
	// (its partial score dominates every other partial score).
	if preview[0].ID != 4 {
		t.Errorf("preview best = %d, want the query itself", preview[0].ID)
	}
}

func TestProgressiveInvalidOptions(t *testing.T) {
	vs, store := corel(t)
	if _, err := NewProgressive(store, vs[0], Options{K: 0, Criterion: Hq}); !errors.Is(err, ErrBadK) {
		t.Errorf("err = %v", err)
	}
}

package core

import "math"

// Synopsis is a compact, serializable summary of one segment's
// per-dimension min/max synopsis — the segment-level statistics a serving
// layer exposes without shipping dims×2 floats per segment. MinVal and
// MaxVal bound every coefficient in the segment; MassLo and MassHi bound
// the total mass Σ_d v_d of any member, which is what the histogram
// criteria prune against.
type Synopsis struct {
	MinVal float64 `json:"min_val"`
	MaxVal float64 `json:"max_val"`
	MassLo float64 `json:"mass_lo"`
	MassHi float64 `json:"mass_hi"`
}

// SummarizeSynopsis reduces a segment view's per-dimension synopsis to a
// Synopsis. ok is false when the view carries no usable synopsis (nil
// DimRange, empty segment, or a dimension with no observed data), in
// which case callers should report the segment as unsummarized rather
// than serve ±Inf, which JSON cannot carry.
func SummarizeSynopsis(v SegmentView) (Synopsis, bool) {
	if v.DimRange == nil || v.Src.Len() == 0 {
		return Synopsis{}, false
	}
	s := Synopsis{MinVal: math.Inf(1), MaxVal: math.Inf(-1)}
	for d := 0; d < v.Src.Dims(); d++ {
		lo, hi := v.DimRange(d)
		if math.IsInf(lo, 1) { // no data observed for this dimension
			return Synopsis{}, false
		}
		s.MinVal = math.Min(s.MinVal, lo)
		s.MaxVal = math.Max(s.MaxVal, hi)
		s.MassLo += lo
		s.MassHi += hi
	}
	return s, true
}

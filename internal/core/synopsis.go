package core

import "math"

// Synopsis is a compact, serializable summary of one segment's
// per-dimension min/max synopsis — the segment-level statistics a serving
// layer exposes without shipping dims×2 floats per segment. MinVal and
// MaxVal bound every coefficient in the segment; MassLo and MassHi bound
// the total mass Σ_d v_d of any member, which is what the histogram
// criteria prune against.
type Synopsis struct {
	MinVal float64 `json:"min_val"`
	MaxVal float64 `json:"max_val"`
	MassLo float64 `json:"mass_lo"`
	MassHi float64 `json:"mass_hi"`
}

// SynopsisSpread measures how loose a segment layout's synopses are: the
// size-weighted mean, over the given views, of the mean per-dimension
// width of each segment's [lo, hi] synopsis relative to the collection's
// global extent in that dimension. A value near 1 means every segment
// spans nearly the whole data extent in every dimension (a shuffled
// ingest order — synopsis-based skipping cannot fire), while a value
// near 0 means segments are tight (cluster-contiguous — most segments
// are skippable once κ is established). Dimensions with a degenerate
// global extent contribute zero width.
//
// A single view trivially measures 1 (its extent is the global extent),
// so callers deciding whether a rewrite could help should require at
// least two views. ok is false when no view carries a usable synopsis.
func SynopsisSpread(views []SegmentView) (float64, bool) {
	if len(views) == 0 {
		return 0, false
	}
	dims := views[0].Src.Dims()
	glo := make([]float64, dims)
	ghi := make([]float64, dims)
	for d := range glo {
		glo[d], ghi[d] = math.Inf(1), math.Inf(-1)
	}
	usable := 0
	for _, v := range views {
		if v.DimRange == nil || v.Src.Len() == 0 {
			continue
		}
		usable++
		for d := 0; d < dims; d++ {
			lo, hi := v.DimRange(d)
			glo[d] = math.Min(glo[d], lo)
			ghi[d] = math.Max(ghi[d], hi)
		}
	}
	if usable == 0 {
		return 0, false
	}
	var weighted, weight float64
	for _, v := range views {
		if v.DimRange == nil || v.Src.Len() == 0 {
			continue
		}
		var spread float64
		measured := 0
		for d := 0; d < dims; d++ {
			span := ghi[d] - glo[d]
			if span <= 0 || math.IsInf(span, 1) {
				continue
			}
			lo, hi := v.DimRange(d)
			spread += (hi - lo) / span
			measured++
		}
		if measured == 0 {
			continue
		}
		w := float64(v.Src.Len())
		weighted += w * spread / float64(measured)
		weight += w
	}
	if weight == 0 {
		return 0, false
	}
	return weighted / weight, true
}

// SummarizeSynopsis reduces a segment view's per-dimension synopsis to a
// Synopsis. ok is false when the view carries no usable synopsis (nil
// DimRange, empty segment, or a dimension with no observed data), in
// which case callers should report the segment as unsummarized rather
// than serve ±Inf, which JSON cannot carry.
func SummarizeSynopsis(v SegmentView) (Synopsis, bool) {
	if v.DimRange == nil || v.Src.Len() == 0 {
		return Synopsis{}, false
	}
	s := Synopsis{MinVal: math.Inf(1), MaxVal: math.Inf(-1)}
	for d := 0; d < v.Src.Dims(); d++ {
		lo, hi := v.DimRange(d)
		if math.IsInf(lo, 1) { // no data observed for this dimension
			return Synopsis{}, false
		}
		s.MinVal = math.Min(s.MinVal, lo)
		s.MaxVal = math.Max(s.MaxVal, hi)
		s.MassLo += lo
		s.MassHi += hi
	}
	return s, true
}

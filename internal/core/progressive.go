package core

import (
	"bond/internal/topk"
	"bond/internal/vstore"
)

// Progressive is an incremental BOND search driven by the caller: each
// Step processes one batch of columns and prunes, and the intermediate
// candidate set is inspectable between steps. This supports the
// interactive retrieval pattern the paper's introduction motivates — a UI
// can show a shrinking candidate set, stop early with the current
// approximate candidates, or run to completion for the exact answer.
type Progressive struct {
	e         *engine
	processed int
	step      int
	finished  bool
}

// NewProgressive prepares an incremental search with the same options as
// Search.
func NewProgressive(s *vstore.Store, q []float64, opts Options) (*Progressive, error) {
	if err := opts.validate(s, q); err != nil {
		return nil, err
	}
	e, err := newEngine(s, q, opts)
	if err != nil {
		return nil, err
	}
	return &Progressive{e: e, step: e.opts.Step}, nil
}

// Step processes the next batch of dimensions and prunes. It returns false
// once every effective dimension has been processed (further calls are
// no-ops).
func (p *Progressive) Step() bool {
	total := len(p.e.order)
	if p.processed >= total {
		p.finished = true
		return false
	}
	p.processed, p.step = p.e.stepOnce(p.processed, p.step)
	if p.processed >= total {
		p.finished = true
	}
	return !p.finished
}

// DimsProcessed returns the number of columns read so far.
func (p *Progressive) DimsProcessed() int { return p.processed }

// DimsTotal returns the number of effective dimensions of the query.
func (p *Progressive) DimsTotal() int { return len(p.e.order) }

// NumCandidates returns the current candidate-set size.
func (p *Progressive) NumCandidates() int { return len(p.e.cands) }

// Candidates returns a copy of the current candidate ids.
func (p *Progressive) Candidates() []int {
	return append([]int(nil), p.e.cands...)
}

// CurrentBest ranks the current candidates by their partial scores — an
// approximate preview that becomes the exact answer once Step has
// exhausted the dimensions.
func (p *Progressive) CurrentBest() []topk.Result {
	return p.e.finish().Results
}

// Finish runs the remaining steps and returns the exact result, identical
// to what Search would have produced.
func (p *Progressive) Finish() Result {
	for p.Step() {
	}
	p.e.stats.FinalCandidates = len(p.e.cands)
	return p.e.finish()
}

// Stats returns the statistics accumulated so far.
func (p *Progressive) Stats() Stats {
	st := p.e.stats
	st.FinalCandidates = len(p.e.cands)
	return st
}

package core

import (
	"bond/internal/topk"
)

// Progressive is an incremental BOND search driven by the caller: each
// Step processes one batch of columns and prunes, and the intermediate
// candidate set is inspectable between steps. This supports the
// interactive retrieval pattern the paper's introduction motivates — a UI
// can show a shrinking candidate set, stop early with the current
// approximate candidates, or run to completion for the exact answer.
//
// Over a segmented collection the per-segment engines advance in
// lockstep: one Step processes the next batch of dimensions in every
// segment. Finish merges the per-segment results into the same exact
// answer a one-shot search returns.
type Progressive struct {
	engines  []*engine
	bases    []int
	segIdx   []int // physical view index of each engine (for step tagging)
	steps    []int // per-engine adaptive stride
	pos      []int // per-engine dimensions processed
	k        int
	distance bool
	finished bool
}

// NewProgressive prepares an incremental search over a single flat source
// with the same options as Search.
func NewProgressive(s Source, q []float64, opts Options) (*Progressive, error) {
	if err := opts.validate(s, q); err != nil {
		return nil, err
	}
	return newProgressive([]SegmentView{{Src: s}}, q, opts)
}

// NewProgressiveSegments prepares an incremental search over a segmented
// collection. Segment skipping does not apply — every segment stays
// inspectable until the caller finishes — but results are identical to
// SearchSegments.
func NewProgressiveSegments(views []SegmentView, q []float64, opts Options) (*Progressive, error) {
	m, err := aggregateViews(views)
	if err != nil {
		return nil, err
	}
	if err := opts.validate(m, q); err != nil {
		return nil, err
	}
	return newProgressive(views, q, opts)
}

func newProgressive(views []SegmentView, q []float64, opts Options) (*Progressive, error) {
	p := &Progressive{k: opts.K, distance: opts.Criterion.Distance()}
	for vi, v := range views {
		if v.Src.Len() == 0 {
			continue
		}
		vopts := opts
		vopts.Exclude = localExclude(opts.Exclude, v.Base, v.Src.Len())
		e, err := newEngine(v.Src, q, vopts, nil)
		if err == ErrNoCandidates {
			continue
		}
		if err != nil {
			return nil, err
		}
		p.engines = append(p.engines, e)
		p.bases = append(p.bases, v.Base)
		p.segIdx = append(p.segIdx, vi)
		p.steps = append(p.steps, e.opts.Step)
		p.pos = append(p.pos, 0)
	}
	if len(p.engines) == 0 {
		return nil, ErrNoCandidates
	}
	return p, nil
}

// Step processes the next batch of dimensions in every segment and prunes.
// It returns false once every effective dimension has been processed
// (further calls are no-ops).
func (p *Progressive) Step() bool {
	if p.finished {
		return false
	}
	done := true
	for i, e := range p.engines {
		total := len(e.order)
		if p.pos[i] >= total {
			continue
		}
		p.pos[i], p.steps[i] = e.stepOnce(p.pos[i], p.steps[i])
		if p.pos[i] < total {
			done = false
		}
	}
	p.finished = done
	return !p.finished
}

// DimsProcessed returns the number of columns read so far (the maximum
// over segments, which differ only when subspaces leave them uneven).
func (p *Progressive) DimsProcessed() int {
	m := 0
	for _, pos := range p.pos {
		if pos > m {
			m = pos
		}
	}
	return m
}

// DimsTotal returns the number of effective dimensions of the query.
func (p *Progressive) DimsTotal() int {
	m := 0
	for _, e := range p.engines {
		if len(e.order) > m {
			m = len(e.order)
		}
	}
	return m
}

// NumCandidates returns the current candidate-set size across segments.
func (p *Progressive) NumCandidates() int {
	n := 0
	for _, e := range p.engines {
		n += len(e.cands)
	}
	return n
}

// Candidates returns a copy of the current candidate ids (global,
// ascending).
func (p *Progressive) Candidates() []int {
	var out []int
	for i, e := range p.engines {
		for _, id := range e.cands {
			out = append(out, id+p.bases[i])
		}
	}
	return out
}

// merge ranks the engines' current results into one top-k list.
func (p *Progressive) merge() []topk.Result {
	lists := make([][]topk.Result, len(p.engines))
	for i, e := range p.engines {
		lists[i] = shift(e.finish().Results, p.bases[i])
	}
	return topk.Merge(p.k, !p.distance, lists...)
}

// CurrentBest ranks the current candidates by their partial scores — an
// approximate preview that becomes the exact answer once Step has
// exhausted the dimensions.
func (p *Progressive) CurrentBest() []topk.Result {
	return p.merge()
}

// Finish runs the remaining steps and returns the exact result, identical
// to what a one-shot search would have produced.
func (p *Progressive) Finish() Result {
	for p.Step() {
	}
	res := Result{Results: p.merge(), Stats: p.Stats()}
	return res
}

// Stats returns the statistics accumulated so far, summed over segments.
func (p *Progressive) Stats() Stats {
	var st Stats
	for i, e := range p.engines {
		es := e.stats
		es.FinalCandidates = len(e.cands)
		mergeStats(&st, es, p.segIdx[i])
		st.SegmentsSearched++
	}
	return st
}

package core

import (
	"math"
	"testing"

	"bond/internal/vstore"
)

func TestSynopsisSpreadShuffledVsContiguous(t *testing.T) {
	// Two layouts over the same coefficients: interleaved (every segment
	// spans the whole extent) and grouped (each segment covers one band).
	shuffled := vstore.SegmentedFromVectors([][]float64{
		{0.0, 1.0}, {0.9, 0.1}, {0.05, 0.95}, {0.95, 0.05},
	}, 2)
	grouped := vstore.SegmentedFromVectors([][]float64{
		{0.0, 1.0}, {0.05, 0.95}, {0.9, 0.1}, {0.95, 0.05},
	}, 2)

	loose, ok := SynopsisSpread(viewsOf(shuffled))
	if !ok {
		t.Fatal("shuffled layout unmeasurable")
	}
	tight, ok := SynopsisSpread(viewsOf(grouped))
	if !ok {
		t.Fatal("grouped layout unmeasurable")
	}
	if loose < 0.9 {
		t.Errorf("interleaved spread = %v, want ≈1", loose)
	}
	if tight > 0.1 {
		t.Errorf("grouped spread = %v, want ≈0", tight)
	}
	if tight >= loose {
		t.Errorf("grouped spread %v not below interleaved %v", tight, loose)
	}
}

func TestSynopsisSpreadEdgeCases(t *testing.T) {
	if _, ok := SynopsisSpread(nil); ok {
		t.Error("no views should be unmeasurable")
	}
	// Views without synopses are unmeasurable.
	s := vstore.SegmentedFromVectors([][]float64{{1, 2}, {3, 4}}, 1)
	views := viewsOf(s)
	for i := range views {
		views[i].DimRange = nil
	}
	if _, ok := SynopsisSpread(views); ok {
		t.Error("synopsis-free views should be unmeasurable")
	}
	// A single measurable view spans its own extent: spread 1.
	one := vstore.SegmentedFromVectors([][]float64{{0, 1}, {1, 0}}, 4)
	got, ok := SynopsisSpread(viewsOf(one)[:1])
	if !ok || math.Abs(got-1) > 1e-12 {
		t.Errorf("single view spread = %v ok=%v, want 1", got, ok)
	}
	// Identical vectors: every global extent degenerate, nothing measured.
	flat := vstore.SegmentedFromVectors([][]float64{{0.5, 0.5}, {0.5, 0.5}}, 1)
	if _, ok := SynopsisSpread(viewsOf(flat)); ok {
		t.Error("fully degenerate extents should be unmeasurable")
	}
}

package core

import (
	"testing"

	"bond/internal/dataset"
	"bond/internal/vstore"
)

func TestUsefulnessExtremes(t *testing.T) {
	uniform := make([]float64, 64)
	for i := range uniform {
		uniform[i] = 1.0 / 64
	}
	if u := Usefulness(uniform, nil, Hq); u > 0.01 {
		t.Errorf("uniform query usefulness = %v, want ~0", u)
	}
	point := make([]float64, 64)
	point[7] = 1
	if u := Usefulness(point, nil, Hq); u < 0.9 {
		t.Errorf("point-mass query usefulness = %v, want ~1", u)
	}
	if u := Usefulness(nil, nil, Hq); u != 0 {
		t.Errorf("empty query usefulness = %v", u)
	}
	zero := make([]float64, 8)
	if u := Usefulness(zero, nil, Hq); u != 0 {
		t.Errorf("zero query usefulness = %v", u)
	}
}

func TestUsefulnessWeightsIncreaseSkew(t *testing.T) {
	q := make([]float64, 64)
	for i := range q {
		q[i] = 0.5 // uniform mid-range query: hostile unweighted
	}
	flat := Usefulness(q, nil, Ev)
	skewed := Usefulness(q, dataset.WeightsZipf(64, 3, 1), Ev)
	if skewed <= flat+0.3 {
		t.Errorf("weighted usefulness %v not well above unweighted %v", skewed, flat)
	}
}

func TestUsefulnessSubspaceViaZeroWeights(t *testing.T) {
	q := make([]float64, 100)
	for i := range q {
		q[i] = 0.5
	}
	w := make([]float64, 100)
	for i := 0; i < 5; i++ {
		w[i] = 1 // 5-dim subspace
	}
	if u := Usefulness(q, w, Ev); u < 0.9 {
		t.Errorf("narrow subspace usefulness = %v, want ~1", u)
	}
}

// TestUsefulnessPredictsWork correlates the measure with actual pruning:
// on the same collection, a skewed (useful) query must scan fewer values
// than a uniform (hostile) one.
func TestUsefulnessPredictsWork(t *testing.T) {
	vs := dataset.CorelLike(1500, 48, 31)
	store := vstore.FromVectors(vs)

	skewedQ := vs[3] // Corel-like queries are Zipfian, hence skewed
	uniformQ := make([]float64, 48)
	for i := range uniformQ {
		uniformQ[i] = 1.0 / 48
	}
	us, uu := Usefulness(skewedQ, nil, Hq), Usefulness(uniformQ, nil, Hq)
	if us <= uu {
		t.Fatalf("usefulness(skewed)=%v not above usefulness(uniform)=%v", us, uu)
	}
	rs, err := Search(store, skewedQ, Options{K: 10, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	ru, err := Search(store, uniformQ, Options{K: 10, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Stats.ValuesScanned >= ru.Stats.ValuesScanned {
		t.Errorf("useful query scanned %d ≥ hostile query %d",
			rs.Stats.ValuesScanned, ru.Stats.ValuesScanned)
	}
}

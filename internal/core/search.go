package core

import (
	"bond/internal/kernel"
	"bond/internal/metric"
	"bond/internal/topk"
)

// Search runs BOND (Algorithm 2) over a vertically decomposed source and
// returns the K best matches with exact scores, best first, together with
// work statistics. Results are deterministic: ties in score break toward
// the smaller vector id, exactly as in the sequential-scan baselines, so
// BOND and a full scan always return identical answer sets.
//
// For a segmented collection, use SearchSegments instead: it runs this
// engine per segment and additionally skips whole segments via their
// synopses.
func Search(s Source, q []float64, opts Options) (Result, error) {
	if err := opts.validate(s, q); err != nil {
		return Result{}, err
	}
	e, err := newEngine(s, q, opts, nil)
	if err != nil {
		return Result{}, err
	}
	e.run()
	res := e.finish()
	res.Stats.SegmentsSearched = 1
	return res, nil
}

// engine holds the state of one search: the candidate ids, their partial
// scores S⁻, and (for per-vector criteria) their remaining masses T(v⁺).
// The three slices stay index-aligned through every compaction and are
// backed by the engine's Scratch.
type engine struct {
	s       Source
	q       []float64
	opts    Options
	weights []float64 // effective weights (may be synthesized from Dims)
	order   []int     // processing order over effective dimensions
	k       int

	cands []int
	score []float64
	tails []float64 // T(v⁺); only maintained when needTails

	needTails bool
	zeroDims  []int // zero-weight dimensions, permanent tail residents

	processedQ float64 // T(q⁻) over processed dimensions (futility test)
	stats      Stats

	sc *Scratch
}

// newEngine initializes the engine inside sc (nil allocates privately), so
// a pooled Scratch makes successive per-segment searches allocation-free.
func newEngine(s Source, q []float64, opts Options, sc *Scratch) (*engine, error) {
	if sc == nil {
		sc = &Scratch{}
	}
	e := &sc.eng
	*e = engine{s: s, q: q, opts: opts, sc: sc}

	e.weights = opts.Weights
	if len(e.weights) == 0 && len(opts.Dims) > 0 && opts.Criterion.Distance() {
		// A subspace query is weighted search with 0/1 weights (Section 8.1).
		e.weights = make([]float64, s.Dims())
		for _, d := range opts.Dims {
			e.weights[d] = 1
		}
	}
	sc.order = buildOrderInto(grow(sc.order, s.Dims()),
		q, e.weights, opts.Dims, opts.Order, opts.Seed, opts.Criterion.Distance())
	e.order = sc.order
	if len(e.weights) > 0 {
		for d, w := range e.weights {
			if w == 0 {
				e.zeroDims = append(e.zeroDims, d)
			}
		}
	}

	deleted := deletedOf(s)
	cands := grow(sc.cands, s.Len())
	for id := 0; id < s.Len(); id++ {
		if deleted.Get(id) {
			continue
		}
		if excludedID(opts.Exclude, id) {
			continue
		}
		cands = append(cands, id)
	}
	sc.cands = cands
	e.cands = cands
	if len(e.cands) == 0 {
		return nil, ErrNoCandidates
	}
	e.k = opts.K
	if e.k > len(e.cands) {
		e.k = len(e.cands)
	}

	sc.score = zeroed(sc.score, len(e.cands))
	e.score = sc.score
	e.needTails = opts.Criterion == Hh || opts.Criterion == Ev
	if e.needTails {
		totals := s.Totals()
		sc.tails = zeroed(sc.tails, len(e.cands))
		e.tails = sc.tails
		for i, id := range e.cands {
			e.tails[i] = totals[id]
		}
	}
	e.stats.Steps = sc.steps[:0]
	return e, nil
}

// run is the Algorithm 2 loop: accumulate a batch of m columns, derive
// bounds, prune, repeat. Once the candidate set is down to k, the loop
// keeps accumulating (each remaining column is read for only k vectors,
// via positional lookup) so the returned scores are exact.
func (e *engine) run() {
	total := len(e.order)
	step := e.opts.Step
	for processed := 0; processed < total; {
		processed, step = e.stepOnce(processed, step)
	}
	e.stats.FinalCandidates = len(e.cands)
}

// stepOnce executes one iteration of the loop: accumulate a batch, then
// prune (unless the candidate set is already at k or the columns are
// exhausted). It returns the new position and the next stride, which
// AdaptiveStep may have widened (Section 5.2's dynamic-m variant: once a
// pruning attempt removes almost nothing, the per-step overhead no longer
// pays, so the stride doubles; a productive step resets it).
func (e *engine) stepOnce(processed, step int) (int, int) {
	total := len(e.order)
	next := processed + step
	if next > total {
		next = total
	}
	e.accumulate(processed, next)
	if next >= total || len(e.cands) <= e.k {
		return next, step
	}
	before := len(e.cands)
	e.pruneStep(next)
	if e.opts.AdaptiveStep {
		prunedFrac := float64(before-len(e.cands)) / float64(before)
		if prunedFrac < e.opts.AdaptiveThreshold {
			step *= 2
		} else {
			step = e.opts.Step
		}
	}
	return next, step
}

// accBlock is the candidate-block width of the accumulation loop: a block
// of partial scores, tails, and candidate ids (≈48 KB) stays resident in
// L1/L2 while the step's m columns stream past it, instead of the whole
// score array being re-fetched once per column.
const accBlock = 2048

// accumulate folds columns order[from:to] into the partial scores, and
// maintains the remaining masses for per-vector criteria. The inner loops
// are the package kernel gathers — unrolled, bounds-check-free, and
// branch-free — dispatched once per (block, column) pair; every score slot
// receives exactly one addition per column in the same order as the scalar
// loops this replaced, so scores are bit-identical.
func (e *engine) accumulate(from, to int) {
	dims := e.order[from:to]
	hist := !e.opts.Criterion.Distance()
	weighted := len(e.weights) > 0

	// Per-column bookkeeping, hoisted out of the candidate loops. For
	// weighted histogram intersection processedQ tracks the weighted query
	// mass so the futility test compares like with like.
	for _, d := range dims {
		if hist && weighted {
			e.processedQ += e.weights[d] * e.q[d]
		} else {
			e.processedQ += e.q[d]
		}
	}
	e.stats.ValuesScanned += int64(len(dims)) * int64(len(e.cands))

	for start := 0; start < len(e.cands); start += accBlock {
		end := start + accBlock
		if end > len(e.cands) {
			end = len(e.cands)
		}
		cb := e.cands[start:end]
		sb := e.score[start:end]
		var tb []float64
		if e.needTails {
			tb = e.tails[start:end]
		}
		for _, d := range dims {
			col := e.s.Column(d)
			qd := e.q[d]
			switch {
			case hist && weighted:
				// Weighted histogram intersection (Section 8.2): w·min(h, q).
				kernel.AccWMinQ(sb, col, cb, qd, e.weights[d])
			case hist && e.needTails:
				kernel.AccMinQTails(sb, tb, col, cb, qd)
			case hist:
				kernel.AccMinQ(sb, col, cb, qd)
			case weighted && e.needTails:
				kernel.AccWSqDistTails(sb, tb, col, cb, qd, e.weights[d])
			case weighted:
				kernel.AccWSqDist(sb, col, cb, qd, e.weights[d])
			case e.needTails:
				kernel.AccSqDistTails(sb, tb, col, cb, qd)
			default:
				kernel.AccSqDist(sb, col, cb, qd)
			}
		}
	}
}

// qTail gathers the query values of the unprocessed dimensions, appending
// the permanent zero-weight residents for weighted bounds. The returned
// slice is scratch-backed.
func (e *engine) qTail(processed int, withZeros bool) []float64 {
	rem := e.order[processed:]
	n := len(rem)
	if withZeros {
		n += len(e.zeroDims)
	}
	out := grow(e.sc.qtail, n)
	for _, d := range rem {
		out = append(out, e.q[d])
	}
	if withZeros {
		for _, d := range e.zeroDims {
			out = append(out, e.q[d])
		}
	}
	e.sc.qtail = out
	return out
}

// wTail gathers the weights matching qTail(processed, true).
func (e *engine) wTail(processed int) []float64 {
	rem := e.order[processed:]
	out := grow(e.sc.wtail, len(rem)+len(e.zeroDims))
	for _, d := range rem {
		out = append(out, e.weights[d])
	}
	for range e.zeroDims {
		out = append(out, 0)
	}
	e.sc.wtail = out
	return out
}

// pruneStep is step 2–4 of Algorithm 2: derive Smin and Smax from the
// partial scores and tail bounds, determine κ with a kfetch, and remove
// every candidate whose best case cannot reach it.
func (e *engine) pruneStep(processed int) {
	stat := StepStat{DimsProcessed: processed}
	before := len(e.cands)
	sc := e.sc

	// Every branch assigns keep[ci] for all ci before compact reads it, so
	// stale scratch values never survive.
	keep := grow(sc.keep, before)[:before]
	sc.keep = keep
	switch e.opts.Criterion {
	case Hq:
		var tq float64
		if len(e.weights) > 0 {
			// Weighted tail bound: Σ w_i·min(h_i,q_i) ≤ Σ w_i·q_i over the
			// remaining dimensions (zero-weight dimensions never appear in
			// the order, so they contribute nothing).
			for _, d := range e.order[processed:] {
				tq += e.weights[d] * e.q[d]
			}
		} else {
			tq = metric.NewHistTail(e.qTail(processed, false)).HqUpper()
		}
		// Section 5.2: Hq cannot prune until T(q⁻) > T(q⁺) (κ ≤ T(q⁻), and
		// a candidate is pruned only when its zero-floor best case
		// S⁻ + T(q⁺) < κ, which needs κ > T(q⁺)).
		if !e.opts.DisableFutileSkip && e.processedQ <= tq {
			stat.Skipped = true
			stat.Candidates = before
			e.appendStep(stat)
			return
		}
		kappa := topk.KthLargestWith(sc.kthHeap(), e.score, e.k) // κmin over Smin = S⁻
		for ci := range keep {
			keep[ci] = e.score[ci]+tq >= kappa
		}
	case Hh:
		tail := metric.NewHistTail(e.qTail(processed, false))
		// In subspace mode the tracked tail mass covers all dimensions, an
		// overestimate of the subspace tail: the upper bound stays valid
		// but the Eq. 8 lower bound would not, so it falls back to zero.
		subspace := len(e.opts.Dims) > 0
		smin := zeroed(sc.aux, before)
		sc.aux = smin
		for ci := range smin {
			lo := 0.0
			if !subspace {
				lo = tail.HhLower(e.tails[ci])
			}
			smin[ci] = e.score[ci] + lo
		}
		kappa := topk.KthLargestWith(sc.kthHeap(), smin, e.k)
		for ci := range keep {
			keep[ci] = e.score[ci]+tail.HhUpper(e.tails[ci]) >= kappa
		}
	case Eq:
		var bound float64
		if len(e.weights) > 0 {
			bound = sc.wt.Reset(e.qTail(processed, true), e.wTail(processed)).UpperConst()
		} else {
			tail := sc.euc.Reset(e.qTail(processed, false))
			if e.opts.NormalizedData {
				bound = tail.EqUpperNormalized()
			} else {
				bound = tail.EqUpper()
			}
		}
		// Smin = S⁻; Smax = S⁻ + bound: κmax = (k-th smallest S⁻) + bound.
		kappa := topk.KthSmallestWith(sc.kthHeap(), e.score, e.k) + bound
		for ci := range keep {
			keep[ci] = e.score[ci] <= kappa
		}
	case Ev:
		if len(e.weights) > 0 {
			tail := sc.wt.Reset(e.qTail(processed, true), e.wTail(processed))
			smax := zeroed(sc.aux, before)
			sc.aux = smax
			for ci := range smax {
				smax[ci] = e.score[ci] + tail.Upper(e.tails[ci])
			}
			kappa := topk.KthSmallestWith(sc.kthHeap(), smax, e.k)
			for ci := range keep {
				keep[ci] = e.score[ci]+tail.Lower(e.tails[ci]) <= kappa
			}
		} else {
			tail := sc.euc.Reset(e.qTail(processed, false))
			smax := zeroed(sc.aux, before)
			sc.aux = smax
			for ci := range smax {
				smax[ci] = e.score[ci] + tail.EvUpper(e.tails[ci])
			}
			kappa := topk.KthSmallestWith(sc.kthHeap(), smax, e.k)
			for ci := range keep {
				keep[ci] = e.score[ci]+tail.EvLower(e.tails[ci]) <= kappa
			}
		}
	}

	e.compact(keep)
	stat.Candidates = len(e.cands)
	stat.Pruned = before - len(e.cands)
	e.appendStep(stat)
	if len(e.cands) <= e.k && e.stats.DimsUntilK == 0 {
		e.stats.DimsUntilK = processed
	}
}

// appendStep logs one pruning iteration, keeping the scratch-backed step
// buffer's growth for reuse.
func (e *engine) appendStep(stat StepStat) {
	e.stats.Steps = append(e.stats.Steps, stat)
	e.sc.steps = e.stats.Steps
}

// compact removes pruned candidates from the aligned slices in place.
func (e *engine) compact(keep []bool) {
	out := 0
	for ci, ok := range keep {
		if !ok {
			continue
		}
		e.cands[out] = e.cands[ci]
		e.score[out] = e.score[ci]
		if e.needTails {
			e.tails[out] = e.tails[ci]
		}
		out++
	}
	e.cands = e.cands[:out]
	e.score = e.score[:out]
	if e.needTails {
		e.tails = e.tails[:out]
	}
}

// finish ranks the surviving candidates by their now-exact scores. The
// result list is scratch-backed: valid until the Scratch's next search.
func (e *engine) finish() Result {
	h := e.sc.outHeap(e.k, !e.opts.Criterion.Distance())
	for ci, id := range e.cands {
		h.Push(id, e.score[ci])
	}
	e.sc.results = h.AppendResults(e.sc.results[:0])
	return Result{Results: e.sc.results, Stats: e.stats}
}

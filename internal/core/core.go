// Package core implements BOND — Branch-and-bound ON Decomposed data — the
// k-NN search algorithm of the paper (Algorithm 2).
//
// BOND scans the dimensional columns of a vertically decomposed collection
// (package vstore) in a query-dependent order, accumulating each vector's
// partial score over the dimensions seen so far. After every batch of m
// columns it derives, per vector, an upper and a lower bound on the final
// score from the partial score and (for the stronger criteria) the vector's
// remaining mass T(v⁺), then discards every vector whose best case cannot
// reach the worst case of the current k-th best. The surviving candidate
// set shrinks rapidly, so later columns are read only for a small fraction
// of the collection.
//
// Four pruning criteria are supported, as derived in Section 4:
//
//   - Hq: histogram intersection, bounds from the query only (Eq. 5–6).
//   - Hh: histogram intersection, per-vector bounds using T(h⁻) (Eq. 7–9).
//   - Eq: squared Euclidean distance, constant bounds (Eq. 10).
//   - Ev: squared Euclidean distance, per-vector bounds (Lemmas 1–2).
//
// Weighted queries (Definition 3, Appendix A) and dimensional-subspace
// queries (Section 8.1, weights ∈ {0,1}) run through the same loop with
// the weighted bounds of package metric.
package core

import (
	"errors"
	"fmt"

	"bond/internal/bitmap"
	"bond/internal/topk"
)

// Source is the narrow storage contract every search path runs against:
// a vertically decomposed, fixed-dimensionality collection addressed by
// dense positional ids. Both the flat vstore.Store and each segment of a
// segmented store satisfy it, so one engine serves both layouts.
//
// Column and Totals return live views that must not be mutated; see the
// vstore documentation for the aliasing rules. DeletedBitmap returns a
// snapshot the engine may keep.
type Source interface {
	// Dims returns the dimensionality.
	Dims() int
	// Len returns the number of id slots, including delete-marked ones.
	Len() int
	// Column returns the d-th dimension column, indexed by id (read-only).
	Column(d int) []float64
	// Totals returns the per-vector totals T(v) side table (read-only).
	Totals() []float64
	// DeletedBitmap returns a snapshot of the delete marks.
	DeletedBitmap() *bitmap.Bitmap
	// ValueRange returns a conservative range over every coefficient.
	ValueRange() (lo, hi float64)
}

// meta is the subset of Source that option validation needs; it is also
// satisfied by aggregate descriptions of a segmented collection.
type meta interface {
	Dims() int
	Len() int
	ValueRange() (lo, hi float64)
}

// Criterion selects the pruning rule, which also fixes the metric:
// Hq and Hh rank by histogram intersection (larger is better), Eq and Ev by
// squared Euclidean distance (smaller is better).
type Criterion int

const (
	// Hq is the query-only histogram-intersection criterion (Eq. 5–6).
	Hq Criterion = iota
	// Hh is the per-vector histogram-intersection criterion (Eq. 7–9).
	Hh
	// Eq is the query-only Euclidean criterion (Eq. 10).
	Eq
	// Ev is the per-vector Euclidean criterion (Lemmas 1–2).
	Ev
)

// String returns the paper's name for the criterion.
func (c Criterion) String() string {
	switch c {
	case Hq:
		return "Hq"
	case Hh:
		return "Hh"
	case Eq:
		return "Eq"
	case Ev:
		return "Ev"
	}
	return fmt.Sprintf("Criterion(%d)", int(c))
}

// Distance reports whether the criterion ranks by distance (smallest wins).
func (c Criterion) Distance() bool { return c == Eq || c == Ev }

// Order selects the processing order of the dimensions (Section 5.1).
type Order int

const (
	// OrderQueryDesc processes dimensions by decreasing query value — the
	// paper's default, which works well on Zipfian data. For weighted
	// queries the sort key is w·q² (Section 8.2).
	OrderQueryDesc Order = iota
	// OrderQueryAsc is the worst-case ordering of Figure 7.
	OrderQueryAsc
	// OrderRandom shuffles the dimensions using Options.Seed.
	OrderRandom
	// OrderNatural keeps the storage order.
	OrderNatural
)

// String names the ordering.
func (o Order) String() string {
	switch o {
	case OrderQueryDesc:
		return "desc"
	case OrderQueryAsc:
		return "asc"
	case OrderRandom:
		return "random"
	case OrderNatural:
		return "natural"
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// DefaultStep is the paper's default pruning granularity m = 8
// (Section 7.1).
const DefaultStep = 8

// Options configures a BOND search.
type Options struct {
	// K is the number of neighbors to return. Required, ≥ 1.
	K int
	// Criterion selects metric and pruning rule. Default Hq.
	Criterion Criterion
	// Order selects the dimension processing order. Default OrderQueryDesc.
	Order Order
	// Seed drives OrderRandom.
	Seed int64
	// Step is the number of dimensions processed between pruning attempts
	// (the paper's m). Default DefaultStep.
	Step int
	// AdaptiveStep enables the dynamic-m variant Section 5.2 poses as an
	// open question: whenever a pruning attempt removes less than
	// AdaptiveThreshold of the candidates, the step doubles (bounded by
	// the remaining dimensions), amortizing the per-step kfetch and
	// compaction overhead once pruning has run dry. A step that prunes
	// well again resets to the configured Step.
	AdaptiveStep bool
	// AdaptiveThreshold is the pruned fraction below which AdaptiveStep
	// doubles the step. Default 0.05.
	AdaptiveThreshold float64
	// Weights enables weighted search. For Euclidean criteria this is the
	// weighted distance of Definition 3; for criterion Hq it is the
	// weighted histogram intersection Σ w_i·min(h_i, q_i) used by
	// multi-feature processing (Section 8.2). Zero weights exclude
	// dimensions (subspace search). Length must equal the store
	// dimensionality.
	Weights []float64
	// Dims restricts the search to a dimensional subspace (Section 8.1).
	// For Euclidean criteria this is sugar for 0/1 weights; for histogram
	// criteria only the listed dimensions contribute to the score.
	Dims []int
	// Exclude removes vectors from consideration before the search starts —
	// delete marks (Section 6.2) or the complement of a prior selection
	// predicate (Section 6.1). May be nil.
	Exclude *bitmap.Bitmap
	// NormalizedData declares that every stored vector is known to sum
	// to 1, enabling the stricter constant bound for Eq used in
	// Section 7.1. Ignored by other criteria.
	NormalizedData bool
	// DisableFutileSkip forces a pruning attempt after every step even when
	// the Section 5.2 analysis shows it cannot remove anything (used by the
	// ablation benchmarks).
	DisableFutileSkip bool
	// SkipRangeCheck disables the data-range validation. The Euclidean
	// bounds (Lemma 1, Eq. 10) are derived for vectors in the unit
	// hyper-box and the histogram bounds for non-negative data; out-of-
	// range coefficients would silently make pruning unsafe, so Search
	// rejects them unless this is set (e.g. when the caller re-scales
	// queries to a wider box themselves).
	SkipRangeCheck bool
}

// StepStat records the candidate set after one pruning iteration.
type StepStat struct {
	// Segment is the index of the physical segment the step ran in. In a
	// merged multi-segment Stats the steps of different segments are
	// concatenated in processing order and DimsProcessed restarts per
	// segment; Segment tells them apart. Always 0 for flat searches.
	Segment int
	// DimsProcessed is the number of columns read so far (the paper's m).
	DimsProcessed int
	// Candidates is the candidate-set size after pruning at this step.
	Candidates int
	// Pruned is the number of vectors removed at this step.
	Pruned int
	// Skipped reports that the pruning attempt was skipped as futile
	// (Section 5.2); Candidates then carries over unchanged.
	Skipped bool
}

// Stats describes the work a search performed.
type Stats struct {
	// Steps has one entry per pruning iteration.
	Steps []StepStat
	// ValuesScanned counts column cells read.
	ValuesScanned int64
	// DimsUntilK is the number of dimensions processed when the candidate
	// set first shrank to exactly K (0 if it never did). The paper reports
	// this as the point after which the remaining tables "need not be
	// accessed at all" for pruning.
	DimsUntilK int
	// FinalCandidates is the candidate-set size when pruning stopped.
	FinalCandidates int
	// SegmentsSearched counts segments whose columns were actually read.
	// Single-source searches report 1.
	SegmentsSearched int
	// SegmentsSkipped counts segments dismissed wholesale because their
	// min/max-per-dimension synopsis proved no member could beat the
	// running k-th best score.
	SegmentsSkipped int
}

// Result is a completed search: the k best matches (exact scores, best
// first) and the work statistics.
type Result struct {
	Results []topk.Result
	Stats   Stats
}

// Errors returned by option validation.
var (
	ErrBadK           = errors.New("core: K must be >= 1")
	ErrWeightMismatch = errors.New("core: weights length must equal store dimensionality")
	ErrWeightMetric   = errors.New("core: weights require criterion Eq, Ev, or Hq")
	ErrQueryMismatch  = errors.New("core: query length must equal store dimensionality")
	ErrBadDims        = errors.New("core: Dims entries must be unique and within range")
	ErrNoCandidates   = errors.New("core: no live vectors to search")
	ErrDataRange      = errors.New("core: stored data outside the range the pruning bounds assume")
)

func (o *Options) validate(s meta, q []float64) error {
	lo, hi := 0.0, 0.0
	if s.Len() > 0 {
		lo, hi = s.ValueRange()
	}
	return o.validateShape(s.Dims(), s.Len(), lo, hi, q)
}

// validateShape is validate over an explicit collection shape — the form
// the segment planner calls so the aggregate description need not be
// boxed into the meta interface on the query hot path.
func (o *Options) validateShape(dims, slots int, lo, hi float64, q []float64) error {
	if o.K < 1 {
		return ErrBadK
	}
	if len(q) != dims {
		return fmt.Errorf("%w: query %d, store %d", ErrQueryMismatch, len(q), dims)
	}
	if len(o.Weights) > 0 {
		if o.Criterion == Hh {
			return ErrWeightMetric
		}
		if len(o.Weights) != dims {
			return fmt.Errorf("%w: weights %d, store %d", ErrWeightMismatch, len(o.Weights), dims)
		}
		for _, w := range o.Weights {
			if w < 0 {
				return fmt.Errorf("%w: negative weight", ErrWeightMismatch)
			}
		}
	}
	if len(o.Dims) > 0 {
		seen := make(map[int]bool, len(o.Dims))
		for _, d := range o.Dims {
			if d < 0 || d >= dims || seen[d] {
				return fmt.Errorf("%w: dim %d", ErrBadDims, d)
			}
			seen[d] = true
		}
	}
	if o.Step == 0 {
		o.Step = DefaultStep
	}
	if o.Step < 1 {
		return fmt.Errorf("core: Step must be >= 1, got %d", o.Step)
	}
	if o.AdaptiveThreshold == 0 {
		o.AdaptiveThreshold = 0.05
	}
	if o.AdaptiveThreshold < 0 || o.AdaptiveThreshold > 1 {
		return fmt.Errorf("core: AdaptiveThreshold must be in [0,1], got %v", o.AdaptiveThreshold)
	}
	if !o.SkipRangeCheck && slots > 0 {
		if o.Criterion.Distance() {
			// Lemma 1 / Eq. 10 place adversarial mass at coordinate 1 and
			// floor candidates at 0: data must lie in the unit hyper-box.
			if lo < 0 || hi > 1 {
				return fmt.Errorf("%w: Euclidean criteria need values in [0,1], store holds [%v, %v]",
					ErrDataRange, lo, hi)
			}
		} else if lo < 0 {
			// Histogram intersection's zero lower bound needs h ≥ 0.
			return fmt.Errorf("%w: histogram criteria need non-negative values, store holds minimum %v",
				ErrDataRange, lo)
		}
	}
	return nil
}

package core

import (
	"errors"
	"testing"

	"bond/internal/bitmap"
	"bond/internal/dataset"
	"bond/internal/seqscan"
	"bond/internal/vstore"
)

func TestMILMatchesSequentialScan(t *testing.T) {
	vs, store := corel(t)
	queries, _ := dataset.SampleQueries(vs, 5, 55)
	for _, q := range queries {
		res, err := SearchMIL(store, q, MILOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := seqscan.SearchHistogram(vs, q, 10)
		sameResults(t, "MIL", res.Results, want)
	}
}

func TestMILMatchesArrayEngine(t *testing.T) {
	vs, store := corel(t)
	q := vs[3]
	mil, err := SearchMIL(store, q, MILOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	arr, err := Search(store, q, Options{K: 10, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "MIL vs array", mil.Results, arr.Results)
}

func TestMILBitmapSwitchSettings(t *testing.T) {
	vs, store := corel(t)
	q := vs[9]
	want, _ := seqscan.SearchHistogram(vs, q, 10)
	// Immediate materialization, default, and bitmap-until-end must all be
	// correct (the switch point is a physical-plan choice only).
	for _, sw := range []float64{1e-9, 0.05, 0.5, 1} {
		res, err := SearchMIL(store, q, MILOptions{K: 10, BitmapSwitch: sw})
		if err != nil {
			t.Fatalf("switch %v: %v", sw, err)
		}
		sameResults(t, "MIL switch", res.Results, want)
	}
}

func TestMILRespectsDeletesAndExclude(t *testing.T) {
	vs := dataset.CorelLike(150, 32, 21)
	store := vstore.FromVectors(vs)
	q := vs[0]
	store.Delete(0)
	excl := bitmap.New(150)
	excl.Set(1)
	res, err := SearchMIL(store, q, MILOptions{K: 5, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.ID == 0 || r.ID == 1 {
			t.Errorf("deleted/excluded id %d returned", r.ID)
		}
	}
}

func TestMILErrors(t *testing.T) {
	vs := dataset.CorelLike(10, 8, 2)
	store := vstore.FromVectors(vs)
	if _, err := SearchMIL(store, vs[0], MILOptions{K: 0}); !errors.Is(err, ErrMILOptions) {
		t.Errorf("K=0: %v", err)
	}
	if _, err := SearchMIL(store, vs[0][:2], MILOptions{K: 1}); !errors.Is(err, ErrQueryMismatch) {
		t.Errorf("short query: %v", err)
	}
	if _, err := SearchMIL(store, vs[0], MILOptions{K: 1, BitmapSwitch: 2}); !errors.Is(err, ErrMILOptions) {
		t.Errorf("bad switch: %v", err)
	}
	excl := bitmap.NewFull(10)
	if _, err := SearchMIL(store, vs[0], MILOptions{K: 1, Exclude: excl}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("all excluded: %v", err)
	}
}

package core

import (
	"bond/internal/bitmap"
	"bond/internal/metric"
	"bond/internal/topk"
)

// Scratch holds every reusable buffer one search needs: candidate ids,
// partial scores and tails, pruning staging, tail-bound state, kfetch and
// ranking heaps, and the MIL engine's operator buffers. One Scratch serves
// one search at a time; the query executor keeps a small per-collection
// free list and runs each segment's step through the same Scratch, so a
// steady-state query allocates nothing in the engine layer.
//
// A nil *Scratch is accepted by every entry point that takes one and means
// "allocate privately" — the behavior of the legacy entry points.
//
// The pooling contract: buffers handed out of a scratch-backed call
// (result lists, candidate ids, step logs) alias the Scratch and are valid
// only until the next call that uses the same Scratch. Anything that
// outlives the query — the merged results and statistics the caller
// receives — must be copied out first, which the plan executor does
// exactly once per query.
type Scratch struct {
	eng engine // the BOND engine state itself, reused across segments

	order   []int
	cands   []int
	score   []float64
	tails   []float64
	aux     []float64 // Smin/Smax staging inside one pruning step
	keep    []bool
	qtail   []float64
	wtail   []float64
	steps   []StepStat    // pruning-step log backing (engine, filter, MIL)
	results []topk.Result // per-segment result staging

	kth *topk.Heap // kfetch heap (κ selection inside pruning steps)
	out *topk.Heap // final ranking heap

	euc metric.EucTail      // pooled Euclidean tail bounds
	wt  metric.WeightedTail // pooled weighted tail bounds

	// Compressed-filter score intervals.
	sLo, sHi []float64

	// MIL operator buffers: the full-length score column, the candidate
	// bitmap and the uselect result bitmap, ping-pong id/score columns for
	// the positional phase, and the per-column gather target.
	milScore  []float64
	milBM     *bitmap.Bitmap
	milSel    *bitmap.Bitmap
	milIDs    []int
	milIDs2   []int
	milVals   []float64
	milVals2  []float64
	milGather []float64
}

// grow returns s with length 0 and capacity at least n, reusing the
// backing array when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// zeroed returns s resized to exactly n zero values, reusing the backing
// array when possible.
func zeroed(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// kthHeap returns the pooled kfetch heap (mode set by the caller through
// topk.KthLargestWith / KthSmallestWith).
func (sc *Scratch) kthHeap() *topk.Heap {
	if sc.kth == nil {
		sc.kth = topk.NewLargest(1)
	}
	return sc.kth
}

// outHeap returns the pooled ranking heap reset to keep the k best.
func (sc *Scratch) outHeap(k int, largest bool) *topk.Heap {
	if sc.out == nil {
		sc.out = topk.NewLargest(k)
	}
	sc.out.Reset(k, largest)
	return sc.out
}

// deletedViewer is the optional Source refinement that exposes the delete
// marks without copying; the hot path uses it to avoid a bitmap clone per
// segment per query.
type deletedViewer interface {
	DeletedView() *bitmap.Bitmap
}

// deletedOf returns the source's delete marks, without a copy when the
// source supports it. The result must be treated as read-only and not
// retained past the search (the engine only reads it while initializing
// its candidate set, under the collection's lock).
func deletedOf(s Source) *bitmap.Bitmap {
	if v, ok := s.(deletedViewer); ok {
		return v.DeletedView()
	}
	return s.DeletedBitmap()
}

// DeletedView exposes deletedOf to the plan executor: a source's delete
// marks without a copy when the source supports it (read-only, not to be
// retained past the query).
func DeletedView(s Source) *bitmap.Bitmap { return deletedOf(s) }

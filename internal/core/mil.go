package core

import (
	"errors"
	"math"

	"bond/internal/bat"
	"bond/internal/bitmap"
	"bond/internal/topk"
)

// MILOptions configures the MIL reference engine.
type MILOptions struct {
	// K is the number of neighbors. Required, ≥ 1.
	K int
	// Step is the pruning granularity m. Default DefaultStep.
	Step int
	// BitmapSwitch is the candidate fraction below which the engine stops
	// using the bitmap representation and materializes the candidate set
	// for positional joins (Section 6.1: "after several iterations, when
	// the candidate set has reduced significantly, the query processor
	// switches to the standard positional joins approach"). 0 materializes
	// immediately; 1 keeps the bitmap until the end. Default 0.05.
	BitmapSwitch float64
	// Exclude initializes the bitmap with the complement of a prior
	// selection predicate (Section 6.1). May be nil.
	Exclude *bitmap.Bitmap
}

// ErrMILOptions reports invalid MIL engine options.
var ErrMILOptions = errors.New("core: invalid MIL options")

// SearchMIL executes BOND with criterion Hq through the MIL operator layer
// of package bat, mirroring the paper's Section 6.1 listing:
//
//  1. for i in 1..m do Di := [min](Hi, const Qi); Smin := [+](D1, …, Dm);
//  2. sk := Smin.kfetch(k); maxbound := sk − T(q⁺); C := Smin.uselect(maxbound, …);
//  3. for i in m+1..N do Hi := C.reverse.join(Hi);
//
// applied iteratively, with the early iterations using the bitmap-index
// implementation of uselect and the later ones the positional-join
// reduction. Results are identical to Search with criterion Hq.
func SearchMIL(s Source, q []float64, opts MILOptions) (Result, error) {
	if opts.K < 1 {
		return Result{}, ErrMILOptions
	}
	if len(q) != s.Dims() {
		return Result{}, ErrQueryMismatch
	}
	if opts.Step == 0 {
		opts.Step = DefaultStep
	}
	if opts.Step < 1 {
		return Result{}, ErrMILOptions
	}
	if opts.BitmapSwitch == 0 {
		opts.BitmapSwitch = 0.05
	}
	if opts.BitmapSwitch < 0 || opts.BitmapSwitch > 1 {
		return Result{}, ErrMILOptions
	}

	n := s.Len()
	order := buildOrder(q, nil, nil, OrderQueryDesc, 0, false)

	// The bitmap doubles as delete-mark carrier and predicate filter
	// (Sections 6.1–6.2): start from live ∧ ¬excluded.
	bm := bitmap.NewFull(n)
	bm.AndNot(s.DeletedBitmap())
	if opts.Exclude != nil {
		// The exclusion bitmap may be smaller than the collection (sized
		// before concurrent appends); out-of-range ids are not excluded.
		opts.Exclude.ForEach(func(id int) {
			if id < n {
				bm.Clear(id)
			}
		})
	}
	if bm.Count() == 0 {
		return Result{}, ErrNoCandidates
	}
	k := opts.K
	if k > bm.Count() {
		k = bm.Count()
	}

	var stats Stats
	var processedQ float64
	tailQ := func(processed int) float64 {
		t := 0.0
		for _, d := range order[processed:] {
			t += q[d]
		}
		return t
	}

	// --- Bitmap phase: scores kept full-length, candidates as set bits. ---
	smin := bat.NewFloatVoid(0, make([]float64, n))
	var (
		c     *bat.OID   // materialized candidates (nil while in bitmap phase)
		sminC *bat.Float // scores aligned with c
	)
	total := len(order)
	processed := 0
	for processed < total {
		next := processed + opts.Step
		if next > total {
			next = total
		}
		for _, d := range order[processed:next] {
			hi := bat.NewFloatVoid(0, s.Column(d))
			qd := q[d]
			if c == nil {
				// [min](Hi, const Qi) evaluated for candidate positions only.
				bm.ForEach(func(id int) {
					smin.Tail[id] += math.Min(hi.Tail[id], qd)
				})
				stats.ValuesScanned += int64(bm.Count())
			} else {
				// Hi reduced to the candidate set by a positional join.
				hiC := bat.JoinFloat(c, hi)
				di := bat.MapMinConst(hiC, qd)
				bat.AddInto(sminC, di)
				stats.ValuesScanned += int64(c.Len())
			}
			processedQ += qd
		}
		processed = next
		if processed >= total {
			break
		}

		count := bm.Count()
		if c != nil {
			count = c.Len()
		}
		if count <= k {
			continue
		}

		stat := StepStat{DimsProcessed: processed}
		tq := tailQ(processed)
		if processedQ <= tq {
			stat.Skipped = true
			stat.Candidates = count
			stats.Steps = append(stats.Steps, stat)
			continue
		}

		if c == nil {
			// kfetch over the candidate scores, then bitmap uselect.
			scores := bat.SelectFloat(smin, bm)
			sk := bat.KFetch(scores, k, true)
			maxbound := sk - tq
			sel := bat.USelectBitmap(smin, maxbound, math.Inf(1), n)
			bm.And(sel)
			stat.Candidates = bm.Count()
			stat.Pruned = count - stat.Candidates
			// Switch to positional joins once selectivity is high enough.
			if float64(bm.Count()) < opts.BitmapSwitch*float64(n) {
				c = bat.NewOIDVoid(0, bm.Slice())
				sminC = bat.JoinFloat(c, smin)
			}
		} else {
			sk := bat.KFetch(sminC, k, true)
			maxbound := sk - tq
			sel := bat.USelect(sminC, maxbound, math.Inf(1))
			// sel holds positions into the candidate array (void heads).
			newIDs := make([]int, len(sel.Tail))
			newScores := make([]float64, len(sel.Tail))
			for i, pos := range sel.Tail {
				newIDs[i] = c.Tail[pos]
				newScores[i] = sminC.Tail[pos]
			}
			c = bat.NewOIDVoid(0, newIDs)
			sminC = bat.NewFloatVoid(0, newScores)
			stat.Candidates = c.Len()
			stat.Pruned = count - stat.Candidates
		}
		stats.Steps = append(stats.Steps, stat)
		cur := bm.Count()
		if c != nil {
			cur = c.Len()
		}
		if cur <= k && stats.DimsUntilK == 0 {
			stats.DimsUntilK = processed
		}
	}

	// Final ranking.
	stats.SegmentsSearched = 1
	h := topk.NewLargest(k)
	if c == nil {
		bm.ForEach(func(id int) { h.Push(id, smin.Tail[id]) })
		stats.FinalCandidates = bm.Count()
	} else {
		for i, id := range c.Tail {
			h.Push(id, sminC.Tail[i])
		}
		stats.FinalCandidates = c.Len()
	}
	return Result{Results: h.Results(), Stats: stats}, nil
}

package core

import (
	"errors"
	"math"

	"bond/internal/bat"
	"bond/internal/bitmap"
	"bond/internal/topk"
)

// MILOptions configures the MIL reference engine.
type MILOptions struct {
	// K is the number of neighbors. Required, ≥ 1.
	K int
	// Step is the pruning granularity m. Default DefaultStep.
	Step int
	// BitmapSwitch is the candidate fraction below which the engine stops
	// using the bitmap representation and materializes the candidate set
	// for positional joins (Section 6.1: "after several iterations, when
	// the candidate set has reduced significantly, the query processor
	// switches to the standard positional joins approach"). 0 materializes
	// immediately; 1 keeps the bitmap until the end. Default 0.05.
	BitmapSwitch float64
	// Exclude initializes the bitmap with the complement of a prior
	// selection predicate (Section 6.1). May be nil.
	Exclude *bitmap.Bitmap
}

// ErrMILOptions reports invalid MIL engine options.
var ErrMILOptions = errors.New("core: invalid MIL options")

// SearchMIL executes BOND with criterion Hq through the MIL operator layer
// of package bat, mirroring the paper's Section 6.1 listing:
//
//  1. for i in 1..m do Di := [min](Hi, const Qi); Smin := [+](D1, …, Dm);
//  2. sk := Smin.kfetch(k); maxbound := sk − T(q⁺); C := Smin.uselect(maxbound, …);
//  3. for i in m+1..N do Hi := C.reverse.join(Hi);
//
// applied iteratively, with the early iterations using the bitmap-index
// implementation of uselect and the later ones the positional-join
// reduction. Results are identical to Search with criterion Hq.
func SearchMIL(s Source, q []float64, opts MILOptions) (Result, error) {
	return SearchMILScratch(s, q, opts, nil)
}

// SearchMILScratch is SearchMIL running the operator pipeline on pooled
// buffers (nil allocates privately): the score column, candidate bitmap,
// uselect result, and the positional-phase id/score columns are all reused
// — operator-at-a-time execution with recycled BAT heaps, as MonetDB
// itself keeps intermediate heaps around. The result list aliases the
// scratch and is valid until its next search.
func SearchMILScratch(s Source, q []float64, opts MILOptions, sc *Scratch) (Result, error) {
	if opts.K < 1 {
		return Result{}, ErrMILOptions
	}
	if len(q) != s.Dims() {
		return Result{}, ErrQueryMismatch
	}
	if opts.Step == 0 {
		opts.Step = DefaultStep
	}
	if opts.Step < 1 {
		return Result{}, ErrMILOptions
	}
	if opts.BitmapSwitch == 0 {
		opts.BitmapSwitch = 0.05
	}
	if opts.BitmapSwitch < 0 || opts.BitmapSwitch > 1 {
		return Result{}, ErrMILOptions
	}
	if sc == nil {
		sc = &Scratch{}
	}

	n := s.Len()
	sc.order = buildOrderInto(grow(sc.order, s.Dims()), q, nil, nil, OrderQueryDesc, 0, false)
	order := sc.order

	// The bitmap doubles as delete-mark carrier and predicate filter
	// (Sections 6.1–6.2): start from live ∧ ¬excluded.
	if sc.milBM == nil {
		sc.milBM = bitmap.New(0)
	}
	bm := sc.milBM
	bm.Reuse(n)
	bm.SetAll()
	bm.AndNot(deletedOf(s))
	if opts.Exclude != nil {
		// The exclusion bitmap may be smaller than the collection (sized
		// before concurrent appends); out-of-range ids are not excluded.
		opts.Exclude.ForEach(func(id int) {
			if id < n {
				bm.Clear(id)
			}
		})
	}
	if bm.Count() == 0 {
		return Result{}, ErrNoCandidates
	}
	k := opts.K
	if k > bm.Count() {
		k = bm.Count()
	}

	var stats Stats
	stats.Steps = sc.steps[:0]
	logStep := func(stat StepStat) {
		stats.Steps = append(stats.Steps, stat)
		sc.steps = stats.Steps
	}
	var processedQ float64
	tailQ := func(processed int) float64 {
		t := 0.0
		for _, d := range order[processed:] {
			t += q[d]
		}
		return t
	}

	// --- Bitmap phase: scores kept full-length, candidates as set bits. ---
	sc.milScore = zeroed(sc.milScore, n)
	smin := bat.NewFloatVoid(0, sc.milScore)
	var (
		candIDs    []int     // materialized candidates (nil while in bitmap phase)
		candScores []float64 // scores aligned with candIDs
	)
	total := len(order)
	processed := 0
	for processed < total {
		next := processed + opts.Step
		if next > total {
			next = total
		}
		for _, d := range order[processed:next] {
			hi := bat.NewFloatVoid(0, s.Column(d))
			qd := q[d]
			if candIDs == nil {
				// [min](Hi, const Qi) evaluated for candidate positions only.
				bm.ForEach(func(id int) {
					smin.Tail[id] += math.Min(hi.Tail[id], qd)
				})
				stats.ValuesScanned += int64(bm.Count())
			} else {
				// Hi reduced to the candidate set by a positional join into
				// the recycled gather column, then [min] and [+] in place.
				sc.milGather = grow(sc.milGather, len(candIDs))[:len(candIDs)]
				bat.JoinFloatInto(sc.milGather, &bat.OID{Tail: candIDs}, hi)
				bat.MapMinConstInto(sc.milGather, sc.milGather, qd)
				bat.AddInto(&bat.Float{Tail: candScores}, &bat.Float{Tail: sc.milGather})
				stats.ValuesScanned += int64(len(candIDs))
			}
			processedQ += qd
		}
		processed = next
		if processed >= total {
			break
		}

		count := bm.Count()
		if candIDs != nil {
			count = len(candIDs)
		}
		if count <= k {
			continue
		}

		stat := StepStat{DimsProcessed: processed}
		tq := tailQ(processed)
		if processedQ <= tq {
			stat.Skipped = true
			stat.Candidates = count
			logStep(stat)
			continue
		}

		if candIDs == nil {
			// kfetch over the candidate scores, then bitmap uselect.
			sc.milVals = bat.SelectFloatInto(grow(sc.milVals, bm.Count()), smin, bm)
			sk := topk.KthLargestWith(sc.kthHeap(), sc.milVals, k)
			maxbound := sk - tq
			if sc.milSel == nil {
				sc.milSel = bitmap.New(0)
			}
			sc.milSel.Reuse(n)
			bat.USelectBitmapInto(sc.milSel, smin, maxbound, math.Inf(1))
			bm.And(sc.milSel)
			stat.Candidates = bm.Count()
			stat.Pruned = count - stat.Candidates
			// Switch to positional joins once selectivity is high enough.
			if float64(bm.Count()) < opts.BitmapSwitch*float64(n) {
				sc.milIDs = bm.AppendSlice(grow(sc.milIDs, bm.Count()))
				candIDs = sc.milIDs
				sc.milVals = bat.SelectFloatInto(grow(sc.milVals, len(candIDs)), smin, bm)
				candScores = sc.milVals
			}
		} else {
			sk := topk.KthLargestWith(sc.kthHeap(), candScores, k)
			maxbound := sk - tq
			// uselect over the candidate scores yields positions into the
			// candidate array (void heads); gather the surviving ids and
			// scores into the ping-pong buffers.
			sel := bat.USelectInto(grow(sc.milIDs2, len(candIDs)),
				&bat.Float{Tail: candScores}, maxbound, math.Inf(1))
			sc.milIDs2 = sel
			newScores := grow(sc.milVals2, len(sel))[:len(sel)]
			sc.milVals2 = newScores
			for i, pos := range sel {
				newScores[i] = candScores[pos]
				sel[i] = candIDs[pos]
			}
			sc.milIDs, sc.milIDs2 = sc.milIDs2, sc.milIDs
			sc.milVals, sc.milVals2 = sc.milVals2, sc.milVals
			candIDs, candScores = sel, newScores
			stat.Candidates = len(candIDs)
			stat.Pruned = count - stat.Candidates
		}
		logStep(stat)
		cur := bm.Count()
		if candIDs != nil {
			cur = len(candIDs)
		}
		if cur <= k && stats.DimsUntilK == 0 {
			stats.DimsUntilK = processed
		}
	}

	// Final ranking.
	stats.SegmentsSearched = 1
	h := sc.outHeap(k, true)
	if candIDs == nil {
		bm.ForEach(func(id int) { h.Push(id, smin.Tail[id]) })
		stats.FinalCandidates = bm.Count()
	} else {
		for i, id := range candIDs {
			h.Push(id, candScores[i])
		}
		stats.FinalCandidates = len(candIDs)
	}
	sc.results = h.AppendResults(sc.results[:0])
	return Result{Results: sc.results, Stats: stats}, nil
}

package core

import (
	"testing"

	"bond/internal/dataset"
	"bond/internal/quant"
	"bond/internal/seqscan"
)

func TestCompressedMatchesExactHistogram(t *testing.T) {
	vs, store := corel(t)
	qs := store.Quantize(quant.NewUnit())
	queries, _ := dataset.SampleQueries(vs, 5, 17)
	for _, q := range queries {
		res, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Hq})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := seqscan.SearchHistogram(vs, q, 10)
		sameResults(t, "compressed Hq", res.Results, want)
		if res.FilterCandidates < 10 {
			t.Errorf("filter kept %d < k candidates", res.FilterCandidates)
		}
	}
}

func TestCompressedMatchesExactEuclidean(t *testing.T) {
	vs, store := corel(t)
	qs := store.Quantize(quant.NewUnit())
	queries, _ := dataset.SampleQueries(vs, 5, 18)
	for _, q := range queries {
		res, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Eq, NormalizedData: true})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := seqscan.SearchEuclidean(vs, q, 10)
		sameResults(t, "compressed Eq", res.Results, want)
	}
}

func TestCompressedFilterPrunes(t *testing.T) {
	vs, store := corel(t)
	qs := store.Quantize(quant.NewUnit())
	q := vs[31]
	res, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	// Figure 9: pruning on compressed fragments follows a similar trend to
	// the exact fragments. Demand a substantial reduction.
	if res.FilterCandidates > len(vs)/4 {
		t.Errorf("filter kept %d of %d candidates", res.FilterCandidates, len(vs))
	}
	// Refinement must touch far less data than a full scan.
	full := int64(len(vs) * store.Dims())
	if res.RefineValuesScanned >= full {
		t.Errorf("refinement scanned %d ≥ full scan %d", res.RefineValuesScanned, full)
	}
}

func TestCompressedRejectsUnsupportedOptions(t *testing.T) {
	vs, store := corel(t)
	qs := store.Quantize(quant.NewUnit())
	q := vs[0]
	if _, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Hh}); err == nil {
		t.Error("Hh must be rejected for compressed search")
	}
	if _, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Ev}); err == nil {
		t.Error("Ev must be rejected for compressed search")
	}
	w := make([]float64, store.Dims())
	for i := range w {
		w[i] = 1
	}
	if _, err := SearchCompressed(store, qs, q, Options{K: 10, Criterion: Eq, Weights: w}); err == nil {
		t.Error("weights must be rejected for compressed search")
	}
	if _, err := SearchCompressed(store, qs, q, Options{K: 0, Criterion: Hq}); err == nil {
		t.Error("K=0 must be rejected")
	}
}

func TestCompressedCoarseQuantizerStillExact(t *testing.T) {
	// Even a brutal 4-level quantizer must not cause false dismissals —
	// the filter just keeps more candidates.
	vs, store := corel(t)
	coarse := store.Quantize(quant.New(0, 1, 4))
	fine := store.Quantize(quant.NewUnit())
	q := vs[12]
	rc, err := SearchCompressed(store, coarse, q, Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := SearchCompressed(store, fine, q, Options{K: 5, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := seqscan.SearchHistogram(vs, q, 5)
	sameResults(t, "coarse", rc.Results, want)
	sameResults(t, "fine", rf.Results, want)
	if rc.FilterCandidates < rf.FilterCandidates {
		t.Errorf("coarse filter kept %d < fine filter %d", rc.FilterCandidates, rf.FilterCandidates)
	}
}

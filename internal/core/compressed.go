package core

import (
	"fmt"

	"bond/internal/kernel"
	"bond/internal/metric"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// CompressedResult is the outcome of a filter-and-refine search on 8-bit
// fragments (Section 7.4): the exact top-k, the candidate set the filter
// step produced, and separate work counters for the two phases — the
// quantities Table 4 reports.
type CompressedResult struct {
	Results []topk.Result
	// FilterCandidates is the candidate-set size after the filter phase.
	FilterCandidates int
	// FilterStats describes the pruning run on the compressed fragments.
	FilterStats Stats
	// RefineValuesScanned counts exact coefficients read during refinement.
	RefineValuesScanned int64
	// ExactValuesScanned counts coefficients read by exact BOND on
	// segments without compressed fragments (the mutable active segment of
	// a segmented collection); 0 for a flat single-store search.
	ExactValuesScanned int64
}

// validateCompressed rejects option combinations the compressed path does
// not support (shared by the flat and the segmented entry points).
func validateCompressed(opts Options) error {
	if len(opts.Weights) > 0 || len(opts.Dims) > 0 {
		return fmt.Errorf("core: compressed search supports full-space unweighted queries only")
	}
	switch opts.Criterion {
	case Hq, Eq:
		return nil
	default:
		return fmt.Errorf("core: compressed search supports Hq and Eq, not %v", opts.Criterion)
	}
}

// SearchCompressed runs BOND on the quantized fragments as a filter step
// and refines the surviving candidates on the exact columns. Supported
// criteria are Hq (histogram intersection, as in Figure 9) and Eq
// (Euclidean). Both maintain a per-vector score interval [sLo, sHi] from
// the quantization cell bounds, so no true neighbor is ever filtered out.
func SearchCompressed(s Source, qs *vstore.QuantStore, q []float64, opts Options) (CompressedResult, error) {
	if err := opts.validate(s, q); err != nil {
		return CompressedResult{}, err
	}
	if err := validateCompressed(opts); err != nil {
		return CompressedResult{}, err
	}

	f := &compressedFilter{s: s, qs: qs, q: q, opts: opts}
	f.init()
	f.run()
	return f.refine(), nil
}

// FilterCompressed runs only the filter phase of a compressed search and
// returns the surviving candidate ids (a superset of the true top-k) with
// the filter statistics. Table 4 times this phase against a VA-File scan.
func FilterCompressed(s Source, qs *vstore.QuantStore, q []float64, opts Options) ([]int, Stats, error) {
	if err := opts.validate(s, q); err != nil {
		return nil, Stats{}, err
	}
	if err := validateCompressed(opts); err != nil {
		return nil, Stats{}, err
	}
	f := &compressedFilter{s: s, qs: qs, q: q, opts: opts}
	f.init()
	f.run()
	f.finalPrune()
	ids := append([]int(nil), f.cands...)
	return ids, f.stats, nil
}

// ValidateCompressed exposes the compressed-path option check to the query
// planner: compressed and VA-File access paths support full-space
// unweighted Hq and Eq queries only.
func ValidateCompressed(opts Options) error {
	return validateCompressed(opts)
}

// SearchCompressedOne runs filter-and-refine on a single segment without
// re-validating (callers validate once via ValidateSegments plus
// ValidateCompressed). empty is true when no candidate was eligible.
func SearchCompressedOne(src Source, qs *vstore.QuantStore, q []float64, opts Options) (CompressedResult, bool) {
	return SearchCompressedOneScratch(src, qs, q, opts, nil)
}

// SearchCompressedOneScratch is SearchCompressedOne running on pooled
// scratch buffers (nil allocates privately). The result list aliases the
// scratch and is valid until its next search.
func SearchCompressedOneScratch(src Source, qs *vstore.QuantStore, q []float64, opts Options, sc *Scratch) (CompressedResult, bool) {
	f := &compressedFilter{s: src, qs: qs, q: q, opts: opts, sc: sc}
	f.init()
	if len(f.cands) == 0 {
		return CompressedResult{}, true
	}
	return f.refineRun(), false
}

type compressedFilter struct {
	s    Source
	qs   *vstore.QuantStore
	q    []float64
	opts Options

	order      []int
	k          int
	cands      []int
	sLo, sHi   []float64
	processedQ float64
	stats      Stats

	sc *Scratch
}

func (f *compressedFilter) init() {
	if f.sc == nil {
		f.sc = &Scratch{}
	}
	sc := f.sc
	sc.order = buildOrderInto(grow(sc.order, f.s.Dims()),
		f.q, nil, nil, f.opts.Order, f.opts.Seed, f.opts.Criterion.Distance())
	f.order = sc.order
	deleted := deletedOf(f.s)
	cands := grow(sc.cands, f.s.Len())
	for id := 0; id < f.s.Len(); id++ {
		if deleted.Get(id) {
			continue
		}
		if excludedID(f.opts.Exclude, id) {
			continue
		}
		cands = append(cands, id)
	}
	sc.cands = cands
	f.cands = cands
	f.k = f.opts.K
	if f.k > len(f.cands) {
		f.k = len(f.cands)
	}
	sc.sLo = zeroed(sc.sLo, len(f.cands))
	sc.sHi = zeroed(sc.sHi, len(f.cands))
	f.sLo, f.sHi = sc.sLo, sc.sHi
	f.stats.Steps = sc.steps[:0]
}

func (f *compressedFilter) run() {
	total := len(f.order)
	for processed := 0; processed < total; {
		next := processed + f.opts.Step
		if next > total {
			next = total
		}
		f.accumulate(processed, next)
		processed = next
		if len(f.cands) <= f.k {
			continue
		}
		f.pruneStep(processed)
	}
	f.stats.FinalCandidates = len(f.cands)
}

// accumulate folds one batch of code columns into the score intervals.
// The cell bounds depend only on (code, q_d), so each column's 256
// possible contributions are tabulated up front and the candidate loop is
// two table loads and adds per cell — the same values in the same order
// as computing the bounds inline, so scores are bit-identical, at a
// fraction of the arithmetic.
func (f *compressedFilter) accumulate(from, to int) {
	hist := !f.opts.Criterion.Distance()
	var tblLo, tblHi [256]float64
	for _, d := range f.order[from:to] {
		codes := f.qs.Codes[d]
		qd := f.q[d]
		if len(f.cands) >= f.qs.Q.Levels {
			for c := 0; c < f.qs.Q.Levels; c++ {
				if hist {
					tblLo[c], tblHi[c] = f.qs.Q.MinIntersectBounds(uint8(c), qd)
				} else {
					tblLo[c], tblHi[c] = f.qs.Q.SqDistBounds(uint8(c), qd)
				}
			}
			kernel.AccCodeBounds(f.sLo, f.sHi, codes, f.cands, &tblLo, &tblHi)
		} else {
			// Fewer candidates than code levels: tabulating would cost
			// more bound evaluations than it saves.
			for ci, id := range f.cands {
				var lo, hi float64
				if hist {
					lo, hi = f.qs.Q.MinIntersectBounds(codes[id], qd)
				} else {
					lo, hi = f.qs.Q.SqDistBounds(codes[id], qd)
				}
				f.sLo[ci] += lo
				f.sHi[ci] += hi
			}
		}
		f.processedQ += qd
		f.stats.ValuesScanned += int64(len(f.cands))
	}
}

// pruneStep applies the Hq (or Eq) rule on the score intervals: a vector's
// best case is its optimistic partial score plus the tail bound; the k-th
// pessimistic partial score anchors κ.
func (f *compressedFilter) pruneStep(processed int) {
	stat := StepStat{DimsProcessed: processed}
	before := len(f.cands)
	keep := grow(f.sc.keep, before)[:before]
	f.sc.keep = keep

	if !f.opts.Criterion.Distance() {
		tail := metric.NewHistTail(f.qTail(processed))
		tq := tail.HqUpper()
		if !f.opts.DisableFutileSkip && f.processedQ <= tq {
			stat.Skipped = true
			stat.Candidates = before
			f.appendStep(stat)
			return
		}
		kappa := topk.KthLargestWith(f.sc.kthHeap(), f.sLo, f.k)
		for ci := range keep {
			keep[ci] = f.sHi[ci]+tq >= kappa
		}
	} else {
		tail := f.sc.euc.Reset(f.qTail(processed))
		bound := tail.EqUpper()
		if f.opts.NormalizedData {
			bound = tail.EqUpperNormalized()
		}
		kappa := topk.KthSmallestWith(f.sc.kthHeap(), f.sHi, f.k) + bound
		for ci := range keep {
			keep[ci] = f.sLo[ci] <= kappa
		}
	}

	out := 0
	for ci, ok := range keep {
		if !ok {
			continue
		}
		f.cands[out] = f.cands[ci]
		f.sLo[out] = f.sLo[ci]
		f.sHi[out] = f.sHi[ci]
		out++
	}
	f.cands = f.cands[:out]
	f.sLo = f.sLo[:out]
	f.sHi = f.sHi[:out]

	stat.Candidates = out
	stat.Pruned = before - out
	f.appendStep(stat)
	if out <= f.k && f.stats.DimsUntilK == 0 {
		f.stats.DimsUntilK = processed
	}
}

// appendStep logs one pruning iteration, keeping the scratch-backed step
// buffer's growth for reuse.
func (f *compressedFilter) appendStep(stat StepStat) {
	f.stats.Steps = append(f.stats.Steps, stat)
	f.sc.steps = f.stats.Steps
}

func (f *compressedFilter) qTail(processed int) []float64 {
	rem := f.order[processed:]
	out := grow(f.sc.qtail, len(rem))
	for _, d := range rem {
		out = append(out, f.q[d])
	}
	f.sc.qtail = out
	return out
}

// finalPrune drops candidates that cannot reach the k-th best even with
// exact tails exhausted (all dimensions processed: the interval is final).
func (f *compressedFilter) finalPrune() {
	if len(f.cands) <= f.k {
		return
	}
	var kappa float64
	keep := grow(f.sc.keep, len(f.cands))[:len(f.cands)]
	f.sc.keep = keep
	if !f.opts.Criterion.Distance() {
		kappa = topk.KthLargestWith(f.sc.kthHeap(), f.sLo, f.k)
		for ci := range keep {
			keep[ci] = f.sHi[ci] >= kappa
		}
	} else {
		kappa = topk.KthSmallestWith(f.sc.kthHeap(), f.sHi, f.k)
		for ci := range keep {
			keep[ci] = f.sLo[ci] <= kappa
		}
	}
	out := 0
	for ci, ok := range keep {
		if ok {
			f.cands[out] = f.cands[ci]
			out++
		}
	}
	f.cands = f.cands[:out]
}

// refine computes exact scores for the filter survivors from the exact
// columns and returns the true top-k (scratch-backed result list).
func (f *compressedFilter) refine() CompressedResult {
	f.finalPrune()
	res := CompressedResult{
		FilterCandidates: len(f.cands),
		FilterStats:      f.stats,
	}
	dist := f.opts.Criterion.Distance()
	exact := zeroed(f.sc.aux, len(f.cands))
	f.sc.aux = exact
	for d := 0; d < f.s.Dims(); d++ {
		col := f.s.Column(d)
		qd := f.q[d]
		if dist {
			kernel.AccSqDist(exact, col, f.cands, qd)
		} else {
			kernel.AccMinQ(exact, col, f.cands, qd)
		}
		res.RefineValuesScanned += int64(len(f.cands))
	}
	h := f.sc.outHeap(f.k, !dist)
	for ci, id := range f.cands {
		h.Push(id, exact[ci])
	}
	f.sc.results = h.AppendResults(f.sc.results[:0])
	res.Results = f.sc.results
	return res
}

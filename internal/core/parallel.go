package core

import (
	"fmt"
	"sync"

	"bond/internal/bitmap"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// SearchParallel runs BOND across shards of the collection concurrently
// and merges the shard results into the global top-k. Each shard prunes
// against its own local κ, which is never tighter than the global one, so
// no true neighbor can be lost; the merge of per-shard top-k lists is
// therefore exact. Total work is slightly higher than single-threaded
// Search (local κ prunes later), traded for parallel column scanning.
//
// shards < 2 falls back to Search. The Stats of the shard searches are
// summed; Steps are omitted (they are per-shard quantities).
func SearchParallel(s *vstore.Store, q []float64, opts Options, shards int) (Result, error) {
	if shards < 2 {
		return Search(s, q, opts)
	}
	if err := opts.validate(s, q); err != nil {
		return Result{}, err
	}
	n := s.Len()
	if shards > n {
		shards = n
	}

	type shardOut struct {
		res Result
		err error
	}
	outs := make([]shardOut, shards)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			lo := sh * n / shards
			hi := (sh + 1) * n / shards
			// A shard excludes everything outside [lo, hi) plus the
			// caller's own exclusions.
			excl := bitmap.NewFull(n)
			for id := lo; id < hi; id++ {
				excl.Clear(id)
			}
			if opts.Exclude != nil {
				excl.Or(opts.Exclude)
			}
			shardOpts := opts
			shardOpts.Exclude = excl
			res, err := Search(s, q, shardOpts)
			if err == ErrNoCandidates {
				// A fully-excluded shard contributes nothing.
				outs[sh] = shardOut{res: Result{}}
				return
			}
			outs[sh] = shardOut{res: res, err: err}
		}(sh)
	}
	wg.Wait()

	var merged Result
	lists := make([][]topk.Result, 0, shards)
	for sh, o := range outs {
		if o.err != nil {
			return Result{}, fmt.Errorf("core: shard %d: %w", sh, o.err)
		}
		lists = append(lists, o.res.Results)
		merged.Stats.ValuesScanned += o.res.Stats.ValuesScanned
		merged.Stats.FinalCandidates += o.res.Stats.FinalCandidates
	}
	empty := true
	for _, l := range lists {
		if len(l) > 0 {
			empty = false
			break
		}
	}
	if empty {
		return Result{}, ErrNoCandidates
	}
	merged.Results = topk.Merge(opts.K, !opts.Criterion.Distance(), lists...)
	return merged, nil
}

package core

import (
	"bond/internal/bitmap"
)

// rangeView exposes a contiguous id range [lo, hi) of a flat source as an
// independent Source with local ids 0…hi−lo, by slicing the columns and
// totals. It is how SearchParallel turns a monolithic store into virtual
// segments; a genuinely segmented store provides real segments instead.
type rangeView struct {
	src     Source
	lo, hi  int
	deleted *bitmap.Bitmap // localized delete marks, precomputed
}

func newRangeView(src Source, deleted *bitmap.Bitmap, lo, hi int) rangeView {
	local := bitmap.New(hi - lo)
	for id := lo; id < hi; id++ {
		if deleted.Get(id) {
			local.Set(id - lo)
		}
	}
	return rangeView{src: src, lo: lo, hi: hi, deleted: local}
}

func (v rangeView) Dims() int                      { return v.src.Dims() }
func (v rangeView) Len() int                       { return v.hi - v.lo }
func (v rangeView) Column(d int) []float64         { return v.src.Column(d)[v.lo:v.hi] }
func (v rangeView) Totals() []float64              { return v.src.Totals()[v.lo:v.hi] }
func (v rangeView) DeletedBitmap() *bitmap.Bitmap  { return v.deleted.Clone() }
func (v rangeView) DeletedView() *bitmap.Bitmap    { return v.deleted }
func (v rangeView) ValueRange() (float64, float64) { return v.src.ValueRange() }

// SearchParallel runs BOND across contiguous shards of a flat collection
// concurrently and merges the shard results into the global top-k. Each
// shard prunes against its own local κ, which is never tighter than the
// global one, so no true neighbor can be lost; the merge of per-shard
// top-k lists is therefore exact. Total work is slightly higher than
// single-threaded Search (local κ prunes later), traded for parallel
// column scanning.
//
// shards < 2 falls back to Search. Segmented collections should call
// SearchSegmentsParallel instead, where the shards are the physical sealed
// segments rather than arbitrary id ranges.
func SearchParallel(s Source, q []float64, opts Options, shards int) (Result, error) {
	if shards < 2 {
		return Search(s, q, opts)
	}
	if err := opts.validate(s, q); err != nil {
		return Result{}, err
	}
	n := s.Len()
	if n == 0 {
		return Result{}, ErrNoCandidates
	}
	if shards > n {
		shards = n
	}
	deleted := s.DeletedBitmap()
	views := make([]SegmentView, shards)
	for sh := 0; sh < shards; sh++ {
		lo := sh * n / shards
		hi := (sh + 1) * n / shards
		views[sh] = SegmentView{Src: newRangeView(s, deleted, lo, hi), Base: lo}
	}
	return SearchSegmentsParallel(views, q, opts)
}

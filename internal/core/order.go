package core

import (
	"math/rand"
	"slices"
)

// buildOrder returns the processing order over the effective dimensions:
// those listed in dims (or all, if dims is empty), minus zero-weight
// dimensions when weights are present — BOND never reads columns that
// cannot contribute to the score (Section 8.1).
//
// OrderQueryDesc sorts by decreasing query value; weighted queries sort by
// each dimension's largest possible contribution — w·max(q, 1−q)² for
// distance metrics, w·q for histogram intersection. (The paper's
// Section 8.2 suggests weight-normalized query skew, i.e. w·q²; for
// distance metrics that key can schedule a heavy-weight dimension with a
// small query value last, leaving a huge term in every vector's tail upper
// bound and stalling pruning entirely. The max-contribution key processes
// exactly the dimensions that can separate candidates first and reduces to
// the same ordering when query values exceed ½.)
func buildOrder(q, weights []float64, dims []int, order Order, seed int64, distance bool) []int {
	return buildOrderInto(nil, q, weights, dims, order, seed, distance)
}

// buildOrderInto is buildOrder appending into a caller-provided buffer
// (allocation-free when dst has the capacity, except for OrderRandom's
// seeded generator).
func buildOrderInto(dst []int, q, weights []float64, dims []int, order Order, seed int64, distance bool) []int {
	eff := dst[:0]
	if len(dims) > 0 {
		eff = append(eff, dims...)
	} else {
		for i := range q {
			eff = append(eff, i)
		}
	}
	if len(weights) > 0 {
		kept := eff[:0]
		for _, d := range eff {
			if weights[d] > 0 {
				kept = append(kept, d)
			}
		}
		eff = kept
	}

	key := func(d int) float64 {
		if len(weights) == 0 {
			return q[d]
		}
		if !distance {
			return weights[d] * q[d] // max contribution of min(h,q) is q
		}
		m := q[d]
		if 1-q[d] > m {
			m = 1 - q[d]
		}
		return weights[d] * m * m
	}

	cmpDesc := func(a, b int) int {
		ka, kb := key(a), key(b)
		switch {
		case ka > kb:
			return -1
		case ka < kb:
			return 1
		}
		return 0
	}
	switch order {
	case OrderQueryDesc:
		slices.SortStableFunc(eff, cmpDesc)
	case OrderQueryAsc:
		slices.SortStableFunc(eff, func(a, b int) int { return cmpDesc(b, a) })
	case OrderRandom:
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(eff), func(i, j int) { eff[i], eff[j] = eff[j], eff[i] })
	case OrderNatural:
		// keep storage order
	}
	return eff
}

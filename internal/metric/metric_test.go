package metric

import (
	"math"
	"testing"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestHistIntersectBasics(t *testing.T) {
	h := []float64{0.5, 0.3, 0.2}
	q := []float64{0.2, 0.5, 0.3}
	// min: 0.2 + 0.3 + 0.2 = 0.7
	if got := HistIntersect(h, q); !almostEqual(got, 0.7, 1e-12) {
		t.Errorf("HistIntersect = %v, want 0.7", got)
	}
}

func TestHistIntersectIdenticalIsOne(t *testing.T) {
	h := []float64{0.25, 0.25, 0.25, 0.25}
	if got := HistIntersect(h, h); !almostEqual(got, 1, 1e-12) {
		t.Errorf("self intersection = %v, want 1", got)
	}
}

func TestHistIntersectDisjointIsZero(t *testing.T) {
	h := []float64{1, 0}
	q := []float64{0, 1}
	if got := HistIntersect(h, q); got != 0 {
		t.Errorf("disjoint intersection = %v, want 0", got)
	}
}

func TestHistIntersectSymmetric(t *testing.T) {
	h := []float64{0.6, 0.1, 0.3}
	q := []float64{0.2, 0.7, 0.1}
	if HistIntersect(h, q) != HistIntersect(q, h) {
		t.Error("histogram intersection must be symmetric")
	}
}

func TestHistIntersectPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	HistIntersect([]float64{1}, []float64{1, 2})
}

func TestSqEuclideanBasics(t *testing.T) {
	v := []float64{0, 0}
	q := []float64{0.3, 0.4}
	if got := SqEuclidean(v, q); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("SqEuclidean = %v, want 0.25", got)
	}
	if got := SqEuclidean(q, q); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestSqEuclideanSymmetric(t *testing.T) {
	v := []float64{0.1, 0.9, 0.5}
	q := []float64{0.7, 0.2, 0.4}
	if SqEuclidean(v, q) != SqEuclidean(q, v) {
		t.Error("squared Euclidean must be symmetric")
	}
}

func TestWeightedSqEuclidean(t *testing.T) {
	v := []float64{0, 1}
	q := []float64{1, 0}
	w := []float64{2, 3}
	if got := WeightedSqEuclidean(v, q, w); !almostEqual(got, 5, 1e-12) {
		t.Errorf("WeightedSqEuclidean = %v, want 5", got)
	}
}

func TestWeightedReducesToUnweighted(t *testing.T) {
	v := []float64{0.1, 0.4, 0.8}
	q := []float64{0.5, 0.5, 0.2}
	w := []float64{1, 1, 1}
	if got, want := WeightedSqEuclidean(v, q, w), SqEuclidean(v, q); !almostEqual(got, want, 1e-12) {
		t.Errorf("unit weights: %v != %v", got, want)
	}
}

func TestEuclideanSim(t *testing.T) {
	// Equation 3: Sim = 1 − sqrt(δ/N). Maximum distance N gives Sim 0.
	if got := EuclideanSim(4, 4); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Sim(max dist) = %v, want 0", got)
	}
	if got := EuclideanSim(0, 4); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Sim(0) = %v, want 1", got)
	}
	if got := EuclideanSim(1, 4); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("Sim(1,N=4) = %v, want 0.5", got)
	}
}

func TestSumAndIsNormalized(t *testing.T) {
	if got := Sum([]float64{0.2, 0.3, 0.5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Sum = %v", got)
	}
	if !IsNormalized([]float64{0.5, 0.5}, 1e-9) {
		t.Error("normalized vector not recognized")
	}
	if IsNormalized([]float64{0.5, 0.6}, 1e-9) {
		t.Error("unnormalized vector accepted")
	}
}

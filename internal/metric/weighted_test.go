package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedTailReducesToUnweightedBounds(t *testing.T) {
	qTail := []float64{0.4, 0.1, 0.3}
	w := []float64{1, 1, 1}
	wt := NewWeightedTail(qTail, w)
	et := NewEucTail(qTail)
	for _, tv := range []float64{0, 0.3, 0.8, 1.5, 2.9} {
		// The gain-form upper bound may be looser than Lemma 1 by at most
		// one gain term, but must always dominate it.
		if wt.Upper(tv) < et.EvUpper(tv)-1e-12 {
			t.Errorf("unit-weight Upper(%v) = %v below Lemma 1 %v", tv, wt.Upper(tv), et.EvUpper(tv))
		}
		// The lower bound must match Lemma 2 exactly (Σ1/w = r).
		if got, want := wt.Lower(tv), et.EvLowerSimple(tv); !almostEqual(got, want, 1e-12) {
			t.Errorf("unit-weight Lower(%v) = %v, want %v", tv, got, want)
		}
	}
}

func TestWeightedLowerEquation15(t *testing.T) {
	// Eq. 15: min Σ w_i d_i² s.t. Σ d_i = D is D²/Σ(1/w_i).
	qTail := []float64{0.2, 0.2}
	w := []float64{1, 4}
	wt := NewWeightedTail(qTail, w)
	// t = 1.4: D = 1.0; Σ1/w = 1.25; bound = 1/1.25 = 0.8.
	if got := wt.Lower(1.4); !almostEqual(got, 0.8, 1e-12) {
		t.Errorf("Lower = %v, want 0.8", got)
	}
	// Verify against the analytic optimum d_i ∝ 1/w_i: d = (0.8, 0.2),
	// cost = 1·0.64 + 4·0.04 = 0.8. ✓
}

func TestWeightedZeroWeightAbsorption(t *testing.T) {
	// One zero-weight dimension can absorb up to one unit of imbalance.
	qTail := []float64{0.5, 0.0}
	w := []float64{1, 0}
	wt := NewWeightedTail(qTail, w)
	// t = 1.2: positive dims should carry 0.5 (= T(q⁺_pos)), absorber takes
	// 0.7 ≤ 1: lower bound 0.
	if got := wt.Lower(1.2); got != 0 {
		t.Errorf("Lower = %v, want 0 (absorber covers imbalance)", got)
	}
	// t = 1.8: absorber full at 1, positive dim must carry 0.8:
	// D = 0.3, bound = 0.09.
	if got := wt.Lower(1.8); !almostEqual(got, 0.09, 1e-12) {
		t.Errorf("Lower = %v, want 0.09", got)
	}
}

func TestWeightedAllZeroWeights(t *testing.T) {
	wt := NewWeightedTail([]float64{0.5, 0.5}, []float64{0, 0})
	if wt.Lower(2) != 0 || wt.Upper(2) != 0 || wt.UpperConst() != 0 {
		t.Error("all-zero weights must give zero bounds")
	}
}

func TestWeightedUpperAllMassAtHeavyDim(t *testing.T) {
	// This is the configuration where the published Eq. 14 greedy (ordering
	// by w·q²) picks the wrong vertex: q = (0.4, 0.1), w = (1, 100), t = 1.
	// True maximum places the mass on the heavy dimension:
	// 100·(0.9)² + 1·(0.4)² = 81.16.
	qTail := []float64{0.4, 0.1}
	w := []float64{1, 100}
	wt := NewWeightedTail(qTail, w)
	truth := WeightedSqEuclidean([]float64{0, 1}, qTail, w)
	if !almostEqual(truth, 81.16, 1e-9) {
		t.Fatalf("sanity: truth = %v", truth)
	}
	if wt.Upper(1) < truth-1e-9 {
		t.Errorf("Upper(1) = %v must dominate true max %v", wt.Upper(1), truth)
	}
}

func TestWeightedPanics(t *testing.T) {
	if r := func() (r any) {
		defer func() { r = recover() }()
		NewWeightedTail([]float64{1}, []float64{1, 2})
		return nil
	}(); r == nil {
		t.Error("expected panic on length mismatch")
	}
	if r := func() (r any) {
		defer func() { r = recover() }()
		NewWeightedTail([]float64{1}, []float64{-1})
		return nil
	}(); r == nil {
		t.Error("expected panic on negative weight")
	}
}

// enumVertexMax computes the exact maximum of Σ w_i (v_i − q_i)² over the
// slab {Σ v_i = t, 0 ≤ v_i ≤ 1} by enumerating all vertices (subsets of
// ones plus one fractional coordinate). Exponential — test sizes only.
func enumVertexMax(q, w []float64, t float64) float64 {
	r := len(q)
	ones := int(math.Floor(t))
	u := t - float64(ones)
	if ones >= r {
		return WeightedSqEuclidean(onesVec(r), q, w)
	}
	best := math.Inf(-1)
	// Choose the set of 1-coordinates (size `ones`) and the fractional
	// coordinate j via bitmask enumeration.
	for mask := 0; mask < 1<<r; mask++ {
		if popcount(mask) != ones {
			continue
		}
		for j := 0; j < r; j++ {
			if mask&(1<<j) != 0 {
				continue
			}
			v := make([]float64, r)
			for i := 0; i < r; i++ {
				if mask&(1<<i) != 0 {
					v[i] = 1
				}
			}
			v[j] = u
			if d := WeightedSqEuclidean(v, q, w); d > best {
				best = d
			}
		}
		if ones == r { // no fractional coordinate needed
			v := make([]float64, r)
			for i := 0; i < r; i++ {
				if mask&(1<<i) != 0 {
					v[i] = 1
				}
			}
			if d := WeightedSqEuclidean(v, q, w); d > best {
				best = d
			}
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

func onesVec(r int) []float64 {
	v := make([]float64, r)
	for i := range v {
		v[i] = 1
	}
	return v
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// Property: the weighted upper bound dominates the exact vertex maximum
// (hence every feasible tail), and the lower bound is never beaten by a
// random feasible tail.
func TestWeightedBoundsValid(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw)%5 + 1 // vertex enumeration is exponential
		q := make([]float64, r)
		w := make([]float64, r)
		for i := range q {
			q[i] = rng.Float64()
			w[i] = rng.Float64() * 10
			if rng.Intn(4) == 0 {
				w[i] = 0
			}
		}
		wt := NewWeightedTail(q, w)
		tv := rng.Float64() * float64(r)
		exact := enumVertexMax(q, w, tv)
		if wt.Upper(tv) < exact-1e-9 {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			v := randomFeasibleTail(rng, r, tv)
			d := WeightedSqEuclidean(v, q, w)
			if d < wt.Lower(tailSum(v))-1e-9 {
				return false
			}
			if d > wt.UpperConst()+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomFeasibleTail draws a random vector tail with coordinates in [0,1]
// whose sum is (approximately) the requested mass, by rejection-free
// scaling with clamping.
func randomFeasibleTail(rng *rand.Rand, r int, mass float64) []float64 {
	v := make([]float64, r)
	remaining := mass
	perm := rng.Perm(r)
	for _, i := range perm {
		hi := math.Min(1, remaining)
		x := rng.Float64() * hi
		v[i] = x
		remaining -= x
	}
	// Distribute any leftover greedily.
	for _, i := range perm {
		if remaining <= 0 {
			break
		}
		room := 1 - v[i]
		add := math.Min(room, remaining)
		v[i] += add
		remaining -= add
	}
	return v
}

func tailSum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func TestEqUpperSimple(t *testing.T) {
	// q tail = {0.3, 0.8}: Σ max(q,1−q)² = 0.49 + 0.64 = 1.13.
	tail := NewEucTail([]float64{0.3, 0.8})
	if got := tail.EqUpper(); !almostEqual(got, 1.13, 1e-12) {
		t.Errorf("EqUpper = %v, want 1.13", got)
	}
}

func TestEqUpperNormalized(t *testing.T) {
	// q tail = {0.3, 0.1}: Σq² = 0.10; best single placement of mass 1 is at
	// qmin = 0.1 with gain (0.9)² − (0.1)² = 0.8. Bound = 0.9.
	tail := NewEucTail([]float64{0.3, 0.1})
	if got := tail.EqUpperNormalized(); !almostEqual(got, 0.9, 1e-12) {
		t.Errorf("EqUpperNormalized = %v, want 0.9", got)
	}
	// When all remaining q > 0.5, adding mass only decreases distance:
	// bound is Σq².
	tail2 := NewEucTail([]float64{0.8, 0.6})
	if got := tail2.EqUpperNormalized(); !almostEqual(got, 1.0, 1e-12) {
		t.Errorf("EqUpperNormalized(all>0.5) = %v, want 1.0", got)
	}
	// The normalized bound must never exceed the generic corner bound.
	if tail.EqUpperNormalized() > tail.EqUpper() {
		t.Error("normalized bound looser than generic bound")
	}
}

func TestEvUpperHandExamples(t *testing.T) {
	// q tail = {0.5, 0.2} (descending), t = 1: one coordinate at 1 on the
	// smallest q: (1−0.2)² + 0.5² = 0.64 + 0.25 = 0.89.
	tail := NewEucTail([]float64{0.2, 0.5})
	if got := tail.EvUpper(1); !almostEqual(got, 0.89, 1e-12) {
		t.Errorf("EvUpper(1) = %v, want 0.89", got)
	}
	// t = 0: all zeros: Σ q² = 0.29.
	if got := tail.EvUpper(0); !almostEqual(got, 0.29, 1e-12) {
		t.Errorf("EvUpper(0) = %v, want 0.29", got)
	}
	// t = 2: all ones: (1−0.5)² + (1−0.2)² = 0.25 + 0.64 = 0.89.
	if got := tail.EvUpper(2); !almostEqual(got, 0.89, 1e-12) {
		t.Errorf("EvUpper(2) = %v, want 0.89", got)
	}
	// t = 0.3: fractional mass on the smallest q: (0.3−0.2)² + 0.25 = 0.26.
	if got := tail.EvUpper(0.3); !almostEqual(got, 0.26, 1e-12) {
		t.Errorf("EvUpper(0.3) = %v, want 0.26", got)
	}
	// t = 1.4: 1 on q=0.2, 0.4 on q=0.5: 0.64 + (0.4−0.5)² = 0.65.
	if got := tail.EvUpper(1.4); !almostEqual(got, 0.65, 1e-12) {
		t.Errorf("EvUpper(1.4) = %v, want 0.65", got)
	}
}

func TestEvLowerHandExamples(t *testing.T) {
	// q tail = {0.5, 0.3}, T(q⁺) = 0.8.
	tail := NewEucTail([]float64{0.5, 0.3})
	// t = 0.8: perfect match possible: lower bound 0.
	if got := tail.EvLower(0.8); !almostEqual(got, 0, 1e-12) {
		t.Errorf("EvLower(T(q+)) = %v, want 0", got)
	}
	// t = 1.0: even spread +0.1 each (feasible): 2·0.01 = 0.02.
	if got := tail.EvLower(1.0); !almostEqual(got, 0.02, 1e-12) {
		t.Errorf("EvLower(1.0) = %v, want 0.02", got)
	}
	// t = 0: v must be all-zero: exact distance Σq² = 0.34. The simple
	// Lemma 2 bound gives only 0.8²/2 = 0.32; the clamped bound is exact.
	if got := tail.EvLower(0); !almostEqual(got, 0.34, 1e-12) {
		t.Errorf("EvLower(0) = %v, want 0.34 (exact water-filled)", got)
	}
	if got := tail.EvLowerSimple(0); !almostEqual(got, 0.32, 1e-12) {
		t.Errorf("EvLowerSimple(0) = %v, want 0.32", got)
	}
	// t = 2: v must be all-one: exact distance (0.5)² + (0.7)² = 0.74.
	if got := tail.EvLower(2); !almostEqual(got, 0.74, 1e-12) {
		t.Errorf("EvLower(2) = %v, want 0.74", got)
	}
}

func TestEvLowerDeficitClamping(t *testing.T) {
	// q tail = {0.6, 0.05}, t = 0.3. Even spread diff = (0.3−0.65)/2 =
	// −0.175 would drive the 0.05 coordinate negative. Optimal: v2 = 0
	// (cost 0.0025), v1 = 0.3 (cost 0.09): total 0.0925.
	tail := NewEucTail([]float64{0.6, 0.05})
	if got := tail.EvLower(0.3); !almostEqual(got, 0.0925, 1e-12) {
		t.Errorf("EvLower = %v, want 0.0925", got)
	}
	// Must still dominate the simple bound.
	if tail.EvLower(0.3) < tail.EvLowerSimple(0.3) {
		t.Error("clamped lower bound weaker than simple bound")
	}
}

func TestEvLowerSurplusClamping(t *testing.T) {
	// q tail = {0.9, 0.1}, t = 1.8. Even spread +0.4 would push 0.9 → 1.3.
	// Optimal: v1 = 1 (cost 0.01), v2 = 0.8 (cost 0.49): total 0.50.
	tail := NewEucTail([]float64{0.9, 0.1})
	if got := tail.EvLower(1.8); !almostEqual(got, 0.50, 1e-12) {
		t.Errorf("EvLower = %v, want 0.50", got)
	}
}

func TestEucTailEmpty(t *testing.T) {
	tail := NewEucTail(nil)
	if tail.EvUpper(0) != 0 || tail.EvLower(0) != 0 || tail.EqUpper() != 0 {
		t.Error("empty tail must yield zero bounds")
	}
}

func TestEvBoundsClampOutOfRangeMass(t *testing.T) {
	tail := NewEucTail([]float64{0.5})
	if got := tail.EvUpper(-0.1); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("EvUpper(-0.1) = %v, want 0.25 (t clamped to 0)", got)
	}
	if got := tail.EvUpper(5); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("EvUpper(5) = %v, want 0.25 (t clamped to 1)", got)
	}
}

// Property: for random query tails and random feasible vector tails, the Ev
// bounds bracket the true distance, EvLower dominates EvLowerSimple, and
// the Eq corner bound dominates everything.
func TestEvBoundsBracketTruth(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw)%12 + 1
		qTail := make([]float64, r)
		for i := range qTail {
			qTail[i] = rng.Float64()
		}
		tail := NewEucTail(qTail)
		mass := rng.Float64() * float64(r)
		v := randomFeasibleTail(rng, r, mass)
		tv := tailSum(v)
		truth := SqEuclidean(v, qTail)
		const eps = 1e-9
		if truth > tail.EvUpper(tv)+eps {
			return false
		}
		if truth < tail.EvLower(tv)-eps {
			return false
		}
		if tail.EvLower(tv) < tail.EvLowerSimple(tv)-eps {
			return false
		}
		return tail.EvUpper(tv) <= tail.EqUpper()+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the Lemma 1 upper bound is tight — the adversarial placement it
// describes is feasible and achieves the bound.
func TestEvUpperIsAchieved(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw)%10 + 1
		qTail := make([]float64, r)
		for i := range qTail {
			qTail[i] = rng.Float64()
		}
		tail := NewEucTail(qTail)
		tv := rng.Float64() * float64(r)
		// Construct the adversarial tail explicitly: sort q descending,
		// fill ones from the back.
		qs := append([]float64(nil), qTail...)
		sortDesc(qs)
		v := make([]float64, r)
		remaining := tv
		for i := r - 1; i >= 0 && remaining > 0; i-- {
			x := math.Min(1, remaining)
			v[i] = x
			remaining -= x
		}
		truth := SqEuclidean(v, qs)
		return almostEqual(truth, tail.EvUpper(tv), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: EvLower is the exact constrained minimum — no feasible tail may
// beat it, and a projected tail achieves it (verified by comparing against
// a fine-grained numerical minimization over random directions).
func TestEvLowerIsExactMinimum(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw)%8 + 1
		qTail := make([]float64, r)
		for i := range qTail {
			qTail[i] = rng.Float64()
		}
		tail := NewEucTail(qTail)
		tv := rng.Float64() * float64(r)
		lb := tail.EvLower(tv)
		// Sample many feasible tails with the same mass; none may go below.
		for trial := 0; trial < 30; trial++ {
			v := randomFeasibleTail(rng, r, tv)
			if SqEuclidean(v, qTail) < lb-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func sortDesc(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] > xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkEvBounds(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	qTail := make([]float64, 128)
	for i := range qTail {
		qTail[i] = rng.Float64() * 0.05
	}
	tail := NewEucTail(qTail)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := float64(i%100) / 100 * 3
		_ = tail.EvUpper(t)
		_ = tail.EvLower(t)
	}
}

package metric

import "math"

// HistTail provides the tail bounds for histogram intersection over a given
// set of remaining (unprocessed) query dimensions. It covers both criteria
// of Section 4.1:
//
//   - Hq (Eq. 5): bounds that depend only on the query, identical for every
//     histogram: 0 ≤ S(h⁺,q⁺) ≤ T(q⁺).
//   - Hh (Eq. 7–8): per-histogram bounds that additionally use the
//     histogram's remaining mass T(h⁺) = 1 − T(h⁻):
//     S(h⁺,q⁺) ≤ min{T(h⁺), T(q⁺)} and S(h⁺,q⁺) ≥ min{qmin, T(h⁺)},
//     where qmin is the smallest query value among the remaining dimensions.
type HistTail struct {
	tq   float64 // T(q⁺), total remaining query mass
	qmin float64 // min of the remaining query values (0 if no dims remain)
}

// NewHistTail prepares tail bounds for the remaining query values qTail
// (the query coefficients of the not-yet-processed dimensions, any order).
func NewHistTail(qTail []float64) HistTail {
	t := HistTail{}
	if len(qTail) == 0 {
		return t
	}
	t.qmin = math.Inf(1)
	for _, q := range qTail {
		t.tq += q
		if q < t.qmin {
			t.qmin = q
		}
	}
	return t
}

// TQ returns T(q⁺), the total remaining query mass.
func (t HistTail) TQ() float64 { return t.tq }

// QMin returns the smallest remaining query value.
func (t HistTail) QMin() float64 { return t.qmin }

// HqUpper returns the query-only upper bound on S(h⁺,q⁺) (Eq. 5): T(q⁺).
func (t HistTail) HqUpper() float64 { return t.tq }

// HqLower returns the query-only lower bound on S(h⁺,q⁺): zero.
func (t HistTail) HqLower() float64 { return 0 }

// HhUpper returns the per-histogram upper bound of Eq. 7 given the
// histogram's remaining mass th = T(h⁺).
func (t HistTail) HhUpper(th float64) float64 {
	if th < 0 {
		th = 0 // guard against accumulated floating-point error
	}
	return math.Min(th, t.tq)
}

// HhLower returns the per-histogram lower bound of Eq. 8 given the
// histogram's remaining mass th = T(h⁺): min{qmin, T(h⁺)}.
func (t HistTail) HhLower(th float64) float64 {
	if th < 0 {
		th = 0
	}
	if t.tq == 0 { // no dimensions remain
		return 0
	}
	return math.Min(t.qmin, th)
}

package metric

import (
	"fmt"
	"math"
	"slices"
)

// WeightedTail provides tail bounds for the weighted squared Euclidean
// distance of Definition 3 (Appendix A): δ_w(v,q) = Σ w_i (v_i − q_i)².
//
// The upper bound follows the Appendix's vertex argument (the maximum of a
// convex quadratic over the slab {Σv = t, 0 ≤ v_i ≤ 1} is attained at a
// vertex, i.e. ⌊t⌋ coordinates at 1, one fractional, rest 0), implemented
// in an order-free, provably valid form: with per-dimension gains
// g_i = w_i((1−q_i)² − q_i²) — the cost delta of raising v_i from 0 to 1 —
// any vertex's cost is at most Σ w_i q_i² plus the sum of the ⌊t⌋+1 largest
// positive gains (the +1 covers the fractional coordinate, whose delta
// w_j((u−q_j)² − q_j²) never exceeds max(0, g_j)).
//
// The published Equation 14 prescribes a particular greedy order (by w·q²
// descending); for strongly non-uniform weights that greedy can select a
// cheaper vertex than the true maximum, so this implementation uses the
// dominating gain form instead (see the package property tests, which
// verify validity against exhaustive vertex enumeration).
//
// The lower bound is Equation 15: minimizing Σ w_i d_i² subject to
// Σ d_i = D gives D²/Σ(1/w_i) (d_i ∝ 1/w_i). Zero-weight dimensions — the
// subspace-query case of Section 8.1 — are handled by letting them absorb
// as much of the mass imbalance as their box constraints allow before the
// residual imbalance is priced.
type WeightedTail struct {
	r      int     // remaining dimensions
	tq     float64 // T(q⁺) over all remaining dimensions
	sumWQ2 float64 // Σ w_i q_i²

	gains []float64 // positive gains, sorted descending
	gpfx  []float64 // prefix sums of gains

	invW   float64 // Σ 1/w_i over positive-weight dimensions
	tqPos  float64 // T(q⁺) over positive-weight dimensions
	nZero  int     // zero-weight dimensions (absorbers)
	allOne float64 // Σ w_i (1−q_i)²  (every remaining coordinate at 1)
}

// NewWeightedTail prepares weighted Euclidean tail bounds for the remaining
// query values qTail and their weights wTail. Weights must be non-negative;
// zero weights express "dimension does not matter" (subspace queries).
// It panics on length mismatch or negative weights.
func NewWeightedTail(qTail, wTail []float64) *WeightedTail {
	return new(WeightedTail).Reset(qTail, wTail)
}

// Reset re-prepares the bounds for new tail values in place, reusing the
// internal buffers — the pooled counterpart of NewWeightedTail for
// per-pruning-step use on the query hot path. It returns t.
func (t *WeightedTail) Reset(qTail, wTail []float64) *WeightedTail {
	if len(qTail) != len(wTail) {
		panic(fmt.Sprintf("metric: tail length mismatch q=%d w=%d", len(qTail), len(wTail)))
	}
	*t = WeightedTail{r: len(qTail), gains: t.gains[:0], gpfx: t.gpfx[:0]}
	for i, q := range qTail {
		w := wTail[i]
		if w < 0 {
			panic(fmt.Sprintf("metric: negative weight %v at tail index %d", w, i))
		}
		t.tq += q
		t.sumWQ2 += w * q * q
		d := 1 - q
		t.allOne += w * d * d
		if w == 0 {
			t.nZero++
			continue
		}
		t.invW += 1 / w
		t.tqPos += q
		if g := w * (d*d - q*q); g > 0 {
			t.gains = append(t.gains, g)
		}
	}
	slices.SortFunc(t.gains, func(a, b float64) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		}
		return 0
	})
	t.gpfx = growF64(t.gpfx, len(t.gains)+1)
	for i, g := range t.gains {
		t.gpfx[i+1] = t.gpfx[i] + g
	}
	return t
}

// R returns the number of remaining dimensions.
func (t *WeightedTail) R() int { return t.r }

// TQ returns T(q⁺), the total remaining query mass.
func (t *WeightedTail) TQ() float64 { return t.tq }

// Upper returns an upper bound on Σ w_i (v_i − q_i)² for any feasible tail
// with Σ v_i = tv, 0 ≤ v_i ≤ 1.
func (t *WeightedTail) Upper(tv float64) float64 {
	if t.r == 0 {
		return 0
	}
	if tv < 0 {
		tv = 0
	}
	if tv > float64(t.r) {
		tv = float64(t.r)
	}
	if tv == float64(t.r) {
		return t.allOne
	}
	take := int(math.Floor(tv)) + 1
	if take > len(t.gains) {
		take = len(t.gains)
	}
	return t.sumWQ2 + t.gpfx[take]
}

// UpperConst returns the query-only upper bound (the weighted analogue of
// Eq. 10, used when per-vector tail masses are unavailable):
// Σ w_i max(q_i, 1−q_i)² computed as sumWQ2 plus every positive gain.
func (t *WeightedTail) UpperConst() float64 {
	return t.sumWQ2 + t.gpfx[len(t.gpfx)-1]
}

// Lower returns a lower bound on Σ w_i (v_i − q_i)² for any feasible tail
// with Σ v_i = tv (Eq. 15 extended with zero-weight absorption).
func (t *WeightedTail) Lower(tv float64) float64 {
	if t.r == 0 || t.invW == 0 {
		return 0
	}
	if tv < 0 {
		tv = 0
	}
	if tv > float64(t.r) {
		tv = float64(t.r)
	}
	// Mass placed on positive-weight dimensions can be anything in
	// [tv − nZero, tv] ∩ [0, nPos]; the cheapest choice is the feasible
	// value closest to T(q⁺_pos).
	nPos := float64(t.r - t.nZero)
	lo := math.Max(0, tv-float64(t.nZero))
	hi := math.Min(tv, nPos)
	s := t.tqPos
	if s < lo {
		s = lo
	} else if s > hi {
		s = hi
	}
	d := s - t.tqPos
	return d * d / t.invW
}

// Package metric implements the similarity metrics of the BOND paper and
// the branch-and-bound pruning bounds derived for them.
//
// Two metrics are covered, following Section 3.2 of the paper:
//
//   - Histogram intersection (Definition 1): Sim(h,q) = Σ min(h_i, q_i)
//     over normalized histograms (T(h) = 1). Larger is more similar.
//   - (Squared) Euclidean distance (Definition 2): δ(v,q) = Σ (v_i − q_i)²
//     over vectors in the unit hyper-box. Smaller is more similar.
//
// plus the weighted Euclidean distance of Definition 3 (Appendix A).
//
// For each metric the package derives the upper and lower bounds on the
// still-unseen tail S(x⁺, q⁺) that Algorithm 2 needs:
//
//   - Hq (Eq. 5):  0 ≤ S(h⁺,q⁺) ≤ T(q⁺), constants per iteration.
//   - Hh (Eq. 7–8): per-vector bounds using the vector's tail mass T(h⁺).
//   - Eq (Eq. 10): constant worst-corner upper bound, plus the stricter
//     variant available when every vector is known to be normalized.
//   - Ev (Lemmas 1–2, Eq. 11–12): per-vector bounds using T(v⁺), with the
//     stricter feasibility-clamped lower bound from footnote 3.
//   - Weighted Ev (Eq. 14–15): the Appendix A extension.
package metric

import (
	"fmt"
	"math"

	"bond/internal/kernel"
)

// HistIntersect returns the histogram intersection Σ min(h_i, q_i)
// (Definition 1). It panics if the vectors differ in length.
func HistIntersect(h, q []float64) float64 {
	if len(h) != len(q) {
		panic(fmt.Sprintf("metric: length mismatch %d vs %d", len(h), len(q)))
	}
	return kernel.MinSum(h, q)
}

// SqEuclidean returns the squared Euclidean distance Σ (v_i − q_i)²
// (Definition 2). It panics if the vectors differ in length.
func SqEuclidean(v, q []float64) float64 {
	if len(v) != len(q) {
		panic(fmt.Sprintf("metric: length mismatch %d vs %d", len(v), len(q)))
	}
	return kernel.SqDist(v, q)
}

// WeightedSqEuclidean returns Σ w_i (v_i − q_i)² (Definition 3). It panics
// if the slice lengths disagree.
func WeightedSqEuclidean(v, q, w []float64) float64 {
	if len(v) != len(q) || len(v) != len(w) {
		panic(fmt.Sprintf("metric: length mismatch v=%d q=%d w=%d", len(v), len(q), len(w)))
	}
	return kernel.WSqDist(v, q, w)
}

// EuclideanSim converts a squared Euclidean distance into the similarity of
// Equation 3: Sim = 1 − sqrt(δ/N). N is the dimensionality.
func EuclideanSim(sqDist float64, n int) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("metric: non-positive dimensionality %d", n))
	}
	return 1 - math.Sqrt(sqDist/float64(n))
}

// Sum returns T(x) = Σ x_i.
func Sum(x []float64) float64 {
	return kernel.Sum(x)
}

// IsNormalized reports whether T(x) is within eps of 1, the precondition on
// histogram collections (∀h ∈ H: T(h) = 1).
func IsNormalized(x []float64, eps float64) bool {
	return math.Abs(Sum(x)-1) <= eps
}

package metric

import (
	"math"
	"slices"
	"sort"
)

// EucTail provides the tail bounds for squared Euclidean distance over a
// given set of remaining (unprocessed) query dimensions. It covers the two
// criteria of Section 4.3:
//
//   - Eq (Eq. 10): a constant upper bound on S(v⁺,q⁺) — the distance from
//     q⁺ to the furthest corner of the remaining hyperspace — plus the
//     stricter constant available when every vector is known to be
//     normalized (T(v) = 1, as for the paper's histogram data set).
//   - Ev (Lemmas 1 and 2): per-vector bounds that use the vector's
//     remaining mass t = T(v⁺). The upper bound distributes t adversarially
//     (all mass into the smallest remaining query values); the lower bound
//     spreads the mass imbalance evenly. The lower bound is sharpened to
//     the exact constrained minimum (the "stricter lower bound" of
//     footnote 3) by water-filling against the box constraints, with
//     breakpoints precomputed so each per-vector evaluation costs O(log r).
//
// Only the multiset of remaining query values matters for the bounds, so
// NewEucTail accepts them in any order and sorts internally.
type EucTail struct {
	qs []float64 // remaining query values, sorted descending
	r  int       // number of remaining dimensions
	tq float64   // T(q⁺)

	p1 []float64 // p1[c] = Σ_{i<c} qs[i]
	p2 []float64 // p2[c] = Σ_{i<c} qs[i]²
	s1 []float64 // s1[c] = Σ_{i<c} (1−qs[i])²

	sumMaxSq float64 // Σ max(q_i, 1−q_i)²   (Eq. 10)
	normCap  float64 // Eq-upper for normalized collections (T(v⁺) ≤ 1)

	// Water-filling breakpoints for the exact lower bound.
	// deficitBP[c] is the largest tail mass t for which exactly c
	// dimensions stay positive when mass is removed evenly-with-clamping;
	// surplusBP[c] is the largest t for which exactly c dimensions are
	// clamped at 1 when mass is added.
	deficitBP []float64
	surplusBP []float64
}

// NewEucTail prepares Euclidean tail bounds for the remaining query values
// qTail (the query coefficients of the not-yet-processed dimensions).
func NewEucTail(qTail []float64) *EucTail {
	return new(EucTail).Reset(qTail)
}

// growF64 returns s resized to n entries, zeroed, reusing its backing array
// when the capacity allows.
func growF64(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Reset re-prepares the tail bounds for new remaining query values in
// place, reusing every internal buffer — the pooled counterpart of
// NewEucTail for per-pruning-step use on the query hot path. It returns t.
func (t *EucTail) Reset(qTail []float64) *EucTail {
	r := len(qTail)
	t.qs = append(t.qs[:0], qTail...)
	t.r = r
	t.p1 = growF64(t.p1, r+1)
	t.p2 = growF64(t.p2, r+1)
	t.s1 = growF64(t.s1, r+1)
	t.sumMaxSq = 0
	slices.SortFunc(t.qs, func(a, b float64) int {
		switch {
		case a > b:
			return -1
		case a < b:
			return 1
		}
		return 0
	})
	for i, q := range t.qs {
		t.p1[i+1] = t.p1[i] + q
		t.p2[i+1] = t.p2[i] + q*q
		d := 1 - q
		t.s1[i+1] = t.s1[i] + d*d
		t.sumMaxSq += math.Max(q, 1-q) * math.Max(q, 1-q)
	}
	t.tq = t.p1[r]

	// Stricter Eq bound for normalized vectors (T(v⁺) ≤ 1): the maximum of
	// Σ(v_i−q_i)² over Σv_i = s ≤ 1, 0 ≤ v_i ≤ 1 is attained by placing all
	// mass on one dimension (the objective is convex, so the maximum sits at
	// a vertex), and s(s−2q_j) is maximized at s = 1 for the smallest q_j
	// (or s = 0 when every remaining q_j > 1/2). Hence:
	// Σ q_i² + max(0, (1−qmin)² − qmin²).
	t.normCap = t.p2[r]
	if r > 0 {
		qmin := t.qs[r-1]
		gain := (1-qmin)*(1-qmin) - qmin*qmin
		if gain > 0 {
			t.normCap += gain
		}
	}

	// Deficit breakpoints: removing mass from q⁺ down to total t keeps the
	// c largest coordinates positive while λ = (p1[c]−t)/c ∈ [qs[c], qs[c−1});
	// the boundary λ = qs[c] corresponds to t = p1[c] − c·qs[c].
	t.deficitBP = growF64(t.deficitBP, r+1)
	for c := 1; c <= r; c++ {
		qc := 0.0
		if c < r {
			qc = t.qs[c]
		}
		t.deficitBP[c] = t.p1[c] - float64(c)*qc
	}
	if r > 0 {
		t.deficitBP[r] = t.tq // full support up to t = T(q⁺)
	}

	// Surplus breakpoints: adding mass clamps the c largest coordinates at 1
	// while λ = (t−c−(T−p1[c]))/(r−c) ∈ [1−qs[c−1], 1−qs[c]); the boundary
	// λ = 1−qs[c] corresponds to t = c + (T−p1[c]) + (r−c)(1−qs[c]).
	t.surplusBP = growF64(t.surplusBP, r+1)
	for c := 0; c < r; c++ {
		t.surplusBP[c] = float64(c) + (t.tq - t.p1[c]) + float64(r-c)*(1-t.qs[c])
	}
	if r > 0 {
		t.surplusBP[r] = float64(r)
	}
	return t
}

// R returns the number of remaining dimensions.
func (t *EucTail) R() int { return t.r }

// TQ returns T(q⁺), the total remaining query mass.
func (t *EucTail) TQ() float64 { return t.tq }

// EqUpper returns the constant worst-corner upper bound of Eq. 10:
// Σ max(q_i, 1−q_i)².
func (t *EucTail) EqUpper() float64 { return t.sumMaxSq }

// EqUpperNormalized returns the stricter constant upper bound valid when
// every data vector is normalized (T(v) = 1, hence T(v⁺) ≤ 1), used by the
// paper for its histogram data set (Section 7.1).
func (t *EucTail) EqUpperNormalized() float64 { return t.normCap }

// clampT restricts a tail mass to its feasible range [0, r], absorbing
// small floating-point drift from the incremental tail maintenance.
func (t *EucTail) clampT(tv float64) float64 {
	if tv < 0 {
		return 0
	}
	if tv > float64(t.r) {
		return float64(t.r)
	}
	return tv
}

// EvUpper returns the Lemma 1 upper bound on S(v⁺,q⁺) for a vector whose
// remaining mass is tv = T(v⁺): the distance is maximized by filling the
// dimensions with the smallest remaining query values to 1 (⌊tv⌋ of them),
// placing the fractional remainder on the next smallest, and zero elsewhere.
func (t *EucTail) EvUpper(tv float64) float64 {
	if t.r == 0 {
		return 0
	}
	tv = t.clampT(tv)
	ones := int(math.Floor(tv))
	if ones >= t.r {
		return t.s1[t.r] // every remaining dimension is 1
	}
	u := tv - float64(ones)
	l := t.r - ones - 1 // 0-based index of the fractional dimension
	d := u - t.qs[l]
	return t.p2[l] + d*d + (t.s1[t.r] - t.s1[l+1])
}

// EvLowerSimple returns the Lemma 2 lower bound (T(v⁺)−T(q⁺))²/r, which
// spreads the mass imbalance evenly without regard to feasibility.
func (t *EucTail) EvLowerSimple(tv float64) float64 {
	if t.r == 0 {
		return 0
	}
	tv = t.clampT(tv)
	d := tv - t.tq
	return d * d / float64(t.r)
}

// EvLower returns the exact minimum of Σ(v_i−q_i)² over all feasible tails
// (Σ v_i = tv, 0 ≤ v_i ≤ 1). It equals the Lemma 2 bound whenever the even
// spread is feasible and is strictly tighter otherwise — the "stricter
// lower bound" cases of footnote 3 — computed by water-filling against the
// violated box constraint in O(log r).
func (t *EucTail) EvLower(tv float64) float64 {
	if t.r == 0 {
		return 0
	}
	tv = t.clampT(tv)
	diff := (tv - t.tq) / float64(t.r)
	qmin := t.qs[t.r-1]
	qmax := t.qs[0]
	if qmin+diff >= 0 && qmax+diff <= 1 {
		// Even spread feasible: Lemma 2 is exact.
		d := tv - t.tq
		return d * d / float64(t.r)
	}
	if diff < 0 {
		return t.deficitLower(tv)
	}
	return t.surplusLower(tv)
}

// deficitLower solves min Σ(v_i−q_i)² s.t. Σv = tv, v ≥ 0 (tv < T(q⁺)):
// v_i = max(0, q_i − λ). The c largest coordinates stay positive where c is
// the smallest count with deficitBP[c] ≥ tv.
func (t *EucTail) deficitLower(tv float64) float64 {
	// Find smallest c in [1, r] with deficitBP[c] >= tv.
	c := sort.Search(t.r, func(i int) bool { return t.deficitBP[i+1] >= tv }) + 1
	if c > t.r {
		c = t.r
	}
	lambda := (t.p1[c] - tv) / float64(c)
	if lambda < 0 {
		lambda = 0
	}
	// c active coordinates each at distance λ; the rest zeroed at cost q_i².
	return float64(c)*lambda*lambda + (t.p2[t.r] - t.p2[c])
}

// surplusLower solves min Σ(v_i−q_i)² s.t. Σv = tv, v ≤ 1 (tv > T(q⁺)):
// v_i = min(1, q_i + λ). The c largest coordinates clamp at 1 where c is
// the smallest count with surplusBP[c] ≥ tv.
func (t *EucTail) surplusLower(tv float64) float64 {
	c := sort.Search(t.r+1, func(i int) bool { return t.surplusBP[i] >= tv })
	if c > t.r {
		c = t.r
	}
	if c == t.r {
		return t.s1[t.r]
	}
	lambda := (tv - float64(c) - (t.tq - t.p1[c])) / float64(t.r-c)
	if lambda < 0 {
		lambda = 0
	}
	return t.s1[c] + float64(t.r-c)*lambda*lambda
}

package metric

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// paperH is the example collection of Table 2 (h1's coefficients are
// unreadable in the published scan; the table's derived columns for
// h2…h9 are all verified below).
var paperH = map[string][]float64{
	"h2": {0.05, 0.05, 0.9, 0},
	"h3": {0.8, 0.1, 0.05, 0.05},
	"h4": {0.2, 0.6, 0.1, 0.1},
	"h5": {0.7, 0.15, 0.15, 0},
	"h6": {0.925, 0, 0, 0.025},
	"h7": {0.55, 0.2, 0.15, 0.1},
	"h8": {0.05, 0.1, 0.05, 0.8},
	"h9": {0.45, 0.5, 0.05, 0.05},
}

var paperQ = []float64{0.7, 0.15, 0.1, 0.05}

// Expected columns of Table 2 for m = 2: S⁻, Smin, Smax, S.
var paperTable2 = map[string][4]float64{
	"h2": {0.1, 0.15, 0.25, 0.2},
	"h3": {0.8, 0.85, 0.9, 0.9},
	"h4": {0.35, 0.4, 0.5, 0.5},
	"h5": {0.85, 0.9, 1.0, 0.95},
	"h6": {0.7, 0.725, 0.725, 0.725},
	"h7": {0.7, 0.75, 0.85, 0.85},
	"h8": {0.15, 0.2, 0.3, 0.25},
	"h9": {0.6, 0.65, 0.7, 0.7},
}

// TestPaperTable2 reproduces every derived column of the paper's worked
// example: partial scores after m = 2 dimensions and the Hh bounds of
// Equations 7 and 8.
func TestPaperTable2(t *testing.T) {
	const m = 2
	tail := NewHistTail(paperQ[m:])
	if !almostEqual(tail.TQ(), 0.15, 1e-12) {
		t.Fatalf("T(q+) = %v, want 0.15", tail.TQ())
	}
	for name, h := range paperH {
		want := paperTable2[name]
		sMinus := HistIntersect(h[:m], paperQ[:m])
		if !almostEqual(sMinus, want[0], 1e-12) {
			t.Errorf("%s: S- = %v, want %v", name, sMinus, want[0])
		}
		// T(h⁺) is tracked as the actual remaining mass. (For exactly
		// normalized histograms this equals 1 − T(h⁻); the paper's printed
		// example vectors are slightly off-normalized — h6 sums to 0.95 —
		// and its table uses the actual remaining mass, as we do.)
		th := Sum(h[m:])
		smin := sMinus + tail.HhLower(th)
		smax := sMinus + tail.HhUpper(th)
		if !almostEqual(smin, want[1], 1e-12) {
			t.Errorf("%s: Smin = %v, want %v", name, smin, want[1])
		}
		if !almostEqual(smax, want[2], 1e-12) {
			t.Errorf("%s: Smax = %v, want %v", name, smax, want[2])
		}
		full := HistIntersect(h, paperQ)
		if !almostEqual(full, want[3], 1e-12) {
			t.Errorf("%s: S = %v, want %v", name, full, want[3])
		}
	}
}

// TestPaperExamplePruning replays the pruning narrative of Section 4.2:
// with k = 3 and m = 2, rule Hq prunes {h2, h4, h8} (and the unreadable h1)
// via κmin = 0.7, and rule Hh additionally prunes h6 and h9 via κmin = 0.75.
func TestPaperExamplePruning(t *testing.T) {
	const m = 2
	tail := NewHistTail(paperQ[m:])

	// Hq: prune when S⁻ + T(q⁺) < κmin with κmin = 0.7 (3rd highest S⁻).
	kappa := 0.7
	hqPruned := map[string]bool{}
	for name, h := range paperH {
		sMinus := HistIntersect(h[:m], paperQ[:m])
		if sMinus+tail.HqUpper() < kappa {
			hqPruned[name] = true
		}
	}
	for _, name := range []string{"h2", "h4", "h8"} {
		if !hqPruned[name] {
			t.Errorf("Hq should prune %s", name)
		}
	}
	for _, name := range []string{"h3", "h5", "h6", "h7", "h9"} {
		if hqPruned[name] {
			t.Errorf("Hq must not prune %s", name)
		}
	}

	// Hh: κmin = 0.75 (3rd highest Smin); prune Smax < κmin.
	kappaH := 0.75
	hhPruned := map[string]bool{}
	for name, h := range paperH {
		sMinus := HistIntersect(h[:m], paperQ[:m])
		th := Sum(h[m:])
		if sMinus+tail.HhUpper(th) < kappaH {
			hhPruned[name] = true
		}
	}
	for _, name := range []string{"h2", "h4", "h6", "h8", "h9"} {
		if !hhPruned[name] {
			t.Errorf("Hh should prune %s", name)
		}
	}
	for _, name := range []string{"h3", "h5", "h7"} {
		if hhPruned[name] {
			t.Errorf("Hh must not prune %s (it is a top-3 answer)", name)
		}
	}
}

func TestHistTailEmpty(t *testing.T) {
	tail := NewHistTail(nil)
	if tail.HqUpper() != 0 || tail.HhUpper(0.5) != 0 || tail.HhLower(0.5) != 0 {
		t.Error("empty tail must yield zero bounds")
	}
}

func TestHhLowerNegativeTailClamped(t *testing.T) {
	tail := NewHistTail([]float64{0.1})
	if got := tail.HhLower(-1e-15); got != 0 {
		t.Errorf("negative tail mass must clamp to 0, got %v", got)
	}
	if got := tail.HhUpper(-1e-15); got != 0 {
		t.Errorf("negative tail mass must clamp upper to 0, got %v", got)
	}
}

// randomHistTail builds a random histogram tail with the given total mass.
func randomHistTail(rng *rand.Rand, r int, mass float64) []float64 {
	cuts := make([]float64, r)
	sum := 0.0
	for i := range cuts {
		cuts[i] = rng.Float64()
		sum += cuts[i]
	}
	if sum == 0 {
		cuts[0] = 1
		sum = 1
	}
	for i := range cuts {
		cuts[i] = cuts[i] / sum * mass
	}
	return cuts
}

// Property: for random histogram tails, Hq and Hh bounds always bracket the
// true tail intersection, and Hh is at least as tight as Hq.
func TestHistBoundsBracketTruth(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := int(rRaw)%20 + 1
		qTail := randomHistTail(rng, r, rng.Float64())
		th := rng.Float64()
		hTail := randomHistTail(rng, r, th)
		tail := NewHistTail(qTail)
		truth := HistIntersect(hTail, qTail)
		const eps = 1e-9
		if truth < tail.HqLower()-eps || truth > tail.HqUpper()+eps {
			return false
		}
		if truth < tail.HhLower(th)-eps || truth > tail.HhUpper(th)+eps {
			return false
		}
		// Hh must dominate Hq (tighter or equal on both sides).
		return tail.HhUpper(th) <= tail.HqUpper()+eps && tail.HhLower(th) >= tail.HqLower()-eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

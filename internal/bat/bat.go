// Package bat implements Binary Association Tables and the Monet
// Interpreter Language (MIL) operators that the paper's Section 6 uses to
// express BOND inside a relational engine.
//
// A BAT is a two-column table of (head, tail) pairs. As in Monet, a head
// can be "void": a densely ascending sequence of virtual object identifiers
// that is never materialized, enabling positional lookups and saving a
// third of the storage (paper footnote 4). The operators provided are the
// ones in the Section 6.1 listing:
//
//   - map operators with a constant ([min](Hi, const qi) and the squared-
//     difference map used for Euclidean distance),
//   - the multi-join map [+] that positionally adds aligned score columns,
//   - kfetch: the k-th largest/smallest tail value via a bounded heap,
//   - uselect: the unary range select, returning qualifying heads with a
//     void result tail, or alternatively a bitmap (the optimization for
//     low-selectivity early iterations),
//   - reverse and the positional join used to reduce the remaining
//     dimension tables to the candidate set.
package bat

import (
	"fmt"
	"math"

	"bond/internal/bitmap"
	"bond/internal/topk"
)

// Float is a BAT with float64 tail values. A nil Head means the head is
// void: entry i has head Base+i.
type Float struct {
	Head []int
	Base int
	Tail []float64
}

// OID is a BAT with object-identifier tail values.
type OID struct {
	Head []int
	Base int
	Tail []int
}

// NewFloatVoid returns a float BAT with a void head starting at base.
func NewFloatVoid(base int, tail []float64) *Float {
	return &Float{Base: base, Tail: tail}
}

// NewOIDVoid returns an oid BAT with a void head starting at base.
func NewOIDVoid(base int, tail []int) *OID {
	return &OID{Base: base, Tail: tail}
}

// Len returns the number of tuples.
func (b *Float) Len() int { return len(b.Tail) }

// Len returns the number of tuples.
func (b *OID) Len() int { return len(b.Tail) }

// HeadAt returns the head value of tuple i.
func (b *Float) HeadAt(i int) int {
	if b.Head == nil {
		return b.Base + i
	}
	return b.Head[i]
}

// HeadAt returns the head value of tuple i.
func (b *OID) HeadAt(i int) int {
	if b.Head == nil {
		return b.Base + i
	}
	return b.Head[i]
}

// IsVoid reports whether the head is a dense virtual sequence.
func (b *Float) IsVoid() bool { return b.Head == nil }

// IsVoid reports whether the head is a dense virtual sequence.
func (b *OID) IsVoid() bool { return b.Head == nil }

// MapMinConst implements [min](b, const q): tail'[i] = min(tail[i], q),
// preserving the head. This is the per-dimension histogram-intersection
// contribution of the Section 6.1 listing, step 1.
func MapMinConst(b *Float, q float64) *Float {
	out := &Float{Head: b.Head, Base: b.Base, Tail: make([]float64, len(b.Tail))}
	MapMinConstInto(out.Tail, b.Tail, q)
	return out
}

// MapMinConstInto is the buffer-reusing physical form of MapMinConst:
// dst[i] = min(src[i], q). dst must be at least as long as src.
func MapMinConstInto(dst, src []float64, q float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = math.Min(v, q)
	}
}

// MapSqDiffConst implements the Euclidean analogue of step 1:
// tail'[i] = (tail[i] − q)².
func MapSqDiffConst(b *Float, q float64) *Float {
	out := &Float{Head: b.Head, Base: b.Base, Tail: make([]float64, len(b.Tail))}
	for i, v := range b.Tail {
		d := v - q
		out.Tail[i] = d * d
	}
	return out
}

// MultiAdd implements the multi-join map [+](D1, …, Dm): an implicit
// positional equi-join on aligned heads followed by addition. All inputs
// must have equal length and identical (void) alignment; the paper notes
// that because the tables are aligned, a positional join with negligible
// cost is chosen. It panics on misaligned inputs.
func MultiAdd(bs ...*Float) *Float {
	if len(bs) == 0 {
		panic("bat: MultiAdd needs at least one input")
	}
	n := bs[0].Len()
	for _, b := range bs {
		if b.Len() != n {
			panic(fmt.Sprintf("bat: MultiAdd length mismatch %d vs %d", b.Len(), n))
		}
		if !aligned(bs[0], b) {
			panic("bat: MultiAdd inputs not aligned")
		}
	}
	out := &Float{Head: bs[0].Head, Base: bs[0].Base, Tail: make([]float64, n)}
	for _, b := range bs {
		for i, v := range b.Tail {
			out.Tail[i] += v
		}
	}
	return out
}

// AddInto accumulates src into dst positionally (dst += src), the in-place
// variant of MultiAdd the iterative algorithm uses between pruning steps.
// It panics on misaligned inputs.
func AddInto(dst, src *Float) {
	if dst.Len() != src.Len() || !aligned(dst, src) {
		panic("bat: AddInto inputs not aligned")
	}
	for i, v := range src.Tail {
		dst.Tail[i] += v
	}
}

func aligned(a, b *Float) bool {
	if a.IsVoid() != b.IsVoid() {
		return false
	}
	if a.IsVoid() {
		return a.Base == b.Base
	}
	for i := range a.Head {
		if a.Head[i] != b.Head[i] {
			return false
		}
	}
	return true
}

// KFetch implements kfetch(k): the k-th largest (largest=true) or k-th
// smallest tail value, computed with a bounded heap in O(n log k) as in the
// paper. It panics on an empty BAT; k larger than Len clamps.
func KFetch(b *Float, k int, largest bool) float64 {
	if largest {
		return topk.KthLargest(b.Tail, k)
	}
	return topk.KthSmallest(b.Tail, k)
}

// USelect implements the unary range select: it returns the heads of the
// tuples whose tail value lies in [lo, hi], with the result's tail left
// void (a densely ascending range of virtual oids), exactly as described
// in Section 6.1.
func USelect(b *Float, lo, hi float64) *OID {
	// The "result tail" is void; we return the heads as the materialized
	// column of an [oid, void] BAT, represented tail-first after Reverse.
	return &OID{Base: 0, Tail: USelectInto(nil, b, lo, hi)}
}

// USelectInto is the buffer-reusing physical form of USelect: it appends
// the qualifying heads to dst and returns the extended slice.
func USelectInto(dst []int, b *Float, lo, hi float64) []int {
	for i, v := range b.Tail {
		if v >= lo && v <= hi {
			dst = append(dst, b.HeadAt(i))
		}
	}
	return dst
}

// USelectBitmap is the alternative physical implementation of uselect used
// in early iterations: instead of materializing qualifying oids it sets
// their bits in a bitmap of domain size n. Only valid for void-headed
// inputs (positional correspondence). It panics otherwise.
func USelectBitmap(b *Float, lo, hi float64, n int) *bitmap.Bitmap {
	bm := bitmap.New(n)
	USelectBitmapInto(bm, b, lo, hi)
	return bm
}

// USelectBitmapInto is USelectBitmap reusing a caller-provided result
// bitmap, which must already be sized to the domain and all-clear (the
// caller's Reuse or New provides that; not clearing here avoids a second
// O(n/64) zeroing pass per pruning step).
func USelectBitmapInto(bm *bitmap.Bitmap, b *Float, lo, hi float64) {
	if !b.IsVoid() {
		panic("bat: USelectBitmap requires a void head")
	}
	for i, v := range b.Tail {
		if v >= lo && v <= hi {
			bm.Set(b.Base + i)
		}
	}
}

// JoinFloat implements C.reverse.join(Hi) for a candidate oid list C and a
// void-headed dimension table Hi: a positional gather of Hi's tail values
// at the candidate oids. The result keeps a void head aligned with C, so
// subsequent MultiAdds over reduced tables stay positional. It panics if
// hi's head is not void or an oid is out of range.
func JoinFloat(c *OID, hi *Float) *Float {
	out := &Float{Base: 0, Tail: make([]float64, len(c.Tail))}
	JoinFloatInto(out.Tail, c, hi)
	return out
}

// JoinFloatInto is the buffer-reusing physical form of JoinFloat: the
// gathered tail values are written into dst, which must be at least as
// long as c.
func JoinFloatInto(dst []float64, c *OID, hi *Float) {
	if !hi.IsVoid() {
		panic("bat: JoinFloat requires a void-headed dimension table")
	}
	dst = dst[:len(c.Tail)]
	for i, oid := range c.Tail {
		idx := oid - hi.Base
		if idx < 0 || idx >= len(hi.Tail) {
			panic(fmt.Sprintf("bat: oid %d outside table range", oid))
		}
		dst[i] = hi.Tail[idx]
	}
}

// GatherFloat positionally gathers values of a void-headed BAT at the
// given oids, the kernel shared by JoinFloat and bitmap-driven reduction.
func GatherFloat(hi *Float, oids []int) *Float {
	return JoinFloat(&OID{Tail: oids}, hi)
}

// SelectFloat reduces a float BAT to the tuples whose head oid has its bit
// set in the bitmap, rebasing the result onto a void head. The input must
// be void-headed.
func SelectFloat(b *Float, bm *bitmap.Bitmap) *Float {
	return &Float{Base: 0, Tail: SelectFloatInto(make([]float64, 0, bm.Count()), b, bm)}
}

// SelectFloatInto is the buffer-reusing physical form of SelectFloat: it
// appends the selected tail values to dst and returns the extended slice.
func SelectFloatInto(dst []float64, b *Float, bm *bitmap.Bitmap) []float64 {
	if !b.IsVoid() {
		panic("bat: SelectFloat requires a void head")
	}
	bm.ForEach(func(oid int) {
		idx := oid - b.Base
		if idx >= 0 && idx < len(b.Tail) {
			dst = append(dst, b.Tail[idx])
		}
	})
	return dst
}

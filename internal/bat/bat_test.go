package bat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bond/internal/bitmap"
)

func TestVoidHeads(t *testing.T) {
	b := NewFloatVoid(5, []float64{1, 2, 3})
	if !b.IsVoid() {
		t.Fatal("expected void head")
	}
	if b.HeadAt(0) != 5 || b.HeadAt(2) != 7 {
		t.Errorf("HeadAt = %d, %d; want 5, 7", b.HeadAt(0), b.HeadAt(2))
	}
	m := &Float{Head: []int{9, 4}, Tail: []float64{1, 2}}
	if m.IsVoid() {
		t.Error("materialized head reported void")
	}
	if m.HeadAt(1) != 4 {
		t.Errorf("HeadAt(1) = %d, want 4", m.HeadAt(1))
	}
}

func TestMapMinConst(t *testing.T) {
	b := NewFloatVoid(0, []float64{0.1, 0.5, 0.9})
	got := MapMinConst(b, 0.4)
	want := []float64{0.1, 0.4, 0.4}
	for i := range want {
		if got.Tail[i] != want[i] {
			t.Errorf("tail[%d] = %v, want %v", i, got.Tail[i], want[i])
		}
	}
	if b.Tail[1] != 0.5 {
		t.Error("MapMinConst must not mutate its input")
	}
}

func TestMapSqDiffConst(t *testing.T) {
	b := NewFloatVoid(0, []float64{0.0, 1.0})
	got := MapSqDiffConst(b, 0.4)
	if got.Tail[0] != 0.16000000000000003 && got.Tail[0] != 0.16 {
		t.Errorf("tail[0] = %v", got.Tail[0])
	}
	if d := got.Tail[1] - 0.36; d > 1e-12 || d < -1e-12 {
		t.Errorf("tail[1] = %v, want 0.36", got.Tail[1])
	}
}

func TestMultiAddAndAddInto(t *testing.T) {
	a := NewFloatVoid(0, []float64{1, 2})
	b := NewFloatVoid(0, []float64{10, 20})
	c := NewFloatVoid(0, []float64{100, 200})
	sum := MultiAdd(a, b, c)
	if sum.Tail[0] != 111 || sum.Tail[1] != 222 {
		t.Errorf("MultiAdd = %v", sum.Tail)
	}
	AddInto(sum, a)
	if sum.Tail[0] != 112 {
		t.Errorf("AddInto = %v", sum.Tail)
	}
}

func TestMultiAddPanicsOnMisalignment(t *testing.T) {
	a := NewFloatVoid(0, []float64{1, 2})
	b := NewFloatVoid(1, []float64{1, 2}) // different base
	defer func() {
		if recover() == nil {
			t.Error("expected panic on misaligned bases")
		}
	}()
	MultiAdd(a, b)
}

func TestKFetch(t *testing.T) {
	b := NewFloatVoid(0, []float64{0.3, 0.9, 0.1, 0.7})
	if got := KFetch(b, 2, true); got != 0.7 {
		t.Errorf("KFetch largest = %v, want 0.7", got)
	}
	if got := KFetch(b, 2, false); got != 0.3 {
		t.Errorf("KFetch smallest = %v, want 0.3", got)
	}
}

func TestUSelect(t *testing.T) {
	b := NewFloatVoid(10, []float64{0.2, 0.8, 0.5, 0.9})
	c := USelect(b, 0.5, 1.0)
	want := []int{11, 12, 13}
	if len(c.Tail) != 3 {
		t.Fatalf("selected %d, want 3", len(c.Tail))
	}
	for i := range want {
		if c.Tail[i] != want[i] {
			t.Errorf("oid[%d] = %d, want %d", i, c.Tail[i], want[i])
		}
	}
}

func TestUSelectBitmap(t *testing.T) {
	b := NewFloatVoid(0, []float64{0.2, 0.8, 0.5})
	bm := USelectBitmap(b, 0.5, 1.0, 3)
	if bm.Count() != 2 || !bm.Get(1) || !bm.Get(2) {
		t.Errorf("bitmap = %v", bm.Slice())
	}
}

func TestUSelectBitmapPanicsOnMaterializedHead(t *testing.T) {
	b := &Float{Head: []int{3, 1}, Tail: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	USelectBitmap(b, 0, 1, 4)
}

func TestJoinFloatPositionalGather(t *testing.T) {
	hi := NewFloatVoid(0, []float64{0.0, 0.1, 0.2, 0.3, 0.4})
	c := NewOIDVoid(0, []int{4, 1, 3})
	got := JoinFloat(c, hi)
	want := []float64{0.4, 0.1, 0.3}
	for i := range want {
		if got.Tail[i] != want[i] {
			t.Errorf("gather[%d] = %v, want %v", i, got.Tail[i], want[i])
		}
	}
}

func TestJoinFloatPanicsOnBadOID(t *testing.T) {
	hi := NewFloatVoid(0, []float64{1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	JoinFloat(NewOIDVoid(0, []int{5}), hi)
}

func TestSelectFloat(t *testing.T) {
	b := NewFloatVoid(0, []float64{10, 20, 30, 40})
	bm := bitmap.FromSlice(4, []int{0, 2})
	got := SelectFloat(b, bm)
	if len(got.Tail) != 2 || got.Tail[0] != 10 || got.Tail[1] != 30 {
		t.Errorf("SelectFloat = %v", got.Tail)
	}
}

// Property: USelect and USelectBitmap agree on the selected oid set.
func TestUSelectVariantsAgree(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%100 + 1
		tail := make([]float64, n)
		for i := range tail {
			tail[i] = rng.Float64()
		}
		b := NewFloatVoid(0, tail)
		lo, hi := rng.Float64(), rng.Float64()
		if lo > hi {
			lo, hi = hi, lo
		}
		oids := USelect(b, lo, hi).Tail
		bm := USelectBitmap(b, lo, hi, n)
		if len(oids) != bm.Count() {
			return false
		}
		for _, oid := range oids {
			if !bm.Get(oid) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MultiAdd is order-independent (the aggregates are commutative,
// the property Section 5.1 relies on for dimension reordering).
func TestMultiAddCommutative(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%50 + 1
		a := NewFloatVoid(0, randTail(rng, n))
		b := NewFloatVoid(0, randTail(rng, n))
		c := NewFloatVoid(0, randTail(rng, n))
		x := MultiAdd(a, b, c)
		y := MultiAdd(c, a, b)
		for i := range x.Tail {
			d := x.Tail[i] - y.Tail[i]
			if d > 1e-12 || d < -1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randTail(rng *rand.Rand, n int) []float64 {
	t := make([]float64, n)
	for i := range t {
		t[i] = rng.Float64()
	}
	return t
}

func BenchmarkMapMinConst(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	bat := NewFloatVoid(0, randTail(rng, 100000))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MapMinConst(bat, 0.5)
	}
}

func BenchmarkJoinFloat(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hi := NewFloatVoid(0, randTail(rng, 100000))
	oids := rng.Perm(100000)[:1000]
	c := NewOIDVoid(0, oids)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinFloat(c, hi)
	}
}

// Package vafile implements the Vector Approximation File of Weber,
// Schek and Blott [22], the comparator of the paper's Table 4.
//
// A VA-File stores, row-major, a small fixed-width approximation of every
// feature vector (here the same 8-bit-per-dimension codes that compressed
// BOND uses, so the two methods filter from identical information). A
// query is answered in two steps: a filter scan over the approximations
// computes per-vector lower and upper bounds on the score and keeps every
// vector whose lower bound does not exceed the k-th best upper bound, and
// a refinement step fetches the exact vectors of the survivors to produce
// the final answer. The filter is fast because it reads 8 bits instead of
// 64 per coefficient; correctness follows because the cell bounds bracket
// the true score, so no true neighbor is ever dropped.
package vafile

import (
	"fmt"

	"bond/internal/kernel"
	"bond/internal/quant"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// File is a built VA-File: row-major codes over a collection.
type File struct {
	q    *quant.Quantizer
	dims int
	n    int
	// codes[id*dims+d] is the approximation of coefficient d of vector id.
	codes []uint8
}

// Build constructs a VA-File over a row-major collection.
// It panics on ragged input.
func Build(vectors [][]float64, q *quant.Quantizer) *File {
	if len(vectors) == 0 {
		panic("vafile: Build on empty collection")
	}
	dims := len(vectors[0])
	f := &File{q: q, dims: dims, n: len(vectors), codes: make([]uint8, len(vectors)*dims)}
	for id, v := range vectors {
		if len(v) != dims {
			panic(fmt.Sprintf("vafile: ragged vector %d", id))
		}
		base := id * dims
		for d, x := range v {
			f.codes[base+d] = q.Encode(x)
		}
	}
	return f
}

// BuildFromStore constructs a VA-File from a decomposed store (reading the
// columns once).
func BuildFromStore(s *vstore.Store, q *quant.Quantizer) *File {
	f := &File{q: q, dims: s.Dims(), n: s.Len(), codes: make([]uint8, s.Len()*s.Dims())}
	for d := 0; d < s.Dims(); d++ {
		col := s.Column(d)
		for id, x := range col {
			f.codes[id*f.dims+d] = q.Encode(x)
		}
	}
	return f
}

// FromRowCodes wraps an already row-major code array as a VA-File without
// copying — the path by which a sealed segment's cached codes become a
// per-segment access path of the query planner with no re-encoding. The
// codes slice is aliased and must not be mutated; it panics when its
// length is not n·dims.
func FromRowCodes(q *quant.Quantizer, n, dims int, codes []uint8) *File {
	if len(codes) != n*dims {
		panic(fmt.Sprintf("vafile: %d codes for %d × %d", len(codes), n, dims))
	}
	return &File{q: q, dims: dims, n: n, codes: codes}
}

// Len returns the number of vectors.
func (f *File) Len() int { return f.n }

// Quantizer returns the quantizer the codes were built with.
func (f *File) Quantizer() *quant.Quantizer { return f.q }

// Dims returns the dimensionality.
func (f *File) Dims() int { return f.dims }

// Stats reports the work of a VA-File search.
type Stats struct {
	// CodesScanned counts approximation cells read in the filter step.
	CodesScanned int64
	// Candidates is the number of vectors surviving the filter.
	Candidates int
	// RefineValuesScanned counts exact coefficients read in refinement.
	RefineValuesScanned int64
}

// FilterEuclidean scans the approximations and returns the ids that may be
// among the k nearest neighbors of q (squared Euclidean distance), plus
// the per-candidate lower bounds.
func (f *File) FilterEuclidean(q []float64, k int) (ids []int, lowers []float64, st Stats) {
	f.checkQuery(q, k)
	lb := make([]float64, f.n)
	ub := make([]float64, f.n)
	for id := 0; id < f.n; id++ {
		base := id * f.dims
		var l, u float64
		for d := 0; d < f.dims; d++ {
			lo, hi := f.q.SqDistBounds(f.codes[base+d], q[d])
			l += lo
			u += hi
		}
		lb[id], ub[id] = l, u
		st.CodesScanned += int64(f.dims)
	}
	kappa := topk.KthSmallest(ub, min(k, f.n))
	for id := 0; id < f.n; id++ {
		if lb[id] <= kappa {
			ids = append(ids, id)
			lowers = append(lowers, lb[id])
		}
	}
	st.Candidates = len(ids)
	return ids, lowers, st
}

// FilterHistogram is the histogram-intersection analogue: it keeps every
// vector whose upper bound reaches the k-th largest lower bound.
func (f *File) FilterHistogram(q []float64, k int) (ids []int, uppers []float64, st Stats) {
	f.checkQuery(q, k)
	lb := make([]float64, f.n)
	ub := make([]float64, f.n)
	for id := 0; id < f.n; id++ {
		base := id * f.dims
		var l, u float64
		for d := 0; d < f.dims; d++ {
			lo, hi := f.q.MinIntersectBounds(f.codes[base+d], q[d])
			l += lo
			u += hi
		}
		lb[id], ub[id] = l, u
		st.CodesScanned += int64(f.dims)
	}
	kappa := topk.KthLargest(lb, min(k, f.n))
	for id := 0; id < f.n; id++ {
		if ub[id] >= kappa {
			ids = append(ids, id)
			uppers = append(uppers, ub[id])
		}
	}
	st.Candidates = len(ids)
	return ids, uppers, st
}

// Table is the per-query cell-bound lookup table of a VA-File filter:
// row d holds, interleaved, the lower and upper score contribution of
// every possible code of dimension d. The bounds depend only on the
// quantizer and the query — not on any particular file — so one Table
// built per query serves every segment of a collection, and the filter
// scan itself is two table loads and two adds per cell. That is what
// lets an 8-bit filter run close to the exact scan's per-cell speed
// while touching an eighth of the bytes.
type Table struct {
	dims     int
	levels   int
	qlo, qhi float64 // quantizer range the table was built for
	// lo[d*256+c] and hi[d*256+c] are the lower and upper contribution of
	// code c in dimension d. Separate arrays: the Euclidean filter scans
	// them in separate passes.
	lo, hi []float64
}

// NewEuclideanTable builds the squared-distance bound table for q: the
// lower bound is the squared distance to the nearer cell edge (zero
// inside the cell), the upper bound to the farther edge.
func NewEuclideanTable(qz *quant.Quantizer, q []float64) *Table {
	return new(Table).BuildEuclidean(qz, q)
}

// BuildEuclidean rebuilds t as the squared-distance bound table for q in
// place, reusing the bound arrays — the pooled counterpart of
// NewEuclideanTable for per-query use on the hot path. It returns t.
func (t *Table) BuildEuclidean(qz *quant.Quantizer, q []float64) *Table {
	t.reset(qz, len(q))
	for d, qd := range q {
		row := d * 256
		for c := 0; c < qz.Levels; c++ {
			cl := qz.CellLower(uint8(c))
			cu := qz.CellUpper(uint8(c))
			var lo float64
			if qd < cl {
				lo = (cl - qd) * (cl - qd)
			} else if qd > cu {
				lo = (qd - cu) * (qd - cu)
			}
			dl, du := qd-cl, cu-qd
			if dl < 0 {
				dl = -dl
			}
			if du < 0 {
				du = -du
			}
			m := dl
			if du > m {
				m = du
			}
			t.lo[row+c] = lo
			t.hi[row+c] = m * m
		}
	}
	return t
}

// NewHistogramTable builds the min-intersection bound table for q.
func NewHistogramTable(qz *quant.Quantizer, q []float64) *Table {
	return new(Table).BuildHistogram(qz, q)
}

// BuildHistogram rebuilds t as the min-intersection bound table for q in
// place, reusing the bound arrays. It returns t.
func (t *Table) BuildHistogram(qz *quant.Quantizer, q []float64) *Table {
	t.reset(qz, len(q))
	for d, qd := range q {
		row := d * 256
		for c := 0; c < qz.Levels; c++ {
			lo := qz.CellLower(uint8(c))
			hi := qz.CellUpper(uint8(c))
			if lo > qd {
				lo = qd
			}
			if hi > qd {
				hi = qd
			}
			t.lo[row+c] = lo
			t.hi[row+c] = hi
		}
	}
	return t
}

func (t *Table) reset(qz *quant.Quantizer, dims int) {
	t.dims, t.levels, t.qlo, t.qhi = dims, qz.Levels, qz.Lo, qz.Hi
	// Entries above qz.Levels are left stale on reuse; Encode clamps every
	// code below Levels, so the filter scans never read them.
	if cap(t.lo) < dims*256 {
		t.lo = make([]float64, dims*256)
		t.hi = make([]float64, dims*256)
	} else {
		t.lo = t.lo[:dims*256]
		t.hi = t.hi[:dims*256]
	}
}

// Fits reports whether the table can bound this file's codes: same
// dimensionality and an identical quantization grid.
func (t *Table) Fits(f *File) bool {
	return t != nil && t.dims == f.dims && t.levels == f.q.Levels && t.qlo == f.q.Lo && t.qhi == f.q.Hi
}

// FilterEuclideanLive is FilterEuclidean restricted to live vectors: skip
// (which may be nil) reports ids the filter must ignore — delete marks or
// a prior selection predicate — so the planner can run the VA-File over a
// segment with tombstones and still return exact answers. Skipped ids
// cost no code reads. tbl must be a NewEuclideanTable for the same query
// and quantization grid (it panics otherwise).
//
// The filter is the near-optimal single-pass algorithm of Weber et al.:
// scan only the selective lower bound — one table load and add per cell
// — and keep a running heap of the k smallest upper bounds. The upper
// bound of a row is computed only when its lower bound clears the
// running κ, which after the first rows almost never happens, so the
// scan touches one bound array instead of two. κ only tightens during
// the scan, so every row that could qualify under the final κ is
// recorded, and a last sweep over the recorded rows with the final κ
// yields exactly the candidates a two-full-pass filter would: no true
// neighbor is ever dropped.
func (f *File) FilterEuclideanLive(tbl *Table, q []float64, k int, skip func(id int) bool) (ids []int, st Stats) {
	return f.FilterEuclideanLiveScratch(tbl, q, k, skip, nil)
}

// Scratch holds the reusable buffers of a live filter scan: the running-κ
// heap, the recorded candidate rows with their selective bounds, and the
// final candidate id list. A zero Scratch is ready to use; passing the
// same Scratch to successive filter calls makes them allocation-free. The
// id slice a filter returns aliases the scratch and is valid only until
// the next call that uses it.
type Scratch struct {
	heap   *topk.Heap
	cands  []int
	bounds []float64
	ids    []int
}

func (sc *Scratch) reset(k int, largest bool) {
	if sc.heap == nil {
		sc.heap = topk.NewLargest(k)
	}
	sc.heap.Reset(k, largest)
	sc.cands = sc.cands[:0]
	sc.bounds = sc.bounds[:0]
	sc.ids = sc.ids[:0]
}

// FilterEuclideanLiveScratch is FilterEuclideanLive with caller-provided
// scratch buffers (nil behaves like FilterEuclideanLive). The returned ids
// alias the scratch.
func (f *File) FilterEuclideanLiveScratch(tbl *Table, q []float64, k int, skip func(id int) bool, sc *Scratch) (ids []int, st Stats) {
	f.checkQuery(q, k)
	if !tbl.Fits(f) {
		panic("vafile: bound table does not fit this file")
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset(k, false)
	h := sc.heap
	for id := 0; id < f.n; id++ {
		if skip != nil && skip(id) {
			continue
		}
		row := f.codes[id*f.dims : (id+1)*f.dims]
		lb := kernel.VARowSum(tbl.lo, row)
		st.CodesScanned += int64(f.dims)
		if kth, full := h.Threshold(); full && lb > kth {
			continue
		}
		st.CodesScanned += int64(f.dims)
		h.Push(id, kernel.VARowSum(tbl.hi, row))
		sc.cands = append(sc.cands, id)
		sc.bounds = append(sc.bounds, lb)
	}
	if len(sc.cands) == 0 {
		return nil, st
	}
	kappa, full := h.Threshold()
	for i, id := range sc.cands {
		if !full || sc.bounds[i] <= kappa {
			sc.ids = append(sc.ids, id)
		}
	}
	st.Candidates = len(sc.ids)
	return sc.ids, st
}

// FilterHistogramLive is the histogram-intersection analogue of
// FilterEuclideanLive, with the bound roles mirrored: the upper bound is
// the selective one scanned for every row, and a row's lower bound joins
// the κ heap (k largest lower bounds) only when the row's upper bound
// still clears the running κ.
func (f *File) FilterHistogramLive(tbl *Table, q []float64, k int, skip func(id int) bool) (ids []int, st Stats) {
	return f.FilterHistogramLiveScratch(tbl, q, k, skip, nil)
}

// FilterHistogramLiveScratch is FilterHistogramLive with caller-provided
// scratch buffers (nil behaves like FilterHistogramLive). The returned ids
// alias the scratch.
func (f *File) FilterHistogramLiveScratch(tbl *Table, q []float64, k int, skip func(id int) bool, sc *Scratch) (ids []int, st Stats) {
	f.checkQuery(q, k)
	if !tbl.Fits(f) {
		panic("vafile: bound table does not fit this file")
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.reset(k, true)
	h := sc.heap
	for id := 0; id < f.n; id++ {
		if skip != nil && skip(id) {
			continue
		}
		row := f.codes[id*f.dims : (id+1)*f.dims]
		ub := kernel.VARowSum(tbl.hi, row)
		st.CodesScanned += int64(f.dims)
		if kth, full := h.Threshold(); full && ub < kth {
			continue
		}
		st.CodesScanned += int64(f.dims)
		h.Push(id, kernel.VARowSum(tbl.lo, row))
		sc.cands = append(sc.cands, id)
		sc.bounds = append(sc.bounds, ub)
	}
	if len(sc.cands) == 0 {
		return nil, st
	}
	kappa, full := h.Threshold()
	for i, id := range sc.cands {
		if !full || sc.bounds[i] >= kappa {
			sc.ids = append(sc.ids, id)
		}
	}
	st.Candidates = len(sc.ids)
	return sc.ids, st
}

// SearchEuclidean runs filter plus refinement against the exact vectors
// and returns the true k nearest neighbors.
func (f *File) SearchEuclidean(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	ids, _, st := f.FilterEuclidean(q, k)
	h := topk.NewSmallest(min(k, f.n))
	for _, id := range ids {
		v := vectors[id]
		s := 0.0
		for d, x := range v {
			diff := x - q[d]
			s += diff * diff
		}
		st.RefineValuesScanned += int64(f.dims)
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchHistogram runs filter plus refinement for histogram intersection.
func (f *File) SearchHistogram(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	ids, _, st := f.FilterHistogram(q, k)
	h := topk.NewLargest(min(k, f.n))
	for _, id := range ids {
		v := vectors[id]
		s := 0.0
		for d, x := range v {
			if x < q[d] {
				s += x
			} else {
				s += q[d]
			}
		}
		st.RefineValuesScanned += int64(f.dims)
		h.Push(id, s)
	}
	return h.Results(), st
}

func (f *File) checkQuery(q []float64, k int) {
	if len(q) != f.dims {
		panic(fmt.Sprintf("vafile: query dims %d != file dims %d", len(q), f.dims))
	}
	if k < 1 {
		panic(fmt.Sprintf("vafile: k must be >= 1, got %d", k))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Package vafile implements the Vector Approximation File of Weber,
// Schek and Blott [22], the comparator of the paper's Table 4.
//
// A VA-File stores, row-major, a small fixed-width approximation of every
// feature vector (here the same 8-bit-per-dimension codes that compressed
// BOND uses, so the two methods filter from identical information). A
// query is answered in two steps: a filter scan over the approximations
// computes per-vector lower and upper bounds on the score and keeps every
// vector whose lower bound does not exceed the k-th best upper bound, and
// a refinement step fetches the exact vectors of the survivors to produce
// the final answer. The filter is fast because it reads 8 bits instead of
// 64 per coefficient; correctness follows because the cell bounds bracket
// the true score, so no true neighbor is ever dropped.
package vafile

import (
	"fmt"

	"bond/internal/quant"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// File is a built VA-File: row-major codes over a collection.
type File struct {
	q    *quant.Quantizer
	dims int
	n    int
	// codes[id*dims+d] is the approximation of coefficient d of vector id.
	codes []uint8
}

// Build constructs a VA-File over a row-major collection.
// It panics on ragged input.
func Build(vectors [][]float64, q *quant.Quantizer) *File {
	if len(vectors) == 0 {
		panic("vafile: Build on empty collection")
	}
	dims := len(vectors[0])
	f := &File{q: q, dims: dims, n: len(vectors), codes: make([]uint8, len(vectors)*dims)}
	for id, v := range vectors {
		if len(v) != dims {
			panic(fmt.Sprintf("vafile: ragged vector %d", id))
		}
		base := id * dims
		for d, x := range v {
			f.codes[base+d] = q.Encode(x)
		}
	}
	return f
}

// BuildFromStore constructs a VA-File from a decomposed store (reading the
// columns once).
func BuildFromStore(s *vstore.Store, q *quant.Quantizer) *File {
	f := &File{q: q, dims: s.Dims(), n: s.Len(), codes: make([]uint8, s.Len()*s.Dims())}
	for d := 0; d < s.Dims(); d++ {
		col := s.Column(d)
		for id, x := range col {
			f.codes[id*f.dims+d] = q.Encode(x)
		}
	}
	return f
}

// Len returns the number of vectors.
func (f *File) Len() int { return f.n }

// Dims returns the dimensionality.
func (f *File) Dims() int { return f.dims }

// Stats reports the work of a VA-File search.
type Stats struct {
	// CodesScanned counts approximation cells read in the filter step.
	CodesScanned int64
	// Candidates is the number of vectors surviving the filter.
	Candidates int
	// RefineValuesScanned counts exact coefficients read in refinement.
	RefineValuesScanned int64
}

// FilterEuclidean scans the approximations and returns the ids that may be
// among the k nearest neighbors of q (squared Euclidean distance), plus
// the per-candidate lower bounds.
func (f *File) FilterEuclidean(q []float64, k int) (ids []int, lowers []float64, st Stats) {
	f.checkQuery(q, k)
	lb := make([]float64, f.n)
	ub := make([]float64, f.n)
	for id := 0; id < f.n; id++ {
		base := id * f.dims
		var l, u float64
		for d := 0; d < f.dims; d++ {
			lo, hi := f.q.SqDistBounds(f.codes[base+d], q[d])
			l += lo
			u += hi
		}
		lb[id], ub[id] = l, u
		st.CodesScanned += int64(f.dims)
	}
	kappa := topk.KthSmallest(ub, min(k, f.n))
	for id := 0; id < f.n; id++ {
		if lb[id] <= kappa {
			ids = append(ids, id)
			lowers = append(lowers, lb[id])
		}
	}
	st.Candidates = len(ids)
	return ids, lowers, st
}

// FilterHistogram is the histogram-intersection analogue: it keeps every
// vector whose upper bound reaches the k-th largest lower bound.
func (f *File) FilterHistogram(q []float64, k int) (ids []int, uppers []float64, st Stats) {
	f.checkQuery(q, k)
	lb := make([]float64, f.n)
	ub := make([]float64, f.n)
	for id := 0; id < f.n; id++ {
		base := id * f.dims
		var l, u float64
		for d := 0; d < f.dims; d++ {
			lo, hi := f.q.MinIntersectBounds(f.codes[base+d], q[d])
			l += lo
			u += hi
		}
		lb[id], ub[id] = l, u
		st.CodesScanned += int64(f.dims)
	}
	kappa := topk.KthLargest(lb, min(k, f.n))
	for id := 0; id < f.n; id++ {
		if ub[id] >= kappa {
			ids = append(ids, id)
			uppers = append(uppers, ub[id])
		}
	}
	st.Candidates = len(ids)
	return ids, uppers, st
}

// SearchEuclidean runs filter plus refinement against the exact vectors
// and returns the true k nearest neighbors.
func (f *File) SearchEuclidean(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	ids, _, st := f.FilterEuclidean(q, k)
	h := topk.NewSmallest(min(k, f.n))
	for _, id := range ids {
		v := vectors[id]
		s := 0.0
		for d, x := range v {
			diff := x - q[d]
			s += diff * diff
		}
		st.RefineValuesScanned += int64(f.dims)
		h.Push(id, s)
	}
	return h.Results(), st
}

// SearchHistogram runs filter plus refinement for histogram intersection.
func (f *File) SearchHistogram(vectors [][]float64, q []float64, k int) ([]topk.Result, Stats) {
	ids, _, st := f.FilterHistogram(q, k)
	h := topk.NewLargest(min(k, f.n))
	for _, id := range ids {
		v := vectors[id]
		s := 0.0
		for d, x := range v {
			if x < q[d] {
				s += x
			} else {
				s += q[d]
			}
		}
		st.RefineValuesScanned += int64(f.dims)
		h.Push(id, s)
	}
	return h.Results(), st
}

func (f *File) checkQuery(q []float64, k int) {
	if len(q) != f.dims {
		panic(fmt.Sprintf("vafile: query dims %d != file dims %d", len(q), f.dims))
	}
	if k < 1 {
		panic(fmt.Sprintf("vafile: k must be >= 1, got %d", k))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package vafile

import (
	"math"
	"testing"
	"testing/quick"

	"bond/internal/dataset"
	"bond/internal/quant"
	"bond/internal/seqscan"
	"bond/internal/vstore"
)

func fixture() ([][]float64, *File) {
	vs := dataset.CorelLike(800, 48, 77)
	return vs, Build(vs, quant.NewUnit())
}

func TestSearchEuclideanMatchesScan(t *testing.T) {
	vs, f := fixture()
	queries, _ := dataset.SampleQueries(vs, 6, 5)
	for _, q := range queries {
		got, st := f.SearchEuclidean(vs, q, 10)
		want, _ := seqscan.SearchEuclidean(vs, q, 10)
		if len(got) != len(want) {
			t.Fatalf("got %d results", len(got))
		}
		for i := range want {
			if got[i].ID != want[i].ID && math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Errorf("rank %d: id %d (%v), want %d (%v)",
					i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
		if st.Candidates == 0 || st.Candidates > len(vs) {
			t.Errorf("implausible candidate count %d", st.Candidates)
		}
	}
}

func TestSearchHistogramMatchesScan(t *testing.T) {
	vs, f := fixture()
	queries, _ := dataset.SampleQueries(vs, 6, 6)
	for _, q := range queries {
		got, _ := f.SearchHistogram(vs, q, 10)
		want, _ := seqscan.SearchHistogram(vs, q, 10)
		for i := range want {
			if got[i].ID != want[i].ID && math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Errorf("rank %d: id %d, want %d", i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestFilterReducesCandidates(t *testing.T) {
	vs, f := fixture()
	q := vs[3]
	ids, _, st := f.FilterEuclidean(q, 10)
	if len(ids) >= len(vs)/2 {
		t.Errorf("filter kept %d of %d", len(ids), len(vs))
	}
	if st.CodesScanned != int64(len(vs)*48) {
		t.Errorf("filter must scan every code once, got %d", st.CodesScanned)
	}
}

// Property: the filter never dismisses a true k-NN (the no-false-dismissal
// guarantee of the VA-File).
func TestFilterNoFalseDismissal(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		vs := dataset.CorelLike(120, 16, seed)
		file := Build(vs, quant.New(0, 1, 16)) // coarse on purpose
		k := int(kRaw)%10 + 1
		q := vs[int(uint64(seed)%uint64(len(vs)))]
		ids, _, _ := file.FilterEuclidean(q, k)
		inSet := map[int]bool{}
		for _, id := range ids {
			inSet[id] = true
		}
		want, _ := seqscan.SearchEuclidean(vs, q, k)
		for _, r := range want {
			if !inSet[r.ID] {
				return false
			}
		}
		idsH, _, _ := file.FilterHistogram(q, k)
		inSetH := map[int]bool{}
		for _, id := range idsH {
			inSetH[id] = true
		}
		wantH, _ := seqscan.SearchHistogram(vs, q, k)
		for _, r := range wantH {
			if !inSetH[r.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildFromStoreMatchesBuild(t *testing.T) {
	vs := dataset.CorelLike(50, 12, 4)
	s := vstore.FromVectors(vs)
	a := Build(vs, quant.NewUnit())
	b := BuildFromStore(s, quant.NewUnit())
	if a.Len() != b.Len() || a.Dims() != b.Dims() {
		t.Fatal("shape mismatch")
	}
	for i := range a.codes {
		if a.codes[i] != b.codes[i] {
			t.Fatalf("code %d differs", i)
		}
	}
}

func TestPanics(t *testing.T) {
	vs, f := fixture()
	for _, fn := range []func(){
		func() { Build(nil, quant.NewUnit()) },
		func() { Build([][]float64{{1, 2}, {1}}, quant.NewUnit()) },
		func() { f.FilterEuclidean(vs[0][:3], 1) },
		func() { f.FilterEuclidean(vs[0], 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

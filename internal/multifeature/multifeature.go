// Package multifeature implements complex (multi-feature) k-NN queries
// over several vertically decomposed feature collections (Section 8.2).
//
// A multi-feature query asks, e.g., for images similar to image A in color
// and to image B in texture: each feature collection stores one vector per
// object, and the global similarity is a monotone aggregate of the
// per-feature similarities (a weighted average, or a fuzzy-logic min/max).
//
// Because every feature collection is vertically fragmented, BOND can
// integrate the per-feature ranking and the merging step: it processes the
// union of all features' dimensions in one branch-and-bound loop
// ("synchronized search"), bounding the global score of every object by
// aggregating the per-feature partial scores and tail bounds. The paper
// found this 20 % faster than stream merging for the average aggregate and
// 70 % faster for min (Section 8.2); package streammerge provides that
// comparator.
//
// A feature may be backed by a flat store (Store) or by the segments of a
// segmented collection (Segments). Candidates stay ordered by global id
// throughout the loop, so segmented column access advances a cursor over
// the segment boundaries instead of copying columns together.
package multifeature

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bond/internal/core"
	"bond/internal/metric"
	"bond/internal/topk"
)

// FeatureMetric selects the similarity metric of one query component —
// Section 8.2 explicitly supports "queries having different similarity
// metrics for each component, provided that the global similarity is well
// defined from the merging of the individual ones".
type FeatureMetric int

const (
	// MetricHistogram scores a component by histogram intersection
	// (Definition 1). The default.
	MetricHistogram FeatureMetric = iota
	// MetricEuclidean scores a component by the Euclidean similarity of
	// Equation 3: Sim = 1 − sqrt(δ/N), so all components share the [0, 1]
	// similarity scale and any monotone aggregate applies.
	MetricEuclidean
)

// String names the metric.
func (m FeatureMetric) String() string {
	switch m {
	case MetricHistogram:
		return "histogram"
	case MetricEuclidean:
		return "euclidean"
	}
	return fmt.Sprintf("FeatureMetric(%d)", int(m))
}

// Feature is one component of a multi-feature query: a decomposed
// collection, the query vector for it, its weight in the aggregate, and
// its similarity metric.
//
// The collection is given either as a single flat Store or as the ordered
// Segments of a segmented collection; Segments wins when both are set.
type Feature struct {
	Store    core.Source
	Segments []core.SegmentView
	Query    []float64
	Weight   float64
	Metric   FeatureMetric
}

// Views returns the feature's storage as segment views (a flat Store
// becomes a single view at base 0).
func (f Feature) Views() []core.SegmentView {
	if len(f.Segments) > 0 {
		return f.Segments
	}
	if f.Store == nil {
		return nil
	}
	return []core.SegmentView{{Src: f.Store}}
}

// Len returns the number of object slots the feature covers.
func (f Feature) Len() int {
	n := 0
	for _, v := range f.Views() {
		n += v.Src.Len()
	}
	return n
}

// Dims returns the feature's dimensionality (0 when no storage is set).
func (f Feature) Dims() int {
	views := f.Views()
	if len(views) == 0 {
		return 0
	}
	return views[0].Src.Dims()
}

// Aggregate combines per-feature similarities into a global score.
// All supported aggregates are monotone, the property BOND's bound
// aggregation relies on.
type Aggregate int

const (
	// WeightedAvg is Σ w_f · s_f / Σ w_f (arithmetic aggregate [9]).
	WeightedAvg Aggregate = iota
	// MinAgg is the fuzzy-logic conjunction min_f s_f [7, 15].
	MinAgg
	// MaxAgg is the fuzzy-logic disjunction max_f s_f.
	MaxAgg
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case WeightedAvg:
		return "avg"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	}
	return fmt.Sprintf("Aggregate(%d)", int(a))
}

// Combine applies the aggregate to per-feature scores.
func (a Aggregate) Combine(scores, weights []float64) float64 {
	switch a {
	case WeightedAvg:
		var s, w float64
		for f, x := range scores {
			s += weights[f] * x
			w += weights[f]
		}
		if w == 0 {
			return 0
		}
		return s / w
	case MinAgg:
		m := math.Inf(1)
		for _, x := range scores {
			if x < m {
				m = x
			}
		}
		return m
	case MaxAgg:
		m := math.Inf(-1)
		for _, x := range scores {
			if x > m {
				m = x
			}
		}
		return m
	}
	panic(fmt.Sprintf("multifeature: unknown aggregate %d", int(a)))
}

// Options configures a synchronized multi-feature search.
type Options struct {
	// K is the number of results. Required, ≥ 1.
	K int
	// Agg selects the aggregate. Default WeightedAvg.
	Agg Aggregate
	// Step is the pruning granularity over the union of all features'
	// dimensions. Default 8.
	Step int
}

// Stats describes the work performed.
type Stats struct {
	ValuesScanned   int64
	Steps           []StepStat
	FinalCandidates int
}

// StepStat records one pruning iteration.
type StepStat struct {
	DimsProcessed int
	Candidates    int
}

// Result is a completed multi-feature search.
type Result struct {
	Results []topk.Result
	Stats   Stats
}

// Validation errors.
var (
	ErrNoFeatures   = errors.New("multifeature: at least one feature required")
	ErrSizeMismatch = errors.New("multifeature: all feature stores must hold the same objects")
	ErrBadOptions   = errors.New("multifeature: invalid options")
)

func validate(features []Feature, opts *Options) error {
	if len(features) == 0 {
		return ErrNoFeatures
	}
	n := features[0].Len()
	for i, f := range features {
		if len(f.Views()) == 0 {
			return fmt.Errorf("%w: feature %d has no storage", ErrBadOptions, i)
		}
		if f.Len() != n {
			return fmt.Errorf("%w: feature %d has %d objects, want %d", ErrSizeMismatch, i, f.Len(), n)
		}
		if len(f.Query) != f.Dims() {
			return fmt.Errorf("%w: feature %d query dims %d != store dims %d", ErrBadOptions, i, len(f.Query), f.Dims())
		}
		if f.Weight < 0 {
			return fmt.Errorf("%w: feature %d has negative weight", ErrBadOptions, i)
		}
		base := 0
		for vi, v := range f.Views() {
			if v.Base != base {
				return fmt.Errorf("%w: feature %d segment %d base %d, want %d", ErrBadOptions, i, vi, v.Base, base)
			}
			base += v.Src.Len()
		}
	}
	if opts.K < 1 {
		return fmt.Errorf("%w: K must be >= 1", ErrBadOptions)
	}
	if opts.Step == 0 {
		opts.Step = 8
	}
	if opts.Step < 1 {
		return fmt.Errorf("%w: Step must be >= 1", ErrBadOptions)
	}
	return nil
}

// dimRef addresses one dimension of one feature in the merged order.
type dimRef struct {
	feature int
	dim     int
}

// featData caches one feature's segment layout for cursor-based access.
type featData struct {
	views []core.SegmentView
	ends  []int // ends[i] = views[i].Base + views[i].Src.Len()
}

func layout(f Feature) featData {
	views := f.Views()
	fd := featData{views: views, ends: make([]int, len(views))}
	for i, v := range views {
		fd.ends[i] = v.Base + v.Src.Len()
	}
	return fd
}

// forEachValue streams dimension d's value for every candidate id (ids
// must be ascending — the search loop's standing invariant), advancing a
// segment cursor instead of materializing a global column.
func (fd featData) forEachValue(d int, cands []int, fn func(ci int, v float64)) {
	si := 0
	var col []float64
	for ci, id := range cands {
		for id >= fd.ends[si] {
			si++
			col = nil
		}
		if col == nil {
			col = fd.views[si].Src.Column(d)
		}
		fn(ci, col[id-fd.views[si].Base])
	}
}

// value performs one random access to dimension d of object id.
func (fd featData) value(d, id int) float64 {
	si := sort.Search(len(fd.ends), func(i int) bool { return id < fd.ends[i] })
	return fd.views[si].Src.Column(d)[id-fd.views[si].Base]
}

// deletedUnion marks every object deleted in at least one feature.
func deletedUnion(features []Feature, n int) []bool {
	deleted := make([]bool, n)
	for _, f := range features {
		for _, v := range f.Views() {
			base := v.Base
			v.Src.DeletedBitmap().ForEach(func(local int) { deleted[base+local] = true })
		}
	}
	return deleted
}

// Search runs synchronized BOND over all features with the Hq
// (histogram-intersection, query-only) bounds per feature, aggregating the
// per-feature bounds into global score bounds. It returns the exact global
// top-k (ties break toward smaller id).
func Search(features []Feature, opts Options) (Result, error) {
	if err := validate(features, &opts); err != nil {
		return Result{}, err
	}
	nf := len(features)
	n := features[0].Len()
	k := opts.K
	if k > n {
		k = n
	}
	weights := make([]float64, nf)
	feats := make([]featData, nf)
	for f := range features {
		weights[f] = features[f].Weight
		feats[f] = layout(features[f])
	}

	// Merged processing order: all (feature, dim) pairs by decreasing
	// weight-normalized maximal contribution (Section 8.2). Histogram
	// dimensions can contribute at most q to the similarity; Euclidean
	// dimensions at most max(q, 1−q)²/N of squared-distance mass.
	dimKey := func(f, d int) float64 {
		q := features[f].Query[d]
		if features[f].Metric == MetricEuclidean {
			m := q
			if 1-q > m {
				m = 1 - q
			}
			return weights[f] * m * m / float64(features[f].Dims())
		}
		return weights[f] * q
	}
	var order []dimRef
	for f := range features {
		for d := range features[f].Query {
			order = append(order, dimRef{f, d})
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		return dimKey(a.feature, a.dim) > dimKey(b.feature, b.dim)
	})

	// Remaining tail bound per feature: Σ q over unprocessed dimensions
	// for histogram components (the Hq bound), Σ max(q, 1−q)² for
	// Euclidean components (the Eq. 10 worst-corner bound).
	tailQ := make([]float64, nf)
	for f := range features {
		for _, qv := range features[f].Query {
			if features[f].Metric == MetricEuclidean {
				m := qv
				if 1-qv > m {
					m = 1 - qv
				}
				tailQ[f] += m * m
			} else {
				tailQ[f] += qv
			}
		}
	}

	cands := make([]int, 0, n)
	deleted := deletedUnion(features, n)
	for id := 0; id < n; id++ {
		if !deleted[id] {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return Result{}, fmt.Errorf("%w: no live objects", ErrBadOptions)
	}
	if k > len(cands) {
		k = len(cands)
	}

	// scores[f][ci]: partial per-feature similarity of candidate ci.
	scores := make([][]float64, nf)
	for f := range scores {
		scores[f] = make([]float64, len(cands))
	}

	var stats Stats
	perFeature := make([]float64, nf) // scratch for Combine
	scratch2 := make([]float64, nf)

	// simBounds converts a component's partial score and remaining tail
	// bound into similarity-scale lower/upper bounds. The maintained tail
	// mass can drift an ulp below zero once every dimension of a feature
	// is processed; it is floored at 0 so the Euclidean square root stays
	// real and the histogram upper bound stays conservative.
	simBounds := func(f int, s float64) (lo, hi float64) {
		t := tailQ[f]
		if t < 0 {
			t = 0
		}
		if features[f].Metric == MetricEuclidean {
			n := features[f].Dims()
			return metric.EuclideanSim(s+t, n), metric.EuclideanSim(s, n)
		}
		return s, s + t
	}
	simFinal := func(f int, s float64) float64 {
		if features[f].Metric == MetricEuclidean {
			return metric.EuclideanSim(s, features[f].Dims())
		}
		return s
	}
	total := len(order)
	for processed := 0; processed < total; {
		next := processed + opts.Step
		if next > total {
			next = total
		}
		for _, ref := range order[processed:next] {
			qd := features[ref.feature].Query[ref.dim]
			sf := scores[ref.feature]
			if features[ref.feature].Metric == MetricEuclidean {
				feats[ref.feature].forEachValue(ref.dim, cands, func(ci int, v float64) {
					diff := v - qd
					sf[ci] += diff * diff
				})
				m := qd
				if 1-qd > m {
					m = 1 - qd
				}
				tailQ[ref.feature] -= m * m
			} else {
				feats[ref.feature].forEachValue(ref.dim, cands, func(ci int, v float64) {
					if v < qd {
						sf[ci] += v
					} else {
						sf[ci] += qd
					}
				})
				tailQ[ref.feature] -= qd
			}
			stats.ValuesScanned += int64(len(cands))
		}
		processed = next
		if processed >= total || len(cands) <= k {
			continue
		}

		// Global bounds: lower = agg of per-feature partials (tails ≥ 0),
		// upper = agg of partials + per-feature query tail mass.
		lower := make([]float64, len(cands))
		upper := make([]float64, len(cands))
		for ci := range cands {
			for f := 0; f < nf; f++ {
				perFeature[f], scratch2[f] = simBounds(f, scores[f][ci])
			}
			lower[ci] = opts.Agg.Combine(perFeature, weights)
			upper[ci] = opts.Agg.Combine(scratch2, weights)
		}
		kappa := topk.KthLargest(lower, k)
		out := 0
		for ci := range cands {
			if upper[ci] >= kappa {
				cands[out] = cands[ci]
				for f := 0; f < nf; f++ {
					scores[f][out] = scores[f][ci]
				}
				out++
			}
		}
		cands = cands[:out]
		for f := range scores {
			scores[f] = scores[f][:out]
		}
		stats.Steps = append(stats.Steps, StepStat{DimsProcessed: processed, Candidates: out})
	}
	stats.FinalCandidates = len(cands)

	h := topk.NewLargest(k)
	for ci, id := range cands {
		for f := 0; f < nf; f++ {
			perFeature[f] = simFinal(f, scores[f][ci])
		}
		h.Push(id, opts.Agg.Combine(perFeature, weights))
	}
	return Result{Results: h.Results(), Stats: stats}, nil
}

// ExactGlobal computes the exact global similarity of object id — the
// random-access primitive stream merging needs and the reference for tests.
func ExactGlobal(features []Feature, agg Aggregate, id int) float64 {
	scores := make([]float64, len(features))
	weights := make([]float64, len(features))
	for f, feat := range features {
		weights[f] = feat.Weight
		fd := layout(feat)
		s := 0.0
		if feat.Metric == MetricEuclidean {
			for d, qd := range feat.Query {
				diff := fd.value(d, id) - qd
				s += diff * diff
			}
			s = metric.EuclideanSim(s, feat.Dims())
		} else {
			for d, qd := range feat.Query {
				v := fd.value(d, id)
				if v < qd {
					s += v
				} else {
					s += qd
				}
			}
		}
		scores[f] = s
	}
	return agg.Combine(scores, weights)
}

// ExactGlobalBatch computes exact global similarities for many objects at
// once, iterating column-wise per feature so the accesses stay sequential
// within each dimension table. The ids may be in any order.
func ExactGlobalBatch(features []Feature, agg Aggregate, ids []int) []float64 {
	nf := len(features)
	weights := make([]float64, nf)
	perFeature := make([][]float64, nf)
	for f, feat := range features {
		weights[f] = feat.Weight
		fd := layout(feat)
		// Pre-resolve each id's segment once; reused for every dimension.
		segOf := make([]int, len(ids))
		for i, id := range ids {
			segOf[i] = sort.Search(len(fd.ends), func(s int) bool { return id < fd.ends[s] })
		}
		acc := make([]float64, len(ids))
		euc := feat.Metric == MetricEuclidean
		for d := 0; d < feat.Dims(); d++ {
			qd := feat.Query[d]
			for i, id := range ids {
				v := fd.views[segOf[i]].Src.Column(d)[id-fd.views[segOf[i]].Base]
				if euc {
					diff := v - qd
					acc[i] += diff * diff
				} else if v < qd {
					acc[i] += v
				} else {
					acc[i] += qd
				}
			}
		}
		if euc {
			for i := range acc {
				acc[i] = metric.EuclideanSim(acc[i], feat.Dims())
			}
		}
		perFeature[f] = acc
	}
	out := make([]float64, len(ids))
	scratch := make([]float64, nf)
	for i := range ids {
		for f := 0; f < nf; f++ {
			scratch[f] = perFeature[f][i]
		}
		out[i] = agg.Combine(scratch, weights)
	}
	return out
}

// Package multifeature implements complex (multi-feature) k-NN queries
// over several vertically decomposed feature collections (Section 8.2).
//
// A multi-feature query asks, e.g., for images similar to image A in color
// and to image B in texture: each feature collection stores one vector per
// object, and the global similarity is a monotone aggregate of the
// per-feature similarities (a weighted average, or a fuzzy-logic min/max).
//
// Because every feature collection is vertically fragmented, BOND can
// integrate the per-feature ranking and the merging step: it processes the
// union of all features' dimensions in one branch-and-bound loop
// ("synchronized search"), bounding the global score of every object by
// aggregating the per-feature partial scores and tail bounds. The paper
// found this 20 % faster than stream merging for the average aggregate and
// 70 % faster for min (Section 8.2); package streammerge provides that
// comparator.
package multifeature

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bond/internal/metric"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// FeatureMetric selects the similarity metric of one query component —
// Section 8.2 explicitly supports "queries having different similarity
// metrics for each component, provided that the global similarity is well
// defined from the merging of the individual ones".
type FeatureMetric int

const (
	// MetricHistogram scores a component by histogram intersection
	// (Definition 1). The default.
	MetricHistogram FeatureMetric = iota
	// MetricEuclidean scores a component by the Euclidean similarity of
	// Equation 3: Sim = 1 − sqrt(δ/N), so all components share the [0, 1]
	// similarity scale and any monotone aggregate applies.
	MetricEuclidean
)

// String names the metric.
func (m FeatureMetric) String() string {
	switch m {
	case MetricHistogram:
		return "histogram"
	case MetricEuclidean:
		return "euclidean"
	}
	return fmt.Sprintf("FeatureMetric(%d)", int(m))
}

// Feature is one component of a multi-feature query: a decomposed
// collection, the query vector for it, its weight in the aggregate, and
// its similarity metric.
type Feature struct {
	Store  *vstore.Store
	Query  []float64
	Weight float64
	Metric FeatureMetric
}

// Aggregate combines per-feature similarities into a global score.
// All supported aggregates are monotone, the property BOND's bound
// aggregation relies on.
type Aggregate int

const (
	// WeightedAvg is Σ w_f · s_f / Σ w_f (arithmetic aggregate [9]).
	WeightedAvg Aggregate = iota
	// MinAgg is the fuzzy-logic conjunction min_f s_f [7, 15].
	MinAgg
	// MaxAgg is the fuzzy-logic disjunction max_f s_f.
	MaxAgg
)

// String names the aggregate.
func (a Aggregate) String() string {
	switch a {
	case WeightedAvg:
		return "avg"
	case MinAgg:
		return "min"
	case MaxAgg:
		return "max"
	}
	return fmt.Sprintf("Aggregate(%d)", int(a))
}

// Combine applies the aggregate to per-feature scores.
func (a Aggregate) Combine(scores, weights []float64) float64 {
	switch a {
	case WeightedAvg:
		var s, w float64
		for f, x := range scores {
			s += weights[f] * x
			w += weights[f]
		}
		if w == 0 {
			return 0
		}
		return s / w
	case MinAgg:
		m := math.Inf(1)
		for _, x := range scores {
			if x < m {
				m = x
			}
		}
		return m
	case MaxAgg:
		m := math.Inf(-1)
		for _, x := range scores {
			if x > m {
				m = x
			}
		}
		return m
	}
	panic(fmt.Sprintf("multifeature: unknown aggregate %d", int(a)))
}

// Options configures a synchronized multi-feature search.
type Options struct {
	// K is the number of results. Required, ≥ 1.
	K int
	// Agg selects the aggregate. Default WeightedAvg.
	Agg Aggregate
	// Step is the pruning granularity over the union of all features'
	// dimensions. Default 8.
	Step int
}

// Stats describes the work performed.
type Stats struct {
	ValuesScanned   int64
	Steps           []StepStat
	FinalCandidates int
}

// StepStat records one pruning iteration.
type StepStat struct {
	DimsProcessed int
	Candidates    int
}

// Result is a completed multi-feature search.
type Result struct {
	Results []topk.Result
	Stats   Stats
}

// Validation errors.
var (
	ErrNoFeatures   = errors.New("multifeature: at least one feature required")
	ErrSizeMismatch = errors.New("multifeature: all feature stores must hold the same objects")
	ErrBadOptions   = errors.New("multifeature: invalid options")
)

func validate(features []Feature, opts *Options) error {
	if len(features) == 0 {
		return ErrNoFeatures
	}
	n := features[0].Store.Len()
	for i, f := range features {
		if f.Store.Len() != n {
			return fmt.Errorf("%w: feature %d has %d objects, want %d", ErrSizeMismatch, i, f.Store.Len(), n)
		}
		if len(f.Query) != f.Store.Dims() {
			return fmt.Errorf("%w: feature %d query dims %d != store dims %d", ErrBadOptions, i, len(f.Query), f.Store.Dims())
		}
		if f.Weight < 0 {
			return fmt.Errorf("%w: feature %d has negative weight", ErrBadOptions, i)
		}
	}
	if opts.K < 1 {
		return fmt.Errorf("%w: K must be >= 1", ErrBadOptions)
	}
	if opts.Step == 0 {
		opts.Step = 8
	}
	if opts.Step < 1 {
		return fmt.Errorf("%w: Step must be >= 1", ErrBadOptions)
	}
	return nil
}

// dimRef addresses one dimension of one feature in the merged order.
type dimRef struct {
	feature int
	dim     int
}

// Search runs synchronized BOND over all features with the Hq
// (histogram-intersection, query-only) bounds per feature, aggregating the
// per-feature bounds into global score bounds. It returns the exact global
// top-k (ties break toward smaller id).
func Search(features []Feature, opts Options) (Result, error) {
	if err := validate(features, &opts); err != nil {
		return Result{}, err
	}
	nf := len(features)
	n := features[0].Store.Len()
	k := opts.K
	if k > n {
		k = n
	}
	weights := make([]float64, nf)
	for f := range features {
		weights[f] = features[f].Weight
	}

	// Merged processing order: all (feature, dim) pairs by decreasing
	// weight-normalized maximal contribution (Section 8.2). Histogram
	// dimensions can contribute at most q to the similarity; Euclidean
	// dimensions at most max(q, 1−q)²/N of squared-distance mass.
	dimKey := func(f, d int) float64 {
		q := features[f].Query[d]
		if features[f].Metric == MetricEuclidean {
			m := q
			if 1-q > m {
				m = 1 - q
			}
			return weights[f] * m * m / float64(features[f].Store.Dims())
		}
		return weights[f] * q
	}
	var order []dimRef
	for f := range features {
		for d := range features[f].Query {
			order = append(order, dimRef{f, d})
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		return dimKey(a.feature, a.dim) > dimKey(b.feature, b.dim)
	})

	// Remaining tail bound per feature: Σ q over unprocessed dimensions
	// for histogram components (the Hq bound), Σ max(q, 1−q)² for
	// Euclidean components (the Eq. 10 worst-corner bound).
	tailQ := make([]float64, nf)
	for f := range features {
		for _, qv := range features[f].Query {
			if features[f].Metric == MetricEuclidean {
				m := qv
				if 1-qv > m {
					m = 1 - qv
				}
				tailQ[f] += m * m
			} else {
				tailQ[f] += qv
			}
		}
	}

	cands := make([]int, 0, n)
	deleted := make([]bool, n)
	for f := range features {
		bm := features[f].Store.DeletedBitmap()
		bm.ForEach(func(id int) { deleted[id] = true })
	}
	for id := 0; id < n; id++ {
		if !deleted[id] {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return Result{}, fmt.Errorf("%w: no live objects", ErrBadOptions)
	}
	if k > len(cands) {
		k = len(cands)
	}

	// scores[f][ci]: partial per-feature similarity of candidate ci.
	scores := make([][]float64, nf)
	for f := range scores {
		scores[f] = make([]float64, len(cands))
	}

	var stats Stats
	perFeature := make([]float64, nf) // scratch for Combine
	scratch2 := make([]float64, nf)

	// simBounds converts a component's partial score and remaining tail
	// bound into similarity-scale lower/upper bounds.
	simBounds := func(f int, s float64) (lo, hi float64) {
		if features[f].Metric == MetricEuclidean {
			n := features[f].Store.Dims()
			return metric.EuclideanSim(s+tailQ[f], n), metric.EuclideanSim(s, n)
		}
		return s, s + tailQ[f]
	}
	simFinal := func(f int, s float64) float64 {
		if features[f].Metric == MetricEuclidean {
			return metric.EuclideanSim(s, features[f].Store.Dims())
		}
		return s
	}
	total := len(order)
	for processed := 0; processed < total; {
		next := processed + opts.Step
		if next > total {
			next = total
		}
		for _, ref := range order[processed:next] {
			col := features[ref.feature].Store.Column(ref.dim)
			qd := features[ref.feature].Query[ref.dim]
			sf := scores[ref.feature]
			if features[ref.feature].Metric == MetricEuclidean {
				for ci, id := range cands {
					diff := col[id] - qd
					sf[ci] += diff * diff
				}
				m := qd
				if 1-qd > m {
					m = 1 - qd
				}
				tailQ[ref.feature] -= m * m
			} else {
				for ci, id := range cands {
					v := col[id]
					if v < qd {
						sf[ci] += v
					} else {
						sf[ci] += qd
					}
				}
				tailQ[ref.feature] -= qd
			}
			stats.ValuesScanned += int64(len(cands))
		}
		processed = next
		if processed >= total || len(cands) <= k {
			continue
		}

		// Global bounds: lower = agg of per-feature partials (tails ≥ 0),
		// upper = agg of partials + per-feature query tail mass.
		lower := make([]float64, len(cands))
		upper := make([]float64, len(cands))
		for ci := range cands {
			for f := 0; f < nf; f++ {
				perFeature[f], scratch2[f] = simBounds(f, scores[f][ci])
			}
			lower[ci] = opts.Agg.Combine(perFeature, weights)
			upper[ci] = opts.Agg.Combine(scratch2, weights)
		}
		kappa := topk.KthLargest(lower, k)
		out := 0
		for ci := range cands {
			if upper[ci] >= kappa {
				cands[out] = cands[ci]
				for f := 0; f < nf; f++ {
					scores[f][out] = scores[f][ci]
				}
				out++
			}
		}
		cands = cands[:out]
		for f := range scores {
			scores[f] = scores[f][:out]
		}
		stats.Steps = append(stats.Steps, StepStat{DimsProcessed: processed, Candidates: out})
	}
	stats.FinalCandidates = len(cands)

	h := topk.NewLargest(k)
	for ci, id := range cands {
		for f := 0; f < nf; f++ {
			perFeature[f] = simFinal(f, scores[f][ci])
		}
		h.Push(id, opts.Agg.Combine(perFeature, weights))
	}
	return Result{Results: h.Results(), Stats: stats}, nil
}

// ExactGlobal computes the exact global similarity of object id — the
// random-access primitive stream merging needs and the reference for tests.
func ExactGlobal(features []Feature, agg Aggregate, id int) float64 {
	scores := make([]float64, len(features))
	weights := make([]float64, len(features))
	for f, feat := range features {
		weights[f] = feat.Weight
		row := feat.Store.Row(id)
		s := 0.0
		if feat.Metric == MetricEuclidean {
			for d, v := range row {
				diff := v - feat.Query[d]
				s += diff * diff
			}
			s = metric.EuclideanSim(s, feat.Store.Dims())
		} else {
			for d, v := range row {
				if v < feat.Query[d] {
					s += v
				} else {
					s += feat.Query[d]
				}
			}
		}
		scores[f] = s
	}
	return agg.Combine(scores, weights)
}

// ExactGlobalBatch computes exact global similarities for many objects at
// once, iterating column-wise per feature so the accesses stay sequential
// within each dimension table.
func ExactGlobalBatch(features []Feature, agg Aggregate, ids []int) []float64 {
	nf := len(features)
	weights := make([]float64, nf)
	perFeature := make([][]float64, nf)
	for f, feat := range features {
		weights[f] = feat.Weight
		acc := make([]float64, len(ids))
		euc := feat.Metric == MetricEuclidean
		for d := 0; d < feat.Store.Dims(); d++ {
			col := feat.Store.Column(d)
			qd := feat.Query[d]
			for i, id := range ids {
				v := col[id]
				if euc {
					diff := v - qd
					acc[i] += diff * diff
				} else if v < qd {
					acc[i] += v
				} else {
					acc[i] += qd
				}
			}
		}
		if euc {
			for i := range acc {
				acc[i] = metric.EuclideanSim(acc[i], feat.Store.Dims())
			}
		}
		perFeature[f] = acc
	}
	out := make([]float64, len(ids))
	scratch := make([]float64, nf)
	for i := range ids {
		for f := 0; f < nf; f++ {
			scratch[f] = perFeature[f][i]
		}
		out[i] = agg.Combine(scratch, weights)
	}
	return out
}

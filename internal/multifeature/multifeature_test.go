package multifeature

import (
	"errors"
	"math"
	"testing"

	"bond/internal/core"
	"bond/internal/dataset"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// twoFeatures builds a pair of normalized clustered feature collections
// over the same objects (Section 8.2's experimental setup, scaled down).
func twoFeatures(n int, seed int64) []Feature {
	c1 := dataset.DefaultClustered(n, 24, 1.0, seed)
	c1.Clusters = 30
	v1 := dataset.Clustered(c1)
	dataset.NormalizeAll(v1)
	c2 := dataset.DefaultClustered(n, 48, 1.0, seed+1)
	c2.Clusters = 30
	v2 := dataset.Clustered(c2)
	dataset.NormalizeAll(v2)
	return []Feature{
		{Store: vstore.FromVectors(v1), Query: append([]float64(nil), v1[0]...), Weight: 0.6},
		{Store: vstore.FromVectors(v2), Query: append([]float64(nil), v2[0]...), Weight: 0.4},
	}
}

// bruteGlobal ranks all objects by exact aggregate score.
func bruteGlobal(features []Feature, agg Aggregate, k int) []topk.Result {
	h := topk.NewLargest(k)
	for id := 0; id < features[0].Store.Len(); id++ {
		h.Push(id, ExactGlobal(features, agg, id))
	}
	return h.Results()
}

func TestAggregateCombine(t *testing.T) {
	scores := []float64{0.2, 0.8}
	weights := []float64{1, 3}
	if got := WeightedAvg.Combine(scores, weights); math.Abs(got-0.65) > 1e-12 {
		t.Errorf("avg = %v, want 0.65", got)
	}
	if got := MinAgg.Combine(scores, weights); got != 0.2 {
		t.Errorf("min = %v", got)
	}
	if got := MaxAgg.Combine(scores, weights); got != 0.8 {
		t.Errorf("max = %v", got)
	}
	if got := WeightedAvg.Combine(scores, []float64{0, 0}); got != 0 {
		t.Errorf("avg with zero weights = %v, want 0", got)
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	features := twoFeatures(400, 3)
	for _, agg := range []Aggregate{WeightedAvg, MinAgg, MaxAgg} {
		res, err := Search(features, Options{K: 10, Agg: agg})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		want := bruteGlobal(features, agg, 10)
		if len(res.Results) != len(want) {
			t.Fatalf("%v: %d results", agg, len(res.Results))
		}
		for i := range want {
			gotR, wantR := res.Results[i], want[i]
			if gotR.ID != wantR.ID && math.Abs(gotR.Score-wantR.Score) > 1e-9 {
				t.Errorf("%v rank %d: id %d (%.6f), want %d (%.6f)",
					agg, i, gotR.ID, gotR.Score, wantR.ID, wantR.Score)
			}
		}
	}
}

func TestSearchSelfQueryWins(t *testing.T) {
	features := twoFeatures(300, 9)
	// Queries are object 0's own vectors: it must rank first for any
	// monotone aggregate.
	for _, agg := range []Aggregate{WeightedAvg, MinAgg} {
		res, err := Search(features, Options{K: 1, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if res.Results[0].ID != 0 {
			t.Errorf("%v: best = %d, want 0", agg, res.Results[0].ID)
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	features := twoFeatures(600, 4)
	res, err := Search(features, Options{K: 10, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	full := int64(600 * (24 + 48))
	if res.Stats.ValuesScanned >= full {
		t.Errorf("synchronized search scanned %d ≥ full %d", res.Stats.ValuesScanned, full)
	}
	if len(res.Stats.Steps) == 0 {
		t.Error("no pruning steps recorded")
	}
}

func TestSearchRespectsDeletes(t *testing.T) {
	features := twoFeatures(100, 7)
	features[0].Store.(*vstore.Store).Delete(0)
	res, err := Search(features, Options{K: 3, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Results {
		if r.ID == 0 {
			t.Error("deleted object returned")
		}
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(nil, Options{K: 1}); !errors.Is(err, ErrNoFeatures) {
		t.Errorf("no features: %v", err)
	}
	f := twoFeatures(50, 1)
	if _, err := Search(f, Options{K: 0}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("K=0: %v", err)
	}
	short := twoFeatures(30, 2)
	mixed := []Feature{f[0], short[1]}
	if _, err := Search(mixed, Options{K: 1}); !errors.Is(err, ErrSizeMismatch) {
		t.Errorf("size mismatch: %v", err)
	}
	bad := []Feature{{Store: f[0].Store, Query: []float64{1}, Weight: 1}}
	if _, err := Search(bad, Options{K: 1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("query dims: %v", err)
	}
}

func TestExactGlobalMatchesManual(t *testing.T) {
	v1 := [][]float64{{0.5, 0.5}, {1, 0}}
	v2 := [][]float64{{0.25, 0.75}, {0, 1}}
	features := []Feature{
		{Store: vstore.FromVectors(v1), Query: []float64{0.5, 0.5}, Weight: 1},
		{Store: vstore.FromVectors(v2), Query: []float64{0.5, 0.5}, Weight: 1},
	}
	// Object 0: feature sims = 1.0 and (0.25+0.5)=0.75; avg = 0.875.
	if got := ExactGlobal(features, WeightedAvg, 0); math.Abs(got-0.875) > 1e-12 {
		t.Errorf("ExactGlobal = %v, want 0.875", got)
	}
	if got := ExactGlobal(features, MinAgg, 0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("ExactGlobal min = %v, want 0.75", got)
	}
}

func TestThreeFeatures(t *testing.T) {
	f2 := twoFeatures(200, 5)
	c3 := dataset.DefaultClustered(200, 12, 0.5, 77)
	c3.Clusters = 10
	v3 := dataset.Clustered(c3)
	dataset.NormalizeAll(v3)
	features := append(f2, Feature{Store: vstore.FromVectors(v3), Query: v3[0], Weight: 1})
	res, err := Search(features, Options{K: 5, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteGlobal(features, WeightedAvg, 5)
	for i := range want {
		if res.Results[i].ID != want[i].ID && math.Abs(res.Results[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("rank %d: id %d, want %d", i, res.Results[i].ID, want[i].ID)
		}
	}
}

func TestExactGlobalBatchMatchesSingle(t *testing.T) {
	features := twoFeatures(80, 21)
	ids := []int{0, 3, 17, 42, 79}
	for _, agg := range []Aggregate{WeightedAvg, MinAgg, MaxAgg} {
		batch := ExactGlobalBatch(features, agg, ids)
		for i, id := range ids {
			single := ExactGlobal(features, agg, id)
			if math.Abs(batch[i]-single) > 1e-12 {
				t.Errorf("%v id %d: batch %v != single %v", agg, id, batch[i], single)
			}
		}
	}
}

// mixedFeatures pairs a histogram component with a Euclidean component
// over the same objects.
func mixedFeatures(n int, seed int64) []Feature {
	c1 := dataset.DefaultClustered(n, 24, 1.0, seed)
	c1.Clusters = 20
	v1 := dataset.Clustered(c1)
	dataset.NormalizeAll(v1) // histogram component must be normalized
	c2 := dataset.DefaultClustered(n, 32, 1.0, seed+1)
	c2.Clusters = 20
	v2 := dataset.Clustered(c2) // Euclidean component stays in the unit box
	return []Feature{
		{Store: vstore.FromVectors(v1), Query: append([]float64(nil), v1[0]...), Weight: 0.5, Metric: MetricHistogram},
		{Store: vstore.FromVectors(v2), Query: append([]float64(nil), v2[0]...), Weight: 0.5, Metric: MetricEuclidean},
	}
}

// TestMixedMetricsMatchBruteForce covers Section 8.2's claim that
// components may use different similarity metrics.
func TestMixedMetricsMatchBruteForce(t *testing.T) {
	features := mixedFeatures(350, 41)
	for _, agg := range []Aggregate{WeightedAvg, MinAgg} {
		res, err := Search(features, Options{K: 8, Agg: agg})
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		want := bruteGlobal(features, agg, 8)
		for i := range want {
			if res.Results[i].ID != want[i].ID && math.Abs(res.Results[i].Score-want[i].Score) > 1e-9 {
				t.Errorf("%v rank %d: id %d (%.6f), want %d (%.6f)",
					agg, i, res.Results[i].ID, res.Results[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

func TestMixedMetricsSelfQueryWins(t *testing.T) {
	features := mixedFeatures(200, 43)
	res, err := Search(features, Options{K: 1, Agg: MinAgg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID != 0 {
		t.Errorf("best = %d, want 0 (exact match on both components)", res.Results[0].ID)
	}
	if math.Abs(res.Results[0].Score-1) > 1e-9 {
		t.Errorf("self score = %v, want 1 on both metrics", res.Results[0].Score)
	}
}

func TestEuclideanOnlyFeaturesMatchBruteForce(t *testing.T) {
	features := mixedFeatures(300, 47)
	features[0].Metric = MetricEuclidean // both components Euclidean now
	res, err := Search(features, Options{K: 5, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteGlobal(features, WeightedAvg, 5)
	for i := range want {
		if res.Results[i].ID != want[i].ID && math.Abs(res.Results[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("rank %d: id %d, want %d", i, res.Results[i].ID, want[i].ID)
		}
	}
}

func TestMixedMetricsBatchMatchesSingle(t *testing.T) {
	features := mixedFeatures(60, 51)
	ids := []int{0, 5, 30, 59}
	batch := ExactGlobalBatch(features, WeightedAvg, ids)
	for i, id := range ids {
		if s := ExactGlobal(features, WeightedAvg, id); math.Abs(batch[i]-s) > 1e-12 {
			t.Errorf("id %d: batch %v != single %v", id, batch[i], s)
		}
	}
}

// TestSegmentedFeaturesMatchFlat is the segmented-storage oracle: the same
// objects served from segment views must produce the identical result set
// as flat stores, for synchronized search and both random-access primitives.
func TestSegmentedFeaturesMatchFlat(t *testing.T) {
	flat := twoFeatures(400, 13)
	seg := twoFeatures(400, 13)
	for f := range seg {
		st := seg[f].Store.(*vstore.Store)
		ss := vstore.NewSegmented(st.Dims(), 90)
		for id := 0; id < st.Len(); id++ {
			ss.Append(st.Row(id))
		}
		segs, bases := ss.Segments(), ss.Bases()
		views := make([]core.SegmentView, len(segs))
		for i := range segs {
			views[i] = core.SegmentView{Src: segs[i], Base: bases[i], DimRange: segs[i].DimRange}
		}
		seg[f].Store = nil
		seg[f].Segments = views
	}
	seg[1].Metric = MetricEuclidean
	flat[1].Metric = MetricEuclidean
	// Deletes must be honored per segment.
	flat[0].Store.(*vstore.Store).Delete(33)
	seg[0].Segments[0].Src.(*vstore.Segment).Delete(33)

	for _, agg := range []Aggregate{WeightedAvg, MinAgg, MaxAgg} {
		want, err := Search(flat, Options{K: 8, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Search(seg, Options{K: 8, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("%v: %d results, want %d", agg, len(got.Results), len(want.Results))
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%v rank %d: {%d %v}, want {%d %v}", agg, i,
					got.Results[i].ID, got.Results[i].Score,
					want.Results[i].ID, want.Results[i].Score)
			}
		}
	}
	ids := []int{5, 399, 90, 89, 180}
	wantB := ExactGlobalBatch(flat, WeightedAvg, ids)
	gotB := ExactGlobalBatch(seg, WeightedAvg, ids)
	for i := range ids {
		if gotB[i] != wantB[i] {
			t.Fatalf("batch id %d: %v, want %v", ids[i], gotB[i], wantB[i])
		}
		if g := ExactGlobal(seg, WeightedAvg, ids[i]); g != wantB[i] {
			t.Fatalf("single id %d: %v, want %v", ids[i], g, wantB[i])
		}
	}
}

package bench

import (
	"fmt"
	"math"

	"bond/internal/core"
	"bond/internal/dataset"
	"bond/internal/quant"
	"bond/internal/stats"
	"bond/internal/vstore"
)

// pruneGrid returns the dimension counts at which BOND attempts pruning:
// step, 2·step, …, up to (but excluding) dims.
func pruneGrid(dims, step int) []int {
	var grid []int
	for m := step; m < dims; m += step {
		grid = append(grid, m)
	}
	return grid
}

// candidateCurve samples the candidate-set size at each grid point from a
// search's step statistics. Before the first recorded step the whole
// collection (n) is a candidate; after the last recorded step the size no
// longer changes.
func candidateCurve(steps []core.StepStat, grid []int, n int) []float64 {
	out := make([]float64, len(grid))
	cur := float64(n)
	si := 0
	for gi, g := range grid {
		for si < len(steps) && steps[si].DimsProcessed <= g {
			cur = float64(steps[si].Candidates)
			si++
		}
		out[gi] = cur
	}
	return out
}

// curveStats aggregates per-query candidate curves into min/mean/max
// envelopes (the paper's best/average/worst pruning efficiency).
func curveStats(curves [][]float64) (lo, mean, hi []float64) {
	if len(curves) == 0 {
		return nil, nil, nil
	}
	m := len(curves[0])
	lo = make([]float64, m)
	mean = make([]float64, m)
	hi = make([]float64, m)
	for j := 0; j < m; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
		for _, c := range curves {
			lo[j] = math.Min(lo[j], c[j])
			hi[j] = math.Max(hi[j], c[j])
			mean[j] += c[j]
		}
		mean[j] /= float64(len(curves))
	}
	return lo, mean, hi
}

func gridX(grid []int) []float64 {
	x := make([]float64, len(grid))
	for i, g := range grid {
		x[i] = float64(g)
	}
	return x
}

// corelWorkload builds the Corel-like collection, its decomposed store,
// and the query sample for the Section 7.1–7.4 experiments.
func corelWorkload(cfg Config) ([][]float64, *vstore.Store, [][]float64) {
	vectors := dataset.CorelLike(cfg.N, cfg.Dims, cfg.Seed)
	store := vstore.FromVectors(vectors)
	queries, _ := dataset.SampleQueries(vectors, cfg.Queries, cfg.Seed+1)
	return vectors, store, queries
}

// Fig2DatasetStats regenerates Figure 2: the mean value per bin (top
// panel) and the mean descending-sorted value profile (bottom panel) of
// the histogram collection.
func Fig2DatasetStats(cfg Config) Figure {
	vectors := dataset.CorelLike(cfg.N, cfg.Dims, cfg.Seed)
	means := stats.MeanPerDimension(vectors)
	profile := stats.MeanSortedProfile(vectors)
	x := make([]float64, cfg.Dims)
	for i := range x {
		x[i] = float64(i)
	}
	return Figure{
		ID:     "Figure 2",
		Title:  "Statistics of the histogram dataset",
		XLabel: "bin / rank",
		YLabel: "mean value",
		Series: []Series{
			{Label: "mean value per bin", X: x, Y: means},
			{Label: "mean sorted profile", X: x, Y: profile},
		},
	}
}

// runCurves executes the query workload under the given options and
// returns the min/mean/max candidate envelopes on the pruning grid.
func runCurves(store *vstore.Store, queries [][]float64, opts core.Options, grid []int) (lo, mean, hi []float64) {
	curves := make([][]float64, 0, len(queries))
	for _, q := range queries {
		res, err := core.Search(store, q, opts)
		if err != nil {
			panic(fmt.Sprintf("bench: search failed: %v", err))
		}
		curves = append(curves, candidateCurve(res.Stats.Steps, grid, store.Live()))
	}
	return curveStats(curves)
}

// Fig4PruningHqHh regenerates Figure 4: best/average/worst candidate-set
// size of criteria Hq and Hh against dimensions processed.
func Fig4PruningHqHh(cfg Config) Figure {
	_, store, queries := corelWorkload(cfg)
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 4",
		Title:  "Pruning effects of Hq and Hh",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, crit := range []core.Criterion{core.Hq, core.Hh} {
		lo, mean, hi := runCurves(store, queries, core.Options{K: cfg.K, Criterion: crit, Step: cfg.Step}, grid)
		fig.Series = append(fig.Series,
			Series{Label: crit.String() + " best", X: x, Y: lo},
			Series{Label: crit.String() + " avg", X: x, Y: mean},
			Series{Label: crit.String() + " worst", X: x, Y: hi},
		)
	}
	return fig
}

// Fig5PruningEqEv regenerates Figure 5: average candidate-set size of Eq
// (with the stricter normalized-data bound, as in the paper) and Ev.
func Fig5PruningEqEv(cfg Config) Figure {
	_, store, queries := corelWorkload(cfg)
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 5",
		Title:  "Pruning effects of Eq and Ev (Euclidean distance)",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, crit := range []core.Criterion{core.Eq, core.Ev} {
		lo, mean, hi := runCurves(store, queries,
			core.Options{K: cfg.K, Criterion: crit, Step: cfg.Step, NormalizedData: true}, grid)
		fig.Series = append(fig.Series,
			Series{Label: crit.String() + " best", X: x, Y: lo},
			Series{Label: crit.String() + " avg", X: x, Y: mean},
			Series{Label: crit.String() + " worst", X: x, Y: hi},
		)
	}
	return fig
}

// Fig6EffectOfK regenerates Figure 6: average Hq pruning for k ∈
// {1, 10, 100, 1000} (clamped to the collection size).
func Fig6EffectOfK(cfg Config) Figure {
	_, store, queries := corelWorkload(cfg)
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 6",
		Title:  "Effect of k on pruning (Hq)",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, k := range []int{1, 10, 100, 1000} {
		if k > cfg.N {
			continue
		}
		_, mean, _ := runCurves(store, queries, core.Options{K: k, Criterion: core.Hq, Step: cfg.Step}, grid)
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("k=%d", k), X: x, Y: mean})
	}
	return fig
}

// Fig7Orderings regenerates Figure 7: average Hq pruning for the three
// dimension orderings — decreasing query value, random, increasing.
func Fig7Orderings(cfg Config) Figure {
	_, store, queries := corelWorkload(cfg)
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 7",
		Title:  "Effects of dimensional orderings (Hq)",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, ord := range []core.Order{core.OrderQueryDesc, core.OrderRandom, core.OrderQueryAsc} {
		_, mean, _ := runCurves(store, queries,
			core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step, Order: ord, Seed: cfg.Seed}, grid)
		fig.Series = append(fig.Series, Series{Label: ord.String(), X: x, Y: mean})
	}
	return fig
}

// Fig8Dimensionality regenerates Figure 8: average Ev pruning across
// dimensionalities 26, 52, 166 and 260 (scaled proportionally to
// cfg.Dims when it differs from the paper's 166), with the x axis as the
// percentage of dimensions processed and the y axis as the candidate
// fraction, so the curves are comparable across dimensionalities.
func Fig8Dimensionality(cfg Config) Figure {
	ratios := []float64{26.0 / 166, 52.0 / 166, 1, 260.0 / 166}
	fig := Figure{
		ID:     "Figure 8",
		Title:  "Impact of dimensionality (Ev)",
		XLabel: "% dims",
		YLabel: "candidate fraction",
	}
	const points = 10
	for _, r := range ratios {
		dims := int(math.Round(r * float64(cfg.Dims)))
		if dims < 2*cfg.Step {
			dims = 2 * cfg.Step
		}
		sub := cfg
		sub.Dims = dims
		_, store, queries := corelWorkload(sub)
		grid := pruneGrid(dims, cfg.Step)
		_, mean, _ := runCurves(store, queries,
			core.Options{K: cfg.K, Criterion: core.Ev, Step: cfg.Step, NormalizedData: true}, grid)
		// Resample onto a common percentage grid.
		x := make([]float64, points)
		y := make([]float64, points)
		for i := 0; i < points; i++ {
			pct := float64(i+1) / points
			x[i] = pct * 100
			gi := int(pct*float64(len(grid))) - 1
			if gi < 0 {
				gi = 0
			}
			if gi >= len(mean) {
				gi = len(mean) - 1
			}
			y[i] = mean[gi] / float64(cfg.N)
		}
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("%d dims", dims), X: x, Y: y})
	}
	return fig
}

// Fig9Compression regenerates Figure 9: average Hq pruning on the exact
// fragments versus on the 8-bit compressed fragments.
func Fig9Compression(cfg Config) Figure {
	_, store, queries := corelWorkload(cfg)
	qs := store.Quantize(quant.NewUnit())
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)

	_, exact, _ := runCurves(store, queries, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step}, grid)

	curves := make([][]float64, 0, len(queries))
	for _, q := range queries {
		ids, st, err := core.FilterCompressed(store, qs, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step})
		if err != nil {
			panic(fmt.Sprintf("bench: compressed filter failed: %v", err))
		}
		_ = ids
		curves = append(curves, candidateCurve(st.Steps, grid, store.Live()))
	}
	_, comp, _ := curveStats(curves)

	return Figure{
		ID:     "Figure 9",
		Title:  "Pruning on exact vs 8-bit compressed fragments (Hq)",
		XLabel: "dims",
		YLabel: "candidates",
		Series: []Series{
			{Label: "exact", X: x, Y: exact},
			{Label: "compressed", X: x, Y: comp},
		},
	}
}

// Fig10DataSkew regenerates Figure 10: average Ev pruning on synthetic
// clustered data for skew parameter θ ∈ {0, 0.5, 1, 2}.
func Fig10DataSkew(cfg Config) Figure {
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 10",
		Title:  "Effects of skew on the data (Ev)",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, theta := range []float64{0, 0.5, 1, 2} {
		vectors := dataset.Clustered(dataset.DefaultClustered(cfg.N, cfg.Dims, theta, cfg.Seed))
		store := vstore.FromVectors(vectors)
		queries, _ := dataset.SampleQueries(vectors, cfg.Queries, cfg.Seed+1)
		_, mean, _ := runCurves(store, queries, core.Options{K: cfg.K, Criterion: core.Ev, Step: cfg.Step}, grid)
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("theta=%.1f", theta), X: x, Y: mean})
	}
	return fig
}

// Fig11WeightSkew regenerates Figure 11: average weighted-Ev pruning on
// the uniform (θ = 0) clustered data under increasingly skewed weights.
func Fig11WeightSkew(cfg Config) Figure {
	vectors := dataset.Clustered(dataset.DefaultClustered(cfg.N, cfg.Dims, 0, cfg.Seed))
	store := vstore.FromVectors(vectors)
	queries, _ := dataset.SampleQueries(vectors, cfg.Queries, cfg.Seed+1)
	grid := pruneGrid(cfg.Dims, cfg.Step)
	x := gridX(grid)
	fig := Figure{
		ID:     "Figure 11",
		Title:  "Effects of skew on the weights (weighted Ev, theta=0 data)",
		XLabel: "dims",
		YLabel: "candidates",
	}
	for _, wTheta := range []float64{0, 1, 2, 3} {
		w := dataset.WeightsZipf(cfg.Dims, wTheta, cfg.Seed+2)
		_, mean, _ := runCurves(store, queries,
			core.Options{K: cfg.K, Criterion: core.Ev, Step: cfg.Step, Weights: w}, grid)
		fig.Series = append(fig.Series, Series{Label: fmt.Sprintf("wskew=%.1f", wTheta), X: x, Y: mean})
	}
	return fig
}

package bench

import (
	"fmt"
	"time"

	"bond/internal/core"
	"bond/internal/seqscan"
	"bond/internal/stats"
)

// AblationStepM sweeps the pruning granularity m (Section 5.2): small m
// prunes sooner but pays more kfetch/compaction overhead, large m scans
// more values before the first reduction.
func AblationStepM(cfg Config) Table {
	_, store, queries := corelWorkload(cfg)
	t := Table{
		ID:     "Ablation m",
		Title:  "Choice of pruning step m (Hq); times in msec",
		Header: []string{"m", "avg ms", "avg values scanned"},
	}
	for _, m := range []int{2, 4, 8, 16, 32, 64} {
		if m >= cfg.Dims {
			continue
		}
		var times []time.Duration
		var scanned float64
		for _, q := range queries {
			var res core.Result
			times = append(times, timeIt(func() {
				var err error
				res, err = core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: m})
				if err != nil {
					panic(err)
				}
			}))
			scanned += float64(res.Stats.ValuesScanned)
		}
		s := stats.SummarizeDurations(times)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.0f", scanned/float64(len(queries))),
		})
	}
	return t
}

// AblationBitmapSwitch sweeps the MIL engine's bitmap→positional-join
// switch-over point (Section 6.1).
func AblationBitmapSwitch(cfg Config) Table {
	_, store, queries := corelWorkload(cfg)
	t := Table{
		ID:     "Ablation bitmap",
		Title:  "MIL engine: bitmap vs positional-join switch point; times in msec",
		Header: []string{"switch fraction", "avg ms"},
	}
	for _, sw := range []float64{1e-9, 0.01, 0.05, 0.2, 1} {
		var times []time.Duration
		for _, q := range queries {
			times = append(times, timeIt(func() {
				if _, err := core.SearchMIL(store, q, core.MILOptions{K: cfg.K, Step: cfg.Step, BitmapSwitch: sw}); err != nil {
					panic(err)
				}
			}))
		}
		s := stats.SummarizeDurations(times)
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%.2g", sw), fmt.Sprintf("%.2f", s.Mean)})
	}
	return t
}

// AblationAbandonScan reproduces the paper's footnote 6: the
// partial-abandon sequential scan against the plain scan and BOND.
func AblationAbandonScan(cfg Config) Table {
	vectors, store, queries := corelWorkload(cfg)
	t := Table{
		ID:     "Ablation abandon",
		Title:  "Partial-abandon sequential scan (footnote 6); times in msec",
		Header: []string{"method", "avg ms", "avg values scanned"},
	}
	type method struct {
		name string
		run  func(q []float64) int64
	}
	methods := []method{
		{"SSH", func(q []float64) int64 {
			_, st := seqscan.SearchHistogram(vectors, q, cfg.K)
			return st.ValuesScanned
		}},
		{"SSH abandon/8", func(q []float64) int64 {
			_, st := seqscan.SearchHistogramAbandon(vectors, q, cfg.K, 8)
			return st.ValuesScanned
		}},
		{"SSH abandon/32", func(q []float64) int64 {
			_, st := seqscan.SearchHistogramAbandon(vectors, q, cfg.K, 32)
			return st.ValuesScanned
		}},
		{"BOND Hq", func(q []float64) int64 {
			res, err := core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step})
			if err != nil {
				panic(err)
			}
			return res.Stats.ValuesScanned
		}},
	}
	for _, m := range methods {
		var times []time.Duration
		var scanned float64
		for _, q := range queries {
			q := q
			var vals int64
			times = append(times, timeIt(func() { vals = m.run(q) }))
			scanned += float64(vals)
		}
		s := stats.SummarizeDurations(times)
		t.Rows = append(t.Rows, []string{
			m.name,
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.0f", scanned/float64(len(queries))),
		})
	}
	return t
}

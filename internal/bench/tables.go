package bench

import (
	"fmt"
	"time"

	"bond/internal/core"
	"bond/internal/dataset"
	"bond/internal/multifeature"
	"bond/internal/quant"
	"bond/internal/seqscan"
	"bond/internal/stats"
	"bond/internal/streammerge"
	"bond/internal/topk"
	"bond/internal/vafile"
	"bond/internal/vstore"
)

func summaryRow(name string, s stats.Summary) []string {
	return []string{
		name,
		fmt.Sprintf("%.2f", s.Min),
		fmt.Sprintf("%.2f", s.Max),
		fmt.Sprintf("%.2f", s.Mean),
		fmt.Sprintf("%.2f", s.Median),
	}
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Table3ResponseTimes regenerates Table 3: response-time statistics (in
// milliseconds) of BOND with Hq, Hh and Ev against the sequential scans
// SSH and SSE, over the query workload.
func Table3ResponseTimes(cfg Config) Table {
	vectors, store, queries := corelWorkload(cfg)

	methods := []struct {
		name string
		run  func(q []float64)
	}{
		{"Hq", func(q []float64) {
			if _, err := core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step}); err != nil {
				panic(err)
			}
		}},
		{"Hh", func(q []float64) {
			if _, err := core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Hh, Step: cfg.Step}); err != nil {
				panic(err)
			}
		}},
		{"SSH", func(q []float64) { seqscan.SearchHistogram(vectors, q, cfg.K) }},
		{"Ev", func(q []float64) {
			if _, err := core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Ev, Step: cfg.Step}); err != nil {
				panic(err)
			}
		}},
		{"SSE", func(q []float64) { seqscan.SearchEuclidean(vectors, q, cfg.K) }},
	}

	t := Table{
		ID:     "Table 3",
		Title:  "BOND vs. sequential scan; times in msec",
		Header: []string{"method", "min", "max", "avg", "median"},
	}
	for _, m := range methods {
		times := make([]time.Duration, 0, len(queries))
		for _, q := range queries {
			q := q
			times = append(times, timeIt(func() { m.run(q) }))
		}
		t.Rows = append(t.Rows, summaryRow(m.name, stats.SummarizeDurations(times)))
	}
	return t
}

// Table4Approximations regenerates Table 4: the filter step of BOND on
// compressed fragments (Hq on 8-bit codes) against a sequential scan of
// the equivalent VA-File, plus the shared refinement step. Both filters
// read identical 8-bit information, so the candidate sets are essentially
// the same; the difference is pruned work.
func Table4Approximations(cfg Config) Table {
	vectors, store, queries := corelWorkload(cfg)
	qz := quant.NewUnit()
	qs := store.Quantize(qz)
	va := vafile.BuildFromStore(store, qz)

	var bondFilter, vaFilter, refine []time.Duration
	var bondCands, vaCands []float64

	for _, q := range queries {
		var ids []int
		bondFilter = append(bondFilter, timeIt(func() {
			var err error
			ids, _, err = core.FilterCompressed(store, qs, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step})
			if err != nil {
				panic(err)
			}
		}))
		bondCands = append(bondCands, float64(len(ids)))

		var vaIDs []int
		vaFilter = append(vaFilter, timeIt(func() {
			vaIDs, _, _ = va.FilterHistogram(q, cfg.K)
		}))
		vaCands = append(vaCands, float64(len(vaIDs)))

		// Refinement: exact scoring of the BOND candidate set.
		refine = append(refine, timeIt(func() {
			h := topk.NewLargest(cfg.K)
			for _, id := range ids {
				v := vectors[id]
				s := 0.0
				for d, x := range v {
					if x < q[d] {
						s += x
					} else {
						s += q[d]
					}
				}
				h.Push(id, s)
			}
			_ = h.Results()
		}))
	}

	t := Table{
		ID:     "Table 4",
		Title:  "Approximations: compressed BOND filter vs VA-File scan; times in msec",
		Header: []string{"step", "min", "max", "avg", "median"},
	}
	t.Rows = append(t.Rows, summaryRow("filter Hq^c", stats.SummarizeDurations(bondFilter)))
	t.Rows = append(t.Rows, summaryRow("filter SSVA", stats.SummarizeDurations(vaFilter)))
	t.Rows = append(t.Rows, summaryRow("refinement", stats.SummarizeDurations(refine)))
	t.Rows = append(t.Rows, summaryRow("candidates Hq^c", stats.Summarize(bondCands)))
	t.Rows = append(t.Rows, summaryRow("candidates SSVA", stats.Summarize(vaCands)))
	return t
}

// multiFeatureWorkload builds the Section 8.2 setup: two clustered,
// normalized feature collections (dimensionality d and 2d) over the same
// objects, with queries taken from the data.
func multiFeatureWorkload(cfg Config) ([]multifeature.Feature, []int) {
	d1 := cfg.Dims / 2
	if d1 < 8 {
		d1 = 8
	}
	d2 := cfg.Dims
	c1 := dataset.DefaultClustered(cfg.N, d1, 1.0, cfg.Seed)
	v1 := dataset.Clustered(c1)
	dataset.NormalizeAll(v1)
	c2 := dataset.DefaultClustered(cfg.N, d2, 1.0, cfg.Seed+1)
	v2 := dataset.Clustered(c2)
	dataset.NormalizeAll(v2)
	features := []multifeature.Feature{
		{Store: vstore.FromVectors(v1), Weight: 1},
		{Store: vstore.FromVectors(v2), Weight: 1},
	}
	_, idx := dataset.SampleQueries(v1, cfg.Queries, cfg.Seed+2)
	return features, idx
}

// MultiFeatureComparison regenerates the Section 8.2 experiment:
// synchronized BOND versus stream merging with the optimal per-stream k′,
// for the average and min aggregates. The paper reports synchronized
// search 20 % faster for avg and 70 % faster for min.
func MultiFeatureComparison(cfg Config) Table {
	features, queryIDs := multiFeatureWorkload(cfg)

	t := Table{
		ID:     "Sec. 8.2",
		Title:  "Synchronized multi-feature BOND vs stream merging (optimal k'); times in msec",
		Header: []string{"aggregate", "sync avg ms", "merge avg ms", "speedup %"},
	}
	for _, agg := range []multifeature.Aggregate{multifeature.WeightedAvg, multifeature.MinAgg} {
		var syncTimes, mergeTimes []time.Duration
		for _, qid := range queryIDs {
			for f := range features {
				features[f].Query = features[f].Store.(*vstore.Store).Row(qid)
			}
			syncTimes = append(syncTimes, timeIt(func() {
				if _, err := multifeature.Search(features, multifeature.Options{K: cfg.K, Agg: agg, Step: cfg.Step}); err != nil {
					panic(err)
				}
			}))
			mergeTimes = append(mergeTimes, timeIt(func() {
				if _, err := streammerge.SearchOptimal(features, cfg.K, agg); err != nil {
					panic(err)
				}
			}))
		}
		sSync := stats.SummarizeDurations(syncTimes)
		sMerge := stats.SummarizeDurations(mergeTimes)
		speedup := 0.0
		if sSync.Mean > 0 {
			speedup = (sMerge.Mean - sSync.Mean) / sSync.Mean * 100
		}
		t.Rows = append(t.Rows, []string{
			agg.String(),
			fmt.Sprintf("%.2f", sSync.Mean),
			fmt.Sprintf("%.2f", sMerge.Mean),
			fmt.Sprintf("%.0f", speedup),
		})
	}
	return t
}

package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"bond/internal/core"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{N: 600, Dims: 32, Queries: 4, K: 5, Step: 8, Seed: 7}
}

func TestPruneGrid(t *testing.T) {
	grid := pruneGrid(32, 8)
	want := []int{8, 16, 24}
	if len(grid) != len(want) {
		t.Fatalf("grid = %v", grid)
	}
	for i := range want {
		if grid[i] != want[i] {
			t.Errorf("grid[%d] = %d, want %d", i, grid[i], want[i])
		}
	}
	if g := pruneGrid(8, 8); len(g) != 0 {
		t.Errorf("grid covering all dims should be empty, got %v", g)
	}
}

func TestCandidateCurve(t *testing.T) {
	steps := []core.StepStat{
		{DimsProcessed: 8, Candidates: 100},
		{DimsProcessed: 16, Candidates: 20},
	}
	grid := []int{8, 16, 24}
	got := candidateCurve(steps, grid, 500)
	want := []float64{100, 20, 20} // padded after last step
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("curve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// No steps at all: the whole collection remains.
	got = candidateCurve(nil, grid, 500)
	for i := range got {
		if got[i] != 500 {
			t.Errorf("empty curve[%d] = %v", i, got[i])
		}
	}
}

func TestCurveStats(t *testing.T) {
	lo, mean, hi := curveStats([][]float64{{1, 10}, {3, 20}})
	if lo[0] != 1 || hi[0] != 3 || mean[0] != 2 {
		t.Errorf("stats at 0: %v %v %v", lo[0], mean[0], hi[0])
	}
	if lo[1] != 10 || hi[1] != 20 || mean[1] != 15 {
		t.Errorf("stats at 1: %v %v %v", lo[1], mean[1], hi[1])
	}
}

func findSeries(t *testing.T, f Figure, label string) Series {
	t.Helper()
	for _, s := range f.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("%s: series %q not found (have %v)", f.ID, label, seriesLabels(f))
	return Series{}
}

func seriesLabels(f Figure) []string {
	out := make([]string, len(f.Series))
	for i, s := range f.Series {
		out[i] = s.Label
	}
	return out
}

func last(xs []float64) float64 { return xs[len(xs)-1] }

func TestFig2Shapes(t *testing.T) {
	f := Fig2DatasetStats(tiny())
	prof := findSeries(t, f, "mean sorted profile")
	// Zipfian decay: first rank dominates, tail near zero.
	if prof.Y[0] < 5*prof.Y[10] {
		t.Errorf("profile not Zipfian: %v vs %v", prof.Y[0], prof.Y[10])
	}
}

func TestFig4Shapes(t *testing.T) {
	f := Fig4PruningHqHh(tiny())
	cfg := tiny()
	hqAvg := findSeries(t, f, "Hq avg")
	hhAvg := findSeries(t, f, "Hh avg")
	// Strong pruning by the end.
	if last(hqAvg.Y) > 0.1*float64(cfg.N) {
		t.Errorf("Hq avg final candidates %v too high", last(hqAvg.Y))
	}
	// Hh dominates Hq at every step.
	for i := range hqAvg.Y {
		if hhAvg.Y[i] > hqAvg.Y[i]+1e-9 {
			t.Errorf("Hh avg %v > Hq avg %v at step %d", hhAvg.Y[i], hqAvg.Y[i], i)
		}
	}
	// best ≤ avg ≤ worst.
	best := findSeries(t, f, "Hq best")
	worst := findSeries(t, f, "Hq worst")
	for i := range hqAvg.Y {
		if best.Y[i] > hqAvg.Y[i] || hqAvg.Y[i] > worst.Y[i] {
			t.Errorf("envelope violated at %d", i)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	f := Fig5PruningEqEv(tiny())
	eq := findSeries(t, f, "Eq avg")
	ev := findSeries(t, f, "Ev avg")
	// The paper: Eq prunes hardly anything, Ev prunes well.
	if last(ev.Y) >= last(eq.Y) {
		t.Errorf("Ev final %v should beat Eq final %v", last(ev.Y), last(eq.Y))
	}
}

func TestFig6Shapes(t *testing.T) {
	f := Fig6EffectOfK(tiny())
	k1 := findSeries(t, f, "k=1")
	k100 := findSeries(t, f, "k=100")
	// Larger k retains at least as many candidates.
	for i := range k1.Y {
		if k1.Y[i] > k100.Y[i]+1e-9 {
			t.Errorf("k=1 kept more than k=100 at %d", i)
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	f := Fig7Orderings(tiny())
	desc := findSeries(t, f, "desc")
	asc := findSeries(t, f, "asc")
	// Descending order must prune far better than ascending by the end.
	if last(desc.Y) >= last(asc.Y) {
		t.Errorf("desc final %v should beat asc final %v", last(desc.Y), last(asc.Y))
	}
}

func TestFig8Shapes(t *testing.T) {
	f := Fig8Dimensionality(tiny())
	if len(f.Series) != 4 {
		t.Fatalf("want 4 dimensionalities, got %v", seriesLabels(f))
	}
	for _, s := range f.Series {
		if last(s.Y) > 0.5 {
			t.Errorf("%s: final candidate fraction %v too high", s.Label, last(s.Y))
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	f := Fig9Compression(tiny())
	exact := findSeries(t, f, "exact")
	comp := findSeries(t, f, "compressed")
	// Compressed pruning follows the exact trend: both shrink hard, and
	// compressed is never better than exact (its bounds are looser).
	if last(comp.Y) < last(exact.Y)-1e-9 {
		t.Errorf("compressed final %v below exact %v", last(comp.Y), last(exact.Y))
	}
	cfg := tiny()
	if last(comp.Y) > 0.5*float64(cfg.N) {
		t.Errorf("compressed pruning too weak: %v", last(comp.Y))
	}
}

func TestFig10Shapes(t *testing.T) {
	f := Fig10DataSkew(tiny())
	t0 := findSeries(t, f, "theta=0.0")
	t2 := findSeries(t, f, "theta=2.0")
	// Skew favors pruning: θ=2 must end with fewer candidates than θ=0.
	if last(t2.Y) >= last(t0.Y) {
		t.Errorf("theta=2 final %v not below theta=0 final %v", last(t2.Y), last(t0.Y))
	}
}

func TestFig11Shapes(t *testing.T) {
	f := Fig11WeightSkew(tiny())
	w0 := findSeries(t, f, "wskew=0.0")
	w3 := findSeries(t, f, "wskew=3.0")
	// Heavy weight skew enables pruning on otherwise hostile uniform data.
	if last(w3.Y) >= last(w0.Y) {
		t.Errorf("wskew=3 final %v not below wskew=0 final %v", last(w3.Y), last(w0.Y))
	}
}

func TestTable3ShapeAndRender(t *testing.T) {
	tab := Table3ResponseTimes(tiny())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	avg := func(name string) float64 {
		for _, r := range tab.Rows {
			if r[0] == name {
				v, err := strconv.ParseFloat(r[3], 64)
				if err != nil {
					t.Fatalf("bad avg cell %q", r[3])
				}
				return v
			}
		}
		t.Fatalf("row %s missing", name)
		return 0
	}
	_ = avg("Hq")
	_ = avg("SSH")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 3") {
		t.Error("render missing title")
	}
}

func TestTable4Shape(t *testing.T) {
	tab := Table4Approximations(tiny())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	if tab.Rows[0][0] != "filter Hq^c" || tab.Rows[1][0] != "filter SSVA" {
		t.Errorf("unexpected row order: %v", tab.Rows)
	}
}

func TestMultiFeatureComparisonShape(t *testing.T) {
	cfg := tiny()
	cfg.N = 300
	cfg.Queries = 2
	tab := MultiFeatureComparison(cfg)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][0] != "avg" || tab.Rows[1][0] != "min" {
		t.Errorf("aggregates: %v", tab.Rows)
	}
}

func TestAblationsRun(t *testing.T) {
	cfg := tiny()
	cfg.Queries = 2
	if tab := AblationStepM(cfg); len(tab.Rows) == 0 {
		t.Error("AblationStepM empty")
	}
	if tab := AblationBitmapSwitch(cfg); len(tab.Rows) != 5 {
		t.Error("AblationBitmapSwitch rows")
	}
	if tab := AblationAbandonScan(cfg); len(tab.Rows) != 4 {
		t.Error("AblationAbandonScan rows")
	}
}

func TestFigureRender(t *testing.T) {
	f := Fig2DatasetStats(tiny())
	var buf bytes.Buffer
	if err := f.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 2") || !strings.Contains(out, "mean value per bin") {
		t.Errorf("render output incomplete:\n%s", out[:min(200, len(out))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUsefulnessValidationShape(t *testing.T) {
	tab := UsefulnessValidation(tiny())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Usefulness must rise with concentration, scanned fraction must fall
	// from the first to the last bucket.
	firstU, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	lastU, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][1], 64)
	if lastU <= firstU {
		t.Errorf("usefulness not increasing: %v .. %v", firstU, lastU)
	}
	firstS, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	lastS, _ := strconv.ParseFloat(tab.Rows[len(tab.Rows)-1][2], 64)
	if lastS >= firstS {
		t.Errorf("scanned %% not decreasing: %v .. %v", firstS, lastS)
	}
}

func TestClusteringComparisonShape(t *testing.T) {
	cfg := tiny()
	cfg.N = 400
	tab := ClusteringComparison(cfg)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Identical inertia (exactness), fewer values scanned when pruned.
	if tab.Rows[0][3] != tab.Rows[1][3] {
		t.Errorf("inertia differs: %v vs %v", tab.Rows[0][3], tab.Rows[1][3])
	}
	pruned, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	naive, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if pruned >= naive {
		t.Errorf("pruned scanned %v >= naive %v", pruned, naive)
	}
}

func TestAblationAdaptiveStepShape(t *testing.T) {
	cfg := tiny()
	cfg.Queries = 2
	tab := AblationAdaptiveStep(cfg)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	fixed, _ := strconv.ParseFloat(tab.Rows[0][2], 64)
	adaptive, _ := strconv.ParseFloat(tab.Rows[1][2], 64)
	if adaptive > fixed {
		t.Errorf("adaptive made more prune attempts (%v) than fixed (%v)", adaptive, fixed)
	}
}

// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Sections 7 and 8), each regenerating the same
// rows or series the paper reports, at a configurable scale.
//
// The runners are shared by cmd/bondbench (human-readable output, paper
// scale with -full) and by the root package's testing.B benchmarks
// (scaled-down defaults). Absolute milliseconds differ from the paper's
// 2002 testbed; EXPERIMENTS.md records the shape comparison — who wins, by
// what factor, where curves bend — which is the reproduction target.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Config sets the scale of an experiment.
type Config struct {
	// N is the collection size (paper: 59,619 for Corel, 100,000 synthetic).
	N int
	// Dims is the dimensionality (paper: 166 for Corel, 128 synthetic).
	Dims int
	// Queries is the query-workload size (paper: 100).
	Queries int
	// K is the number of neighbors (paper default: 10).
	K int
	// Step is BOND's pruning granularity m (paper: 8).
	Step int
	// Seed makes every generated workload reproducible.
	Seed int64
}

// Default is the scaled-down configuration used by the Go benchmarks:
// small enough for quick runs, large enough to show the paper's shapes.
func Default() Config {
	return Config{N: 4000, Dims: 64, Queries: 10, K: 10, Step: 8, Seed: 42}
}

// Paper is the full configuration of the paper's Section 7 experiments.
func Paper() Config {
	return Config{N: 59619, Dims: 166, Queries: 100, K: 10, Step: 8, Seed: 42}
}

// Series is one labelled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a regenerated paper figure: labelled curves over a shared
// domain.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is a regenerated paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Render writes the figure as aligned columns: the union of x values, one
// column per series.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "   x = %s, y = %s\n", f.XLabel, f.YLabel); err != nil {
		return err
	}
	// Collect the x grid from the first series (all runners share grids
	// within one figure; series with different grids are printed separately).
	groups := groupByGrid(f.Series)
	for _, g := range groups {
		header := make([]string, 0, len(g)+1)
		header = append(header, f.XLabel)
		for _, s := range g {
			header = append(header, s.Label)
		}
		rows := make([][]string, len(g[0].X))
		for i := range g[0].X {
			row := make([]string, 0, len(g)+1)
			row = append(row, trimFloat(g[0].X[i]))
			for _, s := range g {
				row = append(row, trimFloat(s.Y[i]))
			}
			rows[i] = row
		}
		if err := renderColumns(w, header, rows); err != nil {
			return err
		}
	}
	return nil
}

// groupByGrid partitions series into groups sharing an identical x grid.
func groupByGrid(series []Series) [][]Series {
	var groups [][]Series
outer:
	for _, s := range series {
		for gi, g := range groups {
			if sameGrid(g[0].X, s.X) {
				groups[gi] = append(groups[gi], s)
				continue outer
			}
		}
		groups = append(groups, []Series{s})
	}
	return groups
}

func sameGrid(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	return renderColumns(w, t.Header, t.Rows)
}

func renderColumns(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], cell)
		}
		return "  " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	for _, row := range rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(x float64) string {
	s := fmt.Sprintf("%.4f", x)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

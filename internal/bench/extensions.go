package bench

import (
	"fmt"
	"time"

	"bond/internal/cluster"
	"bond/internal/core"
	"bond/internal/dataset"
	"bond/internal/stats"
	"bond/internal/vstore"
)

// UsefulnessValidation regenerates the Section 9 query-quality proposal as
// an experiment: it buckets queries by their usefulness score and reports
// the average fraction of values BOND actually scanned per bucket. A valid
// measure produces monotonically decreasing work as usefulness rises.
func UsefulnessValidation(cfg Config) Table {
	_, store, _ := corelWorkload(cfg)
	full := float64(store.Live() * store.Dims())

	// Query family sweeping from uniform (hostile) to point-mass (useful):
	// mass 1−α spread evenly, mass α on a handful of dimensions.
	t := Table{
		ID:     "Sec. 9 usefulness",
		Title:  "Query usefulness vs. fraction of data scanned (Hq)",
		Header: []string{"concentration", "usefulness", "scanned %"},
	}
	for _, alpha := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
		q := make([]float64, cfg.Dims)
		for i := range q {
			q[i] = (1 - alpha) / float64(cfg.Dims)
		}
		heavy := 4
		for i := 0; i < heavy; i++ {
			q[i*7%cfg.Dims] += alpha / float64(heavy)
		}
		u := core.Usefulness(q, nil, core.Hq)
		res, err := core.Search(store, q, core.Options{K: cfg.K, Criterion: core.Hq, Step: cfg.Step})
		if err != nil {
			panic(fmt.Sprintf("bench: usefulness search failed: %v", err))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", alpha),
			fmt.Sprintf("%.3f", u),
			fmt.Sprintf("%.1f", 100*float64(res.Stats.ValuesScanned)/full),
		})
	}
	return t
}

// ClusteringComparison measures exact k-means with BOND-style pruned
// assignment against the naive decomposed assignment — the Section 9
// future-work direction.
func ClusteringComparison(cfg Config) Table {
	vectors := dataset.Clustered(dataset.DefaultClustered(cfg.N, cfg.Dims, 0.8, cfg.Seed))
	store := vstore.FromVectors(vectors)

	t := Table{
		ID:     "Sec. 9 clustering",
		Title:  "Exact k-means on decomposed data: pruned vs naive assignment",
		Header: []string{"variant", "ms", "values scanned", "inertia"},
	}
	for _, variant := range []struct {
		name    string
		noPrune bool
	}{{"pruned", false}, {"naive", true}} {
		var res cluster.Result
		elapsed := timeIt(func() {
			var err error
			res, err = cluster.KMeans(store, cluster.Options{
				K: 16, Seed: cfg.Seed, MaxIters: 5, NoPrune: variant.noPrune,
			})
			if err != nil {
				panic(err)
			}
		})
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%.1f", float64(elapsed)/float64(time.Millisecond)),
			fmt.Sprintf("%d", res.ValuesScanned),
			fmt.Sprintf("%.2f", res.Inertia),
		})
	}
	return t
}

// AblationAdaptiveStep compares the fixed pruning step against the
// Section 5.2 dynamic-m variant on a hostile workload (Euclidean Ev on
// mildly clustered data), where pruning dries up mid-search and the fixed
// step keeps paying for fruitless kfetch passes.
func AblationAdaptiveStep(cfg Config) Table {
	vectors := dataset.Clustered(dataset.DefaultClustered(cfg.N, cfg.Dims, 0.5, cfg.Seed))
	store := vstore.FromVectors(vectors)
	queries, _ := dataset.SampleQueries(vectors, cfg.Queries, cfg.Seed+1)

	t := Table{
		ID:     "Ablation adaptive m",
		Title:  "Fixed vs adaptive pruning step (Ev); times in msec",
		Header: []string{"variant", "avg ms", "avg prune attempts"},
	}
	for _, variant := range []struct {
		name     string
		adaptive bool
	}{{"fixed m", false}, {"adaptive m", true}} {
		var times []time.Duration
		var attempts float64
		for _, q := range queries {
			var res core.Result
			times = append(times, timeIt(func() {
				var err error
				res, err = core.Search(store, q, core.Options{
					K: cfg.K, Criterion: core.Ev, Step: cfg.Step,
					AdaptiveStep: variant.adaptive,
				})
				if err != nil {
					panic(err)
				}
			}))
			attempts += float64(len(res.Stats.Steps))
		}
		s := stats.SummarizeDurations(times)
		t.Rows = append(t.Rows, []string{
			variant.name,
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.1f", attempts/float64(len(queries))),
		})
	}
	return t
}

// Package crashfs is a deterministic crash-injection filesystem for
// recovery testing: an in-memory iofs.FS whose durability-relevant
// operations consume a fixed budget of "steps", crashing the simulated
// process at an exactly chosen point.
//
// Every byte written costs one step, and every metadata operation
// (create, rename, remove, truncate, fsync) costs one step, so a budget
// sweep from 0 to the total step count kills the store at every byte
// boundary of every file it writes — including mid-record in the WAL,
// mid-column in a segment file, between a manifest's tmp write and its
// rename, and on either side of every fsync. A write that runs out of
// budget applies a prefix of its bytes and then trips the crash, so torn
// writes are produced, not just missing ones.
//
// After the crash trips, every operation fails with ErrCrashed — the
// process is dead. The test then calls Survivor to obtain the disk as
// the next process boot would see it: with PowerLoss, every file is
// truncated to its last-fsynced length (the page cache died with the
// machine); with ProcessCrash, completed writes survive. Recovery runs
// against the survivor with no budget.
package crashfs

import (
	"errors"
	"sync"

	"bond/internal/iofs"
)

// ErrCrashed is returned by every operation after the injected crash
// point has been reached.
var ErrCrashed = errors.New("crashfs: injected crash")

// Mode selects what survives the crash.
type Mode int

const (
	// ProcessCrash models SIGKILL: every write that completed before the
	// crash survives (it is in the kernel's page cache), synced or not.
	ProcessCrash Mode = iota
	// PowerLoss models the machine dying: only bytes fsynced before the
	// crash survive; each file is truncated to its last-synced length.
	PowerLoss
)

// FS is the fault-injecting filesystem. Create one with New; a negative
// budget disables injection (useful for the dry run that measures the
// total step count of a workload).
type FS struct {
	mu      sync.Mutex
	mem     *iofs.MemFS
	budget  int64 // remaining steps; <0 = unlimited
	used    int64
	crashed bool
}

// New returns a crash-injecting FS over empty in-memory storage that
// trips after budget steps (bytes written + metadata operations). A
// negative budget never trips.
func New(budget int64) *FS {
	return NewFrom(iofs.NewMemFS(), budget)
}

// NewFrom returns a crash-injecting FS over an existing in-memory disk
// image — for sweeping crash points through recovery itself, starting
// from the survivor of an earlier crash.
func NewFrom(mem *iofs.MemFS, budget int64) *FS {
	return &FS{mem: mem, budget: budget}
}

// Steps reports how many steps the workload has consumed so far. Run the
// workload once with a negative budget to measure the sweep range.
func (f *FS) Steps() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.used
}

// Crashed reports whether the injected crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// Survivor returns the disk state a reboot would observe, as a plain
// in-memory FS with no fault injection.
func (f *FS) Survivor(mode Mode) *iofs.MemFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mem.Clone(mode == PowerLoss)
}

// Mem exposes the backing store for instrumentation (create counts,
// byte-stability checks) — read-only use.
func (f *FS) Mem() *iofs.MemFS { return f.mem }

// step consumes n steps, returning how many were granted before the
// crash tripped (n when it did not).
func (f *FS) step(n int64) int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0
	}
	if f.budget < 0 {
		f.used += n
		return n
	}
	if n <= f.budget {
		f.budget -= n
		f.used += n
		return n
	}
	granted := f.budget
	f.used += granted
	f.budget = 0
	f.crashed = true
	return granted
}

// meta runs a 1-step metadata operation, or reports the crash.
func (f *FS) meta(op func() error) error {
	if f.Crashed() {
		return ErrCrashed
	}
	if f.step(1) < 1 {
		return ErrCrashed
	}
	return op()
}

// MkdirAll implements iofs.FS. Directory creation is free: it carries no
// recoverable data, and charging it would only shift every later crash
// point without adding coverage.
func (f *FS) MkdirAll(dir string) error {
	if f.Crashed() {
		return ErrCrashed
	}
	return f.mem.MkdirAll(dir)
}

// Create implements iofs.FS.
func (f *FS) Create(name string) (iofs.File, error) {
	if err := f.meta(func() error { return nil }); err != nil {
		return nil, err
	}
	h, err := f.mem.Create(name)
	if err != nil {
		return nil, err
	}
	return &handle{fs: f, h: h}, nil
}

// Append implements iofs.FS.
func (f *FS) Append(name string) (iofs.File, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	if _, err := f.mem.Stat(name); err != nil {
		// Creating the file is a metadata step; opening an existing one
		// is free.
		if f.step(1) < 1 {
			return nil, ErrCrashed
		}
	}
	h, err := f.mem.Append(name)
	if err != nil {
		return nil, err
	}
	return &handle{fs: f, h: h}, nil
}

// ReadFile implements iofs.FS. Reads are free — crash points are about
// durability events — but fail once the process is dead.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.ReadFile(name)
}

// Rename implements iofs.FS.
func (f *FS) Rename(oldpath, newpath string) error {
	return f.meta(func() error { return f.mem.Rename(oldpath, newpath) })
}

// Remove implements iofs.FS.
func (f *FS) Remove(name string) error {
	return f.meta(func() error { return f.mem.Remove(name) })
}

// RemoveAll implements iofs.FS.
func (f *FS) RemoveAll(name string) error {
	return f.meta(func() error { return f.mem.RemoveAll(name) })
}

// Truncate implements iofs.FS.
func (f *FS) Truncate(name string, size int64) error {
	return f.meta(func() error { return f.mem.Truncate(name, size) })
}

// ReadDir implements iofs.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if f.Crashed() {
		return nil, ErrCrashed
	}
	return f.mem.ReadDir(dir)
}

// Stat implements iofs.FS.
func (f *FS) Stat(name string) (iofs.FileInfo, error) {
	if f.Crashed() {
		return iofs.FileInfo{}, ErrCrashed
	}
	return f.mem.Stat(name)
}

// SyncDir implements iofs.FS: one metered durability event (a crash can
// land on either side of a directory fsync), though the in-memory model
// itself treats metadata as durable at operation time.
func (f *FS) SyncDir(dir string) error {
	return f.meta(func() error { return f.mem.SyncDir(dir) })
}

// handle meters writes and syncs through the crash budget.
type handle struct {
	fs *FS
	h  iofs.File
}

// Write applies as many bytes as the budget allows; a short grant
// produces a genuinely torn write and trips the crash.
func (h *handle) Write(p []byte) (int, error) {
	if h.fs.Crashed() {
		return 0, ErrCrashed
	}
	granted := h.fs.step(int64(len(p)))
	if granted > 0 {
		if n, err := h.h.Write(p[:granted]); err != nil {
			return n, err
		}
	}
	if granted < int64(len(p)) {
		return int(granted), ErrCrashed
	}
	return len(p), nil
}

func (h *handle) Sync() error {
	if h.fs.Crashed() {
		return ErrCrashed
	}
	if h.fs.step(1) < 1 {
		return ErrCrashed
	}
	return h.h.Sync()
}

func (h *handle) Close() error {
	// Closing is free and allowed after the crash: the dying process's
	// descriptors are closed by the kernel either way.
	return h.h.Close()
}

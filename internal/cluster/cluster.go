// Package cluster implements k-means over vertically decomposed data —
// the clustering direction the paper's Section 9 proposes as future work
// ("a promising direction … is to develop new techniques for other search
// problems in high dimensional spaces (e.g., clustering), when applied to
// dimension-wise decomposed data").
//
// The expensive phase of Lloyd's algorithm is assignment: the distance of
// every point to every centre. On a decomposed store the distances are
// accumulated column-by-column, exactly as BOND accumulates query
// distances, and the same branch-and-bound idea applies per point: after a
// batch of dimensions each centre's partial distance is a lower bound on
// its final distance (squared distance only grows), while the partial
// distance of the currently best centre plus that centre's worst-case tail
// bounds the final best from above. Centres whose lower bound exceeds that
// upper bound can no longer win the point and are dropped from its
// candidate set, so later columns are visited for few (point, centre)
// pairs. The pruning is exact: assignments equal those of a naive
// implementation with the same seeding and tie-breaks.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"

	"bond/internal/metric"
	"bond/internal/vstore"
)

// Options configures KMeans.
type Options struct {
	// K is the number of clusters. Required, ≥ 1.
	K int
	// MaxIters caps the Lloyd iterations. Default 25.
	MaxIters int
	// Step is the number of dimensions accumulated between pruning
	// attempts during assignment. Default 8.
	Step int
	// Seed drives the k-means++ style initialization.
	Seed int64
	// Tol stops iterating when the relative inertia improvement falls
	// below it. Default 1e-4.
	Tol float64
	// NoPrune disables the branch-and-bound assignment (for the ablation
	// benchmark); results are identical either way.
	NoPrune bool
}

// Result is a completed clustering.
type Result struct {
	// Assignments[i] is the centre index of vector i (−1 for deleted).
	Assignments []int
	// Centers are the final centroids.
	Centers [][]float64
	// Inertia is the total squared distance of points to their centres.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
	// ValuesScanned counts column cells read during assignment phases.
	ValuesScanned int64
}

// ErrBadOptions reports invalid clustering options.
var ErrBadOptions = errors.New("cluster: invalid options")

// Groups returns the live ids of each cluster, ascending within a group
// (assignments are scanned in id order) — the partition a cluster-aligned
// segment rewrite consumes. Deleted vectors (assignment −1) appear in no
// group. Clusters that ended empty yield empty groups.
func (r *Result) Groups() [][]int {
	groups := make([][]int, len(r.Centers))
	for id, c := range r.Assignments {
		if c >= 0 {
			groups[c] = append(groups[c], id)
		}
	}
	return groups
}

// Assign runs one assignment pass against fixed centres: every live
// vector goes to its nearest centre (ties toward the lower centre index)
// and the centres do not move — the incremental half of Lloyd's
// algorithm, for placing new vectors into an existing clustering without
// re-running it. Options.K, MaxIters, and Tol are ignored; the clustering
// width is len(centers). Pruning follows Options as in KMeans and is
// exact.
func Assign(s *vstore.Store, centers [][]float64, opts Options) (Result, error) {
	if len(centers) == 0 {
		return Result{}, fmt.Errorf("%w: no centers", ErrBadOptions)
	}
	for _, ctr := range centers {
		if len(ctr) != s.Dims() {
			return Result{}, fmt.Errorf("%w: centre dims %d != store dims %d", ErrBadOptions, len(ctr), s.Dims())
		}
	}
	if opts.Step == 0 {
		opts.Step = 8
	}
	if opts.Step < 1 {
		return Result{}, fmt.Errorf("%w: Step must be >= 1", ErrBadOptions)
	}
	live := s.LiveIDs()
	if len(live) == 0 {
		return Result{}, fmt.Errorf("%w: no live vectors", ErrBadOptions)
	}
	res := Result{Assignments: make([]int, s.Len()), Centers: centers, Iters: 1}
	for i := range res.Assignments {
		res.Assignments[i] = -1
	}
	if opts.NoPrune {
		res.Inertia, res.ValuesScanned = assignNaive(s, live, centers, res.Assignments)
	} else {
		lo, hi := columnExtents(s, live)
		res.Inertia, res.ValuesScanned = assignPruned(s, live, centers, res.Assignments, opts.Step, lo, hi)
	}
	return res, nil
}

// KMeans clusters the live vectors of a decomposed store.
func KMeans(s *vstore.Store, opts Options) (Result, error) {
	if opts.K < 1 {
		return Result{}, fmt.Errorf("%w: K must be >= 1", ErrBadOptions)
	}
	if opts.MaxIters == 0 {
		opts.MaxIters = 25
	}
	if opts.MaxIters < 1 {
		return Result{}, fmt.Errorf("%w: MaxIters must be >= 1", ErrBadOptions)
	}
	if opts.Step == 0 {
		opts.Step = 8
	}
	if opts.Step < 1 {
		return Result{}, fmt.Errorf("%w: Step must be >= 1", ErrBadOptions)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-4
	}
	live := s.LiveIDs()
	if len(live) == 0 {
		return Result{}, fmt.Errorf("%w: no live vectors", ErrBadOptions)
	}
	k := opts.K
	if k > len(live) {
		k = len(live)
	}
	// initCenters may stop short of k when the live points hold fewer than
	// k distinct coordinates; everything below sizes itself from the
	// centres actually seeded.

	// Per-dimension data extent: the worst-case remaining distance of a
	// centre is bounded by the farthest data corner, not the unit box, so
	// pruning stays exact for arbitrary value ranges.
	lo, hi := columnExtents(s, live)

	centers := initCenters(s, live, k, opts.Seed)
	res := Result{Assignments: make([]int, s.Len())}
	for i := range res.Assignments {
		res.Assignments[i] = -1
	}

	prevInertia := math.Inf(1)
	for iter := 0; iter < opts.MaxIters; iter++ {
		var inertia float64
		var scanned int64
		if opts.NoPrune {
			inertia, scanned = assignNaive(s, live, centers, res.Assignments)
		} else {
			inertia, scanned = assignPruned(s, live, centers, res.Assignments, opts.Step, lo, hi)
		}
		res.ValuesScanned += scanned
		res.Iters = iter + 1
		res.Inertia = inertia

		updateCenters(s, live, centers, res.Assignments)

		if !math.IsInf(prevInertia, 1) && prevInertia-inertia <= opts.Tol*math.Max(prevInertia, 1e-300) {
			break
		}
		prevInertia = inertia
	}
	res.Centers = centers
	return res, nil
}

// initCenters seeds with k-means++: the first centre uniform, each next
// centre drawn with probability proportional to the squared distance to
// the nearest centre chosen so far.
func initCenters(s *vstore.Store, live []int, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 0, k)
	first := live[rng.Intn(len(live))]
	centers = append(centers, s.Row(first))

	d2 := make([]float64, len(live))
	for i, id := range live {
		d2[i] = rowDist(s, id, centers[0])
	}
	for len(centers) < k {
		total := 0.0
		for _, d := range d2 {
			if !math.IsNaN(d) {
				total += d
			}
		}
		if total == 0 {
			// Every remaining point coincides with a centre already chosen
			// (duplicate points): any further centre would collapse onto an
			// existing one, leaving indistinguishable duplicates. Stop with
			// the distinct centres found.
			break
		}
		r := rng.Float64() * total
		acc := 0.0
		idx := len(live) - 1
		for i, d := range d2 {
			if math.IsNaN(d) {
				continue
			}
			acc += d
			if acc >= r {
				idx = i
				break
			}
		}
		chosen := live[idx]
		ctr := s.Row(chosen)
		centers = append(centers, ctr)
		for i, id := range live {
			if d := rowDist(s, id, ctr); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centers
}

func rowDist(s *vstore.Store, id int, ctr []float64) float64 {
	sum := 0.0
	for d := 0; d < s.Dims(); d++ {
		diff := s.Column(d)[id] - ctr[d]
		sum += diff * diff
	}
	return sum
}

// assignNaive computes all point-centre distances column-wise without
// pruning and assigns each point to its nearest centre (ties toward the
// lower centre index).
func assignNaive(s *vstore.Store, live []int, centers [][]float64, out []int) (inertia float64, scanned int64) {
	k := len(centers)
	dist := make([]float64, len(live)*k)
	for d := 0; d < s.Dims(); d++ {
		col := s.Column(d)
		for c := 0; c < k; c++ {
			ctr := centers[c][d]
			for i, id := range live {
				diff := col[id] - ctr
				dist[i*k+c] += diff * diff
			}
		}
		scanned += int64(len(live) * k)
	}
	for i, id := range live {
		best, bestD := 0, dist[i*k]
		for c := 1; c < k; c++ {
			if d := dist[i*k+c]; d < bestD {
				best, bestD = c, d
			}
		}
		out[id] = best
		inertia += bestD
	}
	return inertia, scanned
}

// assignPruned is the BOND-style assignment: it processes dimensions in
// batches and, per point, drops centres whose best-case remaining distance
// (the Ev lower bound of Lemma 2, with the centre in the role of the
// query) cannot beat the current best centre's worst-case remaining
// distance (the Lemma 1 upper bound). Candidate centres per point are
// tracked in word-packed bitmasks. Pruning is exact because the Ev bounds
// are valid for any feasible tail, so assignments equal assignNaive's.
func assignPruned(s *vstore.Store, live []int, centers [][]float64, out []int, step int, lo, hi []float64) (inertia float64, scanned int64) {
	k := len(centers)
	dims := s.Dims()
	dist := make([]float64, len(live)*k)

	// Per-point remaining mass T(v⁺), maintained exactly as BOND does.
	totals := s.Totals()
	pointTail := make([]float64, len(live))
	for i, id := range live {
		pointTail[i] = totals[id]
	}
	// Data-extent scaling: the metric.EucTail bounds assume coordinates in
	// [0,1]; clustering data already satisfies this for the paper's
	// workloads, and columnExtents lets callers detect violations. For
	// out-of-unit-box data the Lemma 1 bound is widened by the corner term.
	var extentSlack float64
	for d := 0; d < dims; d++ {
		if lo[d] < 0 || hi[d] > 1 {
			over := math.Max(0, hi[d]-1) + math.Max(0, -lo[d])
			extentSlack += (over + 1) * (over + 1)
		}
	}

	// Candidate masks: word-packed bitsets of width k per point.
	words := (k + 63) / 64
	masks := make([]uint64, len(live)*words)
	fullWord := ^uint64(0)
	for i := range masks {
		masks[i] = fullWord
	}
	if k%64 != 0 {
		lastMask := (uint64(1) << uint(k%64)) - 1
		for i := words - 1; i < len(masks); i += words {
			masks[i] &= lastMask
		}
	}

	for from := 0; from < dims; from += step {
		to := from + step
		if to > dims {
			to = dims
		}
		// Accumulate the batch for surviving (point, centre) pairs, and
		// maintain the point tails. Full mask words (no centre pruned yet
		// for this point) take a dense branch-free loop; sparse words fall
		// back to bit iteration.
		ctrCol := make([]float64, k)
		for d := from; d < to; d++ {
			col := s.Column(d)
			for c := 0; c < k; c++ {
				ctrCol[c] = centers[c][d]
			}
			for i, id := range live {
				v := col[id]
				pointTail[i] -= v
				base := i * words
				row := dist[i*k : i*k+k]
				for w := 0; w < words; w++ {
					m := masks[base+w]
					if m == 0 {
						continue
					}
					cLo := w * 64
					cHi := cLo + 64
					if cHi > k {
						cHi = k
					}
					if m == fullWord || (w == words-1 && bits.OnesCount64(m) == cHi-cLo) {
						for c := cLo; c < cHi; c++ {
							diff := v - ctrCol[c]
							row[c] += diff * diff
						}
						scanned += int64(cHi - cLo)
						continue
					}
					for m != 0 {
						bit := m & (-m)
						c := cLo + trailingZeros(bit)
						diff := v - ctrCol[c]
						row[c] += diff * diff
						scanned++
						m &^= bit
					}
				}
			}
		}
		if to >= dims || extentSlack > 0 {
			// Out-of-unit-box data: skip pruning, assignment stays exact
			// via the naive fallback of the final pass.
			if to >= dims {
				break
			}
			continue
		}
		// Per-centre Ev tail bounds over the remaining dimensions.
		tails := make([]*metric.EucTail, k)
		rem := make([]float64, dims-to)
		for c := 0; c < k; c++ {
			copy(rem, centers[c][to:])
			tails[c] = metric.NewEucTail(rem)
		}
		// Prune: centre c loses point i when even its best case cannot
		// beat the current best centre's worst case.
		for i := range live {
			base := i * words
			t := pointTail[i]
			bestC, bestD := -1, math.Inf(1)
			for w := 0; w < words; w++ {
				m := masks[base+w]
				for m != 0 {
					bit := m & (-m)
					c := w*64 + trailingZeros(bit)
					if d := dist[i*k+c]; d < bestD {
						bestC, bestD = c, d
					}
					m &^= bit
				}
			}
			if bestC < 0 {
				// Every candidate distance is NaN (NaN coefficients): no
				// bound is meaningful, so nothing can be pruned for this
				// point.
				continue
			}
			bound := bestD + tails[bestC].EvUpper(t)
			for w := 0; w < words; w++ {
				m := masks[base+w]
				for m != 0 {
					bit := m & (-m)
					c := w*64 + trailingZeros(bit)
					if c != bestC && dist[i*k+c]+tails[c].EvLower(t) > bound {
						masks[base+w] &^= bit
					}
					m &^= bit
				}
			}
		}
	}

	for i, id := range live {
		base := i * words
		bestC, bestD := -1, math.Inf(1)
		for w := 0; w < words; w++ {
			m := masks[base+w]
			for m != 0 {
				bit := m & (-m)
				c := w*64 + trailingZeros(bit)
				if d := dist[i*k+c]; d < bestD {
					bestC, bestD = c, d
				}
				m &^= bit
			}
		}
		if bestC < 0 {
			// All-NaN distances: fall back to centre 0, matching
			// assignNaive's default under the same input.
			bestC, bestD = 0, dist[i*k]
		}
		out[id] = bestC
		inertia += bestD
	}
	return inertia, scanned
}

// updateCenters recomputes centroids column-wise. Empty clusters keep
// their previous centre, and so does any centroid coordinate whose new
// mean comes out non-finite (a NaN coefficient in the data would
// otherwise poison the centre and, through it, every later distance).
func updateCenters(s *vstore.Store, live []int, centers [][]float64, assign []int) {
	k := len(centers)
	dims := s.Dims()
	counts := make([]int, k)
	for _, id := range live {
		if c := assign[id]; c >= 0 {
			counts[c]++
		}
	}
	sums := make([]float64, k*dims)
	for d := 0; d < dims; d++ {
		col := s.Column(d)
		for _, id := range live {
			if c := assign[id]; c >= 0 {
				sums[c*dims+d] += col[id]
			}
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		inv := 1 / float64(counts[c])
		for d := 0; d < dims; d++ {
			if m := sums[c*dims+d] * inv; !math.IsNaN(m) && !math.IsInf(m, 0) {
				centers[c][d] = m
			}
		}
	}
}

// columnExtents returns the per-dimension minimum and maximum over the
// live vectors.
func columnExtents(s *vstore.Store, live []int) (lo, hi []float64) {
	dims := s.Dims()
	lo = make([]float64, dims)
	hi = make([]float64, dims)
	for d := 0; d < dims; d++ {
		col := s.Column(d)
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, id := range live {
			v := col[id]
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		lo[d], hi[d] = mn, mx
	}
	return lo, hi
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

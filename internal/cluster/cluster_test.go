package cluster

import (
	"errors"
	"math"
	"testing"

	"bond/internal/dataset"
	"bond/internal/vstore"
)

func clusteredStore(n, dims, clusters int, seed int64) *vstore.Store {
	cfg := dataset.DefaultClustered(n, dims, 0.5, seed)
	cfg.Clusters = clusters
	return vstore.FromVectors(dataset.Clustered(cfg))
}

func TestKMeansPrunedMatchesNaive(t *testing.T) {
	s := clusteredStore(500, 24, 8, 3)
	pruned, err := KMeans(s, Options{K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := KMeans(s, Options{K: 8, Seed: 9, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pruned.Inertia-naive.Inertia) > 1e-9 {
		t.Errorf("inertia: pruned %v vs naive %v", pruned.Inertia, naive.Inertia)
	}
	if pruned.Iters != naive.Iters {
		t.Errorf("iters: pruned %d vs naive %d", pruned.Iters, naive.Iters)
	}
	for id := range pruned.Assignments {
		if pruned.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("assignment of %d differs: %d vs %d",
				id, pruned.Assignments[id], naive.Assignments[id])
		}
	}
	if pruned.ValuesScanned >= naive.ValuesScanned {
		t.Errorf("pruned scanned %d ≥ naive %d", pruned.ValuesScanned, naive.ValuesScanned)
	}
}

func TestKMeansRecoversPlantedClusters(t *testing.T) {
	// Well-separated clusters: k-means must reach low inertia relative to
	// the single-cluster baseline.
	s := clusteredStore(600, 16, 5, 7)
	one, err := KMeans(s, Options{K: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	five, err := KMeans(s, Options{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if five.Inertia > one.Inertia/2 {
		t.Errorf("k=5 inertia %v not ≪ k=1 inertia %v", five.Inertia, one.Inertia)
	}
}

func TestKMeansInertiaMonotoneInK(t *testing.T) {
	s := clusteredStore(300, 12, 6, 5)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(s, Options{K: k, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		// k-means++ with more centres on the same data should not be much
		// worse; strictly it is not guaranteed monotone per-seed, so allow
		// 10 % slack.
		if res.Inertia > prev*1.1 {
			t.Errorf("k=%d inertia %v ≫ previous %v", k, res.Inertia, prev)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}

func TestKMeansAssignsAllLiveOnly(t *testing.T) {
	s := clusteredStore(100, 8, 3, 1)
	s.Delete(10)
	s.Delete(20)
	res, err := KMeans(s, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[10] != -1 || res.Assignments[20] != -1 {
		t.Error("deleted vectors must stay unassigned")
	}
	for id := 0; id < s.Len(); id++ {
		if id == 10 || id == 20 {
			continue
		}
		if c := res.Assignments[id]; c < 0 || c >= 3 {
			t.Fatalf("assignment[%d] = %d", id, c)
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	s := clusteredStore(5, 4, 2, 1)
	res, err := KMeans(s, Options{K: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 5 {
		t.Errorf("centres = %d, want clamped to 5", len(res.Centers))
	}
}

func TestKMeansManyClustersCrossesWordBoundary(t *testing.T) {
	// k > 64 exercises the multi-word candidate masks.
	s := clusteredStore(400, 8, 70, 11)
	pruned, err := KMeans(s, Options{K: 70, Seed: 3, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := KMeans(s, Options{K: 70, Seed: 3, MaxIters: 3, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := range pruned.Assignments {
		if pruned.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("assignment of %d differs with k=70", id)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	s := clusteredStore(10, 4, 2, 1)
	if _, err := KMeans(s, Options{K: 0}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("K=0: %v", err)
	}
	if _, err := KMeans(s, Options{K: 2, MaxIters: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("MaxIters<0: %v", err)
	}
	if _, err := KMeans(s, Options{K: 2, Step: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Step<0: %v", err)
	}
	for id := 0; id < 10; id++ {
		s.Delete(id)
	}
	if _, err := KMeans(s, Options{K: 2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("empty: %v", err)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	s := clusteredStore(200, 8, 4, 6)
	a, _ := KMeans(s, Options{K: 4, Seed: 42})
	b, _ := KMeans(s, Options{K: 4, Seed: 42})
	if a.Inertia != b.Inertia {
		t.Error("same seed produced different inertia")
	}
	for id := range a.Assignments {
		if a.Assignments[id] != b.Assignments[id] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestKMeansDuplicatePointsCollapseCentres(t *testing.T) {
	// 30 points but only 3 distinct coordinates: asking for 10 clusters
	// must yield at most 3 centres, all distinct, with every point
	// assigned to a centre it coincides with.
	vecs := make([][]float64, 0, 30)
	distinct := [][]float64{{0.1, 0.1, 0.1}, {0.5, 0.5, 0.5}, {0.9, 0.9, 0.9}}
	for i := 0; i < 30; i++ {
		vecs = append(vecs, distinct[i%3])
	}
	s := vstore.FromVectors(vecs)
	res, err := KMeans(s, Options{K: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) > 3 {
		t.Fatalf("%d centres from 3 distinct points", len(res.Centers))
	}
	for i, a := range res.Centers {
		for j := i + 1; j < len(res.Centers); j++ {
			same := true
			for d := range a {
				if a[d] != res.Centers[j][d] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("centres %d and %d are duplicates", i, j)
			}
		}
	}
	if res.Inertia > 1e-20 {
		t.Errorf("inertia %v, want ≈0 (every point sits on a centre)", res.Inertia)
	}

	// The degenerate extreme: every point identical.
	same := vstore.FromVectors([][]float64{{0.3, 0.7}, {0.3, 0.7}, {0.3, 0.7}})
	res2, err := KMeans(same, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Centers) != 1 {
		t.Fatalf("%d centres from identical points, want 1", len(res2.Centers))
	}
}

func TestKMeansNaNSafeCentroidUpdates(t *testing.T) {
	// One poisoned coefficient must not propagate into any centroid: the
	// mean of the affected (cluster, dimension) keeps its previous value.
	vecs := [][]float64{
		{0.1, 0.1}, {0.12, 0.1}, {0.1, 0.14},
		{0.9, 0.9}, {0.88, 0.9}, {0.9, 0.86},
		{math.NaN(), 0.5},
	}
	s := vstore.FromVectors(vecs)
	res, err := KMeans(s, Options{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, ctr := range res.Centers {
		for d, x := range ctr {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Fatalf("centre %d dim %d is %v", c, d, x)
			}
		}
	}
	// The finite points still split into the two planted groups.
	if res.Assignments[0] != res.Assignments[1] || res.Assignments[3] != res.Assignments[4] {
		t.Error("finite points of one planted cluster split across centres")
	}
	if len(res.Centers) > 1 && res.Assignments[0] == res.Assignments[3] {
		t.Error("the two planted clusters merged despite 2 centres")
	}
	// And the NaN row is assigned deterministically, identically to naive.
	naive, err := KMeans(s, Options{K: 2, Seed: 3, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := range res.Assignments {
		if res.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("assignment of %d differs from naive under NaN input", id)
		}
	}
}

func TestAssignMatchesBruteForceAndNaive(t *testing.T) {
	s := clusteredStore(400, 16, 6, 8)
	km, err := KMeans(s, Options{K: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Assign(s, km.Centers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Assign(s, km.Centers, Options{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < s.Len(); id++ {
		if res.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("pruned Assign of %d differs from naive", id)
		}
		best, bestD := -1, math.Inf(1)
		for c, ctr := range km.Centers {
			if d := rowDist(s, id, ctr); d < bestD {
				best, bestD = c, d
			}
		}
		if res.Assignments[id] != best {
			t.Fatalf("Assign(%d) = %d, brute force says %d", id, res.Assignments[id], best)
		}
	}
	if res.ValuesScanned >= naive.ValuesScanned {
		t.Errorf("pruned Assign scanned %d ≥ naive %d", res.ValuesScanned, naive.ValuesScanned)
	}
}

func TestAssignErrors(t *testing.T) {
	s := clusteredStore(10, 4, 2, 1)
	if _, err := Assign(s, nil, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("no centers: %v", err)
	}
	if _, err := Assign(s, [][]float64{{1, 2}}, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("dims mismatch: %v", err)
	}
	for id := 0; id < 10; id++ {
		s.Delete(id)
	}
	if _, err := Assign(s, [][]float64{{1, 2, 3, 4}}, Options{}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("empty: %v", err)
	}
}

func TestResultGroupsPartitionLiveIDs(t *testing.T) {
	s := clusteredStore(200, 8, 4, 9)
	s.Delete(7)
	s.Delete(150)
	res, err := KMeans(s, Options{K: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	groups := res.Groups()
	if len(groups) != len(res.Centers) {
		t.Fatalf("%d groups for %d centres", len(groups), len(res.Centers))
	}
	seen := make(map[int]bool)
	for c, grp := range groups {
		prev := -1
		for _, id := range grp {
			if id <= prev {
				t.Fatalf("group %d not ascending at id %d", c, id)
			}
			prev = id
			if res.Assignments[id] != c {
				t.Fatalf("id %d in group %d but assigned to %d", id, c, res.Assignments[id])
			}
			if seen[id] {
				t.Fatalf("id %d in two groups", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != 198 {
		t.Fatalf("groups cover %d ids, want 198", len(seen))
	}
	if seen[7] || seen[150] {
		t.Fatal("deleted ids must not appear in any group")
	}
}

func BenchmarkKMeansPruned(b *testing.B) {
	s := clusteredStore(2000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansNaive(b *testing.B) {
	s := clusteredStore(2000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5, NoPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

package cluster

import (
	"errors"
	"math"
	"testing"

	"bond/internal/dataset"
	"bond/internal/vstore"
)

func clusteredStore(n, dims, clusters int, seed int64) *vstore.Store {
	cfg := dataset.DefaultClustered(n, dims, 0.5, seed)
	cfg.Clusters = clusters
	return vstore.FromVectors(dataset.Clustered(cfg))
}

func TestKMeansPrunedMatchesNaive(t *testing.T) {
	s := clusteredStore(500, 24, 8, 3)
	pruned, err := KMeans(s, Options{K: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := KMeans(s, Options{K: 8, Seed: 9, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pruned.Inertia-naive.Inertia) > 1e-9 {
		t.Errorf("inertia: pruned %v vs naive %v", pruned.Inertia, naive.Inertia)
	}
	if pruned.Iters != naive.Iters {
		t.Errorf("iters: pruned %d vs naive %d", pruned.Iters, naive.Iters)
	}
	for id := range pruned.Assignments {
		if pruned.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("assignment of %d differs: %d vs %d",
				id, pruned.Assignments[id], naive.Assignments[id])
		}
	}
	if pruned.ValuesScanned >= naive.ValuesScanned {
		t.Errorf("pruned scanned %d ≥ naive %d", pruned.ValuesScanned, naive.ValuesScanned)
	}
}

func TestKMeansRecoversPlantedClusters(t *testing.T) {
	// Well-separated clusters: k-means must reach low inertia relative to
	// the single-cluster baseline.
	s := clusteredStore(600, 16, 5, 7)
	one, err := KMeans(s, Options{K: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	five, err := KMeans(s, Options{K: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if five.Inertia > one.Inertia/2 {
		t.Errorf("k=5 inertia %v not ≪ k=1 inertia %v", five.Inertia, one.Inertia)
	}
}

func TestKMeansInertiaMonotoneInK(t *testing.T) {
	s := clusteredStore(300, 12, 6, 5)
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans(s, Options{K: k, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		// k-means++ with more centres on the same data should not be much
		// worse; strictly it is not guaranteed monotone per-seed, so allow
		// 10 % slack.
		if res.Inertia > prev*1.1 {
			t.Errorf("k=%d inertia %v ≫ previous %v", k, res.Inertia, prev)
		}
		if res.Inertia < prev {
			prev = res.Inertia
		}
	}
}

func TestKMeansAssignsAllLiveOnly(t *testing.T) {
	s := clusteredStore(100, 8, 3, 1)
	s.Delete(10)
	s.Delete(20)
	res, err := KMeans(s, Options{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignments[10] != -1 || res.Assignments[20] != -1 {
		t.Error("deleted vectors must stay unassigned")
	}
	for id := 0; id < s.Len(); id++ {
		if id == 10 || id == 20 {
			continue
		}
		if c := res.Assignments[id]; c < 0 || c >= 3 {
			t.Fatalf("assignment[%d] = %d", id, c)
		}
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	s := clusteredStore(5, 4, 2, 1)
	res, err := KMeans(s, Options{K: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centers) != 5 {
		t.Errorf("centres = %d, want clamped to 5", len(res.Centers))
	}
}

func TestKMeansManyClustersCrossesWordBoundary(t *testing.T) {
	// k > 64 exercises the multi-word candidate masks.
	s := clusteredStore(400, 8, 70, 11)
	pruned, err := KMeans(s, Options{K: 70, Seed: 3, MaxIters: 3})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := KMeans(s, Options{K: 70, Seed: 3, MaxIters: 3, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for id := range pruned.Assignments {
		if pruned.Assignments[id] != naive.Assignments[id] {
			t.Fatalf("assignment of %d differs with k=70", id)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	s := clusteredStore(10, 4, 2, 1)
	if _, err := KMeans(s, Options{K: 0}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("K=0: %v", err)
	}
	if _, err := KMeans(s, Options{K: 2, MaxIters: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("MaxIters<0: %v", err)
	}
	if _, err := KMeans(s, Options{K: 2, Step: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Step<0: %v", err)
	}
	for id := 0; id < 10; id++ {
		s.Delete(id)
	}
	if _, err := KMeans(s, Options{K: 2}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("empty: %v", err)
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	s := clusteredStore(200, 8, 4, 6)
	a, _ := KMeans(s, Options{K: 4, Seed: 42})
	b, _ := KMeans(s, Options{K: 4, Seed: 42})
	if a.Inertia != b.Inertia {
		t.Error("same seed produced different inertia")
	}
	for id := range a.Assignments {
		if a.Assignments[id] != b.Assignments[id] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func BenchmarkKMeansPruned(b *testing.B) {
	s := clusteredStore(2000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeansNaive(b *testing.B) {
	s := clusteredStore(2000, 32, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5, NoPrune: true}); err != nil {
			b.Fatal(err)
		}
	}
}

package cluster

import "testing"

func BenchmarkKMeansPrunedHighDim(b *testing.B) {
	s := clusteredStore(2000, 128, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ValuesScanned), "values")
	}
}

func BenchmarkKMeansNaiveHighDim(b *testing.B) {
	s := clusteredStore(2000, 128, 16, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := KMeans(s, Options{K: 16, Seed: 1, MaxIters: 5, NoPrune: true})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ValuesScanned), "values")
	}
}

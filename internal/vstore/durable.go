package vstore

// This file implements the incremental on-disk layout a durable
// collection checkpoints into: a directory holding
//
//	MANIFEST            the commit point: segment list + tombstones +
//	                    WAL sequence + planner stats, CRC-trailed,
//	                    replaced atomically (write tmp, fsync, rename)
//	seg-<id>.seg        one file per sealed segment, written exactly
//	                    once when the segment first appears in a
//	                    checkpoint and byte-stable forever after —
//	                    sealed columns are immutable, and tombstones
//	                    live in the manifest, not here
//	active-<seq>.ckpt   the mutable active segment as of the checkpoint
//	                    that rotated the WAL to sequence <seq>
//	wal-<seq>.log       the write-ahead log of mutations since that
//	                    checkpoint (owned by package wal)
//
// The checkpoint protocol (WriteCheckpoint) orders writes so the rename
// of MANIFEST is the single commit point: new segment files and the new
// active checkpoint land first, each through its own atomic tmp+fsync+
// rename; only then is the manifest replaced; only after that are the
// previous checkpoint's WAL, active file, and orphaned segment files
// garbage-collected. A crash anywhere leaves either the old manifest
// (whose files are all still present) or the new one (ditto) — never a
// manifest naming files that do not exist.
//
// Because only the manifest and the active checkpoint are rewritten, a
// checkpoint's cost is O(active segment + tombstone lists), not O(whole
// collection): sealed segments — the bulk of a grown collection — are
// never written twice.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bond/internal/iofs"
)

const (
	// ManifestName is the durable directory's commit record.
	ManifestName = "MANIFEST"

	manMagic   = "BONDMAN1"
	manVersion = uint32(2)
	maxSegs    = 1 << 24

	// Segment file formats a manifest entry can name. SegFormatV1 is the
	// legacy row-stream layout (Store.Save); SegFormatV2 is the
	// column-major mmap-native layout (Store.WriteSegmentV2). Recovery
	// still reads v1 files, but checkpoints only ever write v2 — a
	// recovered v1 segment is re-persisted under a fresh id at the next
	// checkpoint and the old file garbage-collected, which migrates a
	// pre-mmap directory without ever rewriting a file in place.
	SegFormatV1 = byte(1)
	SegFormatV2 = byte(2)
)

// ErrNoManifest reports a directory without a MANIFEST — an empty or
// half-created durable directory, as opposed to a corrupt one.
var ErrNoManifest = errors.New("vstore: no manifest")

// SegFileName returns the write-once file name of sealed segment id.
func SegFileName(id uint64) string { return fmt.Sprintf("seg-%016x.seg", id) }

// ActiveFileName returns the active-segment checkpoint file name for the
// checkpoint that rotated the WAL to seq.
func ActiveFileName(seq uint64) string { return fmt.Sprintf("active-%016d.ckpt", seq) }

// WALFileName returns the write-ahead log file name for sequence seq.
func WALFileName(seq uint64) string { return fmt.Sprintf("wal-%016d.log", seq) }

// ParseWALSeq extracts the sequence number from a WAL file name.
func ParseWALSeq(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	return seq, err == nil
}

// ManifestSegment describes one sealed segment in a manifest: which
// write-once file holds its columns, how many slots it has (a cheap
// cross-check against the file), and which of them were tombstoned as of
// the checkpoint.
type ManifestSegment struct {
	ID      uint64
	Len     int
	Format  byte // SegFormatV1 or SegFormatV2
	Deleted []int
}

// Manifest is the decoded commit record of a durable directory.
type Manifest struct {
	Dims         int
	SegSize      int
	NextSegID    uint64
	WALSeq       uint64
	ActiveLen    int
	PlannerStats []byte
	Segments     []ManifestSegment
}

// EncodeManifest renders m in the CRC-trailed binary manifest format.
func EncodeManifest(m *Manifest) []byte {
	var b []byte
	b = append(b, manMagic...)
	b = binary.LittleEndian.AppendUint32(b, manVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.Dims))
	b = binary.LittleEndian.AppendUint64(b, uint64(m.SegSize))
	b = binary.LittleEndian.AppendUint64(b, m.NextSegID)
	b = binary.LittleEndian.AppendUint64(b, m.WALSeq)
	b = binary.LittleEndian.AppendUint64(b, uint64(m.ActiveLen))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.PlannerStats)))
	b = append(b, m.PlannerStats...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(m.Segments)))
	for _, sg := range m.Segments {
		b = binary.LittleEndian.AppendUint64(b, sg.ID)
		b = binary.LittleEndian.AppendUint64(b, uint64(sg.Len))
		b = append(b, sg.Format)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(sg.Deleted)))
		for _, id := range sg.Deleted {
			b = binary.LittleEndian.AppendUint64(b, uint64(id))
		}
	}
	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// manCursor is a bounds-checked reader over a manifest image; every
// length is validated against the bytes actually present before any
// allocation is sized from it, so a malformed manifest errors instead of
// panicking or over-allocating.
type manCursor struct {
	data []byte
	off  int
}

func (c *manCursor) bytes(n int) ([]byte, error) {
	if n < 0 || len(c.data)-c.off < n {
		return nil, fmt.Errorf("%w: manifest truncated at byte %d", ErrCorrupt, c.off)
	}
	b := c.data[c.off : c.off+n]
	c.off += n
	return b, nil
}

func (c *manCursor) u32() (uint32, error) {
	b, err := c.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (c *manCursor) u64() (uint64, error) {
	b, err := c.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// DecodeManifest parses and validates a manifest image. It never panics
// on malformed input.
func DecodeManifest(data []byte) (*Manifest, error) {
	if len(data) < len(manMagic)+4+4 {
		return nil, fmt.Errorf("%w: %d-byte manifest", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	c := &manCursor{data: body}
	mg, err := c.bytes(len(manMagic))
	if err != nil {
		return nil, err
	}
	if string(mg) != manMagic {
		return nil, fmt.Errorf("%w: bad manifest magic %q", ErrCorrupt, mg)
	}
	ver, err := c.u32()
	if err != nil {
		return nil, err
	}
	// Version 1 manifests (pre-mmap directories) decode too: they lack the
	// per-segment format byte, so every segment is implicitly v1.
	if ver != 1 && ver != manVersion {
		return nil, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, ver)
	}
	m := &Manifest{}
	var dims, segSize, activeLen uint64
	for _, p := range []*uint64{&dims, &segSize, &m.NextSegID, &m.WALSeq, &activeLen} {
		if *p, err = c.u64(); err != nil {
			return nil, err
		}
	}
	if dims < 1 || dims > 1<<20 || segSize < 1 || segSize > 1<<31 || activeLen > 1<<31 {
		return nil, fmt.Errorf("%w: implausible manifest dims=%d segSize=%d activeLen=%d",
			ErrCorrupt, dims, segSize, activeLen)
	}
	m.Dims, m.SegSize, m.ActiveLen = int(dims), int(segSize), int(activeLen)
	statsLen, err := c.u32()
	if err != nil {
		return nil, err
	}
	if statsLen > maxStatsBlock {
		return nil, fmt.Errorf("%w: implausible stats block of %d bytes", ErrCorrupt, statsLen)
	}
	stats, err := c.bytes(int(statsLen))
	if err != nil {
		return nil, err
	}
	if statsLen > 0 {
		m.PlannerStats = append([]byte(nil), stats...)
	}
	nsegs, err := c.u32()
	if err != nil {
		return nil, err
	}
	if nsegs > maxSegs {
		return nil, fmt.Errorf("%w: implausible segment count %d", ErrCorrupt, nsegs)
	}
	for i := uint32(0); i < nsegs; i++ {
		var sg ManifestSegment
		if sg.ID, err = c.u64(); err != nil {
			return nil, err
		}
		slen, err := c.u64()
		if err != nil {
			return nil, err
		}
		if slen > 1<<31 {
			return nil, fmt.Errorf("%w: implausible segment length %d", ErrCorrupt, slen)
		}
		sg.Len = int(slen)
		if ver >= 2 {
			fb, err := c.bytes(1)
			if err != nil {
				return nil, err
			}
			sg.Format = fb[0]
			if sg.Format != SegFormatV1 && sg.Format != SegFormatV2 {
				return nil, fmt.Errorf("%w: unknown segment format %d", ErrCorrupt, sg.Format)
			}
		} else {
			sg.Format = SegFormatV1
		}
		ndel, err := c.u32()
		if err != nil {
			return nil, err
		}
		if uint64(ndel) > slen {
			return nil, fmt.Errorf("%w: %d tombstones for %d slots", ErrCorrupt, ndel, slen)
		}
		raw, err := c.bytes(int(ndel) * 8)
		if err != nil {
			return nil, err
		}
		if ndel > 0 {
			sg.Deleted = make([]int, ndel)
			for j := range sg.Deleted {
				id := binary.LittleEndian.Uint64(raw[j*8:])
				if id >= slen {
					return nil, fmt.Errorf("%w: tombstone %d outside segment of %d", ErrCorrupt, id, slen)
				}
				sg.Deleted[j] = int(id)
			}
		}
		m.Segments = append(m.Segments, sg)
	}
	if c.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", ErrCorrupt, len(body)-c.off)
	}
	return m, nil
}

// CheckpointSeg is one sealed segment captured for a checkpoint: the
// shared immutable column store, its persistent id, and a snapshot of
// its tombstones at capture time.
type CheckpointSeg struct {
	ID      uint64
	Store   *Store
	Deleted []int
}

// CheckpointState is a consistent capture of a segmented store for
// WriteCheckpoint: taken under the collection's write lock, written to
// disk outside it. Sealed column data is shared (immutable); the active
// segment and every tombstone list are copies, so concurrent mutations
// after the capture cannot leak into the checkpoint.
type CheckpointState struct {
	Dims         int
	SegSize      int
	NextSegID    uint64
	WALSeq       uint64
	PlannerStats []byte
	Sealed       []CheckpointSeg
	Active       *Store
}

// CaptureCheckpoint snapshots the store for a checkpoint that rotated
// the WAL to walSeq. Sealed segments without a persistent id yet (fresh
// seals, compaction rewrites) are assigned one here — ids are unique
// over the store's lifetime, which is what lets a segment file be
// written exactly once and garbage-collected by name. Callers must hold
// the store's external write lock.
func (s *SegStore) CaptureCheckpoint(walSeq uint64, plannerStats []byte) *CheckpointState {
	if s.nextSegID == 0 {
		s.nextSegID = 1
	}
	cs := &CheckpointState{
		Dims:         s.dims,
		SegSize:      s.segSize,
		WALSeq:       walSeq,
		PlannerStats: plannerStats,
	}
	for _, g := range s.segs {
		if !g.sealed {
			continue
		}
		if g.persistID == 0 {
			g.persistID = s.nextSegID
			s.nextSegID++
		}
		cs.Sealed = append(cs.Sealed, CheckpointSeg{
			ID:      g.persistID,
			Store:   g.Store,
			Deleted: g.deleted.Slice(),
		})
	}
	cs.Active = s.active().Clone()
	cs.NextSegID = s.nextSegID
	return cs
}

// WriteCheckpoint persists a captured checkpoint into dir. The manifest
// rename is the commit point; everything before it is invisible to
// recovery and everything after it (garbage collection of the previous
// checkpoint's files) is best-effort and idempotent.
func WriteCheckpoint(fs iofs.FS, dir string, cs *CheckpointState) error {
	if err := fs.MkdirAll(dir); err != nil {
		return err
	}
	// Make the directory's own entry durable in its parent — a freshly
	// created collection whose parent directory is never fsynced can
	// vanish wholesale in a power loss, fsynced contents and all.
	if err := fs.SyncDir(filepath.Dir(dir)); err != nil {
		return err
	}
	m := &Manifest{
		Dims:         cs.Dims,
		SegSize:      cs.SegSize,
		NextSegID:    cs.NextSegID,
		WALSeq:       cs.WALSeq,
		ActiveLen:    cs.Active.Len(),
		PlannerStats: cs.PlannerStats,
	}
	for _, sg := range cs.Sealed {
		name := filepath.Join(dir, SegFileName(sg.ID))
		if _, err := fs.Stat(name); err != nil {
			// First checkpoint naming this segment: write its file once, in
			// the column-major v2 layout recovery can memory-map. Tombstones
			// are deliberately excluded from the format — they keep
			// changing, and they belong to the manifest.
			if err := iofs.WriteFileAtomic(fs, name, sg.Store.WriteSegmentV2); err != nil {
				return err
			}
		}
		m.Segments = append(m.Segments, ManifestSegment{
			ID: sg.ID, Len: sg.Store.Len(), Format: SegFormatV2, Deleted: sg.Deleted,
		})
	}
	active := filepath.Join(dir, ActiveFileName(cs.WALSeq))
	if err := iofs.WriteFileAtomic(fs, active, cs.Active.Save); err != nil {
		return err
	}
	img := EncodeManifest(m)
	if err := iofs.WriteFileAtomic(fs, filepath.Join(dir, ManifestName), func(w io.Writer) error {
		_, werr := w.Write(img)
		return werr
	}); err != nil {
		return err
	}
	CleanDir(fs, dir, m)
	return nil
}

// CleanDir garbage-collects files the committed manifest no longer
// references: WALs older than the manifest's sequence, active
// checkpoints other than the current one, segment files of segments that
// compaction dropped, and stray .tmp files. Best-effort: errors are
// ignored, because every stale file is harmless until the next
// opportunity to delete it.
func CleanDir(fs iofs.FS, dir string, m *Manifest) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, len(m.Segments)+2)
	for _, sg := range m.Segments {
		live[SegFileName(sg.ID)] = true
	}
	live[ActiveFileName(m.WALSeq)] = true
	live[ManifestName] = true
	for _, name := range names {
		switch {
		case live[name]:
		case strings.HasSuffix(name, ".tmp"):
			_ = fs.Remove(filepath.Join(dir, name))
		case strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg"),
			strings.HasPrefix(name, "active-") && strings.HasSuffix(name, ".ckpt"):
			_ = fs.Remove(filepath.Join(dir, name))
		default:
			if seq, ok := ParseWALSeq(name); ok && seq < m.WALSeq {
				_ = fs.Remove(filepath.Join(dir, name))
			}
		}
	}
}

// RecoverOptions tunes RecoverDirOpts.
type RecoverOptions struct {
	// DisableMmap forces v2 sealed segments to be read into the heap even
	// when the filesystem can memory-map them. Mapping already degrades to
	// a heap read automatically when the filesystem does not implement
	// iofs.MapFS or the platform lacks mmap; this flag is the operator
	// override (bondd -mmap=false, BOND_NO_MMAP=1 in CI).
	DisableMmap bool
}

// RecoverDir loads the durable directory's committed checkpoint: the
// manifest, every sealed segment file it names (with the manifest's
// tombstones applied), and the active-segment checkpoint. The caller
// replays wal-<WALSeq>.log (and any later WALs a crashed checkpoint left
// behind) on top. A directory without a manifest returns ErrNoManifest.
//
// Sealed v2 segments are memory-mapped when the filesystem supports it:
// their columns alias the file's pages and fault in on first scan, so
// recovery's cost is O(manifest + synopses), not O(data). Legacy v1
// segment files are read into the heap and scheduled for re-persistence —
// their persistent id is cleared, so the next checkpoint writes them as
// fresh write-once v2 files and garbage-collects the old ones.
func RecoverDir(fs iofs.FS, dir string) (*SegStore, *Manifest, error) {
	return RecoverDirOpts(fs, dir, RecoverOptions{})
}

// RecoverDirOpts is RecoverDir with explicit options.
func RecoverDirOpts(fs iofs.FS, dir string, opts RecoverOptions) (*SegStore, *Manifest, error) {
	data, err := fs.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil, ErrNoManifest
		}
		return nil, nil, err
	}
	m, err := DecodeManifest(data)
	if err != nil {
		return nil, nil, err
	}
	s := &SegStore{dims: m.Dims, segSize: m.SegSize, nextSegID: m.NextSegID}
	mapper, canMap := fs.(iofs.MapFS)
	if opts.DisableMmap {
		canMap = false
	}
	base := 0
	for _, sg := range m.Segments {
		name := SegFileName(sg.ID)
		path := filepath.Join(dir, name)
		var (
			st     *Store
			mapped bool
		)
		if sg.Format == SegFormatV2 && canMap {
			if mb, merr := mapper.MapFile(path); merr == nil {
				st, err = MapSegmentV2(mb)
				if err != nil {
					_ = mapper.UnmapFile(mb)
					s.ReleaseMappings()
					return nil, nil, fmt.Errorf("segment %s: %w", name, err)
				}
				s.registerMapping(mapper, mb)
				mapped = true
			}
			// A map failure (unsupported platform, exotic filesystem) is
			// not corruption: fall through to the heap read, which will
			// surface any real I/O error itself.
		}
		if st == nil {
			b, rerr := fs.ReadFile(path)
			if rerr != nil {
				s.ReleaseMappings()
				return nil, nil, fmt.Errorf("%w: segment %s: %v", ErrCorrupt, name, rerr)
			}
			if sg.Format == SegFormatV2 {
				st, err = DecodeSegmentV2(b)
			} else {
				st, err = Load(bytes.NewReader(b))
			}
			if err != nil {
				s.ReleaseMappings()
				return nil, nil, fmt.Errorf("segment %s: %w", name, err)
			}
		}
		if st.Dims() != m.Dims || st.Len() != sg.Len || st.Live() != st.Len() {
			s.ReleaseMappings()
			return nil, nil, fmt.Errorf("%w: segment %s is %d×%d live %d, manifest wants %d×%d clean",
				ErrCorrupt, name, st.Len(), st.Dims(), st.Live(), sg.Len, m.Dims)
		}
		for _, id := range sg.Deleted {
			st.deleted.Set(id) // ids validated by DecodeManifest
		}
		// A legacy v1 file keeps serving this recovery from the heap, but
		// its persistent id is not carried forward: the next checkpoint
		// sees an unpersisted segment, assigns a fresh id, and writes it in
		// v2 — migration by the ordinary write-once path.
		persistID := sg.ID
		if sg.Format != SegFormatV2 {
			persistID = 0
		}
		s.segs = append(s.segs, &Segment{Store: st, sealed: true, persistID: persistID, mapped: mapped})
		s.bases = append(s.bases, base)
		base += st.Len()
	}
	activeName := ActiveFileName(m.WALSeq)
	ab, err := fs.ReadFile(filepath.Join(dir, activeName))
	if err != nil {
		s.ReleaseMappings()
		return nil, nil, fmt.Errorf("%w: active checkpoint %s: %v", ErrCorrupt, activeName, err)
	}
	ast, err := Load(bytes.NewReader(ab))
	if err != nil {
		s.ReleaseMappings()
		return nil, nil, fmt.Errorf("active checkpoint %s: %w", activeName, err)
	}
	if ast.Dims() != m.Dims || ast.Len() != m.ActiveLen {
		s.ReleaseMappings()
		return nil, nil, fmt.Errorf("%w: active checkpoint is %d×%d, manifest wants %d×%d",
			ErrCorrupt, ast.Len(), ast.Dims(), m.ActiveLen, m.Dims)
	}
	s.segs = append(s.segs, &Segment{Store: ast})
	s.bases = append(s.bases, base)
	s.plannerStats = m.PlannerStats
	return s, m, nil
}

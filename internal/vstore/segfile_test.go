package vstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"bond/internal/iofs"
)

func buildV2Store(t testing.TB, rng *rand.Rand, rows, dims int) *Store {
	t.Helper()
	st := New(dims)
	for i := 0; i < rows; i++ {
		st.Append(randVec(rng, dims))
	}
	return st
}

func encodeV2(t testing.TB, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSegmentV2(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func assertSameColumns(t *testing.T, label string, got, want *Store) {
	t.Helper()
	if got.Len() != want.Len() || got.Dims() != want.Dims() {
		t.Fatalf("%s: shape %d×%d, want %d×%d", label, got.Len(), got.Dims(), want.Len(), want.Dims())
	}
	for d := 0; d < want.Dims(); d++ {
		for i := 0; i < want.Len(); i++ {
			if g, w := got.columns[d][i], want.columns[d][i]; math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("%s: column %d row %d: %v vs %v", label, d, i, g, w)
			}
		}
		if got.dimMin[d] != want.dimMin[d] || got.dimMax[d] != want.dimMax[d] {
			t.Fatalf("%s: dim %d synopsis differs", label, d)
		}
	}
	for i := 0; i < want.Len(); i++ {
		if math.Float64bits(got.totals[i]) != math.Float64bits(want.totals[i]) {
			t.Fatalf("%s: totals row %d differ", label, i)
		}
	}
	if got.minVal != want.minVal || got.maxVal != want.maxVal {
		t.Fatalf("%s: value range differs", label)
	}
}

// TestSegmentV2RoundTrip pins the v2 codec: both the heap decoder
// (DecodeSegmentV2) and the mapping decoder (MapSegmentV2) reproduce the
// written store bit-for-bit — columns, totals, and every synopsis field.
func TestSegmentV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, shape := range []struct{ rows, dims int }{
		{0, 1}, {1, 1}, {7, 3}, {64, 5}, {100, 16},
	} {
		st := buildV2Store(t, rng, shape.rows, shape.dims)
		img := encodeV2(t, st)
		dec, err := DecodeSegmentV2(img)
		if err != nil {
			t.Fatalf("%d×%d decode: %v", shape.rows, shape.dims, err)
		}
		assertSameColumns(t, "decode", dec, st)
		mapped, err := MapSegmentV2(img)
		if err != nil {
			t.Fatalf("%d×%d map: %v", shape.rows, shape.dims, err)
		}
		assertSameColumns(t, "map", mapped, st)
	}
}

// TestSegmentV2ColumnsAlias pins the zero-copy contract mmap depends on:
// a mapped store's columns alias the image bytes, so scans read the
// file's pages directly instead of a heap copy.
func TestSegmentV2ColumnsAlias(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	st := buildV2Store(t, rng, 16, 3)
	img := encodeV2(t, st)
	mapped, err := MapSegmentV2(img)
	if err != nil {
		t.Fatal(err)
	}
	colOff, _ := segV2Layout(16, 3)
	binary.LittleEndian.PutUint64(img[colOff[0]:], math.Float64bits(42.5))
	if mapped.columns[0][0] != 42.5 {
		t.Fatal("mapped column does not alias the image")
	}
}

// TestSegmentV2CorruptFailsClosed sweeps corruption over a valid image:
// every single-byte flip in the header region must be rejected by both
// decoders (header CRC), any data flip must be rejected by the verifying
// heap decoder (data CRC), and truncation at every boundary of interest
// must error — never panic, never yield a store over corrupt bytes.
func TestSegmentV2CorruptFailsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	st := buildV2Store(t, rng, 9, 4)
	img := encodeV2(t, st)
	hdrSize := segV2HeaderSize(4)

	for i := 0; i < hdrSize; i++ {
		mut := append([]byte(nil), img...)
		mut[i] ^= 0x40
		if _, err := DecodeSegmentV2(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("header flip at %d: decode err = %v, want ErrCorrupt", i, err)
		}
		if _, err := MapSegmentV2(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("header flip at %d: map err = %v, want ErrCorrupt", i, err)
		}
	}

	// Data flips: the verifying decoder catches every one via the data
	// CRC. (The mapping decoder deliberately does not read data pages —
	// that contract is documented in the format comment.)
	colOff, fileSize := segV2Layout(9, 4)
	if fileSize != len(img) {
		t.Fatalf("layout says %d bytes, writer produced %d", fileSize, len(img))
	}
	for _, off := range []int{colOff[0], colOff[1] + 17, colOff[4], len(img) - 1} {
		mut := append([]byte(nil), img...)
		mut[off] ^= 0x01
		if _, err := DecodeSegmentV2(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("data flip at %d: err = %v, want ErrCorrupt", off, err)
		}
	}

	for _, cut := range []int{0, 4, len(segV2Magic), hdrSize - 1, hdrSize, colOff[0] + 8, len(img) - 1} {
		if _, err := DecodeSegmentV2(img[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: decode err = %v, want ErrCorrupt", cut, err)
		}
		if _, err := MapSegmentV2(img[:cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncate to %d: map err = %v, want ErrCorrupt", cut, err)
		}
	}

	// Trailing garbage changes the file size the offsets promised.
	if _, err := DecodeSegmentV2(append(append([]byte(nil), img...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("oversized image accepted")
	}
}

// TestRecoverDirCorruptSegV2FailsClosed pins fail-closed at the recovery
// layer: a checkpointed directory whose sealed v2 segment file is
// corrupted must refuse to open on both backings — the mapped path via
// the eagerly verified header, the heap path via either CRC.
func TestRecoverDirCorruptSegV2FailsClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	fs := iofs.NewMemFS()
	s := buildSegmented(t, rng, 64, 3, 32)
	cs := checkpointTo(t, fs, "col", s, 1)
	segName := filepath.Join("col", SegFileName(cs.Sealed[0].ID))
	orig, err := fs.ReadFile(segName)
	if err != nil {
		t.Fatal(err)
	}
	if !IsSegmentV2(orig) {
		t.Fatal("checkpoint did not write a v2 segment")
	}

	write := func(b []byte) {
		f, err := fs.Create(segName)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	hdrSize := segV2HeaderSize(3)
	for name, mut := range map[string][]byte{
		"header flip": func() []byte {
			b := append([]byte(nil), orig...)
			b[hdrSize/2] ^= 0xff
			return b
		}(),
		"truncated":   orig[:len(orig)/2],
		"wrong magic": append([]byte("BONDSG9\x00"), orig[8:]...),
	} {
		write(mut)
		for _, disable := range []bool{false, true} {
			if _, _, err := RecoverDirOpts(fs, "col", RecoverOptions{DisableMmap: disable}); err == nil {
				t.Fatalf("%s (disableMmap=%v): corrupt segment recovered", name, disable)
			}
		}
	}
	// A flipped data byte is only promised to the verifying heap path —
	// the mapped path skips the data CRC by design (see the format
	// comment), so it is asserted under DisableMmap alone.
	dataFlip := append([]byte(nil), orig...)
	dataFlip[len(orig)-3] ^= 0x01
	write(dataFlip)
	if _, _, err := RecoverDirOpts(fs, "col", RecoverOptions{DisableMmap: true}); err == nil {
		t.Fatal("data flip: corrupt segment recovered on the heap path")
	}
	write(orig)
	if _, _, err := RecoverDir(fs, "col"); err != nil {
		t.Fatalf("restored directory fails: %v", err)
	}
}

// segV2Remangle recomputes the header CRC after a deliberate header
// mutation, so the image reaches the validation the mutation targets
// instead of tripping on the checksum first.
func segV2Remangle(img []byte, dims int) []byte {
	hdrSize := segV2HeaderSize(dims)
	binary.LittleEndian.PutUint32(img[hdrSize-4:], crc32.ChecksumIEEE(img[:hdrSize-4]))
	return img
}

// TestSegmentV2RejectsMisalignedAndOverlappingOffsets targets the offset
// validation with header CRCs recomputed, so each bad offset table is
// seen by the structural checks themselves.
func TestSegmentV2RejectsMisalignedAndOverlappingOffsets(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const dims = 3
	st := buildV2Store(t, rng, 8, dims)
	img := encodeV2(t, st)
	offField := func(b []byte, c int) []byte { return b[48+16*dims+8*c:] }

	mut := append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(offField(mut, 0), binary.LittleEndian.Uint64(offField(mut, 0))+8)
	if _, err := DecodeSegmentV2(segV2Remangle(mut, dims)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misaligned column offset: %v", err)
	}

	mut = append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(offField(mut, 1), binary.LittleEndian.Uint64(offField(mut, 0)))
	if _, err := DecodeSegmentV2(segV2Remangle(mut, dims)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overlapping columns: %v", err)
	}

	mut = append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(offField(mut, dims), uint64(len(img))+segV2Align)
	if _, err := DecodeSegmentV2(segV2Remangle(mut, dims)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("column past EOF: %v", err)
	}

	// An offset pointing into the header would let column writes reach
	// validated metadata on a read-write mapping.
	mut = append([]byte(nil), img...)
	binary.LittleEndian.PutUint64(offField(mut, 0), 0)
	if _, err := DecodeSegmentV2(segV2Remangle(mut, dims)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("column inside header: %v", err)
	}
}

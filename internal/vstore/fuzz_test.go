package vstore

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedStore renders a small valid flat-store image.
func fuzzSeedStore(tb testing.TB) []byte {
	st := New(3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		st.Append(randVec(rng, 3))
	}
	st.Delete(4)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedManifest renders a small valid manifest image.
func fuzzSeedManifest() []byte {
	return EncodeManifest(&Manifest{
		Dims:         3,
		SegSize:      32,
		NextSegID:    4,
		WALSeq:       2,
		ActiveLen:    5,
		PlannerStats: []byte{1, 2, 3},
		Segments: []ManifestSegment{
			{ID: 1, Len: 32, Format: SegFormatV2, Deleted: []int{3, 31}},
			{ID: 3, Len: 32, Format: SegFormatV1},
		},
	})
}

// FuzzLoadStore feeds arbitrary images to the flat-store loader —
// recovery reads sealed segment files and active checkpoints through it,
// so it must reject malformed input with an error, never panic, and
// never size an allocation from an unvalidated header field.
func FuzzLoadStore(f *testing.F) {
	valid := fuzzSeedStore(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x80
	f.Add(flipped)
	f.Add([]byte("BONDSTR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data))
		if err == nil {
			// Accepted input must round-trip.
			var buf bytes.Buffer
			if serr := st.Save(&buf); serr != nil {
				t.Fatalf("accepted store fails to re-save: %v", serr)
			}
		}
	})
}

// FuzzDecodeManifest feeds arbitrary images to the manifest decoder with
// the same no-panic, no-over-allocation contract.
func FuzzDecodeManifest(f *testing.F) {
	valid := fuzzSeedManifest()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("BONDMAN1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err == nil {
			// Accepted manifests round-trip semantically: re-encoding in
			// the current version and decoding again reproduces the same
			// manifest. (Byte-inverse only holds for current-version
			// images — a version-1 image legitimately re-encodes as
			// version 2 with explicit per-segment formats.)
			img := EncodeManifest(m)
			m2, rerr := DecodeManifest(img)
			if rerr != nil {
				t.Fatalf("re-encoded manifest rejected: %v", rerr)
			}
			if !bytes.Equal(EncodeManifest(m2), img) {
				t.Fatal("manifest re-encode not stable")
			}
		}
	})
}

// fuzzSeedSegV2 renders a small valid v2 column-major segment image.
func fuzzSeedSegV2(tb testing.TB) []byte {
	st := New(3)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20; i++ {
		st.Append(randVec(rng, 3))
	}
	var buf bytes.Buffer
	if err := st.WriteSegmentV2(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSegV2Seeds returns the interesting corrupt variants of the valid v2
// image alongside it: a truncation inside the header, a data byte flip
// (bad data CRC behind a valid header), and a misaligned column offset
// with the header CRC recomputed so decoding reaches the alignment check.
func fuzzSegV2Seeds(tb testing.TB) map[string][]byte {
	valid := fuzzSeedSegV2(tb)
	const dims = 3
	hdrSize := segV2HeaderSize(dims)

	badCRC := append([]byte(nil), valid...)
	badCRC[len(badCRC)-5] ^= 0x01

	misaligned := append([]byte(nil), valid...)
	off := 48 + 16*dims
	binary.LittleEndian.PutUint64(misaligned[off:],
		binary.LittleEndian.Uint64(misaligned[off:])+8)
	segV2Remangle(misaligned, dims)

	return map[string][]byte{
		"seed-valid":      valid,
		"seed-torn":       valid[:hdrSize-7],
		"seed-badcrc":     badCRC,
		"seed-misaligned": misaligned,
	}
}

// FuzzDecodeSegmentV2 feeds arbitrary images to both v2 segment decoders.
// Recovery trusts these paths with raw file (and mapping) bytes, so they
// must reject malformed input with an error, never panic, and never
// expose unvalidated bytes as columns. An accepted image must round-trip
// through the writer.
func FuzzDecodeSegmentV2(f *testing.F) {
	for _, seed := range fuzzSegV2Seeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSegmentV2(data)
		if err == nil {
			var buf bytes.Buffer
			if serr := st.WriteSegmentV2(&buf); serr != nil {
				t.Fatalf("accepted segment fails to re-encode: %v", serr)
			}
			if _, rerr := DecodeSegmentV2(buf.Bytes()); rerr != nil {
				t.Fatalf("re-encoded segment rejected: %v", rerr)
			}
		}
		// The mapping decoder shares the structural validation but skips
		// the data CRC; it must uphold the same no-panic contract.
		_, _ = MapSegmentV2(data)
	})
}

// FuzzLoadSegmented covers the legacy v1/v2 whole-store loader that
// LoadAnyBytes dispatches to for pre-durability snapshot files.
func FuzzLoadSegmented(f *testing.F) {
	rng := rand.New(rand.NewSource(9))
	s := buildSegmentedFuzz(f, rng)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte("BONDSEG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = LoadAnyBytes(data)
	})
}

func buildSegmentedFuzz(tb testing.TB, rng *rand.Rand) *SegStore {
	s := NewSegmented(3, 8)
	for i := 0; i < 20; i++ {
		s.Append(randVec(rng, 3))
	}
	s.Delete(2)
	return s
}

// corpusEntry renders one seed in the go-fuzz corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// TestFuzzCorpusUpToDate regenerates the checked-in seed corpora when
// VSTORE_REGEN_CORPUS=1 and otherwise verifies they are present.
func TestFuzzCorpusUpToDate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var segBuf bytes.Buffer
	if err := buildSegmentedFuzz(t, rng).Save(&segBuf); err != nil {
		t.Fatal(err)
	}
	twoSeeds := func(data []byte) map[string][]byte {
		return map[string][]byte{
			"seed-valid": data,
			"seed-torn":  data[:len(data)-3],
		}
	}
	corpora := map[string]map[string][]byte{
		"FuzzLoadStore":       twoSeeds(fuzzSeedStore(t)),
		"FuzzDecodeManifest":  twoSeeds(fuzzSeedManifest()),
		"FuzzLoadSegmented":   twoSeeds(segBuf.Bytes()),
		"FuzzDecodeSegmentV2": fuzzSegV2Seeds(t),
	}
	for fuzzName, seeds := range corpora {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if os.Getenv("VSTORE_REGEN_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for name, data := range seeds {
				if err := os.WriteFile(filepath.Join(dir, name), corpusEntry(data), 0o644); err != nil {
					t.Fatal(err)
				}
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) < len(seeds) {
			t.Fatalf("seed corpus missing for %s (run with VSTORE_REGEN_CORPUS=1): %v", fuzzName, err)
		}
	}
}

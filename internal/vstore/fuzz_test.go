package vstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeedStore renders a small valid flat-store image.
func fuzzSeedStore(tb testing.TB) []byte {
	st := New(3)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ {
		st.Append(randVec(rng, 3))
	}
	st.Delete(4)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// fuzzSeedManifest renders a small valid manifest image.
func fuzzSeedManifest() []byte {
	return EncodeManifest(&Manifest{
		Dims:         3,
		SegSize:      32,
		NextSegID:    4,
		WALSeq:       2,
		ActiveLen:    5,
		PlannerStats: []byte{1, 2, 3},
		Segments: []ManifestSegment{
			{ID: 1, Len: 32, Deleted: []int{3, 31}},
			{ID: 3, Len: 32},
		},
	})
}

// FuzzLoadStore feeds arbitrary images to the flat-store loader —
// recovery reads sealed segment files and active checkpoints through it,
// so it must reject malformed input with an error, never panic, and
// never size an allocation from an unvalidated header field.
func FuzzLoadStore(f *testing.F) {
	valid := fuzzSeedStore(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	flipped := append([]byte(nil), valid...)
	flipped[11] ^= 0x80
	f.Add(flipped)
	f.Add([]byte("BONDSTR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data))
		if err == nil {
			// Accepted input must round-trip.
			var buf bytes.Buffer
			if serr := st.Save(&buf); serr != nil {
				t.Fatalf("accepted store fails to re-save: %v", serr)
			}
		}
	})
}

// FuzzDecodeManifest feeds arbitrary images to the manifest decoder with
// the same no-panic, no-over-allocation contract.
func FuzzDecodeManifest(f *testing.F) {
	valid := fuzzSeedManifest()
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x01
	f.Add(flipped)
	f.Add([]byte("BONDMAN1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeManifest(data)
		if err == nil {
			// Accepted manifests re-encode to the same image (decode and
			// encode are inverses on the accepted set).
			if !bytes.Equal(EncodeManifest(m), data) {
				t.Fatal("manifest decode/encode not inverse")
			}
		}
	})
}

// FuzzLoadSegmented covers the legacy v1/v2 whole-store loader that
// LoadAnyBytes dispatches to for pre-durability snapshot files.
func FuzzLoadSegmented(f *testing.F) {
	rng := rand.New(rand.NewSource(9))
	s := buildSegmentedFuzz(f, rng)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Add([]byte("BONDSEG1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = LoadAnyBytes(data)
	})
}

func buildSegmentedFuzz(tb testing.TB, rng *rand.Rand) *SegStore {
	s := NewSegmented(3, 8)
	for i := 0; i < 20; i++ {
		s.Append(randVec(rng, 3))
	}
	s.Delete(2)
	return s
}

// corpusEntry renders one seed in the go-fuzz corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// TestFuzzCorpusUpToDate regenerates the checked-in seed corpora when
// VSTORE_REGEN_CORPUS=1 and otherwise verifies they are present.
func TestFuzzCorpusUpToDate(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var segBuf bytes.Buffer
	if err := buildSegmentedFuzz(t, rng).Save(&segBuf); err != nil {
		t.Fatal(err)
	}
	corpora := map[string][]byte{
		"FuzzLoadStore":      fuzzSeedStore(t),
		"FuzzDecodeManifest": fuzzSeedManifest(),
		"FuzzLoadSegmented":  segBuf.Bytes(),
	}
	for fuzzName, data := range corpora {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if os.Getenv("VSTORE_REGEN_CORPUS") == "1" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "seed-valid"), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, "seed-torn"), corpusEntry(data[:len(data)-3]), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("seed corpus missing for %s (run with VSTORE_REGEN_CORPUS=1): %v", fuzzName, err)
		}
	}
}

package vstore

// This file implements the v2 sealed-segment encoding: the mmap-native,
// column-major on-disk layout sealed segment files (seg-<id>.seg) are
// written in since the memory-mapped storage PR. The design goal is that
// the search kernels read the file's bytes directly — a mapped segment's
// Column(d) is a []float64 aliasing the mapping — so opening a collection
// costs O(manifest) and the operating system pages columns in on first
// touch, instead of the v1 layout's parse-everything-into-heap load.
//
//	offset                      content
//	0                           magic "BONDSG2\x00"
//	8                           u32 layout version (currently 1)
//	12                          u32 reserved (0)
//	16                          u64 rows
//	24                          u64 dims
//	32                          f64 minVal, f64 maxVal
//	48                          f64 dimMin[dims], f64 dimMax[dims]
//	48+16·dims                  u64 colOff[dims+1]  (dims columns, then totals)
//	…                           u32 dataCRC   (CRC32 over every column payload)
//	…                           u32 headerCRC (CRC32 over all preceding bytes)
//	colOff[0] (64-byte aligned) column 0: rows little-endian float64
//	colOff[d]                   column d, each 64-byte aligned
//	colOff[dims]                totals column
//
// All integers and floats are little-endian. Every column offset is
// 64-byte aligned so a page-aligned mapping gives cache-line-aligned,
// 8-byte-aligned float64 slices the SIMD kernels can load directly. The
// per-dimension synopsis lives in the header, so synopses (the planner's
// only eager read) never fault a data page in.
//
// Tombstones are deliberately absent: they keep changing and belong to
// the manifest, which is what lets the file be written exactly once and
// stay byte-stable forever (the PR 5 write-once contract).
//
// Integrity is two-tier, matching the two read paths. The header CRC
// covers everything the loader trusts eagerly (shape, synopsis, offsets)
// and is always verified — a corrupt header fails closed before any
// column is exposed. The data CRC covers the column payload and is
// verified by the read-into-heap path (which touches every byte anyway);
// the mmap path skips it, because verifying would fault in the whole
// file and defeat the O(manifest) open. That trade — eager metadata
// validation, lazy data faulting — is the standard mmap-database
// contract, and the checkpoint writer fsyncs the payload before the
// manifest commits, so a committed file's bytes are the written ones.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"unsafe"

	"bond/internal/bitmap"
)

const (
	segV2Magic = "BONDSG2\x00"
	segV2Ver   = uint32(1)
	// segV2Align is the alignment of every column offset: one cache line,
	// so mapped columns are both 8-byte aligned (float64 loads) and
	// cache-line aligned (no split lines at column starts).
	segV2Align = 64
	// maxSegRows bounds a plausible single-segment row count.
	maxSegRows = 1 << 31
)

// segV2HeaderSize returns the byte length of the header (everything
// before the first column), excluding alignment padding.
func segV2HeaderSize(dims int) int {
	return 8 + 4 + 4 + 8 + 8 + // magic, version, reserved, rows, dims
		16 + 16*dims + // minVal/maxVal + dimMin/dimMax
		8*(dims+1) + // column offsets
		4 + 4 // dataCRC, headerCRC
}

func alignUp(n, a int) int { return (n + a - 1) / a * a }

// segV2Layout computes the column offsets for a rows×dims segment: the
// header padded up to 64, then each column padded up to 64.
func segV2Layout(rows, dims int) (colOff []int, fileSize int) {
	colOff = make([]int, dims+1)
	off := alignUp(segV2HeaderSize(dims), segV2Align)
	colBytes := rows * 8
	for c := 0; c <= dims; c++ {
		colOff[c] = off
		off += alignUp(colBytes, segV2Align)
	}
	// The file ends where the totals column's data does — the last
	// column needs no tail padding.
	return colOff, colOff[dims] + colBytes
}

// IsSegmentV2 reports whether the image starts with the v2 magic — how
// the loader dispatches between the v1 flat-store stream and the
// column-major layout.
func IsSegmentV2(data []byte) bool {
	return len(data) >= len(segV2Magic) && string(data[:len(segV2Magic)]) == segV2Magic
}

// WriteSegmentV2 writes the store's columns in the v2 column-major
// layout. Tombstones are not written (they belong to the manifest); the
// store's synopsis fields go into the header verbatim.
func (s *Store) WriteSegmentV2(w io.Writer) error {
	colOff, _ := segV2Layout(s.n, s.dims)

	// Data CRC first: it is part of the header, so the payload is hashed
	// before any header byte is emitted.
	dataCRC := crc32.NewIEEE()
	colBits := func(sink io.Writer, col []float64) error {
		var buf [8]byte
		for _, x := range col {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			if _, err := sink.Write(buf[:]); err != nil {
				return err
			}
		}
		return nil
	}
	for d := 0; d < s.dims; d++ {
		if err := colBits(dataCRC, s.columns[d]); err != nil {
			return err
		}
	}
	if err := colBits(dataCRC, s.totals); err != nil {
		return err
	}

	hdr := make([]byte, 0, segV2HeaderSize(s.dims))
	hdr = append(hdr, segV2Magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, segV2Ver)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.n))
	hdr = binary.LittleEndian.AppendUint64(hdr, uint64(s.dims))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(s.minVal))
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(s.maxVal))
	for d := 0; d < s.dims; d++ {
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(s.dimMin[d]))
	}
	for d := 0; d < s.dims; d++ {
		hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(s.dimMax[d]))
	}
	for _, off := range colOff {
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(off))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, dataCRC.Sum32())
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))
	if _, err := w.Write(hdr); err != nil {
		return err
	}

	pad := make([]byte, segV2Align)
	written := len(hdr)
	emitPad := func(upto int) error {
		for written < upto {
			n := upto - written
			if n > len(pad) {
				n = len(pad)
			}
			m, err := w.Write(pad[:n])
			written += m
			if err != nil {
				return err
			}
		}
		return nil
	}
	writeCol := func(c int, col []float64) error {
		if err := emitPad(colOff[c]); err != nil {
			return err
		}
		cw := countingWriter{w: w}
		if err := colBits(&cw, col); err != nil {
			return err
		}
		written += cw.n
		return nil
	}
	for d := 0; d < s.dims; d++ {
		if err := writeCol(d, s.columns[d]); err != nil {
			return err
		}
	}
	return writeCol(s.dims, s.totals)
}

type countingWriter struct {
	w io.Writer
	n int
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += n
	return n, err
}

// DecodeSegmentV2 parses a v2 segment image read fully into the heap,
// verifying both the header and the data CRC, and returns a store whose
// columns alias the image (one copy total: the read itself). A malformed
// or corrupt image errors with ErrCorrupt; it never panics and never
// exposes unvalidated bytes as columns.
func DecodeSegmentV2(data []byte) (*Store, error) {
	return decodeSegmentV2(data, true)
}

// MapSegmentV2 builds a store over a memory-mapped v2 segment image:
// header and synopsis are validated eagerly (header CRC), columns alias
// the mapping and fault in on first scan. The data CRC is NOT verified —
// that would page the whole file in (see the format comment).
func MapSegmentV2(data []byte) (*Store, error) {
	return decodeSegmentV2(data, false)
}

func decodeSegmentV2(data []byte, verifyData bool) (*Store, error) {
	if !IsSegmentV2(data) {
		return nil, fmt.Errorf("%w: bad v2 segment magic", ErrCorrupt)
	}
	if len(data) < segV2HeaderSize(1) {
		return nil, fmt.Errorf("%w: %d-byte v2 segment", ErrCorrupt, len(data))
	}
	ver := binary.LittleEndian.Uint32(data[8:])
	if ver != segV2Ver {
		return nil, fmt.Errorf("%w: unsupported v2 segment layout %d", ErrCorrupt, ver)
	}
	rows64 := binary.LittleEndian.Uint64(data[16:])
	dims64 := binary.LittleEndian.Uint64(data[24:])
	if dims64 < 1 || dims64 > 1<<20 || rows64 > maxSegRows {
		return nil, fmt.Errorf("%w: implausible v2 segment rows=%d dims=%d", ErrCorrupt, rows64, dims64)
	}
	rows, dims := int(rows64), int(dims64)
	hdrSize := segV2HeaderSize(dims)
	if len(data) < hdrSize {
		return nil, fmt.Errorf("%w: v2 segment truncated inside header (%d < %d bytes)",
			ErrCorrupt, len(data), hdrSize)
	}
	// Header CRC covers everything before itself; validate before any
	// header field beyond the lengths just used to locate it is trusted.
	wantHdr := binary.LittleEndian.Uint32(data[hdrSize-4:])
	if crc32.ChecksumIEEE(data[:hdrSize-4]) != wantHdr {
		return nil, fmt.Errorf("%w: v2 segment header checksum mismatch", ErrCorrupt)
	}

	off := 32
	readF64 := func() float64 {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		return x
	}
	s := New(dims)
	s.n = rows
	s.minVal = readF64()
	s.maxVal = readF64()
	for d := 0; d < dims; d++ {
		s.dimMin[d] = readF64()
	}
	for d := 0; d < dims; d++ {
		s.dimMax[d] = readF64()
	}
	colBytes := rows * 8
	colOff := make([]int, dims+1)
	for c := range colOff {
		o := binary.LittleEndian.Uint64(data[off:])
		off += 8
		if o%segV2Align != 0 {
			return nil, fmt.Errorf("%w: v2 segment column %d at misaligned offset %d", ErrCorrupt, c, o)
		}
		if o < uint64(hdrSize) || o > uint64(len(data)) || uint64(len(data))-o < uint64(colBytes) {
			return nil, fmt.Errorf("%w: v2 segment column %d outside file (offset %d of %d bytes)",
				ErrCorrupt, c, o, len(data))
		}
		if c > 0 && o < uint64(colOff[c-1]+colBytes) {
			return nil, fmt.Errorf("%w: v2 segment column %d overlaps column %d", ErrCorrupt, c, c-1)
		}
		colOff[c] = int(o)
	}
	if got, want := len(data), colOff[dims]+colBytes; got != want {
		return nil, fmt.Errorf("%w: v2 segment is %d bytes, layout wants %d", ErrCorrupt, got, want)
	}
	dataCRC := binary.LittleEndian.Uint32(data[hdrSize-8:])
	if verifyData {
		crc := crc32.NewIEEE()
		for _, o := range colOff {
			crc.Write(data[o : o+colBytes])
		}
		if crc.Sum32() != dataCRC {
			return nil, fmt.Errorf("%w: v2 segment data checksum mismatch", ErrCorrupt)
		}
	}

	for c, o := range colOff {
		col := aliasFloats(data, o, rows)
		if c < dims {
			s.columns[c] = col
		} else {
			s.totals = col
		}
	}
	s.deleted = bitmap.New(rows)
	return s, nil
}

// aliasFloats reinterprets rows little-endian float64 starting at
// data[off] as a []float64 without copying. The offset is 64-aligned and
// Go heap/mmap allocations are at least 8-aligned, so the cast is safe;
// the one theoretical exception (a misaligned base pointer) falls back
// to a copy so behavior stays correct everywhere.
func aliasFloats(data []byte, off, rows int) []float64 {
	if rows == 0 {
		return nil
	}
	p := unsafe.Pointer(&data[off])
	if uintptr(p)%8 != 0 {
		col := make([]float64, rows)
		for i := range col {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off+i*8:]))
		}
		return col
	}
	return unsafe.Slice((*float64)(p), rows)
}

package vstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"bond/internal/iofs"
	"bond/internal/quant"
)

// DefaultSegmentSize is the seal threshold of a segmented store: once the
// active segment holds this many vectors it is frozen and a fresh active
// segment takes over.
const DefaultSegmentSize = 4096

// Segment is one horizontal fragment of a segmented store: a flat Store
// plus a sealed flag and lazily built 8-bit compressed fragments.
//
// A sealed segment's columns and totals never change again (deletes are
// only bitmap marks, compaction replaces the whole Segment), so its codes
// are built at most once and shared by every subsequent compressed search.
type Segment struct {
	*Store
	sealed    bool
	codesOnce sync.Once
	codes     *QuantStore
	rowOnce   sync.Once
	rowCodes  []uint8

	// persistID is the segment's durable identity: assigned once (by the
	// first checkpoint that captures the segment, or by recovery) and
	// never reused, it names the write-once seg-<id>.seg file holding the
	// segment's columns. 0 means not yet persisted.
	persistID uint64

	// mapped reports that the segment's columns alias a memory-mapped
	// file (recovery mapped its v2 seg file): they cost no heap, fault in
	// on first scan, and become invalid when the store's mappings are
	// released.
	mapped bool

	// scans counts completed column sweeps over a mapped segment: the
	// cost model uses it to tell a cold, page-faulting first scan from
	// steady-state reads of resident pages.
	scans atomic.Uint64
}

// Sealed reports whether the segment is frozen (immutable columns).
func (g *Segment) Sealed() bool { return g.sealed }

// Mapped reports whether the segment's columns alias a memory-mapped
// segment file rather than heap memory.
func (g *Segment) Mapped() bool { return g.mapped }

// NoteScan records one completed column sweep and reports whether the
// segment was cold — mapped and never swept before, meaning the sweep
// paid page faults no later sweep of resident pages will. Unmapped
// segments are never cold. Safe for concurrent use.
func (g *Segment) NoteScan() (cold bool) {
	if !g.mapped {
		return false
	}
	return g.scans.Add(1) == 1
}

// Codes returns the segment's 8-bit compressed fragments, building them on
// first use with the given quantizer. Only sealed segments may be encoded
// (an active segment's columns still move); the first caller's quantizer
// wins. Safe for concurrent use.
func (g *Segment) Codes(q *quant.Quantizer) *QuantStore {
	if !g.sealed {
		panic("vstore: Codes on unsealed segment")
	}
	g.codesOnce.Do(func() { g.codes = g.Store.Quantize(q) })
	return g.codes
}

// RowCodes returns the segment's 8-bit codes transposed into the row-major
// layout a VA-File scans, built once from the column codes and cached for
// every subsequent VA-File access path. The returned quantizer is the one
// the codes were built with (the first caller's, as in Codes). Safe for
// concurrent use; panics on an unsealed segment.
func (g *Segment) RowCodes(q *quant.Quantizer) (*quant.Quantizer, []uint8) {
	qs := g.Codes(q)
	g.rowOnce.Do(func() {
		dims := g.Dims()
		rc := make([]uint8, g.Len()*dims)
		for d, col := range qs.Codes {
			for id, c := range col {
				rc[id*dims+d] = c
			}
		}
		g.rowCodes = rc
	})
	return qs.Q, g.rowCodes
}

// SegStore is a segmented vertically decomposed collection: a list of
// immutable sealed segments followed by one mutable active segment.
// Global object identifiers are positional across the segment list in
// order, so segment i covers ids [base_i, base_i+len_i).
//
// Appends go to the active segment, which seals at the size threshold.
// Deletes stay bitmap-marked inside their segment until Compact rewrites
// segments whose tombstone ratio crosses a threshold. SegStore itself is
// not safe for concurrent use; bond.Collection adds the locking contract.
type SegStore struct {
	dims    int
	segSize int
	segs    []*Segment // invariant: segs[len-1] is the active segment
	bases   []int      // bases[i] = global id of segs[i]'s local id 0

	// plannerStats is the opaque per-collection statistics block of the
	// cost-based query planner, persisted alongside the segments so the
	// planner's learned coefficients survive a restart. The storage layer
	// does not interpret it.
	plannerStats []byte

	// nextSegID is the next unassigned persistent segment id (see
	// Segment.persistID); 0 until the first checkpoint or recovery.
	nextSegID uint64

	// mapper and mappings are the memory-mapped segment files recovery
	// opened: the mappings outlive the segments they back (compaction may
	// drop a segment while a snapshot still reads its columns), so they
	// are owned here and released only by ReleaseMappings — the
	// collection's Close. released latches so late readers can be refused
	// instead of touching unmapped pages.
	mapper   iofs.MapFS
	mappings [][]byte
	released bool
}

// NewSegmented returns an empty segmented store. segSize <= 0 selects
// DefaultSegmentSize. It panics if dims < 1.
func NewSegmented(dims, segSize int) *SegStore {
	if segSize <= 0 {
		segSize = DefaultSegmentSize
	}
	s := &SegStore{dims: dims, segSize: segSize}
	s.segs = []*Segment{{Store: New(dims)}}
	s.bases = []int{0}
	return s
}

// SegmentedFromVectors builds a segmented store from a row-major
// collection. The partial tail segment is sealed too — a bulk load is a
// read-mostly signal, and sealing gives the tail synopses and codes
// immediately (later appends open a fresh active segment). It panics on
// empty or ragged input.
func SegmentedFromVectors(vectors [][]float64, segSize int) *SegStore {
	if len(vectors) == 0 {
		panic("vstore: SegmentedFromVectors on empty collection")
	}
	s := NewSegmented(len(vectors[0]), segSize)
	s.AppendBatch(vectors)
	s.SealActive()
	return s
}

// Dims returns the dimensionality.
func (s *SegStore) Dims() int { return s.dims }

// SegmentSize returns the seal threshold.
func (s *SegStore) SegmentSize() int { return s.segSize }

// NumSegments returns the number of segments (sealed plus active).
func (s *SegStore) NumSegments() int { return len(s.segs) }

// Segments returns the segment list in id order (the last one active).
// The returned slice is a copy; the segments themselves are shared.
func (s *SegStore) Segments() []*Segment {
	return append([]*Segment(nil), s.segs...)
}

// Bases returns the global id of each segment's first slot.
func (s *SegStore) Bases() []int { return append([]int(nil), s.bases...) }

// Len returns the total number of slots, including delete-marked ones.
func (s *SegStore) Len() int {
	last := len(s.segs) - 1
	return s.bases[last] + s.segs[last].Len()
}

// Live returns the number of non-deleted vectors.
func (s *SegStore) Live() int {
	live := 0
	for _, g := range s.segs {
		live += g.Live()
	}
	return live
}

// registerMapping records a memory mapping backing one or more of the
// store's segments, to be released by ReleaseMappings.
func (s *SegStore) registerMapping(mapper iofs.MapFS, b []byte) {
	s.mapper = mapper
	s.mappings = append(s.mappings, b)
}

// MappedBytes returns the total size of the memory-mapped segment files
// backing the store — bytes that live in the page cache, not the Go heap.
func (s *SegStore) MappedBytes() int64 {
	var n int64
	for _, b := range s.mappings {
		n += int64(len(b))
	}
	return n
}

// ReleaseMappings unmaps every memory-mapped segment file and latches the
// store as released: the columns of mapped segments are invalid from here
// on, and MappingsReleased reports true so readers can refuse instead of
// faulting. Idempotent; a store with no mappings stays readable.
func (s *SegStore) ReleaseMappings() error {
	if len(s.mappings) == 0 {
		return nil
	}
	var first error
	for _, b := range s.mappings {
		if err := s.mapper.UnmapFile(b); err != nil && first == nil {
			first = err
		}
	}
	s.mappings = nil
	s.released = true
	return first
}

// MappingsReleased reports whether ReleaseMappings dropped mappings some
// segments' columns aliased — after which reading them is invalid.
func (s *SegStore) MappingsReleased() bool { return s.released }

// ValueRange returns the smallest and largest coefficient over every
// segment. An empty store returns (+Inf, −Inf).
func (s *SegStore) ValueRange() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, g := range s.segs {
		glo, ghi := g.ValueRange()
		lo = math.Min(lo, glo)
		hi = math.Max(hi, ghi)
	}
	return lo, hi
}

// active returns the mutable tail segment.
func (s *SegStore) active() *Segment { return s.segs[len(s.segs)-1] }

// seal freezes the active segment and starts a fresh one.
func (s *SegStore) seal() {
	act := s.active()
	act.sealed = true
	s.bases = append(s.bases, s.bases[len(s.bases)-1]+act.Len())
	s.segs = append(s.segs, &Segment{Store: New(s.dims)})
}

// SealActive force-seals the current active segment (a no-op when it is
// empty), e.g. to fix a layout before benchmarking.
func (s *SegStore) SealActive() {
	if s.active().Len() > 0 {
		s.seal()
	}
}

// Append adds a vector and returns its global id. A full active segment
// seals immediately (leaving a fresh empty active), so read-only phases
// after a bulk load get sealed segments — synopses and codes included —
// without waiting for one more write.
func (s *SegStore) Append(v []float64) int {
	last := len(s.segs) - 1
	id := s.bases[last] + s.segs[last].Append(v)
	if s.active().Len() >= s.segSize {
		s.seal()
	}
	return id
}

// AppendBatch adds many vectors, spilling across segment boundaries as the
// active segment fills (full segments seal immediately, as in Append). It
// returns the global id of the first vector.
func (s *SegStore) AppendBatch(vectors [][]float64) int {
	first := s.Len()
	for len(vectors) > 0 {
		room := s.segSize - s.active().Len()
		chunk := vectors
		if len(chunk) > room {
			chunk = vectors[:room]
		}
		s.active().AppendBatch(chunk)
		vectors = vectors[len(chunk):]
		if s.active().Len() >= s.segSize {
			s.seal()
		}
	}
	return first
}

// locate maps a global id to its segment index and local id. It panics on
// a bad id.
func (s *SegStore) locate(id int) (seg, local int) {
	if id < 0 || id >= s.Len() {
		panic(fmt.Sprintf("vstore: id %d outside [0,%d)", id, s.Len()))
	}
	// First segment whose base exceeds id, minus one.
	seg = sort.SearchInts(s.bases, id+1) - 1
	return seg, id - s.bases[seg]
}

// Row reconstructs the vector with global id.
func (s *SegStore) Row(id int) []float64 {
	g, local := s.locate(id)
	return s.segs[g].Row(local)
}

// Delete marks the vector with global id as deleted.
func (s *SegStore) Delete(id int) {
	g, local := s.locate(id)
	s.segs[g].Delete(local)
}

// IsDeleted reports whether the vector with global id carries a delete mark.
func (s *SegStore) IsDeleted(id int) bool {
	g, local := s.locate(id)
	return s.segs[g].IsDeleted(local)
}

// Compact physically removes delete-marked vectors from every segment
// whose tombstone ratio is at least minRatio (so cold, barely-touched
// segments are never rewritten), and drops sealed segments that end up
// empty. It returns the old-global-id → new-global-id mapping (−1 for
// removed vectors). minRatio 0 rewrites every segment with at least one
// tombstone — the seed's full Reorganize behavior.
func (s *SegStore) Compact(minRatio float64) []int {
	mapping := make([]int, s.Len())
	var (
		newSegs  []*Segment
		newBases []int
		newBase  int
	)
	for i, g := range s.segs {
		base := s.bases[i]
		dead := g.Len() - g.Live()
		rewrite := dead > 0 && float64(dead) >= minRatio*float64(g.Len())
		switch {
		case rewrite && g.sealed:
			ng, local := compactSealed(g)
			for old, nw := range local {
				if nw < 0 {
					mapping[base+old] = -1
				} else {
					mapping[base+old] = newBase + nw
				}
			}
			g = ng
		case rewrite:
			local := g.Reorganize()
			for old, nw := range local {
				if nw < 0 {
					mapping[base+old] = -1
				} else {
					mapping[base+old] = newBase + nw
				}
			}
		default:
			for j := 0; j < g.Len(); j++ {
				mapping[base+j] = newBase + j
			}
		}
		if g.sealed && g.Len() == 0 {
			continue // fully dead sealed segment: drop it
		}
		newSegs = append(newSegs, g)
		newBases = append(newBases, newBase)
		newBase += g.Len()
	}
	if len(newSegs) == 0 || newSegs[len(newSegs)-1].sealed {
		newSegs = append(newSegs, &Segment{Store: New(s.dims)})
		newBases = append(newBases, newBase)
	}
	s.segs, s.bases = newSegs, newBases
	return mapping
}

// compactSealed builds a tombstone-free replacement for a sealed segment
// (the original is left untouched so in-flight snapshot readers stay
// valid) and returns it with the local old-id → new-id mapping.
func compactSealed(g *Segment) (*Segment, []int) {
	live := g.LiveIDs()
	ns := New(g.Dims())
	for d := 0; d < g.Dims(); d++ {
		src := g.Column(d)
		col := make([]float64, len(live))
		for j, id := range live {
			col[j] = src[id]
			ns.observe(d, src[id])
		}
		ns.columns[d] = col
	}
	totals := make([]float64, len(live))
	src := g.Totals()
	for j, id := range live {
		totals[j] = src[id]
	}
	ns.totals = totals
	ns.n = len(live)
	ns.growDeleted()
	mapping := make([]int, g.Len())
	for i := range mapping {
		mapping[i] = -1
	}
	for j, id := range live {
		mapping[id] = j
	}
	return &Segment{Store: ns, sealed: true}, mapping
}

// Flatten returns the collection as a single flat Store with identical
// global ids (tombstones preserved). With exactly one segment the segment's
// own store is returned as a read-only view; otherwise the columns are
// copied, which costs O(n·dims).
func (s *SegStore) Flatten() *Store {
	if len(s.segs) == 1 {
		return s.segs[0].Store
	}
	f := New(s.dims)
	n := s.Len()
	for d := 0; d < s.dims; d++ {
		col := make([]float64, 0, n)
		for _, g := range s.segs {
			col = append(col, g.Column(d)...)
		}
		f.columns[d] = col
		for _, x := range col {
			f.observe(d, x)
		}
	}
	totals := make([]float64, 0, n)
	for _, g := range s.segs {
		totals = append(totals, g.Totals()...)
	}
	f.totals = totals
	f.n = n
	f.growDeleted()
	for i, g := range s.segs {
		base := s.bases[i]
		g.deleted.ForEach(func(local int) { f.deleted.Set(base + local) })
	}
	return f
}

// FlattenSealed returns the sealed prefix — every segment but the active
// tail — as a single flat Store with identical global ids (tombstones
// preserved), or nil when no segment is sealed. With exactly one sealed
// segment that segment's own store is returned as a read-only view;
// otherwise the columns are copied. It is the input surface for
// whole-prefix analyses such as re-clustering, which must see the same
// global ids the segmented store uses.
func (s *SegStore) FlattenSealed() *Store {
	last := len(s.segs) - 1
	if last == 0 {
		return nil
	}
	if last == 1 {
		return s.segs[0].Store
	}
	sealed := s.segs[:last]
	f := New(s.dims)
	n := s.bases[last]
	for d := 0; d < s.dims; d++ {
		col := make([]float64, 0, n)
		for _, g := range sealed {
			col = append(col, g.Column(d)...)
		}
		f.columns[d] = col
		for _, x := range col {
			f.observe(d, x)
		}
	}
	totals := make([]float64, 0, n)
	for _, g := range sealed {
		totals = append(totals, g.Totals()...)
	}
	f.totals = totals
	f.n = n
	f.growDeleted()
	for i, g := range sealed {
		base := s.bases[i]
		g.deleted.ForEach(func(local int) { f.deleted.Set(base + local) })
	}
	return f
}

// Repartition replaces the sealed prefix with new sealed segments built
// from groups of live global ids — typically the clusters of a k-means
// run over FlattenSealed — so each rewritten segment holds one group and
// gets the tightest per-dimension synopses that group admits. Groups
// larger than the segment size split into consecutive chunks; empty
// groups are skipped. Tombstoned slots are dropped (a repartition is also
// a compaction of the sealed prefix). The active segment is reused
// as-is; only its base shifts. The originals are left untouched so
// in-flight snapshot readers stay valid.
//
// It returns the old-global-id → new-global-id mapping (−1 for dropped
// slots). Every id in groups must be a live sealed id appearing exactly
// once; violations panic — the caller derives groups from the same store
// state under the collection's write lock, so a bad group is a
// programmer error, not an input error.
func (s *SegStore) Repartition(groups [][]int) []int {
	last := len(s.segs) - 1
	sealedLen := s.bases[last]
	active := s.segs[last]

	total := 0
	for _, grp := range groups {
		total += len(grp)
	}
	seen := make([]bool, sealedLen)
	segIdx := make([]int, total)
	localID := make([]int, total)
	i := 0
	for _, grp := range groups {
		for _, id := range grp {
			if id < 0 || id >= sealedLen {
				panic(fmt.Sprintf("vstore: Repartition id %d outside sealed prefix [0,%d)", id, sealedLen))
			}
			if seen[id] {
				panic(fmt.Sprintf("vstore: Repartition id %d in two groups", id))
			}
			seen[id] = true
			g, local := s.locate(id)
			if s.segs[g].IsDeleted(local) {
				panic(fmt.Sprintf("vstore: Repartition of deleted id %d", id))
			}
			segIdx[i], localID[i] = g, local
			i++
		}
	}

	mapping := make([]int, s.Len())
	for id := 0; id < sealedLen; id++ {
		mapping[id] = -1
	}

	var (
		newSegs  []*Segment
		newBases []int
		newBase  int
	)
	pos := 0 // offset of the current group in segIdx/localID
	for _, grp := range groups {
		for off := 0; off < len(grp); off += s.segSize {
			chunk := grp[off:min(off+s.segSize, len(grp))]
			ns := New(s.dims)
			for d := 0; d < s.dims; d++ {
				col := make([]float64, len(chunk))
				for j := range chunk {
					x := s.segs[segIdx[pos+off+j]].Column(d)[localID[pos+off+j]]
					col[j] = x
					ns.observe(d, x)
				}
				ns.columns[d] = col
			}
			totals := make([]float64, len(chunk))
			for j := range chunk {
				totals[j] = s.segs[segIdx[pos+off+j]].Totals()[localID[pos+off+j]]
			}
			ns.totals = totals
			ns.n = len(chunk)
			ns.growDeleted()
			for j, id := range chunk {
				mapping[id] = newBase + j
			}
			newSegs = append(newSegs, &Segment{Store: ns, sealed: true})
			newBases = append(newBases, newBase)
			newBase += len(chunk)
		}
		pos += len(grp)
	}
	for j := 0; j < active.Len(); j++ {
		mapping[sealedLen+j] = newBase + j
	}
	newSegs = append(newSegs, active)
	newBases = append(newBases, newBase)
	s.segs, s.bases = newSegs, newBases
	return mapping
}

// --- Persistence ----------------------------------------------------------

const (
	segMagic = "BONDSEG1"
	// segVersion 1 is the PR 1 layout; version 2 adds the planner-stats
	// block between the header and the segments. Both load.
	segVersion    = uint32(2)
	maxStatsBlock = 1 << 20
)

// PlannerStats returns the opaque planner statistics block loaded with or
// assigned to the store (nil when absent).
func (s *SegStore) PlannerStats() []byte { return s.plannerStats }

// SetPlannerStats assigns the planner statistics block written by Save.
func (s *SegStore) SetPlannerStats(b []byte) { s.plannerStats = b }

// Save writes the segmented layout: a header (magic, version, dims,
// segment size, segment count), the planner-stats block, each segment as a
// nested flat-store stream, and a CRC32 trailer over everything written.
func (s *SegStore) Save(w io.Writer) error {
	return s.SaveWith(w, s.plannerStats)
}

// SaveWith is Save with an explicit planner-stats block, so a caller
// holding only a read lock can persist fresh statistics without mutating
// the store.
func (s *SegStore) SaveWith(w io.Writer, plannerStats []byte) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(segMagic)); err != nil {
		return err
	}
	hdr := []uint64{uint64(segVersion), uint64(s.dims), uint64(s.segSize), uint64(len(s.segs))}
	for _, h := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, uint64(len(plannerStats))); err != nil {
		return err
	}
	if _, err := mw.Write(plannerStats); err != nil {
		return err
	}
	for _, g := range s.segs {
		if err := g.Store.Save(mw); err != nil {
			return err
		}
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// LoadSegmented reads a store written by Save, validating magic, version,
// and both the per-segment and the trailing checksums. Every segment but
// the last is marked sealed, restoring the active-tail invariant.
func LoadSegmented(r io.Reader) (*SegStore, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	magic := make([]byte, len(segMagic))
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(magic) != segMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	var version, dims64, segSize64, nsegs64 uint64
	for _, p := range []*uint64{&version, &dims64, &segSize64, &nsegs64} {
		if err := binary.Read(tr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if uint32(version) < 1 || uint32(version) > segVersion {
		return nil, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, version)
	}
	dims, segSize, nsegs := int(dims64), int(segSize64), int(nsegs64)
	if dims < 1 || dims > 1<<20 || segSize < 1 || nsegs < 1 || nsegs > 1<<24 {
		return nil, fmt.Errorf("%w: implausible header dims=%d segSize=%d nsegs=%d",
			ErrCorrupt, dims, segSize, nsegs)
	}
	s := &SegStore{dims: dims, segSize: segSize}
	if uint32(version) >= 2 {
		var statsLen uint64
		if err := binary.Read(tr, binary.LittleEndian, &statsLen); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if statsLen > maxStatsBlock {
			return nil, fmt.Errorf("%w: implausible stats block of %d bytes", ErrCorrupt, statsLen)
		}
		if statsLen > 0 {
			s.plannerStats = make([]byte, statsLen)
			if _, err := io.ReadFull(tr, s.plannerStats); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
		}
	}
	for i := 0; i < nsegs; i++ {
		st, err := Load(tr)
		if err != nil {
			return nil, err
		}
		if st.Dims() != dims {
			return nil, fmt.Errorf("%w: segment %d dims %d != %d", ErrCorrupt, i, st.Dims(), dims)
		}
		s.bases = append(s.bases, 0)
		if i > 0 {
			s.bases[i] = s.bases[i-1] + s.segs[i-1].Len()
		}
		s.segs = append(s.segs, &Segment{Store: st, sealed: i < nsegs-1})
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return s, nil
}

// SaveFile writes the segmented store to path atomically.
func (s *SegStore) SaveFile(path string) error {
	return s.SaveFileWith(path, s.plannerStats)
}

// SaveFileWith is SaveFile with an explicit planner-stats block.
func (s *SegStore) SaveFileWith(path string, plannerStats []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.SaveWith(bw, plannerStats); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadAnyFile reads either legacy storage layout from path: the
// segmented format written by SegStore.Save (v1 and v2), or the seed's
// flat format written by Store.Save.
func LoadAnyFile(path string) (*SegStore, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return LoadAnyBytes(b)
}

// LoadAnyBytes reads either legacy storage layout from an in-memory
// image: the segmented format written by SegStore.Save, or the seed's
// flat format written by Store.Save, which loads as a single sealed
// segment (so synopses and compressed codes apply to it) plus a fresh
// active segment. The durability layer uses it to migrate legacy
// snapshot files into the incremental directory layout through its
// injectable filesystem.
func LoadAnyBytes(b []byte) (*SegStore, error) {
	if len(b) < len(segMagic) {
		return nil, fmt.Errorf("%w: %d-byte store image", ErrCorrupt, len(b))
	}
	br := bytes.NewReader(b)
	if string(b[:len(segMagic)]) == segMagic {
		return LoadSegmented(br)
	}
	st, err := Load(br)
	if err != nil {
		return nil, err
	}
	s := &SegStore{dims: st.Dims(), segSize: DefaultSegmentSize}
	if st.Len() > 0 {
		s.segs = []*Segment{{Store: st, sealed: true}, {Store: New(st.Dims())}}
		s.bases = []int{0, st.Len()}
	} else {
		s.segs = []*Segment{{Store: st}}
		s.bases = []int{0}
	}
	return s, nil
}

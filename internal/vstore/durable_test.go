package vstore

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"bond/internal/iofs"
)

func randVec(rng *rand.Rand, dims int) []float64 {
	v := make([]float64, dims)
	for d := range v {
		v[d] = rng.Float64()
	}
	return v
}

func buildSegmented(t *testing.T, rng *rand.Rand, n, dims, segSize int) *SegStore {
	t.Helper()
	s := NewSegmented(dims, segSize)
	for i := 0; i < n; i++ {
		s.Append(randVec(rng, dims))
	}
	return s
}

func checkpointTo(t *testing.T, fs iofs.FS, dir string, s *SegStore, walSeq uint64) *CheckpointState {
	t.Helper()
	cs := s.CaptureCheckpoint(walSeq, s.PlannerStats())
	if err := WriteCheckpoint(fs, dir, cs); err != nil {
		t.Fatal(err)
	}
	return cs
}

func assertSameStore(t *testing.T, got, want *SegStore) {
	t.Helper()
	if got.Dims() != want.Dims() || got.Len() != want.Len() || got.Live() != want.Live() {
		t.Fatalf("shape: got %d×%d live %d, want %d×%d live %d",
			got.Len(), got.Dims(), got.Live(), want.Len(), want.Dims(), want.Live())
	}
	if got.NumSegments() != want.NumSegments() {
		t.Fatalf("segments: got %d want %d", got.NumSegments(), want.NumSegments())
	}
	for id := 0; id < want.Len(); id++ {
		if got.IsDeleted(id) != want.IsDeleted(id) {
			t.Fatalf("id %d: deleted %v vs %v", id, got.IsDeleted(id), want.IsDeleted(id))
		}
		if !reflect.DeepEqual(got.Row(id), want.Row(id)) {
			t.Fatalf("id %d: rows differ", id)
		}
	}
}

func TestCheckpointRecoverRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fs := iofs.NewMemFS()
	s := buildSegmented(t, rng, 130, 5, 32) // 4 sealed + active 2
	s.Delete(3)
	s.Delete(70)
	checkpointTo(t, fs, "col", s, 1)

	got, m, err := RecoverDir(fs, "col")
	if err != nil {
		t.Fatal(err)
	}
	if m.WALSeq != 1 || m.Dims != 5 || m.SegSize != 32 {
		t.Fatalf("manifest: %+v", m)
	}
	assertSameStore(t, got, s)
	// Recovered persistent ids must survive into a second capture with no
	// fresh assignments.
	cs2 := got.CaptureCheckpoint(2, nil)
	if cs2.NextSegID != m.NextSegID {
		t.Fatalf("recovery reassigned segment ids: %d vs %d", cs2.NextSegID, m.NextSegID)
	}
}

// TestCheckpointIncremental pins the acceptance criterion: a checkpoint
// after new appends rewrites only the manifest and the active segment —
// sealed segment files are created exactly once and stay byte-stable.
func TestCheckpointIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fs := iofs.NewMemFS()
	s := buildSegmented(t, rng, 100, 4, 32) // 3 sealed + active 4
	cs1 := checkpointTo(t, fs, "col", s, 1)

	sealedFiles := map[string][]byte{}
	for _, sg := range cs1.Sealed {
		name := filepath.Join("col", SegFileName(sg.ID))
		b, err := fs.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		sealedFiles[name] = b
	}
	if len(sealedFiles) != 3 {
		t.Fatalf("sealed files: %d, want 3", len(sealedFiles))
	}
	man1, _ := fs.ReadFile(filepath.Join("col", ManifestName))

	// New appends (staying inside the active segment), a tombstone inside
	// a sealed segment, another checkpoint.
	for i := 0; i < 10; i++ {
		s.Append(randVec(rng, 4))
	}
	s.Delete(5)
	checkpointTo(t, fs, "col", s, 2)

	for name, before := range sealedFiles {
		after, err := fs.ReadFile(name)
		if err != nil {
			t.Fatalf("sealed file %s vanished: %v", name, err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("sealed file %s not byte-stable across checkpoints", name)
		}
		if n := fs.CreateCount(name); n != 1 {
			t.Fatalf("sealed file %s created %d times, want exactly once", name, n)
		}
	}
	man2, _ := fs.ReadFile(filepath.Join("col", ManifestName))
	if bytes.Equal(man1, man2) {
		t.Fatal("manifest did not change across checkpoints")
	}
	if _, err := fs.Stat(filepath.Join("col", ActiveFileName(1))); err == nil {
		t.Fatal("previous active checkpoint not garbage-collected")
	}

	got, _, err := RecoverDir(fs, "col")
	if err != nil {
		t.Fatal(err)
	}
	assertSameStore(t, got, s)
}

// TestCheckpointGCAfterCompaction checks that segment files dropped by
// compaction are garbage-collected once a checkpoint commits without
// them, and that rewritten segments get fresh write-once files.
func TestCheckpointGCAfterCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fs := iofs.NewMemFS()
	s := buildSegmented(t, rng, 96, 3, 32) // 3 sealed, empty active
	cs1 := checkpointTo(t, fs, "col", s, 1)
	firstSegFile := filepath.Join("col", SegFileName(cs1.Sealed[0].ID))

	for id := 0; id < 32; id++ { // kill segment 0 wholesale
		s.Delete(id)
	}
	s.Compact(0)
	cs2 := checkpointTo(t, fs, "col", s, 2)
	if len(cs2.Sealed) != 2 {
		t.Fatalf("sealed after compaction: %d", len(cs2.Sealed))
	}
	if _, err := fs.Stat(firstSegFile); err == nil {
		t.Fatalf("dropped segment file %s not garbage-collected", firstSegFile)
	}
	got, _, err := RecoverDir(fs, "col")
	if err != nil {
		t.Fatal(err)
	}
	assertSameStore(t, got, s)
}

func TestRecoverDirErrors(t *testing.T) {
	fs := iofs.NewMemFS()
	if _, _, err := RecoverDir(fs, "missing"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("missing dir: %v", err)
	}

	rng := rand.New(rand.NewSource(4))
	s := buildSegmented(t, rng, 64, 3, 32)
	checkpointTo(t, fs, "col", s, 1)

	// Bit-flip the manifest: recovery must fail with ErrCorrupt, not
	// panic or load garbage.
	man, _ := fs.ReadFile(filepath.Join("col", ManifestName))
	for _, i := range []int{0, 9, len(man) / 2, len(man) - 1} {
		mut := append([]byte(nil), man...)
		mut[i] ^= 0xff
		f, _ := fs.Create(filepath.Join("col", ManifestName))
		f.Write(mut)
		f.Close()
		if _, _, err := RecoverDir(fs, "col"); err == nil {
			t.Fatalf("flip at %d: corrupt manifest recovered", i)
		}
	}
	f, _ := fs.Create(filepath.Join("col", ManifestName))
	f.Write(man)
	f.Close()

	// A manifest naming a segment file that is missing or truncated is
	// corruption, not silence.
	segName := filepath.Join("col", SegFileName(1))
	seg, _ := fs.ReadFile(segName)
	fs.Remove(segName)
	if _, _, err := RecoverDir(fs, "col"); err == nil {
		t.Fatal("missing segment file recovered")
	}
	f, _ = fs.Create(segName)
	f.Write(seg[:len(seg)-5])
	f.Close()
	if _, _, err := RecoverDir(fs, "col"); err == nil {
		t.Fatal("truncated segment file recovered")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Dims:         7,
		SegSize:      128,
		NextSegID:    9,
		WALSeq:       4,
		ActiveLen:    17,
		PlannerStats: []byte("opaque planner block"),
		Segments: []ManifestSegment{
			{ID: 1, Len: 128, Format: SegFormatV2, Deleted: []int{0, 5, 127}},
			{ID: 8, Len: 64, Format: SegFormatV1},
		},
	}
	got, err := DecodeManifest(EncodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, m)
	}
}

package vstore

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"bond/internal/dataset"
	"bond/internal/quant"
)

func segFixture(t *testing.T, n, dims, segSize int) ([][]float64, *SegStore) {
	t.Helper()
	vs := dataset.CorelLike(n, dims, 99)
	return vs, SegmentedFromVectors(vs, segSize)
}

func TestSegStoreLayoutAndRows(t *testing.T) {
	vs, s := segFixture(t, 250, 8, 100)
	// Bulk loads seal the partial tail too: 100+100+50 sealed, plus an
	// empty active segment.
	if s.NumSegments() != 4 {
		t.Fatalf("segments = %d, want 4", s.NumSegments())
	}
	segs, bases := s.Segments(), s.Bases()
	if !segs[0].Sealed() || !segs[1].Sealed() || !segs[2].Sealed() || segs[3].Sealed() {
		t.Fatal("seal flags wrong: want sealed ×3, active")
	}
	if segs[3].Len() != 0 {
		t.Fatalf("active should be empty after bulk load, has %d", segs[3].Len())
	}
	if bases[0] != 0 || bases[1] != 100 || bases[2] != 200 || bases[3] != 250 {
		t.Fatalf("bases = %v", bases)
	}
	if s.Len() != 250 || s.Live() != 250 || s.Dims() != 8 {
		t.Fatalf("shape: len=%d live=%d dims=%d", s.Len(), s.Live(), s.Dims())
	}
	for _, id := range []int{0, 99, 100, 199, 200, 249} {
		row := s.Row(id)
		for d, x := range row {
			if x != vs[id][d] {
				t.Fatalf("Row(%d)[%d] = %v, want %v", id, d, x, vs[id][d])
			}
		}
	}
}

func TestSegStoreAppendSealsAtThreshold(t *testing.T) {
	s := NewSegmented(4, 3)
	for i := 0; i < 7; i++ {
		if id := s.Append([]float64{float64(i), 0, 0, 0}); id != i {
			t.Fatalf("Append returned id %d, want %d", id, i)
		}
	}
	if s.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3 (3+3+1)", s.NumSegments())
	}
	if got := s.Segments()[2].Len(); got != 1 {
		t.Fatalf("active len = %d, want 1", got)
	}
}

func TestSegStoreDimRangeSynopses(t *testing.T) {
	s := NewSegmented(2, 2)
	s.AppendBatch([][]float64{{0.1, 0.9}, {0.2, 0.8}, {0.5, 0.5}})
	seg0 := s.Segments()[0]
	if lo, hi := seg0.DimRange(0); lo != 0.1 || hi != 0.2 {
		t.Fatalf("seg0 dim0 range [%v, %v]", lo, hi)
	}
	if lo, hi := seg0.DimRange(1); lo != 0.8 || hi != 0.9 {
		t.Fatalf("seg0 dim1 range [%v, %v]", lo, hi)
	}
	if lo, hi := s.Segments()[1].DimRange(0); lo != 0.5 || hi != 0.5 {
		t.Fatalf("active dim0 range [%v, %v]", lo, hi)
	}
}

func TestSegStoreDeleteAndTombstoneRatioCompact(t *testing.T) {
	_, s := segFixture(t, 300, 4, 100)
	// Segment 0: 1 tombstone (1%); segment 1: 60 tombstones (60%).
	s.Delete(5)
	for id := 100; id < 160; id++ {
		s.Delete(id)
	}
	if s.Live() != 300-61 {
		t.Fatalf("live = %d", s.Live())
	}
	before0 := s.Segments()[0]
	mapping := s.Compact(0.5)
	// Segment 0 stays untouched (same object, tombstone kept).
	if s.Segments()[0] != before0 {
		t.Fatal("cold segment was rewritten")
	}
	if !s.IsDeleted(5) {
		t.Fatal("tombstone in cold segment should survive Compact(0.5)")
	}
	if mapping[5] != 5 {
		t.Fatalf("mapping[5] = %d, want 5 (cold segment ids stable)", mapping[5])
	}
	// Segment 1 was rewritten: its deleted ids map to -1, survivors shift.
	for id := 100; id < 160; id++ {
		if mapping[id] != -1 {
			t.Fatalf("mapping[%d] = %d, want -1", id, mapping[id])
		}
	}
	if mapping[160] != 100 {
		t.Fatalf("mapping[160] = %d, want 100", mapping[160])
	}
	if mapping[299] != 299-60 {
		t.Fatalf("mapping[299] = %d, want %d", mapping[299], 299-60)
	}
	if s.Len() != 240 {
		t.Fatalf("len after compact = %d, want 240", s.Len())
	}
	// Full compact (ratio 0) now removes the cold tombstone too.
	mapping = s.Compact(0)
	if s.Len() != 239 || s.Live() != 239 {
		t.Fatalf("after full compact: len=%d live=%d", s.Len(), s.Live())
	}
	if mapping[5] != -1 || mapping[6] != 5 {
		t.Fatalf("full compact mapping: [5]=%d [6]=%d", mapping[5], mapping[6])
	}
}

func TestSegStoreCompactDropsDeadSegment(t *testing.T) {
	_, s := segFixture(t, 200, 4, 100)
	for id := 0; id < 100; id++ {
		s.Delete(id)
	}
	nsegs := s.NumSegments()
	s.Compact(0)
	if s.NumSegments() != nsegs-1 {
		t.Fatalf("segments = %d, want %d (dead segment dropped)", s.NumSegments(), nsegs-1)
	}
	if s.Len() != 100 || s.Bases()[0] != 0 {
		t.Fatalf("len=%d bases=%v", s.Len(), s.Bases())
	}
}

func TestSegStoreFlattenMatches(t *testing.T) {
	vs, s := segFixture(t, 230, 6, 64)
	s.Delete(7)
	s.Delete(150)
	f := s.Flatten()
	if f.Len() != 230 || f.Live() != 228 {
		t.Fatalf("flatten shape: len=%d live=%d", f.Len(), f.Live())
	}
	for d := 0; d < 6; d++ {
		col := f.Column(d)
		for id := range vs {
			if col[id] != vs[id][d] {
				t.Fatalf("flatten col %d id %d mismatch", d, id)
			}
		}
	}
	if !f.IsDeleted(7) || !f.IsDeleted(150) || f.IsDeleted(8) {
		t.Fatal("flatten delete marks wrong")
	}
}

func TestSegStoreSaveLoadRoundTrip(t *testing.T) {
	vs, s := segFixture(t, 250, 8, 100)
	s.Delete(42)
	s.Delete(242)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != 4 || got.Len() != 250 || got.Live() != 248 {
		t.Fatalf("loaded shape: segs=%d len=%d live=%d", got.NumSegments(), got.Len(), got.Live())
	}
	if !got.IsDeleted(42) || !got.IsDeleted(242) {
		t.Fatal("delete marks lost")
	}
	for _, id := range []int{0, 123, 249} {
		row := got.Row(id)
		for d, x := range row {
			if x != vs[id][d] {
				t.Fatalf("row %d mismatch after round trip", id)
			}
		}
	}
	// Loaded store keeps appending into the restored active segment.
	got.Append(vs[0])
	if got.Len() != 251 {
		t.Fatalf("append after load: len=%d", got.Len())
	}
	// Corruption is detected.
	raw := buf.Bytes()
	raw[len(raw)-20] ^= 0xff
	if _, err := LoadSegmented(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted stream loaded without error")
	}
}

func TestSegStoreLoadAnyFileReadsLegacyFlat(t *testing.T) {
	vs := dataset.CorelLike(120, 8, 3)
	flat := FromVectors(vs)
	flat.Delete(11)
	dir := t.TempDir()
	flatPath := filepath.Join(dir, "flat.bond")
	if err := flat.SaveFile(flatPath); err != nil {
		t.Fatal(err)
	}
	s, err := LoadAnyFile(flatPath)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 120 || s.Live() != 119 || s.NumSegments() != 2 {
		t.Fatalf("legacy load: len=%d live=%d segs=%d", s.Len(), s.Live(), s.NumSegments())
	}
	if !s.Segments()[0].Sealed() {
		t.Fatal("legacy data should load sealed, so codes and synopses apply")
	}
	if !s.IsDeleted(11) {
		t.Fatal("legacy delete mark lost")
	}
	// And the segmented format round-trips through LoadAnyFile too.
	segPath := filepath.Join(dir, "seg.bond")
	seg := SegmentedFromVectors(vs, 50)
	if err := seg.SaveFile(segPath); err != nil {
		t.Fatal(err)
	}
	s2, err := LoadAnyFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumSegments() != 4 || s2.Len() != 120 {
		t.Fatalf("segmented LoadAnyFile: segs=%d len=%d", s2.NumSegments(), s2.Len())
	}
}

func TestSegmentCodesBuiltOnceAndSealedOnly(t *testing.T) {
	_, s := segFixture(t, 120, 4, 50)
	sealed := s.Segments()[0]
	a := sealed.Codes(quant.NewUnit())
	b := sealed.Codes(quant.NewUnit())
	if a != b {
		t.Fatal("codes rebuilt on second call")
	}
	if len(a.Codes) != 4 || len(a.Codes[0]) != 50 {
		t.Fatalf("codes shape %d×%d", len(a.Codes), len(a.Codes[0]))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Codes on unsealed segment did not panic")
		}
	}()
	s.Segments()[s.NumSegments()-1].Codes(quant.NewUnit()) // the active tail
}

func TestStoreDimRangeAfterReorganize(t *testing.T) {
	st := New(2)
	st.AppendBatch([][]float64{{0.9, 0.1}, {0.2, 0.3}})
	st.Delete(0)
	st.Reorganize()
	if lo, hi := st.DimRange(0); lo != 0.2 || hi != 0.2 {
		t.Fatalf("dim0 range after reorganize [%v, %v]", lo, hi)
	}
	if lo, hi := st.ValueRange(); lo != 0.2 || hi != 0.3 {
		t.Fatalf("value range after reorganize [%v, %v]", lo, hi)
	}
	empty := New(3)
	if lo, hi := empty.DimRange(1); !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Fatalf("empty range [%v, %v]", lo, hi)
	}
}

func TestSegStorePlannerStatsPersistence(t *testing.T) {
	_, s := segFixture(t, 120, 6, 50)
	stats := []byte(`{"queries":7,"bond_frac":0.5}`)
	s.SetPlannerStats(stats)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSegmented(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got.PlannerStats()) != string(stats) {
		t.Fatalf("planner stats after round trip: %q", got.PlannerStats())
	}

	// SaveWith persists an explicit block without mutating the store.
	var buf2 bytes.Buffer
	if err := s.SaveWith(&buf2, []byte("other")); err != nil {
		t.Fatal(err)
	}
	got2, err := LoadSegmented(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if string(got2.PlannerStats()) != "other" {
		t.Fatalf("SaveWith stats: %q", got2.PlannerStats())
	}
	if string(s.PlannerStats()) != string(stats) {
		t.Fatal("SaveWith mutated the store's own stats block")
	}

	// A store without a stats block (and a legacy flat file) loads with
	// a nil block.
	fresh := SegmentedFromVectors(dataset.CorelLike(30, 4, 2), 10)
	var buf3 bytes.Buffer
	if err := fresh.Save(&buf3); err != nil {
		t.Fatal(err)
	}
	got3, err := LoadSegmented(bytes.NewReader(buf3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got3.PlannerStats() != nil {
		t.Fatalf("expected nil stats, got %q", got3.PlannerStats())
	}
}

func TestSegmentRowCodesCachedTranspose(t *testing.T) {
	vs := dataset.CorelLike(40, 5, 2)
	s := SegmentedFromVectors(vs, 40)
	g := s.Segments()[0]
	qz, codes := g.RowCodes(quant.NewUnit())
	if len(codes) != 40*5 {
		t.Fatalf("row codes length %d", len(codes))
	}
	cols := g.Codes(quant.NewUnit())
	for d := 0; d < 5; d++ {
		for id := 0; id < 40; id++ {
			if codes[id*5+d] != cols.Codes[d][id] {
				t.Fatalf("row code (%d,%d) != column code", id, d)
			}
		}
	}
	qz2, codes2 := g.RowCodes(quant.NewUnit())
	if &codes[0] != &codes2[0] || qz != qz2 {
		t.Fatal("RowCodes not cached")
	}
}

package vstore

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestFormatGolden pins the on-disk layout: header bytes, section order,
// and trailer. A change to any of these must be deliberate (bump
// fileVersion) — existing store files in the field depend on it.
func TestFormatGolden(t *testing.T) {
	s := FromVectors([][]float64{{0.5, 1.0}, {0.25, 0.0}})
	s.Delete(1)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Magic.
	if string(data[:8]) != "BONDSTR1" {
		t.Fatalf("magic = %q", data[:8])
	}
	// Header: version, n, dims as little-endian uint64.
	if v := binary.LittleEndian.Uint64(data[8:16]); v != 1 {
		t.Errorf("version = %d", v)
	}
	if n := binary.LittleEndian.Uint64(data[16:24]); n != 2 {
		t.Errorf("n = %d", n)
	}
	if d := binary.LittleEndian.Uint64(data[24:32]); d != 2 {
		t.Errorf("dims = %d", d)
	}
	// Column 0 starts at offset 32: float64 bits of 0.5 then 0.25.
	if bits := binary.LittleEndian.Uint64(data[32:40]); bits != 0x3FE0000000000000 {
		t.Errorf("col0[0] bits = %#x, want 0.5", bits)
	}
	if bits := binary.LittleEndian.Uint64(data[40:48]); bits != 0x3FD0000000000000 {
		t.Errorf("col0[1] bits = %#x, want 0.25", bits)
	}
	// Layout: 8 magic + 24 header + 2 cols × 2 rows × 8 + totals 2×8 +
	// ndel 8 + 1 deleted id 8 + crc 4.
	wantLen := 8 + 24 + 2*2*8 + 2*8 + 8 + 8 + 4
	if len(data) != wantLen {
		t.Errorf("file length = %d, want %d", len(data), wantLen)
	}
	// Deleted-id section: count 1, id 1.
	ndelOff := 8 + 24 + 2*2*8 + 2*8
	if n := binary.LittleEndian.Uint64(data[ndelOff : ndelOff+8]); n != 1 {
		t.Errorf("ndel = %d", n)
	}
	if id := binary.LittleEndian.Uint64(data[ndelOff+8 : ndelOff+16]); id != 1 {
		t.Errorf("deleted id = %d", id)
	}
}

// TestLoadRejectsImplausibleHeader guards the allocation limits.
func TestLoadRejectsImplausibleHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("BONDSTR1")
	for _, v := range []uint64{1, 1 << 40, 5} { // absurd n
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(&buf); err == nil {
		t.Error("implausible header accepted")
	}
}

package vstore

import (
	"testing"
)

// repartitionFixture: 9 vectors bulk-loaded into 3 sealed segments of 3,
// plus 2 more appended into the active segment.
func repartitionFixture(t *testing.T) ([][]float64, *SegStore) {
	t.Helper()
	vs := [][]float64{
		{0.0, 0.9}, {0.5, 0.5}, {0.9, 0.1},
		{0.1, 0.8}, {0.6, 0.4}, {0.8, 0.2},
		{0.2, 0.7}, {0.7, 0.3}, {0.95, 0.05},
	}
	s := SegmentedFromVectors(vs, 3)
	// Two extra rows land in the active segment and must survive untouched.
	extra := [][]float64{{0.42, 0.42}, {0.43, 0.43}}
	s.AppendBatch(extra)
	return append(vs, extra...), s
}

func TestRepartitionLayoutMappingAndSynopses(t *testing.T) {
	vs, s := repartitionFixture(t)
	s.Delete(4) // a sealed tombstone: must be dropped by the rewrite

	// Regroup by "cluster": low-x ids, mid-x ids, high-x ids.
	groups := [][]int{{0, 3, 6}, {1, 7}, {2, 5, 8}}
	mapping := s.Repartition(groups)

	if len(mapping) != 11 {
		t.Fatalf("mapping covers %d ids, want 11", len(mapping))
	}
	if mapping[4] != -1 {
		t.Fatalf("tombstoned id 4 mapped to %d, want -1", mapping[4])
	}
	// Every live id keeps its coefficients under the new id.
	for old, nw := range mapping {
		if old == 4 {
			continue
		}
		if nw < 0 {
			t.Fatalf("live id %d dropped", old)
		}
		row := s.Row(nw)
		for d, x := range row {
			if x != vs[old][d] {
				t.Fatalf("row %d→%d dim %d = %v, want %v", old, nw, d, x, vs[old][d])
			}
		}
	}
	// Layout: 3 group segments + the reused active tail.
	if s.NumSegments() != 4 {
		t.Fatalf("segments = %d, want 4", s.NumSegments())
	}
	segs, bases := s.Segments(), s.Bases()
	for i := 0; i < 3; i++ {
		if !segs[i].Sealed() || segs[i].Len() != len(groups[i]) {
			t.Fatalf("segment %d: sealed=%v len=%d, want group of %d",
				i, segs[i].Sealed(), segs[i].Len(), len(groups[i]))
		}
	}
	if segs[3].Sealed() || segs[3].Len() != 2 {
		t.Fatalf("active tail: sealed=%v len=%d", segs[3].Sealed(), segs[3].Len())
	}
	if bases[3] != 8 || s.Len() != 10 || s.Live() != 10 {
		t.Fatalf("bases=%v len=%d live=%d", bases, s.Len(), s.Live())
	}
	// The point of the exercise: each group segment's synopsis is exactly
	// the group's extent, not the ingest order's.
	if lo, hi := segs[0].DimRange(0); lo != 0.0 || hi != 0.2 {
		t.Fatalf("group 0 dim 0 range [%v, %v], want [0, 0.2]", lo, hi)
	}
	if lo, hi := segs[2].DimRange(0); lo != 0.8 || hi != 0.95 {
		t.Fatalf("group 2 dim 0 range [%v, %v], want [0.8, 0.95]", lo, hi)
	}
	// Totals move with their rows.
	if got, want := s.Segments()[1].Totals()[1], vs[7][0]+vs[7][1]; got != want {
		t.Fatalf("total of moved id 7 = %v, want %v", got, want)
	}
}

func TestRepartitionSplitsOversizedGroupAndSkipsEmpty(t *testing.T) {
	_, s := repartitionFixture(t)
	groups := [][]int{{}, {0, 1, 2, 3, 4, 5, 6, 7}, {}, {8}}
	s.Repartition(groups)
	// Group of 8 splits into 3+3+2 with segSize 3, then the singleton.
	segs := s.Segments()
	if len(segs) != 5 {
		t.Fatalf("segments = %d, want 5 (3+3+2, 1, active)", len(segs))
	}
	wantLens := []int{3, 3, 2, 1, 2}
	for i, g := range segs {
		if g.Len() != wantLens[i] {
			t.Fatalf("segment %d len = %d, want %d", i, g.Len(), wantLens[i])
		}
	}
}

func TestRepartitionNoGroupsDropsSealedPrefix(t *testing.T) {
	_, s := repartitionFixture(t)
	for id := 0; id < 9; id++ {
		s.Delete(id)
	}
	mapping := s.Repartition(nil)
	for id := 0; id < 9; id++ {
		if mapping[id] != -1 {
			t.Fatalf("dropped id %d mapped to %d", id, mapping[id])
		}
	}
	if s.NumSegments() != 1 || s.Len() != 2 || mapping[9] != 0 || mapping[10] != 1 {
		t.Fatalf("segments=%d len=%d mapping tail=%v", s.NumSegments(), s.Len(), mapping[9:])
	}
}

func TestRepartitionPanicsOnBadGroups(t *testing.T) {
	cases := []struct {
		name   string
		del    int
		groups [][]int
	}{
		{"duplicate", -1, [][]int{{0, 1}, {1, 2}}},
		{"active id", -1, [][]int{{0, 9}}},
		{"negative", -1, [][]int{{-1}}},
		{"deleted", 2, [][]int{{1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, s := repartitionFixture(t)
			if tc.del >= 0 {
				s.Delete(tc.del)
			}
			defer func() {
				if recover() == nil {
					t.Fatalf("%s groups did not panic", tc.name)
				}
			}()
			s.Repartition(tc.groups)
		})
	}
}

func TestFlattenSealedMatchesPrefix(t *testing.T) {
	vs, s := repartitionFixture(t)
	s.Delete(5)
	f := s.FlattenSealed()
	if f.Len() != 9 {
		t.Fatalf("sealed prefix len = %d, want 9", f.Len())
	}
	for id := 0; id < 9; id++ {
		if f.IsDeleted(id) != (id == 5) {
			t.Fatalf("tombstone mismatch at %d", id)
		}
		row := f.Row(id)
		for d, x := range row {
			if x != vs[id][d] {
				t.Fatalf("flattened row %d dim %d = %v, want %v", id, d, x, vs[id][d])
			}
		}
	}

	// A store with only an active segment has no sealed prefix.
	empty := NewSegmented(2, 4)
	empty.Append([]float64{1, 2})
	if empty.FlattenSealed() != nil {
		t.Fatal("FlattenSealed on active-only store should be nil")
	}

	// Exactly one sealed segment: the view is the segment's own store.
	one := SegmentedFromVectors(vs[:3], 4)
	if got := one.FlattenSealed(); got != one.Segments()[0].Store {
		t.Fatal("single sealed segment should flatten to a view")
	}
}

// Package vstore implements the decomposition storage model the paper
// builds on: a collection of N-dimensional vectors is fragmented vertically
// into N single-dimension columns plus a per-vector total side table.
//
// Object identifiers are the densely ascending positions 0…n−1, so they are
// never materialized (the "void head" of Section 6.1) and every column
// access is a positional lookup. Updates follow Section 6.2: appends extend
// every column, deletions are marked in a bitmap until a periodic
// Reorganize compacts the collection, and a differential batch buffer
// groups appends the way a differential file would.
package vstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"bond/internal/bitmap"
	"bond/internal/quant"
)

// Store is a vertically decomposed collection of fixed-dimensionality
// vectors.
type Store struct {
	dims    int
	n       int
	columns [][]float64    // columns[d][id] = coefficient d of vector id
	totals  []float64      // totals[id] = T(v) = Σ_d v_d
	deleted *bitmap.Bitmap // delete marks (Section 6.2); nil bits live

	// Running value range over every coefficient ever appended
	// (conservative across deletes). The Euclidean pruning bounds require
	// data inside the unit hyper-box; the search layer checks this range.
	minVal, maxVal float64

	// Per-dimension value ranges (conservative across deletes, recomputed
	// by Reorganize). These are the segment synopses the segmented store
	// uses to bound a segment's best possible score and skip it wholesale.
	dimMin, dimMax []float64
}

// New returns an empty store for dims-dimensional vectors.
// It panics if dims < 1.
func New(dims int) *Store {
	if dims < 1 {
		panic(fmt.Sprintf("vstore: dims must be >= 1, got %d", dims))
	}
	s := &Store{
		dims:    dims,
		columns: make([][]float64, dims),
		deleted: bitmap.New(0),
		minVal:  math.Inf(1),
		maxVal:  math.Inf(-1),
		dimMin:  make([]float64, dims),
		dimMax:  make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		s.dimMin[d] = math.Inf(1)
		s.dimMax[d] = math.Inf(-1)
	}
	return s
}

// ValueRange returns the smallest and largest coefficient ever stored
// (conservative: deletions do not shrink it). An empty store returns
// (+Inf, −Inf).
func (s *Store) ValueRange() (lo, hi float64) { return s.minVal, s.maxVal }

func (s *Store) observe(d int, x float64) {
	if x < s.minVal {
		s.minVal = x
	}
	if x > s.maxVal {
		s.maxVal = x
	}
	if x < s.dimMin[d] {
		s.dimMin[d] = x
	}
	if x > s.dimMax[d] {
		s.dimMax[d] = x
	}
}

// DimRange returns a conservative range covering every coefficient of
// dimension d (exact after Reorganize, conservative across deletes). An
// empty store returns (+Inf, −Inf). It panics on a bad dimension.
func (s *Store) DimRange(d int) (lo, hi float64) {
	if d < 0 || d >= s.dims {
		panic(fmt.Sprintf("vstore: dimension %d outside [0,%d)", d, s.dims))
	}
	return s.dimMin[d], s.dimMax[d]
}

// FromVectors builds a store from a row-major collection. It panics on
// ragged input.
func FromVectors(vectors [][]float64) *Store {
	if len(vectors) == 0 {
		panic("vstore: FromVectors on empty collection")
	}
	s := New(len(vectors[0]))
	s.AppendBatch(vectors)
	return s
}

// Dims returns the dimensionality.
func (s *Store) Dims() int { return s.dims }

// Len returns the total number of slots, including delete-marked ones.
func (s *Store) Len() int { return s.n }

// Live returns the number of non-deleted vectors.
func (s *Store) Live() int { return s.n - s.deleted.Count() }

// Column returns the d-th dimension column as a live view: the returned
// slice aliases the store's backing array. Callers must treat it as
// read-only — writing through it corrupts the store and its synopses — and
// must not hold it across an Append/AppendBatch (which may reallocate the
// column) or a Reorganize (which rewrites it in place).
func (s *Store) Column(d int) []float64 {
	if d < 0 || d >= s.dims {
		panic(fmt.Sprintf("vstore: column %d outside [0,%d)", d, s.dims))
	}
	return s.columns[d]
}

// Totals returns the per-vector totals T(v) side table as a live view: the
// returned slice aliases the store's backing array. Callers must treat it
// as read-only — the search layer derives pruning bounds from it, so a
// stray write silently breaks exactness — and must not hold it across an
// Append/AppendBatch or Reorganize.
func (s *Store) Totals() []float64 { return s.totals }

// Row reconstructs vector id from the columns. It panics on a bad id.
func (s *Store) Row(id int) []float64 {
	s.check(id)
	v := make([]float64, s.dims)
	for d := 0; d < s.dims; d++ {
		v[d] = s.columns[d][id]
	}
	return v
}

// Append adds a vector and returns its id. It panics on a dimensionality
// mismatch.
func (s *Store) Append(v []float64) int {
	if len(v) != s.dims {
		panic(fmt.Sprintf("vstore: vector has %d dims, store has %d", len(v), s.dims))
	}
	id := s.n
	total := 0.0
	for d, x := range v {
		s.columns[d] = append(s.columns[d], x)
		total += x
		s.observe(d, x)
	}
	s.totals = append(s.totals, total)
	s.n++
	s.growDeleted()
	return id
}

// AppendBatch adds many vectors at once — the batch-update path that
// Section 6.2 recommends for vertically fragmented collections. It returns
// the id of the first appended vector.
func (s *Store) AppendBatch(vectors [][]float64) int {
	first := s.n
	for d := range s.columns {
		col := s.columns[d]
		grown := make([]float64, len(col), len(col)+len(vectors))
		copy(grown, col)
		s.columns[d] = grown
	}
	for _, v := range vectors {
		if len(v) != s.dims {
			panic(fmt.Sprintf("vstore: vector has %d dims, store has %d", len(v), s.dims))
		}
		total := 0.0
		for d, x := range v {
			s.columns[d] = append(s.columns[d], x)
			total += x
			s.observe(d, x)
		}
		s.totals = append(s.totals, total)
		s.n++
	}
	s.growDeleted()
	return first
}

func (s *Store) growDeleted() {
	if s.deleted.Len() == s.n {
		return
	}
	grown := bitmap.New(s.n)
	s.deleted.ForEach(func(i int) { grown.Set(i) })
	s.deleted = grown
}

// Delete marks vector id as deleted. Marked vectors stay in the columns
// until Reorganize. Deleting twice is a no-op.
func (s *Store) Delete(id int) {
	s.check(id)
	s.deleted.Set(id)
}

// IsDeleted reports whether id carries a delete mark.
func (s *Store) IsDeleted(id int) bool {
	s.check(id)
	return s.deleted.Get(id)
}

// DeletedBitmap returns a copy of the delete-mark bitmap, suitable for
// initializing a search's candidate set (live = NOT deleted).
func (s *Store) DeletedBitmap() *bitmap.Bitmap { return s.deleted.Clone() }

// DeletedView returns the live delete-mark bitmap without copying — the
// allocation-free counterpart of DeletedBitmap for hot-path readers that
// finish with it before releasing the collection's lock. Callers must
// treat it as read-only and must not hold it across a Delete, Reorganize,
// or append (growth replaces the bitmap).
func (s *Store) DeletedView() *bitmap.Bitmap { return s.deleted }

// LiveIDs returns the identifiers of all live vectors in ascending order.
func (s *Store) LiveIDs() []int {
	out := make([]int, 0, s.Live())
	for id := 0; id < s.n; id++ {
		if !s.deleted.Get(id) {
			out = append(out, id)
		}
	}
	return out
}

// Reorganize compacts the store, physically removing delete-marked vectors
// (the "periodic reorganization of the collection" of Section 6.2). It
// returns a mapping from old ids to new ids (−1 for removed vectors).
func (s *Store) Reorganize() []int {
	mapping := make([]int, s.n)
	next := 0
	for id := 0; id < s.n; id++ {
		if s.deleted.Get(id) {
			mapping[id] = -1
			continue
		}
		mapping[id] = next
		if next != id {
			for d := range s.columns {
				s.columns[d][next] = s.columns[d][id]
			}
			s.totals[next] = s.totals[id]
		}
		next++
	}
	for d := range s.columns {
		s.columns[d] = s.columns[d][:next]
	}
	s.totals = s.totals[:next]
	s.n = next
	s.deleted = bitmap.New(next)
	s.recomputeRanges()
	return mapping
}

// recomputeRanges rebuilds the global and per-dimension value ranges from
// the surviving data, so synopses tighten after a reorganization.
func (s *Store) recomputeRanges() {
	s.minVal, s.maxVal = math.Inf(1), math.Inf(-1)
	for d := range s.columns {
		s.dimMin[d], s.dimMax[d] = math.Inf(1), math.Inf(-1)
		for _, x := range s.columns[d] {
			s.observe(d, x)
		}
	}
}

func (s *Store) check(id int) {
	if id < 0 || id >= s.n {
		panic(fmt.Sprintf("vstore: id %d outside [0,%d)", id, s.n))
	}
}

// QuantStore holds the 8-bit compressed fragments of a store: one code
// column per dimension (Section 7.4 / Figure 9).
type QuantStore struct {
	Q     *quant.Quantizer
	Codes [][]uint8 // Codes[d][id]
}

// Clone returns a deep copy that shares no mutable state with the
// receiver — the snapshot primitive behind the collection's lock-free
// progressive searches and multi-feature snapshots.
func (s *Store) Clone() *Store {
	c := New(s.dims)
	c.n = s.n
	for d := range s.columns {
		c.columns[d] = append([]float64(nil), s.columns[d]...)
	}
	c.totals = append([]float64(nil), s.totals...)
	c.deleted = s.deleted.Clone()
	c.minVal, c.maxVal = s.minVal, s.maxVal
	copy(c.dimMin, s.dimMin)
	copy(c.dimMax, s.dimMax)
	return c
}

// Quantize builds the compressed fragments with the given quantizer.
func (s *Store) Quantize(q *quant.Quantizer) *QuantStore {
	qs := &QuantStore{Q: q, Codes: make([][]uint8, s.dims)}
	for d := range s.columns {
		qs.Codes[d] = q.EncodeColumn(s.columns[d])
	}
	return qs
}

// --- Persistence ----------------------------------------------------------

const (
	fileMagic   = "BONDSTR1"
	fileVersion = uint32(1)
)

// ErrCorrupt is returned when a store file fails validation.
var ErrCorrupt = errors.New("vstore: corrupt store file")

// Save writes the store in the binary column format: a header (magic,
// version, n, dims), every column in little-endian float64, the totals
// table, the delete bitmap as packed ids, and a CRC32 trailer over
// everything written.
func (s *Store) Save(w io.Writer) error {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)

	if _, err := mw.Write([]byte(fileMagic)); err != nil {
		return err
	}
	hdr := []uint64{uint64(fileVersion), uint64(s.n), uint64(s.dims)}
	for _, h := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	buf := make([]byte, 8)
	writeCol := func(col []float64) error {
		for _, x := range col {
			binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
			if _, err := mw.Write(buf); err != nil {
				return err
			}
		}
		return nil
	}
	for d := 0; d < s.dims; d++ {
		if err := writeCol(s.columns[d]); err != nil {
			return err
		}
	}
	if err := writeCol(s.totals); err != nil {
		return err
	}
	del := s.deleted.Slice()
	if err := binary.Write(mw, binary.LittleEndian, uint64(len(del))); err != nil {
		return err
	}
	for _, id := range del {
		if err := binary.Write(mw, binary.LittleEndian, uint64(id)); err != nil {
			return err
		}
	}
	// Trailer: CRC over all preceding bytes, written to w only.
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// Load reads a store written by Save, validating magic, version, and CRC.
func Load(r io.Reader) (*Store, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)

	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if string(magic) != fileMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	var version, n64, dims64 uint64
	for _, p := range []*uint64{&version, &n64, &dims64} {
		if err := binary.Read(tr, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	if uint32(version) != fileVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	n, dims := int(n64), int(dims64)
	if dims < 1 || n < 0 || dims > 1<<20 || n > 1<<31 {
		return nil, fmt.Errorf("%w: implausible header n=%d dims=%d", ErrCorrupt, n, dims)
	}
	s := New(dims)
	s.n = n
	buf := make([]byte, 8)
	readCol := func() ([]float64, error) {
		// Grow incrementally instead of trusting the header's n up front:
		// a malformed header cannot force a huge allocation, because
		// memory stays bounded by the bytes actually present in the
		// stream (reads fail at the real EOF long before a hostile n is
		// reached).
		col := make([]float64, 0, min(n, 4096))
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(tr, buf); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
			}
			col = append(col, math.Float64frombits(binary.LittleEndian.Uint64(buf)))
		}
		return col, nil
	}
	var err error
	for d := 0; d < dims; d++ {
		if s.columns[d], err = readCol(); err != nil {
			return nil, err
		}
		for _, x := range s.columns[d] {
			s.observe(d, x)
		}
	}
	if s.totals, err = readCol(); err != nil {
		return nil, err
	}
	var ndel uint64
	if err := binary.Read(tr, binary.LittleEndian, &ndel); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ndel > uint64(n) {
		return nil, fmt.Errorf("%w: %d deletions for %d rows", ErrCorrupt, ndel, n)
	}
	s.deleted = bitmap.New(n)
	for i := uint64(0); i < ndel; i++ {
		var id uint64
		if err := binary.Read(tr, binary.LittleEndian, &id); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if id >= uint64(n) {
			return nil, fmt.Errorf("%w: deleted id %d out of range", ErrCorrupt, id)
		}
		s.deleted.Set(int(id))
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(r, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("%w: missing checksum: %v", ErrCorrupt, err)
	}
	if got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return s, nil
}

// SaveFile writes the store to path atomically (write to temp, rename).
func (s *Store) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := s.Save(bw); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a store from path.
func LoadFile(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}

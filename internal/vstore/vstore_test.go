package vstore

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"bond/internal/dataset"
	"bond/internal/quant"
)

func sampleVectors() [][]float64 {
	return [][]float64{
		{0.1, 0.2, 0.7},
		{0.5, 0.4, 0.1},
		{0.0, 0.9, 0.1},
	}
}

func TestFromVectorsColumnLayout(t *testing.T) {
	s := FromVectors(sampleVectors())
	if s.Dims() != 3 || s.Len() != 3 || s.Live() != 3 {
		t.Fatalf("dims=%d len=%d live=%d", s.Dims(), s.Len(), s.Live())
	}
	col1 := s.Column(1)
	want := []float64{0.2, 0.4, 0.9}
	for i := range want {
		if col1[i] != want[i] {
			t.Errorf("col1[%d] = %v, want %v", i, col1[i], want[i])
		}
	}
}

func TestRowRoundTrip(t *testing.T) {
	vs := sampleVectors()
	s := FromVectors(vs)
	for id, v := range vs {
		got := s.Row(id)
		for d := range v {
			if got[d] != v[d] {
				t.Errorf("Row(%d)[%d] = %v, want %v", id, d, got[d], v[d])
			}
		}
	}
}

func TestTotals(t *testing.T) {
	s := FromVectors(sampleVectors())
	want := []float64{1.0, 1.0, 1.0}
	for i, x := range s.Totals() {
		if math.Abs(x-want[i]) > 1e-12 {
			t.Errorf("total[%d] = %v, want %v", i, x, want[i])
		}
	}
}

func TestAppendExtendsAllColumns(t *testing.T) {
	s := New(2)
	id := s.Append([]float64{0.3, 0.6})
	if id != 0 || s.Len() != 1 {
		t.Fatalf("id=%d len=%d", id, s.Len())
	}
	id = s.Append([]float64{0.1, 0.2})
	if id != 1 {
		t.Fatalf("second id = %d", id)
	}
	if s.Column(0)[1] != 0.1 || s.Column(1)[1] != 0.2 {
		t.Error("columns not extended consistently")
	}
	if math.Abs(s.Totals()[1]-0.3) > 1e-12 {
		t.Errorf("total = %v", s.Totals()[1])
	}
}

func TestAppendDimMismatchPanics(t *testing.T) {
	s := New(2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	s.Append([]float64{1})
}

func TestDeleteAndLive(t *testing.T) {
	s := FromVectors(sampleVectors())
	s.Delete(1)
	if s.Live() != 2 || !s.IsDeleted(1) || s.IsDeleted(0) {
		t.Errorf("live=%d", s.Live())
	}
	s.Delete(1) // idempotent
	if s.Live() != 2 {
		t.Error("double delete changed live count")
	}
	ids := s.LiveIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 2 {
		t.Errorf("LiveIDs = %v", ids)
	}
}

func TestReorganizeCompacts(t *testing.T) {
	vs := sampleVectors()
	s := FromVectors(vs)
	s.Delete(0)
	mapping := s.Reorganize()
	if s.Len() != 2 || s.Live() != 2 {
		t.Fatalf("after reorganize: len=%d live=%d", s.Len(), s.Live())
	}
	if mapping[0] != -1 || mapping[1] != 0 || mapping[2] != 1 {
		t.Errorf("mapping = %v", mapping)
	}
	// Vector 2 must now live at id 1 with intact coefficients.
	got := s.Row(1)
	for d := range vs[2] {
		if got[d] != vs[2][d] {
			t.Errorf("relocated row[%d] = %v, want %v", d, got[d], vs[2][d])
		}
	}
}

func TestReorganizeNoDeletionsIsIdentity(t *testing.T) {
	s := FromVectors(sampleVectors())
	mapping := s.Reorganize()
	for i, m := range mapping {
		if m != i {
			t.Errorf("mapping[%d] = %d", i, m)
		}
	}
	if s.Len() != 3 {
		t.Errorf("len = %d", s.Len())
	}
}

func TestAppendAfterDeleteKeepsMarks(t *testing.T) {
	s := FromVectors(sampleVectors())
	s.Delete(2)
	id := s.Append([]float64{0.2, 0.2, 0.6})
	if id != 3 {
		t.Fatalf("id = %d", id)
	}
	if !s.IsDeleted(2) || s.IsDeleted(3) {
		t.Error("delete marks lost across append")
	}
	if s.Live() != 3 {
		t.Errorf("live = %d", s.Live())
	}
}

func TestQuantize(t *testing.T) {
	s := FromVectors(sampleVectors())
	qs := s.Quantize(quant.NewUnit())
	if len(qs.Codes) != 3 {
		t.Fatalf("code columns = %d", len(qs.Codes))
	}
	for d := 0; d < 3; d++ {
		for id := 0; id < 3; id++ {
			x := s.Column(d)[id]
			c := qs.Codes[d][id]
			if x < qs.Q.CellLower(c)-1e-12 || x > qs.Q.CellUpper(c)+1e-12 {
				t.Errorf("value %v not in its cell (d=%d id=%d)", x, d, id)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	vs := dataset.CorelLike(40, 16, 3)
	s := FromVectors(vs)
	s.Delete(7)
	s.Delete(13)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Len() != s.Len() || got.Dims() != s.Dims() || got.Live() != s.Live() {
		t.Fatalf("shape mismatch: %d/%d/%d vs %d/%d/%d",
			got.Len(), got.Dims(), got.Live(), s.Len(), s.Dims(), s.Live())
	}
	for d := 0; d < s.Dims(); d++ {
		for id := 0; id < s.Len(); id++ {
			if got.Column(d)[id] != s.Column(d)[id] {
				t.Fatalf("column %d id %d differs", d, id)
			}
		}
	}
	for id := 0; id < s.Len(); id++ {
		if got.IsDeleted(id) != s.IsDeleted(id) {
			t.Errorf("delete mark mismatch at %d", id)
		}
		if got.Totals()[id] != s.Totals()[id] {
			t.Errorf("total mismatch at %d", id)
		}
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	s := FromVectors(sampleVectors())
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte: CRC must catch it.
	bad := append([]byte(nil), data...)
	bad[20] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Error("corrupted payload accepted")
	}

	// Truncate: must error, not panic.
	if _, err := Load(bytes.NewReader(data[:len(data)-10])); err == nil {
		t.Error("truncated file accepted")
	}

	// Bad magic.
	bad2 := append([]byte(nil), data...)
	bad2[0] = 'X'
	if _, err := Load(bytes.NewReader(bad2)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.bond")
	s := FromVectors(sampleVectors())
	if err := s.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if got.Len() != 3 || got.Dims() != 3 {
		t.Errorf("loaded shape %d×%d", got.Len(), got.Dims())
	}
}

// Property: save/load round-trips arbitrary stores bit-exactly.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%20 + 1
		dims := int(dRaw)%8 + 1
		vs := make([][]float64, n)
		for i := range vs {
			v := make([]float64, dims)
			for d := range v {
				v[d] = rng.Float64()
			}
			vs[i] = v
		}
		s := FromVectors(vs)
		if rng.Intn(2) == 0 {
			s.Delete(rng.Intn(n))
		}
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil {
			return false
		}
		for d := 0; d < dims; d++ {
			for id := 0; id < n; id++ {
				if got.Column(d)[id] != s.Column(d)[id] {
					return false
				}
			}
		}
		return got.Live() == s.Live()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestValueRangeTracking(t *testing.T) {
	s := New(2)
	lo, hi := s.ValueRange()
	if !math.IsInf(lo, 1) || !math.IsInf(hi, -1) {
		t.Errorf("empty range = [%v, %v]", lo, hi)
	}
	s.Append([]float64{0.2, 0.8})
	s.AppendBatch([][]float64{{0.1, 0.9}, {0.5, 0.5}})
	lo, hi = s.ValueRange()
	if lo != 0.1 || hi != 0.9 {
		t.Errorf("range = [%v, %v], want [0.1, 0.9]", lo, hi)
	}
	// The range survives save/load.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi = got.ValueRange()
	if lo != 0.1 || hi != 0.9 {
		t.Errorf("loaded range = [%v, %v]", lo, hi)
	}
}

// Package stats provides the summary statistics used by the experiment
// harness: response-time summaries (min/max/average/median, as in the
// paper's Tables 3 and 4) and dataset shape statistics (per-bin means and
// mean sorted-value profiles, as in Figure 2).
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary holds the order statistics the paper reports for response times.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	StdDev float64
}

// Summarize computes a Summary over xs. It panics if xs is empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize on empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:   len(xs),
		Min: sorted[0],
		Max: sorted[len(sorted)-1],
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if n := len(sorted); n%2 == 1 {
		s.Median = sorted[n/2]
	} else {
		s.Median = (sorted[n/2-1] + sorted[n/2]) / 2
	}
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// String renders the summary in the paper's table style (min max avg median).
func (s Summary) String() string {
	return fmt.Sprintf("min=%.2f max=%.2f avg=%.2f median=%.2f (n=%d)",
		s.Min, s.Max, s.Mean, s.Median, s.N)
}

// SummarizeDurations converts durations to milliseconds and summarizes them,
// matching the paper's "times in msec" presentation.
func SummarizeDurations(ds []time.Duration) Summary {
	ms := make([]float64, len(ds))
	for i, d := range ds {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	return Summarize(ms)
}

// MeanPerDimension returns, for a collection of equal-length vectors, the
// mean value of each dimension — the upper panel of the paper's Figure 2
// ("average value per bin"). It panics on an empty collection or ragged rows.
func MeanPerDimension(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		panic("stats: MeanPerDimension on empty collection")
	}
	dims := len(vectors[0])
	out := make([]float64, dims)
	for _, v := range vectors {
		if len(v) != dims {
			panic(fmt.Sprintf("stats: ragged vector: len %d, want %d", len(v), dims))
		}
		for i, x := range v {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(vectors))
	}
	return out
}

// MeanSortedProfile returns the mean of the per-vector descending-sorted
// value profile — the lower panel of the paper's Figure 2 ("average
// distribution of values per histogram"). Entry j is the average of the
// (j+1)-th largest value across all vectors.
func MeanSortedProfile(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		panic("stats: MeanSortedProfile on empty collection")
	}
	dims := len(vectors[0])
	out := make([]float64, dims)
	buf := make([]float64, dims)
	for _, v := range vectors {
		if len(v) != dims {
			panic(fmt.Sprintf("stats: ragged vector: len %d, want %d", len(v), dims))
		}
		copy(buf, v)
		sort.Sort(sort.Reverse(sort.Float64Slice(buf)))
		for i, x := range buf {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(vectors))
	}
	return out
}

// GiniCoefficient measures the skew of a non-negative vector in [0, 1]:
// 0 for a uniform vector, approaching 1 as mass concentrates in few entries.
// The experiment harness uses it to characterize generated data sets.
func GiniCoefficient(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: GiniCoefficient on empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var cum, total float64
	for _, x := range sorted {
		total += x
	}
	if total == 0 {
		return 0
	}
	var lorenz float64 // sum of cumulative shares
	for _, x := range sorted {
		cum += x
		lorenz += cum / total
	}
	n := float64(len(sorted))
	// Gini = 1 - 2*B where B is the area under the Lorenz curve.
	return 1 - (2*lorenz-1)/n
}

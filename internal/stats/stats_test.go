package stats

import (
	"math"
	"testing"
	"time"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeOdd(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Min != 1 || s.Max != 3 || s.Median != 2 || !almostEqual(s.Mean, 2, 1e-12) {
		t.Errorf("unexpected summary: %+v", s)
	}
	if s.N != 3 {
		t.Errorf("N = %d, want 3", s.N)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if !almostEqual(s.Median, 2.5, 1e-12) {
		t.Errorf("Median = %v, want 2.5", s.Median)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Errorf("unexpected summary: %+v", s)
	}
}

func TestSummarizeStdDev(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.StdDev, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", s.StdDev)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]time.Duration{time.Millisecond, 3 * time.Millisecond})
	if !almostEqual(s.Mean, 2, 1e-9) {
		t.Errorf("Mean = %v ms, want 2", s.Mean)
	}
}

func TestMeanPerDimension(t *testing.T) {
	vs := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	got := MeanPerDimension(vs)
	if !almostEqual(got[0], 2.0/3, 1e-12) || !almostEqual(got[1], 2.0/3, 1e-12) {
		t.Errorf("got %v", got)
	}
}

func TestMeanPerDimensionRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged input")
		}
	}()
	MeanPerDimension([][]float64{{1, 2}, {1}})
}

func TestMeanSortedProfile(t *testing.T) {
	vs := [][]float64{{0.1, 0.9}, {0.8, 0.2}}
	got := MeanSortedProfile(vs)
	// Sorted rows: [0.9 0.1], [0.8 0.2] -> means [0.85 0.15].
	if !almostEqual(got[0], 0.85, 1e-12) || !almostEqual(got[1], 0.15, 1e-12) {
		t.Errorf("got %v", got)
	}
	// The profile must be non-increasing by construction.
	if got[0] < got[1] {
		t.Error("profile not sorted descending")
	}
}

func TestGiniUniformIsZero(t *testing.T) {
	if g := GiniCoefficient([]float64{1, 1, 1, 1}); !almostEqual(g, 0, 1e-12) {
		t.Errorf("Gini(uniform) = %v, want 0", g)
	}
}

func TestGiniConcentratedIsHigh(t *testing.T) {
	xs := make([]float64, 100)
	xs[0] = 1
	if g := GiniCoefficient(xs); g < 0.9 {
		t.Errorf("Gini(point mass) = %v, want > 0.9", g)
	}
}

func TestGiniZeroVector(t *testing.T) {
	if g := GiniCoefficient([]float64{0, 0}); g != 0 {
		t.Errorf("Gini(zeros) = %v, want 0", g)
	}
}

func TestGiniMonotoneInSkew(t *testing.T) {
	mild := GiniCoefficient([]float64{3, 2, 2, 1})
	strong := GiniCoefficient([]float64{7, 0.5, 0.3, 0.2})
	if strong <= mild {
		t.Errorf("Gini not monotone: mild=%v strong=%v", mild, strong)
	}
}

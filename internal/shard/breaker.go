package shard

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-shard circuit breaker. It opens after Threshold
// consecutive failures, fast-failing every call for Cooldown so a dead
// or drowning shard costs the coordinator one breaker check instead of a
// full retry ladder per request. After the cooldown one trial call is
// let through (half-open): success closes the circuit, failure re-opens
// it for another cooldown. Both live traffic and the background health
// prober feed it, so an idle coordinator still notices a shard coming
// back.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive failures while closed
	openedAt  time.Time
	trialLive bool // a half-open trial is in flight

	opens int64 // cumulative closed→open transitions, for /stats
}

// NewBreaker returns a closed breaker opening after threshold
// consecutive failures and cooling down for cooldown before a trial.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a call may proceed. While open it returns false
// until the cooldown elapses, then admits exactly one trial call
// (half-open) until that trial reports an outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.trialLive = true
		return true
	default: // half-open
		if b.trialLive {
			return false
		}
		b.trialLive = true
		return true
	}
}

// Success reports a successful call (or probe), closing the circuit.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.trialLive = false
}

// Failure reports a failed call (or probe). The threshold counts
// consecutive failures while closed; a half-open trial failure re-opens
// immediately.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	case breakerHalfOpen:
		b.open()
	case breakerOpen:
		// Late failures from calls admitted before the open; nothing to do.
	}
}

// open transitions to open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = breakerOpen
	b.openedAt = time.Now()
	b.failures = 0
	b.trialLive = false
	b.opens++
}

// State names the current state for /stats.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}

// Opens returns how many times the circuit has opened since start.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

package shard

import (
	"fmt"
	"net/http"
	"testing"

	"bond/internal/api"
)

// ingestBoth pushes the same batches through the coordinator and the
// single-node oracle, asserting the coordinator assigns exactly the ids
// the single node does — the lockstep invariant all routing rests on.
func ingestBoth(t *testing.T, cl *testCluster, oracle string, name string, batches [][][]float64) {
	t.Helper()
	for bi, batch := range batches {
		var co, single api.IngestResponse
		if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/vectors",
			api.IngestRequest{Vectors: batch}, &co); status != http.StatusOK {
			t.Fatalf("coordinator ingest batch %d: status %d: %s", bi, status, raw)
		}
		if status, raw := doJSON(t, http.MethodPost, oracle+"/collections/"+name+"/vectors",
			api.IngestRequest{Vectors: batch}, &single); status != http.StatusOK {
			t.Fatalf("oracle ingest batch %d: status %d: %s", bi, status, raw)
		}
		if co.FirstID != single.FirstID || co.Count != single.Count {
			t.Fatalf("batch %d: coordinator assigned [%d,+%d), oracle [%d,+%d)",
				bi, co.FirstID, co.Count, single.FirstID, single.Count)
		}
	}
}

// TestCoordinatorMatchesSingleNodeOracle is the healthy-cluster
// acceptance test: every query answered by a 3-shard coordinator must be
// byte-identical to the same query against one node holding all the
// data, across strategies, criteria, query-by-example, batches, and
// deletes.
func TestCoordinatorMatchesSingleNodeOracle(t *testing.T) {
	cl := newTestCluster(t, 3, fastTestConfig())
	oracle := newOracleServer(t)
	const name, dims = "imgs", 8

	create := api.CreateRequest{Dims: dims, SegmentSize: 16}
	if status, raw := doJSON(t, http.MethodPut, cl.front.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatalf("coordinator create: status %d: %s", status, raw)
	}
	if status, raw := doJSON(t, http.MethodPut, oracle.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatalf("oracle create: status %d: %s", status, raw)
	}

	vectors := deterministicVectors(60, dims)
	// Ragged batch sizes: single vectors and batches must round-robin
	// identically.
	ingestBoth(t, cl, oracle.URL, name, [][][]float64{
		vectors[0:1], vectors[1:8], vectors[8:28], vectors[28:60],
	})

	query := deterministicVectors(61, dims)[60]
	// Pinned strategies only: "auto" may legitimately pick different
	// per-segment strategies on a 20-vector shard than on the 60-vector
	// single node, changing float summation order in the last ulp.
	for _, strategy := range []string{"exact", "bond", "vafile", "compressed"} {
		for _, criterion := range []string{"hq", "eq"} {
			spec := api.QuerySpec{Query: query, K: 10, Criterion: criterion, Strategy: strategy}
			var coResp, singleResp rankedBody
			if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &coResp); status != http.StatusOK {
				t.Fatalf("%s/%s coordinator query: status %d: %s", strategy, criterion, status, raw)
			}
			if status, raw := doJSON(t, http.MethodPost, oracle.URL+"/collections/"+name+"/query", spec, &singleResp); status != http.StatusOK {
				t.Fatalf("%s/%s oracle query: status %d: %s", strategy, criterion, status, raw)
			}
			if string(coResp.Results) != string(singleResp.Results) {
				t.Fatalf("%s/%s: coordinator results diverge from single node:\n  coordinator: %s\n  single node: %s",
					strategy, criterion, coResp.Results, singleResp.Results)
			}
			if coResp.Partial {
				t.Fatalf("%s/%s: healthy cluster answered partial", strategy, criterion)
			}
		}
	}

	// Query-by-example: the coordinator must resolve the global id
	// against its owner shard and serve the same answer.
	id := 13
	spec := api.QuerySpec{ID: &id, K: 5, Strategy: "exact"}
	var coResp, singleResp rankedBody
	if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &coResp); status != http.StatusOK {
		t.Fatalf("coordinator query-by-example: status %d: %s", status, raw)
	}
	if status, raw := doJSON(t, http.MethodPost, oracle.URL+"/collections/"+name+"/query", spec, &singleResp); status != http.StatusOK {
		t.Fatalf("oracle query-by-example: status %d: %s", status, raw)
	}
	if string(coResp.Results) != string(singleResp.Results) {
		t.Fatalf("query-by-example diverges:\n  coordinator: %s\n  single node: %s", coResp.Results, singleResp.Results)
	}

	// Batch queries, mixed criteria in one request.
	batch := api.BatchRequest{Queries: []api.QuerySpec{
		{Query: vectors[3], K: 7, Criterion: "hq", Strategy: "exact"},
		{Query: vectors[40], K: 4, Criterion: "eq", Strategy: "bond"},
	}}
	var coBatch, singleBatch struct {
		Results []rankedBody `json:"results"`
	}
	if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query/batch", batch, &coBatch); status != http.StatusOK {
		t.Fatalf("coordinator batch: status %d: %s", status, raw)
	}
	if status, raw := doJSON(t, http.MethodPost, oracle.URL+"/collections/"+name+"/query/batch", batch, &singleBatch); status != http.StatusOK {
		t.Fatalf("oracle batch: status %d: %s", status, raw)
	}
	if len(coBatch.Results) != len(singleBatch.Results) {
		t.Fatalf("batch sizes diverge: %d vs %d", len(coBatch.Results), len(singleBatch.Results))
	}
	for i := range coBatch.Results {
		if string(coBatch.Results[i].Results) != string(singleBatch.Results[i].Results) {
			t.Fatalf("batch query %d diverges:\n  coordinator: %s\n  single node: %s",
				i, coBatch.Results[i].Results, singleBatch.Results[i].Results)
		}
	}

	// Vector readback routes to the owner and translates ids both ways.
	for _, g := range []int{0, 1, 2, 29, 59} {
		var coVec, singleVec api.VectorResponse
		if status, raw := doJSON(t, http.MethodGet, fmt.Sprintf("%s/collections/%s/vectors/%d", cl.front.URL, name, g), nil, &coVec); status != http.StatusOK {
			t.Fatalf("coordinator get vector %d: status %d: %s", g, status, raw)
		}
		if status, _ := doJSON(t, http.MethodGet, fmt.Sprintf("%s/collections/%s/vectors/%d", oracle.URL, name, g), nil, &singleVec); status != http.StatusOK {
			t.Fatalf("oracle get vector %d: status %d", g, status)
		}
		if coVec.ID != g {
			t.Fatalf("vector %d came back with id %d", g, coVec.ID)
		}
		if fmt.Sprint(coVec.Vector) != fmt.Sprint(singleVec.Vector) {
			t.Fatalf("vector %d diverges", g)
		}
	}
	if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/collections/"+name+"/vectors/999", nil, nil); status != http.StatusNotFound {
		t.Fatalf("out-of-range vector read: status %d, want 404", status)
	}

	// Deletes route the same way; post-delete answers must still match.
	for _, g := range []int{13, 28} {
		if status, raw := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/collections/%s/vectors/%d", cl.front.URL, name, g), nil, nil); status != http.StatusNoContent {
			t.Fatalf("coordinator delete %d: status %d: %s", g, status, raw)
		}
		if status, _ := doJSON(t, http.MethodDelete, fmt.Sprintf("%s/collections/%s/vectors/%d", oracle.URL, name, g), nil, nil); status != http.StatusNoContent {
			t.Fatalf("oracle delete %d: status %d", g, status)
		}
	}
	spec = api.QuerySpec{Query: query, K: 10, Strategy: "exact"}
	if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &coResp); status != http.StatusOK {
		t.Fatalf("post-delete coordinator query: status %d: %s", status, raw)
	}
	if _, _ = doJSON(t, http.MethodPost, oracle.URL+"/collections/"+name+"/query", spec, &singleResp); string(coResp.Results) != string(singleResp.Results) {
		t.Fatalf("post-delete results diverge:\n  coordinator: %s\n  single node: %s", coResp.Results, singleResp.Results)
	}

	// Aggregated collection stats must add up to the single node's view.
	var coStats struct {
		Dims int `json:"dims"`
		Len  int `json:"len"`
		Live int `json:"live"`
	}
	if status, raw := doJSON(t, http.MethodGet, cl.front.URL+"/collections/"+name, nil, &coStats); status != http.StatusOK {
		t.Fatalf("coordinator collection stats: status %d: %s", status, raw)
	}
	if coStats.Dims != dims || coStats.Len != 60 || coStats.Live != 58 {
		t.Fatalf("aggregated stats = %+v, want dims %d len 60 live 58", coStats, dims)
	}

	// Collection listing is the union of the shards'.
	var list struct {
		Collections []string `json:"collections"`
	}
	if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/collections", nil, &list); status != http.StatusOK || len(list.Collections) != 1 || list.Collections[0] != name {
		t.Fatalf("collection list = %v (status %d)", list.Collections, status)
	}
}

// TestCoordinatorValidation pins the 4xx surface: bad specs fail fast at
// the coordinator without consuming shard budget.
func TestCoordinatorValidation(t *testing.T) {
	cl := newTestCluster(t, 2, fastTestConfig())
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/c", api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	cases := []struct {
		name string
		spec api.QuerySpec
	}{
		{"no query", api.QuerySpec{K: 3}},
		{"bad k", api.QuerySpec{Query: []float64{1, 2, 3, 4}}},
		{"bad criterion", api.QuerySpec{Query: []float64{1, 2, 3, 4}, K: 3, Criterion: "nope"}},
		{"bad policy", api.QuerySpec{Query: []float64{1, 2, 3, 4}, K: 3, Policy: "lenient"}},
		{"query and id", api.QuerySpec{Query: []float64{1, 2, 3, 4}, ID: new(int), K: 3}},
	}
	for _, tc := range cases {
		var e api.Error
		if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/query", tc.spec, &e); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, status)
		}
	}
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/recluster", map[string]int{}, nil); status != http.StatusNotImplemented {
		t.Error("recluster on the coordinator should be 501")
	}
}

// TestCoordinatorStatsEndpoint checks the /stats robustness gauges are
// wired through.
func TestCoordinatorStatsEndpoint(t *testing.T) {
	cl := newTestCluster(t, 2, fastTestConfig())
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/c", api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/vectors", api.IngestRequest{Vectors: deterministicVectors(6, 4)}, nil)
	doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/query", api.QuerySpec{Query: []float64{1, 0, 0, 0}, K: 3}, nil)

	var st coordinatorStats
	if status, raw := doJSON(t, http.MethodGet, cl.front.URL+"/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("/stats: status %d: %s", status, raw)
	}
	if st.Mode != "coordinator" || st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Queries != 1 || st.Fanouts == 0 {
		t.Fatalf("queries = %d, fanouts = %d", st.Queries, st.Fanouts)
	}
	for i, s := range st.Shards {
		if s.ID != i || !s.Healthy || s.Breaker != "closed" || s.Requests == 0 {
			t.Fatalf("shard %d gauges = %+v", i, s)
		}
	}
}

// Package shard implements bondd's sharded serving layer: a static-
// topology coordinator that spreads one logical collection across N
// bondd nodes and serves the same HTTP API a single node does.
//
// Placement is by vector id. Global id g lives on shard g mod N as that
// shard's local id g div N; ingest assigns global ids round-robin in
// arrival order, so a cluster loaded through the coordinator assigns
// exactly the ids a single node would have — which is what lets the
// chaos suite pin coordinator answers byte-identical to a single-node
// oracle. Queries fan out to every shard and the per-shard top-k lists
// are exact-merged with the same score-then-id tie-break the segment
// merge uses (internal/streammerge, internal/topk), so a healthy
// cluster is indistinguishable from one big node.
//
// The moment queries cross a network boundary, fault tolerance is the
// product. Every shard call runs inside a robustness envelope: a
// per-shard deadline carved from the request's remaining budget, retries
// with exponential backoff and jitter on transient failures, a hedged
// second request for straggler shards, and a per-shard circuit breaker
// fed by both live traffic and a background health prober. When a shard
// is missed anyway, the coordinator degrades instead of dying — the same
// degrade-don't-die discipline the underlying engine applies to query
// evaluation (tolerance, deadlines), lifted to the cluster layer: under
// the partial policy it returns the exact top-k over the surviving
// shards, marked partial with the missed shard ids; under strict it
// returns a clean, prompt error.
package shard

import (
	"encoding/json"
	"fmt"
	"net/url"
	"os"
	"sort"
)

// Shard is one node of the static topology.
type Shard struct {
	// ID is the shard's position in the modulo routing: global ids g with
	// g mod N == ID live here. Ids must cover 0..N-1 exactly.
	ID int `json:"id"`
	// URL is the shard's base URL (scheme://host:port), the bondd HTTP
	// API rooted at "/".
	URL string `json:"url"`
	// Replicas are base URLs of bondd followers tailing this shard's WAL
	// (bondd -follow <url>). When the primary's breaker opens, the
	// coordinator promotes the first caught-up replica in listed order and
	// swaps its calls over to it; with read steering enabled, idempotent
	// reads also prefer a caught-up replica.
	Replicas []string `json:"replicas,omitempty"`
}

// Topology is the static shard map the coordinator serves from: shard id
// → base URL, loaded once at startup from a JSON file. Changing the
// topology means restarting the coordinator — deliberately, because the
// modulo placement makes the shard count part of the data layout.
type Topology struct {
	Shards []Shard `json:"shards"`
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("shard: parse topology: %w", err)
	}
	if len(t.Shards) == 0 {
		return nil, fmt.Errorf("shard: topology has no shards")
	}
	sort.Slice(t.Shards, func(i, j int) bool { return t.Shards[i].ID < t.Shards[j].ID })
	seenURL := make(map[string]int, len(t.Shards))
	for i, s := range t.Shards {
		if s.ID != i {
			return nil, fmt.Errorf("shard: topology ids must cover 0..%d exactly (got id %d)", len(t.Shards)-1, s.ID)
		}
		u, err := url.Parse(s.URL)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("shard: shard %d has invalid url %q (want scheme://host:port)", s.ID, s.URL)
		}
		if prev, dup := seenURL[s.URL]; dup {
			return nil, fmt.Errorf("shard: shards %d and %d share url %q", prev, s.ID, s.URL)
		}
		seenURL[s.URL] = s.ID
		// Replica URLs share the primaries' namespace: a replica serving two
		// shards (or doubling as a primary) would corrupt both on promotion.
		for _, rep := range s.Replicas {
			ru, err := url.Parse(rep)
			if err != nil || ru.Scheme == "" || ru.Host == "" {
				return nil, fmt.Errorf("shard: shard %d has invalid replica url %q (want scheme://host:port)", s.ID, rep)
			}
			if prev, dup := seenURL[rep]; dup {
				return nil, fmt.Errorf("shard: shard %d replica %q already serves shard %d", s.ID, rep, prev)
			}
			seenURL[rep] = s.ID
		}
	}
	return &t, nil
}

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read topology: %w", err)
	}
	return ParseTopology(data)
}

// N returns the shard count.
func (t *Topology) N() int { return len(t.Shards) }

// Owner returns the shard owning global id g.
func (t *Topology) Owner(g int) int { return g % len(t.Shards) }

// Local translates global id g into its owner's local id.
func (t *Topology) Local(g int) int { return g / len(t.Shards) }

// Global translates a shard's local id back into the global id space.
func (t *Topology) Global(shard, local int) int { return local*len(t.Shards) + shard }

// LocalLen returns how many of the global ids [0, total) shard s owns —
// the local length a shard in lockstep with the coordinator must have.
func (t *Topology) LocalLen(s, total int) int {
	n := len(t.Shards)
	return (total + n - 1 - s) / n
}

package shard

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"bond/internal/api"
)

// This file is the coordinator's side of WAL-shipped replication:
// deciding when a shard's follower replicas are safe to read from and,
// when the primary is gone for good (probe failed AND breaker open),
// promoting one to primary instead of degrading every fan-out.
//
// The safety rule is delegated to the follower's own self-report
// (GET /replstatus): a replica is promotable only while it says
// CaughtUp && !Diverged. CaughtUp is as-of-last-leader-contact, so a
// follower that drained the stream before the leader died keeps
// reporting true, while one that was lagging reports false forever —
// promoting it would silently drop acknowledged writes, which is
// exactly the failure mode the crash suite pins down. The follower
// double-checks on POST /promote and answers 409 if it cannot promote
// safely; the coordinator treats that as a veto, drops the candidate,
// and keeps degrading.
//
// Failover is single-shot per shard: a successful promotion discards
// every other candidate. The siblings still tail the DEAD original
// primary — nothing re-points them at the promoted node — so their
// sticky caught-up self-reports describe a history that forks from the
// new primary's the moment it acknowledges a write. If the promoted
// node dies too, the shard degrades; cascaded failover is left to an
// operator who has re-pointed followers at the new primary.

// fetchReplStatus reads a replica's self-report, outside the envelope
// (the prober's cadence is the retry).
func (c *client) fetchReplStatus(ctx context.Context, base string, timeout time.Duration) (*api.ReplStatus, error) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	raw, err := c.roundTrip(pctx, base, http.MethodGet, "/replstatus", nil)
	if err != nil {
		return nil, err
	}
	var st api.ReplStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// maybePromote tries to fail the shard over to one of its replicas, in
// listed order. Diverged or fenced (409) replicas are dropped for good;
// unreachable or lagging ones stay candidates for the next probe round.
// On success the shard's active URL swaps to the promoted follower, the
// breaker closes, and the shard is healthy again — the fan-out path
// never knew. The remaining candidates are discarded too: they follow
// the old primary, not the promoted one, and keeping them would set up
// a later promotion that silently rewinds past everything the new
// primary acknowledged.
func (co *Coordinator) maybePromote(ctx context.Context, c *client, timeout time.Duration) bool {
	c.promoMu.Lock()
	defer c.promoMu.Unlock()
	var promoted string
	var rest []string
	for i, rep := range c.candidates {
		st, err := c.fetchReplStatus(ctx, rep, timeout)
		if err != nil {
			rest = append(rest, rep) // unreachable: retry next probe round
			continue
		}
		if st.Diverged {
			co.logf("coordinator: shard %d replica %s diverged, never promoting it", c.shard.ID, rep)
			continue // dropped
		}
		if st.Promoted {
			// A previous promotion succeeded but the ack was lost: adopt it.
			promoted = rep
			rest = append(rest, c.candidates[i+1:]...)
			break
		}
		if !st.CaughtUp {
			co.logf("coordinator: shard %d replica %s lagging (%d bytes), not promotable", c.shard.ID, rep, st.LagBytes)
			rest = append(rest, rep)
			continue
		}
		if err := c.promoteReplica(ctx, rep, timeout); err != nil {
			var se *StatusError
			if errors.As(err, &se) && se.Status == http.StatusConflict {
				// The follower vetoed its own promotion (diverged or fenced
				// in the meantime): drop it.
				co.logf("coordinator: shard %d replica %s refused promotion: %v", c.shard.ID, rep, err)
				continue
			}
			rest = append(rest, rep)
			continue
		}
		promoted = rep
		rest = append(rest, c.candidates[i+1:]...)
		break
	}
	if promoted == "" {
		c.candidates = rest
		return false
	}
	// rest holds the siblings that would have stayed candidates. They
	// tail the dead original primary, so from here on their caught-up
	// reports are about the wrong history: drop them all and degrade if
	// the new primary dies, rather than cascade onto stale state.
	if len(rest) > 0 {
		co.logf("coordinator: shard %d dropping stale replicas %v — they follow the old primary, not %s; re-point and re-follow to restore redundancy", c.shard.ID, rest, promoted)
	}
	c.candidates = nil
	c.active.Store(&promoted)
	c.steer.Store(nil)
	c.promotions.Add(1)
	c.brk.Success()
	c.healthy.Store(true)
	co.logf("coordinator: promoted replica %s to primary for shard %d", promoted, c.shard.ID)
	return true
}

// promoteReplica issues the POST /promote handshake.
func (c *client) promoteReplica(ctx context.Context, base string, timeout time.Duration) error {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err := c.roundTrip(pctx, base, http.MethodPost, "/promote", nil)
	return err
}

// refreshSteer repoints the shard's read steering at its first
// caught-up, undiverged, unpromoted replica — or clears it when none
// qualifies. Steering is disabled once a promotion has moved the active
// URL off the primary: the leftover replicas still follow the dead old
// leader and would serve reads that miss every post-failover write.
func (co *Coordinator) refreshSteer(ctx context.Context, c *client, timeout time.Duration) {
	if c.activeURL() != c.shard.URL {
		c.steer.Store(nil)
		return
	}
	c.promoMu.Lock()
	candidates := append([]string(nil), c.candidates...)
	c.promoMu.Unlock()
	for _, rep := range candidates {
		st, err := c.fetchReplStatus(ctx, rep, timeout)
		if err != nil || st.Promoted || st.Diverged || !st.CaughtUp {
			continue
		}
		rep := rep
		c.steer.Store(&rep)
		return
	}
	c.steer.Store(nil)
}

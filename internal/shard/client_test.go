package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastEnvelope keeps unit-test retries cheap.
func fastEnvelope() Envelope {
	return Envelope{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond}
}

func testClient(t *testing.T, h http.Handler, env Envelope, brk *Breaker) *client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	if brk == nil {
		brk = NewBreaker(100, time.Hour)
	}
	return newClient(Shard{ID: 0, URL: ts.URL}, ts.Client(), env, brk)
}

func TestClientRetriesTransientThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}), fastEnvelope(), nil)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/x", nil, &out, false); err != nil {
		t.Fatal(err)
	}
	if !out.OK {
		t.Fatal("response not decoded")
	}
	if got := c.retries.Load(); got != 2 {
		t.Fatalf("retries = %d, want 2", got)
	}
}

func TestClientDoesNotRetryPermanent(t *testing.T) {
	var hits atomic.Int64
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error": "collection not found"}`))
	}), fastEnvelope(), nil)
	err := c.call(context.Background(), http.MethodGet, "/x", nil, nil, false)
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("err = %v, want a 404 StatusError", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("a 404 was attempted %d times, want 1", hits.Load())
	}
	if c.retries.Load() != 0 {
		t.Fatalf("retries = %d, want 0", c.retries.Load())
	}
}

func TestClientRetriesGarbageBody(t *testing.T) {
	var hits atomic.Int64
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Write([]byte(`{{{ not json`))
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}), fastEnvelope(), nil)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.call(context.Background(), http.MethodGet, "/x", nil, &out, false); err != nil {
		t.Fatal(err)
	}
	if c.retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1 (garbage 2xx body must count as transient)", c.retries.Load())
	}
}

func TestClientExhaustsEnvelope(t *testing.T) {
	var hits atomic.Int64
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "overloaded", "code": "overloaded", "retry_after_ms": 1}`))
	}), fastEnvelope(), nil)
	err := c.call(context.Background(), http.MethodGet, "/x", nil, nil, false)
	if err == nil {
		t.Fatal("call succeeded against a permanently failing shard")
	}
	if hits.Load() != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts = 3", hits.Load())
	}
	if c.failures.Load() != 1 {
		t.Fatalf("failures = %d, want 1", c.failures.Load())
	}
}

func TestClientBreakerFastFails(t *testing.T) {
	brk := NewBreaker(1, time.Hour)
	var hits atomic.Int64
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}), Envelope{MaxAttempts: 1}, brk)
	if err := c.call(context.Background(), http.MethodGet, "/x", nil, nil, false); err == nil {
		t.Fatal("first call succeeded")
	}
	before := hits.Load()
	err := c.call(context.Background(), http.MethodGet, "/x", nil, nil, false)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("an open breaker still let a request reach the shard")
	}
	if c.fastFails.Load() != 1 {
		t.Fatalf("fastFails = %d, want 1", c.fastFails.Load())
	}
}

func TestClientHedgeWinsOverStraggler(t *testing.T) {
	// The first request per call hangs; the hedged second answers
	// immediately. The call must finish fast via the hedge.
	var hits atomic.Int64
	block := make(chan struct{})
	defer close(block)
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1)%2 == 1 {
			select {
			case <-block:
			case <-r.Context().Done():
			}
			return
		}
		w.Write([]byte(`{"ok": true}`))
	}), Envelope{MaxAttempts: 1, HedgeAfter: 10 * time.Millisecond}, nil)
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.call(ctx, http.MethodGet, "/x", nil, &out, true); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedged call took %v; the hedge should have finished it fast", elapsed)
	}
	if c.hedges.Load() != 1 || c.hedgeWins.Load() != 1 {
		t.Fatalf("hedges = %d, hedgeWins = %d, want 1 and 1", c.hedges.Load(), c.hedgeWins.Load())
	}
}

func TestClientDeadlineBoundsRetries(t *testing.T) {
	// A shard that never answers must cost at most the context budget,
	// not MaxAttempts × its own patience.
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}), Envelope{MaxAttempts: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond}, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.call(ctx, http.MethodGet, "/x", nil, nil, false)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a hanging shard succeeded")
	}
	if elapsed > time.Second {
		t.Fatalf("call took %v against a 200ms budget", elapsed)
	}
}

func TestClientProbeFeedsHealthAndBreaker(t *testing.T) {
	var healthy atomic.Bool
	brk := NewBreaker(1, time.Hour)
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status": "ok"}`))
	}), Envelope{MaxAttempts: 1}, brk)

	if ok := c.probe(context.Background(), "/healthz", time.Second); ok {
		t.Fatal("probe of a failing shard reported healthy")
	}
	if c.healthy.Load() {
		t.Fatal("health gauge still true after failed probe")
	}
	if brk.Allow() {
		t.Fatal("breaker still closed after probe failure at threshold 1")
	}

	healthy.Store(true)
	if ok := c.probe(context.Background(), "/healthz", time.Second); !ok {
		t.Fatal("probe of a recovered shard reported unhealthy")
	}
	if !c.healthy.Load() {
		t.Fatal("health gauge still false after successful probe")
	}
	if !brk.Allow() {
		t.Fatal("successful probe did not close the breaker")
	}
	if c.probes.Load() != 2 || c.probeFail.Load() != 1 {
		t.Fatalf("probes = %d, probeFail = %d, want 2 and 1", c.probes.Load(), c.probeFail.Load())
	}
}

func TestStatusErrorCarriesStructuredBody(t *testing.T) {
	c := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error": "server overloaded", "code": "overloaded", "retry_after_ms": 1000}`))
	}), Envelope{MaxAttempts: 1}, nil)
	err := c.call(context.Background(), http.MethodGet, "/x", nil, nil, false)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.Status != http.StatusServiceUnavailable || se.Code != "overloaded" || se.RetryAfterMs != 1000 {
		t.Fatalf("StatusError = %+v", se)
	}
}

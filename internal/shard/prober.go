package shard

import (
	"context"
	"sync"
	"time"
)

// proberLoop is the background health prober: every interval it probes
// each shard's health endpoint concurrently, feeding outcomes into the
// per-shard breakers and health gauges. It is what lets an idle
// coordinator notice a shard dying (the breaker opens before the next
// request pays a connect timeout) and a dead shard coming back (the
// breaker closes without waiting for live traffic to trial it).
func (co *Coordinator) proberLoop(interval time.Duration) {
	defer close(co.proberDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-co.stop:
			return
		case <-t.C:
			co.ProbeNow()
		}
	}
}

// ProbeNow probes every shard once, concurrently, and returns how many
// answered healthy. The prober loop calls it on its ticker; tests call
// it directly to advance health state deterministically.
//
// The probe round is also where failover happens: when a shard's probe
// fails while its breaker is open — live traffic and probes have both
// given up on the primary — and the config allows promotion, the round
// tries to promote one of the shard's caught-up replicas in its place
// (see maybePromote). With read steering on, the round also repoints
// each healthy shard's idempotent reads at a caught-up replica.
func (co *Coordinator) ProbeNow() int {
	timeout := co.cfg.ProbeInterval
	if timeout <= 0 || timeout > time.Second {
		timeout = time.Second
	}
	var wg sync.WaitGroup
	healthy := make([]bool, len(co.clients))
	for i, c := range co.clients {
		wg.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			ok := c.probe(context.Background(), co.cfg.ProbePath, timeout)
			if !ok && co.cfg.PromoteReplicas && c.brk.State() == "open" {
				ok = co.maybePromote(context.Background(), c, timeout)
			}
			if co.cfg.ReadReplicas {
				co.refreshSteer(context.Background(), c, timeout)
			}
			healthy[i] = ok
		}(i, c)
	}
	wg.Wait()
	n := 0
	for _, ok := range healthy {
		if ok {
			n++
		}
	}
	return n
}

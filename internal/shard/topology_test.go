package shard

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseTopologyValid(t *testing.T) {
	topo, err := ParseTopology([]byte(`{"shards": [
		{"id": 1, "url": "http://b:8666"},
		{"id": 0, "url": "http://a:8666"},
		{"id": 2, "url": "http://c:8666"}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 3 {
		t.Fatalf("N = %d, want 3", topo.N())
	}
	// Shards are sorted by id regardless of file order.
	for i, s := range topo.Shards {
		if s.ID != i {
			t.Fatalf("shard %d has id %d after parse", i, s.ID)
		}
	}
	if topo.Shards[0].URL != "http://a:8666" {
		t.Fatalf("shard 0 url = %q", topo.Shards[0].URL)
	}
}

func TestParseTopologyRejects(t *testing.T) {
	cases := map[string]string{
		"empty":        `{"shards": []}`,
		"gap":          `{"shards": [{"id": 0, "url": "http://a"}, {"id": 2, "url": "http://b"}]}`,
		"duplicate id": `{"shards": [{"id": 0, "url": "http://a"}, {"id": 0, "url": "http://b"}]}`,
		"dup url":      `{"shards": [{"id": 0, "url": "http://a"}, {"id": 1, "url": "http://a"}]}`,
		"relative url": `{"shards": [{"id": 0, "url": "a:8666"}]}`,
		"garbage":      `{"shards": [`,
	}
	for name, body := range cases {
		if _, err := ParseTopology([]byte(body)); err == nil {
			t.Errorf("%s: parse accepted %s", name, body)
		}
	}
}

func TestLoadTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(`{"shards": [{"id": 0, "url": "http://a:1"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N() != 1 {
		t.Fatalf("N = %d", topo.N())
	}
	if _, err := LoadTopology(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("loading a missing file succeeded")
	} else if !strings.Contains(err.Error(), "topology") {
		t.Fatalf("error %q does not mention the topology", err)
	}
}

// TestPlacementRoundTrip pins the round-robin placement algebra: owner
// and local id round-trip through Global, and LocalLen matches the count
// of global ids each shard owns.
func TestPlacementRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		topo := &Topology{}
		for i := 0; i < n; i++ {
			topo.Shards = append(topo.Shards, Shard{ID: i, URL: "http://x"})
		}
		const total = 100
		perShard := make([]int, n)
		for g := 0; g < total; g++ {
			s, l := topo.Owner(g), topo.Local(g)
			if s != g%n || l != g/n {
				t.Fatalf("n=%d: g=%d placed at (%d,%d)", n, g, s, l)
			}
			if back := topo.Global(s, l); back != g {
				t.Fatalf("n=%d: Global(%d,%d) = %d, want %d", n, s, l, back, g)
			}
			if l != perShard[s] {
				t.Fatalf("n=%d: g=%d got local %d, shard had assigned %d", n, g, l, perShard[s])
			}
			perShard[s]++
		}
		for s := 0; s < n; s++ {
			if got := topo.LocalLen(s, total); got != perShard[s] {
				t.Fatalf("n=%d: LocalLen(%d, %d) = %d, want %d", n, s, total, got, perShard[s])
			}
		}
	}
}

package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"bond/internal/api"
)

// Envelope parameterizes the robustness envelope every shard call runs
// inside: how the request deadline is carved into attempts, how
// transient failures are retried, and when a straggler gets a hedged
// second request.
type Envelope struct {
	// MaxAttempts is the total tries per shard call, first attempt
	// included (default 3). Each attempt's timeout is the call's
	// remaining deadline budget divided by the attempts left, so a call
	// that will be retried never spends its whole budget on try one.
	MaxAttempts int
	// BackoffBase is the first retry's backoff (default 20ms); attempt i
	// waits BackoffBase·2^i plus up to 100% jitter, capped at BackoffMax
	// (default 500ms). A shard answering 503 with a Retry-After hint
	// stretches the wait to honor it, within the deadline.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeAfter launches a second identical request when the first has
	// been in flight this long (0 disables hedging). The first response
	// wins and the loser is cancelled; only idempotent calls (queries,
	// reads) are hedged.
	HedgeAfter time.Duration
}

func (e Envelope) withDefaults() Envelope {
	if e.MaxAttempts < 1 {
		e.MaxAttempts = 3
	}
	if e.BackoffBase <= 0 {
		e.BackoffBase = 20 * time.Millisecond
	}
	if e.BackoffMax <= 0 {
		e.BackoffMax = 500 * time.Millisecond
	}
	return e
}

// ErrCircuitOpen fast-fails a call to a shard whose breaker is open.
var ErrCircuitOpen = errors.New("shard: circuit open")

// StatusError is a non-2xx shard response, body decoded when it carried
// the structured error shape.
type StatusError struct {
	Status       int
	Code         string
	Msg          string
	RetryAfterMs int
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("shard answered %d: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("shard answered %d", e.Status)
}

// transientError reports whether err is worth retrying: connection
// failures, timeouts, garbage responses, and 5xx/429 statuses are
// transient; other 4xx statuses mean the shard is alive and rejecting
// the request itself, so retrying cannot help.
func transientError(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == http.StatusTooManyRequests
	}
	return true
}

// maxResponseBytes caps a shard response read; anything bigger than this
// is a protocol violation, not a result.
const maxResponseBytes = 256 << 20

// client is the coordinator's view of one shard: its address plus the
// robustness state (breaker, counters) and the envelope mechanics.
type client struct {
	shard Shard
	hc    *http.Client
	env   Envelope
	brk   *Breaker

	// active is the base URL calls are served from. It starts at the
	// primary's URL and is swapped by a failover promotion; everything the
	// envelope does (attempts, hedges, probes) reads it per round trip, so
	// a promotion redirects in-flight retries too.
	active atomic.Pointer[string]
	// steer is a caught-up replica's base URL idempotent reads prefer
	// (nil = read from active). Only the prober writes it, and only when
	// the coordinator has ReadReplicas on; a failed steered attempt clears
	// it so retries and later calls fall back to the primary.
	steer atomic.Pointer[string]

	// promoMu guards candidates — the replicas not yet promoted or ruled
	// out (diverged / fenced). The prober's promotion pass is the only
	// consumer.
	promoMu    sync.Mutex
	candidates []string

	healthy atomic.Bool

	requests   atomic.Int64 // calls attempted (excluding breaker fast-fails)
	retries    atomic.Int64 // extra attempts after a transient failure
	hedges     atomic.Int64 // hedged second requests launched
	hedgeWins  atomic.Int64 // hedges that answered before the primary
	failures   atomic.Int64 // calls that exhausted the envelope
	fastFails  atomic.Int64 // calls rejected by an open breaker
	probes     atomic.Int64 // health probes sent
	probeFail  atomic.Int64 // health probes failed
	promotions atomic.Int64 // replica promotions performed
	steered    atomic.Int64 // idempotent reads steered to a replica
}

func newClient(s Shard, hc *http.Client, env Envelope, brk *Breaker) *client {
	c := &client{shard: s, hc: hc, env: env.withDefaults(), brk: brk}
	c.active.Store(&s.URL)
	c.candidates = append([]string(nil), s.Replicas...)
	c.healthy.Store(true) // optimistic until the first probe says otherwise
	return c
}

// activeURL returns the base URL this shard's calls currently target.
func (c *client) activeURL() string { return *c.active.Load() }

// call performs one logical API call against the shard inside the full
// envelope. body is re-sent verbatim on every attempt; a 2xx response is
// decoded into out (when non-nil). hedge marks the call idempotent and
// therefore hedgeable.
func (c *client) call(ctx context.Context, method, path string, body []byte, out any, hedge bool) error {
	if !c.brk.Allow() {
		c.fastFails.Add(1)
		return fmt.Errorf("shard %d (%s): %w", c.shard.ID, c.activeURL(), ErrCircuitOpen)
	}
	c.requests.Add(1)
	var lastErr error
	for attempt := 0; attempt < c.env.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		// Idempotent reads may steer to a caught-up replica on the first
		// attempt; retries always go to the active node, so a flaky replica
		// costs at most one attempt.
		base, steered := c.activeURL(), false
		if hedge && attempt == 0 {
			if s := c.steer.Load(); s != nil {
				base, steered = *s, true
				c.steered.Add(1)
			}
		}
		raw, err := c.attempt(ctx, base, method, path, body, hedge, attempt)
		if err == nil && out != nil {
			if derr := json.Unmarshal(raw, out); derr != nil {
				// A 2xx with an undecodable body is a garbage-responding
				// shard: as transient as a 500 — the retry may land on a
				// recovered process.
				err = fmt.Errorf("shard %d: garbage response: %w", c.shard.ID, derr)
			}
		}
		if err == nil {
			if !steered {
				c.brk.Success()
			}
			return nil
		}
		lastErr = err
		if steered {
			// The replica failed, not the primary: clear the steering so
			// later reads go back to the active node, and keep the breaker
			// out of it.
			c.steer.Store(nil)
			if ctx.Err() != nil {
				break
			}
			continue
		}
		if !transientError(err) {
			// The shard is alive and made a decision; that is a healthy
			// signal for the breaker even though the call failed.
			c.brk.Success()
			return fmt.Errorf("shard %d: %w", c.shard.ID, err)
		}
		c.brk.Failure()
		if ctx.Err() != nil || attempt == c.env.MaxAttempts-1 {
			break
		}
		if !c.backoff(ctx, attempt, lastErr) {
			break
		}
	}
	c.failures.Add(1)
	return fmt.Errorf("shard %d (%s): %w", c.shard.ID, c.activeURL(), lastErr)
}

// backoff sleeps the jittered exponential backoff for the given attempt,
// stretched to any Retry-After hint the failure carried. It returns
// false when the context ends first.
func (c *client) backoff(ctx context.Context, attempt int, cause error) bool {
	d := c.env.BackoffBase << attempt
	if d > c.env.BackoffMax {
		d = c.env.BackoffMax
	}
	d += time.Duration(rand.Int63n(int64(d) + 1)) // full jitter on top
	var se *StatusError
	if errors.As(cause, &se) && se.RetryAfterMs > 0 {
		if hint := time.Duration(se.RetryAfterMs) * time.Millisecond; hint > d {
			d = hint
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if remaining := time.Until(dl); d > remaining {
			// Sleeping past the deadline guarantees failure; give the
			// final attempt whatever budget is left instead.
			d = remaining / 2
		}
	}
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// attempt runs one (possibly hedged) attempt under the carved slice of
// the call's remaining deadline: remaining budget divided by attempts
// left, so early attempts cannot starve later ones.
func (c *client) attempt(ctx context.Context, base, method, path string, body []byte, hedge bool, attempt int) ([]byte, error) {
	attemptCtx := ctx
	var cancel context.CancelFunc
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl)
		if remaining <= 0 {
			return nil, context.DeadlineExceeded
		}
		slice := remaining / time.Duration(c.env.MaxAttempts-attempt)
		attemptCtx, cancel = context.WithTimeout(ctx, slice)
		defer cancel()
	}
	hedgeAfter := c.env.HedgeAfter
	if !hedge || hedgeAfter <= 0 {
		return c.roundTrip(attemptCtx, base, method, path, body)
	}
	return c.hedged(attemptCtx, base, method, path, body, hedgeAfter)
}

// hedged races the primary request against a second one launched after
// hedgeAfter of silence. The first success wins and cancels the loser;
// if both fail the primary's error is reported.
func (c *client) hedged(ctx context.Context, base, method, path string, body []byte, hedgeAfter time.Duration) ([]byte, error) {
	type outcome struct {
		raw    []byte
		err    error
		hedged bool
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps the loser
	results := make(chan outcome, 2)
	launch := func(hedged bool) {
		go func() {
			raw, err := c.roundTrip(ctx, base, method, path, body)
			results <- outcome{raw: raw, err: err, hedged: hedged}
		}()
	}
	launch(false)
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	inFlight := 1
	var firstErr error
	for {
		select {
		case <-timer.C:
			if inFlight == 1 {
				c.hedges.Add(1)
				launch(true)
				inFlight++
			}
		case o := <-results:
			if o.err == nil {
				if o.hedged {
					c.hedgeWins.Add(1)
				}
				return o.raw, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			inFlight--
			if inFlight == 0 {
				return nil, firstErr
			}
			// One attempt failed fast while the other is still out; let
			// the survivor decide the outcome. If the hedge timer has not
			// fired yet it still can, keeping two in flight again.
		}
	}
}

// roundTrip performs one HTTP exchange: 2xx returns the raw body, non-
// 2xx a *StatusError carrying the structured error body when present.
func (c *client) roundTrip(ctx context.Context, base, method, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Status: resp.StatusCode}
		var e api.Error
		if json.Unmarshal(raw, &e) == nil {
			se.Msg, se.Code, se.RetryAfterMs = e.Error, e.Code, e.RetryAfterMs
		}
		return nil, se
	}
	return raw, nil
}

// probe performs one health-probe round trip (outside the envelope: no
// retries, no hedging — the prober's cadence is the retry) and feeds the
// outcome to the breaker and the health gauge.
func (c *client) probe(ctx context.Context, path string, timeout time.Duration) bool {
	c.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	_, err := c.roundTrip(pctx, c.activeURL(), http.MethodGet, path, nil)
	if err != nil {
		c.probeFail.Add(1)
		c.healthy.Store(false)
		c.brk.Failure()
		return false
	}
	c.healthy.Store(true)
	c.brk.Success()
	return true
}

package shard

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"bond/internal/api"
	"bond/internal/server"
)

// replCluster is a testCluster whose every shard has one follower
// replica tailing its primary directly (bypassing the fault proxy, like
// a replication link on a separate network path). Followers run with the
// background tail loop off; tests drive syncAll for deterministic lag.
type replCluster struct {
	*testCluster
	followers      []*server.Server
	followerFronts []*httptest.Server
}

// newReplCluster mirrors newTestCluster plus one follower per shard,
// registered as the shard's replica in the topology.
func newReplCluster(t *testing.T, n int, cfg Config) *replCluster {
	t.Helper()
	rc := &replCluster{testCluster: &testCluster{t: t}}
	topo := &Topology{}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Dir: t.TempDir(), Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		raw := httptest.NewServer(s.Handler())
		t.Cleanup(raw.Close)
		proxy := &faultProxy{backend: s.Handler()}
		front := httptest.NewServer(proxy)
		t.Cleanup(front.Close)

		f, err := server.New(server.Config{
			Dir:            t.TempDir(),
			Logf:           func(string, ...any) {},
			FollowURL:      raw.URL,
			FollowInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		ffront := httptest.NewServer(f.Handler())
		t.Cleanup(ffront.Close)

		rc.raw = append(rc.raw, raw)
		rc.proxies = append(rc.proxies, proxy)
		rc.followers = append(rc.followers, f)
		rc.followerFronts = append(rc.followerFronts, ffront)
		topo.Shards = append(topo.Shards, Shard{ID: i, URL: front.URL, Replicas: []string{ffront.URL}})
	}
	cfg.Topology = topo
	cfg.ProbeInterval = 0
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	rc.co = co
	rc.front = httptest.NewServer(co.Handler())
	t.Cleanup(rc.front.Close)
	return rc
}

// syncAll runs one tail pass on every follower.
func (rc *replCluster) syncAll(t *testing.T) {
	t.Helper()
	for i, f := range rc.followers {
		if err := f.SyncReplicaOnce(); err != nil {
			t.Fatalf("follower %d sync: %v", i, err)
		}
	}
}

// replChaosConfig is fastTestConfig tuned so one failed probe opens the
// breaker and triggers the promotion pass.
func replChaosConfig() Config {
	cfg := fastTestConfig()
	cfg.BreakerThreshold = 1
	cfg.Envelope.MaxAttempts = 1
	cfg.PromoteReplicas = true
	return cfg
}

// queryRanked issues one pinned-strategy query and returns the response
// with results kept as raw bytes for byte-exact comparison.
func queryRanked(t *testing.T, base, name string, spec api.QuerySpec) (int, rankedBody) {
	t.Helper()
	var resp rankedBody
	status, _ := doJSON(t, http.MethodPost, base+"/collections/"+name+"/query", spec, &resp)
	return status, resp
}

// getStats reads the coordinator's gauges into a fresh struct — fresh
// because several fields are omitempty, so decoding into a reused struct
// would let stale values survive a field going empty.
func getStats(t *testing.T, front string) coordinatorStats {
	t.Helper()
	var st coordinatorStats
	if status, _ := doJSON(t, http.MethodGet, front+"/stats", nil, &st); status != http.StatusOK {
		t.Fatalf("/stats: status %d", status)
	}
	return st
}

// TestChaosPromoteFailover is the failover acceptance test, under both
// degradation policies: kill a primary, drive one probe round, and the
// coordinator must promote the caught-up follower and answer the next
// query full — not partial — byte-identical to the single-node oracle.
// Writes must keep flowing through the promoted follower too.
func TestChaosPromoteFailover(t *testing.T) {
	for _, policy := range []Policy{Strict, Partial} {
		t.Run(policy.String(), func(t *testing.T) {
			cfg := replChaosConfig()
			cfg.DegradePolicy = policy
			rc := newReplCluster(t, 2, cfg)
			oracle := newOracleServer(t)
			const name, dims = "c", 6

			create := api.CreateRequest{Dims: dims, SegmentSize: 8}
			if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
				t.Fatal("create failed")
			}
			if status, _ := doJSON(t, http.MethodPut, oracle.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
				t.Fatal("oracle create failed")
			}
			vectors := deterministicVectors(30, dims)
			ingestBoth(t, rc.testCluster, oracle.URL, name, [][][]float64{vectors[:13], vectors[13:30]})
			rc.syncAll(t)

			spec := api.QuerySpec{Query: deterministicVectors(31, dims)[30], K: 8, Strategy: "exact", TimeoutMs: chaosBudgetMs}
			status, healthy := queryRanked(t, rc.front.URL, name, spec)
			if status != http.StatusOK || healthy.Partial {
				t.Fatalf("healthy query: status %d partial %v", status, healthy.Partial)
			}
			_, want := queryRanked(t, oracle.URL, name, spec)
			if string(healthy.Results) != string(want.Results) {
				t.Fatal("healthy cluster diverges from oracle")
			}

			// Kill primary 0. One probe round: probe fails, breaker opens
			// (threshold 1), the promotion pass adopts the caught-up follower.
			rc.proxies[0].setMode(faultKill)
			if n := rc.co.ProbeNow(); n != 2 {
				t.Fatalf("ProbeNow after kill+promote = %d healthy, want 2", n)
			}

			status, resp := queryRanked(t, rc.front.URL, name, spec)
			if status != http.StatusOK {
				t.Fatalf("post-failover query: status %d", status)
			}
			if resp.Partial {
				t.Fatalf("post-failover query degraded to partial under %s", policy)
			}
			if string(resp.Results) != string(want.Results) {
				t.Fatalf("post-failover results diverge from oracle:\n  got:  %s\n  want: %s", resp.Results, want.Results)
			}

			st := getStats(t, rc.front.URL)
			if st.Promotions != 1 {
				t.Fatalf("promotions gauge = %d, want 1", st.Promotions)
			}
			if st.Shards[0].ActiveURL != rc.followerFronts[0].URL {
				t.Fatalf("shard 0 active_url = %q, want promoted follower %q", st.Shards[0].ActiveURL, rc.followerFronts[0].URL)
			}
			chaosLog(t, "failover policy=%s promotions=%d active=%s", policy, st.Promotions, st.Shards[0].ActiveURL)

			// Writes flow through the promoted follower; the cluster keeps
			// matching the oracle afterwards.
			more := deterministicVectors(40, dims)[30:]
			ingestBoth(t, rc.testCluster, oracle.URL, name, [][][]float64{more})
			status, resp = queryRanked(t, rc.front.URL, name, spec)
			_, want = queryRanked(t, oracle.URL, name, spec)
			if status != http.StatusOK || resp.Partial || string(resp.Results) != string(want.Results) {
				t.Fatalf("post-failover ingest+query: status %d partial %v", status, resp.Partial)
			}

			// A later probe round must not promote again.
			rc.co.ProbeNow()
			st = getStats(t, rc.front.URL)
			if st.Promotions != 1 {
				t.Fatalf("promotions gauge after settled round = %d, want 1", st.Promotions)
			}
		})
	}
}

// TestChaosLaggingReplicaNotPromoted: a replica that has never caught up
// must not be promoted — the coordinator keeps degrading instead. Once
// the replica catches up over the (still healthy) replication link, the
// next probe round promotes it and full answers resume.
func TestChaosLaggingReplicaNotPromoted(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Partial
	rc := newReplCluster(t, 2, cfg)
	const name, dims = "c", 6
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	vectors := deterministicVectors(24, dims)
	if status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors}, nil); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	// Followers never sync: both replicas are lagging the whole way down.

	spec := api.QuerySpec{Query: deterministicVectors(25, dims)[24], K: 6, Strategy: "exact", TimeoutMs: chaosBudgetMs}
	rc.proxies[0].setMode(faultKill)
	rc.co.ProbeNow()

	st := getStats(t, rc.front.URL)
	if st.Promotions != 0 {
		t.Fatalf("promoted a lagging replica: %+v", st.Shards[0])
	}
	if st.Shards[0].Healthy {
		t.Fatal("dead shard with only a lagging replica reported healthy")
	}
	// The coordinator degrades instead of serving the replica's stale data.
	status, resp := queryRanked(t, rc.front.URL, name, spec)
	if status != http.StatusOK || !resp.Partial {
		t.Fatalf("query during lag: status %d partial %v, want partial 200", status, resp.Partial)
	}
	survivors := survivorTopK(t, rc.testCluster, name, spec, map[int]bool{0: true})
	var got []api.Neighbor
	if err := json.Unmarshal(resp.Results, &got); err != nil {
		t.Fatal(err)
	}
	if !neighborsEqual(got, survivors) {
		t.Fatalf("partial answer is not the survivors' top-k:\n  got:  %v\n  want: %v", got, survivors)
	}
	chaosLog(t, "lagging replica held back: promotions=0 partial=%v", resp.Partial)

	// The replica catches up over its direct link to the (still running)
	// primary process, then the next round promotes it.
	if err := rc.followers[0].SyncReplicaOnce(); err != nil {
		t.Fatal(err)
	}
	rc.co.ProbeNow()
	st = getStats(t, rc.front.URL)
	if st.Promotions != 1 {
		t.Fatalf("caught-up replica not promoted: %+v", st.Shards[0])
	}
	status, resp = queryRanked(t, rc.front.URL, name, spec)
	if status != http.StatusOK || resp.Partial {
		t.Fatalf("post-catch-up query: status %d partial %v, want full 200", status, resp.Partial)
	}
	chaosLog(t, "lagging replica promoted after catch-up: active=%s", st.Shards[0].ActiveURL)
}

// TestChaosDivergedReplicaNeverPromoted is the replica-path fencing
// regression: a follower whose history the leader disowns (here, the
// leader's collection was dropped and rebuilt shorter behind the
// follower's back) reports Diverged, and the coordinator must never
// promote it — not on the first round, not on any later one — while the
// replica itself keeps refusing POST /promote with 409.
func TestChaosDivergedReplicaNeverPromoted(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Partial
	rc := newReplCluster(t, 2, cfg)
	const name, dims = "c", 6
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	vectors := deterministicVectors(20, dims)
	if status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors}, nil); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	rc.syncAll(t)

	// Rewrite primary 0's history behind the follower's back: drop and
	// recreate the collection with less data than the follower applied.
	// The follower's position now points past the new leader history.
	if status, _ := doJSON(t, http.MethodDelete, rc.raw[0].URL+"/collections/"+name, nil, nil); status != http.StatusNoContent {
		t.Fatal("direct drop failed")
	}
	if status, _ := doJSON(t, http.MethodPut, rc.raw[0].URL+"/collections/"+name, api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("direct recreate failed")
	}
	if err := rc.followers[0].SyncReplicaOnce(); err == nil {
		t.Fatal("follower synced cleanly against a rewritten leader history")
	}
	if st := rc.followers[0].ReplStatus(); !st.Diverged {
		t.Fatalf("follower not fenced as diverged: %+v", st)
	}

	// Direct promotion is refused with 409.
	var e api.Error
	if status, _ := doJSON(t, http.MethodPost, rc.followerFronts[0].URL+"/promote", nil, &e); status != http.StatusConflict || e.Code != "replica_diverged" {
		t.Fatalf("promote on diverged follower: status %d code %q, want 409 replica_diverged", status, e.Code)
	}

	// Kill the primary: rounds of probing must keep degrading, never
	// silently promote the fenced follower.
	rc.proxies[0].setMode(faultKill)
	for round := 0; round < 3; round++ {
		rc.co.ProbeNow()
		st := getStats(t, rc.front.URL)
		if st.Promotions != 0 {
			t.Fatalf("round %d: diverged replica was promoted: %+v", round, st.Shards[0])
		}
		if st.Shards[0].Healthy {
			t.Fatalf("round %d: shard with only a diverged replica reported healthy", round)
		}
	}
	status, resp := queryRanked(t, rc.front.URL, name, api.QuerySpec{Query: vectors[0], K: 5, Strategy: "exact", TimeoutMs: chaosBudgetMs})
	if status != http.StatusOK || !resp.Partial {
		t.Fatalf("query with fenced replica: status %d partial %v, want partial 200", status, resp.Partial)
	}
	chaosLog(t, "diverged replica fenced: promotions=0 partial=%v", resp.Partial)
}

// TestChaosPromotedStaleReplicaDriftFenced pins the data-loss window's
// fencing: a follower that was caught up at its last leader contact —
// but missed writes acked after it — is legitimately promoted (it cannot
// know), and the coordinator's positional-id audit must then refuse
// ingest with 409 topology_drift instead of silently acknowledging a
// batch into a shard that lost acked rows.
func TestChaosPromotedStaleReplicaDriftFenced(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Partial
	rc := newReplCluster(t, 2, cfg)
	const name, dims = "c", 6
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	vectors := deterministicVectors(28, dims)
	if status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors[:16]}, nil); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	rc.syncAll(t)
	// Acked writes the follower never sees before the primary dies.
	if status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors[16:]}, nil); status != http.StatusOK {
		t.Fatal("second ingest failed")
	}
	rc.proxies[0].setMode(faultKill)
	rc.co.ProbeNow()

	st := getStats(t, rc.front.URL)
	if st.Promotions != 1 {
		t.Fatalf("stale-but-caught-up follower not promoted: %+v", st.Shards[0])
	}

	// The promoted shard is shorter than the topology's id ledger says:
	// the next ingest must be fenced, not silently acknowledged.
	var e api.Error
	status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors",
		api.IngestRequest{Vectors: deterministicVectors(3, dims)}, &e)
	if status != http.StatusConflict || e.Code != "topology_drift" {
		t.Fatalf("ingest into drifted promoted shard: status %d code %q, want 409 topology_drift", status, e.Code)
	}
	chaosLog(t, "promoted stale replica fenced on ingest: code=%s", e.Code)
}

// TestChaosReadSteering: with ReadReplicas on, idempotent reads steer to
// a caught-up replica (byte-identical answers), a dying replica costs at
// most one attempt before falling back to the primary, and promotion
// disables steering.
func TestChaosReadSteering(t *testing.T) {
	cfg := replChaosConfig()
	cfg.Envelope.MaxAttempts = 2
	cfg.ReadReplicas = true
	rc := newReplCluster(t, 2, cfg)
	oracle := newOracleServer(t)
	const name, dims = "c", 6
	create := api.CreateRequest{Dims: dims, SegmentSize: 8}
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	if status, _ := doJSON(t, http.MethodPut, oracle.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatal("oracle create failed")
	}
	vectors := deterministicVectors(26, dims)
	ingestBoth(t, rc.testCluster, oracle.URL, name, [][][]float64{vectors})
	rc.syncAll(t)
	rc.co.ProbeNow() // the steering pass runs in the probe round

	st := getStats(t, rc.front.URL)
	for i := range st.Shards {
		if st.Shards[i].ReadingFrom != rc.followerFronts[i].URL {
			t.Fatalf("shard %d reading_from = %q, want %q", i, st.Shards[i].ReadingFrom, rc.followerFronts[i].URL)
		}
	}

	spec := api.QuerySpec{Query: deterministicVectors(27, dims)[26], K: 7, Strategy: "exact", TimeoutMs: chaosBudgetMs}
	status, resp := queryRanked(t, rc.front.URL, name, spec)
	_, want := queryRanked(t, oracle.URL, name, spec)
	if status != http.StatusOK || resp.Partial || string(resp.Results) != string(want.Results) {
		t.Fatalf("steered query: status %d partial %v", status, resp.Partial)
	}
	st = getStats(t, rc.front.URL)
	if st.Shards[0].SteeredReads == 0 && st.Shards[1].SteeredReads == 0 {
		t.Fatal("no steered reads recorded with steering configured")
	}

	// A replica dying mid-steer costs one attempt: the retry lands on the
	// primary, the answer stays full and correct, steering clears.
	rc.followerFronts[1].Close()
	status, resp = queryRanked(t, rc.front.URL, name, spec)
	if status != http.StatusOK || resp.Partial || string(resp.Results) != string(want.Results) {
		t.Fatalf("query with dead steered replica: status %d partial %v", status, resp.Partial)
	}
	rc.co.ProbeNow()
	st = getStats(t, rc.front.URL)
	if st.Shards[1].ReadingFrom != "" {
		t.Fatalf("dead replica still steered: %q", st.Shards[1].ReadingFrom)
	}
	if st.Shards[1].Breaker != "closed" {
		t.Fatalf("steered replica failure fed the primary's breaker: %+v", st.Shards[1])
	}
	chaosLog(t, "read steering: steered=%d+%d, fallback ok", st.Shards[0].SteeredReads, st.Shards[1].SteeredReads)

	// Promotion of shard 0 turns its steering off — the remaining replica
	// would be following a dead leader.
	rc.proxies[0].setMode(faultKill)
	rc.co.ProbeNow()
	st = getStats(t, rc.front.URL)
	if st.Shards[0].ActiveURL != rc.followerFronts[0].URL {
		t.Fatalf("shard 0 not promoted: %+v", st.Shards[0])
	}
	if st.Shards[0].ReadingFrom != "" {
		t.Fatalf("promoted shard still steering reads to %q", st.Shards[0].ReadingFrom)
	}
}

// TestChaosRefollowAfterCheckpointPromote: a replica parked behind a
// leader that checkpointed past WAL retention re-bootstraps from a fresh
// snapshot (410 wal_gone path), catches up, and is then a legitimate
// promotion target when the primary dies.
func TestChaosRefollowAfterCheckpointPromote(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Strict
	rc := newReplCluster(t, 2, cfg)
	const name, dims = "c", 6
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	if status, _ := doJSON(t, http.MethodPost, rc.front.URL+"/collections/"+name+"/vectors",
		api.IngestRequest{Vectors: deterministicVectors(10, dims)}, nil); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	rc.syncAll(t)

	// Rotate primary 0's WAL past the retention window while its replica
	// is parked, by checkpointing through the direct endpoint.
	extra := deterministicVectors(20, dims)[10:]
	for i, v := range extra {
		if status, _ := doJSON(t, http.MethodPost, rc.raw[0].URL+"/collections/"+name+"/vectors", api.IngestRequest{Vector: v}, nil); status != http.StatusOK {
			t.Fatalf("direct ingest %d failed", i)
		}
		if status, _ := doJSON(t, http.MethodPost, rc.raw[0].URL+"/collections/"+name+"/snapshot", nil, nil); status != http.StatusOK {
			t.Fatalf("rotation %d failed", i)
		}
	}

	// The parked follower's next pass must transparently re-bootstrap.
	if err := rc.followers[0].SyncReplicaOnce(); err != nil {
		t.Fatalf("re-follow sync: %v", err)
	}
	if st := rc.followers[0].ReplStatus(); !st.CaughtUp || st.Diverged {
		t.Fatalf("follower after re-bootstrap: %+v", st)
	}

	// Now the primary dies; the re-bootstrapped follower is promotable.
	rc.proxies[0].setMode(faultKill)
	rc.co.ProbeNow()
	st := getStats(t, rc.front.URL)
	if st.Promotions != 1 || st.Shards[0].ActiveURL != rc.followerFronts[0].URL {
		t.Fatalf("re-bootstrapped follower not promoted: %+v", st.Shards[0])
	}
	// Strict policy and a full answer: nothing is missing.
	status, resp := queryRanked(t, rc.front.URL, name, api.QuerySpec{Query: deterministicVectors(21, dims)[20], K: 6, Strategy: "exact", TimeoutMs: chaosBudgetMs})
	if status != http.StatusOK || resp.Partial {
		t.Fatalf("post-promotion strict query: status %d partial %v", status, resp.Partial)
	}
	chaosLog(t, "re-follow after checkpoint: promoted=%s", st.Shards[0].ActiveURL)
}

// TestChaosPromoteAfterLeaderDeathWithSyncLoop: in a real deployment
// the follower's background loop keeps trying the dead leader between
// the crash and the promotion probe, so its /replstatus carries a
// transport last_error at promotion time. The drained follower must
// still report caught_up (the assessment is as-of-last-successful-
// contact) and the prober must still promote it. Regression: failed
// sync passes used to clear the top-level caught_up flag, so the
// promotion pass parked every real-world follower as "lagging" forever
// — the chaos suite missed it because test followers run with the loop
// disabled and nothing re-dialed the dead leader before ProbeNow.
func TestChaosPromoteAfterLeaderDeathWithSyncLoop(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Strict
	rc := newReplCluster(t, 2, cfg)
	oracle := newOracleServer(t)
	const name, dims = "c", 6

	create := api.CreateRequest{Dims: dims, SegmentSize: 8}
	if status, _ := doJSON(t, http.MethodPut, rc.front.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	if status, _ := doJSON(t, http.MethodPut, oracle.URL+"/collections/"+name, create, nil); status != http.StatusCreated {
		t.Fatal("oracle create failed")
	}
	vectors := deterministicVectors(24, dims)
	ingestBoth(t, rc.testCluster, oracle.URL, name, [][][]float64{vectors})
	rc.syncAll(t)

	// Kill primary 0 for real: the raw leader endpoint the follower
	// tails dies along with the coordinator-facing proxy.
	rc.proxies[0].setMode(faultKill)
	rc.raw[0].Close()

	// The follower's loop keeps running against the dead leader and
	// fails; its status must keep the drained assessment.
	if err := rc.followers[0].SyncReplicaOnce(); err == nil {
		t.Fatal("follower sync against dead leader succeeded")
	}
	st := rc.followers[0].ReplStatus()
	if st.LastError == "" || !st.CaughtUp || st.Diverged {
		t.Fatalf("drained follower after leader death: %+v", st)
	}

	if n := rc.co.ProbeNow(); n != 2 {
		t.Fatalf("ProbeNow after leader death = %d healthy, want 2 (promotion)", n)
	}
	cs := getStats(t, rc.front.URL)
	if cs.Promotions != 1 {
		t.Fatalf("promotions gauge = %d, want 1", cs.Promotions)
	}
	if cs.Shards[0].ActiveURL != rc.followerFronts[0].URL {
		t.Fatalf("shard 0 active_url = %q, want promoted follower %q", cs.Shards[0].ActiveURL, rc.followerFronts[0].URL)
	}

	spec := api.QuerySpec{Query: deterministicVectors(25, dims)[24], K: 6, Strategy: "exact", TimeoutMs: chaosBudgetMs}
	status, resp := queryRanked(t, rc.front.URL, name, spec)
	_, want := queryRanked(t, oracle.URL, name, spec)
	if status != http.StatusOK || resp.Partial || string(resp.Results) != string(want.Results) {
		t.Fatalf("post-promotion query: status %d partial %v", status, resp.Partial)
	}
	chaosLog(t, "leader-death promote: promotions=%d active=%s", cs.Promotions, cs.Shards[0].ActiveURL)
}

// TestChaosNoCascadedPromotionOntoStaleReplica pins the post-failover
// data-loss window closed: after a promotion, the shard's remaining
// replicas still tail the DEAD original primary, and their sticky
// caught-up self-reports say nothing about the new primary's history.
// If the promoted node dies too, the coordinator must degrade — a
// second promotion onto a stale sibling would silently discard every
// write the first promoted node acknowledged.
func TestChaosNoCascadedPromotionOntoStaleReplica(t *testing.T) {
	cfg := replChaosConfig()
	cfg.DegradePolicy = Partial

	// One shard with TWO followers, both tailing the primary directly.
	s, err := server.New(server.Config{Dir: t.TempDir(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	raw := httptest.NewServer(s.Handler())
	t.Cleanup(raw.Close)
	proxy := &faultProxy{backend: s.Handler()}
	front := httptest.NewServer(proxy)
	t.Cleanup(front.Close)

	var followers []*server.Server
	var fronts []*httptest.Server
	for i := 0; i < 2; i++ {
		f, err := server.New(server.Config{
			Dir:            t.TempDir(),
			Logf:           func(string, ...any) {},
			FollowURL:      raw.URL,
			FollowInterval: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { f.Close() })
		ff := httptest.NewServer(f.Handler())
		t.Cleanup(ff.Close)
		followers = append(followers, f)
		fronts = append(fronts, ff)
	}
	cfg.Topology = &Topology{Shards: []Shard{{
		ID: 0, URL: front.URL, Replicas: []string{fronts[0].URL, fronts[1].URL},
	}}}
	cfg.ProbeInterval = 0
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	cofront := httptest.NewServer(co.Handler())
	t.Cleanup(cofront.Close)

	const name, dims = "c", 4
	if status, _ := doJSON(t, http.MethodPut, cofront.URL+"/collections/"+name,
		api.CreateRequest{Dims: dims, SegmentSize: 8}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	vectors := deterministicVectors(12, dims)
	if status, _ := doJSON(t, http.MethodPost, cofront.URL+"/collections/"+name+"/vectors",
		api.IngestRequest{Vectors: vectors}, nil); status != http.StatusOK {
		t.Fatal("ingest failed")
	}
	for i, f := range followers {
		if err := f.SyncReplicaOnce(); err != nil {
			t.Fatalf("follower %d sync: %v", i, err)
		}
	}

	// Kill the primary (proxy and raw endpoint both): one probe round
	// promotes the first caught-up follower.
	proxy.setMode(faultKill)
	raw.Close()
	if n := co.ProbeNow(); n != 1 {
		t.Fatalf("ProbeNow after primary death = %d healthy, want 1 (promotion)", n)
	}
	st := getStats(t, cofront.URL)
	if st.Promotions != 1 || st.Shards[0].ActiveURL != fronts[0].URL {
		t.Fatalf("first failover: promotions=%d active=%q, want 1 promoted to %q",
			st.Promotions, st.Shards[0].ActiveURL, fronts[0].URL)
	}

	// Writes land on the promoted follower only; its sibling still
	// points at the dead original primary and never sees them.
	if status, _ := doJSON(t, http.MethodPost, cofront.URL+"/collections/"+name+"/vectors",
		api.IngestRequest{Vectors: deterministicVectors(16, dims)[12:]}, nil); status != http.StatusOK {
		t.Fatal("post-failover ingest failed")
	}

	// The stale sibling still LOOKS promotable — sticky caught-up from
	// before the old primary died — which is exactly why the coordinator
	// must not trust it.
	var sib api.ReplStatus
	if status, _ := doJSON(t, http.MethodGet, fronts[1].URL+"/replstatus", nil, &sib); status != http.StatusOK {
		t.Fatal("sibling replstatus failed")
	}
	if !sib.CaughtUp || sib.Diverged || sib.Promoted {
		t.Fatalf("sibling not in the promotable-looking state the regression needs: %+v", sib)
	}

	// Kill the promoted node. The shard must degrade, not fail over
	// again: promoting the sibling would rewind past the acknowledged
	// post-failover writes.
	fronts[0].Close()
	for round := 0; round < 4; round++ {
		if n := co.ProbeNow(); n != 0 {
			t.Fatalf("round %d: ProbeNow = %d healthy after promoted node died, want 0", round, n)
		}
	}
	st = getStats(t, cofront.URL)
	if st.Promotions != 1 {
		t.Fatalf("cascaded promotion onto a stale replica: promotions=%d, want 1", st.Promotions)
	}
	if st.Shards[0].ActiveURL != fronts[0].URL {
		t.Fatalf("active_url moved to %q after promoted node died, want to stay %q",
			st.Shards[0].ActiveURL, fronts[0].URL)
	}
	// No silent full answers from stale state either: with every live
	// node gone the query degrades visibly.
	spec := api.QuerySpec{Query: deterministicVectors(17, dims)[16], K: 4, Strategy: "exact", TimeoutMs: chaosBudgetMs}
	status, resp := queryRanked(t, cofront.URL, name, spec)
	if status == http.StatusOK && !resp.Partial {
		t.Fatalf("query after double failure served full results from stale state: %s", resp.Results)
	}
	chaosLog(t, "no cascaded promotion: promotions=%d degraded status=%d partial=%v", st.Promotions, status, resp.Partial)
}

package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"testing"
	"time"

	"bond/internal/api"
	"bond/internal/streammerge"
	"bond/internal/topk"
)

// chaosLog appends one line to the chaos matrix log when BOND_CHAOS_LOG
// is set (CI uploads it as an artifact), mirroring it to the test log.
func chaosLog(t *testing.T, format string, args ...any) {
	t.Helper()
	line := fmt.Sprintf(format, args...)
	t.Log(line)
	path := os.Getenv("BOND_CHAOS_LOG")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Logf("chaos log: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintf(f, "%s %s\n", time.Now().UTC().Format(time.RFC3339), line)
}

// chaosBudgetMs is the per-query deadline the chaos matrix runs under;
// promptness assertions allow chaosSlack on top for scheduler noise.
const (
	chaosBudgetMs = 600
	chaosSlack    = 2 * time.Second
)

// survivorTopK computes the ground-truth answer over the surviving
// shards by querying them directly (bypassing the fault proxies) and
// exact-merging with rebased ids — what a correct partial response must
// equal.
func survivorTopK(t *testing.T, cl *testCluster, name string, spec api.QuerySpec, missed map[int]bool) []api.Neighbor {
	t.Helper()
	largest := mergeLargest(spec.Criterion)
	var lists [][]topk.Result
	for s, raw := range cl.raw {
		if missed[s] {
			continue
		}
		direct := spec
		direct.TimeoutMs = 0
		direct.Policy = ""
		var resp api.QueryResponse
		if status, body := doJSON(t, http.MethodPost, raw.URL+"/collections/"+name+"/query", direct, &resp); status != http.StatusOK {
			t.Fatalf("direct query of shard %d: status %d: %s", s, status, body)
		}
		list := make([]topk.Result, len(resp.Results))
		for i, n := range resp.Results {
			list[i] = topk.Result{ID: cl.co.topo.Global(s, n.ID), Score: n.Score}
		}
		lists = append(lists, list)
	}
	merged := streammerge.MergeRanked(spec.K, largest, lists...)
	out := make([]api.Neighbor, len(merged))
	for i, r := range merged {
		out[i] = api.Neighbor{ID: r.ID, Score: r.Score}
	}
	return out
}

func neighborsEqual(a, b []api.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// TestCoordinatorChaosMatrix sweeps fault × policy: shard 1 of 3 is
// killed / hung / flapping / garbage-responding while queries run under
// both degradation policies. Partial mode must return the exact top-k
// over the survivors marked partial; strict mode a clean error — both
// within the request deadline. A flapping shard must be ridden out by
// the retry envelope with no degradation at all.
func TestCoordinatorChaosMatrix(t *testing.T) {
	for _, fault := range []string{faultKill, faultSlow, faultFlap, faultGarbage} {
		t.Run(fault, func(t *testing.T) {
			cl := newTestCluster(t, 3, fastTestConfig())
			const name, dims = "c", 6
			if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/"+name, api.CreateRequest{Dims: dims}, nil); status != http.StatusCreated {
				t.Fatal("create failed")
			}
			vectors := deterministicVectors(24, dims)
			if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors}, nil); status != http.StatusOK {
				t.Fatalf("ingest: status %d: %s", status, raw)
			}
			spec := api.QuerySpec{Query: deterministicVectors(25, dims)[24], K: 8, Strategy: "exact", TimeoutMs: chaosBudgetMs}

			// Healthy baseline before any fault.
			var healthy api.QueryResponse
			if status, raw := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &healthy); status != http.StatusOK {
				t.Fatalf("healthy query: status %d: %s", status, raw)
			}
			survivors := survivorTopK(t, cl, name, spec, map[int]bool{1: true})

			cl.proxies[1].setMode(fault)
			for _, policy := range []string{"strict", "partial"} {
				q := spec
				q.Policy = policy
				start := time.Now()
				var resp api.QueryResponse
				var e api.Error
				var status int
				if policy == "strict" {
					var raw []byte
					status, raw = doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", q, nil)
					_ = json.Unmarshal(raw, &e)
					_ = json.Unmarshal(raw, &resp)
				} else {
					status, _ = doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", q, &resp)
				}
				elapsed := time.Since(start)
				if elapsed > time.Duration(chaosBudgetMs)*time.Millisecond+chaosSlack {
					t.Fatalf("%s/%s: query took %v against a %dms budget", fault, policy, elapsed, chaosBudgetMs)
				}

				switch {
				case fault == faultFlap:
					// Retries ride out a flapping shard: full answer, no
					// degradation, under both policies.
					if status != http.StatusOK || resp.Partial {
						t.Fatalf("flap/%s: status %d partial %v, want a full 200", policy, status, resp.Partial)
					}
					if !neighborsEqual(resp.Results, healthy.Results) {
						t.Fatalf("flap/%s: results diverge from the healthy baseline", policy)
					}
				case policy == "strict":
					if status < 500 {
						t.Fatalf("%s/strict: status %d, want a 5xx error", fault, status)
					}
					if len(e.MissedShards) != 1 || e.MissedShards[0] != 1 {
						t.Fatalf("%s/strict: missed_shards = %v, want [1]", fault, e.MissedShards)
					}
				default: // partial
					if status != http.StatusOK {
						t.Fatalf("%s/partial: status %d, want 200", fault, status)
					}
					if !resp.Partial || len(resp.MissedShards) != 1 || resp.MissedShards[0] != 1 {
						t.Fatalf("%s/partial: partial %v missed %v, want true [1]", fault, resp.Partial, resp.MissedShards)
					}
					if !neighborsEqual(resp.Results, survivors) {
						t.Fatalf("%s/partial: results are not the exact top-k over the survivors:\n  got:  %v\n  want: %v",
							fault, resp.Results, survivors)
					}
				}
				chaosLog(t, "chaos fault=%s policy=%s status=%d elapsed=%v partial=%v", fault, policy, status, elapsed, resp.Partial)
			}

			// The envelope's work must show up in the gauges.
			var st coordinatorStats
			if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/stats", nil, &st); status != http.StatusOK {
				t.Fatal("/stats failed")
			}
			s1 := st.Shards[1]
			if fault == faultFlap {
				if s1.Retries == 0 {
					t.Fatalf("flap: no retries recorded on the flapping shard: %+v", s1)
				}
			} else if s1.Failures == 0 {
				t.Fatalf("%s: no envelope failures recorded on the faulted shard: %+v", fault, s1)
			}
			chaosLog(t, "chaos fault=%s shard1 requests=%d retries=%d failures=%d breaker=%s",
				fault, s1.Requests, s1.Retries, s1.Failures, s1.Breaker)
		})
	}
}

// TestCoordinatorAllShardsDown pins the partial-policy floor: when every
// shard is missed there is nothing to degrade to, so even partial mode
// answers with a clean error, promptly.
func TestCoordinatorAllShardsDown(t *testing.T) {
	cfg := fastTestConfig()
	cfg.DegradePolicy = Partial
	cl := newTestCluster(t, 3, cfg)
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/c", api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/vectors", api.IngestRequest{Vectors: deterministicVectors(9, 4)}, nil)
	for _, p := range cl.proxies {
		p.setMode(faultSlow)
	}
	start := time.Now()
	var e api.Error
	status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/query",
		api.QuerySpec{Query: []float64{1, 0, 0, 0}, K: 3, TimeoutMs: 400}, &e)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("all-down query took %v against a 400ms budget", elapsed)
	}
	if status < 500 {
		t.Fatalf("status %d, want 5xx when every shard is missed", status)
	}
	if len(e.MissedShards) != 3 {
		t.Fatalf("missed_shards = %v, want all three", e.MissedShards)
	}
}

// TestCoordinatorBreakerOpensAndRecovers drives the full breaker story
// end to end: a killed shard opens its breaker (visible in /stats),
// subsequent queries fast-fail onto the partial path without paying the
// retry ladder, and a successful health probe after the shard returns
// closes the breaker and restores full answers.
func TestCoordinatorBreakerOpensAndRecovers(t *testing.T) {
	cfg := fastTestConfig()
	cfg.DegradePolicy = Partial
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 30 * time.Millisecond
	cfg.Envelope.MaxAttempts = 1
	cl := newTestCluster(t, 3, cfg)
	const name = "c"
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/"+name, api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	vectors := deterministicVectors(12, 4)
	doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/vectors", api.IngestRequest{Vectors: vectors}, nil)
	spec := api.QuerySpec{Query: []float64{0.5, 0.5, 0.5, 0.5}, K: 4, Strategy: "exact", TimeoutMs: chaosBudgetMs}

	var healthy api.QueryResponse
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &healthy); status != http.StatusOK {
		t.Fatal("healthy query failed")
	}

	cl.proxies[1].setMode(faultKill)
	// Two failed calls open the breaker (threshold 2, one attempt each).
	for i := 0; i < 2; i++ {
		var resp api.QueryResponse
		if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &resp); status != http.StatusOK || !resp.Partial {
			t.Fatalf("query %d during outage: status %d partial %v", i, status, resp.Partial)
		}
	}
	var st coordinatorStats
	doJSON(t, http.MethodGet, cl.front.URL+"/stats", nil, &st)
	if st.Shards[1].Breaker != "open" || st.Shards[1].BreakerOpens < 1 {
		t.Fatalf("breaker after 2 failures = %+v, want open", st.Shards[1])
	}

	// With the breaker open the miss costs a fast-fail, not an envelope.
	var resp api.QueryResponse
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &resp); status != http.StatusOK || !resp.Partial {
		t.Fatal("fast-fail query should still answer partial")
	}
	doJSON(t, http.MethodGet, cl.front.URL+"/stats", nil, &st)
	if st.Shards[1].FastFails == 0 {
		t.Fatalf("no fast-fails recorded with an open breaker: %+v", st.Shards[1])
	}
	chaosLog(t, "breaker opened: %+v", st.Shards[1])

	// Shard comes back; the prober notices and closes the breaker without
	// waiting for live traffic to gamble on a trial.
	cl.proxies[1].setMode(faultNone)
	waitUntil(t, 5*time.Second, "probe round to find every shard healthy again",
		func() bool { return cl.co.ProbeNow() == 3 })
	doJSON(t, http.MethodGet, cl.front.URL+"/stats", nil, &st)
	if st.Shards[1].Breaker != "closed" || !st.Shards[1].Healthy {
		t.Fatalf("shard 1 after probe = %+v, want closed and healthy", st.Shards[1])
	}
	var recovered api.QueryResponse
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/"+name+"/query", spec, &recovered); status != http.StatusOK || recovered.Partial {
		t.Fatalf("post-recovery query: status %d partial %v, want a full 200", status, recovered.Partial)
	}
	if !neighborsEqual(recovered.Results, healthy.Results) {
		t.Fatal("post-recovery results diverge from the healthy baseline")
	}
	chaosLog(t, "breaker recovered: %+v", st.Shards[1])
}

// TestCoordinatorProberMarksUnhealthy drives ProbeNow against a dead
// shard and checks the health gauge and /readyz react.
func TestCoordinatorProberMarksUnhealthy(t *testing.T) {
	cfg := fastTestConfig()
	cfg.BreakerThreshold = 1
	cl := newTestCluster(t, 2, cfg)
	if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/readyz", nil, nil); status != http.StatusOK {
		t.Fatalf("healthy readyz: status %d", status)
	}
	cl.proxies[0].setMode(faultKill)
	if n := cl.co.ProbeNow(); n != 1 {
		t.Fatalf("ProbeNow with one dead shard = %d, want 1", n)
	}
	// Strict default policy: one unhealthy shard means not ready.
	var e api.Error
	if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/readyz", nil, &e); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead shard: status %d, want 503", status)
	}
	if e.Code != "not_ready" || len(e.MissedShards) != 1 || e.MissedShards[0] != 0 {
		t.Fatalf("readyz error = %+v", e)
	}
	// Liveness is about the coordinator itself, not the shards.
	if status, _ := doJSON(t, http.MethodGet, cl.front.URL+"/healthz", nil, nil); status != http.StatusOK {
		t.Fatal("healthz should stay 200 while shards are down")
	}
}

// TestCoordinatorIngestFailureIsDetected pins ingest semantics under
// shard loss: the coordinator reports which shards missed, and never
// silently acknowledges a partially applied batch.
func TestCoordinatorIngestFailureIsDetected(t *testing.T) {
	cl := newTestCluster(t, 3, fastTestConfig())
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/c", api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	// A healthy ingest first, so the failure below hits the ingest
	// fan-out itself rather than the id-counter resync.
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/vectors",
		api.IngestRequest{Vectors: deterministicVectors(6, 4)}, nil); status != http.StatusOK {
		t.Fatal("healthy ingest failed")
	}
	cl.proxies[1].setMode(faultKill)
	var e api.Error
	status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/vectors",
		api.IngestRequest{Vectors: deterministicVectors(9, 4)}, &e)
	if status < 500 {
		t.Fatalf("ingest with a dead shard: status %d, want 5xx", status)
	}
	if len(e.MissedShards) != 1 || e.MissedShards[0] != 1 {
		t.Fatalf("missed_shards = %v, want [1]", e.MissedShards)
	}
	// Queries remain available on the survivors under partial policy.
	var resp api.QueryResponse
	q := api.QuerySpec{Query: []float64{1, 0, 0, 0}, K: 3, Policy: "partial", TimeoutMs: chaosBudgetMs}
	if status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/query", q, &resp); status != http.StatusOK || !resp.Partial {
		t.Fatalf("query after failed ingest: status %d partial %v", status, resp.Partial)
	}
}

// TestCoordinatorDeadlineMidFanout is the deadline-propagation e2e for
// the coordinator path: a query whose budget expires while shards are
// still working returns promptly — degraded or failed, never hung.
func TestCoordinatorDeadlineMidFanout(t *testing.T) {
	cfg := fastTestConfig()
	cfg.DegradePolicy = Partial
	cl := newTestCluster(t, 3, cfg)
	if status, _ := doJSON(t, http.MethodPut, cl.front.URL+"/collections/c", api.CreateRequest{Dims: 4}, nil); status != http.StatusCreated {
		t.Fatal("create failed")
	}
	doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/vectors", api.IngestRequest{Vectors: deterministicVectors(9, 4)}, nil)
	cl.proxies[2].setMode(faultSlow) // shard 2 will outlive any budget
	start := time.Now()
	var resp api.QueryResponse
	status, _ := doJSON(t, http.MethodPost, cl.front.URL+"/collections/c/query",
		api.QuerySpec{Query: []float64{1, 0, 0, 0}, K: 3, TimeoutMs: 300}, &resp)
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Fatalf("mid-fan-out expiry took %v against a 300ms budget", elapsed)
	}
	if status != http.StatusOK || !resp.Partial {
		t.Fatalf("status %d partial %v, want a prompt partial 200", status, resp.Partial)
	}
	chaosLog(t, "deadline mid-fan-out: elapsed=%v status=%d partial=%v", elapsed, status, resp.Partial)
}

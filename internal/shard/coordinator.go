package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"bond"
	"bond/internal/api"
	"bond/internal/streammerge"
	"bond/internal/topk"
)

// Policy is a degradation policy: what the coordinator serves when a
// shard stays missing after the whole robustness envelope (retries,
// hedge, breaker) has been spent.
type Policy int

const (
	// Strict turns any missed shard into a clean error within the request
	// deadline — correct-or-nothing.
	Strict Policy = iota
	// Partial returns the exact top-k over the surviving shards, with
	// Partial=true and the missed shard ids in the response — the
	// cluster-layer version of trading a little completeness for bounded
	// latency.
	Partial
)

// String names the policy as the CLI spells it.
func (p Policy) String() string {
	if p == Partial {
		return "partial"
	}
	return "strict"
}

// ParsePolicy parses a degradation-policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "strict", "":
		return Strict, nil
	case "partial":
		return Partial, nil
	}
	return Strict, fmt.Errorf("shard: unknown degradation policy %q (want strict or partial)", s)
}

// Config configures a Coordinator.
type Config struct {
	// Topology is the static shard map. Required.
	Topology *Topology
	// Envelope parameterizes retries, backoff, and hedging per shard
	// call; the zero value selects the documented defaults.
	Envelope Envelope
	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's circuit breaker (0 = 5); BreakerCooldown how long an open
	// breaker fast-fails before admitting a trial call (0 = 2s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the background health prober's period (0 disables
	// the loop; ProbeNow can still be driven manually). ProbePath is the
	// endpoint probed (default /healthz).
	ProbeInterval time.Duration
	ProbePath     string
	// DefaultTimeout is the fan-out budget of a request that sets no
	// timeout_ms (0 = 5s). Every shard call — attempts, backoffs, hedges
	// — is carved out of this budget, which is what bounds the cost of a
	// dead shard to a slice of the deadline.
	DefaultTimeout time.Duration
	// DegradePolicy is the default degradation policy; a query may
	// override it per request via the policy field.
	DegradePolicy Policy
	// PromoteReplicas lets a probe round fail a dead shard over to a
	// caught-up replica (probe failed + breaker open → promote) instead of
	// degrading until the primary returns. Only meaningful for shards
	// whose topology entry lists replicas.
	PromoteReplicas bool
	// ReadReplicas steers idempotent reads (queries, point reads, stats)
	// to a caught-up replica when the probe round found one, shedding read
	// load off primaries. Writes always go to the active node.
	ReadReplicas bool
	// HTTPClient overrides the HTTP client shard calls go through (tests
	// inject httptest clients); nil uses a fresh default client.
	HTTPClient *http.Client
	// Logf receives one line per degraded or failed fan-out (nil =
	// silent).
	Logf func(format string, args ...any)
}

// Coordinator serves the bondd HTTP API over a static topology of
// shards: ingest, delete, and point reads hash-route by vector id to the
// owning shard; queries fan out to every shard and exact-merge. See the
// package comment for the placement scheme and fault-tolerance model.
type Coordinator struct {
	cfg     Config
	topo    *Topology
	clients []*client
	mux     *http.ServeMux
	start   time.Time

	// colMu guards nextID, and serializes ingest fan-outs per process so
	// concurrent ingests cannot interleave their sub-batches at a shard
	// (which would break the round-robin id layout both routing and the
	// single-node equivalence depend on).
	colMu  sync.Mutex
	nextID map[string]int // next global id per collection; absent = resync from shard lengths

	queries      atomic.Int64 // queries served (batch counts each query)
	fanouts      atomic.Int64 // shard calls fanned out
	partials     atomic.Int64 // responses degraded to partial
	strictErrors atomic.Int64 // strict-mode fan-outs failed on a missed shard

	stop       chan struct{} // closed by Close to stop the prober
	proberDone chan struct{} // closed when the prober loop exits
}

// NewCoordinator builds a coordinator over the given topology and starts
// the health prober when the config asks for one. Close stops it.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Topology == nil || cfg.Topology.N() == 0 {
		return nil, fmt.Errorf("shard: coordinator needs a topology")
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 5 * time.Second
	}
	if cfg.ProbePath == "" {
		cfg.ProbePath = "/healthz"
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	co := &Coordinator{
		cfg:        cfg,
		topo:       cfg.Topology,
		start:      time.Now(),
		nextID:     map[string]int{},
		stop:       make(chan struct{}),
		proberDone: make(chan struct{}),
	}
	for _, s := range cfg.Topology.Shards {
		brk := NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
		co.clients = append(co.clients, newClient(s, hc, cfg.Envelope, brk))
	}
	co.mux = http.NewServeMux()
	co.routes()
	if cfg.ProbeInterval > 0 {
		go co.proberLoop(cfg.ProbeInterval)
	} else {
		close(co.proberDone)
	}
	return co, nil
}

// Handler returns the coordinator's HTTP handler.
func (co *Coordinator) Handler() http.Handler { return co.mux }

// Close stops the health prober.
func (co *Coordinator) Close() error {
	close(co.stop)
	<-co.proberDone
	return nil
}

func (co *Coordinator) logf(format string, args ...any) {
	if co.cfg.Logf != nil {
		co.cfg.Logf(format, args...)
	}
}

func (co *Coordinator) routes() {
	co.mux.HandleFunc("GET /healthz", co.handleHealthz)
	co.mux.HandleFunc("GET /readyz", co.handleReadyz)
	co.mux.HandleFunc("GET /stats", co.handleStats)
	co.mux.HandleFunc("GET /collections", co.handleList)
	co.mux.HandleFunc("PUT /collections/{name}", co.handleCreate)
	co.mux.HandleFunc("DELETE /collections/{name}", co.handleDrop)
	co.mux.HandleFunc("GET /collections/{name}", co.handleCollectionStats)
	co.mux.HandleFunc("POST /collections/{name}/vectors", co.handleIngest)
	co.mux.HandleFunc("GET /collections/{name}/vectors/{id}", co.handleGetVector)
	co.mux.HandleFunc("DELETE /collections/{name}/vectors/{id}", co.handleDeleteVector)
	co.mux.HandleFunc("POST /collections/{name}/query", co.handleQuery)
	co.mux.HandleFunc("POST /collections/{name}/query/batch", co.handleQueryBatch)
	co.mux.HandleFunc("POST /collections/{name}/recluster", co.handleUnsupported)
	co.mux.HandleFunc("GET /collections/{name}/explain", co.handleUnsupported)
	co.mux.HandleFunc("POST /collections/{name}/explain", co.handleUnsupported)
}

// --- Helpers --------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (co *Coordinator) writeError(w http.ResponseWriter, status int, code string, err error, missed []int) {
	if status >= 500 {
		co.logf("coordinator: %v", err)
	}
	writeJSON(w, status, api.Error{Error: err.Error(), Code: code, MissedShards: missed})
}

// shardCallStatus maps a failed shard call onto the status the
// coordinator reports: deadline exhaustion is 504, everything else the
// shard's own 4xx (pass-through) or 502.
func shardCallStatus(ctx context.Context, err error) (int, string) {
	if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "deadline"
	}
	var se *StatusError
	if errors.As(err, &se) && se.Status >= 400 && se.Status < 500 {
		return se.Status, se.Code
	}
	return http.StatusBadGateway, "shard_unavailable"
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// budget returns the fan-out deadline context for a request: timeout_ms
// when the spec set one, the configured default otherwise.
func (co *Coordinator) budget(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := co.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// fanOut runs fn once per shard concurrently and returns the per-shard
// errors (nil entries for successes).
func (co *Coordinator) fanOut(fn func(i int, c *client) error) []error {
	errs := make([]error, len(co.clients))
	var wg sync.WaitGroup
	for i, c := range co.clients {
		wg.Add(1)
		co.fanouts.Add(1)
		go func(i int, c *client) {
			defer wg.Done()
			errs[i] = fn(i, c)
		}(i, c)
	}
	wg.Wait()
	return errs
}

// missedOf lists the shard ids with non-nil errors.
func missedOf(errs []error) []int {
	var missed []int
	for i, err := range errs {
		if err != nil {
			missed = append(missed, i)
		}
	}
	return missed
}

// firstErr returns the first non-nil error.
func firstErr(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// --- Basic endpoints ------------------------------------------------------

func (co *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness for traffic under the configured
// default policy: strict needs every shard healthy (a query would
// otherwise fail), partial needs at least one (a query can still degrade
// to the survivors).
func (co *Coordinator) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	var down []int
	for i, c := range co.clients {
		if c.healthy.Load() {
			healthy++
		} else {
			down = append(down, i)
		}
	}
	ready := healthy == len(co.clients)
	if co.cfg.DegradePolicy == Partial {
		ready = healthy > 0
	}
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, api.Error{
			Error:        fmt.Sprintf("not ready: %d/%d shards healthy under policy %s", healthy, len(co.clients), co.cfg.DegradePolicy),
			Code:         "not_ready",
			MissedShards: down,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready", "healthy_shards": healthy})
}

// shardStatsWire is one shard's robustness gauges on /stats.
type shardStatsWire struct {
	ID  int    `json:"id"`
	URL string `json:"url"`
	// ActiveURL is where calls are actually going: the primary URL until
	// a failover promotes a replica.
	ActiveURL    string   `json:"active_url,omitempty"`
	Replicas     []string `json:"replicas,omitempty"`
	ReadingFrom  string   `json:"reading_from,omitempty"`
	Promotions   int64    `json:"promotions,omitempty"`
	SteeredReads int64    `json:"steered_reads,omitempty"`
	Healthy      bool     `json:"healthy"`
	Breaker      string   `json:"breaker"`
	BreakerOpens int64    `json:"breaker_opens"`
	Requests     int64    `json:"requests"`
	Retries      int64    `json:"retries"`
	Hedges       int64    `json:"hedges"`
	HedgeWins    int64    `json:"hedge_wins"`
	Failures     int64    `json:"failures"`
	FastFails    int64    `json:"fast_fails"`
	Probes       int64    `json:"probes"`
	ProbeFails   int64    `json:"probe_failures"`
}

type coordinatorStats struct {
	UptimeSeconds    float64          `json:"uptime_seconds"`
	Mode             string           `json:"mode"`
	Policy           string           `json:"policy"`
	ShardCount       int              `json:"shard_count"`
	Queries          int64            `json:"queries"`
	Fanouts          int64            `json:"fanouts"`
	PartialResponses int64            `json:"partial_responses"`
	StrictErrors     int64            `json:"strict_errors"`
	Promotions       int64            `json:"promotions"`
	Shards           []shardStatsWire `json:"shards"`
}

func (co *Coordinator) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := coordinatorStats{
		UptimeSeconds:    time.Since(co.start).Seconds(),
		Mode:             "coordinator",
		Policy:           co.cfg.DegradePolicy.String(),
		ShardCount:       len(co.clients),
		Queries:          co.queries.Load(),
		Fanouts:          co.fanouts.Load(),
		PartialResponses: co.partials.Load(),
		StrictErrors:     co.strictErrors.Load(),
	}
	for _, c := range co.clients {
		reading := ""
		if s := c.steer.Load(); s != nil {
			reading = *s
		}
		st.Promotions += c.promotions.Load()
		st.Shards = append(st.Shards, shardStatsWire{
			ID:           c.shard.ID,
			URL:          c.shard.URL,
			ActiveURL:    c.activeURL(),
			Replicas:     c.shard.Replicas,
			ReadingFrom:  reading,
			Promotions:   c.promotions.Load(),
			SteeredReads: c.steered.Load(),
			Healthy:      c.healthy.Load(),
			Breaker:      c.brk.State(),
			BreakerOpens: c.brk.Opens(),
			Requests:     c.requests.Load(),
			Retries:      c.retries.Load(),
			Hedges:       c.hedges.Load(),
			HedgeWins:    c.hedgeWins.Load(),
			Failures:     c.failures.Load(),
			FastFails:    c.fastFails.Load(),
			Probes:       c.probes.Load(),
			ProbeFails:   c.probeFail.Load(),
		})
	}
	writeJSON(w, http.StatusOK, st)
}

func (co *Coordinator) handleUnsupported(w http.ResponseWriter, _ *http.Request) {
	co.writeError(w, http.StatusNotImplemented, "not_supported_on_coordinator",
		fmt.Errorf("endpoint not supported in coordinator mode (query each shard directly)"), nil)
}

// --- Catalog endpoints ----------------------------------------------------

func (co *Coordinator) handleList(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	names := make(map[string]bool)
	var mu sync.Mutex
	errs := co.fanOut(func(i int, c *client) error {
		var out struct {
			Collections []string `json:"collections"`
		}
		if err := c.call(ctx, http.MethodGet, "/collections", nil, &out, true); err != nil {
			return err
		}
		mu.Lock()
		for _, n := range out.Collections {
			names[n] = true
		}
		mu.Unlock()
		return nil
	})
	if len(missedOf(errs)) == len(co.clients) {
		status, code := shardCallStatus(ctx, firstErr(errs))
		co.writeError(w, status, code, fmt.Errorf("no shard reachable: %w", firstErr(errs)), missedOf(errs))
		return
	}
	list := make([]string, 0, len(names))
	for n := range names {
		list = append(list, n)
	}
	sortStrings(list)
	writeJSON(w, http.StatusOK, map[string][]string{"collections": list})
}

func (co *Coordinator) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateRequest
	if err := decodeBody(w, r, &req); err != nil {
		co.writeError(w, http.StatusBadRequest, "", err, nil)
		return
	}
	name := r.PathValue("name")
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	body, _ := json.Marshal(req)
	created := make([]bool, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		var out api.CreateResponse
		if err := c.call(ctx, http.MethodPut, "/collections/"+name, body, &out, false); err != nil {
			return err
		}
		created[i] = out.Created
		return nil
	})
	if missed := missedOf(errs); len(missed) > 0 {
		// Create must land on every shard: a collection that exists on a
		// subset would silently lose the missing shards' slice of every
		// future ingest. PUT is idempotent — the client simply retries.
		status, code := shardCallStatus(ctx, firstErr(errs))
		co.writeError(w, status, code,
			fmt.Errorf("create %q incomplete, retry: %w", name, firstErr(errs)), missed)
		return
	}
	anyCreated := false
	for _, c := range created {
		anyCreated = anyCreated || c
	}
	status := http.StatusOK
	if anyCreated {
		status = http.StatusCreated
	}
	writeJSON(w, status, api.CreateResponse{Name: name, Dims: req.Dims, Created: anyCreated})
}

func (co *Coordinator) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	notFound := 0
	var mu sync.Mutex
	errs := co.fanOut(func(i int, c *client) error {
		err := c.call(ctx, http.MethodDelete, "/collections/"+name, nil, nil, false)
		var se *StatusError
		if errors.As(err, &se) && se.Status == http.StatusNotFound {
			mu.Lock()
			notFound++
			mu.Unlock()
			return nil
		}
		return err
	})
	co.colMu.Lock()
	delete(co.nextID, name)
	co.colMu.Unlock()
	if missed := missedOf(errs); len(missed) > 0 {
		status, code := shardCallStatus(ctx, firstErr(errs))
		co.writeError(w, status, code,
			fmt.Errorf("drop %q incomplete, retry: %w", name, firstErr(errs)), missed)
		return
	}
	if notFound == len(co.clients) {
		co.writeError(w, http.StatusNotFound, "", fmt.Errorf("collection not found"), nil)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// shardCollectionStats is the slice of a shard's per-collection stats
// the coordinator consumes and re-serves.
type shardCollectionStats struct {
	Dims     int `json:"dims"`
	Len      int `json:"len"`
	Live     int `json:"live"`
	Segments int `json:"segments"`
}

func (co *Coordinator) handleCollectionStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	per := make([]shardCollectionStats, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		return c.call(ctx, http.MethodGet, "/collections/"+name, nil, &per[i], true)
	})
	if missed := missedOf(errs); len(missed) > 0 {
		status, code := shardCallStatus(ctx, firstErr(errs))
		co.writeError(w, status, code, firstErr(errs), missed)
		return
	}
	total := shardCollectionStats{Dims: per[0].Dims}
	for _, p := range per {
		total.Len += p.Len
		total.Live += p.Live
		total.Segments += p.Segments
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dims":     total.Dims,
		"len":      total.Len,
		"live":     total.Live,
		"segments": total.Segments,
		"shards":   per,
	})
}

// --- Routed single-vector endpoints ---------------------------------------

func (co *Coordinator) handleGetVector(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("bad vector id: %w", err), nil)
		return
	}
	if g < 0 {
		co.writeError(w, http.StatusNotFound, "", fmt.Errorf("id %d outside collection", g), nil)
		return
	}
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	owner := co.topo.Owner(g)
	var out api.VectorResponse
	path := fmt.Sprintf("/collections/%s/vectors/%d", name, co.topo.Local(g))
	if err := co.clients[owner].call(ctx, http.MethodGet, path, nil, &out, true); err != nil {
		status, code := shardCallStatus(ctx, err)
		co.writeError(w, status, code, err, nil)
		return
	}
	writeJSON(w, http.StatusOK, api.VectorResponse{ID: g, Vector: out.Vector})
}

func (co *Coordinator) handleDeleteVector(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	g, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("bad vector id: %w", err), nil)
		return
	}
	if g < 0 {
		co.writeError(w, http.StatusNotFound, "", fmt.Errorf("id %d outside collection", g), nil)
		return
	}
	ctx, cancel := co.budget(r, 0)
	defer cancel()
	owner := co.topo.Owner(g)
	path := fmt.Sprintf("/collections/%s/vectors/%d", name, co.topo.Local(g))
	if err := co.clients[owner].call(ctx, http.MethodDelete, path, nil, nil, false); err != nil {
		status, code := shardCallStatus(ctx, err)
		co.writeError(w, status, code, err, nil)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Ingest ---------------------------------------------------------------

// nextGlobal returns the next global id for name, syncing from the
// shards' lengths when the coordinator has no cached counter (first
// touch, restart, or a previous partial failure). The sync also verifies
// the shards' lengths are consistent with the round-robin layout;
// anything else means writes bypassed the coordinator or a shard lost
// acknowledged data — reported as topology drift rather than silently
// mis-routing every future id. Callers hold colMu.
func (co *Coordinator) nextGlobal(ctx context.Context, name string) (int, error) {
	if next, ok := co.nextID[name]; ok {
		return next, nil
	}
	lens := make([]int, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		var st shardCollectionStats
		if err := c.call(ctx, http.MethodGet, "/collections/"+name, nil, &st, true); err != nil {
			return err
		}
		lens[i] = st.Len
		return nil
	})
	if err := firstErr(errs); err != nil {
		return 0, err
	}
	total := 0
	for _, l := range lens {
		total += l
	}
	for s, l := range lens {
		if want := co.topo.LocalLen(s, total); l != want {
			return 0, &driftError{fmt.Errorf(
				"shard %d holds %d vectors of %q, round-robin layout over %d total wants %d", s, l, name, total, want)}
		}
	}
	co.nextID[name] = total
	return total, nil
}

// driftError marks a topology-drift failure (shard contents inconsistent
// with the round-robin layout).
type driftError struct{ err error }

func (e *driftError) Error() string { return "topology drift: " + e.err.Error() }
func (e *driftError) Unwrap() error { return e.err }

func (co *Coordinator) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.IngestRequest
	if err := decodeBody(w, r, &req); err != nil {
		co.writeError(w, http.StatusBadRequest, "", err, nil)
		return
	}
	var vectors [][]float64
	switch {
	case len(req.Vector) > 0 && len(req.Vectors) > 0:
		co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("set either vector or vectors, not both"), nil)
		return
	case len(req.Vector) > 0:
		vectors = [][]float64{req.Vector}
	case len(req.Vectors) > 0:
		vectors = req.Vectors
	default:
		co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("vector or vectors is required"), nil)
		return
	}
	ctx, cancel := co.budget(r, 0)
	defer cancel()

	// Ingests serialize on colMu: global ids are assigned round-robin in
	// arrival order, and each shard must receive its sub-batches in that
	// same order for its local ids to stay in lockstep.
	co.colMu.Lock()
	defer co.colMu.Unlock()
	next, err := co.nextGlobal(ctx, name)
	if err != nil {
		var de *driftError
		if errors.As(err, &de) {
			co.writeError(w, http.StatusConflict, "topology_drift", err, nil)
			return
		}
		status, code := shardCallStatus(ctx, err)
		co.writeError(w, status, code, err, nil)
		return
	}

	// Split the batch: global id next+i → shard (next+i) mod N, keeping
	// arrival order inside each sub-batch.
	sub := make([][][]float64, len(co.clients))
	firstLocal := make([]int, len(co.clients))
	for i := range firstLocal {
		firstLocal[i] = -1
	}
	for i, v := range vectors {
		g := next + i
		s := co.topo.Owner(g)
		if firstLocal[s] < 0 {
			firstLocal[s] = co.topo.Local(g)
		}
		sub[s] = append(sub[s], v)
	}

	drift := make([]bool, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		if len(sub[i]) == 0 {
			return nil
		}
		body, _ := json.Marshal(api.IngestRequest{Vectors: sub[i]})
		var out api.IngestResponse
		// Not hedged: ingest is not idempotent — a duplicate landing would
		// shift every later id.
		if err := c.call(ctx, http.MethodPost, "/collections/"+name+"/vectors", body, &out, false); err != nil {
			return err
		}
		if out.FirstID != firstLocal[i] {
			drift[i] = true
			return &driftError{fmt.Errorf("shard %d assigned local id %d, layout wants %d", i, out.FirstID, firstLocal[i])}
		}
		return nil
	})
	if missed := missedOf(errs); len(missed) > 0 {
		// Some shards may have committed their slice: the cached counter
		// is no longer trustworthy, so drop it — the next ingest resyncs
		// from shard lengths (and reports drift if the layout broke).
		delete(co.nextID, name)
		err := firstErr(errs)
		for _, i := range missed {
			if drift[i] {
				co.writeError(w, http.StatusConflict, "topology_drift", errs[i], missed)
				return
			}
		}
		status, code := shardCallStatus(ctx, err)
		co.writeError(w, status, code,
			fmt.Errorf("ingest incomplete (%d/%d shards missed): %w", len(missed), len(co.clients), err), missed)
		return
	}
	co.nextID[name] = next + len(vectors)
	writeJSON(w, http.StatusOK, api.IngestResponse{FirstID: next, Count: len(vectors)})
}

// --- Query fan-out --------------------------------------------------------

// resolveSpec validates a wire spec and resolves query-by-example
// against the owning shard, returning a spec ready to forward (explicit
// query vector, no id, no policy).
func (co *Coordinator) resolveSpec(ctx context.Context, name string, wq api.QuerySpec) (api.QuerySpec, int, error) {
	if wq.K < 1 {
		return wq, http.StatusBadRequest, fmt.Errorf("k must be >= 1")
	}
	if _, err := bond.ParseCriterion(wq.Criterion); err != nil {
		return wq, http.StatusBadRequest, err
	}
	switch {
	case len(wq.Query) > 0 && wq.ID != nil:
		return wq, http.StatusBadRequest, fmt.Errorf("set either query or id, not both")
	case wq.ID != nil:
		g := *wq.ID
		if g < 0 {
			return wq, http.StatusBadRequest, fmt.Errorf("id %d outside collection", g)
		}
		var out api.VectorResponse
		path := fmt.Sprintf("/collections/%s/vectors/%d", name, co.topo.Local(g))
		if err := co.clients[co.topo.Owner(g)].call(ctx, http.MethodGet, path, nil, &out, true); err != nil {
			// Without the example vector nothing can be served — not even
			// partially — so this is an error under every policy.
			status, _ := shardCallStatus(ctx, err)
			return wq, status, fmt.Errorf("resolve query-by-example id %d: %w", g, err)
		}
		wq.Query = out.Vector
		wq.ID = nil
	case len(wq.Query) == 0:
		return wq, http.StatusBadRequest, fmt.Errorf("query vector (or id) is required")
	}
	wq.Policy = ""
	return wq, 0, nil
}

// policyOf resolves the effective degradation policy for a query.
func (co *Coordinator) policyOf(wq api.QuerySpec) (Policy, error) {
	if wq.Policy == "" {
		return co.cfg.DegradePolicy, nil
	}
	return ParsePolicy(wq.Policy)
}

// mergeShardResponses exact-merges per-shard responses (nil entries =
// missed shards) into one global response: shard-local ids are rebased
// into the global id space and the ranked lists merged with the
// score-then-id tie-break, so the answer is byte-identical to a single
// node holding all the data. Work stats sum; Truncated ORs.
func (co *Coordinator) mergeShardResponses(k int, largest bool, per []*api.QueryResponse) api.QueryResponse {
	lists := make([][]topk.Result, 0, len(per))
	var out api.QueryResponse
	for s, resp := range per {
		if resp == nil {
			continue
		}
		list := make([]topk.Result, len(resp.Results))
		for i, n := range resp.Results {
			list[i] = topk.Result{ID: co.topo.Global(s, n.ID), Score: n.Score}
		}
		lists = append(lists, list)
		out.Stats.ValuesScanned += resp.Stats.ValuesScanned
		out.Stats.FinalCandidates += resp.Stats.FinalCandidates
		out.Stats.SegmentsSearched += resp.Stats.SegmentsSearched
		out.Stats.SegmentsSkipped += resp.Stats.SegmentsSkipped
		out.Truncated = out.Truncated || resp.Truncated
	}
	merged := streammerge.MergeRanked(k, largest, lists...)
	out.Results = make([]api.Neighbor, len(merged))
	for i, r := range merged {
		out.Results[i] = api.Neighbor{ID: r.ID, Score: r.Score}
	}
	return out
}

func (co *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var wq api.QuerySpec
	if err := decodeBody(w, r, &wq); err != nil {
		co.writeError(w, http.StatusBadRequest, "", err, nil)
		return
	}
	policy, err := co.policyOf(wq)
	if err != nil {
		co.writeError(w, http.StatusBadRequest, "", err, nil)
		return
	}
	ctx, cancel := co.budget(r, wq.TimeoutMs)
	defer cancel()
	co.queries.Add(1)
	spec, status, err := co.resolveSpec(ctx, name, wq)
	if err != nil {
		co.writeError(w, status, "", err, nil)
		return
	}
	resp, status, code, missed, err := co.fanQuery(ctx, name, spec, policy)
	if err != nil {
		co.writeError(w, status, code, err, missed)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// fanQuery fans one resolved spec out to every shard and merges under
// the given policy.
func (co *Coordinator) fanQuery(ctx context.Context, name string, spec api.QuerySpec, policy Policy) (api.QueryResponse, int, string, []int, error) {
	largest := mergeLargest(spec.Criterion)
	spec.TimeoutMs = remainingMs(ctx)
	body, _ := json.Marshal(spec)
	per := make([]*api.QueryResponse, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		var out api.QueryResponse
		if err := c.call(ctx, http.MethodPost, "/collections/"+name+"/query", body, &out, true); err != nil {
			return err
		}
		per[i] = &out
		return nil
	})
	missed := missedOf(errs)
	if len(missed) > 0 {
		err := firstErr(errs)
		if policy == Strict || len(missed) == len(co.clients) {
			co.strictErrors.Add(1)
			status, code := shardCallStatus(ctx, err)
			return api.QueryResponse{}, status, code, missed,
				fmt.Errorf("%d/%d shards missed: %w", len(missed), len(co.clients), err)
		}
		co.partials.Add(1)
		co.logf("coordinator: degrading to partial (%d/%d shards missed): %v", len(missed), len(co.clients), err)
	}
	out := co.mergeShardResponses(spec.K, largest, per)
	if len(missed) > 0 {
		out.Partial = true
		out.MissedShards = missed
	}
	return out, http.StatusOK, "", nil, nil
}

func (co *Coordinator) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req api.BatchRequest
	if err := decodeBody(w, r, &req); err != nil {
		co.writeError(w, http.StatusBadRequest, "", err, nil)
		return
	}
	if len(req.Queries) == 0 {
		co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("queries is required"), nil)
		return
	}
	// One budget for the whole batch, from the largest per-query timeout
	// (each shard bounds individual queries with its own deadline).
	maxTimeout := 0
	for _, wq := range req.Queries {
		if wq.TimeoutMs > maxTimeout {
			maxTimeout = wq.TimeoutMs
		}
	}
	ctx, cancel := co.budget(r, maxTimeout)
	defer cancel()

	// The whole batch degrades under one policy: mixing strict and
	// partial queries in one fan-out would force the strict ones to fail
	// the batch anyway.
	policy := co.cfg.DegradePolicy
	specs := make([]api.QuerySpec, len(req.Queries))
	largest := make([]bool, len(req.Queries))
	for i, wq := range req.Queries {
		p, err := co.policyOf(wq)
		if err != nil {
			co.writeError(w, http.StatusBadRequest, "", fmt.Errorf("query %d: %w", i, err), nil)
			return
		}
		if wq.Policy != "" {
			policy = p
		}
		spec, status, err := co.resolveSpec(ctx, name, wq)
		if err != nil {
			co.writeError(w, status, "", fmt.Errorf("query %d: %w", i, err), nil)
			return
		}
		spec.TimeoutMs = remainingMs(ctx)
		specs[i] = spec
		largest[i] = mergeLargest(spec.Criterion)
	}
	co.queries.Add(int64(len(specs)))

	body, _ := json.Marshal(api.BatchRequest{Queries: specs})
	per := make([]*api.BatchResponse, len(co.clients))
	errs := co.fanOut(func(i int, c *client) error {
		var out api.BatchResponse
		if err := c.call(ctx, http.MethodPost, "/collections/"+name+"/query/batch", body, &out, true); err != nil {
			return err
		}
		if len(out.Results) != len(specs) {
			return fmt.Errorf("shard %d answered %d results for %d queries", i, len(out.Results), len(specs))
		}
		per[i] = &out
		return nil
	})
	missed := missedOf(errs)
	if len(missed) > 0 {
		err := firstErr(errs)
		if policy == Strict || len(missed) == len(co.clients) {
			co.strictErrors.Add(1)
			status, code := shardCallStatus(ctx, err)
			co.writeError(w, status, code,
				fmt.Errorf("%d/%d shards missed: %w", len(missed), len(co.clients), err), missed)
			return
		}
		co.partials.Add(1)
		co.logf("coordinator: degrading batch to partial (%d/%d shards missed): %v", len(missed), len(co.clients), err)
	}
	out := api.BatchResponse{Results: make([]api.QueryResponse, len(specs))}
	perQuery := make([]*api.QueryResponse, len(co.clients))
	for q := range specs {
		for s := range co.clients {
			if per[s] == nil {
				perQuery[s] = nil
			} else {
				perQuery[s] = &per[s].Results[q]
			}
		}
		out.Results[q] = co.mergeShardResponses(specs[q].K, largest[q], perQuery)
		if len(missed) > 0 {
			out.Results[q].Partial = true
			out.Results[q].MissedShards = missed
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// mergeLargest returns the merge direction for a criterion name the
// caller has already validated: similarity criteria rank descending,
// distance criteria ascending.
func mergeLargest(criterion string) bool {
	crit, _ := bond.ParseCriterion(criterion)
	return !crit.Distance()
}

// remainingMs converts the context's remaining budget into the
// timeout_ms forwarded to shards (minimum 1: zero would mean "no
// deadline" on the shard).
func remainingMs(ctx context.Context) int {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := int(time.Until(dl) / time.Millisecond)
	if ms < 1 {
		ms = 1
	}
	return ms
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

package shard

import (
	"testing"
	"time"
)

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, time.Hour)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker opened after %d failures, threshold 3", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still admits calls after 3 consecutive failures")
	}
	if got := b.State(); got != "open" {
		t.Fatalf("state = %q, want open", got)
	}
	if b.Opens() != 1 {
		t.Fatalf("opens = %d, want 1", b.Opens())
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := NewBreaker(2, time.Hour)
	b.Failure()
	b.Success() // resets the consecutive count
	b.Failure()
	if !b.Allow() {
		t.Fatal("non-consecutive failures opened the breaker")
	}
}

func TestBreakerHalfOpenTrial(t *testing.T) {
	b := NewBreaker(1, 10*time.Millisecond)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	// Allow's first true claims the half-open trial slot.
	waitUntil(t, time.Second, "cooldown to elapse and admit the trial", b.Allow)
	if got := b.State(); got != "half-open" {
		t.Fatalf("state = %q, want half-open", got)
	}
	// Only one trial at a time.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}
	// A failed trial re-opens for another full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("failed trial did not re-open the breaker")
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	waitUntil(t, time.Second, "second cooldown to elapse and admit the trial", b.Allow)
	b.Success()
	if got := b.State(); got != "closed" {
		t.Fatalf("state after successful trial = %q, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
}

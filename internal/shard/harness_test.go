package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"bond/internal/server"
)

// Fault modes the chaos proxy injects in front of a real shard.
const (
	faultNone    = ""
	faultKill    = "kill"    // abort the connection: the shard process is gone
	faultSlow    = "slow"    // hang well past any reasonable deadline
	faultFlap    = "flap"    // alternate dead and alive per request
	faultGarbage = "garbage" // answer 200 with an undecodable body
)

// faultProxy fronts a healthy shard and injects one failure mode on
// demand — the chaos suite's stand-in for killed, hung, flapping, and
// corrupted shard processes.
type faultProxy struct {
	backend http.Handler
	mode    atomic.Value // one of the fault constants
	hits    atomic.Int64 // requests seen while flapping
}

func (p *faultProxy) setMode(m string) { p.mode.Store(m) }

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	mode, _ := p.mode.Load().(string)
	switch mode {
	case faultKill:
		panic(http.ErrAbortHandler) // slams the connection shut
	case faultSlow:
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Second):
		}
	case faultFlap:
		if p.hits.Add(1)%2 == 1 {
			panic(http.ErrAbortHandler)
		}
	case faultGarbage:
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{{{ not json at all`)
		return
	}
	p.backend.ServeHTTP(w, r)
}

// testCluster is N real single-node servers behind fault proxies, with a
// coordinator fanning out across them.
type testCluster struct {
	t       *testing.T
	co      *Coordinator
	front   *httptest.Server   // the coordinator's HTTP face
	proxies []*faultProxy      // per-shard fault injection
	raw     []*httptest.Server // direct shard endpoints bypassing the proxies
}

// fastTestConfig is a chaos-friendly envelope: real retry/hedge
// semantics, millisecond costs.
func fastTestConfig() Config {
	return Config{
		Envelope: Envelope{
			MaxAttempts: 2,
			BackoffBase: time.Millisecond,
			BackoffMax:  5 * time.Millisecond,
		},
		BreakerThreshold: 1000, // out of the way unless a test lowers it
		BreakerCooldown:  50 * time.Millisecond,
		DefaultTimeout:   5 * time.Second,
	}
}

// newTestCluster builds n real shards (each a full single-node server
// over its own temp dir) behind fault proxies and a coordinator over
// them. ProbeInterval is forced to 0: tests drive ProbeNow directly so
// health transitions are deterministic.
func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	cl := &testCluster{t: t}
	topo := &Topology{}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Dir: t.TempDir(), Logf: func(string, ...any) {}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		raw := httptest.NewServer(s.Handler())
		t.Cleanup(raw.Close)
		proxy := &faultProxy{backend: s.Handler()}
		front := httptest.NewServer(proxy)
		t.Cleanup(front.Close)
		cl.raw = append(cl.raw, raw)
		cl.proxies = append(cl.proxies, proxy)
		topo.Shards = append(topo.Shards, Shard{ID: i, URL: front.URL})
	}
	cfg.Topology = topo
	cfg.ProbeInterval = 0
	co, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	cl.co = co
	cl.front = httptest.NewServer(co.Handler())
	t.Cleanup(cl.front.Close)
	return cl
}

// newOracleServer builds the single-node oracle the coordinator must be
// byte-identical to.
func newOracleServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := server.New(server.Config{Dir: t.TempDir(), Logf: func(string, ...any) {}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// doJSON issues one request with an optional JSON body, decodes the JSON
// response into out (when non-nil), and returns the status code and raw
// body.
func doJSON(t *testing.T, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(raw) > 0 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// rankedBody is a query response with the ranked results kept as raw
// bytes, so oracle comparisons are byte-exact rather than value-exact.
type rankedBody struct {
	Results      json.RawMessage `json:"results"`
	Truncated    bool            `json:"truncated"`
	Partial      bool            `json:"partial"`
	MissedShards []int           `json:"missed_shards"`
}

// waitUntil polls cond until it reports true or the deadline passes,
// failing the test on timeout. It replaces fixed sleeps around timing-
// dependent state (breaker cooldowns, prober rounds): the suite then
// waits exactly as long as the transition takes instead of guessing,
// which keeps -race -count=5 runs on loaded machines deterministic.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %v waiting for %s", timeout, what)
		}
		time.Sleep(time.Millisecond)
	}
}

// deterministicVectors generates count vectors of the given dims from a
// fixed linear-congruential stream, so shards and oracle see identical
// data without sharing state.
func deterministicVectors(count, dims int) [][]float64 {
	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([][]float64, count)
	for i := range out {
		v := make([]float64, dims)
		for d := range v {
			v[d] = next()
		}
		out[i] = v
	}
	return out
}

// Package api holds the JSON wire types of the bondd HTTP API — the
// request and response shapes both the single-node serving layer
// (internal/server) and the sharded coordinator (internal/shard) speak.
// Keeping them in one package is what makes the coordinator transparent:
// it accepts exactly the single-node shapes, fans them out to shards
// speaking the same shapes, and responds in kind (plus the degradation
// fields Partial and MissedShards, which a single node never sets).
package api

// Error is the structured error body every non-2xx response carries.
// Code is a stable machine-readable cause ("overloaded", "not_ready",
// "deadline", "shard_unavailable", "topology_drift", …; empty for plain
// validation errors); RetryAfterMs, when non-zero, tells the client the
// failure is transient and how long to back off before retrying — the
// coordinator's retry envelope honors it, as does the Retry-After header
// mirroring it.
type Error struct {
	Error        string `json:"error"`
	Code         string `json:"code,omitempty"`
	RetryAfterMs int    `json:"retry_after_ms,omitempty"`
	// MissedShards names the shards whose data a strict-mode coordinator
	// error is about (only the coordinator sets it).
	MissedShards []int `json:"missed_shards,omitempty"`
}

// CreateRequest is the body of PUT /collections/{name}.
type CreateRequest struct {
	Dims        int `json:"dims"`
	SegmentSize int `json:"segment_size,omitempty"`
}

// CreateResponse acknowledges a create.
type CreateResponse struct {
	Name    string `json:"name"`
	Dims    int    `json:"dims"`
	Created bool   `json:"created"`
}

// IngestRequest is the body of POST /collections/{name}/vectors. Vector
// ingests one vector; Vectors a batch. Exactly one must be set.
type IngestRequest struct {
	Vector  []float64   `json:"vector,omitempty"`
	Vectors [][]float64 `json:"vectors,omitempty"`
}

// IngestResponse acknowledges an ingest. FirstID is the id of the first
// ingested vector; the batch occupies ids [FirstID, FirstID+Count). Ids
// are positional and are remapped when background compaction rewrites
// tombstoned segments.
type IngestResponse struct {
	FirstID int `json:"first_id"`
	Count   int `json:"count"`
}

// QuerySpec is the HTTP shape of bond.QuerySpec. Either Query (the
// vector itself) or ID (query-by-example: use the stored vector with
// that id) must be set.
type QuerySpec struct {
	Query     []float64 `json:"query,omitempty"`
	ID        *int      `json:"id,omitempty"`
	K         int       `json:"k"`
	Criterion string    `json:"criterion,omitempty"`
	Order     string    `json:"order,omitempty"`
	Step      int       `json:"step,omitempty"`
	Weights   []float64 `json:"weights,omitempty"`
	Dims      []int     `json:"dims,omitempty"`
	Strategy  string    `json:"strategy,omitempty"`
	Parallel  int       `json:"parallel,omitempty"`
	Tolerance float64   `json:"tolerance,omitempty"`
	// TimeoutMs maps onto QuerySpec.Deadline relative to request arrival.
	// On the coordinator it is the whole fan-out's budget; the remaining
	// slice is forwarded to each shard.
	TimeoutMs int `json:"timeout_ms,omitempty"`
	// Policy overrides the coordinator's degradation policy for this
	// query: "strict" (any shard miss is an error) or "partial" (top-k
	// over surviving shards, marked Partial). Empty uses the
	// coordinator's configured default; a single node ignores it.
	Policy string `json:"policy,omitempty"`
}

// Neighbor is one scored match.
type Neighbor struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// QueryStats summarizes the work a query performed (summed across
// shards by the coordinator).
type QueryStats struct {
	ValuesScanned    int64 `json:"values_scanned"`
	FinalCandidates  int   `json:"final_candidates"`
	SegmentsSearched int   `json:"segments_searched"`
	SegmentsSkipped  int   `json:"segments_skipped"`
}

// QueryResponse is the body of POST /collections/{name}/query. Partial
// and MissedShards are set only by a coordinator degrading under shard
// loss: the results then cover the surviving shards only.
type QueryResponse struct {
	Results   []Neighbor `json:"results"`
	Stats     QueryStats `json:"stats"`
	Truncated bool       `json:"truncated,omitempty"`
	Partial   bool       `json:"partial,omitempty"`
	// MissedShards lists the shard ids whose answers are absent from a
	// partial response.
	MissedShards []int `json:"missed_shards,omitempty"`
}

// BatchRequest is the body of POST /collections/{name}/query/batch.
type BatchRequest struct {
	Queries []QuerySpec `json:"queries"`
}

// BatchResponse carries one QueryResponse per batch query, in order.
type BatchResponse struct {
	Results []QueryResponse `json:"results"`
}

// VectorResponse is the body of GET /collections/{name}/vectors/{id}.
type VectorResponse struct {
	ID     int       `json:"id"`
	Vector []float64 `json:"vector"`
}

// ReplCollection is one collection's replication gauges on a follower:
// its own stream position, the leader position it last saw, and whether
// it has applied everything the leader had at last contact.
type ReplCollection struct {
	Seq       uint64 `json:"seq"`
	Off       int64  `json:"off"`
	LeaderSeq uint64 `json:"leader_seq"`
	LeaderOff int64  `json:"leader_off"`
	LagBytes  int64  `json:"lag_bytes"`
	CaughtUp  bool   `json:"caught_up"`
	Diverged  bool   `json:"diverged"`
	LastError string `json:"last_error,omitempty"`
}

// ReplStatus is the body of GET /replstatus — a follower's self-report,
// and the evidence the coordinator's prober demands before promoting
// it. CaughtUp is as of the last successful leader contact: a follower
// that fully drained the stream before the leader died keeps reporting
// true (it is safe to promote), while one that was lagging reports
// false forever (promoting it would lose acknowledged writes).
type ReplStatus struct {
	// Following is the leader base URL; empty on a node that was never a
	// follower.
	Following string `json:"following,omitempty"`
	// Promoted is set once POST /promote succeeded; the node then
	// accepts writes and no longer tails.
	Promoted bool  `json:"promoted"`
	CaughtUp bool  `json:"caught_up"`
	Diverged bool  `json:"diverged"`
	LagBytes int64 `json:"lag_bytes"`
	// Syncs counts completed sync passes; LastSyncUnixMs stamps the last
	// successful one.
	Syncs          int64                     `json:"syncs"`
	LastSyncUnixMs int64                     `json:"last_sync_unix_ms,omitempty"`
	LastError      string                    `json:"last_error,omitempty"`
	Collections    map[string]ReplCollection `json:"collections,omitempty"`
}

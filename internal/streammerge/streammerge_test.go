package streammerge

import (
	"errors"
	"math"
	"testing"

	"bond/internal/dataset"
	"bond/internal/multifeature"
	"bond/internal/topk"
	"bond/internal/vstore"
)

func twoFeatures(n int, seed int64) []multifeature.Feature {
	c1 := dataset.DefaultClustered(n, 16, 1.0, seed)
	c1.Clusters = 20
	v1 := dataset.Clustered(c1)
	dataset.NormalizeAll(v1)
	c2 := dataset.DefaultClustered(n, 32, 1.0, seed+1)
	c2.Clusters = 20
	v2 := dataset.Clustered(c2)
	dataset.NormalizeAll(v2)
	return []multifeature.Feature{
		{Store: vstore.FromVectors(v1), Query: append([]float64(nil), v1[0]...), Weight: 1},
		{Store: vstore.FromVectors(v2), Query: append([]float64(nil), v2[0]...), Weight: 1},
	}
}

func bruteGlobal(features []multifeature.Feature, agg multifeature.Aggregate, k int) []topk.Result {
	h := topk.NewLargest(k)
	for id := 0; id < features[0].Store.Len(); id++ {
		h.Push(id, multifeature.ExactGlobal(features, agg, id))
	}
	return h.Results()
}

func assertMatches(t *testing.T, label string, got, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID && math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Errorf("%s rank %d: id %d (%.6f), want %d (%.6f)",
				label, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
		}
	}
}

func TestSearchMatchesBruteForce(t *testing.T) {
	features := twoFeatures(300, 11)
	for _, agg := range []multifeature.Aggregate{multifeature.WeightedAvg, multifeature.MinAgg} {
		res, err := Search(features, 10, agg)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		assertMatches(t, agg.String(), res.Results, bruteGlobal(features, agg, 10))
		if res.Stats.Rounds < 1 || res.Stats.FinalKPrime < 10 {
			t.Errorf("%v: implausible stats %+v", agg, res.Stats)
		}
	}
}

func TestSearchOptimalMatchesSearch(t *testing.T) {
	features := twoFeatures(250, 13)
	for _, agg := range []multifeature.Aggregate{multifeature.WeightedAvg, multifeature.MinAgg} {
		a, err := Search(features, 5, agg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SearchOptimal(features, 5, agg)
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, "optimal vs doubling", b.Results, a.Results)
		// The optimal k′ never exceeds the doubling run's final k′.
		if b.Stats.FinalKPrime > a.Stats.FinalKPrime {
			t.Errorf("optimal k′ %d > doubling k′ %d", b.Stats.FinalKPrime, a.Stats.FinalKPrime)
		}
		// A single optimal round costs at most the doubling run's total.
		if b.Stats.ValuesScanned > a.Stats.ValuesScanned {
			t.Errorf("optimal cost %d > doubling cost %d", b.Stats.ValuesScanned, a.Stats.ValuesScanned)
		}
	}
}

func TestSearchMatchesSynchronized(t *testing.T) {
	features := twoFeatures(300, 17)
	for _, agg := range []multifeature.Aggregate{multifeature.WeightedAvg, multifeature.MinAgg} {
		sm, err := Search(features, 10, agg)
		if err != nil {
			t.Fatal(err)
		}
		sync, err := multifeature.Search(features, multifeature.Options{K: 10, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		assertMatches(t, "merge vs synchronized "+agg.String(), sm.Results, sync.Results)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Search(nil, 1, multifeature.WeightedAvg); !errors.Is(err, ErrBadOptions) {
		t.Errorf("no features: %v", err)
	}
	features := twoFeatures(50, 3)
	if _, err := Search(features, 0, multifeature.WeightedAvg); !errors.Is(err, ErrBadOptions) {
		t.Errorf("k=0: %v", err)
	}
}

func TestKPrimeGrowsWhenNeeded(t *testing.T) {
	// With the min aggregate and queries from different objects, the global
	// winner may rank low in each individual stream, forcing k′ growth.
	features := twoFeatures(300, 23)
	features[1].Query = append([]float64(nil), features[1].Store.(*vstore.Store).Row(17)...)
	res, err := Search(features, 10, multifeature.MinAgg)
	if err != nil {
		t.Fatal(err)
	}
	assertMatches(t, "cross-query", res.Results, bruteGlobal(features, multifeature.MinAgg, 10))
}

// Package streammerge implements the stream-merging baseline for
// multi-feature queries that Section 8.2 compares synchronized BOND
// against: the approach of Fagin [7] and Güntzer et al. [9].
//
// Each feature collection produces a ranked stream of its top matches
// (here via BOND with criterion Hq, so the per-stream search is as strong
// as the competition's). The merge retrieves the top k′ objects of every
// stream, computes the exact global score for each object seen in any
// stream via random accesses to the other features, and stops when the
// k-th best global score reaches the threshold τ = agg(per-stream k′-th
// scores) — no unseen object can beat τ, because streams are sorted.
// If the condition fails, k′ doubles and the streams are re-read.
//
// The paper's difficulty with this design is choosing k′: too small and
// the merge must iterate, too large and the per-stream searches overpay
// (cf. Figure 6). SearchOptimal grants the baseline the smallest
// sufficient k′ for free — the paper's "optimal, unknown in reality"
// setting — making the reported speedups of synchronized search
// conservative.
package streammerge

import (
	"errors"
	"fmt"
	"sort"

	"bond/internal/core"
	"bond/internal/multifeature"
	"bond/internal/topk"
)

// Stats describes the work of a stream-merge search.
type Stats struct {
	// ValuesScanned counts coefficients read by the per-stream BOND
	// searches (summed over rounds).
	ValuesScanned int64
	// RandomAccesses counts exact global-score computations; each touches
	// every feature of one object.
	RandomAccesses int64
	// Rounds is the number of k′ doublings performed (1 = first try).
	Rounds int
	// FinalKPrime is the per-stream retrieval depth that terminated.
	FinalKPrime int
}

// Result is a completed stream-merge search.
type Result struct {
	Results []topk.Result
	Stats   Stats
}

// ErrBadOptions reports invalid arguments.
var ErrBadOptions = errors.New("streammerge: invalid options")

// Search merges per-feature streams with doubling k′ until the Fagin
// stopping condition holds, starting at k′ = k.
func Search(features []multifeature.Feature, k int, agg multifeature.Aggregate) (Result, error) {
	if err := check(features, k); err != nil {
		return Result{}, err
	}
	n := features[0].Len()
	var total Stats
	kprime := k
	for {
		total.Rounds++
		res, satisfied, err := runOnce(features, k, kprime, agg)
		if err != nil {
			return Result{}, err
		}
		total.ValuesScanned += res.Stats.ValuesScanned
		total.RandomAccesses += res.Stats.RandomAccesses
		if satisfied || kprime >= n {
			total.FinalKPrime = kprime
			res.Stats = total
			return res, nil
		}
		kprime *= 2
		if kprime > n {
			kprime = n
		}
	}
}

// SearchOptimal finds the smallest k′ for which a single merge round
// terminates (by binary search over k′, whose probe costs are not charged)
// and returns the result and cost of that single round — the generous
// baseline setting of the Section 8.2 experiment.
func SearchOptimal(features []multifeature.Feature, k int, agg multifeature.Aggregate) (Result, error) {
	if err := check(features, k); err != nil {
		return Result{}, err
	}
	n := features[0].Len()
	lo, hi := k, n
	// Invariant: a round at hi terminates (at k′ = n it always does: all
	// objects are seen, so the threshold test is irrelevant).
	for lo < hi {
		mid := lo + (hi-lo)/2
		_, satisfied, err := runOnce(features, k, mid, agg)
		if err != nil {
			return Result{}, err
		}
		if satisfied {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	res, _, err := runOnce(features, k, lo, agg)
	if err != nil {
		return Result{}, err
	}
	res.Stats.Rounds = 1
	res.Stats.FinalKPrime = lo
	return res, nil
}

// runOnce retrieves the top-k′ of every stream, random-accesses global
// scores for the union, and evaluates the stopping condition.
func runOnce(features []multifeature.Feature, k, kprime int, agg multifeature.Aggregate) (Result, bool, error) {
	var st Stats
	seen := make(map[int]bool)
	thresholdParts := make([]float64, len(features))
	weights := make([]float64, len(features))
	for f, feat := range features {
		weights[f] = feat.Weight
		// Per-stream ranking runs segment-aware BOND, so segmented feature
		// collections stream as cheaply as flat ones.
		sr, err := core.SearchSegments(feat.Views(), feat.Query, core.Options{K: kprime, Criterion: core.Hq})
		if err != nil {
			return Result{}, false, fmt.Errorf("streammerge: stream %d: %w", f, err)
		}
		st.ValuesScanned += sr.Stats.ValuesScanned
		for _, r := range sr.Results {
			seen[r.ID] = true
		}
		if len(sr.Results) > 0 {
			thresholdParts[f] = sr.Results[len(sr.Results)-1].Score
		}
	}
	tau := agg.Combine(thresholdParts, weights)

	h := topk.NewLargest(min(k, len(seen)))
	// Deterministic iteration order for reproducible tie-breaks.
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	// Random accesses, batched column-wise so the baseline is not charged
	// for cache-hostile row reconstruction.
	globals := multifeature.ExactGlobalBatch(features, agg, ids)
	st.RandomAccesses += int64(len(ids))
	for i, id := range ids {
		h.Push(id, globals[i])
	}
	results := h.Results()
	satisfied := false
	if len(results) >= k {
		// The k-th best seen matches or beats anything unseen.
		satisfied = results[len(results)-1].Score >= tau
	}
	// At full depth every object was seen: always complete.
	if kprime >= features[0].Len() {
		satisfied = true
	}
	return Result{Results: results, Stats: st}, satisfied, nil
}

func check(features []multifeature.Feature, k int) error {
	if len(features) == 0 {
		return fmt.Errorf("%w: no features", ErrBadOptions)
	}
	if k < 1 {
		return fmt.Errorf("%w: k must be >= 1", ErrBadOptions)
	}
	n := features[0].Len()
	for i, f := range features {
		if f.Len() != n {
			return fmt.Errorf("%w: feature %d size mismatch", ErrBadOptions, i)
		}
		if len(f.Query) != f.Dims() {
			return fmt.Errorf("%w: feature %d query dims", ErrBadOptions, i)
		}
	}
	return nil
}

// MergeRanked exact-merges several best-first-ranked result lists over
// DISJOINT id spaces into the global top k, with the same score-then-id
// tie-break as topk.Heap — so the merged answer is a unique function of
// the offered results, independent of list order. largest selects
// similarity ranking (higher scores win, as with criteria Hq/Hh); false
// selects distance ranking (Eq/Ev).
//
// This is the cluster-layer counterpart of the per-segment merge: a
// coordinator that fans a query out to shards gets each shard's exact
// local top-k back, and because shards partition the id space, the
// global top-k of the union is exactly the top-k of the concatenated
// lists. Lists must each be sorted best-first (as every query response
// is); only the first k entries of each are consulted.
func MergeRanked(k int, largest bool, lists ...[]topk.Result) []topk.Result {
	if k < 1 {
		return nil
	}
	var h *topk.Heap
	if largest {
		h = topk.NewLargest(k)
	} else {
		h = topk.NewSmallest(k)
	}
	for _, list := range lists {
		if len(list) > k {
			list = list[:k] // entries past k can never make the global top-k
		}
		for _, r := range list {
			h.Push(r.ID, r.Score)
		}
	}
	return h.Results()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package wal

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"bond/internal/iofs"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TypeAdd, Vectors: [][]float64{{0.25, 0.5, 0.125}}},
		{Type: TypeAddBatch, Vectors: [][]float64{{1, 2, 3}, {4, 5, 6}}},
		{Type: TypeDelete, ID: 7},
		{Type: TypeCompact, Ratio: 0.25},
		{Type: TypeSeal},
		{Type: TypeRecluster, K: 4, Seed: -17},
	}
}

func writeSample(t *testing.T, fs iofs.FS, name string) []Record {
	t.Helper()
	w, err := Create(fs, name)
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if err := w.Append(rec, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestRoundTrip(t *testing.T) {
	fs := iofs.NewMemFS()
	want := writeSample(t, fs, "wal.log")
	data, err := fs.ReadFile("wal.log")
	if err != nil {
		t.Fatal(err)
	}
	got, good, derr := DecodeAll(data)
	if derr != nil {
		t.Fatalf("clean log decoded with error: %v", derr)
	}
	if good != int64(len(data)) {
		t.Fatalf("good %d != len %d", good, len(data))
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// TestTornTail cuts the log at every byte boundary and checks that
// decoding never errors structurally, never returns a partial record,
// and always reports a good offset on a record boundary.
func TestTornTail(t *testing.T) {
	fs := iofs.NewMemFS()
	writeSample(t, fs, "wal.log")
	data, _ := fs.ReadFile("wal.log")
	full, _, _ := DecodeAll(data)

	boundaries := map[int64]int{int64(headerLen): 0}
	off := int64(headerLen)
	for i := range full {
		plen := int64(0)
		// Recompute each frame length from the image itself.
		plen = int64(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += frameLen + plen
		boundaries[off] = i + 1
	}

	for cut := 0; cut <= len(data); cut++ {
		recs, good, derr := DecodeAll(data[:cut])
		if wantN, onBoundary := boundaries[int64(cut)]; onBoundary {
			if derr != nil || len(recs) != wantN || good != int64(cut) {
				t.Fatalf("cut %d (boundary): %d recs, good %d, err %v", cut, len(recs), good, derr)
			}
			continue
		}
		if cut == 0 {
			continue
		}
		if derr == nil {
			t.Fatalf("cut %d mid-record decoded cleanly", cut)
		}
		if _, ok := boundaries[good]; !ok && good != 0 {
			t.Fatalf("cut %d: good offset %d not on a record boundary", cut, good)
		}
		if len(recs) > len(full) {
			t.Fatalf("cut %d produced %d records from %d", cut, len(recs), len(full))
		}
	}
}

// TestBitFlips flips every byte of the image and checks decoding returns
// a prefix (never a panic, never a corrupted record passed through).
func TestBitFlips(t *testing.T) {
	fs := iofs.NewMemFS()
	writeSample(t, fs, "wal.log")
	data, _ := fs.ReadFile("wal.log")
	full, _, _ := DecodeAll(data)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		recs, good, _ := DecodeAll(mut)
		if good > int64(len(mut)) {
			t.Fatalf("flip %d: good %d beyond image", i, good)
		}
		// Every decoded record must match the original prefix, unless the
		// flip landed inside a float payload (CRC catches it; the record
		// is rejected, so anything decoded still matches the prefix).
		if len(recs) > len(full) {
			t.Fatalf("flip %d: %d records from %d", i, len(recs), len(full))
		}
	}
}

func TestOpenAppendTruncatesTornTail(t *testing.T) {
	fs := iofs.NewMemFS()
	want := writeSample(t, fs, "wal.log")
	data, _ := fs.ReadFile("wal.log")
	// Simulate a crash mid-append: garbage half-record at the tail.
	torn := append(append([]byte(nil), data...), 0xde, 0xad, 0xbe)
	f, _ := fs.Create("wal.log")
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w, recs, err := OpenAppend(fs, "wal.log")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	if err := w.Append(Record{Type: TypeDelete, ID: 99}, true); err != nil {
		t.Fatal(err)
	}
	w.Close()

	data2, _ := fs.ReadFile("wal.log")
	recs2, good, derr := DecodeAll(data2)
	if derr != nil || good != int64(len(data2)) {
		t.Fatalf("post-append log not clean: %v", derr)
	}
	if len(recs2) != len(want)+1 || recs2[len(recs2)-1].ID != 99 {
		t.Fatalf("appended record unreachable: %d records", len(recs2))
	}
}

func TestOpenAppendMissingAndGarbageHeader(t *testing.T) {
	fs := iofs.NewMemFS()
	w, recs, err := OpenAppend(fs, "absent.log")
	if err != nil || len(recs) != 0 {
		t.Fatalf("open missing: %v, %d recs", err, len(recs))
	}
	w.Close()

	f, _ := fs.Create("garbage.log")
	f.Write([]byte("BO")) // torn header
	f.Close()
	w2, recs2, err := OpenAppend(fs, "garbage.log")
	if err != nil || len(recs2) != 0 {
		t.Fatalf("open torn-header: %v", err)
	}
	if err := w2.Append(Record{Type: TypeSeal}, false); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	data, _ := fs.ReadFile("garbage.log")
	if recs3, _, derr := DecodeAll(data); derr != nil || len(recs3) != 1 {
		t.Fatalf("recreated log: %v, %d recs", derr, len(recs3))
	}
}

func TestWriterStickyError(t *testing.T) {
	fs := iofs.NewMemFS()
	w, err := Create(fs, filepath.Join("d", "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	w.f = failingFile{}
	if err := w.Append(Record{Type: TypeSeal}, false); err == nil {
		t.Fatal("append through failing file succeeded")
	}
	if err := w.Append(Record{Type: TypeSeal}, false); err == nil {
		t.Fatal("writer accepted a record after a failed append")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync succeeded on failed writer")
	}
}

type failingFile struct{}

func (failingFile) Write([]byte) (int, error) { return 0, errors.New("boom") }
func (failingFile) Sync() error               { return errors.New("boom") }
func (failingFile) Close() error              { return nil }

// Package wal implements the collection write-ahead log: a CRC-framed,
// length-prefixed, append-only record stream of the mutations applied to
// a bond.Collection (Add, AddBatch, Delete, Compact, SealActive,
// Recluster).
//
// Every mutation is appended — and, under the fsync=always policy,
// fsynced — before it is acknowledged to the caller, so recovery can
// rebuild everything acknowledged since the last checkpoint by replaying
// the log on top of it. The format is designed for exactly that recovery
// path:
//
//   - each record frame is [u32 payload length][u32 IEEE CRC][payload],
//     with the CRC covering the payload (type byte + body), so a torn or
//     bit-flipped record is detected before it is applied;
//   - decoding stops at the first frame that does not validate and
//     reports everything before it — a torn final record (the mutation
//     in flight at the crash) is indistinguishable from a clean end of
//     log, which is precisely the contract: recovery yields a consistent
//     prefix of the acknowledged history;
//   - no length field is trusted beyond the bytes actually present, so
//     malformed input can never cause an oversized allocation.
//
// The log is truncated by checkpointing, not in place: the collection
// rotates to a fresh wal-<seq+1> file, writes an incremental checkpoint
// that covers everything up to the rotation, and deletes the old file
// once the checkpoint's manifest commits (see vstore's checkpoint
// protocol).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"path/filepath"
	"sync"

	"bond/internal/iofs"
)

// Type identifies a logged mutation.
type Type uint8

// Record types. The numeric values are the on-disk encoding and must not
// be reordered.
const (
	TypeAdd       Type = 1 // one vector appended
	TypeAddBatch  Type = 2 // a batch of vectors appended atomically
	TypeDelete    Type = 3 // one id tombstoned
	TypeCompact   Type = 4 // a compaction pass (min tombstone ratio)
	TypeSeal      Type = 5 // the active segment force-sealed
	TypeRecluster Type = 6 // sealed segments re-partitioned by k-means
)

const (
	magic      = "BONDWAL1"
	version    = uint32(1)
	headerLen  = len(magic) + 8 // magic + u32 version + u32 reserved
	frameLen   = 8              // u32 payload length + u32 crc
	maxPayload = 1 << 30        // sanity cap on a single record
	maxDims    = 1 << 20        // matches the storage layer's header caps
	maxBatch   = 1 << 31
)

// HeaderLen is the byte length of a WAL file's header — the offset of
// the first record frame, and therefore the stream position of an empty
// log. Replication positions are (file sequence, byte offset) pairs
// where offset HeaderLen means "nothing applied from this log yet".
const HeaderLen = int64(headerLen)

// ErrCorrupt is returned when a WAL image fails structural validation
// beyond a simple torn tail.
var ErrCorrupt = errors.New("wal: corrupt log")

// ErrTorn is returned (wrapped) when a log ends mid-record or
// mid-header — the expected shape after a crash during an append.
var ErrTorn = errors.New("wal: torn tail")

// IsTorn reports whether err is a torn-tail condition — an incomplete
// frame that more bytes would complete, as opposed to corruption.
func IsTorn(err error) bool { return errors.Is(err, ErrTorn) }

// Record is one logged mutation.
type Record struct {
	Type Type
	// Vectors carries the appended vectors for TypeAdd (length 1) and
	// TypeAddBatch.
	Vectors [][]float64
	// ID is the tombstoned id for TypeDelete.
	ID uint64
	// Ratio is the minimum tombstone ratio for TypeCompact.
	Ratio float64
	// K and Seed parameterize TypeRecluster. The record intentionally
	// carries only the k-means inputs, not the resulting layout: replay
	// re-runs the same deterministic clustering over the same state
	// prefix, which reproduces the layout exactly (see bond's recluster
	// contract).
	K    uint64
	Seed int64
}

// encode appends the record's frame to dst and returns the extended
// slice. It panics on inconsistent vector shapes (programmer error — the
// collection validates before logging).
func encode(dst []byte, rec Record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0) // frame header placeholder
	payloadStart := len(dst)
	dst = append(dst, byte(rec.Type))
	switch rec.Type {
	case TypeAdd:
		if len(rec.Vectors) != 1 {
			panic(fmt.Sprintf("wal: TypeAdd with %d vectors", len(rec.Vectors)))
		}
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Vectors[0])))
		for _, x := range rec.Vectors[0] {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
		}
	case TypeAddBatch:
		if len(rec.Vectors) == 0 {
			// The collection never logs an empty batch (a no-op mutation);
			// forbidding it keeps encode/decode exact inverses.
			panic("wal: empty TypeAddBatch")
		}
		dims := len(rec.Vectors[0])
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rec.Vectors)))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(dims))
		for _, v := range rec.Vectors {
			if len(v) != dims {
				panic("wal: ragged batch")
			}
			for _, x := range v {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(x))
			}
		}
	case TypeDelete:
		dst = binary.LittleEndian.AppendUint64(dst, rec.ID)
	case TypeCompact:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Ratio))
	case TypeSeal:
	case TypeRecluster:
		dst = binary.LittleEndian.AppendUint64(dst, rec.K)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(rec.Seed))
	default:
		panic(fmt.Sprintf("wal: unknown record type %d", rec.Type))
	}
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.ChecksumIEEE(payload))
	return dst
}

// decodePayload parses one validated payload into a Record. Every length
// is checked against the bytes actually present before any allocation is
// sized from it.
func decodePayload(payload []byte) (Record, error) {
	if len(payload) < 1 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	rec := Record{Type: Type(payload[0])}
	body := payload[1:]
	switch rec.Type {
	case TypeAdd:
		if len(body) < 4 {
			return Record{}, fmt.Errorf("%w: short add", ErrCorrupt)
		}
		dims := binary.LittleEndian.Uint32(body)
		if dims < 1 || dims > maxDims || uint64(len(body)-4) != uint64(dims)*8 {
			return Record{}, fmt.Errorf("%w: add dims %d for %d payload bytes", ErrCorrupt, dims, len(body))
		}
		v := make([]float64, dims)
		for i := range v {
			v[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[4+i*8:]))
		}
		rec.Vectors = [][]float64{v}
	case TypeAddBatch:
		if len(body) < 8 {
			return Record{}, fmt.Errorf("%w: short batch", ErrCorrupt)
		}
		count := binary.LittleEndian.Uint32(body)
		dims := binary.LittleEndian.Uint32(body[4:])
		if count < 1 || dims < 1 || dims > maxDims || uint64(count) > maxBatch ||
			uint64(len(body)-8) != uint64(count)*uint64(dims)*8 {
			return Record{}, fmt.Errorf("%w: batch %d×%d for %d payload bytes", ErrCorrupt, count, dims, len(body))
		}
		rec.Vectors = make([][]float64, count)
		off := 8
		for i := range rec.Vectors {
			v := make([]float64, dims)
			for d := range v {
				v[d] = math.Float64frombits(binary.LittleEndian.Uint64(body[off:]))
				off += 8
			}
			rec.Vectors[i] = v
		}
	case TypeDelete:
		if len(body) != 8 {
			return Record{}, fmt.Errorf("%w: delete body %d bytes", ErrCorrupt, len(body))
		}
		rec.ID = binary.LittleEndian.Uint64(body)
	case TypeCompact:
		if len(body) != 8 {
			return Record{}, fmt.Errorf("%w: compact body %d bytes", ErrCorrupt, len(body))
		}
		rec.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(body))
	case TypeSeal:
		if len(body) != 0 {
			return Record{}, fmt.Errorf("%w: seal body %d bytes", ErrCorrupt, len(body))
		}
	case TypeRecluster:
		if len(body) != 16 {
			return Record{}, fmt.Errorf("%w: recluster body %d bytes", ErrCorrupt, len(body))
		}
		rec.K = binary.LittleEndian.Uint64(body)
		rec.Seed = int64(binary.LittleEndian.Uint64(body[8:]))
	default:
		return Record{}, fmt.Errorf("%w: unknown record type %d", ErrCorrupt, rec.Type)
	}
	return rec, nil
}

// DecodeAll parses a whole WAL image. It returns every record up to the
// first frame that fails validation, the byte offset just past the last
// valid record (the offset a writer should truncate to before
// appending), and a non-nil error describing why decoding stopped early
// — nil when the log ends cleanly on a record boundary.
//
// A zero-length image decodes as an empty log. An image whose header
// does not validate returns good == 0; the caller should recreate the
// file. DecodeAll never panics and never allocates more memory than a
// small multiple of len(data), whatever the input.
func DecodeAll(data []byte) (recs []Record, good int64, err error) {
	if len(data) == 0 {
		return nil, 0, nil
	}
	if len(data) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d-byte header", ErrTorn, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[len(magic):]); v != version {
		return nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	off := int64(headerLen)
	good = off
	for {
		remaining := int64(len(data)) - off
		if remaining == 0 {
			return recs, good, nil
		}
		if remaining < frameLen {
			return recs, good, fmt.Errorf("%w: %d-byte frame header", ErrTorn, remaining)
		}
		plen := int64(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen < 1 || plen > maxPayload {
			return recs, good, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
		}
		if plen > remaining-frameLen {
			return recs, good, fmt.Errorf("%w: %d-byte payload, %d present", ErrTorn, plen, remaining-frameLen)
		}
		payload := data[off+frameLen : off+frameLen+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, good, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			return recs, good, derr
		}
		recs = append(recs, rec)
		off += frameLen + plen
		good = off
	}
}

// EncodeFrame appends rec's on-disk frame to dst and returns the
// extended slice — the exact bytes Append would write, exposed so the
// replication stream can be built and compared against raw log images.
func EncodeFrame(dst []byte, rec Record) []byte {
	return encode(dst, rec)
}

// ParseFrame examines the first record frame in data (a log image with
// the file header already stripped). It returns the decoded record and
// the frame's total byte length. The error distinguishes the two ways a
// stream can end early: ErrTorn (wrapped) means data holds only a
// prefix of a frame — on a live replication stream the remainder is
// simply still in flight — while ErrCorrupt means the bytes can never
// be a valid frame and the stream must be rejected from here on.
func ParseFrame(data []byte) (rec Record, frameSize int64, err error) {
	if int64(len(data)) < frameLen {
		return Record{}, 0, fmt.Errorf("%w: %d-byte frame header", ErrTorn, len(data))
	}
	plen := int64(binary.LittleEndian.Uint32(data))
	crc := binary.LittleEndian.Uint32(data[4:])
	if plen < 1 || plen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	if plen > int64(len(data))-frameLen {
		return Record{}, 0, fmt.Errorf("%w: %d-byte payload, %d present", ErrTorn, plen, int64(len(data))-frameLen)
	}
	payload := data[frameLen : frameLen+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return Record{}, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	rec, derr := decodePayload(payload)
	if derr != nil {
		return Record{}, 0, derr
	}
	return rec, frameLen + plen, nil
}

// Writer appends records to one WAL file. It is safe for one appender
// racing a background Sync (the interval fsync policy); the collection's
// write lock serializes appenders.
type Writer struct {
	mu      sync.Mutex
	f       iofs.File
	size    int64
	records int64
	buf     []byte
	err     error // sticky: a writer that failed once stays failed
}

// Create creates (or truncates) a WAL file and writes its header. The
// parent directory is fsynced before Create returns: a record fsynced
// into the file is only durable if the file's directory entry is too.
func Create(fs iofs.FS, name string) (*Writer, error) {
	f, err := fs.Create(name)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, magic...)
	hdr = binary.LittleEndian.AppendUint32(hdr, version)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.SyncDir(filepath.Dir(name)); err != nil {
		f.Close()
		return nil, err
	}
	return &Writer{f: f, size: int64(headerLen)}, nil
}

// OpenAppend opens an existing WAL for appending, creating it when
// absent. Any torn tail left by a crash is truncated away first, so new
// records land on a valid record boundary and stay reachable by the next
// replay. It returns the writer and the records already in the log.
func OpenAppend(fs iofs.FS, name string) (*Writer, []Record, error) {
	data, err := fs.ReadFile(name)
	if err != nil {
		w, cerr := Create(fs, name)
		return w, nil, cerr
	}
	recs, good, _ := DecodeAll(data)
	w, err := OpenAppendAt(fs, name, good, int64(len(recs)), int64(len(data)))
	if err != nil || good == 0 {
		recs = nil
	}
	return w, recs, err
}

// OpenAppendAt is OpenAppend for a caller that already read and decoded
// the log (the recovery replay does — re-reading a multi-megabyte WAL
// just to find its truncation point would double every cold open's
// I/O): good and records are DecodeAll's results and fileLen the image
// length. good == 0 (unreadable header) starts the log over.
func OpenAppendAt(fs iofs.FS, name string, good, records, fileLen int64) (*Writer, error) {
	if good == 0 {
		return Create(fs, name)
	}
	if good < fileLen {
		if err := fs.Truncate(name, good); err != nil {
			return nil, err
		}
	}
	f, err := fs.Append(name)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, size: good, records: records}, nil
}

// Append logs one record, fsyncing before returning when syncNow is set
// (the fsync=always policy: the record is durable before the mutation is
// acknowledged). The first error is sticky: once an append fails the
// writer refuses further records, because a hole in the log would
// detach everything after it.
func (w *Writer) Append(rec Record, syncNow bool) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	w.buf = encode(w.buf[:0], rec)
	return w.appendLocked(w.buf, syncNow)
}

// AppendRaw logs one pre-encoded record frame verbatim — the
// replication apply path, where a follower mirrors the leader's log
// bytes so its file stays an exact byte prefix of the leader's. The
// frame must be exactly one valid frame; AppendRaw re-validates before
// writing so a corrupt stream can never reach the log.
func (w *Writer) AppendRaw(frame []byte, syncNow bool) error {
	if _, n, err := ParseFrame(frame); err != nil {
		return err
	} else if n != int64(len(frame)) {
		return fmt.Errorf("%w: %d trailing bytes after frame", ErrCorrupt, int64(len(frame))-n)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return w.appendLocked(frame, syncNow)
}

// appendLocked writes one already-encoded frame. On a failed fsync the
// size and record gauges are rolled back: the bytes may be in the file,
// but the record was never acknowledged and the collection checkpoints
// past this log (recoverFromLogFailure), so the acked size must never
// include it — it is the high-water mark the replication stream serves
// up to.
func (w *Writer) appendLocked(frame []byte, syncNow bool) error {
	if _, err := w.f.Write(frame); err != nil {
		w.err = fmt.Errorf("wal: append: %w", err)
		return w.err
	}
	w.size += int64(len(frame))
	w.records++
	if syncNow {
		if err := w.f.Sync(); err != nil {
			w.size -= int64(len(frame))
			w.records--
			w.err = fmt.Errorf("wal: sync: %w", err)
			return w.err
		}
	}
	return nil
}

// Sync flushes appended records to stable storage (the interval policy's
// ticker, and clean shutdown).
func (w *Writer) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("wal: sync: %w", err)
		return w.err
	}
	return nil
}

// Size returns the log's current byte length — the gauge checkpoint
// scheduling triggers on.
func (w *Writer) Size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.size
}

// Records returns how many records the log holds — the replay cost of a
// crash right now.
func (w *Writer) Records() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.records
}

// Close releases the file handle without an implied sync.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

package wal

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"bond/internal/iofs"
)

// corpusEntry renders one seed in the go-fuzz corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// seedImages builds the canonical seed images: a valid multi-record log,
// a torn one, a bit-flipped one, and degenerate headers.
func seedImages(t testing.TB) map[string][]byte {
	mem := iofs.NewMemFS()
	w, err := Create(mem, "seed.log")
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range []Record{
		{Type: TypeAdd, Vectors: [][]float64{{0.1, 0.9, 0.25}}},
		{Type: TypeAddBatch, Vectors: [][]float64{{1, 2, 3}, {4, 5, 6}}},
		{Type: TypeDelete, ID: 3},
		{Type: TypeCompact, Ratio: 0.5},
		{Type: TypeSeal},
		{Type: TypeRecluster, K: 8, Seed: 1},
	} {
		if err := w.Append(rec, false); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	valid, _ := mem.ReadFile("seed.log")
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	return map[string][]byte{
		"valid-log":    valid,
		"torn-tail":    valid[:len(valid)-3],
		"bit-flipped":  flipped,
		"header-only":  valid[:headerLen],
		"magic-prefix": []byte("BONDWAL1"),
	}
}

// TestCorpusUpToDate regenerates the checked-in seed corpus when
// WAL_REGEN_CORPUS=1 and otherwise verifies it exists and decodes
// without panicking — the corpus is part of the recovery suite's
// contract, not an artifact.
func TestCorpusUpToDate(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALDecode")
	images := seedImages(t)
	if os.Getenv("WAL_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range images {
			if err := os.WriteFile(filepath.Join(dir, "seed-"+name), corpusEntry(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	for name, data := range images {
		path := filepath.Join(dir, "seed-"+name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("seed corpus missing %s (run with WAL_REGEN_CORPUS=1): %v", path, err)
		}
		recs, good, _ := DecodeAll(data)
		if good > int64(len(data)) {
			t.Fatalf("%s: good %d beyond image", name, good)
		}
		_ = recs
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("empty seed corpus dir %s: %v", dir, err)
	}
}

package wal

import (
	"testing"

	"bond/internal/iofs"
)

// FuzzWALDecode hammers DecodeAll with arbitrary byte images. The
// invariants under fuzz are exactly the recovery contract's: never
// panic, never claim more good bytes than exist, never hand back a
// record that does not re-encode to the bytes it was decoded from, and
// never allocate unboundedly from a hostile length field (the test
// binary's default memory limits catch that as an OOM).
//
// The seed corpus in testdata/fuzz/FuzzWALDecode holds valid logs of
// every record type plus torn and bit-flipped variants.
func FuzzWALDecode(f *testing.F) {
	mem := iofs.NewMemFS()
	w, err := Create(mem, "seed.log")
	if err != nil {
		f.Fatal(err)
	}
	for _, rec := range []Record{
		{Type: TypeAdd, Vectors: [][]float64{{0.1, 0.9}}},
		{Type: TypeAddBatch, Vectors: [][]float64{{1, 2}, {3, 4}, {5, 6}}},
		{Type: TypeDelete, ID: 3},
		{Type: TypeCompact, Ratio: 0.5},
		{Type: TypeSeal},
		{Type: TypeRecluster, K: 8, Seed: 1},
	} {
		if err := w.Append(rec, false); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, _ := mem.ReadFile("seed.log")
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // torn tail
	f.Add([]byte{})
	f.Add([]byte("BONDWAL1"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, good, _ := DecodeAll(data)
		if good < 0 || good > int64(len(data)) {
			t.Fatalf("good offset %d outside [0,%d]", good, len(data))
		}
		// Re-encode what decoded: the valid prefix must reproduce the
		// input bytes exactly (decode and encode are inverses on the
		// accepted region).
		buf := make([]byte, 0, good)
		if good > 0 {
			buf = append(buf, data[:headerLen]...)
			for _, rec := range recs {
				buf = encode(buf, rec)
			}
			if int64(len(buf)) != good {
				t.Fatalf("re-encoded prefix %d bytes, good %d", len(buf), good)
			}
			for i := range buf {
				if buf[i] != data[i] {
					t.Fatalf("re-encode mismatch at byte %d", i)
				}
			}
		}
	})
}

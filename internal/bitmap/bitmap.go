// Package bitmap implements dense bitsets over object identifiers.
//
// BOND's implementation section (paper Section 6.1) uses a bitmap index on
// histogram identifiers to represent the pruned candidate set during early
// iterations, when selectivity is still low and materializing positional
// join results would copy most of the table. The same bitmap doubles as the
// delete-mark structure for updates (Section 6.2) and as the carrier for
// combining k-NN search with prior selection predicates.
package bitmap

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// Bitmap is a fixed-size dense bitset over [0, Len).
type Bitmap struct {
	n     int
	words []uint64
}

// New returns a bitmap of n bits, all clear. It panics if n < 0.
func New(n int) *Bitmap {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	return &Bitmap{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewFull returns a bitmap of n bits, all set.
func NewFull(n int) *Bitmap {
	b := New(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
	return b
}

// clearTail zeroes the unused bits of the last word so Count stays exact.
func (b *Bitmap) clearTail() {
	if b.n%wordBits != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(b.n%wordBits)) - 1
	}
}

// Len returns the bitmap's size in bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i. It panics if i is out of range.
func (b *Bitmap) Set(i int) {
	b.check(i)
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i. It panics if i is out of range.
func (b *Bitmap) Clear(i int) {
	b.check(i)
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Get reports whether bit i is set. It panics if i is out of range.
func (b *Bitmap) Get(i int) bool {
	b.check(i)
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (b *Bitmap) check(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitmap: index %d out of range [0,%d)", i, b.n))
	}
}

// Count returns the number of set bits (population count).
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with other in place. It panics on size mismatch.
func (b *Bitmap) And(other *Bitmap) {
	b.sameSize(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions b with other in place. It panics on size mismatch.
func (b *Bitmap) Or(other *Bitmap) {
	b.sameSize(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot clears in b every bit set in other. It panics on size mismatch.
func (b *Bitmap) AndNot(other *Bitmap) {
	b.sameSize(other)
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

func (b *Bitmap) sameSize(other *Bitmap) {
	if b.n != other.n {
		panic(fmt.Sprintf("bitmap: size mismatch %d vs %d", b.n, other.n))
	}
}

// Clone returns a deep copy of b.
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Reset clears all bits.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Reuse resizes b to n bits, all clear, reusing the word buffer when it is
// large enough — the pooled counterpart of New. It panics if n < 0.
func (b *Bitmap) Reuse(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bitmap: negative size %d", n))
	}
	words := (n + wordBits - 1) / wordBits
	if cap(b.words) < words {
		b.words = make([]uint64, words)
	} else {
		b.words = b.words[:words]
		for i := range b.words {
			b.words[i] = 0
		}
	}
	b.n = n
}

// SetAll sets every bit.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.clearTail()
}

// ForEach calls fn for every set bit in increasing order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(base + tz)
			w &= w - 1
		}
	}
}

// Slice returns the indexes of all set bits in increasing order.
func (b *Bitmap) Slice() []int {
	return b.AppendSlice(make([]int, 0, b.Count()))
}

// AppendSlice appends the indexes of all set bits, in increasing order, to
// dst and returns the extended slice — the allocation-free counterpart of
// Slice for callers bringing their own buffer.
func (b *Bitmap) AppendSlice(dst []int) []int {
	for wi, w := range b.words {
		base := wi * wordBits
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, base+tz)
			w &= w - 1
		}
	}
	return dst
}

// FromSlice builds a bitmap of size n with the given bits set.
// It panics if any index is out of range.
func FromSlice(n int, idxs []int) *Bitmap {
	b := New(n)
	for _, i := range idxs {
		b.Set(i)
	}
	return b
}

package bitmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Errorf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
		b.Clear(i)
		if b.Get(i) {
			t.Errorf("bit %d still set after Clear", i)
		}
	}
}

func TestCount(t *testing.T) {
	b := New(200)
	if b.Count() != 0 {
		t.Errorf("fresh Count = %d, want 0", b.Count())
	}
	for i := 0; i < 200; i += 3 {
		b.Set(i)
	}
	want := 67 // ceil(200/3)
	if b.Count() != want {
		t.Errorf("Count = %d, want %d", b.Count(), want)
	}
}

func TestNewFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 100} {
		b := NewFull(n)
		if b.Count() != n {
			t.Errorf("NewFull(%d).Count() = %d", n, b.Count())
		}
	}
}

func TestBooleanOps(t *testing.T) {
	a := FromSlice(100, []int{1, 5, 70, 99})
	b := FromSlice(100, []int{5, 70, 80})

	and := a.Clone()
	and.And(b)
	if got := and.Slice(); len(got) != 2 || got[0] != 5 || got[1] != 70 {
		t.Errorf("And = %v, want [5 70]", got)
	}

	or := a.Clone()
	or.Or(b)
	if got := or.Slice(); len(got) != 5 {
		t.Errorf("Or = %v, want 5 elements", got)
	}

	diff := a.Clone()
	diff.AndNot(b)
	if got := diff.Slice(); len(got) != 2 || got[0] != 1 || got[1] != 99 {
		t.Errorf("AndNot = %v, want [1 99]", got)
	}
}

func TestForEachOrder(t *testing.T) {
	idxs := []int{99, 0, 64, 63, 7}
	b := FromSlice(100, idxs)
	got := b.Slice()
	want := []int{0, 7, 63, 64, 99}
	if len(got) != len(want) {
		t.Fatalf("Slice = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Slice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	b := New(10)
	for _, f := range []func(){
		func() { b.Set(10) },
		func() { b.Get(-1) },
		func() { b.Clear(11) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on out-of-range access")
				}
			}()
			f()
		}()
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on size mismatch")
		}
	}()
	a.And(b)
}

func TestReset(t *testing.T) {
	b := NewFull(77)
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d", b.Count())
	}
}

// Property: Count equals the length of Slice, and De Morgan-ish identity
// |A| = |A∧B| + |A∧¬B| holds for random bitmaps.
func TestCountDecomposition(t *testing.T) {
	f := func(seed int64, nraw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nraw)%300 + 1
		a, b := New(n), New(n)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
			}
		}
		if a.Count() != len(a.Slice()) {
			return false
		}
		and := a.Clone()
		and.And(b)
		diff := a.Clone()
		diff.AndNot(b)
		return a.Count() == and.Count()+diff.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCount(b *testing.B) {
	bm := NewFull(100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Count()
	}
}

func BenchmarkForEach(b *testing.B) {
	bm := New(100000)
	for i := 0; i < 100000; i += 7 {
		bm.Set(i)
	}
	b.ResetTimer()
	sum := 0
	for i := 0; i < b.N; i++ {
		bm.ForEach(func(j int) { sum += j })
	}
	_ = sum
}
